// Package repro_test hosts the benchmark harness: one benchmark per table
// and figure of the paper's evaluation, plus ablation benches for the
// design decisions called out in DESIGN.md §4. The benchmarks report the
// headline statistic of each artifact via b.ReportMetric so a -bench run
// doubles as a compact reproduction summary.
//
// Benchmarks run on a shared scaled-down deployment (the full-scale run is
// cmd/figures); the shapes — composition amplifies skew, 3-way beats 2-way,
// removal is insufficient, unions beat top-1 — are scale-free.
package repro_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mitigation"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/stats"
	"repro/internal/targeting"
)

// benchUniverse sizes the shared benchmark deployment.
const benchUniverse = 1 << 15

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	benchErr    error
)

// runner returns the shared benchmark runner, building it on first use.
func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		var d *platform.Deployment
		d, benchErr = platform.NewDeployment(platform.DeployOptions{Seed: 101, UniverseSize: benchUniverse})
		if benchErr != nil {
			return
		}
		benchRunner, benchErr = experiments.NewRunner(experiments.Config{
			Deployment:      d,
			K:               250,
			OverlapTopN:     20,
			OverlapMaxPairs: 60,
			UnionTopN:       8,
			UnionMaxOrder:   3,
			RemovalSteps:    []float64{0, 2, 4, 6, 8, 10},
			Seed:            5,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRunner
}

// findBox locates one box row.
func findBox(rows []experiments.BoxRow, platformName, set, class string) (experiments.BoxRow, bool) {
	for _, r := range rows {
		if r.Platform == platformName && r.Set == set && r.Class == class {
			return r, true
		}
	}
	return experiments.BoxRow{}, false
}

// BenchmarkFigure1 regenerates Figure 1 (Facebook's restricted interface)
// and reports the Individual and Top-2-way 90th-percentile rep ratios
// toward males (paper: 1.84 and 8.98).
func BenchmarkFigure1(b *testing.B) {
	r := runner(b)
	var rows []experiments.BoxRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
	}
	ind, _ := findBox(rows, catalog.PlatformFacebookRestricted, experiments.SetIndividual, "male")
	top, _ := findBox(rows, catalog.PlatformFacebookRestricted, experiments.SetTop2, "male")
	top3, _ := findBox(rows, catalog.PlatformFacebookRestricted, experiments.SetTop3, "male")
	b.ReportMetric(ind.Box.P90, "individual-p90")
	b.ReportMetric(top.Box.P90, "top2way-p90")
	b.ReportMetric(top3.Box.P90, "top3way-p90")
}

// BenchmarkFigure2 regenerates Figure 2 (Facebook, Google, LinkedIn) and
// reports each platform's Individual P90 toward males (paper: FB 1.45,
// LinkedIn 2.09).
func BenchmarkFigure2(b *testing.B) {
	r := runner(b)
	var rows []experiments.BoxRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	fb, _ := findBox(rows, catalog.PlatformFacebook, experiments.SetIndividual, "male")
	g, _ := findBox(rows, catalog.PlatformGoogle, experiments.SetIndividual, "male")
	li, _ := findBox(rows, catalog.PlatformLinkedIn, experiments.SetIndividual, "male")
	b.ReportMetric(fb.Box.P90, "facebook-p90")
	b.ReportMetric(g.Box.P90, "google-p90")
	b.ReportMetric(li.Box.P90, "linkedin-p90")
}

// BenchmarkFigure3 regenerates Figure 3 (removal sweep, gender) and reports
// the FB-restricted Top-2-way P90 after removing the top 10 percentile of
// skewed individuals (paper: 3.02).
func BenchmarkFigure3(b *testing.B) {
	r := runner(b)
	var series []experiments.RemovalSeries
	var err error
	for i := 0; i < b.N; i++ {
		series, err = r.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if s.Platform == catalog.PlatformFacebookRestricted && s.Direction == core.Top {
			pts := s.Points
			b.ReportMetric(pts[0].P90, "p90-at-0pct")
			b.ReportMetric(pts[len(pts)-1].P90, "p90-at-10pct")
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (age-range box batteries) and
// reports LinkedIn's Individual median toward 55+ (the paper's strongest
// systematic age lean).
func BenchmarkFigure4(b *testing.B) {
	r := runner(b)
	var rows []experiments.BoxRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	li, _ := findBox(rows, catalog.PlatformLinkedIn, experiments.SetIndividual, "55+")
	b.ReportMetric(li.Box.Median, "linkedin-55plus-median")
}

// BenchmarkFigure5 regenerates Figure 5 (recall distributions) and reports
// the ratio of Top-2-way median recall to Individual median recall for
// females on Facebook (paper: compositions reach less than individuals).
func BenchmarkFigure5(b *testing.B) {
	r := runner(b)
	var rows []experiments.RecallRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	var ind, top float64
	for _, row := range rows {
		if row.Platform == catalog.PlatformFacebook && row.Class == "female" {
			switch row.Set {
			case experiments.SetIndividual:
				ind = row.Box.Median
			case experiments.SetTop2:
				top = row.Box.Median
			}
		}
	}
	if ind > 0 {
		b.ReportMetric(top/ind, "top2way-vs-individual-recall")
	}
}

// BenchmarkFigure6 regenerates Figure 6 (age removal sweeps).
func BenchmarkFigure6(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 and reports the mean top-10/top-1
// recall gain across rows (paper: up to 40× for LinkedIn female).
func BenchmarkTable1(b *testing.B) {
	r := runner(b)
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	var gain float64
	n := 0
	var overlaps []float64
	for _, row := range rows {
		if row.Top1Recall > 0 {
			gain += float64(row.Top10Recall) / float64(row.Top1Recall)
			n++
		}
		overlaps = append(overlaps, row.MedianOverlap)
	}
	if n > 0 {
		b.ReportMetric(gain/float64(n), "mean-top10-gain")
	}
	if med, err := stats.Median(overlaps); err == nil {
		b.ReportMetric(med*100, "median-overlap-pct")
	}
}

// BenchmarkTable2 regenerates Table 2 and reports the mean amplification
// factor combined/max(individual) across example rows.
func BenchmarkTable2(b *testing.B) {
	r := runner(b)
	var rows []experiments.ExampleRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.Table2(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanAmplification(rows), "mean-amplification")
}

// BenchmarkTable3 regenerates Table 3 (age-skewed examples).
func BenchmarkTable3(b *testing.B) {
	r := runner(b)
	var rows []experiments.ExampleRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.Table3(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanAmplification(rows), "mean-amplification")
}

// meanAmplification averages combined / max(R1, R2) over example rows.
func meanAmplification(rows []experiments.ExampleRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, row := range rows {
		base := row.R1
		if row.R2 > base {
			base = row.R2
		}
		if base > 0 {
			sum += row.Combined / base
		}
	}
	return sum / float64(len(rows))
}

// BenchmarkConsistency reproduces the §3 consistency study (100 repeated
// calls over 40 targetings per platform) and reports the inconsistency
// count (paper: 0).
func BenchmarkConsistency(b *testing.B) {
	r := runner(b)
	var rows []experiments.MethodologyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.Methodology(experiments.MethodologyConfig{
			ConsistencyRepeats: 100, GranularityCalls: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	bad := 0
	for _, row := range rows {
		bad += row.Inconsistent
	}
	b.ReportMetric(float64(bad), "inconsistent")
}

// BenchmarkGranularity reproduces the §3 granularity study and reports the
// inferred significant digits below 100k for Google (paper: 1).
func BenchmarkGranularity(b *testing.B) {
	r := runner(b)
	var rows []experiments.MethodologyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.Methodology(experiments.MethodologyConfig{
			ConsistencyRepeats: 2, GranularityCalls: 20000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		if row.Platform == catalog.PlatformGoogle {
			b.ReportMetric(float64(row.SigDigitsSmall), "google-sig-digits")
		}
	}
}

// BenchmarkLookalikeStudy regenerates the lookalike-propagation extension
// and reports the standard-lookalike and special-ad rep ratios of a
// male-skewed seed (the §2.2 Special Ad Audience question).
func BenchmarkLookalikeStudy(b *testing.B) {
	var rows []experiments.LookalikeRow
	var err error
	for i := 0; i < b.N; i++ {
		// Audience creation mutates interface state; use a fresh deployment
		// per iteration.
		r := ablationRunner(b, platform.DeployOptions{Seed: uint64(200 + i)})
		rows, err = r.LookalikeStudy(core.GenderClass(population.Male), 300, 0.05)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		switch row.Audience {
		case "lookalike":
			b.ReportMetric(row.RepRatio, "lookalike-ratio")
		case "special-ad":
			b.ReportMetric(row.RepRatio, "special-ad-ratio")
		}
	}
}

// BenchmarkMitigation regenerates the §5 detector evaluation and reports
// AUC and TPR on the restricted interface.
func BenchmarkMitigation(b *testing.B) {
	r := runner(b)
	var rows []experiments.MitigationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = r.MitigationStudy(core.GenderClass(population.Male), mitigation.EvalConfig{
			HonestAdvertisers: 12, DiscriminatoryAdvertisers: 8,
			CampaignsPerAdvertiser: 5, PoolK: 80,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		if row.Platform == catalog.PlatformFacebookRestricted {
			b.ReportMetric(row.AUC, "auc")
			b.ReportMetric(row.TPR, "tpr")
		}
	}
}

// --- ablations (DESIGN.md §4) ---

// ablationRunner builds a one-off runner with the given deployment knobs.
func ablationRunner(b *testing.B, opts platform.DeployOptions) *experiments.Runner {
	b.Helper()
	opts.UniverseSize = benchUniverse
	if opts.Seed == 0 {
		opts.Seed = 101
	}
	d, err := platform.NewDeployment(opts)
	if err != nil {
		b.Fatal(err)
	}
	r, err := experiments.NewRunner(experiments.Config{
		Deployment: d, K: 200, OverlapTopN: 15, OverlapMaxPairs: 50, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationFactors compares the median pairwise overlap of top
// skewed compositions with latent factors on versus off: factors are what
// produce the non-zero audience overlaps of Table 1.
func BenchmarkAblationFactors(b *testing.B) {
	overlapOf := func(r *experiments.Runner) float64 {
		a, err := r.Auditor(catalog.PlatformFacebook)
		if err != nil {
			b.Fatal(err)
		}
		female := core.GenderClass(population.Female)
		ind, err := r.Individuals(catalog.PlatformFacebook, female)
		if err != nil {
			b.Fatal(err)
		}
		top, err := a.GreedyCompositions(ind, female, core.ComposeConfig{K: 150, Direction: core.Top, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		tops := core.TopOf(top, 12)
		if len(tops) < 2 {
			return 0
		}
		med, err := a.MedianOverlap(tops, female, core.OverlapConfig{MaxPairs: 40, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		return med
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = overlapOf(ablationRunner(b, platform.DeployOptions{}))
		without = overlapOf(ablationRunner(b, platform.DeployOptions{NoLatentFactors: true}))
	}
	b.ReportMetric(with*100, "overlap-with-factors-pct")
	b.ReportMetric(without*100, "overlap-without-factors-pct")
}

// BenchmarkAblationActivity compares top-audience overlap with heavy-tailed
// activity on versus uniform activity: the per-user activity offset is the
// other half of Table 1's overlap (alongside latent factors).
func BenchmarkAblationActivity(b *testing.B) {
	overlapOf := func(r *experiments.Runner) float64 {
		a, err := r.Auditor(catalog.PlatformFacebookRestricted)
		if err != nil {
			b.Fatal(err)
		}
		male := core.GenderClass(population.Male)
		ind, err := r.Individuals(catalog.PlatformFacebookRestricted, male)
		if err != nil {
			b.Fatal(err)
		}
		top, err := a.GreedyCompositions(ind, male, core.ComposeConfig{K: 150, Direction: core.Top, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		tops := core.TopOf(top, 12)
		if len(tops) < 2 {
			return 0
		}
		med, err := a.MedianOverlap(tops, male, core.OverlapConfig{MaxPairs: 40, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		return med
	}
	var heavy, uniform float64
	for i := 0; i < b.N; i++ {
		heavy = overlapOf(ablationRunner(b, platform.DeployOptions{}))
		uniform = overlapOf(ablationRunner(b, platform.DeployOptions{UniformActivity: true}))
	}
	b.ReportMetric(heavy*100, "overlap-heavy-tail-pct")
	b.ReportMetric(uniform*100, "overlap-uniform-pct")
}

// BenchmarkAblationRounding compares the Top-2-way P90 rep ratio measured
// through rounded estimates versus exact counts: the audit's conclusions
// must not be artifacts of rounding (§3).
func BenchmarkAblationRounding(b *testing.B) {
	p90Of := func(r *experiments.Runner) float64 {
		a, err := r.Auditor(catalog.PlatformFacebookRestricted)
		if err != nil {
			b.Fatal(err)
		}
		male := core.GenderClass(population.Male)
		ind, err := r.Individuals(catalog.PlatformFacebookRestricted, male)
		if err != nil {
			b.Fatal(err)
		}
		top, err := a.GreedyCompositions(ind, male, core.ComposeConfig{K: 150, Direction: core.Top, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		p90, err := stats.Percentile(core.RepRatios(top), 90)
		if err != nil {
			b.Fatal(err)
		}
		return p90
	}
	var rounded, exact float64
	for i := 0; i < b.N; i++ {
		rounded = p90Of(ablationRunner(b, platform.DeployOptions{}))
		exact = p90Of(ablationRunner(b, platform.DeployOptions{ExactEstimates: true}))
	}
	b.ReportMetric(rounded, "p90-rounded")
	b.ReportMetric(exact, "p90-exact")
}

// BenchmarkAblationGreedyVsExhaustive quantifies the greedy discovery
// approximation (§3): on a truncated option pool, how much of the true
// top-K (by exhaustive pairwise search) does the greedy method recover?
func BenchmarkAblationGreedyVsExhaustive(b *testing.B) {
	r := runner(b)
	a, err := r.Auditor(catalog.PlatformFacebookRestricted)
	if err != nil {
		b.Fatal(err)
	}
	male := core.GenderClass(population.Male)
	ind, err := r.Individuals(catalog.PlatformFacebookRestricted, male)
	if err != nil {
		b.Fatal(err)
	}
	// Truncate the pool so the exhaustive baseline stays tractable:
	// C(60, 2) = 1,770 candidate pairs.
	pool := ind
	if len(pool) > 60 {
		pool = pool[:60]
	}
	const K = 30
	var recovered float64
	for i := 0; i < b.N; i++ {
		greedy, err := a.GreedyCompositions(pool, male, core.ComposeConfig{K: K, Direction: core.Top, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		// Exhaustive baseline: audit every pair.
		exhaustive, err := a.GreedyCompositions(pool, male, core.ComposeConfig{K: len(pool) * len(pool), Direction: core.Top, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		trueTop := core.TopOf(exhaustive, K)
		inTrue := make(map[string]bool, len(trueTop))
		for _, m := range trueTop {
			inTrue[m.Desc] = true
		}
		hits := 0
		for _, m := range core.TopOf(greedy, K) {
			if inTrue[m.Desc] {
				hits++
			}
		}
		recovered = float64(hits) / float64(len(trueTop))
	}
	b.ReportMetric(recovered*100, "topk-recovered-pct")
}

// BenchmarkAblationBeamVs3WayGreedy compares 3-way discovery strategies on
// the restricted interface: the paper's greedy combinatorial method versus
// beam search, reporting the discovered P90 ratio and the upstream query
// cost of each. Beam search reaches comparable skew with a bounded query
// budget — the escalation path the paper's appendix anticipates.
func BenchmarkAblationBeamVs3WayGreedy(b *testing.B) {
	male := core.GenderClass(population.Male)
	var greedyP90, beamP90, greedyCalls, beamCalls float64
	for i := 0; i < b.N; i++ {
		d, err := platform.NewDeployment(platform.DeployOptions{Seed: 101, UniverseSize: benchUniverse})
		if err != nil {
			b.Fatal(err)
		}

		// At the beam's skew extreme the out-of-class estimate often rounds
		// to zero (an unbounded ratio) — report the best finite ratio plus
		// the unbounded count, and the upstream query cost.
		run := func(f func(a *core.Auditor, ind []core.Measurement) ([]core.Measurement, error)) (best, unbounded, calls float64) {
			a := core.NewAuditor(core.NewPlatformProvider(d.FacebookRestricted))
			ind, err := a.Individuals(male)
			if err != nil {
				b.Fatal(err)
			}
			base := core.UpstreamCalls(a.Provider())
			ms, err := f(a, ind)
			if err != nil {
				b.Fatal(err)
			}
			best = core.MaxFinite(ms)
			if math.IsNaN(best) {
				best = 0 // every discovered composition was unbounded
			}
			unbounded = float64(len(ms) - len(core.RepRatios(ms)))
			calls = float64(core.UpstreamCalls(a.Provider()) - base)
			return best, unbounded, calls
		}

		var gUnbounded, bUnbounded float64
		greedyP90, gUnbounded, greedyCalls = run(func(a *core.Auditor, ind []core.Measurement) ([]core.Measurement, error) {
			return a.GreedyCompositions(ind, male, core.ComposeConfig{K: 300, Arity: 3, Direction: core.Top, Seed: 5})
		})
		beamP90, bUnbounded, beamCalls = run(func(a *core.Auditor, ind []core.Measurement) ([]core.Measurement, error) {
			return a.BeamCompositions(ind, male, core.BeamConfig{Arity: 3, Width: 40, Seeds: 30, Direction: core.Top})
		})
		_ = gUnbounded
		b.ReportMetric(bUnbounded, "beam-unbounded")
	}
	b.ReportMetric(greedyP90, "greedy-best-finite")
	b.ReportMetric(beamP90, "beam-best-finite")
	b.ReportMetric(greedyCalls, "greedy-queries")
	b.ReportMetric(beamCalls, "beam-queries")
}

// --- parallel audience engine micro-benchmarks ---

// measureBench prepares a warmed restricted interface and the audit's query
// stream for the Measure throughput benchmarks: a 40-plus battery (the
// ADEA-style protected class spans two age buckets, so every spec carries
// the same two-option age clause) — per attribute, a US-scoped reach query
// and its gender-conditioned refinement, the exact pair the auditor issues
// for every option it scans. The interface is pre-warmed so the timed loops
// exercise only the estimate path (no lazy materialization).
func measureBench(b testing.TB) (*platform.Interface, []targeting.Spec) {
	b.Helper()
	d, err := platform.NewDeployment(platform.DeployOptions{Seed: 7, UniverseSize: benchUniverse})
	if err != nil {
		b.Fatal(err)
	}
	p := d.FacebookRestricted.Warm()
	n := len(p.Catalog().Attributes)
	us := targeting.Clause{{Kind: targeting.KindLocation, ID: int(population.RegionUS)}}
	male := targeting.Clause{{Kind: targeting.KindGender, ID: int(population.Male)}}
	age40 := targeting.Clause{
		{Kind: targeting.KindAge, ID: int(population.Age35to54)},
		{Kind: targeting.KindAge, ID: int(population.Age55Plus)},
	}
	specs := make([]targeting.Spec, 64)
	for i := 0; i < len(specs); i += 2 {
		attr := targeting.Clause{{Kind: targeting.KindAttribute, ID: (i / 2) % n}}
		specs[i] = targeting.Spec{Include: []targeting.Clause{attr, us, age40}}
		specs[i+1] = targeting.Spec{Include: []targeting.Clause{attr, us, age40, male}}
	}
	return p, specs
}

// BenchmarkMeasureSerial measures single-goroutine estimate throughput —
// the baseline for the parallel speedup target.
func BenchmarkMeasureSerial(b *testing.B) {
	p, specs := measureBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Measure(platform.EstimateRequest{Spec: specs[i%len(specs)]}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchUniverse), "users/op")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkMeasureParallel measures estimate throughput with GOMAXPROCS
// goroutines hammering one shared interface: the lock-free estimate path
// should scale near-linearly with cores (target ≥4× serial at
// GOMAXPROCS ≥ 4).
func BenchmarkMeasureParallel(b *testing.B) {
	p, specs := measureBench(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := p.Measure(platform.EstimateRequest{Spec: specs[i%len(specs)]}); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.ReportMetric(float64(benchUniverse), "users/op")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkMeasureBatch measures batched estimate throughput: each
// iteration answers the full 64-spec batch with one MeasureMany call, so
// the attribute-set words stream through cache once per tile instead of
// once per spec. Reports per-query throughput plus the speedup over an
// inline serial baseline timed on the same warmed interface (target ≥2×).
func BenchmarkMeasureBatch(b *testing.B) {
	p, specs := measureBench(b)
	reqs := make([]platform.EstimateRequest, len(specs))
	for i, s := range specs {
		reqs[i].Spec = s
	}
	// Serial baseline: per-query cost of the one-spec door over the same
	// spec cycle, sampled briefly so the speedup metric is self-contained.
	serialStart := time.Now()
	serialOps := 0
	for time.Since(serialStart) < 50*time.Millisecond {
		if _, err := p.Measure(reqs[serialOps%len(reqs)]); err != nil {
			b.Fatal(err)
		}
		serialOps++
	}
	serialPerQuery := time.Since(serialStart).Seconds() / float64(serialOps)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ests, err := p.MeasureMany(reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ests {
			if e.Err != nil {
				b.Fatal(e.Err)
			}
		}
	}
	b.StopTimer()
	queries := float64(b.N) * float64(len(reqs))
	perQuery := b.Elapsed().Seconds() / queries
	b.ReportMetric(queries/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(serialPerQuery/perQuery, "speedup-vs-serial")
	b.ReportMetric(float64(len(reqs)), "batch-size")
}

// BenchmarkCompiledBatch measures the steady-state audit loop the query
// compiler targets: the same 64-spec battery as BenchmarkMeasureBatch, with
// canonical keys precomputed (as core's caching provider passes them down)
// and the plan and schedule caches warmed, so each iteration runs only the
// frozen schedule's kernels. The legacy per-batch lowering path
// (DeployOptions.NoPlanCompiler) is sampled inline over the identical
// workload so the speedup metric is self-contained.
func BenchmarkCompiledBatch(b *testing.B) {
	p, specs := measureBench(b)
	reqs := make([]platform.EstimateRequest, len(specs))
	for i, s := range specs {
		reqs[i].Spec = s
		reqs[i].CacheKey = targeting.Canonical(s)
	}

	ld, err := platform.NewDeployment(platform.DeployOptions{Seed: 7, UniverseSize: benchUniverse, NoPlanCompiler: true})
	if err != nil {
		b.Fatal(err)
	}
	lp := ld.FacebookRestricted.Warm()
	legacyStart := time.Now()
	legacyOps := 0
	for time.Since(legacyStart) < 200*time.Millisecond {
		ests, err := lp.MeasureMany(reqs)
		if err != nil {
			b.Fatal(err)
		}
		legacyOps += len(ests)
	}
	legacyPerQuery := time.Since(legacyStart).Seconds() / float64(legacyOps)

	// Warm the plan and schedule caches, and cross-check: compiled answers
	// must match the legacy path slot for slot before timing anything.
	warm, err := p.MeasureMany(reqs)
	if err != nil {
		b.Fatal(err)
	}
	check, err := lp.MeasureMany(reqs)
	if err != nil {
		b.Fatal(err)
	}
	for i := range warm {
		if warm[i].Err != nil || warm[i].Size != check[i].Size {
			b.Fatalf("slot %d: compiled (%d, %v) != legacy %d", i, warm[i].Size, warm[i].Err, check[i].Size)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ests, err := p.MeasureMany(reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ests {
			if e.Err != nil {
				b.Fatal(e.Err)
			}
		}
	}
	b.StopTimer()
	queries := float64(b.N) * float64(len(reqs))
	perQuery := b.Elapsed().Seconds() / queries
	b.ReportMetric(queries/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(legacyPerQuery/perQuery, "speedup-vs-legacy")
	b.ReportMetric(float64(len(reqs)), "batch-size")
}

// benchPopulationConfig is the universe config the construction benchmarks
// build (full feature set: factors, regions, heavy-tailed activity).
func benchPopulationConfig() population.Config {
	return population.Config{
		Seed:          7,
		Size:          benchUniverse,
		MaleShare:     0.48,
		AgeShare:      [population.NumAgeRanges]float64{0.16, 0.27, 0.33, 0.24},
		Factors:       catalog.Factors(),
		USShare:       0.85,
		ActivitySigma: 1.5,
	}
}

// BenchmarkUniverseNew measures sharded universe construction.
func BenchmarkUniverseNew(b *testing.B) {
	cfg := benchPopulationConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := population.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchUniverse), "users/op")
	b.ReportMetric(float64(benchUniverse)*float64(b.N)/b.Elapsed().Seconds(), "users/s")
}

// BenchmarkMaterialize measures sharded attribute-bitset materialization.
func BenchmarkMaterialize(b *testing.B) {
	u, err := population.New(benchPopulationConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := population.AttrModel{ID: 42, BaseLogit: -2.2, GenderLoad: 1.1, Factor: 0, FactorBoost: 1.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Materialize(m)
	}
	b.ReportMetric(float64(benchUniverse), "users/op")
	b.ReportMetric(float64(benchUniverse)*float64(b.N)/b.Elapsed().Seconds(), "users/s")
}

// BenchmarkDeploymentBuild measures testbed construction cost.
func BenchmarkDeploymentBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := platform.NewDeployment(platform.DeployOptions{Seed: 7, UniverseSize: 1 << 14}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndividualScan measures a full individual-attribute scan on the
// restricted interface (the audit's base workload).
func BenchmarkIndividualScan(b *testing.B) {
	d, err := platform.NewDeployment(platform.DeployOptions{Seed: 7, UniverseSize: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	male := core.GenderClass(population.Male)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.NewAuditor(core.NewPlatformProvider(d.FacebookRestricted))
		if _, err := a.Individuals(male); err != nil {
			b.Fatal(err)
		}
	}
}
