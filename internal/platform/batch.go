package platform

import (
	"time"

	"repro/internal/audience"
	"repro/internal/obs"
	"repro/internal/targeting"
)

// Estimate is one slot of a batched size query: the rounded platform-scale
// size, or the error the equivalent serial call would have returned.
type Estimate struct {
	Size int64
	Err  error
}

// MeasureMany answers a batch of auditor-door size queries in one tiled
// pass over the universe (audience.CountMany): per cache-sized block,
// every request is evaluated while the shared attribute words are hot, so
// a batch loads each set from memory once instead of once per spec.
// Results are bit-identical to len(reqs) serial Measure calls — the same
// validation, counting formula, scaling, and rounding run per request; no
// grouping by objective or frequency cap is needed because the user count
// is independent of both (they only scale the counted statistic).
// Per-request failures are reported in their slot, never as a batch error.
func (p *Interface) MeasureMany(reqs []EstimateRequest) ([]Estimate, error) {
	return p.sizeMany(reqs, p.MeasurementRules(), p.mMeasureQueries)
}

// EstimateMany is the advertiser-door equivalent of MeasureMany: batched
// Estimate calls under the advertiser rules.
func (p *Interface) EstimateMany(reqs []EstimateRequest) ([]Estimate, error) {
	return p.sizeMany(reqs, p.cfg.AdvertiserRules, p.mEstimateQueries)
}

// sizeMany validates every request, lowers the valid specs into kernel
// count requests, runs the tiled kernel once, and applies each platform's
// scaling and rounding per slot.
func (p *Interface) sizeMany(reqs []EstimateRequest, rules targeting.Rules, queries *obs.Counter) ([]Estimate, error) {
	out := make([]Estimate, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	p.mBatchSize.Observe(time.Duration(len(reqs)))

	// Pass 1: per-request parameter validation (same order of checks as the
	// serial path: rules, objective, frequency cap).
	eligible := make([]float64, len(reqs))
	impressions := make([]float64, len(reqs))
	refTotal, clauseTotal := 0, 0
	for i := range reqs {
		e, f, err := p.queryParams(reqs[i], rules)
		if err != nil {
			out[i].Err = err
			continue
		}
		eligible[i], impressions[i] = e, f
		for _, cl := range reqs[i].Spec.Include {
			refTotal += len(cl)
		}
		for _, cl := range reqs[i].Spec.Exclude {
			refTotal += len(cl)
		}
		clauseTotal += len(reqs[i].Spec.Include) + len(reqs[i].Spec.Exclude)
	}

	// Pass 2: lower valid specs into kernel requests. One set arena and one
	// clause arena back every request, so a 64-spec batch costs a handful
	// of allocations rather than hundreds.
	kreqs := make([]audience.CountReq, 0, len(reqs))
	slot := make([]int, 0, len(reqs))
	setArena := make([]*audience.Set, 0, refTotal)
	clauseArena := make([]audience.CountClause, 0, clauseTotal)
	for i := range reqs {
		if out[i].Err != nil {
			continue
		}
		kr, setEnd, clauseEnd, err := p.lowerSpec(reqs[i].Spec, setArena, clauseArena)
		if err != nil {
			out[i].Err = err
			continue
		}
		setArena, clauseArena = setEnd, clauseEnd
		kreqs = append(kreqs, kr)
		slot = append(slot, i)
	}

	counts := audience.CountMany(kreqs)
	if len(kreqs) > 0 {
		n := int64(len(kreqs))
		p.queryCount.Add(n)
		queries.Add(n)
		p.mBatchedQueries.Add(n)
		p.mBatchBlocks.Add(int64(audience.KernelBlocks(p.cfg.Universe.Size())))
	}

	// Scale and round exactly as the serial path does, with the counter
	// updates tallied once per batch.
	sf := p.ScaleFactor()
	var roundingHits, floorRejections int64
	for k, i := range slot {
		v := float64(counts[k]) * sf * eligible[i]
		if p.cfg.ImpressionEstimates {
			v *= impressions[i]
		}
		exact := int64(v + 0.5)
		rounded := p.cfg.Rounder.Round(exact)
		switch {
		case rounded == 0 && exact > 0:
			floorRejections++
		case rounded != exact:
			roundingHits++
		}
		out[i].Size = rounded
	}
	if floorRejections > 0 {
		p.mFloorRejections.Add(floorRejections)
	}
	if roundingHits > 0 {
		p.mRoundingHits.Add(roundingHits)
	}
	return out, nil
}

// lowerSpec resolves a spec's refs into one kernel count request, appending
// the resolved sets and clauses to the shared arenas. Error positions match
// countMatched: clauses in include-then-exclude order, refs in clause
// order, empty shapes rejected where the serial evaluation would reject
// them.
func (p *Interface) lowerSpec(spec targeting.Spec, setArena []*audience.Set, clauseArena []audience.CountClause) (audience.CountReq, []*audience.Set, []audience.CountClause, error) {
	if len(spec.Include) == 0 {
		return audience.CountReq{}, setArena, clauseArena, targeting.ErrEmptySpec
	}
	set0, clause0 := len(setArena), len(clauseArena)
	lowerClause := func(cl targeting.Clause, negate bool) error {
		if len(cl) == 0 {
			return targeting.ErrEmptyClause
		}
		s0 := len(setArena)
		for _, r := range cl {
			s, err := p.refSet(r)
			if err != nil {
				return err
			}
			setArena = append(setArena, s)
		}
		s1 := len(setArena)
		clauseArena = append(clauseArena, audience.CountClause{Or: setArena[s0:s1:s1], Negate: negate})
		return nil
	}
	for _, cl := range spec.Include {
		if err := lowerClause(cl, false); err != nil {
			return audience.CountReq{}, setArena[:set0], clauseArena[:clause0], err
		}
	}
	for _, cl := range spec.Exclude {
		if err := lowerClause(cl, true); err != nil {
			return audience.CountReq{}, setArena[:set0], clauseArena[:clause0], err
		}
	}
	c1 := len(clauseArena)
	return audience.CountReq{Clauses: clauseArena[clause0:c1:c1]}, setArena, clauseArena, nil
}
