package platform

import (
	"context"
	"sync"
	"time"

	"repro/internal/audience"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/targeting"
)

// Estimate is one slot of a batched size query: the rounded platform-scale
// size, or the error the equivalent serial call would have returned.
type Estimate struct {
	Size int64
	Err  error
}

// MeasureMany answers a batch of auditor-door size queries in one tiled
// pass over the universe (audience.CountMany): per cache-sized block,
// every request is evaluated while the shared attribute words are hot, so
// a batch loads each set from memory once instead of once per spec.
// Results are bit-identical to len(reqs) serial Measure calls — the same
// validation, counting formula, scaling, and rounding run per request; no
// grouping by objective or frequency cap is needed because the user count
// is independent of both (they only scale the counted statistic).
// Per-request failures are reported in their slot, never as a batch error.
func (p *Interface) MeasureMany(reqs []EstimateRequest) ([]Estimate, error) {
	return p.sizeMany(nil, reqs, p.MeasurementRules(), p.mMeasureQueries, "measure")
}

// MeasureManyCtx is MeasureMany under a trace context: when ctx carries a
// sampled span, the batch records a platform child span (plan-cache and
// kernel annotations) and per-slot provenance. With tracing disabled the
// two doors are byte-identical in behavior and within noise in cost — the
// only extra work is one context value lookup per batch.
func (p *Interface) MeasureManyCtx(ctx context.Context, reqs []EstimateRequest) ([]Estimate, error) {
	return p.sizeMany(trace.FromContext(ctx), reqs, p.MeasurementRules(), p.mMeasureQueries, "measure")
}

// EstimateMany is the advertiser-door equivalent of MeasureMany: batched
// Estimate calls under the advertiser rules.
func (p *Interface) EstimateMany(reqs []EstimateRequest) ([]Estimate, error) {
	return p.sizeMany(nil, reqs, p.cfg.AdvertiserRules, p.mEstimateQueries, "estimate")
}

// EstimateManyCtx is EstimateMany under a trace context.
func (p *Interface) EstimateManyCtx(ctx context.Context, reqs []EstimateRequest) ([]Estimate, error) {
	return p.sizeMany(trace.FromContext(ctx), reqs, p.cfg.AdvertiserRules, p.mEstimateQueries, "estimate")
}

// sizeMany answers a batch through the query compiler: every valid spec
// resolves to a cached compiled plan (keyed by its canonical form), the
// batch of plans is frozen into a cached execution schedule, and only the
// kernels run per call. Validation stays per-request and syntactic — the
// canonical key collapses duplicate refs and clauses that the rules reject,
// so validation outcomes must never be shared across specs with equal
// keys — and the scaling and rounding are identical to the serial path.
// When the compiler is disabled (Config.PlanCacheSize < 0) the per-batch
// lowering path is used instead.
//
// parent is the caller's trace span (nil on untraced calls — the hot-path
// default, costing only the nil checks). All tracing work is per batch,
// never per spec, except provenance emission, which is gated on the parent
// being a sampled span of a provenance-collecting tracer.
func (p *Interface) sizeMany(parent *trace.Span, reqs []EstimateRequest, rules targeting.Rules, queries *obs.Counter, door string) ([]Estimate, error) {
	span := trace.ChildOf(parent, "platform.size_many")
	if span != nil {
		defer span.End()
		span.Annotate("interface", p.cfg.Name)
		span.Annotate("door", door)
		span.AnnotateInt("specs", int64(len(reqs)))
	}
	if p.plans == nil {
		// CSetOnly shards and snapshot-backed (view) interfaces share the
		// compressed batch door: the legacy lowering would re-materialize
		// dense catalog sets both postures exist to avoid.
		if p.cfg.CSetOnly || p.cfg.Views != nil {
			span.Annotate("path", "cset")
			return p.sizeManyCSet(reqs, rules, queries)
		}
		span.Annotate("path", "legacy")
		return p.sizeManyLegacy(reqs, rules, queries)
	}
	out := make([]Estimate, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	p.mBatchSize.Observe(time.Duration(len(reqs)))

	// Pass 1: per-request parameter validation, exactly as the serial path
	// orders its checks (rules, objective, frequency cap).
	eligible := make([]float64, len(reqs))
	impressions := make([]float64, len(reqs))
	for i := range reqs {
		e, f, err := p.queryParams(reqs[i], rules)
		if err != nil {
			out[i].Err = err
			continue
		}
		eligible[i], impressions[i] = e, f
	}

	// Pass 2: optimistic schedule lookup. The batch's schedule key is the
	// concatenation of the param-valid slots' canonical keys in slot order;
	// a hit means this exact spec sequence compiled before with every plan
	// cache-stable, so the frozen schedule executes with no per-slot plan
	// resolution at all — the steady-state audit loop's path. The key buffer
	// and slot bookkeeping come from a pool: the loop runs per batch, and
	// growing a fresh 2KB key by appends would cost more than the lookup.
	bs := batchScratchPool.Get().(*batchScratch)
	valid := bs.valid[:0]
	keys := bs.keys[:0]
	schedKey := bs.schedKey[:0]
	for len(keys) < len(reqs) {
		keys = append(keys, "")
	}
	for i := range reqs {
		if out[i].Err != nil {
			continue
		}
		key := reqs[i].CacheKey
		if key == "" {
			key = targeting.Canonical(reqs[i].Spec)
		}
		keys[i] = key
		valid = append(valid, i)
		schedKey = append(schedKey, key...)
		schedKey = append(schedKey, 0)
	}

	var counts []int
	var slot []int
	if pb, ok := p.plans.scheds.getBytes(schedKey); ok && len(valid) > 0 {
		p.mPlanHits.Add(int64(len(valid)))
		span.Annotate("sched_cache", "hit")
		ks := trace.ChildOf(span, "platform.kernel")
		counts = pb.Exec()
		if ks != nil {
			ks.AnnotateInt("blocks", int64(audience.KernelBlocks(p.cfg.Universe.Size())))
			ks.End()
		}
		slot = valid
	} else {
		// Miss: resolve each slot's plan (cached by its canonical key),
		// compile the schedule, and freeze it under the batch key — but only
		// when every param-valid slot resolved to a cache-stable plan. A
		// cached schedule therefore never owns a resolution error (whose
		// identity depends on the request's literal clause order, not its
		// canonical form) or a transient custom-audience plan.
		span.Annotate("sched_cache", "miss")
		cs := trace.ChildOf(span, "platform.plan_compile")
		plans := make([]*audience.Plan, 0, len(valid))
		slot = make([]int, 0, len(valid))
		schedulable := true
		planMisses := int64(0)
		for _, i := range valid {
			plan, cached, err := p.planFor(keys[i], reqs[i].Spec)
			if err != nil {
				out[i].Err = err
				schedulable = false
				continue
			}
			plans = append(plans, plan)
			slot = append(slot, i)
			if !cached {
				schedulable = false
				planMisses++
			}
		}
		if cs != nil {
			cs.AnnotateInt("plans", int64(len(plans)))
			cs.AnnotateInt("plan_cache_misses", planMisses)
			cs.End()
		}
		if len(plans) > 0 {
			pb := audience.CompileBatch(plans)
			if schedulable {
				p.plans.scheds.add(string(schedKey), pb)
			}
			ks := trace.ChildOf(span, "platform.kernel")
			counts = pb.Exec()
			if ks != nil {
				ks.AnnotateInt("blocks", int64(audience.KernelBlocks(p.cfg.Universe.Size())))
				ks.End()
			}
		}
	}
	if len(slot) > 0 {
		n := int64(len(slot))
		p.queryCount.Add(n)
		queries.Add(n)
		p.mBatchedQueries.Add(n)
		p.mBatchBlocks.Add(int64(audience.KernelBlocks(p.cfg.Universe.Size())))
	}

	p.scaleAndRound(out, counts, slot, eligible, impressions)
	if plog := span.ProvenanceLog(); plog != nil {
		// Sampled + provenance-collecting: one record per served slot, tying
		// the size to the canonical key, the compiled plan, and the trace.
		tid := span.TraceID()
		for _, i := range slot {
			plog.Add(trace.Provenance{
				Platform: p.cfg.Name,
				Key:      keys[i],
				Source:   "platform",
				PlanHash: trace.PlanHash(p.cfg.Name, keys[i]),
				TraceID:  tid,
				Value:    out[i].Size,
			})
		}
	}
	bs.valid, bs.keys, bs.schedKey = valid, keys, schedKey
	batchScratchPool.Put(bs)
	return out, nil
}

// batchScratch is sizeMany's pooled per-batch bookkeeping: the valid-slot
// list, the per-slot canonical keys, and the concatenated schedule key.
type batchScratch struct {
	valid    []int
	keys     []string
	schedKey []byte
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// scaleAndRound applies the platform's scaling and rounding to the raw
// kernel counts, exactly as the serial path does, with the counter updates
// tallied once per batch.
func (p *Interface) scaleAndRound(out []Estimate, counts []int, slot []int, eligible, impressions []float64) {
	sf := p.ScaleFactor()
	var roundingHits, floorRejections int64
	for k, i := range slot {
		v := float64(counts[k]) * sf * eligible[i]
		if p.cfg.ImpressionEstimates {
			v *= impressions[i]
		}
		exact := int64(v + 0.5)
		rounded := p.cfg.Rounder.Round(exact)
		switch {
		case rounded == 0 && exact > 0:
			floorRejections++
		case rounded != exact:
			roundingHits++
		}
		out[i].Size = rounded
	}
	if floorRejections > 0 {
		p.mFloorRejections.Add(floorRejections)
	}
	if roundingHits > 0 {
		p.mRoundingHits.Add(roundingHits)
	}
}

// sizeManyLegacy validates every request, lowers the valid specs into
// kernel count requests, runs the tiled kernel once, and applies each
// platform's scaling and rounding per slot. This is the pre-compiler batch
// path, kept behind Config.PlanCacheSize < 0 as the compiler's benchmark
// baseline.
func (p *Interface) sizeManyLegacy(reqs []EstimateRequest, rules targeting.Rules, queries *obs.Counter) ([]Estimate, error) {
	out := make([]Estimate, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	p.mBatchSize.Observe(time.Duration(len(reqs)))

	// Pass 1: per-request parameter validation (same order of checks as the
	// serial path: rules, objective, frequency cap).
	eligible := make([]float64, len(reqs))
	impressions := make([]float64, len(reqs))
	refTotal, clauseTotal := 0, 0
	for i := range reqs {
		e, f, err := p.queryParams(reqs[i], rules)
		if err != nil {
			out[i].Err = err
			continue
		}
		eligible[i], impressions[i] = e, f
		for _, cl := range reqs[i].Spec.Include {
			refTotal += len(cl)
		}
		for _, cl := range reqs[i].Spec.Exclude {
			refTotal += len(cl)
		}
		clauseTotal += len(reqs[i].Spec.Include) + len(reqs[i].Spec.Exclude)
	}

	// Pass 2: lower valid specs into kernel requests. One set arena and one
	// clause arena back every request, so a 64-spec batch costs a handful
	// of allocations rather than hundreds.
	kreqs := make([]audience.CountReq, 0, len(reqs))
	slot := make([]int, 0, len(reqs))
	setArena := make([]*audience.Set, 0, refTotal)
	clauseArena := make([]audience.CountClause, 0, clauseTotal)
	for i := range reqs {
		if out[i].Err != nil {
			continue
		}
		kr, setEnd, clauseEnd, err := p.lowerSpec(reqs[i].Spec, setArena, clauseArena)
		if err != nil {
			out[i].Err = err
			continue
		}
		setArena, clauseArena = setEnd, clauseEnd
		kreqs = append(kreqs, kr)
		slot = append(slot, i)
	}

	counts := audience.CountMany(kreqs)
	if len(kreqs) > 0 {
		n := int64(len(kreqs))
		p.queryCount.Add(n)
		queries.Add(n)
		p.mBatchedQueries.Add(n)
		p.mBatchBlocks.Add(int64(audience.KernelBlocks(p.cfg.Universe.Size())))
	}

	p.scaleAndRound(out, counts, slot, eligible, impressions)
	return out, nil
}

// lowerSpec resolves a spec's refs into one kernel count request, appending
// the resolved sets and clauses to the shared arenas. Error positions match
// countMatched: clauses in include-then-exclude order, refs in clause
// order, empty shapes rejected where the serial evaluation would reject
// them.
func (p *Interface) lowerSpec(spec targeting.Spec, setArena []*audience.Set, clauseArena []audience.CountClause) (audience.CountReq, []*audience.Set, []audience.CountClause, error) {
	if len(spec.Include) == 0 {
		return audience.CountReq{}, setArena, clauseArena, targeting.ErrEmptySpec
	}
	set0, clause0 := len(setArena), len(clauseArena)
	lowerClause := func(cl targeting.Clause, negate bool) error {
		if len(cl) == 0 {
			return targeting.ErrEmptyClause
		}
		s0 := len(setArena)
		for _, r := range cl {
			s, err := p.refSet(r)
			if err != nil {
				return err
			}
			setArena = append(setArena, s)
		}
		s1 := len(setArena)
		clauseArena = append(clauseArena, audience.CountClause{Or: setArena[s0:s1:s1], Negate: negate})
		return nil
	}
	for _, cl := range spec.Include {
		if err := lowerClause(cl, false); err != nil {
			return audience.CountReq{}, setArena[:set0], clauseArena[:clause0], err
		}
	}
	for _, cl := range spec.Exclude {
		if err := lowerClause(cl, true); err != nil {
			return audience.CountReq{}, setArena[:set0], clauseArena[:clause0], err
		}
	}
	c1 := len(clauseArena)
	return audience.CountReq{Clauses: clauseArena[clause0:c1:c1]}, setArena, clauseArena, nil
}
