package platform

import (
	"context"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/targeting"
)

// MeasureCtx is Measure under a trace context: when ctx carries a sampled
// span the measurement records a platform child span and a provenance
// record; untraced contexts take the exact serial path at the cost of one
// context lookup.
func (p *Interface) MeasureCtx(ctx context.Context, req EstimateRequest) (int64, error) {
	return p.sizeCtx(ctx, req, p.MeasurementRules(), p.mMeasureQueries, "measure")
}

// EstimateCtx is Estimate under a trace context.
func (p *Interface) EstimateCtx(ctx context.Context, req EstimateRequest) (int64, error) {
	return p.sizeCtx(ctx, req, p.cfg.AdvertiserRules, p.mEstimateQueries, "estimate")
}

// sizeCtx runs one serial size query under an optional trace span. The
// measurement itself is the untraced code verbatim (estimateExact +
// roundAndCount), so traced and untraced calls are bit-identical.
func (p *Interface) sizeCtx(ctx context.Context, req EstimateRequest, rules targeting.Rules, queries *obs.Counter, door string) (int64, error) {
	span := trace.ChildOf(trace.FromContext(ctx), "platform."+door)
	v, err := p.estimateExact(req, rules)
	if err != nil {
		if span != nil {
			span.Annotate("interface", p.cfg.Name)
			span.SetError(err)
			span.End()
		}
		return 0, err
	}
	size := p.roundAndCount(v, queries)
	if span != nil {
		span.Annotate("interface", p.cfg.Name)
		if plog := span.ProvenanceLog(); plog != nil {
			key := req.CacheKey
			if key == "" {
				key = targeting.Canonical(req.Spec)
			}
			plog.Add(trace.Provenance{
				Platform: p.cfg.Name,
				Key:      key,
				Source:   "platform",
				TraceID:  span.TraceID(),
				Value:    size,
			})
		}
		span.End()
	}
	return size, nil
}
