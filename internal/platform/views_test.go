package platform

import (
	"fmt"
	"testing"

	"repro/internal/audience"
	"repro/internal/catalog"
	"repro/internal/population"
	"repro/internal/targeting"
)

// prebuiltFrom round-trips a built deployment's state through the snapshot
// encoding in memory: per-user universe arrays plus every catalog option
// encoded and re-decoded as a view. This is what internal/snapshot does over
// an mmap'd file, reproduced here so the platform package can test the
// view-backed posture without an import cycle.
func prebuiltFrom(t testing.TB, d *Deployment) *Prebuilt {
	t.Helper()
	pre := &Prebuilt{
		Universes: map[string]population.UniverseData{
			catalog.PlatformFacebook: d.Facebook.Universe().Data(),
			catalog.PlatformGoogle:   d.Google.Universe().Data(),
			catalog.PlatformLinkedIn: d.LinkedIn.Universe().Data(),
		},
		Views: make(map[string]*OptionViews, 4),
	}
	for _, p := range d.Interfaces() {
		views := &OptionViews{}
		dim := func(kind targeting.Kind, count int) []*audience.CSetView {
			out := make([]*audience.CSetView, count)
			for i := 0; i < count; i++ {
				c, err := p.OptionCSet(targeting.Ref{Kind: kind, ID: i})
				if err != nil {
					t.Fatalf("%s option %d: %v", p.Name(), i, err)
				}
				v, err := audience.DecodeCSetView(audience.EncodeCSet(nil, c))
				if err != nil {
					t.Fatalf("%s option %d: %v", p.Name(), i, err)
				}
				out[i] = v
			}
			return out
		}
		views.Attributes = dim(targeting.KindAttribute, len(p.Catalog().Attributes))
		views.Topics = dim(targeting.KindTopic, len(p.Catalog().Topics))
		views.Placements = dim(targeting.KindPlacement, len(p.Catalog().Placements))
		pre.Views[p.Name()] = views
	}
	return pre
}

// TestViewBackedDeploymentEquivalence pins the view-mode query path at the
// platform layer: a deployment assembled from prebuilt views must answer the
// full random batch surface bit-identically to the built deployment it came
// from, on every interface and through both doors.
func TestViewBackedDeploymentEquivalence(t *testing.T) {
	opts := DeployOptions{Seed: 71, UniverseSize: 1 << 12}
	built, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	viewed, err := NewDeploymentFrom(opts, prebuiltFrom(t, built))
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range viewed.Interfaces() {
		bp := built.Interfaces()[pi]
		if plans, unions, scheds := p.PlanCacheStats(); plans+unions+scheds != 0 {
			t.Fatalf("%s: view-backed interface has compiler caches (%d/%d/%d)", p.Name(), plans, unions, scheds)
		}
		reqs := randomBatch(bp, 777, 80)
		want, err := bp.MeasureMany(reqs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.MeasureMany(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			sameOutcome(t, p.Name()+"/views", i, got[i], want[i].Size, want[i].Err)
		}
		// Warm must not change behaviour (or allocate the dense catalog).
		p.Warm()
		again, err := p.MeasureMany(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			sameOutcome(t, p.Name()+"/views-warm", i, again[i], want[i].Size, want[i].Err)
		}
	}
}

// TestPlanCacheRebuildCounter pins the eviction-churn fix's observability:
// a thrashing union cache rematerializes evicted union operands and each
// rematerialization increments plan_cache_rebuilds_total; a view-backed
// interface never compiles plans at all, so its counter stays at zero.
func TestPlanCacheRebuildCounter(t *testing.T) {
	opts := DeployOptions{Seed: 73, UniverseSize: 1 << 11}
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Facebook
	p.plans = newPlanCache(3) // unions LRU bottoms out at minDerivedCacheSize

	// More distinct OR-clause unions than the derived cache holds, so every
	// full pass evicts; the second pass rebuilds what the first already
	// materialized.
	nAttr := len(p.Catalog().Attributes)
	reqs := make([]EstimateRequest, minDerivedCacheSize+8)
	for i := range reqs {
		reqs[i].Spec = targeting.Spec{Include: []targeting.Clause{{
			{Kind: targeting.KindAttribute, ID: i % nAttr},
			{Kind: targeting.KindAttribute, ID: (i + 13) % nAttr},
		}}}
	}
	// Single-spec batches so neither the plan cache (cap 3) nor the frozen
	// schedule cache can absorb the repeats: every pass recompiles, and pass
	// two's union-cache misses are all rematerializations of evicted unions.
	r0 := p.mPlanRebuilds.Value()
	for i := range reqs {
		if _, err := p.MeasureMany(reqs[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.mPlanRebuilds.Value() - r0; got != 0 {
		t.Fatalf("first pass recorded %d rebuilds, want 0 (every union is new)", got)
	}
	for i := range reqs {
		if _, err := p.MeasureMany(reqs[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	rebuilds := p.mPlanRebuilds.Value() - r0
	if rebuilds == 0 {
		t.Fatal("second thrashing pass recorded no union rebuilds")
	}

	viewed, err := NewDeploymentFrom(opts, prebuiltFrom(t, d))
	if err != nil {
		t.Fatal(err)
	}
	vp := viewed.Facebook
	v0 := vp.mPlanRebuilds.Value()
	for round := 0; round < 2; round++ {
		if _, err := vp.MeasureMany(reqs); err != nil {
			t.Fatal(err)
		}
	}
	if got := vp.mPlanRebuilds.Value() - v0; got != 0 {
		t.Fatalf("view-backed interface recorded %d rebuilds, want 0", got)
	}
}

// TestViewsValidate pins Config.Views validation: wrong lengths, nil views,
// and universe-size disagreement are all constructor errors.
func TestViewsValidate(t *testing.T) {
	opts := DeployOptions{Seed: 79, UniverseSize: 1 << 11}
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	pre := prebuiltFrom(t, d)

	broken := *pre.Views[catalog.PlatformFacebook]
	broken.Attributes = broken.Attributes[:len(broken.Attributes)-1]
	preBad := &Prebuilt{Universes: pre.Universes, Views: map[string]*OptionViews{
		catalog.PlatformFacebook:           &broken,
		catalog.PlatformFacebookRestricted: pre.Views[catalog.PlatformFacebookRestricted],
		catalog.PlatformGoogle:             pre.Views[catalog.PlatformGoogle],
		catalog.PlatformLinkedIn:           pre.Views[catalog.PlatformLinkedIn],
	}}
	if _, err := NewDeploymentFrom(opts, preBad); err == nil {
		t.Fatal("short attribute view slice accepted")
	}

	nilled := *pre.Views[catalog.PlatformFacebook]
	nilled.Attributes = append([]*audience.CSetView(nil), nilled.Attributes...)
	nilled.Attributes[3] = nil
	preBad.Views[catalog.PlatformFacebook] = &nilled
	if _, err := NewDeploymentFrom(opts, preBad); err == nil {
		t.Fatal("nil view accepted")
	}

	missing := &Prebuilt{Universes: pre.Universes, Views: map[string]*OptionViews{}}
	if _, err := NewDeploymentFrom(opts, missing); err == nil {
		t.Fatal("missing views accepted")
	}

	noUni := &Prebuilt{Universes: map[string]population.UniverseData{}, Views: pre.Views}
	if _, err := NewDeploymentFrom(opts, noUni); err == nil {
		t.Fatal("missing universes accepted")
	}
}

// TestCatalogHashProperties pins the hash the staleness checks hang from:
// deterministic, seed-sensitive, and ablation-sensitive.
func TestCatalogHashProperties(t *testing.T) {
	build := func(opts DeployOptions) string {
		d, err := NewDeployment(opts)
		if err != nil {
			t.Fatal(err)
		}
		return CatalogHash(d)
	}
	a := build(DeployOptions{Seed: 83, UniverseSize: 1 << 11})
	if b := build(DeployOptions{Seed: 83, UniverseSize: 1 << 11}); a != b {
		t.Fatalf("catalog hash not deterministic: %s vs %s", a, b)
	}
	// The catalog draws only from the seed, not the universe size.
	if b := build(DeployOptions{Seed: 83, UniverseSize: 1 << 12}); a != b {
		t.Fatalf("universe size changed the catalog hash: %s vs %s", a, b)
	}
	if b := build(DeployOptions{Seed: 89, UniverseSize: 1 << 11}); a == b {
		t.Fatal("different seeds produced the same catalog hash")
	}
	if got := fmt.Sprintf("%.8s", a); len(got) != 8 {
		t.Fatal("unreachable")
	}
}

// TestOptionCSetKinds pins OptionCSet's kind gate and its agreement across
// retained forms (dense, compressed, view-backed).
func TestOptionCSetKinds(t *testing.T) {
	opts := DeployOptions{Seed: 97, UniverseSize: 1 << 11}
	d, err := NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Facebook
	if _, err := p.OptionCSet(targeting.Ref{Kind: targeting.KindGender, ID: 0}); err == nil {
		t.Fatal("demographic kind accepted")
	}
	if _, err := p.OptionCSet(targeting.Ref{Kind: targeting.KindAttribute, ID: 1 << 20}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	dense, err := p.OptionCSet(targeting.Ref{Kind: targeting.KindAttribute, ID: 5})
	if err != nil {
		t.Fatal(err)
	}
	viewed, err := NewDeploymentFrom(opts, prebuiltFrom(t, d))
	if err != nil {
		t.Fatal(err)
	}
	fromView, err := viewed.Facebook.OptionCSet(targeting.Ref{Kind: targeting.KindAttribute, ID: 5})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Count() != fromView.Count() || !audience.Equal(dense.ToSet(), fromView.ToSet()) {
		t.Fatal("view-backed OptionCSet disagrees with dense")
	}
}
