package platform

import (
	"sync"
	"testing"

	"repro/internal/targeting"
	"repro/internal/xrand"
)

// randomBatch builds a mixed batch of requests against p: valid and invalid
// specs, OR clauses, demographics, exclusions, mixed objectives and
// frequency caps — every shape the serial door accepts or rejects.
func randomBatch(p *Interface, seed uint64, n int) []EstimateRequest {
	rng := xrand.New(xrand.Mix(seed, 99))
	nAttr := len(p.Catalog().Attributes)
	nTopic := len(p.Catalog().Topics)
	objectives := []Objective{"", ObjectiveReach, ObjectiveBrandAwarenessReach, ObjectiveBrandAwareness, ObjectiveTraffic, "bogus"}
	caps := []int{0, 0, 0, 1, 3, 30, 31, -2}
	reqs := make([]EstimateRequest, n)
	for i := range reqs {
		var spec targeting.Spec
		switch rng.Intn(8) {
		case 0: // single attribute
			spec = targeting.Attr(rng.Intn(nAttr))
		case 1: // AND of two attributes
			spec = targeting.And(targeting.Attr(rng.Intn(nAttr)), targeting.Attr(rng.Intn(nAttr)))
		case 2: // attribute ∧ topic (the only AND Google accepts)
			if nTopic > 0 {
				spec = targeting.And(targeting.Attr(rng.Intn(nAttr)), targeting.Topic(rng.Intn(nTopic)))
			} else {
				spec = targeting.Attr(rng.Intn(nAttr))
			}
		case 3: // OR clause of two attributes
			spec = targeting.Spec{Include: []targeting.Clause{{
				{Kind: targeting.KindAttribute, ID: rng.Intn(nAttr)},
				{Kind: targeting.KindAttribute, ID: rng.Intn(nAttr)},
			}}}
		case 4: // attribute conditioned on a demographic
			spec = targeting.And(targeting.Attr(rng.Intn(nAttr)))
			spec.Include = append(spec.Include, targeting.Clause{{Kind: targeting.KindGender, ID: rng.Intn(2)}})
		case 5: // attribute minus an attribute (exclusions are rule-gated)
			spec = targeting.Attr(rng.Intn(nAttr))
			spec.Exclude = []targeting.Clause{{{Kind: targeting.KindAttribute, ID: rng.Intn(nAttr)}}}
		case 6: // unknown option id
			spec = targeting.Attr(nAttr + rng.Intn(10))
		default: // empty spec
			spec = targeting.Spec{}
		}
		reqs[i] = EstimateRequest{
			Spec:                 spec,
			Objective:            objectives[rng.Intn(len(objectives))],
			FrequencyCapPerMonth: caps[rng.Intn(len(caps))],
		}
	}
	return reqs
}

// sameOutcome asserts one batch slot matches the serial call's outcome.
func sameOutcome(t *testing.T, name string, i int, got Estimate, size int64, err error) {
	t.Helper()
	if (got.Err == nil) != (err == nil) {
		t.Fatalf("%s req %d: batch err=%v, serial err=%v", name, i, got.Err, err)
	}
	if err != nil {
		if got.Err.Error() != err.Error() {
			t.Fatalf("%s req %d: batch err %q, serial err %q", name, i, got.Err, err)
		}
		return
	}
	if got.Size != size {
		t.Fatalf("%s req %d: batch size %d, serial size %d", name, i, got.Size, size)
	}
}

// TestMeasureManyMatchesSerial is the bit-identity property test: on all
// four interfaces, MeasureMany over a mixed batch must return exactly what
// N serial Measure calls return — same sizes, same errors — in any slot
// order.
func TestMeasureManyMatchesSerial(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 23, UniverseSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Interfaces() {
		reqs := randomBatch(p, 1000+uint64(len(p.Name())), 80)
		got, err := p.MeasureMany(reqs)
		if err != nil {
			t.Fatalf("%s: MeasureMany: %v", p.Name(), err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("%s: MeasureMany returned %d results for %d requests", p.Name(), len(got), len(reqs))
		}
		for i, req := range reqs {
			size, serr := p.Measure(req)
			sameOutcome(t, p.Name(), i, got[i], size, serr)
		}
		// Slot order must not matter: reverse the batch and re-check.
		rev := make([]EstimateRequest, len(reqs))
		for i := range reqs {
			rev[len(reqs)-1-i] = reqs[i]
		}
		gotRev, err := p.MeasureMany(rev)
		if err != nil {
			t.Fatalf("%s: MeasureMany(reversed): %v", p.Name(), err)
		}
		for i := range reqs {
			j := len(reqs) - 1 - i
			if (got[i].Err == nil) != (gotRev[j].Err == nil) || got[i].Size != gotRev[j].Size {
				t.Fatalf("%s req %d: order-dependent result: %+v vs %+v", p.Name(), i, got[i], gotRev[j])
			}
		}
	}
}

// TestEstimateManyMatchesSerial checks the advertiser door the same way
// (its rules differ: FB-restricted rejects demographics and exclusions).
func TestEstimateManyMatchesSerial(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 29, UniverseSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Interfaces() {
		reqs := randomBatch(p, 2000+uint64(len(p.Name())), 60)
		got, err := p.EstimateMany(reqs)
		if err != nil {
			t.Fatalf("%s: EstimateMany: %v", p.Name(), err)
		}
		for i, req := range reqs {
			size, serr := p.Estimate(req)
			sameOutcome(t, p.Name(), i, got[i], size, serr)
		}
	}
}

// TestMeasureManyEmpty covers the zero-length batch.
func TestMeasureManyEmpty(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 31, UniverseSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.FacebookRestricted.MeasureMany(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("MeasureMany(nil) = %v, %v; want empty, nil", got, err)
	}
}

// TestMeasureManyConcurrentWithSerial hammers one shared interface with
// concurrent batches and single-spec calls — the race detector's view of
// the batch path sharing lazySet caches and counters with serial traffic.
func TestMeasureManyConcurrentWithSerial(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 37, UniverseSize: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Google // impression estimates: exercises the cap factor too
	reqs := randomBatch(p, 777, 32)
	want, err := p.MeasureMany(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got, err := p.MeasureMany(reqs)
				if err != nil {
					t.Errorf("MeasureMany: %v", err)
					return
				}
				for i := range got {
					if got[i].Size != want[i].Size {
						t.Errorf("req %d: concurrent batch size %d, want %d", i, got[i].Size, want[i].Size)
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				i := (g*20 + iter) % len(reqs)
				size, serr := p.Measure(reqs[i])
				if (serr == nil) != (want[i].Err == nil) || size != want[i].Size {
					t.Errorf("req %d: concurrent serial (%d, %v), want (%d, %v)", i, size, serr, want[i].Size, want[i].Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
