package platform

import (
	"errors"
	"fmt"

	"repro/internal/audience"
	"repro/internal/lookalike"
	"repro/internal/pii"
	"repro/internal/pixel"
	"repro/internal/targeting"
)

// AudienceKind classifies a custom audience by how it was built.
type AudienceKind string

// Custom audience kinds (paper §2.1: PII-based, activity-based, and
// lookalike targeting; §2.2: Special Ad Audiences on the restricted
// interface).
const (
	AudiencePII       AudienceKind = "pii"
	AudiencePixel     AudienceKind = "pixel"
	AudienceLookalike AudienceKind = "lookalike"
	AudienceSpecialAd AudienceKind = "special-ad"
)

// CustomAudienceInfo is the advertiser-visible description of a custom
// audience. The platform never reveals the matched user identities — only
// metadata, exactly like the real products.
type CustomAudienceInfo struct {
	ID   int          `json:"id"`
	Name string       `json:"name"`
	Kind AudienceKind `json:"kind"`
	// Matched is the number of uploaded records that matched a user (PII
	// audiences only; simulated count).
	Matched int `json:"matched,omitempty"`
	// SourceID is the seed audience for lookalike/special-ad audiences.
	SourceID int `json:"source_id,omitempty"`
}

// customAudience pairs the metadata with the materialized set.
type customAudience struct {
	info CustomAudienceInfo
	set  *audience.Set
}

// Custom-audience errors.
var (
	ErrAudienceTooSmall     = errors.New("platform: too few matched users for a custom audience")
	ErrUnknownAudience      = errors.New("platform: unknown custom audience")
	ErrLookalikeOfLookalike = errors.New("platform: lookalike audiences cannot seed further lookalikes")
)

// MinAudienceMatched is the smallest usable custom audience in simulated
// users (the real platforms require e.g. 100 matched users; the simulated
// bound scales with universe granularity).
const MinAudienceMatched = 20

// Directory returns the interface's PII directory (shared across
// interfaces over the same universe, since it is derived from the
// universe's seed and size).
func (p *Interface) Directory() *pii.Directory {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dir == nil {
		cfg := p.cfg.Universe.Config()
		p.dir = pii.NewDirectory(cfg.Seed, cfg.Size)
	}
	return p.dir
}

// Tracker returns the interface's pixel-event tracker.
func (p *Interface) Tracker() *pixel.Tracker {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tracker == nil {
		p.tracker = pixel.NewTracker(p.cfg.Universe)
	}
	return p.tracker
}

// addAudience registers a built set under the next id.
func (p *Interface) addAudience(info CustomAudienceInfo, set *audience.Set) CustomAudienceInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	info.ID = len(p.custom)
	p.custom = append(p.custom, customAudience{info: info, set: set})
	return info
}

// CreatePIIAudience matches uploaded hashed records against the platform's
// user base and stores the result as a custom audience (Facebook "Customer
// list" audiences, Google Customer Match, LinkedIn Contact Targeting).
func (p *Interface) CreatePIIAudience(name string, records []pii.HashedRecord) (CustomAudienceInfo, error) {
	if name == "" {
		return CustomAudienceInfo{}, errors.New("platform: audience name required")
	}
	matched := p.Directory().MatchAll(records)
	if len(matched) < MinAudienceMatched {
		return CustomAudienceInfo{}, fmt.Errorf("%w: %d < %d", ErrAudienceTooSmall, len(matched), MinAudienceMatched)
	}
	set := audience.New(p.cfg.Universe.Size())
	for _, i := range matched {
		set.Add(i)
	}
	return p.addAudience(CustomAudienceInfo{
		Name: name, Kind: AudiencePII, Matched: len(matched),
	}, set), nil
}

// CreatePixelAudience stores a website-activity audience (paper §2.1
// activity-based targeting; available even on the restricted interface).
func (p *Interface) CreatePixelAudience(name string, siteID int, event pixel.Event, windowDays int) (CustomAudienceInfo, error) {
	if name == "" {
		return CustomAudienceInfo{}, errors.New("platform: audience name required")
	}
	set, err := p.Tracker().Audience(siteID, event, windowDays)
	if err != nil {
		return CustomAudienceInfo{}, err
	}
	if set.Count() < MinAudienceMatched {
		return CustomAudienceInfo{}, fmt.Errorf("%w: %d < %d", ErrAudienceTooSmall, set.Count(), MinAudienceMatched)
	}
	return p.addAudience(CustomAudienceInfo{
		Name: name, Kind: AudiencePixel, Matched: set.Count(),
	}, set), nil
}

// CreateLookalike expands an existing custom audience into a lookalike. On
// interfaces with SpecialAdAudiences set (Facebook's restricted interface),
// the expansion is the demographic-blind "Special Ad Audience" variant the
// paper describes (§2.2); the returned info's Kind reflects which was
// built.
func (p *Interface) CreateLookalike(name string, sourceID int, ratio float64) (CustomAudienceInfo, error) {
	if name == "" {
		return CustomAudienceInfo{}, errors.New("platform: audience name required")
	}
	src, err := p.lookupAudience(sourceID)
	if err != nil {
		return CustomAudienceInfo{}, err
	}
	if src.info.Kind == AudienceLookalike || src.info.Kind == AudienceSpecialAd {
		return CustomAudienceInfo{}, ErrLookalikeOfLookalike
	}
	mode := lookalike.Standard
	kind := AudienceLookalike
	if p.cfg.SpecialAdAudiences {
		mode = lookalike.SpecialAd
		kind = AudienceSpecialAd
	}
	set, err := lookalike.Expand(p.cfg.Universe, src.set, lookalike.Config{
		Ratio: ratio, Mode: mode, MinSeed: MinAudienceMatched,
	})
	if err != nil {
		return CustomAudienceInfo{}, err
	}
	return p.addAudience(CustomAudienceInfo{
		Name: name, Kind: kind, SourceID: sourceID, Matched: set.Count(),
	}, set), nil
}

// lookupAudience fetches a stored audience by id.
func (p *Interface) lookupAudience(id int) (customAudience, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if id < 0 || id >= len(p.custom) {
		return customAudience{}, fmt.Errorf("%w: %d", ErrUnknownAudience, id)
	}
	return p.custom[id], nil
}

// CustomAudiences lists the stored audiences' metadata.
func (p *Interface) CustomAudiences() []CustomAudienceInfo {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]CustomAudienceInfo, len(p.custom))
	for i, ca := range p.custom {
		out[i] = ca.info
	}
	return out
}

// customSet resolves a KindCustomAudience ref.
func (p *Interface) customSet(ref targeting.Ref) (*audience.Set, error) {
	ca, err := p.lookupAudience(ref.ID)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, ref)
	}
	return ca.set, nil
}
