package platform

import (
	"errors"
	"testing"

	"repro/internal/population"
	"repro/internal/targeting"
)

// shardSpecs is the battery the shard-door tests count: conjunctions,
// exclusions, multi-ref clauses, topics, and demographic chains, so both the
// dense fast path and the scratch-accumulator path see every clause shape.
func shardSpecs() []targeting.Spec {
	return []targeting.Spec{
		targeting.Attr(0),
		targeting.And(targeting.Attr(1), targeting.Attr(2)),
		targeting.AnyAttr(3, 4, 5),
		targeting.Excluding(targeting.Attr(0), targeting.Attr(6)),
		targeting.Excluding(targeting.And(targeting.Attr(1), targeting.Topic(0)), targeting.AnyAttr(7, 8)),
		targeting.WithGender(targeting.WithAge(targeting.Attr(2), 1, 2), 1),
		targeting.WithLocation(targeting.Topic(1), 0, 3),
	}
}

func TestDoorStringParse(t *testing.T) {
	for _, d := range []Door{DoorMeasure, DoorEstimate} {
		got, err := ParseDoor(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseDoor(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDoor("back"); err == nil {
		t.Fatal("unknown door accepted")
	}
}

// TestRawCountsAdditive is the invariant the cluster is built on: raw counts
// over disjoint index ranges sum to the full-universe raw count, and pushing
// the sum through ScaleAndRound is bit-identical to the single-node door.
func TestRawCountsAdditive(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 43, UniverseSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	specs := shardSpecs()
	for _, p := range d.Interfaces() {
		reqs := make([]EstimateRequest, len(specs))
		for i := range specs {
			reqs[i] = EstimateRequest{Spec: specs[i]}
		}
		for _, door := range []Door{DoorMeasure, DoorEstimate} {
			full := p.RawCountMany(door, reqs, nil)
			// Three uneven windows covering [0, n) without gaps.
			n := 1 << 12
			windows := [][]IndexRange{
				{{Lo: 0, Hi: 1000}},
				{{Lo: 1000, Hi: 1064}, {Lo: 1064, Hi: 3000}},
				{{Lo: 3000, Hi: n}},
			}
			for i := range reqs {
				eligible, impressions, err := p.QueryParams(door, reqs[i])
				if (err == nil) != (full[i].Err == nil) {
					t.Fatalf("%s %v slot %d: QueryParams err %v, RawCountMany err %v",
						p.Name(), door, i, err, full[i].Err)
				}
				if full[i].Err != nil {
					continue
				}
				var sum int64
				for _, w := range windows {
					part := p.RawCountMany(door, reqs[i:i+1], w)
					if part[0].Err != nil {
						t.Fatalf("%s %v slot %d window %v: %v", p.Name(), door, i, w, part[0].Err)
					}
					sum += part[0].Count
				}
				if sum != full[i].Count {
					t.Fatalf("%s %v slot %d: windows sum %d, full count %d",
						p.Name(), door, i, sum, full[i].Count)
				}
				got := p.ScaleAndRound(sum, eligible, impressions)
				var want int64
				if door == DoorMeasure {
					want, err = p.Measure(reqs[i])
				} else {
					want, err = p.Estimate(reqs[i])
				}
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s %v slot %d: ScaleAndRound(sum)=%d, door=%d",
						p.Name(), door, i, got, want)
				}
			}
		}
	}
}

// TestRawCountManyDoorRules: the estimate door enforces advertiser rules, so
// a demographic spec that measures fine on facebook-restricted must fail in
// its slot — with the same error the single-node door returns.
func TestRawCountManyDoorRules(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 47, UniverseSize: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	p := d.FacebookRestricted
	reqs := []EstimateRequest{{Spec: targeting.WithGender(targeting.Attr(0), 1)}}
	if got := p.RawCountMany(DoorMeasure, reqs, nil); got[0].Err != nil {
		t.Fatalf("measure door rejected demographics: %v", got[0].Err)
	}
	got := p.RawCountMany(DoorEstimate, reqs, nil)
	if got[0].Err == nil {
		t.Fatal("estimate door accepted demographics on restricted interface")
	}
	if _, wantErr := p.Estimate(reqs[0]); wantErr == nil || wantErr.Error() != got[0].Err.Error() {
		t.Fatalf("slot error %q, single-node door error %q", got[0].Err, wantErr)
	}
}

// TestShardSliceMatchesFullUniverse builds a span-restricted deployment — a
// shard holding the middle of the ID space — and checks its raw counts equal
// the same windows counted on the full universe, compressed catalog and all.
func TestShardSliceMatchesFullUniverse(t *testing.T) {
	const size = 1 << 12
	span := population.Span{Lo: 1024, Hi: 2048}
	full, err := NewDeployment(DeployOptions{Seed: 53, UniverseSize: size})
	if err != nil {
		t.Fatal(err)
	}
	shard, err := NewDeployment(DeployOptions{
		Seed: 53, UniverseSize: size, Compressed: true,
		ShardSpans: []population.Span{span},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := shardSpecs()
	reqs := make([]EstimateRequest, len(specs))
	for i := range specs {
		reqs[i] = EstimateRequest{Spec: specs[i]}
	}
	for _, fp := range full.Interfaces() {
		sp, err := shard.ByName(fp.Name())
		if err != nil {
			t.Fatal(err)
		}
		// The shard's whole local space is the span; on the full universe
		// the same users sit at global indices [Lo, Hi).
		local := sp.RawCountMany(DoorMeasure, reqs, []IndexRange{{Lo: 0, Hi: span.Len()}})
		global := fp.RawCountMany(DoorMeasure, reqs, []IndexRange{{Lo: span.Lo, Hi: span.Hi}})
		for i := range reqs {
			if (local[i].Err == nil) != (global[i].Err == nil) {
				t.Fatalf("%s slot %d: shard err %v, full err %v", fp.Name(), i, local[i].Err, global[i].Err)
			}
			if local[i].Err == nil && local[i].Count != global[i].Count {
				t.Fatalf("%s slot %d: shard counts %d, full universe counts %d",
					fp.Name(), i, local[i].Count, global[i].Count)
			}
		}
		// CSetOnly batching serves the same sizes through MeasureMany.
		localMany, err := sp.MeasureMany(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if localMany[i].Err != nil {
				continue
			}
			one, err := sp.Measure(reqs[i])
			if err != nil {
				t.Fatal(err)
			}
			if localMany[i].Size != one {
				t.Fatalf("%s slot %d: CSetOnly MeasureMany %d, Measure %d",
					fp.Name(), i, localMany[i].Size, one)
			}
		}
	}
}

// TestShardDoorErrors: malformed specs and unknown refs surface the same
// typed errors on the shard door as on the dense path.
func TestShardDoorErrors(t *testing.T) {
	shard, err := NewDeployment(DeployOptions{
		Seed: 59, UniverseSize: 1 << 11, Compressed: true,
		ShardSpans: []population.Span{{Lo: 0, Hi: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := shard.Google // offers both attributes and topics
	nAttr := len(p.Catalog().Attributes)
	nTopic := len(p.Catalog().Topics)
	cases := []struct {
		name string
		spec targeting.Spec
		want error
	}{
		{"empty spec", targeting.Spec{}, targeting.ErrEmptySpec},
		{"empty clause", targeting.Spec{Include: []targeting.Clause{{}}}, targeting.ErrEmptyClause},
		{"empty second clause", targeting.Spec{Include: []targeting.Clause{
			{targeting.Ref{Kind: targeting.KindAttribute, ID: 0}}, {},
		}}, targeting.ErrEmptyClause},
		{"unknown attr", targeting.Attr(nAttr + 3), targeting.ErrUnknownOption},
		{"unknown topic", targeting.Topic(nTopic + 3), targeting.ErrUnknownOption},
		{"unknown attr in and", targeting.And(targeting.Attr(0), targeting.Attr(nAttr+3)), targeting.ErrUnknownOption},
		{"unknown attr excluded", targeting.Excluding(targeting.Attr(0), targeting.Attr(nAttr+3)), targeting.ErrUnknownOption},
	}
	for _, tc := range cases {
		got := p.RawCountMany(DoorMeasure, []EstimateRequest{{Spec: tc.spec}}, []IndexRange{{Lo: 0, Hi: 64}})
		if !errors.Is(got[0].Err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got[0].Err, tc.want)
		}
	}
}

func TestCoversAll(t *testing.T) {
	cases := []struct {
		ranges []IndexRange
		n      int
		want   bool
	}{
		{nil, 10, false},
		{[]IndexRange{{0, 10}}, 10, true},
		{[]IndexRange{{0, 4}, {4, 10}}, 10, true},
		{[]IndexRange{{0, 4}, {6, 10}}, 10, false},
		{[]IndexRange{{0, 4}, {2, 10}}, 10, true},
		{[]IndexRange{{0, 9}}, 10, false},
	}
	for _, tc := range cases {
		if got := coversAll(tc.ranges, tc.n); got != tc.want {
			t.Errorf("coversAll(%v, %d) = %v, want %v", tc.ranges, tc.n, got, tc.want)
		}
	}
}
