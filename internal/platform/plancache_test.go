package platform

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/targeting"
)

// TestLRUCache unit-tests the compiler's bounded map: recency order,
// update-in-place, and eviction of the least recently used entry.
func TestLRUCache(t *testing.T) {
	l := newLRU[int](2)
	l.add("a", 1)
	l.add("b", 2)
	if v, ok := l.get("a"); !ok || v != 1 {
		t.Fatalf("get a = %d, %v", v, ok)
	}
	l.add("c", 3) // evicts b: a was touched more recently
	if _, ok := l.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := l.get("a"); !ok || v != 1 {
		t.Fatalf("a evicted instead: %d, %v", v, ok)
	}
	if v, ok := l.get("c"); !ok || v != 3 {
		t.Fatalf("get c = %d, %v", v, ok)
	}
	l.add("c", 30) // update moves to front, no eviction
	if v, _ := l.get("c"); v != 30 {
		t.Fatalf("c = %d after update", v)
	}
	if l.len() != 2 {
		t.Fatalf("len = %d, want 2", l.len())
	}
	if zero := newLRU[int](0); zero.cap != 1 {
		t.Fatalf("zero capacity clamps to %d, want 1", zero.cap)
	}
}

// TestPlanCacheCounters checks the compiler's observability contract: first
// sight of a spec is a miss that compiles, every repeat is a hit, and the
// batch's schedule is frozen once and reused.
func TestPlanCacheCounters(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 41, UniverseSize: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Facebook
	// Counters live in the process-global default registry and accumulate
	// across deployments, so all assertions are deltas from here.
	h0, m0, c0 := p.mPlanHits.Value(), p.mPlanMisses.Value(), p.mPlansCompiled.Value()
	const n = 10
	reqs := make([]EstimateRequest, n)
	for i := range reqs {
		reqs[i].Spec = targeting.Attr(i)
	}
	if _, err := p.MeasureMany(reqs); err != nil {
		t.Fatal(err)
	}
	if h, m, c := p.mPlanHits.Value()-h0, p.mPlanMisses.Value()-m0, p.mPlansCompiled.Value()-c0; h != 0 || m != n || c != n {
		t.Fatalf("after first batch: hits=%d misses=%d compiled=%d, want 0/%d/%d", h, m, c, n, n)
	}
	plans, _, scheds := p.PlanCacheStats()
	if plans != n || scheds != 1 {
		t.Fatalf("cache stats: plans=%d scheds=%d, want %d/1", plans, scheds, n)
	}
	if _, err := p.MeasureMany(reqs); err != nil {
		t.Fatal(err)
	}
	if h, c := p.mPlanHits.Value()-h0, p.mPlansCompiled.Value()-c0; h != n || c != n {
		t.Fatalf("after repeat batch: hits=%d compiled=%d, want %d/%d", h, c, n, n)
	}
	if _, _, scheds := p.PlanCacheStats(); scheds != 1 {
		t.Fatalf("schedule cache grew to %d on a repeat batch", scheds)
	}
}

// TestPlanCompilerMatchesLegacy is the compiler's bit-identity gate at the
// platform layer: on all four interfaces, compiled (plain and compressed)
// batches must equal the legacy per-batch lowering path slot for slot —
// sizes and errors both.
func TestPlanCompilerMatchesLegacy(t *testing.T) {
	const seed, size = 47, 1 << 12
	legacy, err := NewDeployment(DeployOptions{Seed: seed, UniverseSize: size, NoPlanCompiler: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []DeployOptions{
		{Seed: seed, UniverseSize: size},
		{Seed: seed, UniverseSize: size, Compressed: true},
	} {
		compiled, err := NewDeployment(opts)
		if err != nil {
			t.Fatal(err)
		}
		if plans, _, _ := legacy.Facebook.PlanCacheStats(); plans != 0 {
			t.Fatalf("NoPlanCompiler deployment has a plan cache (%d plans)", plans)
		}
		for pi, p := range compiled.Interfaces() {
			lp := legacy.Interfaces()[pi]
			reqs := randomBatch(p, 4242, 80)
			got, err := p.MeasureMany(reqs)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			want, err := lp.MeasureMany(reqs)
			if err != nil {
				t.Fatalf("%s legacy: %v", lp.Name(), err)
			}
			for i := range reqs {
				sameOutcome(t, fmt.Sprintf("%s compressed=%v", p.Name(), opts.Compressed), i, got[i], want[i].Size, want[i].Err)
			}
			// Second pass through the warmed caches must be identical too.
			again, err := p.MeasureMany(reqs)
			if err != nil {
				t.Fatalf("%s warm: %v", p.Name(), err)
			}
			for i := range reqs {
				sameOutcome(t, p.Name()+" warm", i, again[i], want[i].Size, want[i].Err)
			}
		}
	}
}

// TestPlanCacheEviction shrinks the plan cache below the working set and
// checks both the bound (occupancy never exceeds capacity) and correctness
// under thrash (every answer still matches the uncached path).
func TestPlanCacheEviction(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 53, UniverseSize: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := NewDeployment(DeployOptions{Seed: 53, UniverseSize: 1 << 11, NoPlanCompiler: true})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Facebook
	p.plans = newPlanCache(3) // far below the 12-spec working set
	c0 := p.mPlansCompiled.Value()
	reqs := make([]EstimateRequest, 12)
	for i := range reqs {
		reqs[i].Spec = targeting.And(targeting.Attr(i), targeting.Attr((i+1)%12))
	}
	want, err := legacy.Facebook.MeasureMany(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, err := p.MeasureMany(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			sameOutcome(t, "evicting", i, got[i], want[i].Size, want[i].Err)
		}
		if plans, _, _ := p.PlanCacheStats(); plans > 3 {
			t.Fatalf("round %d: plan cache holds %d entries, capacity 3", round, plans)
		}
	}
	if compiled := p.mPlansCompiled.Value() - c0; compiled < 12 {
		t.Fatalf("compiled only %d plans across thrashing rounds", compiled)
	}
}

// TestCustomAudiencePlansUncached checks the deliberate cache bypass: specs
// touching custom audiences (dynamic per-advertiser state) recompile every
// time and never pin a schedule.
func TestCustomAudiencePlansUncached(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 59, UniverseSize: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Facebook
	info, err := p.CreatePIIAudience("crm", uploadOf(p, 150))
	if err != nil {
		t.Fatal(err)
	}
	spec := targeting.And(targeting.CustomAudience(info.ID), targeting.Attr(0))
	if specCacheable(spec) {
		t.Fatal("custom-audience spec reported cacheable")
	}
	serial, serr := p.Measure(EstimateRequest{Spec: spec})
	if serr != nil {
		t.Fatal(serr)
	}
	h0, c0 := p.mPlanHits.Value(), p.mPlansCompiled.Value()
	for round := 0; round < 2; round++ {
		got, err := p.MeasureMany([]EstimateRequest{{Spec: spec}})
		if err != nil || got[0].Err != nil {
			t.Fatalf("round %d: %v / %v", round, err, got[0].Err)
		}
		if got[0].Size != serial {
			t.Fatalf("round %d: batch %d, serial %d", round, got[0].Size, serial)
		}
	}
	if h := p.mPlanHits.Value() - h0; h != 0 {
		t.Fatalf("custom-audience spec hit the plan cache %d times", h)
	}
	if c := p.mPlansCompiled.Value() - c0; c != 2 {
		t.Fatalf("compiled %d times, want 2 (once per batch)", c)
	}
	if plans, _, scheds := p.PlanCacheStats(); plans != 0 || scheds != 0 {
		t.Fatalf("uncacheable spec populated caches: plans=%d scheds=%d", plans, scheds)
	}
}

// TestPlanCacheConcurrentEviction hammers MeasureMany from many goroutines
// with overlapping spec batches while a tiny LRU continuously evicts plans
// and schedules, asserting every answer stays bit-identical to the uncached
// execution. This is the compiler's race gate: plan reuse, schedule reuse,
// eviction, and recompilation must all be invisible under -race.
func TestPlanCacheConcurrentEviction(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 61, UniverseSize: 1 << 11, Compressed: true})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := NewDeployment(DeployOptions{Seed: 61, UniverseSize: 1 << 11, NoPlanCompiler: true})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Google // widest catalog: attrs, topics, placements
	p.plans = newPlanCache(5)

	// A pool of valid specs; goroutines slide overlapping windows over it so
	// different batches continuously displace each other's plans.
	nAttr := len(p.Catalog().Attributes)
	nTopic := len(p.Catalog().Topics)
	pool := make([]EstimateRequest, 24)
	for i := range pool {
		var spec targeting.Spec
		switch i % 4 {
		case 0:
			spec = targeting.Attr(i % nAttr)
		case 1:
			spec = targeting.And(targeting.Attr(i%nAttr), targeting.Topic(i%nTopic))
		case 2:
			spec = targeting.Spec{Include: []targeting.Clause{{
				{Kind: targeting.KindAttribute, ID: i % nAttr},
				{Kind: targeting.KindAttribute, ID: (i + 7) % nAttr},
			}}}
		default:
			// Google ANDs only across features, so the exclusion must come
			// from a different feature than the include.
			spec = targeting.Attr(i % nAttr)
			spec.Exclude = []targeting.Clause{{{Kind: targeting.KindTopic, ID: (i + 3) % nTopic}}}
		}
		pool[i] = EstimateRequest{Spec: spec}
	}
	want, err := legacy.Google.MeasureMany(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pool {
		if want[i].Err != nil {
			t.Fatalf("pool spec %d invalid: %v", i, want[i].Err)
		}
	}

	const goroutines, iters, window = 8, 30, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				start := (g*5 + it) % len(pool)
				batch := make([]EstimateRequest, window)
				for k := range batch {
					batch[k] = pool[(start+k)%len(pool)]
				}
				got, err := p.MeasureMany(batch)
				if err != nil {
					t.Errorf("g%d it%d: %v", g, it, err)
					return
				}
				for k := range batch {
					wi := (start + k) % len(pool)
					if got[k].Err != nil || got[k].Size != want[wi].Size {
						t.Errorf("g%d it%d slot %d: got (%d, %v), want %d",
							g, it, k, got[k].Size, got[k].Err, want[wi].Size)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if plans, _, _ := p.PlanCacheStats(); plans > 5 {
		t.Fatalf("plan cache exceeded capacity: %d > 5", plans)
	}
}
