package platform

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/audience"
	"repro/internal/catalog"
	"repro/internal/population"
	"repro/internal/targeting"
)

var (
	testDeployOnce sync.Once
	testDeploy     *Deployment
	testDeployErr  error
)

// deploy returns a small shared deployment for tests.
func deploy(t *testing.T) *Deployment {
	t.Helper()
	testDeployOnce.Do(func() {
		testDeploy, testDeployErr = NewDeployment(DeployOptions{Seed: 5, UniverseSize: 20000})
	})
	if testDeployErr != nil {
		t.Fatal(testDeployErr)
	}
	return testDeploy
}

func TestNewDeploymentDefaults(t *testing.T) {
	if _, err := NewDeployment(DeployOptions{UniverseSize: 500}); err == nil {
		t.Fatal("tiny universe should be rejected")
	}
}

func TestInterfaceNames(t *testing.T) {
	d := deploy(t)
	want := []string{
		catalog.PlatformFacebookRestricted,
		catalog.PlatformFacebook,
		catalog.PlatformGoogle,
		catalog.PlatformLinkedIn,
	}
	ifaces := d.Interfaces()
	if len(ifaces) != len(want) {
		t.Fatalf("%d interfaces, want %d", len(ifaces), len(want))
	}
	for i, p := range ifaces {
		if p.Name() != want[i] {
			t.Errorf("interface %d = %q, want %q", i, p.Name(), want[i])
		}
	}
	if _, err := d.ByName(catalog.PlatformGoogle); err != nil {
		t.Errorf("ByName(google): %v", err)
	}
	if _, err := d.ByName("myspace"); err == nil {
		t.Error("ByName should fail for unknown interface")
	}
}

func TestSharedFacebookUniverse(t *testing.T) {
	d := deploy(t)
	if d.Facebook.Universe() != d.FacebookRestricted.Universe() {
		t.Fatal("FB full and restricted must share a universe")
	}
	if d.Facebook.Universe() == d.Google.Universe() {
		t.Fatal("FB and Google must not share a universe")
	}
}

func TestEstimateSimpleAttr(t *testing.T) {
	d := deploy(t)
	for _, p := range d.Interfaces() {
		got, err := p.Estimate(EstimateRequest{Spec: targeting.Attr(0)})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if got < 0 {
			t.Fatalf("%s: negative estimate %d", p.Name(), got)
		}
	}
}

func TestEstimateConsistency(t *testing.T) {
	// Paper §3: 100 back-to-back repeated calls return identical estimates.
	d := deploy(t)
	for _, p := range d.Interfaces() {
		spec := targeting.Attr(3)
		first, err := p.Estimate(EstimateRequest{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			got, err := p.Estimate(EstimateRequest{Spec: spec})
			if err != nil {
				t.Fatal(err)
			}
			if got != first {
				t.Fatalf("%s: estimate changed from %d to %d on repeat %d", p.Name(), first, got, i)
			}
		}
	}
}

func TestEstimateIsRounded(t *testing.T) {
	d := deploy(t)
	for _, p := range d.Interfaces() {
		for id := 0; id < 20; id++ {
			got, err := p.Estimate(EstimateRequest{Spec: targeting.Attr(id)})
			if err != nil {
				t.Fatal(err)
			}
			if rr := p.Rounder().Round(got); rr != got {
				t.Fatalf("%s: estimate %d is not a fixed point of the rounder (%d)", p.Name(), got, rr)
			}
		}
	}
}

func TestRestrictedRejectsDemographics(t *testing.T) {
	d := deploy(t)
	_, err := d.FacebookRestricted.Estimate(EstimateRequest{
		Spec: targeting.WithGender(targeting.Attr(0), int(population.Male)),
	})
	if !errors.Is(err, targeting.ErrDemoForbidden) {
		t.Fatalf("want ErrDemoForbidden, got %v", err)
	}
}

func TestRestrictedMeasureAllowsDemographics(t *testing.T) {
	// The auditor's door: measurement rules permit the demographic
	// conditioning the paper performs via Facebook's normal interface.
	d := deploy(t)
	got, err := d.FacebookRestricted.Measure(EstimateRequest{
		Spec: targeting.WithGender(targeting.Attr(0), int(population.Male)),
	})
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if got < 0 {
		t.Fatalf("Measure returned %d", got)
	}
}

func TestGoogleRejectsWithinFeatureAnd(t *testing.T) {
	d := deploy(t)
	_, err := d.Google.Estimate(EstimateRequest{
		Spec: targeting.And(targeting.Attr(0), targeting.Attr(1)),
	})
	if !errors.Is(err, targeting.ErrAndWithinFeature) {
		t.Fatalf("want ErrAndWithinFeature, got %v", err)
	}
	// Cross-feature AND is fine.
	if _, err := d.Google.Estimate(EstimateRequest{
		Spec: targeting.And(targeting.Attr(0), targeting.Topic(0)),
	}); err != nil {
		t.Fatalf("cross-feature AND rejected: %v", err)
	}
}

func TestAudienceMatchesSetAlgebra(t *testing.T) {
	d := deploy(t)
	p := d.Facebook
	a, err := p.Audience(targeting.Attr(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Audience(targeting.Attr(1))
	if err != nil {
		t.Fatal(err)
	}
	both, err := p.Audience(targeting.And(targeting.Attr(0), targeting.Attr(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !audience.Equal(both, audience.And(a, b)) {
		t.Fatal("AND audience mismatch")
	}
	either, err := p.Audience(targeting.AnyAttr(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !audience.Equal(either, audience.Or(a, b)) {
		t.Fatal("OR audience mismatch")
	}
	diff, err := p.Audience(targeting.Excluding(targeting.Attr(0), targeting.Attr(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !audience.Equal(diff, audience.AndNot(a, b)) {
		t.Fatal("exclusion audience mismatch")
	}
}

func TestCompositionShrinksAudience(t *testing.T) {
	d := deploy(t)
	p := d.LinkedIn
	single, err := p.Estimate(EstimateRequest{Spec: targeting.Attr(2)})
	if err != nil {
		t.Fatal(err)
	}
	both, err := p.Estimate(EstimateRequest{Spec: targeting.And(targeting.Attr(2), targeting.Attr(3))})
	if err != nil {
		t.Fatal(err)
	}
	if both > single {
		t.Fatalf("AND estimate %d exceeds single-attribute estimate %d", both, single)
	}
}

func TestEstimatePlatformScale(t *testing.T) {
	// Targeting all US users (both genders, US location) must report about
	// the platform's US total; the unscoped audience is larger by the
	// non-US share.
	d := deploy(t)
	spec := targeting.Spec{Include: []targeting.Clause{{
		{Kind: targeting.KindGender, ID: int(population.Male)},
		{Kind: targeting.KindGender, ID: int(population.Female)},
	}}}
	us := targeting.WithLocation(spec, int(population.RegionUS))
	got, err := d.Facebook.Estimate(EstimateRequest{Spec: us})
	if err != nil {
		t.Fatal(err)
	}
	if got < FacebookTotalUsers*93/100 || got > FacebookTotalUsers*107/100 {
		t.Fatalf("whole-US estimate %d, want ≈%d", got, FacebookTotalUsers)
	}
	global, err := d.Facebook.Estimate(EstimateRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if global <= got {
		t.Fatalf("global estimate %d not above US estimate %d", global, got)
	}
}

func TestGoogleFrequencyCap(t *testing.T) {
	d := deploy(t)
	spec := targeting.Attr(0)
	one, err := d.Google.Estimate(EstimateRequest{Spec: spec, FrequencyCapPerMonth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := d.Google.Estimate(EstimateRequest{Spec: spec, FrequencyCapPerMonth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ten <= one {
		t.Fatalf("cap=10 estimate %d not above cap=1 estimate %d", ten, one)
	}
	// Default cap is the most restrictive (1), per the paper's methodology.
	def, err := d.Google.Estimate(EstimateRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if def != one {
		t.Fatalf("default cap estimate %d != cap=1 estimate %d", def, one)
	}
	if _, err := d.Google.Estimate(EstimateRequest{Spec: spec, FrequencyCapPerMonth: 99}); !errors.Is(err, ErrBadFrequencyCap) {
		t.Fatalf("want ErrBadFrequencyCap, got %v", err)
	}
}

func TestFrequencyCapIgnoredOffGoogle(t *testing.T) {
	d := deploy(t)
	spec := targeting.Attr(0)
	one, _ := d.Facebook.Estimate(EstimateRequest{Spec: spec, FrequencyCapPerMonth: 1})
	ten, _ := d.Facebook.Estimate(EstimateRequest{Spec: spec, FrequencyCapPerMonth: 10})
	if one != ten {
		t.Fatal("frequency cap must not affect user-count estimates")
	}
}

func TestObjectives(t *testing.T) {
	d := deploy(t)
	reach, err := d.Facebook.Estimate(EstimateRequest{Spec: targeting.Attr(0), Objective: ObjectiveReach})
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := d.Facebook.Estimate(EstimateRequest{Spec: targeting.Attr(0), Objective: ObjectiveTraffic})
	if err != nil {
		t.Fatal(err)
	}
	if traffic >= reach && reach > 0 {
		t.Fatalf("traffic estimate %d not below reach estimate %d", traffic, reach)
	}
	if _, err := d.Facebook.Estimate(EstimateRequest{Spec: targeting.Attr(0), Objective: "dance"}); !errors.Is(err, ErrUnknownObjective) {
		t.Fatalf("want ErrUnknownObjective, got %v", err)
	}
}

func TestUnknownOptionRejected(t *testing.T) {
	d := deploy(t)
	_, err := d.LinkedIn.Estimate(EstimateRequest{Spec: targeting.Attr(99999)})
	if !errors.Is(err, targeting.ErrUnknownOption) {
		t.Fatalf("want ErrUnknownOption, got %v", err)
	}
}

func TestQueryCount(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 9, UniverseSize: 5000})
	if err != nil {
		t.Fatal(err)
	}
	p := d.LinkedIn
	before := p.QueryCount()
	for i := 0; i < 7; i++ {
		if _, err := p.Estimate(EstimateRequest{Spec: targeting.Attr(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.QueryCount() - before; got != 7 {
		t.Fatalf("query count delta = %d, want 7", got)
	}
}

func TestConcurrentEstimates(t *testing.T) {
	d := deploy(t)
	p := d.Google
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := p.Estimate(EstimateRequest{
					Spec: targeting.And(targeting.Attr((g*20+i)%50), targeting.Topic(i%50)),
				}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPinnedAttributeSkewEmerges(t *testing.T) {
	// "Interests — Electrical engineering" is pinned with rep ratio 3.71
	// toward males; measured on the simulated universe the ratio must come
	// out clearly male-skewed.
	d := deploy(t)
	p := d.FacebookRestricted
	id := p.Catalog().FindAttr("Interests — Electrical engineering")
	if id < 0 {
		t.Fatal("pinned attribute missing")
	}
	set, err := p.Audience(targeting.Attr(id))
	if err != nil {
		t.Fatal(err)
	}
	uni := p.Universe()
	maleRate := float64(audience.CountAnd(set, uni.GenderSet(population.Male))) /
		float64(uni.GenderSet(population.Male).Count())
	femaleRate := float64(audience.CountAnd(set, uni.GenderSet(population.Female))) /
		float64(uni.GenderSet(population.Female).Count())
	ratio := maleRate / femaleRate
	if ratio < 2 {
		t.Fatalf("EE rep ratio = %v, want clearly male-skewed (target 3.71)", ratio)
	}
}

func BenchmarkEstimate2Way(b *testing.B) {
	d, err := NewDeployment(DeployOptions{Seed: 5, UniverseSize: 1 << 15})
	if err != nil {
		b.Fatal(err)
	}
	p := d.FacebookRestricted
	p.Warm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := targeting.And(targeting.Attr(i%300), targeting.Attr((i+7)%300))
		if _, err := p.Estimate(EstimateRequest{Spec: spec}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGooglePlacements(t *testing.T) {
	d := deploy(t)
	g := d.Google
	if len(g.Catalog().Placements) == 0 {
		t.Fatal("google catalog has no placements")
	}
	// A placement is targetable and composable across features.
	one, err := g.Estimate(EstimateRequest{Spec: targeting.Placement(0)})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := g.Estimate(EstimateRequest{
		Spec: targeting.And(targeting.Placement(0), targeting.Attr(0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if composed > one {
		t.Fatalf("placement ∧ attribute %d exceeds placement alone %d", composed, one)
	}
	// Two placements cannot be ANDed (within-feature OR only, like topics).
	_, err = g.Estimate(EstimateRequest{
		Spec: targeting.And(targeting.Placement(0), targeting.Placement(1)),
	})
	if !errors.Is(err, targeting.ErrAndWithinFeature) {
		t.Fatalf("want ErrAndWithinFeature, got %v", err)
	}
	// Out-of-range placement ids are rejected.
	_, err = g.Estimate(EstimateRequest{Spec: targeting.Placement(999999)})
	if !errors.Is(err, targeting.ErrUnknownOption) {
		t.Fatalf("want ErrUnknownOption, got %v", err)
	}
}

func TestPlacementsOnlyOnGoogle(t *testing.T) {
	d := deploy(t)
	for _, p := range []*Interface{d.Facebook, d.FacebookRestricted, d.LinkedIn} {
		if _, err := p.Estimate(EstimateRequest{Spec: targeting.Placement(0)}); !errors.Is(err, targeting.ErrKindForbidden) {
			t.Errorf("%s: want ErrKindForbidden, got %v", p.Name(), err)
		}
	}
}
