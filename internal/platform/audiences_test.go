package platform

import (
	"errors"
	"testing"

	"repro/internal/audience"
	"repro/internal/pii"
	"repro/internal/pixel"
	"repro/internal/population"
	"repro/internal/targeting"
)

// uploadOf builds a hashed upload of the first n users plus some noise.
func uploadOf(p *Interface, n int) []pii.HashedRecord {
	dir := p.Directory()
	var recs []pii.Record
	for i := 0; i < n; i++ {
		recs = append(recs, dir.RecordOf(i))
	}
	recs = append(recs, dir.OutsiderRecord(1), dir.OutsiderRecord(2))
	return pii.HashAll(recs)
}

func TestCreatePIIAudience(t *testing.T) {
	d := deploy(t)
	p := d.Facebook
	info, err := p.CreatePIIAudience("crm-upload", uploadOf(p, 120))
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != AudiencePII || info.Matched != 120 {
		t.Fatalf("info = %+v", info)
	}
	// The audience is targetable and its estimate reflects the match count
	// at platform scale (rounded).
	got, err := p.Estimate(EstimateRequest{Spec: targeting.CustomAudience(info.ID)})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(info.Matched) * p.ScaleFactor()
	if float64(got) < want*0.8 || float64(got) > want*1.2 {
		t.Fatalf("estimate %d, want ≈%v", got, want)
	}
}

func TestPIIAudienceTooSmall(t *testing.T) {
	d := deploy(t)
	_, err := d.Facebook.CreatePIIAudience("tiny", uploadOf(d.Facebook, 3))
	if !errors.Is(err, ErrAudienceTooSmall) {
		t.Fatalf("want ErrAudienceTooSmall, got %v", err)
	}
	if _, err := d.Facebook.CreatePIIAudience("", uploadOf(d.Facebook, 120)); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestCustomAudienceComposable(t *testing.T) {
	// The composition surface the paper warns about: a PII audience ANDed
	// with attributes, even on the restricted interface (§2.2 keeps PII
	// targeting available there).
	d := deploy(t)
	p := d.FacebookRestricted
	info, err := p.CreatePIIAudience("customers", uploadOf(p, 200))
	if err != nil {
		t.Fatal(err)
	}
	composed := targeting.And(targeting.CustomAudience(info.ID), targeting.Attr(0))
	caOnly, err := p.Estimate(EstimateRequest{Spec: targeting.CustomAudience(info.ID)})
	if err != nil {
		t.Fatal(err)
	}
	both, err := p.Estimate(EstimateRequest{Spec: composed})
	if err != nil {
		t.Fatal(err)
	}
	if both > caOnly {
		t.Fatalf("AND with attribute grew the audience: %d > %d", both, caOnly)
	}
}

func TestUnknownCustomAudience(t *testing.T) {
	d := deploy(t)
	_, err := d.LinkedIn.Estimate(EstimateRequest{Spec: targeting.CustomAudience(999)})
	if !errors.Is(err, targeting.ErrUnknownOption) {
		t.Fatalf("want ErrUnknownOption, got %v", err)
	}
}

func TestPixelAudienceLifecycle(t *testing.T) {
	d := deploy(t)
	p := d.Google
	siteID, err := p.Tracker().AddSite(pixel.Site{
		Domain: "shop.example",
		Visitors: population.AttrModel{
			ID: 424242, BaseLogit: population.Logit(0.08), GenderLoad: -1.0, Factor: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := p.CreatePixelAudience("recent-cart", siteID, pixel.EventAddToCart, 30)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != AudiencePixel || info.Matched < MinAudienceMatched {
		t.Fatalf("info = %+v", info)
	}
	if _, err := p.CreatePixelAudience("x", 99, pixel.EventPageView, 30); !errors.Is(err, pixel.ErrUnknownSite) {
		t.Fatalf("want ErrUnknownSite, got %v", err)
	}
}

func TestLookalikeAndSpecialAd(t *testing.T) {
	d := deploy(t)
	uni := d.Facebook.Universe()

	// Seed: the most male-skewed users (via a male-heavy PII upload).
	males := uni.GenderSet(population.Male)
	dir := d.Facebook.Directory()
	var recs []pii.Record
	for i := 0; i < uni.Size() && len(recs) < 400; i++ {
		if males.Contains(i) {
			recs = append(recs, dir.RecordOf(i))
		}
	}
	hashed := pii.HashAll(recs)

	// Full interface: standard lookalike.
	seedFull, err := d.Facebook.CreatePIIAudience("male-seed", hashed)
	if err != nil {
		t.Fatal(err)
	}
	lookFull, err := d.Facebook.CreateLookalike("male-lookalike", seedFull.ID, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lookFull.Kind != AudienceLookalike {
		t.Fatalf("full-interface lookalike kind = %s", lookFull.Kind)
	}

	// Restricted interface: special ad audience.
	seedR, err := d.FacebookRestricted.CreatePIIAudience("male-seed", hashed)
	if err != nil {
		t.Fatal(err)
	}
	lookR, err := d.FacebookRestricted.CreateLookalike("male-special", seedR.ID, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lookR.Kind != AudienceSpecialAd {
		t.Fatalf("restricted lookalike kind = %s, want special-ad", lookR.Kind)
	}

	// The standard lookalike of an all-male seed must skew male; the
	// special-ad variant must be less skewed.
	maleShare := func(p *Interface, id int) float64 {
		set, err := p.Audience(targeting.CustomAudience(id))
		if err != nil {
			t.Fatal(err)
		}
		return float64(audience.CountAnd(set, males)) / float64(set.Count())
	}
	full := maleShare(d.Facebook, lookFull.ID)
	special := maleShare(d.FacebookRestricted, lookR.ID)
	if full < 0.6 {
		t.Errorf("standard lookalike male share %.2f, want clearly male-skewed", full)
	}
	if special >= full {
		t.Errorf("special-ad male share %.2f not below standard %.2f", special, full)
	}
}

func TestLookalikeOfLookalikeRejected(t *testing.T) {
	d := deploy(t)
	p := d.LinkedIn
	seed, err := p.CreatePIIAudience("seed", uploadOf(p, 100))
	if err != nil {
		t.Fatal(err)
	}
	look, err := p.CreateLookalike("expansion", seed.ID, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateLookalike("expansion2", look.ID, 0.05); !errors.Is(err, ErrLookalikeOfLookalike) {
		t.Fatalf("want ErrLookalikeOfLookalike, got %v", err)
	}
	if _, err := p.CreateLookalike("nope", 12345, 0.05); !errors.Is(err, ErrUnknownAudience) {
		t.Fatalf("want ErrUnknownAudience, got %v", err)
	}
}

func TestCustomAudiencesListing(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 13, UniverseSize: 5000})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Google
	if got := p.CustomAudiences(); len(got) != 0 {
		t.Fatalf("fresh interface has %d audiences", len(got))
	}
	info, err := p.CreatePIIAudience("a", uploadOf(p, 50))
	if err != nil {
		t.Fatal(err)
	}
	list := p.CustomAudiences()
	if len(list) != 1 || list[0].ID != info.ID || list[0].Name != "a" {
		t.Fatalf("listing = %+v", list)
	}
}

func TestSharedDirectoryAcrossFacebookInterfaces(t *testing.T) {
	d := deploy(t)
	// Same universe → same synthetic PII, so an upload matches identically
	// through either interface.
	e1 := d.Facebook.Directory().Email(7)
	e2 := d.FacebookRestricted.Directory().Email(7)
	if e1 != e2 {
		t.Fatalf("directories diverge: %q vs %q", e1, e2)
	}
	if d.Google.Directory().Email(7) == e1 {
		t.Fatal("google shares facebook's PII")
	}
}
