package platform

import (
	"sync"
	"testing"

	"repro/internal/targeting"
)

// TestConcurrentMeasureWarm hammers one shared Interface with concurrent
// Measure, Estimate, Audience, and Warm calls under -race: the lock-free
// estimate path must return identical answers for identical specs, count
// every query, and materialize each option set exactly once.
func TestConcurrentMeasureWarm(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 17, UniverseSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	p := d.FacebookRestricted
	nAttrs := len(p.Catalog().Attributes)
	specs := make([]targeting.Spec, 8)
	for i := range specs {
		specs[i] = targeting.And(targeting.Attr(i%nAttrs), targeting.Attr((i*5+1)%nAttrs))
	}
	// Serial ground truth from an identical fresh deployment.
	d2, err := NewDeployment(DeployOptions{Seed: 17, UniverseSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, len(specs))
	for i, s := range specs {
		if want[i], err = d2.FacebookRestricted.Measure(EstimateRequest{Spec: s}); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines+1)
	wg.Add(1)
	go func() { // Warm racing the queries
		defer wg.Done()
		p.Warm()
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(specs)
				got, err := p.Measure(EstimateRequest{Spec: specs[i]})
				if err != nil {
					errCh <- err
					return
				}
				if got != want[i] {
					t.Errorf("goroutine %d: Measure(spec %d) = %d, want %d", g, i, got, want[i])
					return
				}
				if _, err := p.Audience(specs[i]); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := p.QueryCount(); got != goroutines*iters {
		t.Fatalf("QueryCount = %d, want %d", got, goroutines*iters)
	}
}

// TestWarmReturnsInterface asserts Warm chains and leaves every catalog
// audience materialized (second Warm and queries are pure cache hits).
func TestWarmReturnsInterface(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 18, UniverseSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Google.Warm()
	if p != d.Google {
		t.Fatal("Warm did not return its receiver")
	}
	for i := range p.attrSets {
		if p.attrSets[i].ptr.Load() == nil {
			t.Fatalf("attribute %d not materialized after Warm", i)
		}
	}
	for i := range p.topicSets {
		if p.topicSets[i].ptr.Load() == nil {
			t.Fatalf("topic %d not materialized after Warm", i)
		}
	}
	for i := range p.placementSets {
		if p.placementSets[i].ptr.Load() == nil {
			t.Fatalf("placement %d not materialized after Warm", i)
		}
	}
}

// TestCountMatchedMatchesAudience cross-checks the allocation-free counting
// path against full Audience materialization across spec shapes: include-only
// ANDs, multi-ref OR clauses, and exclusions.
func TestCountMatchedMatchesAudience(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 19, UniverseSize: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Facebook
	specs := []targeting.Spec{
		targeting.Attr(0),
		targeting.And(targeting.Attr(1), targeting.Attr(2)),
		targeting.And(targeting.Attr(0), targeting.Attr(3), targeting.Attr(7)),
		{Include: []targeting.Clause{{{Kind: targeting.KindAttribute, ID: 1}, {Kind: targeting.KindAttribute, ID: 4}}}},
		{
			Include: []targeting.Clause{{{Kind: targeting.KindAttribute, ID: 2}}},
			Exclude: []targeting.Clause{{{Kind: targeting.KindAttribute, ID: 5}}},
		},
		{
			Include: []targeting.Clause{
				{{Kind: targeting.KindAttribute, ID: 0}, {Kind: targeting.KindAttribute, ID: 1}},
				{{Kind: targeting.KindGender, ID: 0}},
			},
			Exclude: []targeting.Clause{
				{{Kind: targeting.KindAttribute, ID: 6}, {Kind: targeting.KindAttribute, ID: 7}},
			},
		},
	}
	for i, s := range specs {
		set, err := p.Audience(s)
		if err != nil {
			t.Fatalf("spec %d: Audience: %v", i, err)
		}
		got, err := p.countMatched(s)
		if err != nil {
			t.Fatalf("spec %d: countMatched: %v", i, err)
		}
		if got != set.Count() {
			t.Fatalf("spec %d: countMatched = %d, Audience.Count = %d", i, got, set.Count())
		}
	}
}
