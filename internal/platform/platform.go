// Package platform assembles the simulated ad platforms: a user universe, a
// targeting-option catalog, composition rules, a campaign-objective table,
// and an audience-size estimator with the platform's rounding scheme.
//
// Each Interface answers the single question the paper's methodology relies
// on — "how many users match this targeting spec?" — through two doors:
//
//   - Estimate: what the platform shows an advertiser. The spec must satisfy
//     the interface's advertiser rules (Facebook's restricted interface
//     rejects demographic targeting and exclusions) and the result is
//     rounded platform-scale.
//   - Measure: what the auditor can obtain. For Facebook's restricted
//     interface the paper measured demographic conditioning through the
//     *normal* interface's equivalent options (§3); Measure therefore
//     validates against separate measurement rules that allow demographics.
//
// Estimates are reported at platform scale (simulated count × ScaleFactor)
// so rounding floors and recall magnitudes behave like the live platforms'.
package platform

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/audience"
	"repro/internal/catalog"
	"repro/internal/estimate"
	"repro/internal/obs"
	"repro/internal/pii"
	"repro/internal/pixel"
	"repro/internal/population"
	"repro/internal/targeting"
)

// Objective is a campaign objective selectable when requesting estimates.
type Objective string

// Objectives offered by the simulated interfaces. The paper always selects
// the reach-style objective of each platform to obtain the broadest
// audience (§3).
const (
	ObjectiveReach               Objective = "reach"                     // Facebook
	ObjectiveBrandAwarenessReach Objective = "brand-awareness-and-reach" // Google
	ObjectiveBrandAwareness      Objective = "brand-awareness"           // LinkedIn
	ObjectiveTraffic             Objective = "traffic"                   // narrower, all platforms
)

// EstimateRequest carries the estimate query parameters.
type EstimateRequest struct {
	// Spec is the targeting expression.
	Spec targeting.Spec
	// Objective is the campaign objective; the zero value selects the
	// interface's reach-style default.
	Objective Objective
	// FrequencyCapPerMonth applies to Google only: the maximum impressions
	// shown per user per month. Google's size statistic is an impression
	// estimate, so the reported number scales with the cap. The paper sets
	// the most restrictive value (1) so impressions ≈ unique users. Zero
	// selects 1.
	FrequencyCapPerMonth int
	// CacheKey optionally carries the spec's precomputed canonical form
	// (targeting.Canonical). The batched doors use it as the plan-cache
	// key so callers that already canonicalized — the core measurement
	// cache does — avoid a second pass; when empty it is computed on
	// demand. Must match the spec if set.
	CacheKey string
}

// Errors returned by estimate queries.
var (
	ErrUnknownObjective = errors.New("platform: unsupported campaign objective")
	ErrBadFrequencyCap  = errors.New("platform: frequency cap must be in [1, 30]")
)

// Config assembles one Interface.
type Config struct {
	// Name is the interface name (catalog.Platform* constants).
	Name string
	// Universe is the user population behind the interface. Interfaces of
	// the same company (Facebook full and restricted) share one universe.
	Universe *population.Universe
	// Catalog is the interface's targeting-option catalog.
	Catalog *catalog.Catalog
	// AdvertiserRules validate advertiser-facing estimate queries.
	AdvertiserRules targeting.Rules
	// MeasurementRules validate auditor measurement queries; when nil the
	// advertiser rules are used.
	MeasurementRules *targeting.Rules
	// Rounder rounds reported estimates.
	Rounder estimate.Rounder
	// Objectives maps supported objectives to the fraction of the matched
	// audience eligible under that objective (reach-style = 1).
	Objectives map[Objective]float64
	// DefaultObjective is used when a request leaves Objective empty.
	DefaultObjective Objective
	// ImpressionEstimates marks interfaces (Google) whose size statistic
	// counts impressions, making it sensitive to the frequency cap.
	ImpressionEstimates bool
	// SpecialAdAudiences marks interfaces (Facebook restricted) where
	// lookalike creation is replaced by demographic-blind "Special Ad
	// Audiences" (paper §2.2).
	SpecialAdAudiences bool
	// PlanCacheSize bounds the compiled-plan LRU behind the batched query
	// doors. Zero selects the default size; a negative value disables the
	// query compiler entirely, keeping the per-batch lowering path (used to
	// benchmark the compiler against it).
	PlanCacheSize int
	// Compressed materializes roaring-style compressed forms of the
	// catalog option sets alongside the dense ones, letting compiled plans
	// with a sparse base walk containers instead of streaming words.
	Compressed bool
	// CSetOnly retains catalog option audiences only in compressed form:
	// each is materialized dense once, compressed, and the dense form
	// dropped, and every spec evaluates through the dense-scratch ×
	// compressed kernels. Cluster shards set this so a 2^24-user shard's
	// catalog fits in memory; it implies the query compiler is disabled
	// (compiled plans hold dense operands).
	CSetOnly bool
	// Views supplies every catalog option audience as a zero-copy compressed
	// view, typically aliasing an mmap'd snapshot (internal/snapshot). When
	// set, the interface never materializes an option set: queries evaluate
	// through the dense-scratch × view kernels, Warm is a no-op, and the
	// query compiler is disabled (compiled plans hold dense operands), the
	// same posture CSetOnly establishes for shards.
	Views *OptionViews
	// Metrics receives the interface's query counters; nil selects the
	// process-wide obs.Default() registry.
	Metrics *obs.Registry
}

// Interface is one simulated advertiser-facing targeting interface.
//
// Estimate, Measure, Audience, and Warm are safe for concurrent use: the
// catalog-option caches are per-slot atomics (no global lock on the query
// path) and the query counter is atomic. Custom-audience creation and lookup
// serialize on a narrow RWMutex.
type Interface struct {
	cfg Config

	attrSets      []lazySet // lazily materialized, by attribute index
	topicSets     []lazySet // lazily materialized, by topic index
	placementSets []lazySet // lazily materialized, by placement index
	queryCount    atomic.Int64

	// Compressed forms of the catalog sets, built lazily when
	// cfg.Compressed is set (plancache.go).
	attrCSets      []lazyCSet
	topicCSets     []lazyCSet
	placementCSets []lazyCSet

	// plans holds the query compiler's caches; nil when the compiler is
	// disabled (Config.PlanCacheSize < 0).
	plans *planCache

	// Query counters, resolved once at construction so the estimate hot
	// path pays only atomic adds (the Measure benchmarks gate the
	// overhead at ≤5%).
	mEstimateQueries *obs.Counter   // platform_queries_total{door="estimate"}
	mMeasureQueries  *obs.Counter   // platform_queries_total{door="measure"}
	mRoundingHits    *obs.Counter   // estimates the rounder changed
	mFloorRejections *obs.Counter   // nonzero exact sizes floored to 0
	mBatchedQueries  *obs.Counter   // batched_queries_total: queries answered via the tiled kernel
	mBatchBlocks     *obs.Counter   // batch_kernel_blocks_total: tiles the kernel walked
	mBatchSize       *obs.Histogram // batch_size_specs: log2 batch-size distribution
	mPlanHits        *obs.Counter   // plan_cache_hits_total: specs served by a cached plan
	mPlanMisses      *obs.Counter   // plan_cache_misses_total: cacheable specs that had to compile
	mPlansCompiled   *obs.Counter   // plans_compiled_total: every CompilePlan run (incl. uncacheable)
	mPlanRebuilds    *obs.Counter   // plan_cache_rebuilds_total: union operands rematerialized after eviction

	mu      sync.RWMutex // guards custom, dir, tracker
	custom  []customAudience
	dir     *pii.Directory
	tracker *pixel.Tracker
}

// lazySet caches one materialized audience behind an atomic pointer. The
// steady-state path is a single atomic load; the first miss materializes
// under a sync.Once so racing callers never duplicate the build and all
// observe the same set.
type lazySet struct {
	ptr  atomic.Pointer[audience.Set]
	once sync.Once
}

// get returns the cached set, building it on first use.
func (ls *lazySet) get(build func() *audience.Set) *audience.Set {
	if s := ls.ptr.Load(); s != nil {
		return s
	}
	ls.once.Do(func() { ls.ptr.Store(build()) })
	return ls.ptr.Load()
}

// New builds an Interface and validates its configuration.
func New(cfg Config) (*Interface, error) {
	if cfg.Name == "" {
		return nil, errors.New("platform: empty interface name")
	}
	if cfg.Universe == nil || cfg.Catalog == nil || cfg.Rounder == nil {
		return nil, errors.New("platform: universe, catalog, and rounder are required")
	}
	if len(cfg.Objectives) == 0 {
		return nil, errors.New("platform: at least one objective required")
	}
	if _, ok := cfg.Objectives[cfg.DefaultObjective]; !ok {
		return nil, fmt.Errorf("platform: default objective %q not in objective table", cfg.DefaultObjective)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	iface := obs.L("interface", cfg.Name)
	p := &Interface{
		cfg:              cfg,
		attrSets:         make([]lazySet, len(cfg.Catalog.Attributes)),
		topicSets:        make([]lazySet, len(cfg.Catalog.Topics)),
		placementSets:    make([]lazySet, len(cfg.Catalog.Placements)),
		attrCSets:        make([]lazyCSet, len(cfg.Catalog.Attributes)),
		topicCSets:       make([]lazyCSet, len(cfg.Catalog.Topics)),
		placementCSets:   make([]lazyCSet, len(cfg.Catalog.Placements)),
		mEstimateQueries: reg.Counter("platform_queries_total", iface, obs.L("door", "estimate")),
		mMeasureQueries:  reg.Counter("platform_queries_total", iface, obs.L("door", "measure")),
		mRoundingHits:    reg.Counter("platform_rounding_hits_total", iface),
		mFloorRejections: reg.Counter("platform_floor_rejections_total", iface),
		mBatchedQueries:  reg.Counter("batched_queries_total", iface),
		mBatchBlocks:     reg.Counter("batch_kernel_blocks_total", iface),
		mBatchSize:       reg.Histogram("batch_size_specs", iface),
		mPlanHits:        reg.Counter("plan_cache_hits_total", iface),
		mPlanMisses:      reg.Counter("plan_cache_misses_total", iface),
		mPlansCompiled:   reg.Counter("plans_compiled_total", iface),
		mPlanRebuilds:    reg.Counter("plan_cache_rebuilds_total", iface),
	}
	if cfg.Views != nil {
		if err := cfg.Views.validate(cfg.Catalog, cfg.Universe.Size()); err != nil {
			return nil, err
		}
	}
	if cfg.PlanCacheSize >= 0 && !cfg.CSetOnly && cfg.Views == nil {
		p.plans = newPlanCache(cfg.PlanCacheSize)
	}
	return p, nil
}

// Name returns the interface name.
func (p *Interface) Name() string { return p.cfg.Name }

// Universe returns the backing population.
func (p *Interface) Universe() *population.Universe { return p.cfg.Universe }

// Catalog returns the interface's option catalog.
func (p *Interface) Catalog() *catalog.Catalog { return p.cfg.Catalog }

// Rules returns the advertiser-facing composition rules.
func (p *Interface) Rules() targeting.Rules { return p.cfg.AdvertiserRules }

// MeasurementRules returns the auditor-facing rules.
func (p *Interface) MeasurementRules() targeting.Rules {
	if p.cfg.MeasurementRules != nil {
		return *p.cfg.MeasurementRules
	}
	return p.cfg.AdvertiserRules
}

// Rounder returns the interface's estimate rounding scheme.
func (p *Interface) Rounder() estimate.Rounder { return p.cfg.Rounder }

// ScaleFactor converts simulated user counts to platform-scale counts.
func (p *Interface) ScaleFactor() float64 { return p.cfg.Universe.ScaleFactor() }

// QueryCount reports how many estimate queries the interface has served.
func (p *Interface) QueryCount() int64 {
	return p.queryCount.Load()
}

// attrSet returns the materialized audience of attribute i, caching it.
func (p *Interface) attrSet(i int) *audience.Set {
	return p.attrSets[i].get(func() *audience.Set {
		return p.cfg.Universe.Materialize(p.cfg.Catalog.Attributes[i].Model)
	})
}

// topicSet returns the materialized audience of topic i, caching it.
func (p *Interface) topicSet(i int) *audience.Set {
	return p.topicSets[i].get(func() *audience.Set {
		return p.cfg.Universe.Materialize(p.cfg.Catalog.Topics[i].Model)
	})
}

// placementSet returns the materialized visitor audience of placement i,
// caching it.
func (p *Interface) placementSet(i int) *audience.Set {
	return p.placementSets[i].get(func() *audience.Set {
		return p.cfg.Universe.Materialize(p.cfg.Catalog.Placements[i].Model)
	})
}

// refSet resolves one targeting ref to its audience set.
func (p *Interface) refSet(r targeting.Ref) (*audience.Set, error) {
	switch r.Kind {
	case targeting.KindAttribute:
		if r.ID < 0 || r.ID >= len(p.cfg.Catalog.Attributes) {
			return nil, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
		}
		return p.attrSet(r.ID), nil
	case targeting.KindTopic:
		if r.ID < 0 || r.ID >= len(p.cfg.Catalog.Topics) {
			return nil, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
		}
		return p.topicSet(r.ID), nil
	case targeting.KindGender:
		if r.ID < 0 || r.ID >= population.NumGenders {
			return nil, fmt.Errorf("%w: %s", targeting.ErrInvalidDemoValue, r)
		}
		return p.cfg.Universe.GenderSet(population.Gender(r.ID)), nil
	case targeting.KindAge:
		if r.ID < 0 || r.ID >= population.NumAgeRanges {
			return nil, fmt.Errorf("%w: %s", targeting.ErrInvalidDemoValue, r)
		}
		return p.cfg.Universe.AgeSet(population.AgeRange(r.ID)), nil
	case targeting.KindCustomAudience:
		return p.customSet(r)
	case targeting.KindLocation:
		if r.ID < 0 || r.ID >= population.NumRegions {
			return nil, fmt.Errorf("%w: %s", targeting.ErrInvalidDemoValue, r)
		}
		return p.cfg.Universe.RegionSet(population.Region(r.ID)), nil
	case targeting.KindPlacement:
		if r.ID < 0 || r.ID >= len(p.cfg.Catalog.Placements) {
			return nil, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
		}
		return p.placementSet(r.ID), nil
	default:
		return nil, fmt.Errorf("%w: %s", targeting.ErrKindForbidden, r)
	}
}

// clauseSet evaluates one OR-clause into an audience set.
func (p *Interface) clauseSet(cl targeting.Clause) (*audience.Set, error) {
	var out *audience.Set
	for _, r := range cl {
		s, err := p.refSet(r)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = s.Clone()
		} else {
			out.OrWith(s)
		}
	}
	if out == nil {
		return nil, targeting.ErrEmptyClause
	}
	return out, nil
}

// Audience evaluates a spec into the exact set of matching users. It does
// not validate rules; callers wanting advertiser or measurement semantics
// use Estimate or Measure. Exposed for ground-truth verification in tests
// and ablations.
func (p *Interface) Audience(spec targeting.Spec) (*audience.Set, error) {
	if len(spec.Include) == 0 {
		return nil, targeting.ErrEmptySpec
	}
	var acc *audience.Set
	for _, cl := range spec.Include {
		s, err := p.clauseSet(cl)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = s
		} else {
			acc.AndWith(s)
		}
	}
	for _, cl := range spec.Exclude {
		s, err := p.clauseSet(cl)
		if err != nil {
			return nil, err
		}
		acc.AndNotWith(s)
	}
	return acc, nil
}

// refSetsPool recycles the small per-query slice of resolved ref sets used
// by the allocation-free counting fast path.
var refSetsPool = sync.Pool{New: func() any { return new([]*audience.Set) }}

// clauseInto evaluates one OR-clause into dst, overwriting its contents.
func (p *Interface) clauseInto(dst *audience.Set, cl targeting.Clause) error {
	if len(cl) == 0 {
		return targeting.ErrEmptyClause
	}
	for k, r := range cl {
		s, err := p.refSet(r)
		if err != nil {
			return err
		}
		if k == 0 {
			dst.CopyFrom(s)
		} else {
			dst.OrWith(s)
		}
	}
	return nil
}

// countMatched returns |Audience(spec)| without materializing a result set.
// The audit's dominant shapes — an AND of single-option clauses, optionally
// minus a single exclusion — are counted with zero allocations via
// audience.CountAndAll / CountAndNot over the cached option sets; general
// specs evaluate through pooled scratch sets, so a steady query load
// allocates no bitset words either way.
func (p *Interface) countMatched(spec targeting.Spec) (int, error) {
	if len(spec.Include) == 0 {
		return 0, targeting.ErrEmptySpec
	}
	single := true
	for _, cl := range spec.Include {
		if len(cl) != 1 {
			single = false
			break
		}
	}
	if single && len(spec.Exclude) == 0 {
		sp := refSetsPool.Get().(*[]*audience.Set)
		sets := (*sp)[:0]
		for _, cl := range spec.Include {
			s, err := p.refSet(cl[0])
			if err != nil {
				*sp = sets[:0]
				refSetsPool.Put(sp)
				return 0, err
			}
			sets = append(sets, s)
		}
		c := audience.CountAndAll(sets[0], sets[1:]...)
		*sp = sets[:0]
		refSetsPool.Put(sp)
		return c, nil
	}
	if single && len(spec.Include) == 1 && len(spec.Exclude) == 1 && len(spec.Exclude[0]) == 1 {
		inc, err := p.refSet(spec.Include[0][0])
		if err != nil {
			return 0, err
		}
		exc, err := p.refSet(spec.Exclude[0][0])
		if err != nil {
			return 0, err
		}
		return audience.CountAndNot(inc, exc), nil
	}
	// General shape: AND-of-ORs with exclusions, evaluated in pooled scratch
	// sets (the only per-query storage; recycled on return).
	acc := audience.NewScratch(p.cfg.Universe.Size())
	defer acc.Recycle()
	var tmp *audience.Set
	defer func() {
		if tmp != nil {
			tmp.Recycle()
		}
	}()
	if err := p.clauseInto(acc, spec.Include[0]); err != nil {
		return 0, err
	}
	combine := func(cl targeting.Clause, exclude bool) error {
		if len(cl) == 0 {
			return targeting.ErrEmptyClause
		}
		if len(cl) == 1 {
			s, err := p.refSet(cl[0])
			if err != nil {
				return err
			}
			if exclude {
				acc.AndNotWith(s)
			} else {
				acc.AndWith(s)
			}
			return nil
		}
		if tmp == nil {
			tmp = audience.NewScratch(p.cfg.Universe.Size())
		}
		if err := p.clauseInto(tmp, cl); err != nil {
			return err
		}
		if exclude {
			acc.AndNotWith(tmp)
		} else {
			acc.AndWith(tmp)
		}
		return nil
	}
	for _, cl := range spec.Include[1:] {
		if err := combine(cl, false); err != nil {
			return 0, err
		}
	}
	for _, cl := range spec.Exclude {
		if err := combine(cl, true); err != nil {
			return 0, err
		}
	}
	return acc.Count(), nil
}

// queryParams validates the non-spec estimate parameters and returns the
// two factors the exact statistic is scaled by: the objective-eligibility
// fraction and, on impression-estimating interfaces, the frequency-cap
// impression factor (1 elsewhere). Shared by the serial and batched paths
// so both reject and scale identically.
func (p *Interface) queryParams(req EstimateRequest, rules targeting.Rules) (eligible, impressions float64, err error) {
	if err := rules.Validate(req.Spec); err != nil {
		return 0, 0, err
	}
	obj := req.Objective
	if obj == "" {
		obj = p.cfg.DefaultObjective
	}
	eligible, ok := p.cfg.Objectives[obj]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownObjective, obj)
	}
	cap := req.FrequencyCapPerMonth
	if cap == 0 {
		cap = 1
	}
	if cap < 1 || cap > 30 {
		return 0, 0, ErrBadFrequencyCap
	}
	impressions = 1
	if p.cfg.ImpressionEstimates {
		// With a per-user monthly cap of c, a Display campaign can serve up
		// to c impressions to each matched user; light users see fewer.
		// The sub-linear factor models users with fewer eligible pageviews
		// than the cap.
		impressions = impressionFactor(cap)
	}
	return eligible, impressions, nil
}

// estimateExact computes the unrounded platform-scale statistic.
func (p *Interface) estimateExact(req EstimateRequest, rules targeting.Rules) (float64, error) {
	eligible, impressions, err := p.queryParams(req, rules)
	if err != nil {
		return 0, err
	}
	count, err := p.countMatchedRanges(req.Spec, nil)
	if err != nil {
		return 0, err
	}
	v := float64(count) * p.ScaleFactor() * eligible
	if p.cfg.ImpressionEstimates {
		v *= impressions
	}
	p.queryCount.Add(1)
	return v, nil
}

// impressionFactor converts a frequency cap into expected impressions per
// matched user. Cap 1 yields exactly 1 (impressions ≈ unique users — the
// setting the paper uses); higher caps saturate as light users run out of
// pageviews.
func impressionFactor(cap int) float64 {
	f := 0.0
	perUser := 1.0
	for i := 0; i < cap; i++ {
		f += perUser
		perUser *= 0.82
	}
	return f
}

// roundAndCount rounds the exact statistic and records the query against
// the door's counters: every served query, plus whether rounding changed
// the reported value (rounding hit) or floored a nonzero audience to 0
// (the paper's minimum-reporting floors: Facebook 1,000, LinkedIn 300,
// Google 40).
func (p *Interface) roundAndCount(v float64, queries *obs.Counter) int64 {
	exact := int64(v + 0.5)
	rounded := p.cfg.Rounder.Round(exact)
	queries.Inc()
	switch {
	case rounded == 0 && exact > 0:
		p.mFloorRejections.Inc()
	case rounded != exact:
		p.mRoundingHits.Inc()
	}
	return rounded
}

// Estimate returns the advertiser-visible rounded size estimate.
func (p *Interface) Estimate(req EstimateRequest) (int64, error) {
	v, err := p.estimateExact(req, p.cfg.AdvertiserRules)
	if err != nil {
		return 0, err
	}
	return p.roundAndCount(v, p.mEstimateQueries), nil
}

// Measure returns the rounded size estimate under measurement rules — the
// auditor's view, which may condition on demographics even when the
// advertiser interface forbids them.
func (p *Interface) Measure(req EstimateRequest) (int64, error) {
	v, err := p.estimateExact(req, p.MeasurementRules())
	if err != nil {
		return 0, err
	}
	return p.roundAndCount(v, p.mMeasureQueries), nil
}

// Warm materializes every attribute, topic, and placement audience, fanning
// the builds out across GOMAXPROCS workers, and returns the interface so
// deployments can chain it. Optional; useful to front-load cost before
// serving or benchmarking so first-query latency is not dominated by lazy
// materialization. Safe to call concurrently with queries. On a
// snapshot-backed interface (Config.Views) every option audience already
// exists as a view over the mapped file, so Warm is a no-op — cold
// containers fault in from the page cache on first touch instead.
func (p *Interface) Warm() *Interface {
	if p.cfg.Views != nil {
		return p
	}
	warmAttr, warmTopic, warmPlacement := p.attrSet, p.topicSet, p.placementSet
	if p.cfg.CSetOnly {
		// Shards warm the compressed forms; the transient dense sets are
		// dropped as each build finishes.
		warmAttr = func(i int) *audience.Set {
			p.refOperand(targeting.Ref{Kind: targeting.KindAttribute, ID: i})
			return nil
		}
		warmTopic = func(i int) *audience.Set {
			p.refOperand(targeting.Ref{Kind: targeting.KindTopic, ID: i})
			return nil
		}
		warmPlacement = func(i int) *audience.Set {
			p.refOperand(targeting.Ref{Kind: targeting.KindPlacement, ID: i})
			return nil
		}
	}
	total := len(p.cfg.Catalog.Attributes) + len(p.cfg.Catalog.Topics) + len(p.cfg.Catalog.Placements)
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for i := range p.cfg.Catalog.Attributes {
			warmAttr(i)
		}
		for i := range p.cfg.Catalog.Topics {
			warmTopic(i)
		}
		for i := range p.cfg.Catalog.Placements {
			warmPlacement(i)
		}
		return p
	}
	jobs := make(chan func(), workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range jobs {
				f()
			}
		}()
	}
	for i := range p.cfg.Catalog.Attributes {
		i := i
		jobs <- func() { warmAttr(i) }
	}
	for i := range p.cfg.Catalog.Topics {
		i := i
		jobs <- func() { warmTopic(i) }
	}
	for i := range p.cfg.Catalog.Placements {
		i := i
		jobs <- func() { warmPlacement(i) }
	}
	close(jobs)
	wg.Wait()
	return p
}
