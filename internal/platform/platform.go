// Package platform assembles the simulated ad platforms: a user universe, a
// targeting-option catalog, composition rules, a campaign-objective table,
// and an audience-size estimator with the platform's rounding scheme.
//
// Each Interface answers the single question the paper's methodology relies
// on — "how many users match this targeting spec?" — through two doors:
//
//   - Estimate: what the platform shows an advertiser. The spec must satisfy
//     the interface's advertiser rules (Facebook's restricted interface
//     rejects demographic targeting and exclusions) and the result is
//     rounded platform-scale.
//   - Measure: what the auditor can obtain. For Facebook's restricted
//     interface the paper measured demographic conditioning through the
//     *normal* interface's equivalent options (§3); Measure therefore
//     validates against separate measurement rules that allow demographics.
//
// Estimates are reported at platform scale (simulated count × ScaleFactor)
// so rounding floors and recall magnitudes behave like the live platforms'.
package platform

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/audience"
	"repro/internal/catalog"
	"repro/internal/estimate"
	"repro/internal/pii"
	"repro/internal/pixel"
	"repro/internal/population"
	"repro/internal/targeting"
)

// Objective is a campaign objective selectable when requesting estimates.
type Objective string

// Objectives offered by the simulated interfaces. The paper always selects
// the reach-style objective of each platform to obtain the broadest
// audience (§3).
const (
	ObjectiveReach               Objective = "reach"                     // Facebook
	ObjectiveBrandAwarenessReach Objective = "brand-awareness-and-reach" // Google
	ObjectiveBrandAwareness      Objective = "brand-awareness"           // LinkedIn
	ObjectiveTraffic             Objective = "traffic"                   // narrower, all platforms
)

// EstimateRequest carries the estimate query parameters.
type EstimateRequest struct {
	// Spec is the targeting expression.
	Spec targeting.Spec
	// Objective is the campaign objective; the zero value selects the
	// interface's reach-style default.
	Objective Objective
	// FrequencyCapPerMonth applies to Google only: the maximum impressions
	// shown per user per month. Google's size statistic is an impression
	// estimate, so the reported number scales with the cap. The paper sets
	// the most restrictive value (1) so impressions ≈ unique users. Zero
	// selects 1.
	FrequencyCapPerMonth int
}

// Errors returned by estimate queries.
var (
	ErrUnknownObjective = errors.New("platform: unsupported campaign objective")
	ErrBadFrequencyCap  = errors.New("platform: frequency cap must be in [1, 30]")
)

// Config assembles one Interface.
type Config struct {
	// Name is the interface name (catalog.Platform* constants).
	Name string
	// Universe is the user population behind the interface. Interfaces of
	// the same company (Facebook full and restricted) share one universe.
	Universe *population.Universe
	// Catalog is the interface's targeting-option catalog.
	Catalog *catalog.Catalog
	// AdvertiserRules validate advertiser-facing estimate queries.
	AdvertiserRules targeting.Rules
	// MeasurementRules validate auditor measurement queries; when nil the
	// advertiser rules are used.
	MeasurementRules *targeting.Rules
	// Rounder rounds reported estimates.
	Rounder estimate.Rounder
	// Objectives maps supported objectives to the fraction of the matched
	// audience eligible under that objective (reach-style = 1).
	Objectives map[Objective]float64
	// DefaultObjective is used when a request leaves Objective empty.
	DefaultObjective Objective
	// ImpressionEstimates marks interfaces (Google) whose size statistic
	// counts impressions, making it sensitive to the frequency cap.
	ImpressionEstimates bool
	// SpecialAdAudiences marks interfaces (Facebook restricted) where
	// lookalike creation is replaced by demographic-blind "Special Ad
	// Audiences" (paper §2.2).
	SpecialAdAudiences bool
}

// Interface is one simulated advertiser-facing targeting interface.
type Interface struct {
	cfg Config

	mu            sync.Mutex
	attrSets      []*audience.Set // lazily materialized, by attribute index
	topicSets     []*audience.Set // lazily materialized, by topic index
	placementSets []*audience.Set // lazily materialized, by placement index
	custom        []customAudience
	dir           *pii.Directory
	tracker       *pixel.Tracker
	queryCount    int64
}

// New builds an Interface and validates its configuration.
func New(cfg Config) (*Interface, error) {
	if cfg.Name == "" {
		return nil, errors.New("platform: empty interface name")
	}
	if cfg.Universe == nil || cfg.Catalog == nil || cfg.Rounder == nil {
		return nil, errors.New("platform: universe, catalog, and rounder are required")
	}
	if len(cfg.Objectives) == 0 {
		return nil, errors.New("platform: at least one objective required")
	}
	if _, ok := cfg.Objectives[cfg.DefaultObjective]; !ok {
		return nil, fmt.Errorf("platform: default objective %q not in objective table", cfg.DefaultObjective)
	}
	return &Interface{
		cfg:           cfg,
		attrSets:      make([]*audience.Set, len(cfg.Catalog.Attributes)),
		topicSets:     make([]*audience.Set, len(cfg.Catalog.Topics)),
		placementSets: make([]*audience.Set, len(cfg.Catalog.Placements)),
	}, nil
}

// Name returns the interface name.
func (p *Interface) Name() string { return p.cfg.Name }

// Universe returns the backing population.
func (p *Interface) Universe() *population.Universe { return p.cfg.Universe }

// Catalog returns the interface's option catalog.
func (p *Interface) Catalog() *catalog.Catalog { return p.cfg.Catalog }

// Rules returns the advertiser-facing composition rules.
func (p *Interface) Rules() targeting.Rules { return p.cfg.AdvertiserRules }

// MeasurementRules returns the auditor-facing rules.
func (p *Interface) MeasurementRules() targeting.Rules {
	if p.cfg.MeasurementRules != nil {
		return *p.cfg.MeasurementRules
	}
	return p.cfg.AdvertiserRules
}

// Rounder returns the interface's estimate rounding scheme.
func (p *Interface) Rounder() estimate.Rounder { return p.cfg.Rounder }

// ScaleFactor converts simulated user counts to platform-scale counts.
func (p *Interface) ScaleFactor() float64 { return p.cfg.Universe.ScaleFactor() }

// QueryCount reports how many estimate queries the interface has served.
func (p *Interface) QueryCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queryCount
}

// attrSet returns the materialized audience of attribute i, caching it.
func (p *Interface) attrSet(i int) *audience.Set {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.attrSets[i] == nil {
		p.attrSets[i] = p.cfg.Universe.Materialize(p.cfg.Catalog.Attributes[i].Model)
	}
	return p.attrSets[i]
}

// topicSet returns the materialized audience of topic i, caching it.
func (p *Interface) topicSet(i int) *audience.Set {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.topicSets[i] == nil {
		p.topicSets[i] = p.cfg.Universe.Materialize(p.cfg.Catalog.Topics[i].Model)
	}
	return p.topicSets[i]
}

// placementSet returns the materialized visitor audience of placement i,
// caching it.
func (p *Interface) placementSet(i int) *audience.Set {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.placementSets[i] == nil {
		p.placementSets[i] = p.cfg.Universe.Materialize(p.cfg.Catalog.Placements[i].Model)
	}
	return p.placementSets[i]
}

// refSet resolves one targeting ref to its audience set.
func (p *Interface) refSet(r targeting.Ref) (*audience.Set, error) {
	switch r.Kind {
	case targeting.KindAttribute:
		if r.ID < 0 || r.ID >= len(p.cfg.Catalog.Attributes) {
			return nil, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
		}
		return p.attrSet(r.ID), nil
	case targeting.KindTopic:
		if r.ID < 0 || r.ID >= len(p.cfg.Catalog.Topics) {
			return nil, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
		}
		return p.topicSet(r.ID), nil
	case targeting.KindGender:
		if r.ID < 0 || r.ID >= population.NumGenders {
			return nil, fmt.Errorf("%w: %s", targeting.ErrInvalidDemoValue, r)
		}
		return p.cfg.Universe.GenderSet(population.Gender(r.ID)), nil
	case targeting.KindAge:
		if r.ID < 0 || r.ID >= population.NumAgeRanges {
			return nil, fmt.Errorf("%w: %s", targeting.ErrInvalidDemoValue, r)
		}
		return p.cfg.Universe.AgeSet(population.AgeRange(r.ID)), nil
	case targeting.KindCustomAudience:
		return p.customSet(r)
	case targeting.KindLocation:
		if r.ID < 0 || r.ID >= population.NumRegions {
			return nil, fmt.Errorf("%w: %s", targeting.ErrInvalidDemoValue, r)
		}
		return p.cfg.Universe.RegionSet(population.Region(r.ID)), nil
	case targeting.KindPlacement:
		if r.ID < 0 || r.ID >= len(p.cfg.Catalog.Placements) {
			return nil, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
		}
		return p.placementSet(r.ID), nil
	default:
		return nil, fmt.Errorf("%w: %s", targeting.ErrKindForbidden, r)
	}
}

// clauseSet evaluates one OR-clause into an audience set.
func (p *Interface) clauseSet(cl targeting.Clause) (*audience.Set, error) {
	var out *audience.Set
	for _, r := range cl {
		s, err := p.refSet(r)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = s.Clone()
		} else {
			out.OrWith(s)
		}
	}
	if out == nil {
		return nil, targeting.ErrEmptyClause
	}
	return out, nil
}

// Audience evaluates a spec into the exact set of matching users. It does
// not validate rules; callers wanting advertiser or measurement semantics
// use Estimate or Measure. Exposed for ground-truth verification in tests
// and ablations.
func (p *Interface) Audience(spec targeting.Spec) (*audience.Set, error) {
	if len(spec.Include) == 0 {
		return nil, targeting.ErrEmptySpec
	}
	var acc *audience.Set
	for _, cl := range spec.Include {
		s, err := p.clauseSet(cl)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = s
		} else {
			acc.AndWith(s)
		}
	}
	for _, cl := range spec.Exclude {
		s, err := p.clauseSet(cl)
		if err != nil {
			return nil, err
		}
		acc.AndNotWith(s)
	}
	return acc, nil
}

// estimateExact computes the unrounded platform-scale statistic.
func (p *Interface) estimateExact(req EstimateRequest, rules targeting.Rules) (float64, error) {
	if err := rules.Validate(req.Spec); err != nil {
		return 0, err
	}
	obj := req.Objective
	if obj == "" {
		obj = p.cfg.DefaultObjective
	}
	eligible, ok := p.cfg.Objectives[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownObjective, obj)
	}
	cap := req.FrequencyCapPerMonth
	if cap == 0 {
		cap = 1
	}
	if cap < 1 || cap > 30 {
		return 0, ErrBadFrequencyCap
	}
	set, err := p.Audience(req.Spec)
	if err != nil {
		return 0, err
	}
	v := float64(set.Count()) * p.ScaleFactor() * eligible
	if p.cfg.ImpressionEstimates {
		// With a per-user monthly cap of c, a Display campaign can serve up
		// to c impressions to each matched user; light users see fewer.
		// The sub-linear factor models users with fewer eligible pageviews
		// than the cap.
		v *= impressionFactor(cap)
	}
	p.mu.Lock()
	p.queryCount++
	p.mu.Unlock()
	return v, nil
}

// impressionFactor converts a frequency cap into expected impressions per
// matched user. Cap 1 yields exactly 1 (impressions ≈ unique users — the
// setting the paper uses); higher caps saturate as light users run out of
// pageviews.
func impressionFactor(cap int) float64 {
	f := 0.0
	perUser := 1.0
	for i := 0; i < cap; i++ {
		f += perUser
		perUser *= 0.82
	}
	return f
}

// Estimate returns the advertiser-visible rounded size estimate.
func (p *Interface) Estimate(req EstimateRequest) (int64, error) {
	v, err := p.estimateExact(req, p.cfg.AdvertiserRules)
	if err != nil {
		return 0, err
	}
	return p.cfg.Rounder.Round(int64(v + 0.5)), nil
}

// Measure returns the rounded size estimate under measurement rules — the
// auditor's view, which may condition on demographics even when the
// advertiser interface forbids them.
func (p *Interface) Measure(req EstimateRequest) (int64, error) {
	v, err := p.estimateExact(req, p.MeasurementRules())
	if err != nil {
		return 0, err
	}
	return p.cfg.Rounder.Round(int64(v + 0.5)), nil
}

// Warm materializes every attribute and topic audience. Optional; useful to
// front-load cost before serving or benchmarking.
func (p *Interface) Warm() {
	for i := range p.cfg.Catalog.Attributes {
		p.attrSet(i)
	}
	for i := range p.cfg.Catalog.Topics {
		p.topicSet(i)
	}
	for i := range p.cfg.Catalog.Placements {
		p.placementSet(i)
	}
}
