package platform

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/targeting"
)

// TestTracedBatchBitIdentical is the platform-layer tracing invariant: a
// MeasureManyCtx batch under a sampled span must return exactly what the
// untraced MeasureMany door returns — sizes and errors both — while
// recording the size_many span with its plan-cache and kernel children and
// one provenance record per served slot.
func TestTracedBatchBitIdentical(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 23, UniverseSize: 1 << 12, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{
		SampleRate: 1,
		Seed:       71,
		Metrics:    obs.NewRegistry(),
		Provenance: trace.NewProvenanceLog(0, nil),
	})
	for _, p := range d.Interfaces() {
		reqs := randomBatch(p, 2000+uint64(len(p.Name())), 48)
		want, err := p.MeasureMany(reqs)
		if err != nil {
			t.Fatalf("%s: untraced MeasureMany: %v", p.Name(), err)
		}
		root := tr.StartRoot("test." + p.Name())
		got, err := p.MeasureManyCtx(trace.NewContext(context.Background(), root), reqs)
		root.End()
		if err != nil {
			t.Fatalf("%s: traced MeasureManyCtx: %v", p.Name(), err)
		}
		served := 0
		for i := range reqs {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("%s slot %d: traced err=%v, untraced err=%v", p.Name(), i, got[i].Err, want[i].Err)
			}
			if want[i].Err != nil {
				if got[i].Err.Error() != want[i].Err.Error() {
					t.Fatalf("%s slot %d: traced err %q, untraced %q", p.Name(), i, got[i].Err, want[i].Err)
				}
				continue
			}
			if got[i].Size != want[i].Size {
				t.Fatalf("%s slot %d: traced size %d, untraced %d", p.Name(), i, got[i].Size, want[i].Size)
			}
			served++
		}

		id, ok := trace.ParseTraceID(root.TraceID())
		if !ok {
			t.Fatalf("%s: root trace ID %q does not parse", p.Name(), root.TraceID())
		}
		dump, ok := tr.Dump(id)
		if !ok {
			t.Fatalf("%s: traced batch left no buffered trace", p.Name())
		}
		var sizeMany, kernel int
		for _, s := range dump.Spans {
			switch s.Name {
			case "platform.size_many":
				sizeMany++
			case "platform.kernel":
				kernel++
			}
		}
		if sizeMany != 1 {
			t.Fatalf("%s: size_many spans %d, want 1", p.Name(), sizeMany)
		}
		if served > 0 && kernel != 1 {
			t.Fatalf("%s: kernel spans %d, want 1", p.Name(), kernel)
		}

		recs := 0
		for _, r := range tr.Provenance().Records() {
			if r.Platform == p.Name() && r.TraceID == root.TraceID() {
				if r.Source != "platform" || r.Key == "" {
					t.Fatalf("%s: malformed provenance record %+v", p.Name(), r)
				}
				recs++
			}
		}
		if recs != served {
			t.Fatalf("%s: provenance records %d, want one per served slot (%d)", p.Name(), recs, served)
		}
	}
}

// TestTracedSerialDoorsBitIdentical covers the serial ctx doors: MeasureCtx
// and EstimateCtx under a sampled span must return exactly what Measure and
// Estimate return, record one platform span per query (with the error
// pinned on the span when the spec is rejected), and emit one provenance
// record per successful answer. A span-free context takes the bare path and
// records nothing.
func TestTracedSerialDoorsBitIdentical(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 23, UniverseSize: 1 << 12, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{
		SampleRate: 1,
		Seed:       79,
		Metrics:    obs.NewRegistry(),
		Provenance: trace.NewProvenanceLog(0, nil),
	})
	p := d.Facebook
	req := EstimateRequest{Spec: targeting.Attr(2)}

	wantM, err := p.Measure(req)
	if err != nil {
		t.Fatal(err)
	}
	wantE, err := p.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}

	root := tr.StartRoot("test.serial")
	ctx := trace.NewContext(context.Background(), root)
	gotM, err := p.MeasureCtx(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := p.EstimateCtx(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	badReq := EstimateRequest{Spec: targeting.Attr(99999)}
	if _, err := p.MeasureCtx(ctx, badReq); err == nil {
		t.Fatal("traced MeasureCtx accepted an unknown option")
	}
	root.End()
	if gotM != wantM || gotE != wantE {
		t.Fatalf("traced doors = (%d, %d), untraced = (%d, %d)", gotM, gotE, wantM, wantE)
	}

	id, ok := trace.ParseTraceID(root.TraceID())
	if !ok {
		t.Fatalf("root trace ID %q does not parse", root.TraceID())
	}
	dump, ok := tr.Dump(id)
	if !ok {
		t.Fatal("serial doors left no buffered trace")
	}
	var measured, estimated, errored int
	for _, s := range dump.Spans {
		switch s.Name {
		case "platform.measure":
			measured++
			if s.Err != "" {
				errored++
			}
		case "platform.estimate":
			estimated++
		}
	}
	if measured != 2 || estimated != 1 || errored != 1 {
		t.Fatalf("spans: measure=%d (errored=%d), estimate=%d; want 2 (1 errored) and 1", measured, errored, estimated)
	}
	recs := tr.Provenance().Records()
	if len(recs) != 2 {
		t.Fatalf("provenance records = %d, want 2 (one per successful answer)", len(recs))
	}
	for _, r := range recs {
		if r.Source != "platform" || r.Key != targeting.Canonical(req.Spec) || r.TraceID != root.TraceID() {
			t.Fatalf("malformed serial provenance record %+v", r)
		}
	}

	// Span-free context: bare path, nothing recorded.
	before := tr.Len()
	gotPlain, err := p.MeasureCtx(context.Background(), req)
	if err != nil || gotPlain != wantM {
		t.Fatalf("plain-ctx MeasureCtx = (%d, %v), want (%d, nil)", gotPlain, err, wantM)
	}
	if tr.Len() != before {
		t.Fatal("plain-ctx serial call buffered a trace")
	}
}

// TestUntracedBatchTouchesNoTracer pins the disabled-path contract: with a
// live default tracer installed but no span in the context, MeasureManyCtx
// must record nothing — the sampling decision is the root's, made upstream,
// and its absence means the whole batch stays dark.
func TestUntracedBatchTouchesNoTracer(t *testing.T) {
	d, err := NewDeployment(DeployOptions{Seed: 23, UniverseSize: 1 << 12, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{
		SampleRate: 1,
		Seed:       73,
		Metrics:    obs.NewRegistry(),
		Provenance: trace.NewProvenanceLog(0, nil),
	})
	trace.SetDefault(tr)
	defer trace.SetDefault(nil)

	p := d.Facebook
	reqs := randomBatch(p, 3000, 16)
	if _, err := p.MeasureManyCtx(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if n := tr.Len(); n != 0 {
		t.Fatalf("untraced batch buffered %d traces", n)
	}
	if n := tr.Provenance().Len(); n != 0 {
		t.Fatalf("untraced batch left %d provenance records", n)
	}
}
