package platform

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/audience"
	"repro/internal/targeting"
)

// This file threads the audience query compiler through the platform: specs
// are lowered to audience.Plan once and cached under the same canonical key
// the measurement cache and durable store use, batches of cached plans are
// frozen into audience.PlanBatch schedules, and multi-ref OR clauses
// resolve to interface-wide shared unions so the batch analyzer can
// common-subexpression them across plans. Everything here is bounded: plans,
// unions, and schedules each live in an LRU sized by Config.PlanCacheSize.

// Cache bounds. The plan cache holds PlanCacheSize entries (default below);
// the union and schedule caches are derived from it.
const (
	defaultPlanCacheSize = 4096
	minDerivedCacheSize  = 16
)

// lruNode is one entry of lruCache's intrusive recency list.
type lruNode[V any] struct {
	key        string
	val        V
	prev, next *lruNode[V]
}

// lruCache is a mutex-guarded LRU map. The platform's query path performs
// one get per spec (plan cache) or one per batch (schedule cache), so a
// plain mutex is far from contended relative to the kernel work behind it.
type lruCache[V any] struct {
	mu    sync.Mutex
	cap   int
	table map[string]*lruNode[V]
	head  *lruNode[V] // most recently used
	tail  *lruNode[V] // eviction candidate
}

func newLRU[V any](capacity int) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{cap: capacity, table: make(map[string]*lruNode[V], capacity)}
}

func (l *lruCache[V]) get(key string) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.table[key]
	if !ok {
		var zero V
		return zero, false
	}
	l.moveToFront(n)
	return n.val, true
}

// getBytes is get with a byte-slice key: the map lookup converts in place
// without allocating, which matters for the schedule cache's per-batch
// concatenated keys.
func (l *lruCache[V]) getBytes(key []byte) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.table[string(key)]
	if !ok {
		var zero V
		return zero, false
	}
	l.moveToFront(n)
	return n.val, true
}

func (l *lruCache[V]) add(key string, v V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n, ok := l.table[key]; ok {
		n.val = v
		l.moveToFront(n)
		return
	}
	n := &lruNode[V]{key: key, val: v}
	l.table[key] = n
	l.pushFront(n)
	if len(l.table) > l.cap {
		evict := l.tail
		l.unlink(evict)
		delete(l.table, evict.key)
	}
}

func (l *lruCache[V]) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.table)
}

func (l *lruCache[V]) pushFront(n *lruNode[V]) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *lruCache[V]) unlink(n *lruNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
}

func (l *lruCache[V]) moveToFront(n *lruNode[V]) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

// planCache bundles the interface's three compiler caches.
type planCache struct {
	plans  *lruCache[*audience.Plan]      // canonical spec key → compiled plan
	unions *lruCache[audience.Operand]    // canonical clause key → shared union
	scheds *lruCache[*audience.PlanBatch] // batch key sequence → frozen schedule

	// seenMu guards seenUnions: every union key ever materialized, bounded
	// by seenUnionCap. A union-cache miss on a seen key is a rebuild — the
	// eviction-refill churn plan_cache_rebuilds_total counts (each one
	// re-runs UnionAll and possibly audience.FromSet). Snapshot-backed
	// interfaces disable the compiler entirely, so their counter pins at 0.
	seenMu     sync.Mutex
	seenUnions map[string]struct{}
}

// seenUnionCap bounds the rebuild-detection key set; beyond it new keys stop
// being recorded (misses on unrecorded keys count as first builds, so the
// counter under-reports rather than growing without bound).
const seenUnionCap = 1 << 16

// noteUnionBuild records that a union key is being materialized and reports
// whether it had been materialized before — i.e. this build is a rebuild.
func (pc *planCache) noteUnionBuild(key string) (rebuild bool) {
	pc.seenMu.Lock()
	defer pc.seenMu.Unlock()
	if _, ok := pc.seenUnions[key]; ok {
		return true
	}
	if pc.seenUnions == nil {
		pc.seenUnions = make(map[string]struct{})
	}
	if len(pc.seenUnions) < seenUnionCap {
		pc.seenUnions[key] = struct{}{}
	}
	return false
}

func newPlanCache(size int) *planCache {
	if size == 0 {
		size = defaultPlanCacheSize
	}
	derived := size / 8
	if derived < minDerivedCacheSize {
		derived = minDerivedCacheSize
	}
	return &planCache{
		plans:  newLRU[*audience.Plan](size),
		unions: newLRU[audience.Operand](derived),
		scheds: newLRU[*audience.PlanBatch](derived),
	}
}

// lazyCSet caches one compressed audience behind an atomic pointer,
// mirroring lazySet for the dense forms.
type lazyCSet struct {
	ptr  atomic.Pointer[audience.CSet]
	once sync.Once
}

func (lc *lazyCSet) get(build func() *audience.CSet) *audience.CSet {
	if c := lc.ptr.Load(); c != nil {
		return c
	}
	lc.once.Do(func() { lc.ptr.Store(build()) })
	return lc.ptr.Load()
}

// csetFor returns the compressed form of a catalog-backed option set,
// building it lazily. Demographic and custom-audience sets stay dense-only:
// demographics are far too dense for the compressed walk to ever win, and
// custom audiences are transient per-advertiser state.
func (p *Interface) csetFor(r targeting.Ref, s *audience.Set) *audience.CSet {
	build := func() *audience.CSet { return audience.FromSet(s) }
	switch r.Kind {
	case targeting.KindAttribute:
		return p.attrCSets[r.ID].get(build)
	case targeting.KindTopic:
		return p.topicCSets[r.ID].get(build)
	case targeting.KindPlacement:
		return p.placementCSets[r.ID].get(build)
	default:
		return nil
	}
}

// operandFor resolves one targeting ref to a plan operand, attaching the
// compressed form when the interface materializes them.
func (p *Interface) operandFor(r targeting.Ref) (audience.Operand, error) {
	s, err := p.refSet(r)
	if err != nil {
		return audience.Operand{}, err
	}
	op := audience.Operand{Set: s}
	if p.cfg.Compressed {
		op.C = p.csetFor(r, s)
	}
	return op, nil
}

// unionOperand resolves a multi-ref OR clause to a single shared operand.
// The union is keyed by its sorted, deduplicated ref strings — the same
// normalization targeting.Canonical applies — so every plan whose clause
// unions the same options references the same materialized set, which is
// what lets CompileBatch common-subexpression tails across plans.
func (p *Interface) unionOperand(cl targeting.Clause) (audience.Operand, error) {
	parts := make([]string, len(cl))
	for i, r := range cl {
		parts[i] = r.String()
	}
	sort.Strings(parts)
	key := parts[0]
	for i := 1; i < len(parts); i++ {
		if parts[i] != parts[i-1] {
			key += "|" + parts[i]
		}
	}
	if op, ok := p.plans.unions.get(key); ok {
		return op, nil
	}
	if p.plans.noteUnionBuild(key) {
		p.mPlanRebuilds.Inc()
	}
	// Resolve in clause order so error positions match the serial path.
	sets := make([]*audience.Set, len(cl))
	for i, r := range cl {
		s, err := p.refSet(r)
		if err != nil {
			return audience.Operand{}, err
		}
		sets[i] = s
	}
	u := audience.UnionAll(sets...)
	op := audience.Operand{Set: u}
	if p.cfg.Compressed && u.Count() < (u.Len()+63)/64 {
		op.C = audience.FromSet(u)
	}
	p.plans.unions.add(key, op)
	return op, nil
}

// specCacheable reports whether a spec's plan may be cached: specs touching
// custom audiences compile fresh every time, since audience ids are dynamic
// per-advertiser state the canonical key does not pin.
func specCacheable(spec targeting.Spec) bool {
	for _, cl := range spec.Include {
		for _, r := range cl {
			if r.Kind == targeting.KindCustomAudience {
				return false
			}
		}
	}
	for _, cl := range spec.Exclude {
		for _, r := range cl {
			if r.Kind == targeting.KindCustomAudience {
				return false
			}
		}
	}
	return true
}

// compileSpec lowers one spec into a compiled plan. Shape and resolution
// errors are produced in the same order as the serial evaluation and the
// legacy batch lowering: clauses in include-then-exclude order, refs in
// clause order.
func (p *Interface) compileSpec(spec targeting.Spec) (*audience.Plan, error) {
	if len(spec.Include) == 0 {
		return nil, targeting.ErrEmptySpec
	}
	clauses := make([]audience.PlanClause, 0, len(spec.Include)+len(spec.Exclude))
	lower := func(cl targeting.Clause, negate bool) error {
		if len(cl) == 0 {
			return targeting.ErrEmptyClause
		}
		var op audience.Operand
		var err error
		if len(cl) == 1 {
			op, err = p.operandFor(cl[0])
		} else {
			op, err = p.unionOperand(cl)
		}
		if err != nil {
			return err
		}
		clauses = append(clauses, audience.PlanClause{Or: []audience.Operand{op}, Negate: negate})
		return nil
	}
	for _, cl := range spec.Include {
		if err := lower(cl, false); err != nil {
			return nil, err
		}
	}
	for _, cl := range spec.Exclude {
		if err := lower(cl, true); err != nil {
			return nil, err
		}
	}
	return audience.CompilePlan(p.cfg.Universe.Size(), clauses), nil
}

// planFor returns the compiled plan for a spec, from cache when possible.
// The second result reports whether the plan is cache-stable (usable in a
// cached batch schedule).
func (p *Interface) planFor(key string, spec targeting.Spec) (*audience.Plan, bool, error) {
	cacheable := specCacheable(spec)
	if cacheable {
		if plan, ok := p.plans.plans.get(key); ok {
			p.mPlanHits.Inc()
			return plan, true, nil
		}
		p.mPlanMisses.Inc()
	}
	plan, err := p.compileSpec(spec)
	if err != nil {
		return nil, false, err
	}
	p.mPlansCompiled.Inc()
	if cacheable {
		p.plans.plans.add(key, plan)
	}
	return plan, cacheable, nil
}

// PlanCacheStats reports the plan cache's current occupancy, for tests and
// diagnostics.
func (p *Interface) PlanCacheStats() (plans, unions, schedules int) {
	if p.plans == nil {
		return 0, 0, 0
	}
	return p.plans.plans.len(), p.plans.unions.len(), p.plans.scheds.len()
}
