package platform

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/audience"
	"repro/internal/catalog"
	"repro/internal/population"
	"repro/internal/targeting"
)

// OptionViews holds zero-copy compressed audiences for every catalog option
// of one interface, indexed like the catalog slices. A snapshot loader
// (internal/snapshot) decodes them over an mmap'd file and hands them to
// Config.Views; the interface then answers every query through the
// dense-scratch × view kernels without ever materializing an option set —
// boot is O(directory) and cold containers fault in from the page cache on
// first touch.
type OptionViews struct {
	Attributes []*audience.CSetView
	Topics     []*audience.CSetView
	Placements []*audience.CSetView
}

// validate checks the views line up with the catalog and universe the
// interface is being assembled with.
func (v *OptionViews) validate(cat *catalog.Catalog, size int) error {
	check := func(kind string, views []*audience.CSetView, want int) error {
		if len(views) != want {
			return fmt.Errorf("platform: %d %s views for %d catalog options", len(views), kind, want)
		}
		for i, view := range views {
			if view == nil {
				return fmt.Errorf("platform: nil %s view %d", kind, i)
			}
			if view.Len() != size {
				return fmt.Errorf("platform: %s view %d spans %d users, universe holds %d", kind, i, view.Len(), size)
			}
		}
		return nil
	}
	if err := check("attribute", v.Attributes, len(cat.Attributes)); err != nil {
		return err
	}
	if err := check("topic", v.Topics, len(cat.Topics)); err != nil {
		return err
	}
	return check("placement", v.Placements, len(cat.Placements))
}

// Prebuilt carries externally persisted deployment state — raw per-user
// universe arrays and catalog option views, both typically aliasing an
// mmap'd snapshot. NewDeploymentFrom consumes it: universes are
// reconstructed with population.FromData (no hash draws) and interfaces are
// assembled view-backed (no materialization), so the deployment is
// ready-to-serve in O(catalog directory) instead of O(universe × catalog).
type Prebuilt struct {
	// Universes maps the universe-owning platform name —
	// catalog.PlatformFacebook (shared with the restricted interface),
	// PlatformGoogle, PlatformLinkedIn — to its per-user arrays.
	Universes map[string]population.UniverseData
	// Views maps each interface name to its catalog option views.
	Views map[string]*OptionViews
}

// universeOwner maps an interface name to the platform name that owns its
// universe: Facebook's full and restricted interfaces share one universe.
func universeOwner(name string) string {
	if name == catalog.PlatformFacebookRestricted {
		return catalog.PlatformFacebook
	}
	return name
}

// Normalized returns the options with defaults applied — the canonical form
// the snapshot layer hashes into its config binding and compares at load
// time, so `-universe 0` and `-universe 131072` bind identically.
func (o DeployOptions) Normalized() DeployOptions { return o.withDefaults() }

// CatalogHash fingerprints everything that determines the deployment's
// catalog audiences: for every interface, each option's name, draw ID, and
// full generative model parameters. Option IDs alone are hashes of
// platform+name and thus seed-independent; including the model parameters
// (which catalogs draw from the seed) is what makes deployments built from
// different seeds hash differently. Two deployments with equal catalog
// hashes over equal universes answer every catalog query identically, which
// is the invariant the snapshot loader and the cluster coordinator's
// mixed-ring preflight both enforce.
func CatalogHash(d *Deployment) string {
	h := sha256.New()
	for _, p := range d.Interfaces() {
		fmt.Fprintf(h, "iface %s\n", p.Name())
		hashOptions(h, "attr", p.Catalog().Attributes)
		hashOptions(h, "topic", p.Catalog().Topics)
		hashOptions(h, "placement", p.Catalog().Placements)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashOptions writes one catalog dimension into the hash, model parameters
// included.
func hashOptions(w io.Writer, kind string, opts []catalog.Attribute) {
	fmt.Fprintf(w, "%s %d\n", kind, len(opts))
	for i := range opts {
		o := &opts[i]
		m := o.Model
		fmt.Fprintf(w, "%q %q %v %d %v %v %v %d %v\n",
			o.Name, o.Category, o.Pinned,
			m.ID, m.BaseLogit, m.GenderLoad, m.AgeLoad, m.Factor, m.FactorBoost)
	}
}

// OptionCSet returns the compressed audience of one catalog option,
// materializing through whichever form the interface retains: the cached
// compressed set under CSetOnly, a round trip through the view in snapshot
// mode, or a transient compression of the dense set otherwise. Only catalog
// kinds (attribute, topic, placement) resolve; the snapshot writer uses
// this to serialize a deployment's full catalog.
func (p *Interface) OptionCSet(r targeting.Ref) (*audience.CSet, error) {
	switch r.Kind {
	case targeting.KindAttribute, targeting.KindTopic, targeting.KindPlacement:
	default:
		return nil, fmt.Errorf("%w: %s is not a catalog option", targeting.ErrKindForbidden, r)
	}
	op, err := p.refOperand(r)
	if err != nil {
		return nil, err
	}
	switch {
	case op.c != nil:
		return op.c, nil
	case op.v != nil:
		return audience.FromSet(op.v.ToSet()), nil
	default:
		return audience.FromSet(op.s), nil
	}
}
