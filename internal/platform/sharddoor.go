package platform

import (
	"fmt"

	"repro/internal/audience"
	"repro/internal/obs"
	"repro/internal/targeting"
)

// This file is the shard-side door of the cluster (internal/cluster): a
// coordinator fans a batch out to shards, each shard answers with raw
// matched-user counts restricted to the partitions it was asked to serve,
// and the coordinator sums the partial counts and applies scaling and
// rounding exactly once — through ScaleAndRound below, which replicates the
// single-node float op order bit for bit.

// Door selects which of the interface's two query doors a request goes
// through: the auditor's Measure door or the advertiser's Estimate door.
type Door uint8

// Doors.
const (
	DoorMeasure Door = iota
	DoorEstimate
)

// String names the door as the wire protocol does.
func (d Door) String() string {
	if d == DoorEstimate {
		return "estimate"
	}
	return "measure"
}

// ParseDoor inverts Door.String.
func ParseDoor(s string) (Door, error) {
	switch s {
	case "measure":
		return DoorMeasure, nil
	case "estimate":
		return DoorEstimate, nil
	default:
		return 0, fmt.Errorf("platform: unknown door %q", s)
	}
}

// doorRules returns the validation rules behind a door.
func (p *Interface) doorRules(d Door) targeting.Rules {
	if d == DoorEstimate {
		return p.cfg.AdvertiserRules
	}
	return p.MeasurementRules()
}

// doorCounter returns the door's query counter.
func (p *Interface) doorCounter(d Door) *obs.Counter {
	if d == DoorEstimate {
		return p.mEstimateQueries
	}
	return p.mMeasureQueries
}

// QueryParams validates a request's non-spec parameters under the door's
// rules and returns the scaling factors the statistic multiplies by. The
// cluster coordinator calls this on its zero-user metadata interface so
// validation outcomes and factors are decided once, identically to the
// single-node path.
func (p *Interface) QueryParams(door Door, req EstimateRequest) (eligible, impressions float64, err error) {
	return p.queryParams(req, p.doorRules(door))
}

// ScaleAndRound converts a raw matched-user count into the door-visible
// rounded platform-scale size. The expression mirrors estimateExact and the
// batched scaleAndRound term for term — same multiplication order, same
// +0.5 truncation, same rounder — so a coordinator applying it to a sum of
// shard counts is bit-identical to a single node counting the full
// universe. Rounding metrics are tallied exactly as the single-node doors
// tally them.
func (p *Interface) ScaleAndRound(count int64, eligible, impressions float64) int64 {
	v := float64(count) * p.ScaleFactor() * eligible
	if p.cfg.ImpressionEstimates {
		v *= impressions
	}
	exact := int64(v + 0.5)
	rounded := p.cfg.Rounder.Round(exact)
	switch {
	case rounded == 0 && exact > 0:
		p.mFloorRejections.Inc()
	case rounded != exact:
		p.mRoundingHits.Inc()
	}
	return rounded
}

// IndexRange is a half-open window [Lo, Hi) of local user indices.
type IndexRange struct {
	Lo, Hi int
}

// RawCount is one slot of a RawCountMany batch: the raw matched-user count
// within the requested ranges, or the error the single-node door would have
// returned for the slot.
type RawCount struct {
	Count int64
	Err   error
}

// RawCountMany evaluates a batch of requests under the door's rules and
// returns each spec's raw matched-user count restricted to the given local
// index ranges (nil counts the whole local universe). No scaling, no
// rounding: those are the coordinator's job, applied once to the merged sum.
// Per-request failures are reported in their slot, mirroring MeasureMany.
func (p *Interface) RawCountMany(door Door, reqs []EstimateRequest, ranges []IndexRange) []RawCount {
	rules := p.doorRules(door)
	out := make([]RawCount, len(reqs))
	served := int64(0)
	for i := range reqs {
		if _, _, err := p.queryParams(reqs[i], rules); err != nil {
			out[i].Err = err
			continue
		}
		c, err := p.countMatchedRanges(reqs[i].Spec, ranges)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Count = int64(c)
		served++
	}
	if served > 0 {
		p.queryCount.Add(served)
		p.doorCounter(door).Add(served)
	}
	return out
}

// coversAll reports whether the ranges cover the whole local index space.
func coversAll(ranges []IndexRange, n int) bool {
	next := 0
	for _, r := range ranges {
		if r.Lo > next {
			return false
		}
		if r.Hi > next {
			next = r.Hi
		}
	}
	return next >= n
}

// countMatchedRanges counts the users matching a spec whose local index
// falls in the given ranges (nil = everywhere). Dense interfaces counting
// the full range take the zero-allocation countMatched fast paths;
// everything else evaluates the spec into a scratch accumulator — via the
// dense×compressed kernels when the interface is CSetOnly — and popcounts
// the requested windows.
func (p *Interface) countMatchedRanges(spec targeting.Spec, ranges []IndexRange) (int, error) {
	n := p.cfg.Universe.Size()
	full := ranges == nil || coversAll(ranges, n)
	if full && !p.cfg.CSetOnly && p.cfg.Views == nil {
		return p.countMatched(spec)
	}
	acc, err := p.audienceScratch(spec)
	if err != nil {
		return 0, err
	}
	defer acc.Recycle()
	if full {
		return acc.Count(), nil
	}
	total := 0
	for _, r := range ranges {
		total += acc.CountRange(r.Lo, r.Hi)
	}
	return total, nil
}

// refOperand is a resolved targeting ref in whichever form the interface
// retains: dense (demographics, custom audiences, and every set on a dense
// interface), compressed-only (catalog option sets under CSetOnly), or a
// zero-copy snapshot view (catalog option sets under Config.Views).
type refOperand struct {
	s *audience.Set
	c *audience.CSet
	v *audience.CSetView
}

// refOperand resolves one ref. Under CSetOnly, catalog option sets are
// materialized dense transiently, compressed, and the dense form dropped —
// the interface never retains more than the compressed catalog. On a
// snapshot-backed interface the decoded views are returned directly: no
// materialization, no compression, no copies, ever.
func (p *Interface) refOperand(r targeting.Ref) (refOperand, error) {
	if vs := p.cfg.Views; vs != nil {
		switch r.Kind {
		case targeting.KindAttribute:
			if r.ID < 0 || r.ID >= len(vs.Attributes) {
				return refOperand{}, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
			}
			return refOperand{v: vs.Attributes[r.ID]}, nil
		case targeting.KindTopic:
			if r.ID < 0 || r.ID >= len(vs.Topics) {
				return refOperand{}, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
			}
			return refOperand{v: vs.Topics[r.ID]}, nil
		case targeting.KindPlacement:
			if r.ID < 0 || r.ID >= len(vs.Placements) {
				return refOperand{}, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
			}
			return refOperand{v: vs.Placements[r.ID]}, nil
		}
	}
	if p.cfg.CSetOnly {
		u := p.cfg.Universe
		switch r.Kind {
		case targeting.KindAttribute:
			if r.ID < 0 || r.ID >= len(p.cfg.Catalog.Attributes) {
				return refOperand{}, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
			}
			return refOperand{c: p.attrCSets[r.ID].get(func() *audience.CSet {
				return audience.FromSet(u.Materialize(p.cfg.Catalog.Attributes[r.ID].Model))
			})}, nil
		case targeting.KindTopic:
			if r.ID < 0 || r.ID >= len(p.cfg.Catalog.Topics) {
				return refOperand{}, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
			}
			return refOperand{c: p.topicCSets[r.ID].get(func() *audience.CSet {
				return audience.FromSet(u.Materialize(p.cfg.Catalog.Topics[r.ID].Model))
			})}, nil
		case targeting.KindPlacement:
			if r.ID < 0 || r.ID >= len(p.cfg.Catalog.Placements) {
				return refOperand{}, fmt.Errorf("%w: %s", targeting.ErrUnknownOption, r)
			}
			return refOperand{c: p.placementCSets[r.ID].get(func() *audience.CSet {
				return audience.FromSet(u.Materialize(p.cfg.Catalog.Placements[r.ID].Model))
			})}, nil
		}
	}
	s, err := p.refSet(r)
	if err != nil {
		return refOperand{}, err
	}
	return refOperand{s: s}, nil
}

// audienceScratch evaluates a spec into a scratch set the caller must
// Recycle. Error order matches countMatched: clauses in include-then-exclude
// order, refs in clause order.
func (p *Interface) audienceScratch(spec targeting.Spec) (*audience.Set, error) {
	if len(spec.Include) == 0 {
		return nil, targeting.ErrEmptySpec
	}
	n := p.cfg.Universe.Size()
	orClause := func(dst *audience.Set, cl targeting.Clause) error {
		if len(cl) == 0 {
			return targeting.ErrEmptyClause
		}
		dst.Clear()
		for _, r := range cl {
			op, err := p.refOperand(r)
			if err != nil {
				return err
			}
			switch {
			case op.v != nil:
				dst.OrWithView(op.v)
			case op.c != nil:
				dst.OrWithC(op.c)
			default:
				dst.OrWith(op.s)
			}
		}
		return nil
	}
	acc := audience.NewScratch(n)
	if err := orClause(acc, spec.Include[0]); err != nil {
		acc.Recycle()
		return nil, err
	}
	var tmp *audience.Set
	defer func() {
		if tmp != nil {
			tmp.Recycle()
		}
	}()
	combine := func(cl targeting.Clause, exclude bool) error {
		if len(cl) == 0 {
			return targeting.ErrEmptyClause
		}
		if len(cl) == 1 {
			op, err := p.refOperand(cl[0])
			if err != nil {
				return err
			}
			switch {
			case op.v != nil && exclude:
				acc.AndNotWithView(op.v)
			case op.v != nil:
				acc.AndWithView(op.v)
			case op.c != nil && exclude:
				acc.AndNotWithC(op.c)
			case op.c != nil:
				acc.AndWithC(op.c)
			case exclude:
				acc.AndNotWith(op.s)
			default:
				acc.AndWith(op.s)
			}
			return nil
		}
		if tmp == nil {
			tmp = audience.NewScratch(n)
		}
		if err := orClause(tmp, cl); err != nil {
			return err
		}
		if exclude {
			acc.AndNotWith(tmp)
		} else {
			acc.AndWith(tmp)
		}
		return nil
	}
	for _, cl := range spec.Include[1:] {
		if err := combine(cl, false); err != nil {
			acc.Recycle()
			return nil, err
		}
	}
	for _, cl := range spec.Exclude {
		if err := combine(cl, true); err != nil {
			acc.Recycle()
			return nil, err
		}
	}
	return acc, nil
}

// sizeManyCSet answers a batch on a CSetOnly interface: per-slot validation
// and compressed-path counting with the shared scaling/rounding, skipping
// the compiler and the dense tiled kernel (both would retain dense catalog
// sets a shard exists to avoid).
func (p *Interface) sizeManyCSet(reqs []EstimateRequest, rules targeting.Rules, queries *obs.Counter) ([]Estimate, error) {
	out := make([]Estimate, len(reqs))
	served := int64(0)
	for i := range reqs {
		eligible, impressions, err := p.queryParams(reqs[i], rules)
		if err != nil {
			out[i].Err = err
			continue
		}
		c, err := p.countMatchedRanges(reqs[i].Spec, nil)
		if err != nil {
			out[i].Err = err
			continue
		}
		served++
		v := float64(c) * p.ScaleFactor() * eligible
		if p.cfg.ImpressionEstimates {
			v *= impressions
		}
		out[i].Size = p.roundAndCount(v, queries)
	}
	if served > 0 {
		p.queryCount.Add(served)
	}
	return out, nil
}
