package platform

import (
	"errors"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/estimate"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/targeting"
)

// DefaultUSShare is the fraction of each simulated universe located in the
// US. The paper's measurements scope to U.S. users via location targeting;
// the platform totals below are US figures, so the reporting scale factor
// divides by this share.
const DefaultUSShare = 0.85

// US-scale platform population totals the simulators report at. These come
// from the paper's recall percentages (e.g. a 5M recall described as 4.17 %
// of Facebook's females implies ≈120M females; LinkedIn's 560K at 0.79 %
// implies ≈71M females). Google's statistic counts impressions over its
// display network, hence the much larger total.
const (
	FacebookTotalUsers = 240_000_000
	GoogleTotalUsers   = 2_400_000_000
	LinkedInTotalUsers = 160_000_000
)

// DeployOptions sizes a simulated deployment.
type DeployOptions struct {
	// Seed drives all universes and catalogs.
	Seed uint64
	// UniverseSize is the number of simulated users per platform. Larger
	// sizes sharpen small-audience statistics at linear cost. The zero
	// value selects 1<<17.
	UniverseSize int
	// NoLatentFactors disables the latent interest factors, making
	// attribute memberships conditionally independent given demographics.
	// Used by the factor ablation (DESIGN.md §4.1).
	NoLatentFactors bool
	// ExactEstimates replaces every platform's rounding scheme with exact
	// counts. Used by the rounding ablation (DESIGN.md §4.3).
	ExactEstimates bool
	// UniformActivity disables the heavy-tailed per-user activity offsets,
	// for the activity ablation.
	UniformActivity bool
	// Compressed materializes roaring-style compressed forms of the catalog
	// option sets, letting the query compiler dispatch sparse-base plans to
	// the container walk instead of the dense kernel.
	Compressed bool
	// NoPlanCompiler disables the query compiler and its plan caches,
	// keeping the legacy per-batch lowering path. This is the compiler's
	// benchmark baseline.
	NoPlanCompiler bool
	// ShardSpans restricts every universe to the given global-ID spans
	// (population.NewShard): each platform materializes only the spanned
	// users, with all draws still hashed by global ID so the shard is
	// bit-identical to that slice of the full deployment. nil builds full
	// universes; a non-nil empty slice builds a zero-user metadata
	// deployment — catalogs, rules, rounders, and objectives with nobody in
	// them — which is the cluster coordinator's validation and scaling
	// view. Shard deployments with Compressed set retain catalog option
	// sets compressed-only (Config.CSetOnly), the memory posture that lets
	// a 2^24-user shard fit where a dense catalog would not.
	ShardSpans []population.Span
	// Metrics receives every interface's counters; nil selects the
	// process-wide obs.Default() registry.
	Metrics *obs.Registry
}

// planCacheSize maps the compiler knobs onto Config.PlanCacheSize: the
// default cache when the compiler is on, the negative sentinel when it is
// disabled.
func (o DeployOptions) planCacheSize() int {
	if o.NoPlanCompiler {
		return -1
	}
	return 0
}

// withDefaults fills defaults.
func (o DeployOptions) withDefaults() DeployOptions {
	if o.Seed == 0 {
		o.Seed = 20201027 // IMC 2020, day one
	}
	if o.UniverseSize == 0 {
		o.UniverseSize = 1 << 17
	}
	return o
}

// Deployment is the full simulated testbed: all four advertiser interfaces
// the paper studies.
type Deployment struct {
	FacebookRestricted *Interface
	Facebook           *Interface
	Google             *Interface
	LinkedIn           *Interface
}

// Interfaces returns the four interfaces in the paper's presentation order:
// FB-restricted, Facebook, Google, LinkedIn.
func (d *Deployment) Interfaces() []*Interface {
	return []*Interface{d.FacebookRestricted, d.Facebook, d.Google, d.LinkedIn}
}

// ByName returns the interface with the given name, or an error.
func (d *Deployment) ByName(name string) (*Interface, error) {
	for _, p := range d.Interfaces() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("platform: unknown interface %q", name)
}

// activitySigma returns the platform's activity spread, honouring the
// uniform-activity ablation knob.
func activitySigma(opts DeployOptions, v float64) float64 {
	if opts.UniformActivity {
		return 0
	}
	return v
}

// demoOptionCount bounds demographic ref IDs for rule validation.
func demoOptionCount(k targeting.Kind, attrs, topics int) int {
	return demoOptionCountP(k, attrs, topics, 0)
}

// demoOptionCountP is demoOptionCount with a placement bound.
func demoOptionCountP(k targeting.Kind, attrs, topics, placements int) int {
	switch k {
	case targeting.KindAttribute:
		return attrs
	case targeting.KindTopic:
		return topics
	case targeting.KindPlacement:
		return placements
	case targeting.KindGender:
		return population.NumGenders
	case targeting.KindAge:
		return population.NumAgeRanges
	case targeting.KindCustomAudience:
		// Custom audience ids are dynamic; the interface bounds-checks them
		// at resolution time.
		return int(^uint(0) >> 1)
	case targeting.KindLocation:
		return population.NumRegions
	default:
		return 0
	}
}

// NewDeployment builds the four simulated interfaces. Facebook's full and
// restricted interfaces share one universe (they are two doors into the same
// user base); Google and LinkedIn have their own universes with the
// demographic compositions their catalogs' systematic skews suggest.
func NewDeployment(opts DeployOptions) (*Deployment, error) {
	return NewDeploymentFrom(opts, nil)
}

// NewDeploymentFrom is NewDeployment taking prebuilt state: when pre is
// non-nil, each universe is reconstructed from its persisted per-user arrays
// (population.FromData — no hash draws) and each interface is assembled over
// its snapshot option views (Config.Views — no materialization). Every
// derived structure — catalogs, rules, rounders, objective tables, scale
// factors, population.Config literals — still comes from this constructor,
// so a snapshot carries only raw draws and a loaded deployment cannot drift
// from what NewDeployment(opts) would wire. pre must cover all three
// universes and all four interfaces; the snapshot loader guarantees it.
func NewDeploymentFrom(opts DeployOptions, pre *Prebuilt) (*Deployment, error) {
	opts = opts.withDefaults()
	if opts.UniverseSize < 1000 {
		return nil, errors.New("platform: UniverseSize must be at least 1000")
	}
	factors := catalog.Factors()
	if opts.NoLatentFactors {
		factors = nil
	}
	pickRounder := func(r estimate.Rounder) estimate.Rounder {
		if opts.ExactEstimates {
			return estimate.Exact{}
		}
		return r
	}
	newUni := func(cfg population.Config) (*population.Universe, error) {
		if pre != nil {
			owner := ""
			switch cfg.Seed {
			case opts.Seed:
				owner = catalog.PlatformFacebook
			case opts.Seed + 1:
				owner = catalog.PlatformGoogle
			case opts.Seed + 2:
				owner = catalog.PlatformLinkedIn
			}
			data, ok := pre.Universes[owner]
			if !ok {
				return nil, fmt.Errorf("population: no prebuilt universe for %q", owner)
			}
			return population.FromData(cfg, opts.ShardSpans, data)
		}
		if opts.ShardSpans != nil {
			return population.NewShard(cfg, opts.ShardSpans)
		}
		return population.New(cfg)
	}
	viewsFor := func(name string) (*OptionViews, error) {
		if pre == nil {
			return nil, nil
		}
		v, ok := pre.Views[name]
		if !ok {
			return nil, fmt.Errorf("platform: no prebuilt views for %q", name)
		}
		return v, nil
	}
	csetOnly := opts.Compressed && opts.ShardSpans != nil && pre == nil

	fbUni, err := newUni(population.Config{
		Seed:        opts.Seed,
		Size:        opts.UniverseSize,
		ScaleFactor: FacebookTotalUsers / (float64(opts.UniverseSize) * DefaultUSShare),
		USShare:     DefaultUSShare,
		MaleShare:   0.46,
		AgeShare:    [population.NumAgeRanges]float64{0.16, 0.27, 0.33, 0.24},
		Factors:     factors,
		// Heavy-tailed activity: Facebook interest audiences overlap
		// substantially (Table 1: ~22% median pairwise overlap).
		ActivitySigma: activitySigma(opts, 1.7),
	})
	if err != nil {
		return nil, fmt.Errorf("facebook universe: %w", err)
	}
	googleUni, err := newUni(population.Config{
		Seed:          opts.Seed + 1,
		Size:          opts.UniverseSize,
		ScaleFactor:   GoogleTotalUsers / float64(opts.UniverseSize),
		MaleShare:     0.49,
		AgeShare:      [population.NumAgeRanges]float64{0.15, 0.25, 0.34, 0.26},
		Factors:       factors,
		ActivitySigma: activitySigma(opts, 1.1),
	})
	if err != nil {
		return nil, fmt.Errorf("google universe: %w", err)
	}
	linkedInUni, err := newUni(population.Config{
		Seed:        opts.Seed + 2,
		Size:        opts.UniverseSize,
		ScaleFactor: LinkedInTotalUsers / (float64(opts.UniverseSize) * DefaultUSShare),
		USShare:     DefaultUSShare,
		MaleShare:   0.56,
		AgeShare:    [population.NumAgeRanges]float64{0.20, 0.35, 0.33, 0.12},
		Factors:     factors,
		// LinkedIn profiles carry few overlapping detailed attributes
		// (Table 1: ~0% median pairwise overlap).
		ActivitySigma: activitySigma(opts, 0.5),
	})
	if err != nil {
		return nil, fmt.Errorf("linkedin universe: %w", err)
	}

	fbrCat, err := catalog.FacebookRestricted(opts.Seed)
	if err != nil {
		return nil, err
	}
	fbCat, err := catalog.Facebook(opts.Seed)
	if err != nil {
		return nil, err
	}
	gCat, err := catalog.Google(opts.Seed)
	if err != nil {
		return nil, err
	}
	liCat, err := catalog.LinkedIn(opts.Seed)
	if err != nil {
		return nil, err
	}

	d := &Deployment{}

	// Facebook full interface: attributes + separate demographic dimensions,
	// exclusion allowed, boolean and-of-ors within the attribute feature.
	fbRules := targeting.Rules{
		Interface: catalog.PlatformFacebook,
		Kinds: []targeting.Kind{
			targeting.KindAttribute, targeting.KindGender, targeting.KindAge,
			targeting.KindCustomAudience, targeting.KindLocation,
		},
		AllowExclude:      true,
		AllowDemographics: true,
		AndWithinFeature:  true,
		OptionCount: func(k targeting.Kind) int {
			return demoOptionCount(k, len(fbCat.Attributes), 0)
		},
	}
	fbViews, err := viewsFor(catalog.PlatformFacebook)
	if err != nil {
		return nil, err
	}
	d.Facebook, err = New(Config{
		Name:             catalog.PlatformFacebook,
		Universe:         fbUni,
		Catalog:          fbCat,
		AdvertiserRules:  fbRules,
		Rounder:          pickRounder(estimate.Facebook()),
		Objectives:       map[Objective]float64{ObjectiveReach: 1, ObjectiveTraffic: 0.72},
		DefaultObjective: ObjectiveReach,
		PlanCacheSize:    opts.planCacheSize(),
		Compressed:       opts.Compressed,
		CSetOnly:         csetOnly,
		Views:            fbViews,
		Metrics:          opts.Metrics,
	})
	if err != nil {
		return nil, err
	}

	// Facebook restricted interface: no demographics, no exclusion (paper
	// §2.2); the auditor measures demographics through the normal interface,
	// expressed here as measurement rules that re-allow them.
	fbrAdvRules := targeting.Rules{
		Interface: catalog.PlatformFacebookRestricted,
		Kinds: []targeting.Kind{
			targeting.KindAttribute, targeting.KindCustomAudience,
			targeting.KindLocation,
		},
		AndWithinFeature: true,
		OptionCount: func(k targeting.Kind) int {
			return demoOptionCount(k, len(fbrCat.Attributes), 0)
		},
	}
	fbrMeasRules := fbrAdvRules
	fbrMeasRules.Kinds = []targeting.Kind{
		targeting.KindAttribute, targeting.KindGender, targeting.KindAge,
		targeting.KindCustomAudience, targeting.KindLocation,
	}
	fbrMeasRules.AllowDemographics = true
	fbrViews, err := viewsFor(catalog.PlatformFacebookRestricted)
	if err != nil {
		return nil, err
	}
	d.FacebookRestricted, err = New(Config{
		Name:               catalog.PlatformFacebookRestricted,
		Universe:           fbUni,
		Catalog:            fbrCat,
		AdvertiserRules:    fbrAdvRules,
		MeasurementRules:   &fbrMeasRules,
		SpecialAdAudiences: true,
		Rounder:            pickRounder(estimate.Facebook()),
		Objectives:         map[Objective]float64{ObjectiveReach: 1, ObjectiveTraffic: 0.72},
		DefaultObjective:   ObjectiveReach,
		PlanCacheSize:      opts.planCacheSize(),
		Compressed:         opts.Compressed,
		CSetOnly:           csetOnly,
		Views:              fbrViews,
		Metrics:            opts.Metrics,
	})
	if err != nil {
		return nil, err
	}

	// Google: attributes + topics + demographics; options within a feature
	// combine only via OR where size statistics are shown, so AND spans
	// features; size statistic counts impressions, subject to frequency
	// capping.
	gRules := targeting.Rules{
		Interface: catalog.PlatformGoogle,
		Kinds: []targeting.Kind{
			targeting.KindAttribute, targeting.KindTopic,
			targeting.KindPlacement, targeting.KindGender, targeting.KindAge,
			targeting.KindCustomAudience, targeting.KindLocation,
		},
		AllowExclude:      true,
		AllowDemographics: true,
		AndWithinFeature:  false,
		OptionCount: func(k targeting.Kind) int {
			return demoOptionCountP(k, len(gCat.Attributes), len(gCat.Topics), len(gCat.Placements))
		},
	}
	gViews, err := viewsFor(catalog.PlatformGoogle)
	if err != nil {
		return nil, err
	}
	d.Google, err = New(Config{
		Name:                catalog.PlatformGoogle,
		Universe:            googleUni,
		Catalog:             gCat,
		AdvertiserRules:     gRules,
		Rounder:             pickRounder(estimate.Google()),
		Objectives:          map[Objective]float64{ObjectiveBrandAwarenessReach: 1, ObjectiveTraffic: 0.65},
		DefaultObjective:    ObjectiveBrandAwarenessReach,
		ImpressionEstimates: true,
		PlanCacheSize:       opts.planCacheSize(),
		Compressed:          opts.Compressed,
		CSetOnly:            csetOnly,
		Views:               gViews,
		Metrics:             opts.Metrics,
	})
	if err != nil {
		return nil, err
	}

	// LinkedIn: demographics are ordinary detailed-targeting attributes
	// combined via AND of ORs (paper §3 fn. 4); modelled as demographic
	// kinds with DemographicsAsAttributes semantics.
	liRules := targeting.Rules{
		Interface: catalog.PlatformLinkedIn,
		Kinds: []targeting.Kind{
			targeting.KindAttribute, targeting.KindGender, targeting.KindAge,
			targeting.KindCustomAudience, targeting.KindLocation,
		},
		AllowExclude:             true,
		AllowDemographics:        true,
		DemographicsAsAttributes: true,
		AndWithinFeature:         true,
		OptionCount: func(k targeting.Kind) int {
			return demoOptionCount(k, len(liCat.Attributes), 0)
		},
	}
	liViews, err := viewsFor(catalog.PlatformLinkedIn)
	if err != nil {
		return nil, err
	}
	d.LinkedIn, err = New(Config{
		Name:             catalog.PlatformLinkedIn,
		Universe:         linkedInUni,
		Catalog:          liCat,
		AdvertiserRules:  liRules,
		Rounder:          pickRounder(estimate.LinkedIn()),
		Objectives:       map[Objective]float64{ObjectiveBrandAwareness: 1, ObjectiveTraffic: 0.70},
		DefaultObjective: ObjectiveBrandAwareness,
		PlanCacheSize:    opts.planCacheSize(),
		Compressed:       opts.Compressed,
		CSetOnly:         csetOnly,
		Views:            liViews,
		Metrics:          opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}
