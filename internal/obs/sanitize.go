package obs

import (
	"strings"
	"unicode/utf8"
)

// SanitizeName coerces s into a valid metric or label-key name:
// [a-zA-Z_][a-zA-Z0-9_]*. Invalid bytes become '_', a leading digit gains a
// '_' prefix, and an empty result becomes "_". Sanitization is idempotent,
// so names that are already valid pass through unchanged.
func SanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	valid := true
	for i := 0; i < len(s); i++ {
		if !isNameByte(s[i], i == 0) {
			valid = false
			break
		}
	}
	if valid {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if isNameByte(c, false) {
			if i == 0 && c >= '0' && c <= '9' {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// isNameByte reports whether c may appear in a name (first restricts to
// non-digit leading characters).
func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	default:
		return false
	}
}

// SanitizeLabelValue coerces s into a safely quotable label value: valid
// UTF-8 with backslashes, double quotes, newlines, and other control bytes
// escaped or replaced, truncated to a bounded length. The output never
// contains a raw '"', '\\', or control character, so embedding it between
// double quotes in the text exposition can never break the line format.
// Sanitization is idempotent on its own output.
func SanitizeLabelValue(s string) string {
	const maxLen = 256
	var b strings.Builder
	b.Grow(len(s))
	n := 0
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if n >= maxLen {
			break
		}
		switch {
		case r == utf8.RuneError && size == 1:
			b.WriteByte('?') // invalid UTF-8 byte
		case r == '"', r == '\\':
			b.WriteByte('_')
		case r == '\n', r == '\r', r == '\t':
			b.WriteByte(' ')
		case r < 0x20 || r == 0x7f:
			b.WriteByte('?')
		default:
			b.WriteRune(r)
		}
		i += size
		n++
	}
	return b.String()
}
