package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers every non-negative int64 nanosecond value: bucket i
// holds observations whose bit length is i, i.e. durations in
// [2^(i-1), 2^i) ns, with bucket 0 holding exact zeros. Powers of two give
// ~±35% relative error per bucket — ample for latency quantiles — at a
// fixed 520-byte footprint and a single atomic add per observation.
const numBuckets = 64

// Histogram is a log2-bucketed latency histogram. Observe is wait-free
// (two atomic adds); quantiles are computed on demand from a bucket
// snapshot with linear interpolation inside the winning bucket.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	sum     atomic.Int64 // total observed nanoseconds
	ex      atomic.Pointer[Exemplar]
}

// Exemplar links a latency series to one concrete traced request, so a
// dashboard's `*_seconds` number can jump straight to the recorded trace
// that exhibits it.
type Exemplar struct {
	// TraceID is the linked trace, as /debug/traces addresses it.
	TraceID string
	// Value is the linked observation's duration.
	Value time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.sum.Add(ns)
}

// ObserveWithExemplar records d and, when traceID is non-empty, retains it
// as the series' exemplar. Latest-sampled wins (the OpenMetrics
// convention), which also keeps the link pointing at a trace most likely
// still in the bounded trace buffer. One extra atomic store over Observe;
// untraced callers keep using Observe and pay nothing.
func (h *Histogram) ObserveWithExemplar(d time.Duration, traceID string) {
	h.Observe(d)
	if traceID != "" {
		h.ex.Store(&Exemplar{TraceID: traceID, Value: d})
	}
}

// Exemplar returns the series' current exemplar (nil when none recorded).
func (h *Histogram) Exemplar() *Exemplar { return h.ex.Load() }

// HistogramSnapshot is a histogram's state at one instant.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64
	// Sum is the total of all observed durations.
	Sum time.Duration
	// P50, P95, P99 are interpolated quantiles (0 when Count is 0).
	P50, P95, P99 time.Duration
	// Exemplar links the series to its most recent traced observation
	// (nil when tracing is disabled or no sampled request has landed).
	Exemplar *Exemplar
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot captures the histogram's counts and headline quantiles. Buckets
// are read without a global lock, so a snapshot taken mid-burst may be off
// by in-flight observations — fine for monitoring, and the quantiles are
// computed from the same read so they are mutually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	snap := HistogramSnapshot{Count: total, Sum: time.Duration(h.sum.Load()), Exemplar: h.ex.Load()}
	if total == 0 {
		return snap
	}
	snap.P50 = quantile(&counts, total, 0.50)
	snap.P95 = quantile(&counts, total, 0.95)
	snap.P99 = quantile(&counts, total, 0.99)
	return snap
}

// Quantile returns the q-th quantile (q in [0, 1]) of the recorded
// distribution, 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	return quantile(&counts, total, q)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// quantile locates the bucket holding the rank-q observation and
// interpolates linearly within its [2^(i-1), 2^i) range.
func quantile(counts *[numBuckets]int64, total int64, q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total-1) // 0-based fractional rank
	var cum int64
	for i := 0; i < numBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		lo := float64(cum)
		cum += counts[i]
		if rank < float64(cum) || cum == total {
			if i == 0 {
				return 0
			}
			bLo := float64(int64(1) << (i - 1))
			bHi := bLo * 2
			frac := (rank - lo) / float64(counts[i])
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return time.Duration(bLo + frac*(bHi-bLo))
		}
	}
	return 0
}
