package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestWriteTextGolden locks the /metrics text exposition: series ordering,
// TYPE comments, label rendering, histogram expansion, and float
// formatting. Regenerate with `go test ./internal/obs -run Golden
// -update-golden` after deliberate format changes.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("platform_queries_total", L("interface", "facebook"), L("door", "measure")).Add(1234)
	r.Counter("platform_queries_total", L("interface", "facebook"), L("door", "estimate")).Add(7)
	r.Counter("audit_cache_hits_total", L("platform", "google")).Add(900)
	r.Gauge("experiment_phase_seconds", L("phase", "fig1")).Set(12.75)
	r.Gauge("experiment_phase_seconds", L("phase", "tab1")).Set(0.03125)
	h := r.Histogram("adapi_server_request_seconds", L("interface", "linkedin"), L("door", "measure"))
	// Exact powers of two land on bucket boundaries, so quantile
	// interpolation is deterministic across platforms.
	for i := 0; i < 8; i++ {
		h.Observe(1 << 20 * time.Nanosecond) // ~1 ms
	}
	for i := 0; i < 2; i++ {
		h.Observe(1 << 24 * time.Nanosecond) // ~16.8 ms
	}
	// A label value that needs sanitizing must arrive quoted-safe.
	r.Counter("odd_total", L("desc", "say \"hi\"\nnow")).Inc()

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("text exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteTextEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty registry produced output: %q", buf.String())
	}
}
