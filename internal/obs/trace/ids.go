package trace

import (
	"errors"
	"strings"
)

// TraceID is a 128-bit identifier shared by every span of one trace.
type TraceID [16]byte

// SpanID is a 64-bit identifier for one span within a trace.
type SpanID [8]byte

// TraceIDFrom packs two 64-bit words big-endian into a TraceID.
func TraceIDFrom(hi, lo uint64) TraceID {
	var id TraceID
	putU64(id[:8], hi)
	putU64(id[8:], lo)
	return id
}

// SpanIDFrom packs one 64-bit word big-endian into a SpanID.
func SpanIDFrom(v uint64) SpanID {
	var id SpanID
	putU64(id[:], v)
	return id
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// IsZero reports whether the ID is all zeroes (the invalid value).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is all zeroes (the invalid value).
func (id SpanID) IsZero() bool { return id == SpanID{} }

const hexDigits = "0123456789abcdef"

func hexEncode(dst []byte, src []byte) {
	for i, b := range src {
		dst[i*2] = hexDigits[b>>4]
		dst[i*2+1] = hexDigits[b&0x0f]
	}
}

// hexDecode fills dst from exactly len(dst)*2 lowercase-or-uppercase hex
// digits; it reports whether src was well-formed.
func hexDecode(dst []byte, src string) bool {
	if len(src) != len(dst)*2 {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(src[i*2])
		lo, ok2 := hexVal(src[i*2+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// String renders the trace ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var buf [32]byte
	hexEncode(buf[:], id[:])
	return string(buf[:])
}

// String renders the span ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	var buf [16]byte
	hexEncode(buf[:], id[:])
	return string(buf[:])
}

// ParseTraceID parses 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if !hexDecode(id[:], s) {
		return TraceID{}, false
	}
	return id, true
}

// ParseSpanID parses 16 hex digits into a SpanID.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if !hexDecode(id[:], s) {
		return SpanID{}, false
	}
	return id, true
}

// SpanContext is the part of a span that crosses process boundaries: which
// trace it belongs to, which span is the remote parent, and whether the
// trace was sampled at its root.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context identifies a real trace and span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// HeaderName is the wire header carrying a SpanContext across the adapi
// HTTP boundary.
const HeaderName = "X-Adaudit-Trace"

// headerVersion is the format version prefix. Only "00" exists; unknown
// versions are rejected so the format can evolve.
const headerVersion = "00"

const flagSampled = 0x01

// Format renders the context in the header wire format:
//
//	00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
//
// (the W3C traceparent shape, chosen so the format is familiar without
// importing anything). Invalid contexts render as "".
func (sc SpanContext) Format() string {
	if !sc.Valid() {
		return ""
	}
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hexEncode(buf[3:35], sc.Trace[:])
	buf[35] = '-'
	hexEncode(buf[36:52], sc.Span[:])
	buf[52] = '-'
	flags := byte(0)
	if sc.Sampled {
		flags = flagSampled
	}
	buf[53] = hexDigits[flags>>4]
	buf[54] = hexDigits[flags&0x0f]
	return string(buf[:])
}

// ErrBadHeader reports a malformed X-Adaudit-Trace value.
var ErrBadHeader = errors.New("trace: malformed " + HeaderName + " header")

// ParseHeader parses the wire format produced by Format. It is strict:
// exactly four dash-separated fields, version 00, all-hex IDs of exact
// width, non-zero trace and span IDs, and no trailing data. Flag bits
// beyond sampled are ignored (reserved).
func ParseHeader(s string) (SpanContext, error) {
	// 55 = 2 (version) + 1 + 32 (trace) + 1 + 16 (span) + 1 + 2 (flags).
	if len(s) != 55 {
		return SpanContext{}, ErrBadHeader
	}
	if !strings.HasPrefix(s, headerVersion+"-") || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, ErrBadHeader
	}
	var sc SpanContext
	if !hexDecode(sc.Trace[:], s[3:35]) || !hexDecode(sc.Span[:], s[36:52]) {
		return SpanContext{}, ErrBadHeader
	}
	var flags [1]byte
	if !hexDecode(flags[:], s[53:55]) {
		return SpanContext{}, ErrBadHeader
	}
	if !sc.Valid() {
		return SpanContext{}, ErrBadHeader
	}
	sc.Sampled = flags[0]&flagSampled != 0
	return sc, nil
}
