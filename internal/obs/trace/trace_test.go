package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestTracer(t *testing.T, opts Options) *Tracer {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	return New(opts)
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Provenance() != nil {
		t.Fatal("nil tracer has provenance")
	}
	s := tr.StartRoot("x")
	if s != nil {
		t.Fatalf("nil tracer StartRoot = %v, want nil", s)
	}
	// All span methods must be safe on nil.
	s.Annotate("k", "v")
	s.AnnotateInt("n", 7)
	s.SetError(errors.New("boom"))
	s.End()
	if got := s.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if s.Sampled() {
		t.Fatal("nil span sampled")
	}
	if sc := s.Context(); sc.Valid() {
		t.Fatal("nil span has valid context")
	}
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span round-tripped through context")
	}
	if tr.StartChild(nil, "y") != nil {
		t.Fatal("nil tracer StartChild non-nil")
	}
	if n := tr.Len(); n != 0 {
		t.Fatalf("nil tracer Len = %d", n)
	}
	if s := tr.Summaries(0); s != nil {
		t.Fatalf("nil tracer Summaries = %v", s)
	}
	if _, ok := tr.Dump(TraceID{1}); ok {
		t.Fatal("nil tracer Dump ok")
	}
	// Handler on a nil tracer must still serve an empty listing.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"traces"`) {
		t.Fatalf("nil tracer handler: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestRootChildRecording(t *testing.T) {
	tr := newTestTracer(t, Options{SampleRate: 1})
	root := tr.StartRoot("audit.measure")
	if !root.Sampled() {
		t.Fatal("rate-1 root not sampled")
	}
	root.Annotate("platform", "platform-a")
	child := tr.StartChild(root, "platform.size")
	child.AnnotateInt("specs", 64)
	child.SetError(errors.New("bad spec"))
	child.End()
	child.End() // idempotent
	root.End()

	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	id, ok := ParseTraceID(root.TraceID())
	if !ok {
		t.Fatalf("bad root trace id %q", root.TraceID())
	}
	d, ok := tr.Dump(id)
	if !ok {
		t.Fatal("Dump miss")
	}
	if len(d.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(d.Spans))
	}
	// Start-sorted: root first.
	if d.Spans[0].Name != "audit.measure" || d.Spans[0].ParentID != "" {
		t.Fatalf("root span wrong: %+v", d.Spans[0])
	}
	c := d.Spans[1]
	if c.Name != "platform.size" || c.ParentID != d.Spans[0].SpanID {
		t.Fatalf("child span wrong: %+v", c)
	}
	if len(c.Annotations) != 1 || c.Annotations[0].Key != "specs" || c.Annotations[0].Value != "64" {
		t.Fatalf("child annotations = %+v", c.Annotations)
	}
	if c.Err != "bad spec" {
		t.Fatalf("child err = %q", c.Err)
	}

	sums := tr.Summaries(0)
	if len(sums) != 1 || sums[0].Root != "audit.measure" || sums[0].Spans != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
}

func TestUnsampledCostsNothing(t *testing.T) {
	tr := newTestTracer(t, Options{SampleRate: 0})
	root := tr.StartRoot("x")
	if root != nil {
		t.Fatalf("rate-0 root with no slow threshold = %v, want nil", root)
	}
	if tr.StartChild(root, "y") != nil {
		t.Fatal("child of nil root non-nil")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
}

func TestSlowRootForceRecordedAndLogged(t *testing.T) {
	var buf bytes.Buffer
	sl := NewSlowLog(&buf)
	sl.now = func() time.Time { return time.Date(2026, 8, 8, 1, 2, 3, 0, time.UTC) }
	tr := newTestTracer(t, Options{SampleRate: 0, SlowThreshold: time.Microsecond, SlowLog: sl})
	root := tr.StartRoot("slow.op")
	if root == nil {
		t.Fatal("slow-threshold tracer returned nil root")
	}
	if root.Sampled() {
		t.Fatal("rate-0 root sampled")
	}
	// Children of the unsampled root stay free.
	if tr.StartChild(root, "child") != nil {
		t.Fatal("unsampled root produced a child span")
	}
	root.Annotate("spec", "k1")
	time.Sleep(2 * time.Microsecond)
	root.End()

	if tr.Len() != 1 {
		t.Fatalf("slow root not force-recorded: Len = %d", tr.Len())
	}
	var e slowEntry
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("slow log line: %v (%q)", err, buf.String())
	}
	if e.Name != "slow.op" || e.Sampled || e.DurationMS <= 0 || e.TraceID == "" {
		t.Fatalf("slow entry = %+v", e)
	}
	if e.Time != "2026-08-08T01:02:03Z" {
		t.Fatalf("slow entry time = %q", e.Time)
	}
	if len(e.Annotations) != 1 || e.Annotations[0].Key != "spec" {
		t.Fatalf("slow entry annotations = %+v", e.Annotations)
	}
}

func TestFastUnsampledRootNotRecorded(t *testing.T) {
	tr := newTestTracer(t, Options{SampleRate: 0, SlowThreshold: time.Hour})
	root := tr.StartRoot("fast.op")
	if root == nil {
		t.Fatal("nil root despite slow threshold")
	}
	root.End()
	if tr.Len() != 0 {
		t.Fatalf("fast unsampled root recorded: Len = %d", tr.Len())
	}
}

func TestContextPropagation(t *testing.T) {
	tr := newTestTracer(t, Options{SampleRate: 1})
	root := tr.StartRoot("root")
	ctx := NewContext(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("FromContext lost span")
	}
	ctx2, child := tr.StartSpanCtx(ctx, "child")
	if child == nil || FromContext(ctx2) != child {
		t.Fatal("StartSpanCtx did not thread child")
	}
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child left the trace")
	}
	// Untraced context passes through unchanged.
	base := context.Background()
	ctx3, s := tr.StartSpanCtx(base, "orphan")
	if s != nil || ctx3 != base {
		t.Fatal("untraced StartSpanCtx allocated")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) non-nil")
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	tr := newTestTracer(t, Options{SampleRate: 1})
	client := tr.StartRoot("client.call")
	hdr := client.Context().Format()

	sc, err := ParseHeader(hdr)
	if err != nil {
		t.Fatalf("ParseHeader(%q): %v", hdr, err)
	}
	srv := tr.StartRemote(sc, "server.handle")
	if srv == nil {
		t.Fatal("StartRemote nil for sampled context")
	}
	if srv.Context().Trace != client.Context().Trace {
		t.Fatal("remote span left the trace")
	}
	if srv.Context().Span == client.Context().Span {
		t.Fatal("remote span reused client span ID")
	}
	srv.End()
	client.End()

	d, _ := tr.Dump(client.Context().Trace)
	if len(d.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(d.Spans))
	}
	var server spanJSON
	for _, s := range d.Spans {
		if s.Name == "server.handle" {
			server = s
		}
	}
	if server.ParentID != client.Context().Span.String() {
		t.Fatalf("server parent = %q, want client span %q", server.ParentID, client.Context().Span)
	}

	// Unsampled remote context with no slow threshold: free.
	sc.Sampled = false
	if s := tr.StartRemote(sc, "x"); s != nil {
		t.Fatalf("unsampled remote span = %v, want nil", s)
	}
	// Invalid context falls back to a fresh root.
	fresh := tr.StartRemote(SpanContext{}, "fresh")
	if fresh == nil || fresh.Context().Trace == client.Context().Trace {
		t.Fatal("invalid remote context did not start a fresh trace")
	}
}

func TestBufferEviction(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Options{SampleRate: 1, MaxTraces: 2, MaxSpansPerTrace: 2, Metrics: reg, Seed: 7})
	var ids []TraceID
	for i := 0; i < 3; i++ {
		s := tr.StartRoot("r")
		ids = append(ids, s.Context().Trace)
		// Overflow the per-trace span cap: 1 root + 2 children > 2.
		c1 := tr.StartChild(s, "c1")
		c2 := tr.StartChild(s, "c2")
		c1.End()
		c2.End()
		s.End()
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if _, ok := tr.Dump(ids[0]); ok {
		t.Fatal("oldest trace not evicted")
	}
	d, ok := tr.Dump(ids[2])
	if !ok {
		t.Fatal("newest trace missing")
	}
	if len(d.Spans) != 2 || d.Dropped != 1 {
		t.Fatalf("spans = %d dropped = %d, want 2/1", len(d.Spans), d.Dropped)
	}
	if v := reg.CounterValue("trace_traces_evicted_total"); v != 1 {
		t.Fatalf("evicted counter = %d", v)
	}
	if v := reg.CounterValue("trace_spans_dropped_total"); v != 3 {
		t.Fatalf("dropped counter = %d", v)
	}
}

func TestSampleRateRoughlyHolds(t *testing.T) {
	tr := newTestTracer(t, Options{SampleRate: 0.25, MaxTraces: 4096})
	sampled := 0
	const n = 4000
	for i := 0; i < n; i++ {
		s := tr.StartRoot("r")
		if s.Sampled() {
			sampled++
		}
		s.End()
	}
	frac := float64(sampled) / n
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("sample fraction = %.3f, want ≈0.25", frac)
	}
}

func TestDefaultTracerSwap(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	tr := newTestTracer(t, Options{SampleRate: 1})
	SetDefault(tr)
	if Default() != tr {
		t.Fatal("SetDefault did not install")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not disable")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	tr := newTestTracer(t, Options{SampleRate: 1})
	root := tr.StartRoot("audit")
	child := tr.StartChild(root, "shard")
	child.Annotate("shard", "s1")
	child.End()
	root.End()

	h := tr.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var listing struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing: %v", err)
	}
	if len(listing.Traces) != 1 || listing.Traces[0].Root != "audit" {
		t.Fatalf("listing = %+v", listing)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+listing.Traces[0].TraceID, nil))
	var d TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if len(d.Spans) != 2 {
		t.Fatalf("dump spans = %d", len(d.Spans))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace=zzzz", nil))
	if rec.Code != 400 {
		t.Fatalf("malformed id code = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+strings.Repeat("ab", 16), nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id code = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil || len(listing.Traces) != 1 {
		t.Fatalf("limit listing: err=%v n=%d", err, len(listing.Traces))
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := newTestTracer(t, Options{SampleRate: 1, MaxTraces: 512})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				root := tr.StartRoot("r")
				c := tr.StartChild(root, "c")
				c.AnnotateInt("i", int64(i))
				c.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 512 {
		t.Fatalf("Len = %d, want full buffer 512", tr.Len())
	}
}

func TestItoa(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want string
	}{{0, "0"}, {7, "7"}, {-1, "-1"}, {9223372036854775807, "9223372036854775807"}, {-9223372036854775808, "-9223372036854775808"}} {
		if got := itoa(tc.v); got != tc.want {
			t.Fatalf("itoa(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
