// Package trace is the reproduction's distributed tracing core: a
// dependency-free span model propagated via context.Context inside a
// process and via the X-Adaudit-Trace header between processes, so a single
// audited measurement is attributable end to end — adauditctl client →
// adapi server → core provider chain → platform kernels → cluster
// coordinator → per-shard doors.
//
// The paper's methodology lives and dies on the trustworthiness of each
// reported audience size (§5: the authors "limited both the count and rate
// of API queries", which presumes knowing where every query went). Once
// PR 7 split measurement across a scatter-gather cluster, a fig1 number
// became the product of ring assignment, per-shard kernels, failover
// rounds, and one coordinator rounding — none of it attributable from
// aggregate counters alone. Traces restore that attribution: every sampled
// query carries a 128-bit trace ID through each layer, each layer records a
// span (name, duration, annotations such as shard ID or failover round),
// and the finished trace is retrievable from a bounded in-memory buffer
// via /debug/traces or the adauditctl -trace pretty-printer.
//
// Cost discipline: all instrumentation is nil-safe and gated per batch or
// per request, never per user. A nil *Tracer (tracing compiled in but
// disabled — the default) makes every Start* call return a nil *Span whose
// methods are no-ops, so the 2M q/s compiled batch hot loop pays one
// pointer check per batch. Unsampled traces allocate at most one root span
// (to support always-on-slow detection) and no children.
package trace

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options assembles a Tracer.
type Options struct {
	// SampleRate is the probability a new root span starts a recorded
	// trace, in [0, 1]. 0 records nothing (except slow roots, below);
	// 1 records everything.
	SampleRate float64
	// SlowThreshold, when positive, force-records any root span slower
	// than it — even on unsampled traces — and emits a structured
	// slow-query log line. Child spans of an unsampled trace are not
	// created, so a slow unsampled trace surfaces its root only.
	SlowThreshold time.Duration
	// SlowLog receives one JSON line per slow root span; nil disables the
	// slow-query log (slow roots are still force-recorded).
	SlowLog *SlowLog
	// MaxTraces bounds the in-memory trace buffer; the oldest trace is
	// evicted when a new one would exceed it. 0 selects DefaultMaxTraces.
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's recorded spans; extra spans are
	// counted but dropped. 0 selects DefaultMaxSpans.
	MaxSpansPerTrace int
	// Provenance, when set, receives one record per upstream measurement
	// (see Provenance); nil disables provenance collection.
	Provenance *ProvenanceLog
	// Metrics receives the tracer's own counters (traces sampled, spans
	// recorded, traces evicted, slow queries); nil selects obs.Default().
	Metrics *obs.Registry
	// Seed fixes the trace/span ID sequence for deterministic tests;
	// 0 seeds from the wall clock.
	Seed uint64
}

// Tracer samples, collects, and serves traces. All methods are safe for
// concurrent use and safe on a nil receiver (every Start* returns nil).
type Tracer struct {
	sampleRate float64
	slow       time.Duration
	slowLog    *SlowLog
	buf        *buffer
	prov       *ProvenanceLog
	rng        atomic.Uint64

	mSampled *obs.Counter // trace_traces_sampled_total
	mDropped *obs.Counter // trace_traces_unsampled_total
	mSpans   *obs.Counter // trace_spans_recorded_total
	mSlow    *obs.Counter // trace_slow_queries_total
}

// Buffer-size defaults.
const (
	DefaultMaxTraces = 128
	DefaultMaxSpans  = 512
)

// New builds a Tracer.
func New(opts Options) *Tracer {
	if opts.MaxTraces <= 0 {
		opts.MaxTraces = DefaultMaxTraces
	}
	if opts.MaxSpansPerTrace <= 0 {
		opts.MaxSpansPerTrace = DefaultMaxSpans
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	t := &Tracer{
		sampleRate: opts.SampleRate,
		slow:       opts.SlowThreshold,
		slowLog:    opts.SlowLog,
		prov:       opts.Provenance,
		buf:        newBuffer(opts.MaxTraces, opts.MaxSpansPerTrace, reg),
		mSampled:   reg.Counter("trace_traces_sampled_total"),
		mDropped:   reg.Counter("trace_traces_unsampled_total"),
		mSpans:     reg.Counter("trace_spans_recorded_total"),
		mSlow:      reg.Counter("trace_slow_queries_total"),
	}
	seed := opts.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	t.rng.Store(seed)
	return t
}

// defaultTracer is the process-wide tracer components fall back to when not
// handed an explicit one. It starts nil: tracing is compiled in everywhere
// but disabled until a binary opts in (platformd -trace, adauditctl -trace).
var defaultTracer atomic.Pointer[Tracer]

// Default returns the process-wide tracer; nil means tracing is disabled.
func Default() *Tracer { return defaultTracer.Load() }

// SetDefault installs (or, with nil, disables) the process-wide tracer.
func SetDefault(t *Tracer) { defaultTracer.Store(t) }

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil }

// Provenance returns the tracer's provenance log (nil when disabled or not
// configured). Measurement layers check it once per batch before paying
// any provenance-collection cost.
func (t *Tracer) Provenance() *ProvenanceLog {
	if t == nil {
		return nil
	}
	return t.prov
}

// nextID steps the tracer's splitmix64 stream. Lock-free: racing callers
// may observe the same pre-state, but the returned values still differ per
// goroutine-visible CAS winner, and IDs only need to be unique in practice,
// not cryptographic.
func (t *Tracer) nextID() uint64 {
	for {
		old := t.rng.Load()
		z := old + 0x9e3779b97f4a7c15
		if t.rng.CompareAndSwap(old, z) {
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
	}
}

// sample decides whether a new root starts a recorded trace.
func (t *Tracer) sample() bool {
	if t.sampleRate >= 1 {
		return true
	}
	if t.sampleRate <= 0 {
		return false
	}
	// 53-bit uniform in [0, 1): ample resolution for a sampling knob.
	return float64(t.nextID()>>11)/(1<<53) < t.sampleRate
}

// StartRoot begins a new trace with the sampling decision applied. On an
// unsampled trace the returned span exists only to time the root for
// always-on-slow detection (nil when that is disabled too, costing
// nothing).
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	sampled := t.sample()
	if sampled {
		t.mSampled.Inc()
	} else {
		t.mDropped.Inc()
		if t.slow <= 0 {
			return nil
		}
	}
	return &Span{
		tracer: t,
		name:   name,
		sc: SpanContext{
			Trace:   TraceIDFrom(t.nextID(), t.nextID()),
			Span:    SpanIDFrom(t.nextID()),
			Sampled: sampled,
		},
		root:  true,
		start: time.Now(),
	}
}

// StartRemote continues a trace whose context arrived over the wire (the
// X-Adaudit-Trace header): the new span joins the remote trace ID with the
// remote span as parent. An invalid context falls back to StartRoot; an
// unsampled one is honored (the client decided once for the whole tree),
// with slow detection still applying to this process's root.
func (t *Tracer) StartRemote(sc SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.StartRoot(name)
	}
	if !sc.Sampled && t.slow <= 0 {
		return nil
	}
	return &Span{
		tracer: t,
		name:   name,
		sc: SpanContext{
			Trace:   sc.Trace,
			Span:    SpanIDFrom(t.nextID()),
			Sampled: sc.Sampled,
		},
		parent: sc.Span,
		root:   true, // this process's local root: slow detection applies
		start:  time.Now(),
	}
}

// StartChild begins a span under parent. Children of nil or unsampled
// parents are nil — an unsampled trace costs one root span at most.
func (t *Tracer) StartChild(parent *Span, name string) *Span {
	if t == nil || parent == nil || !parent.sc.Sampled {
		return nil
	}
	return &Span{
		tracer: t,
		name:   name,
		sc: SpanContext{
			Trace:   parent.sc.Trace,
			Span:    SpanIDFrom(t.nextID()),
			Sampled: true,
		},
		parent: parent.sc.Span,
		start:  time.Now(),
	}
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying span. A nil span returns ctx unchanged,
// so untraced paths never allocate a derived context.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx (nil when untraced).
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpanCtx begins a child of the span carried by ctx and returns a
// context carrying the child. Untraced contexts pass through unchanged
// with a nil span.
func (t *Tracer) StartSpanCtx(ctx context.Context, name string) (context.Context, *Span) {
	s := t.StartChild(FromContext(ctx), name)
	return NewContext(ctx, s), s
}

// StartSpan begins a child of the span carried by ctx, using that span's
// own tracer, and returns a context carrying the child. This is the
// primitive instrumented layers call: no tracer handle needed — the tracer
// rides the root span — and an untraced context returns (ctx, nil) after
// one map-free Value lookup, which is the entire disabled-path cost.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tracer.StartChild(parent, name)
	return NewContext(ctx, s), s
}

// ChildOf begins a child of parent via parent's own tracer (nil-safe), for
// call sites that hold the span rather than a context.
func ChildOf(parent *Span, name string) *Span {
	if parent == nil {
		return nil
	}
	return parent.tracer.StartChild(parent, name)
}

// Annotation is one key=value fact attached to a span (shard ID, failover
// round, plan-cache outcome, ...). Order is preserved; keys may repeat.
type Annotation struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed operation within a trace. All methods are no-ops on a
// nil receiver, so call sites never branch on tracing being enabled. A Span
// is owned by the goroutine that started it until End; Annotate/SetError
// must not race End.
type Span struct {
	tracer *Tracer
	name   string
	sc     SpanContext
	parent SpanID
	root   bool
	start  time.Time

	annotations []Annotation
	errMsg      string
	ended       atomic.Bool
}

// Context returns the span's wire context (zero value on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace ID as the header renders it ("" on nil),
// for linking metrics exemplars and provenance records to traces.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.Trace.String()
}

// Sampled reports whether the span belongs to a recorded trace. Call sites
// gate expensive annotation building on it.
func (s *Span) Sampled() bool { return s != nil && s.sc.Sampled }

// ProvenanceLog returns the provenance log of the span's tracer, nil when
// the span is nil, unsampled, or its tracer collects no provenance.
// Measurement layers use one call to gate all provenance-building cost;
// tying emission to sampled spans keeps provenance and traces consistent
// (every provenance record's trace is retrievable).
func (s *Span) ProvenanceLog() *ProvenanceLog {
	if s == nil || !s.sc.Sampled {
		return nil
	}
	return s.tracer.prov
}

// Annotate attaches one key=value fact.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.annotations = append(s.annotations, Annotation{Key: key, Value: value})
}

// AnnotateInt attaches one integer-valued fact.
func (s *Span) AnnotateInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Annotate(key, itoa(v))
}

// SetError marks the span failed with the error's message.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// End finishes the span: sampled spans are recorded into the trace buffer;
// slow roots (sampled or not) are force-recorded and logged. End is
// idempotent; later calls are no-ops.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	d := time.Since(s.start)
	t := s.tracer
	slow := s.root && t.slow > 0 && d >= t.slow
	if !s.sc.Sampled && !slow {
		return
	}
	t.mSpans.Inc()
	t.buf.record(spanRecord{
		Trace:       s.sc.Trace,
		Span:        s.sc.Span,
		Parent:      s.parent,
		Name:        s.name,
		Start:       s.start,
		Duration:    d,
		Annotations: s.annotations,
		Err:         s.errMsg,
	})
	if slow {
		t.mSlow.Inc()
		if t.slowLog != nil {
			t.slowLog.log(s, d)
		}
	}
}

// itoa renders an int64 without strconv (kept local: annotations are built
// on traced paths only, but the call sites stay allocation-obvious).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [20]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
