package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRenderTree(t *testing.T) {
	tr := New(Options{SampleRate: 1, Metrics: obs.NewRegistry(), Seed: 11})
	root := tr.StartRoot("audit.measure")
	root.Annotate("platform", "platform-a")
	coord := tr.StartChild(root, "cluster.measure_many")
	coord.AnnotateInt("specs", 64)
	s0 := tr.StartChild(coord, "cluster.shard")
	s0.Annotate("shard", "s0")
	s0.AnnotateInt("round", 0)
	s0.End()
	s1 := tr.StartChild(coord, "cluster.shard")
	s1.Annotate("shard", "s1")
	s1.SetError(errTest("conn refused"))
	s1.End()
	coord.End()
	root.End()

	d, ok := tr.Dump(root.Context().Trace)
	if !ok {
		t.Fatal("dump miss")
	}
	var sb strings.Builder
	Render(&sb, d)
	out := sb.String()

	for _, want := range []string{
		"trace " + root.TraceID(),
		"(4 spans,",
		"└─ audit.measure",
		"platform=platform-a",
		"cluster.measure_many",
		"specs=64",
		"shard=s0",
		"round=0",
		"shard=s1",
		`ERROR="conn refused"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Children are indented under the coordinator span.
	lines := strings.Split(out, "\n")
	var shardLine string
	for _, l := range lines {
		if strings.Contains(l, "shard=s0") {
			shardLine = l
		}
	}
	if !strings.HasPrefix(shardLine, "      ") {
		t.Fatalf("shard span not nested: %q", shardLine)
	}
}

func TestRenderOrphansAndEmpty(t *testing.T) {
	var sb strings.Builder
	Render(&sb, TraceDump{TraceID: "abc"})
	if !strings.Contains(sb.String(), "no spans") {
		t.Fatalf("empty render = %q", sb.String())
	}
	// Orphan (evicted parent) renders as a second root, dropped noted.
	d := TraceDump{
		TraceID: "abc",
		Dropped: 3,
		Spans: []spanJSON{
			{SpanID: "aa", Name: "root", Start: "2026-01-01T00:00:00Z", DurationUS: 1500},
			{SpanID: "bb", ParentID: "gone", Name: "orphan", Start: "2026-01-01T00:00:01Z", DurationUS: 2},
		},
	}
	sb.Reset()
	Render(&sb, d)
	out := sb.String()
	if !strings.Contains(out, "├─ root") || !strings.Contains(out, "└─ orphan") {
		t.Fatalf("orphan not promoted to root:\n%s", out)
	}
	if !strings.Contains(out, "[3 spans dropped]") {
		t.Fatalf("dropped note missing:\n%s", out)
	}
	if !strings.Contains(out, "1.50ms") {
		t.Fatalf("duration formatting missing:\n%s", out)
	}
}

func TestFmtDur(t *testing.T) {
	for _, tc := range []struct {
		us   float64
		want string
	}{
		{0.5, "500ns"},
		{12, "12µs"},
		{1500, "1.50ms"},
		{2.5e6, "2.50s"},
	} {
		if got := fmtDur(tc.us); got != tc.want {
			t.Fatalf("fmtDur(%v) = %q, want %q", tc.us, got, tc.want)
		}
	}
	_ = time.Microsecond // keep the import honest if cases change
}

type errTest string

func (e errTest) Error() string { return string(e) }
