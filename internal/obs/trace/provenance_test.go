package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPlanHashStableAndSeparated(t *testing.T) {
	a := PlanHash("platform-a", "k1")
	if a != PlanHash("platform-a", "k1") {
		t.Fatal("PlanHash not deterministic")
	}
	if len(a) != 16 {
		t.Fatalf("PlanHash width = %d, want 16 hex digits", len(a))
	}
	if a == PlanHash("platform-a", "k2") {
		t.Fatal("distinct keys collided")
	}
	// The NUL separator must keep ("ab","c") distinct from ("a","bc").
	if PlanHash("ab", "c") == PlanHash("a", "bc") {
		t.Fatal("part boundaries not separated")
	}
}

func TestProvenanceLogRingAndPersist(t *testing.T) {
	var sink bytes.Buffer
	l := NewProvenanceLog(2, &sink)
	for i, src := range []string{"cache", "platform", "cluster"} {
		l.Add(Provenance{Platform: "p", Key: "k", Source: src, Value: int64(i)})
	}
	recs := l.Records()
	if len(recs) != 2 || recs[0].Source != "platform" || recs[1].Source != "cluster" {
		t.Fatalf("ring records = %+v", recs)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Persistence saw all three, one JSON line each.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("persisted lines = %d: %q", len(lines), sink.String())
	}
	var p Provenance
	if err := json.Unmarshal([]byte(lines[0]), &p); err != nil || p.Source != "cache" {
		t.Fatalf("line 0: err=%v p=%+v", err, p)
	}

	// Nil log is a no-op.
	var nilLog *ProvenanceLog
	nilLog.Add(Provenance{})
	if nilLog.Records() != nil || nilLog.Len() != 0 {
		t.Fatal("nil log not empty")
	}
}

func TestProvenanceHandlerFilters(t *testing.T) {
	l := NewProvenanceLog(8, nil)
	l.Add(Provenance{Platform: "a", Key: "k1", Source: "cluster", Shards: []string{"s0", "s1"}, FailoverRounds: 1, TraceID: "t1", Value: 100})
	l.Add(Provenance{Platform: "a", Key: "k2", Source: "cache", TraceID: "t2", Value: 200})

	get := func(url string) []Provenance {
		rec := httptest.NewRecorder()
		l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var out struct {
			Records []Provenance `json:"records"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
		return out.Records
	}
	if got := get("/debug/provenance"); len(got) != 2 {
		t.Fatalf("all records = %d", len(got))
	}
	byKey := get("/debug/provenance?key=k1")
	if len(byKey) != 1 || byKey[0].FailoverRounds != 1 || len(byKey[0].Shards) != 2 {
		t.Fatalf("key filter = %+v", byKey)
	}
	if got := get("/debug/provenance?trace=t2"); len(got) != 1 || got[0].Key != "k2" {
		t.Fatalf("trace filter = %+v", got)
	}
	if got := get("/debug/provenance?key=missing"); len(got) != 0 {
		t.Fatalf("missing key filter = %+v", got)
	}

	// Nil log serves an empty listing.
	var nilLog *ProvenanceLog
	rec := httptest.NewRecorder()
	nilLog.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/provenance", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"records"`) {
		t.Fatalf("nil handler: code=%d body=%q", rec.Code, rec.Body.String())
	}
}
