package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowLog writes one structured JSON line per slow root span, so "why was
// this query slow" is answerable from a grep even when the trace itself
// has been evicted: the line carries the trace ID, root name, duration,
// and the root's annotations.
type SlowLog struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test seam
}

// NewSlowLog writes slow-query lines to w (typically a file or stderr).
func NewSlowLog(w io.Writer) *SlowLog {
	return &SlowLog{w: w, now: time.Now}
}

// slowEntry is the JSONL schema. Duration is milliseconds: slow queries
// are by definition human-scale.
type slowEntry struct {
	Time        string       `json:"time"`
	TraceID     string       `json:"trace_id"`
	SpanID      string       `json:"span_id"`
	Name        string       `json:"name"`
	DurationMS  float64      `json:"duration_ms"`
	Sampled     bool         `json:"sampled"`
	Annotations []Annotation `json:"annotations,omitempty"`
	Err         string       `json:"error,omitempty"`
}

func (l *SlowLog) log(s *Span, d time.Duration) {
	e := slowEntry{
		TraceID:     s.sc.Trace.String(),
		SpanID:      s.sc.Span.String(),
		Name:        s.name,
		DurationMS:  float64(d) / float64(time.Millisecond),
		Sampled:     s.sc.Sampled,
		Annotations: s.annotations,
		Err:         s.errMsg,
	}
	l.mu.Lock()
	e.Time = l.now().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(e)
	if err == nil {
		b = append(b, '\n')
		l.w.Write(b)
	}
	l.mu.Unlock()
}
