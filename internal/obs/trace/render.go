package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Render pretty-prints one trace as an indented tree with per-span
// durations and annotations — the adauditctl -trace view:
//
//	trace 4a51...  (12 spans, 1.84ms)
//	└─ audit.measure                      1.84ms  platform=platform-a
//	   └─ cluster.measure_many            1.71ms  specs=64 shards=3
//	      ├─ cluster.shard                612µs   shard=s0 round=0 outcome=ok
//	      ...
//
// Orphaned spans (parent evicted or dropped) render as extra roots.
func Render(w io.Writer, d TraceDump) {
	if len(d.Spans) == 0 {
		fmt.Fprintf(w, "trace %s  (no spans)\n", d.TraceID)
		return
	}
	byID := make(map[string]int, len(d.Spans))
	children := make(map[string][]int, len(d.Spans))
	for i := range d.Spans {
		byID[d.Spans[i].SpanID] = i
	}
	var roots []int
	for i := range d.Spans {
		p := d.Spans[i].ParentID
		if p == "" {
			roots = append(roots, i)
			continue
		}
		if _, ok := byID[p]; !ok {
			roots = append(roots, i)
			continue
		}
		children[p] = append(children[p], i)
	}
	// Spans arrive start-sorted from Dump; keep sibling order stable by
	// start for hand-built dumps too.
	byStart := func(ix []int) {
		sort.SliceStable(ix, func(a, b int) bool { return d.Spans[ix[a]].Start < d.Spans[ix[b]].Start })
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	total := 0.0
	for _, r := range roots {
		if d.Spans[r].DurationUS > total {
			total = d.Spans[r].DurationUS
		}
	}
	fmt.Fprintf(w, "trace %s  (%d spans, %s)", d.TraceID, len(d.Spans), fmtDur(total))
	if d.Dropped > 0 {
		fmt.Fprintf(w, "  [%d spans dropped]", d.Dropped)
	}
	fmt.Fprintln(w)

	var walk func(i int, prefix string, last bool)
	walk = func(i int, prefix string, last bool) {
		s := &d.Spans[i]
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		line := prefix + branch + s.Name
		pad := 46 - len(line)
		if pad < 1 {
			pad = 1
		}
		fmt.Fprintf(w, "%s%s%8s", line, strings.Repeat(" ", pad), fmtDur(s.DurationUS))
		for _, a := range s.Annotations {
			fmt.Fprintf(w, "  %s=%s", a.Key, a.Value)
		}
		if s.Err != "" {
			fmt.Fprintf(w, "  ERROR=%q", s.Err)
		}
		fmt.Fprintln(w)
		kids := children[s.SpanID]
		for j, c := range kids {
			walk(c, childPrefix, j == len(kids)-1)
		}
	}
	for j, r := range roots {
		walk(r, "", j == len(roots)-1)
	}
}

// fmtDur renders microseconds with a human unit (ns/µs/ms/s).
func fmtDur(us float64) string {
	d := time.Duration(us * float64(time.Microsecond))
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", us)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", us/1e3)
	}
	return fmt.Sprintf("%.2fs", us/1e6)
}
