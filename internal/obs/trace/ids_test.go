package trace

import (
	"strings"
	"testing"
)

func TestIDStringParseRoundTrip(t *testing.T) {
	tid := TraceIDFrom(0x0123456789abcdef, 0xfedcba9876543210)
	if got, want := tid.String(), "0123456789abcdeffedcba9876543210"; got != want {
		t.Fatalf("TraceID.String = %q, want %q", got, want)
	}
	back, ok := ParseTraceID(tid.String())
	if !ok || back != tid {
		t.Fatalf("ParseTraceID round trip: ok=%v back=%v", ok, back)
	}
	sid := SpanIDFrom(0x00ff00ff00ff00ff)
	if got, want := sid.String(), "00ff00ff00ff00ff"; got != want {
		t.Fatalf("SpanID.String = %q, want %q", got, want)
	}
	sback, ok := ParseSpanID(sid.String())
	if !ok || sback != sid {
		t.Fatalf("ParseSpanID round trip: ok=%v back=%v", ok, sback)
	}
	// Uppercase accepted on parse, rendered lowercase.
	up, ok := ParseSpanID("00FF00FF00FF00FF")
	if !ok || up != sid {
		t.Fatal("uppercase hex rejected")
	}
	for _, bad := range []string{"", "0123", strings.Repeat("0", 31), strings.Repeat("g", 32), strings.Repeat("0", 33)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Fatalf("ParseTraceID(%q) accepted", bad)
		}
	}
	if !(TraceID{}).IsZero() || !(SpanID{}).IsZero() {
		t.Fatal("zero IDs not IsZero")
	}
	if tid.IsZero() || sid.IsZero() {
		t.Fatal("non-zero IDs IsZero")
	}
}

func TestHeaderFormatParseRoundTrip(t *testing.T) {
	sc := SpanContext{
		Trace:   TraceIDFrom(0xa1a2a3a4a5a6a7a8, 0xb1b2b3b4b5b6b7b8),
		Span:    SpanIDFrom(0xc1c2c3c4c5c6c7c8),
		Sampled: true,
	}
	h := sc.Format()
	want := "00-a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8-c1c2c3c4c5c6c7c8-01"
	if h != want {
		t.Fatalf("Format = %q, want %q", h, want)
	}
	back, err := ParseHeader(h)
	if err != nil || back != sc {
		t.Fatalf("ParseHeader round trip: err=%v back=%+v", err, back)
	}

	sc.Sampled = false
	h2 := sc.Format()
	if !strings.HasSuffix(h2, "-00") {
		t.Fatalf("unsampled flags = %q", h2)
	}
	back2, err := ParseHeader(h2)
	if err != nil || back2.Sampled {
		t.Fatalf("unsampled round trip: err=%v sampled=%v", err, back2.Sampled)
	}

	// Reserved flag bits ignored, sampled bit still honored.
	h3 := h[:53] + "ff"
	back3, err := ParseHeader(h3)
	if err != nil || !back3.Sampled {
		t.Fatalf("flags ff: err=%v sampled=%v", err, back3.Sampled)
	}

	// Invalid context renders empty.
	if got := (SpanContext{}).Format(); got != "" {
		t.Fatalf("zero context Format = %q", got)
	}
}

func TestParseHeaderRejectsMalformed(t *testing.T) {
	valid := SpanContext{
		Trace:   TraceIDFrom(1, 2),
		Span:    SpanIDFrom(3),
		Sampled: true,
	}.Format()
	cases := []string{
		"",
		"00",
		valid[:54],                   // truncated
		valid + "0",                  // trailing data
		"01" + valid[2:],             // unknown version
		"0x" + valid[2:],             // non-hex version
		valid[:3] + "zz" + valid[5:], // non-hex trace id
		strings.Replace(valid, "-", "_", 1),
		// zero trace id
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("1", 16) + "-01",
		// zero span id
		"00-" + strings.Repeat("1", 32) + "-" + strings.Repeat("0", 16) + "-01",
		// non-hex flags
		valid[:53] + "zz",
	}
	for _, c := range cases {
		if _, err := ParseHeader(c); err == nil {
			t.Fatalf("ParseHeader(%q) accepted", c)
		}
	}
	if _, err := ParseHeader(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
}

// FuzzTraceHeader drives the satellite requirement: Parse∘Format must be
// the identity on valid contexts, and Parse must never panic or accept a
// context it would re-render differently (malformed IDs, truncation,
// flipped sampling bits all come from the fuzzer's mutations of valid
// headers).
func FuzzTraceHeader(f *testing.F) {
	f.Add("00-a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8-c1c2c3c4c5c6c7c8-01")
	f.Add("00-a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8-c1c2c3c4c5c6c7c8-00")
	f.Add("00-A1A2A3A4A5A6A7A8B1B2B3B4B5B6B7B8-C1C2C3C4C5C6C7C8-FF")
	f.Add("00-00000000000000000000000000000000-0000000000000000-01")
	f.Add("01-a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8-c1c2c3c4c5c6c7c8-01")
	f.Add("00-a1a2a3a4a5a6a7a8b1b2b3b4b5b6b7b8-c1c2c3c4c5c6c7c8")
	f.Add("")
	f.Add("00---")
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseHeader(s)
		if err != nil {
			if sc != (SpanContext{}) {
				t.Fatalf("error with non-zero context: %+v", sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted invalid context from %q", s)
		}
		h := sc.Format()
		back, err := ParseHeader(h)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", h, s, err)
		}
		if back != sc {
			t.Fatalf("round trip drift: %+v → %q → %+v", sc, h, back)
		}
		// Format is canonical: lowercase, exact width, version 00.
		if len(h) != 55 || h != strings.ToLower(h) {
			t.Fatalf("non-canonical format %q", h)
		}
	})
}
