package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// spanRecord is one finished span as stored in the buffer. Exported-field
// JSON doubles as the /debug/traces wire format.
type spanRecord struct {
	Trace       TraceID       `json:"-"`
	Span        SpanID        `json:"span_id"`
	Parent      SpanID        `json:"parent_id,omitempty"`
	Name        string        `json:"name"`
	Start       time.Time     `json:"start"`
	Duration    time.Duration `json:"-"`
	Annotations []Annotation  `json:"annotations,omitempty"`
	Err         string        `json:"error,omitempty"`
}

// spanJSON is spanRecord's exposition shape: IDs as hex strings, duration
// in microseconds (traces span nanosecond kernels and second-scale audits;
// µs keeps both readable).
type spanJSON struct {
	SpanID      string       `json:"span_id"`
	ParentID    string       `json:"parent_id,omitempty"`
	Name        string       `json:"name"`
	Start       string       `json:"start"`
	DurationUS  float64      `json:"duration_us"`
	Annotations []Annotation `json:"annotations,omitempty"`
	Err         string       `json:"error,omitempty"`
}

// traceEntry collects one trace's spans in arrival order.
type traceEntry struct {
	id      TraceID
	first   time.Time
	spans   []spanRecord
	dropped int
}

// buffer is the bounded in-memory trace store: a map for lookup plus a
// FIFO ring of trace IDs for eviction. Spans arrive individually (a trace
// has no explicit "end"); /debug/traces serves whatever has landed.
type buffer struct {
	mu       sync.Mutex
	traces   map[TraceID]*traceEntry
	order    []TraceID // FIFO of live trace IDs, oldest first
	maxT     int
	maxSpans int

	mEvicted *obs.Counter // trace_traces_evicted_total
	mCut     *obs.Counter // trace_spans_dropped_total
}

func newBuffer(maxTraces, maxSpans int, reg *obs.Registry) *buffer {
	return &buffer{
		traces:   make(map[TraceID]*traceEntry, maxTraces),
		maxT:     maxTraces,
		maxSpans: maxSpans,
		mEvicted: reg.Counter("trace_traces_evicted_total"),
		mCut:     reg.Counter("trace_spans_dropped_total"),
	}
}

func (b *buffer) record(r spanRecord) {
	b.mu.Lock()
	e := b.traces[r.Trace]
	if e == nil {
		if len(b.order) >= b.maxT {
			oldest := b.order[0]
			b.order = b.order[1:]
			delete(b.traces, oldest)
			b.mEvicted.Inc()
		}
		e = &traceEntry{id: r.Trace, first: r.Start}
		b.traces[r.Trace] = e
		b.order = append(b.order, r.Trace)
	}
	if r.Start.Before(e.first) {
		e.first = r.Start
	}
	if len(e.spans) >= b.maxSpans {
		e.dropped++
		b.mCut.Inc()
		b.mu.Unlock()
		return
	}
	e.spans = append(e.spans, r)
	b.mu.Unlock()
}

// TraceSummary is one trace's /debug/traces listing row.
type TraceSummary struct {
	TraceID    string  `json:"trace_id"`
	Root       string  `json:"root"`
	Start      string  `json:"start"`
	DurationUS float64 `json:"duration_us"`
	Spans      int     `json:"spans"`
	Dropped    int     `json:"dropped_spans,omitempty"`
	Err        string  `json:"error,omitempty"`
}

// TraceDump is one full trace as served by /debug/traces?trace=<id> and
// consumed by the adauditctl -trace renderer.
type TraceDump struct {
	TraceID string     `json:"trace_id"`
	Spans   []spanJSON `json:"spans"`
	Dropped int        `json:"dropped_spans,omitempty"`
}

// rootOf finds the trace's local root: the span whose parent is absent
// from the trace (covers both true roots and remote continuations).
func rootOf(spans []spanRecord) *spanRecord {
	present := make(map[SpanID]bool, len(spans))
	for i := range spans {
		present[spans[i].Span] = true
	}
	for i := range spans {
		if spans[i].Parent.IsZero() || !present[spans[i].Parent] {
			return &spans[i]
		}
	}
	return &spans[0]
}

func toJSON(r *spanRecord) spanJSON {
	j := spanJSON{
		SpanID:      r.Span.String(),
		Name:        r.Name,
		Start:       r.Start.UTC().Format(time.RFC3339Nano),
		DurationUS:  float64(r.Duration) / float64(time.Microsecond),
		Annotations: r.Annotations,
		Err:         r.Err,
	}
	if !r.Parent.IsZero() {
		j.ParentID = r.Parent.String()
	}
	return j
}

// Summaries lists buffered traces, most recent first, capped at limit
// (0 = all).
func (t *Tracer) Summaries(limit int) []TraceSummary {
	if t == nil {
		return nil
	}
	b := t.buf
	b.mu.Lock()
	out := make([]TraceSummary, 0, len(b.order))
	for i := len(b.order) - 1; i >= 0; i-- {
		if limit > 0 && len(out) >= limit {
			break
		}
		e := b.traces[b.order[i]]
		if e == nil || len(e.spans) == 0 {
			continue
		}
		root := rootOf(e.spans)
		out = append(out, TraceSummary{
			TraceID:    e.id.String(),
			Root:       root.Name,
			Start:      e.first.UTC().Format(time.RFC3339Nano),
			DurationUS: float64(root.Duration) / float64(time.Microsecond),
			Spans:      len(e.spans),
			Dropped:    e.dropped,
			Err:        root.Err,
		})
	}
	b.mu.Unlock()
	return out
}

// Dump returns one buffered trace's spans ordered by start time, or
// ok=false when the ID is unknown (or evicted).
func (t *Tracer) Dump(id TraceID) (TraceDump, bool) {
	if t == nil {
		return TraceDump{}, false
	}
	b := t.buf
	b.mu.Lock()
	e := b.traces[id]
	if e == nil {
		b.mu.Unlock()
		return TraceDump{}, false
	}
	spans := make([]spanRecord, len(e.spans))
	copy(spans, e.spans)
	dropped := e.dropped
	b.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	d := TraceDump{TraceID: id.String(), Dropped: dropped, Spans: make([]spanJSON, len(spans))}
	for i := range spans {
		d.Spans[i] = toJSON(&spans[i])
	}
	return d, true
}

// Len reports how many traces the buffer currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.buf.mu.Lock()
	n := len(t.buf.order)
	t.buf.mu.Unlock()
	return n
}

// Handler serves the trace buffer as JSON:
//
//	GET /debug/traces            → {"traces": [TraceSummary, ...]}
//	GET /debug/traces?limit=N    → newest N summaries
//	GET /debug/traces?trace=<id> → TraceDump for one trace (404 unknown)
//
// Works on a nil tracer (serves an empty listing) so servers can mount it
// unconditionally.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if q := r.URL.Query().Get("trace"); q != "" {
			id, ok := ParseTraceID(q)
			if !ok {
				http.Error(w, `{"error":"malformed trace id"}`, http.StatusBadRequest)
				return
			}
			d, ok := t.Dump(id)
			if !ok {
				http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
				return
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(d)
			return
		}
		limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
		s := t.Summaries(limit)
		if s == nil {
			s = []TraceSummary{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Traces []TraceSummary `json:"traces"`
		}{Traces: s})
	})
}
