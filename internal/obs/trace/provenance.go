package trace

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
)

// Provenance is the audit-trail record for one measured audience size:
// where the number came from. The paper's findings are only as credible as
// each reported size, so every measurement can carry: which platform
// served it, the canonical spec key it was cached/stored under, the hash
// of the compiled plan that counted it, which shards contributed raw
// counts, how many failover rounds the scatter-gather needed, and the
// trace ID tying it all to recorded spans.
type Provenance struct {
	// Platform is the serving platform interface name.
	Platform string `json:"platform"`
	// Key is the canonical targeting-spec key (the store/cache/plan key).
	Key string `json:"key"`
	// Source names the layer that produced the value: "cache", "store",
	// "inflight", "platform", "cluster", or "remote".
	Source string `json:"source"`
	// PlanHash fingerprints the compiled query plan (empty on uncompiled
	// or remote paths).
	PlanHash string `json:"plan_hash,omitempty"`
	// Shards lists the shard IDs whose raw counts were merged (cluster
	// runs only), in merge order.
	Shards []string `json:"shards,omitempty"`
	// FailoverRounds counts extra scatter-gather rounds needed after
	// shard failures (0 = clean first round).
	FailoverRounds int `json:"failover_rounds,omitempty"`
	// Partial marks a measurement that completed with unserved
	// partitions (the value was rejected, not under-counted).
	Partial bool `json:"partial,omitempty"`
	// Endpoint is the remote URL serving the value (client paths only).
	Endpoint string `json:"endpoint,omitempty"`
	// TraceID links to the recorded trace, when the measurement was
	// sampled.
	TraceID string `json:"trace_id,omitempty"`
	// Value is the measured (rounded) audience size.
	Value int64 `json:"value"`
}

// PlanHash fingerprints a compiled plan's identity material (the canonical
// key plus any plan-shape qualifiers) as 16 hex digits of FNV-1a. Not
// cryptographic — it answers "same plan?" across runs, matching the
// repo-wide canonical-hash idiom.
func PlanHash(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	var id SpanID
	putU64(id[:], h.Sum64())
	return id.String()
}

// DefaultMaxProvenance bounds the in-memory provenance ring.
const DefaultMaxProvenance = 4096

// ProvenanceLog collects Provenance records in a bounded ring and
// optionally persists each as a JSON line (adauditctl -store writes
// <dir>/provenance.jsonl). Nil-safe: Add on a nil log is a no-op.
type ProvenanceLog struct {
	mu      sync.Mutex
	ring    []Provenance
	next    int // ring write cursor
	full    bool
	w       io.Writer
	dropped int64
}

// NewProvenanceLog builds a log holding up to max records in memory
// (0 selects DefaultMaxProvenance) and mirroring each to w when non-nil.
func NewProvenanceLog(max int, w io.Writer) *ProvenanceLog {
	if max <= 0 {
		max = DefaultMaxProvenance
	}
	return &ProvenanceLog{ring: make([]Provenance, 0, max), w: w}
}

// Add records one provenance entry.
func (l *ProvenanceLog) Add(p Provenance) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, p)
	} else {
		l.ring[l.next] = p
		l.next = (l.next + 1) % cap(l.ring)
		l.full = true
		l.dropped++
	}
	if l.w != nil {
		if b, err := json.Marshal(p); err == nil {
			b = append(b, '\n')
			l.w.Write(b)
		}
	}
	l.mu.Unlock()
}

// Records returns the retained records, oldest first.
func (l *ProvenanceLog) Records() []Provenance {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		out := make([]Provenance, len(l.ring))
		copy(out, l.ring)
		return out
	}
	out := make([]Provenance, 0, cap(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Len reports how many records are retained in memory.
func (l *ProvenanceLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Handler serves the retained records as JSON at /debug/provenance:
//
//	GET /debug/provenance          → {"records": [...], "evicted": N}
//	GET /debug/provenance?key=<k>  → records whose canonical key is k
//	GET /debug/provenance?trace=<id> → records linked to one trace
//
// Nil-safe (serves an empty listing).
func (l *ProvenanceLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		recs := l.Records()
		key := r.URL.Query().Get("key")
		tid := r.URL.Query().Get("trace")
		out := recs[:0:0]
		for _, p := range recs {
			if key != "" && p.Key != key {
				continue
			}
			if tid != "" && p.TraceID != tid {
				continue
			}
			out = append(out, p)
		}
		if out == nil {
			out = []Provenance{}
		}
		var evicted int64
		if l != nil {
			l.mu.Lock()
			evicted = l.dropped
			l.mu.Unlock()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Records []Provenance `json:"records"`
			Evicted int64        `json:"evicted,omitempty"`
		}{Records: out, Evicted: evicted})
	})
}
