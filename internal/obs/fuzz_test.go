package obs

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzSanitizeLabelValue checks the properties the text exposition relies
// on: sanitized values are valid UTF-8, contain no quote, backslash, or
// control bytes (so `k="v"` can never be broken open), are bounded in
// length, and sanitizing is idempotent.
func FuzzSanitizeLabelValue(f *testing.F) {
	for _, s := range []string{
		"", "facebook-restricted", `say "hi"`, "back\\slash",
		"line\nbreak", "ctrl\x00byte", "bad\xff\xfeutf8", "unicode ∧ fine",
		strings.Repeat("x", 1000), "quantile=\"0.99\"} 1\nevil_total 1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := SanitizeLabelValue(s)
		if !utf8.ValidString(out) {
			t.Fatalf("invalid UTF-8 in %q", out)
		}
		if strings.ContainsAny(out, "\"\\\n\r\t") {
			t.Fatalf("unsafe byte survived: %q", out)
		}
		for _, r := range out {
			if r < 0x20 || r == 0x7f {
				t.Fatalf("control rune %q survived in %q", r, out)
			}
		}
		if utf8.RuneCountInString(out) > 256 {
			t.Fatalf("output too long: %d runes", utf8.RuneCountInString(out))
		}
		if again := SanitizeLabelValue(out); again != out {
			t.Fatalf("not idempotent: %q -> %q", out, again)
		}
	})
}

// FuzzSanitizeName checks name sanitization always yields a valid
// identifier and is idempotent.
func FuzzSanitizeName(f *testing.F) {
	for _, s := range []string{"", "ok_name", "9lead", "dots.mid", "bad\x00"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := SanitizeName(s)
		if out == "" {
			t.Fatal("empty name")
		}
		for i := 0; i < len(out); i++ {
			if !isNameByte(out[i], i == 0) {
				t.Fatalf("invalid byte %q at %d in %q", out[i], i, out)
			}
		}
		if again := SanitizeName(out); again != out {
			t.Fatalf("not idempotent: %q -> %q", out, again)
		}
	})
}
