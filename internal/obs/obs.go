// Package obs is the reproduction's observability core: dependency-free
// atomic counters, gauges, and log-bucketed latency histograms collected in
// labeled registries, with a stable text encoding served at /metrics.
//
// The paper's audit was query-disciplined — the authors "limited both the
// count and rate of API queries" (§5, Ethics) — so the reproduction's
// instrumentation is organized around the same questions an auditor must
// answer about their own crawler: how many estimate queries were issued
// (platform_queries_total ≈ the paper's API-call budget), how many were
// answered from cache rather than upstream (audit_cache_*), how often the
// platform throttled us (adapi_client_429_total, retry-after waits), and
// how long each phase of an experiment took (experiment_phase_seconds).
//
// All instruments are safe for concurrent use and cost one or two atomic
// adds on the hot path; registries hand out instruments once at
// construction time so steady-state instrumentation performs no map
// lookups or allocations.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 holding a point-in-time value (queue depth,
// phase duration, hit rate).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one key=value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates instrument types in snapshots.
type Kind int

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// series is one registered instrument with its identity.
type series struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a concurrent-safe collection of named, labeled instruments.
// Counter/Gauge/Histogram get-or-create the series, so instruments may be
// resolved once at construction time and shared freely afterwards.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// defaultRegistry is the process-wide registry used when components are not
// handed an explicit one (the cmd/ binaries all read it).
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// seriesKey renders the canonical identity of a series. Labels are sorted
// by key so the same label set in any order names the same series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// normalize sanitizes and sorts a label set, returning an owned slice.
func normalize(name string, labels []Label) (string, []Label) {
	name = SanitizeName(name)
	if len(labels) == 0 {
		return name, nil
	}
	out := make([]Label, len(labels))
	for i, l := range labels {
		out[i] = Label{Key: SanitizeName(l.Key), Value: SanitizeLabelValue(l.Value)}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return name, out
}

// get returns the series for (name, labels), creating it with mk on first
// use. Mismatched kinds on the same identity return the existing series
// (callers receive a nil instrument of the requested type; misuse is a
// programming error surfaced in tests, not a runtime panic on the serving
// path).
func (r *Registry) get(name string, labels []Label, kind Kind) *series {
	name, labels = normalize(name, labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		return s
	}
	s := &series{name: name, labels: labels, kind: kind}
	switch kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = NewHistogram()
	}
	r.series[key] = s
	return s
}

// Counter returns the counter named name with the given labels, creating it
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.get(name, labels, KindCounter)
	if s.c == nil {
		return &Counter{} // kind clash: hand back a detached instrument
	}
	return s.c
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.get(name, labels, KindGauge)
	if s.g == nil {
		return &Gauge{}
	}
	return s.g
}

// Histogram returns the latency histogram named name with the given labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	s := r.get(name, labels, KindHistogram)
	if s.h == nil {
		return NewHistogram()
	}
	return s.h
}

// SeriesSnapshot is one series' state at Gather time.
type SeriesSnapshot struct {
	// Name is the sanitized metric name.
	Name string
	// Labels are the sorted, sanitized series labels.
	Labels []Label
	// Kind discriminates which of Value and Hist is meaningful.
	Kind Kind
	// Value holds the counter count or gauge value.
	Value float64
	// Hist holds the histogram state for KindHistogram.
	Hist HistogramSnapshot
}

// Label returns the value of the labeled dimension ("" when absent).
func (s SeriesSnapshot) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Gather snapshots every series, sorted by name then label identity, so
// encodings and summaries are deterministic.
func (r *Registry) Gather() []SeriesSnapshot {
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return seriesKey(all[i].name, all[i].labels) < seriesKey(all[j].name, all[j].labels)
	})
	out := make([]SeriesSnapshot, 0, len(all))
	for _, s := range all {
		snap := SeriesSnapshot{Name: s.name, Labels: s.labels, Kind: s.kind}
		switch s.kind {
		case KindCounter:
			snap.Value = float64(s.c.Value())
		case KindGauge:
			snap.Value = s.g.Value()
		case KindHistogram:
			snap.Hist = s.h.Snapshot()
		}
		out = append(out, snap)
	}
	return out
}

// CounterValue reads a counter's current count without creating the series
// (0 when absent). Summaries use it to avoid minting empty series.
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	if s := r.lookup(name, labels); s != nil && s.c != nil {
		return s.c.Value()
	}
	return 0
}

// GaugeValue reads a gauge (0 when absent).
func (r *Registry) GaugeValue(name string, labels ...Label) float64 {
	if s := r.lookup(name, labels); s != nil && s.g != nil {
		return s.g.Value()
	}
	return 0
}

// lookup finds a series without creating it.
func (r *Registry) lookup(name string, labels []Label) *series {
	name, labels = normalize(name, labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[key]
}
