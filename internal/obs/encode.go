package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// WriteText renders the registry in a Prometheus-style text exposition:
// one `name{labels} value` line per series, preceded by a `# TYPE` comment
// per metric name. Counters print as integers; gauges as compact floats;
// histograms expand into quantile series (seconds) plus `_count` and
// `_sum` lines. Output is deterministically ordered, so it is diffable and
// golden-testable.
func (r *Registry) WriteText(w io.Writer) error {
	lastName := ""
	for _, s := range r.Gather() {
		if s.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, kindString(s.Kind)); err != nil {
				return err
			}
			lastName = s.Name
		}
		if err := writeSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

// kindString names a kind in TYPE comments.
func kindString(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// writeSeries renders one snapshot.
func writeSeries(w io.Writer, s SeriesSnapshot) error {
	switch s.Kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", formatSeries(s.Name, s.Labels), int64(s.Value))
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", formatSeries(s.Name, s.Labels), formatFloat(s.Value))
		return err
	case KindHistogram:
		for _, q := range [...]struct {
			label string
			v     time.Duration
		}{
			{"0.5", s.Hist.P50},
			{"0.95", s.Hist.P95},
			{"0.99", s.Hist.P99},
		} {
			labels := append(append([]Label(nil), s.Labels...), L("quantile", q.label))
			if _, err := fmt.Fprintf(w, "%s %s\n", formatSeries(s.Name, labels), formatFloat(q.v.Seconds())); err != nil {
				return err
			}
		}
		// Exemplar rides the _count line OpenMetrics-style
		// (`value # {trace_id="..."} seconds`), linking the series to one
		// recorded trace in /debug/traces.
		ex := ""
		if s.Hist.Exemplar != nil {
			ex = fmt.Sprintf(" # {trace_id=%q} %s", s.Hist.Exemplar.TraceID, formatFloat(s.Hist.Exemplar.Value.Seconds()))
		}
		if _, err := fmt.Fprintf(w, "%s %d%s\n", formatSeries(s.Name+"_count", s.Labels), s.Hist.Count, ex); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %s\n", formatSeries(s.Name+"_sum", s.Labels), formatFloat(s.Hist.Sum.Seconds()))
		return err
	}
	return nil
}

// formatSeries renders `name{k="v",...}` (or bare name without labels).
func formatSeries(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float compactly and deterministically.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry's text exposition —
// mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
