package obs

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total", L("platform", "facebook"))
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same identity in any label order resolves to the same series.
	c2 := r.Counter("queries_total", L("platform", "facebook"))
	if c2 != c {
		t.Fatal("same series resolved to a different counter")
	}
	if got := r.CounterValue("queries_total", L("platform", "facebook")); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("absent_total"); got != 0 {
		t.Fatalf("absent CounterValue = %d, want 0", got)
	}

	g := r.Gauge("phase_seconds", L("phase", "fig1"))
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	if got := r.GaugeValue("phase_seconds", L("phase", "fig1")); got != 2.5 {
		t.Fatalf("GaugeValue = %v, want 2.5", got)
	}
}

func TestLabelOrderIndependence(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("b", "2"), L("a", "1"))
	b := r.Counter("x_total", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestKindClashReturnsDetachedInstrument(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	g := r.Gauge("dual")
	g.Set(3) // must not panic, must not corrupt the counter
	if got := r.CounterValue("dual"); got != 0 {
		t.Fatalf("counter corrupted by kind clash: %d", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if s := h.Snapshot(); s.Count != 0 || s.P50 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// 1000 observations spread uniformly over 1..1000 µs: p50 should land
	// near 500µs and p99 near 990µs, within log-bucket resolution (one
	// power-of-two bucket ≈ ±50% of the true value).
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	checkWithin := func(name string, got, want time.Duration) {
		t.Helper()
		if got < want/2 || got > want*2 {
			t.Errorf("%s = %v, want within 2x of %v", name, got, want)
		}
	}
	checkWithin("p50", s.P50, 500*time.Microsecond)
	checkWithin("p95", s.P95, 950*time.Microsecond)
	checkWithin("p99", s.P99, 990*time.Microsecond)
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	wantSum := time.Duration(1000*1001/2) * time.Microsecond
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	if m := s.Mean(); m != wantSum/1000 {
		t.Errorf("mean = %v, want %v", m, wantSum/1000)
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second) // clamps to zero, never panics
	h.Observe(0)
	s := h.Snapshot()
	if s.Count != 2 || s.P50 != 0 || s.Sum != 0 {
		t.Fatalf("snapshot = %+v, want two zero observations", s)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram()
	h.Observe(100 * time.Millisecond)
	s := h.Snapshot()
	lo, hi := 64*time.Millisecond, 128*time.Millisecond // its power-of-two bucket
	for _, q := range []time.Duration{s.P50, s.P95, s.P99} {
		if q < lo || q > hi {
			t.Fatalf("quantile %v outside bucket [%v, %v]", q, lo, hi)
		}
	}
}

// TestRegistryConcurrent hammers one registry from GOMAXPROCS goroutines —
// concurrent get-or-create on colliding names, instrument updates, and
// Gather/WriteText — and then checks totals. Run with -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hammer_total", L("shard", fmt.Sprint(w%4))).Inc()
				r.Gauge("hammer_gauge").Set(float64(i))
				r.Histogram("hammer_seconds").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Gather()
				}
			}
		}()
	}
	wg.Wait()
	var total int64
	for shard := 0; shard < 4; shard++ {
		total += r.CounterValue("hammer_total", L("shard", fmt.Sprint(shard)))
	}
	want := int64(workers * perWorker)
	if total != want {
		t.Fatalf("lost updates: counted %d, want %d", total, want)
	}
	if got := r.Histogram("hammer_seconds").Count(); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "_"},
		{"queries_total", "queries_total"},
		{"has space", "has_space"},
		{"dots.and-dashes", "dots_and_dashes"},
		{"9starts_with_digit", "_9starts_with_digit"},
		{"naïve", "na__ve"}, // multibyte rune → one '_' per byte
	}
	for _, c := range cases {
		if got := SanitizeName(c.in); got != c.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
		if again := SanitizeName(SanitizeName(c.in)); again != SanitizeName(c.in) {
			t.Errorf("SanitizeName not idempotent on %q", c.in)
		}
	}
}

func TestSanitizeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"facebook-restricted", "facebook-restricted"},
		{`say "hi"`, "say _hi_"},
		{"back\\slash", "back_slash"},
		{"line\nbreak\ttab", "line break tab"},
		{"ctrl\x01byte", "ctrl?byte"},
		{"bad\xffutf8", "bad?utf8"},
		{"unicode ∧ fine", "unicode ∧ fine"},
	}
	for _, c := range cases {
		if got := SanitizeLabelValue(c.in); got != c.want {
			t.Errorf("SanitizeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
