package obs

import (
	"strings"
	"testing"
	"time"
)

func TestObserveWithExemplar(t *testing.T) {
	h := NewHistogram()
	if h.Exemplar() != nil {
		t.Fatal("fresh histogram has exemplar")
	}
	// Empty trace ID records the observation but no exemplar (the
	// untraced-path contract).
	h.ObserveWithExemplar(time.Millisecond, "")
	if h.Exemplar() != nil {
		t.Fatal("empty trace ID stored an exemplar")
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	h.ObserveWithExemplar(2*time.Millisecond, "aaaa")
	h.ObserveWithExemplar(5*time.Millisecond, "bbbb")
	ex := h.Exemplar()
	if ex == nil || ex.TraceID != "bbbb" || ex.Value != 5*time.Millisecond {
		t.Fatalf("exemplar = %+v, want latest (bbbb, 5ms)", ex)
	}
	snap := h.Snapshot()
	if snap.Count != 3 || snap.Exemplar == nil || snap.Exemplar.TraceID != "bbbb" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestWriteTextRendersExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("adapi_request_seconds", L("iface", "a"))
	h.ObserveWithExemplar(4*time.Millisecond, "deadbeefdeadbeefdeadbeefdeadbeef")
	// A second, exemplar-free histogram must render without the suffix.
	r.Histogram("plain_seconds").Observe(time.Millisecond)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `adapi_request_seconds_count{iface="a"} 1 # {trace_id="deadbeefdeadbeefdeadbeefdeadbeef"} 0.004`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "plain_seconds_count") && strings.Contains(line, "#") {
			t.Fatalf("exemplar leaked onto plain series: %q", line)
		}
	}
}
