//go:build linux || darwin

package snapshot

import (
	"os"
	"syscall"
)

// mapRO memory-maps size bytes of f read-only and shared, so every process
// serving the same snapshot shares one copy in the page cache.
func mapRO(f *os.File, size int64) ([]byte, func(), error) {
	if int64(int(size)) != size {
		return nil, nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: f.Name(), Err: err}
	}
	return data, func() { syscall.Munmap(data) }, nil
}
