package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/targeting"
)

// snapOpts is a small deployment every test here can afford to build.
func snapOpts(seed uint64, size int) platform.DeployOptions {
	return platform.DeployOptions{
		Seed:         seed,
		UniverseSize: size,
		Metrics:      obs.NewRegistry(),
	}
}

// buildAndWrite builds a deployment and writes its snapshot into a temp dir.
func buildAndWrite(t testing.TB, opts platform.DeployOptions) (string, *platform.Deployment, *Info) {
	t.Helper()
	d, err := platform.NewDeployment(opts)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	path := filepath.Join(t.TempDir(), "deployment.adusnap")
	info, err := WriteDeployment(path, d, opts)
	if err != nil {
		t.Fatalf("WriteDeployment: %v", err)
	}
	return path, d, info
}

// loadFresh loads a snapshot under a fresh metrics registry (so counters
// never collide with the built deployment's).
func loadFresh(t testing.TB, path string, opts platform.DeployOptions) (*platform.Deployment, *Info) {
	t.Helper()
	opts.Metrics = obs.NewRegistry()
	d, info, err := LoadDeployment(path, opts)
	if err != nil {
		t.Fatalf("LoadDeployment: %v", err)
	}
	return d, info
}

// snapBatch is a mixed spec battery over one interface: attributes, ANDs,
// ORs, demographic conditioning, exclusions, unknown ids, and empty specs,
// so built-vs-loaded comparison covers accepted and rejected shapes alike.
func snapBatch(p *platform.Interface) []platform.EstimateRequest {
	nAttr := len(p.Catalog().Attributes)
	reqs := []platform.EstimateRequest{
		{Spec: targeting.Attr(0)},
		{Spec: targeting.Attr(nAttr - 1)},
		{Spec: targeting.And(targeting.Attr(1), targeting.Attr(2))},
		{Spec: targeting.Spec{Include: []targeting.Clause{{
			{Kind: targeting.KindAttribute, ID: 3},
			{Kind: targeting.KindAttribute, ID: 4},
			{Kind: targeting.KindAttribute, ID: 5},
		}}}},
		{Spec: targeting.Attr(nAttr + 7)}, // unknown id
		{Spec: targeting.Spec{}},          // empty
	}
	cond := targeting.And(targeting.Attr(6))
	cond.Include = append(cond.Include,
		targeting.Clause{{Kind: targeting.KindGender, ID: 1}},
		targeting.Clause{{Kind: targeting.KindAge, ID: 2}},
		targeting.Clause{{Kind: targeting.KindLocation, ID: 0}},
	)
	reqs = append(reqs, platform.EstimateRequest{Spec: cond})
	excl := targeting.Attr(7)
	excl.Exclude = []targeting.Clause{{{Kind: targeting.KindAttribute, ID: 8}}}
	reqs = append(reqs, platform.EstimateRequest{Spec: excl, FrequencyCapPerMonth: 3})
	if len(p.Catalog().Topics) > 0 {
		reqs = append(reqs, platform.EstimateRequest{
			Spec: targeting.And(targeting.Attr(9), targeting.Topic(1)),
		})
	}
	return reqs
}

// requireSameAnswers drives the same battery through both deployments'
// measurement and estimate doors and requires bit-identical outcomes,
// error messages included.
func requireSameAnswers(t *testing.T, built, loaded *platform.Deployment) {
	t.Helper()
	for _, bp := range built.Interfaces() {
		lp, err := loaded.ByName(bp.Name())
		if err != nil {
			t.Fatalf("loaded deployment: %v", err)
		}
		reqs := snapBatch(bp)
		for _, door := range []string{"measure", "estimate"} {
			var want, got []platform.Estimate
			var wantErr, gotErr error
			if door == "measure" {
				want, wantErr = bp.MeasureMany(reqs)
				got, gotErr = lp.MeasureMany(reqs)
			} else {
				want, wantErr = bp.EstimateMany(reqs)
				got, gotErr = lp.EstimateMany(reqs)
			}
			if wantErr != nil || gotErr != nil {
				t.Fatalf("%s/%s: built err=%v, loaded err=%v", bp.Name(), door, wantErr, gotErr)
			}
			for i := range reqs {
				if (want[i].Err == nil) != (got[i].Err == nil) {
					t.Fatalf("%s/%s slot %d: built err=%v, loaded err=%v", bp.Name(), door, i, want[i].Err, got[i].Err)
				}
				if want[i].Err != nil {
					if want[i].Err.Error() != got[i].Err.Error() {
						t.Fatalf("%s/%s slot %d: built err %q, loaded err %q", bp.Name(), door, i, want[i].Err, got[i].Err)
					}
					continue
				}
				if want[i].Size != got[i].Size {
					t.Fatalf("%s/%s slot %d: built %d, loaded %d", bp.Name(), door, i, want[i].Size, got[i].Size)
				}
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	opts := snapOpts(11, 4096)
	path, built, wrote := buildAndWrite(t, opts)

	info, err := ReadInfo(path)
	if err != nil {
		t.Fatalf("ReadInfo: %v", err)
	}
	if info.ContentHash != wrote.ContentHash || info.CatalogHash != wrote.CatalogHash ||
		info.ConfigHash != wrote.ConfigHash {
		t.Fatalf("ReadInfo hashes %+v disagree with writer %+v", info, wrote)
	}
	if info.Seed != 11 || info.UniverseSize != 4096 || info.LocalUsers != 4096 || info.Sharded {
		t.Fatalf("ReadInfo identity wrong: %+v", info)
	}
	if _, err := VerifyFile(path); err != nil {
		t.Fatalf("VerifyFile: %v", err)
	}

	loaded, linfo := loadFresh(t, path, opts)
	if linfo.ContentHash != wrote.ContentHash {
		t.Fatalf("loaded content hash %s, wrote %s", linfo.ContentHash, wrote.ContentHash)
	}
	requireSameAnswers(t, built, loaded)

	// Warm must be a no-op on a snapshot-backed deployment: nothing to
	// materialize, nothing to allocate.
	for _, p := range loaded.Interfaces() {
		p.Warm()
	}
	requireSameAnswers(t, built, loaded)
}

// TestSnapshotBytesCanonical pins that the snapshot's content does not
// depend on how the source deployment held its catalog: dense, compressed,
// and snapshot-loaded deployments over the same options serialize to the
// same content hash (EncodeCSet is canonical, and the directory hash covers
// every payload byte).
func TestSnapshotBytesCanonical(t *testing.T) {
	opts := snapOpts(17, 2048)
	path, _, dense := buildAndWrite(t, opts)

	copts := opts
	copts.Compressed = true
	copts.Metrics = obs.NewRegistry()
	_, _, compressed := buildAndWrite(t, copts)
	if dense.ContentHash != compressed.ContentHash {
		t.Fatalf("dense-built snapshot hash %s, compressed-built %s", dense.ContentHash, compressed.ContentHash)
	}

	loadedDep, _ := loadFresh(t, path, opts)
	reOpts := opts
	reOpts.Metrics = obs.NewRegistry()
	rePath := filepath.Join(t.TempDir(), "rewritten.adusnap")
	rewrote, err := WriteDeployment(rePath, loadedDep, reOpts)
	if err != nil {
		t.Fatalf("WriteDeployment from loaded deployment: %v", err)
	}
	if rewrote.ContentHash != dense.ContentHash {
		t.Fatalf("snapshot-of-snapshot hash %s, original %s", rewrote.ContentHash, dense.ContentHash)
	}
}

// renderFigs runs fig1 and fig2 through a runner and returns the rendered
// tables — the full presentation bytes the paper's figures are read from.
func renderFigs(t *testing.T, cfg experiments.Config) []byte {
	t.Helper()
	cfg.K = 25
	cfg.Seed = 5
	r, err := experiments.NewRunner(cfg)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	var buf bytes.Buffer
	for _, name := range []string{"fig1", "fig2"} {
		res, err := r.RunExperiment(name, experiments.PhaseOptions{})
		if err != nil {
			t.Fatalf("RunExperiment(%s): %v", name, err)
		}
		if err := res.Render(&buf); err != nil {
			t.Fatalf("Render(%s): %v", name, err)
		}
	}
	return buf.Bytes()
}

// TestSnapshotFigureBitIdentity is the acceptance battery's single-node
// half: the paper's fig1/fig2 pipelines, rendered to bytes, must be
// identical between a freshly built deployment and one reconstructed from
// its snapshot.
func TestSnapshotFigureBitIdentity(t *testing.T) {
	opts := snapOpts(33, 5000)
	path, built, _ := buildAndWrite(t, opts)
	loaded, _ := loadFresh(t, path, opts)

	want := renderFigs(t, experiments.Config{Deployment: built, Metrics: obs.NewRegistry()})
	got := renderFigs(t, experiments.Config{Deployment: loaded, Metrics: obs.NewRegistry()})
	if !bytes.Equal(want, got) {
		t.Fatalf("fig1/fig2 renders diverge:\nbuilt:\n%s\nloaded:\n%s", want, got)
	}
}

// TestSnapshotShardFigureBitIdentity is the battery's sharded half: a
// 4-shard cluster whose shards were each reconstructed from per-node
// snapshots must render fig1/fig2 byte-identically to a cluster of freshly
// built shards.
func TestSnapshotShardFigureBitIdentity(t *testing.T) {
	const size = 1 << 13
	opts := snapOpts(33, size)
	nodes := []string{"n0", "n1", "n2", "n3"}
	ring, err := cluster.NewRing(nodes, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1<<10)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var builtConns, snapConns []cluster.Conn
	for _, n := range nodes {
		sOpts := opts
		sOpts.Metrics = obs.NewRegistry()
		built, err := cluster.NewShard(n, layout, sOpts)
		if err != nil {
			t.Fatalf("NewShard(%s): %v", n, err)
		}
		builtConns = append(builtConns, built)

		// Write this node's slice and reconstruct the shard from the file.
		shardOpts := sOpts
		shardOpts.UniverseSize = layout.UniverseSize()
		shardOpts.ShardSpans = layout.ShardSpans(n)
		path := filepath.Join(dir, n+".adusnap")
		if _, err := WriteDeployment(path, built.Deployment(), shardOpts); err != nil {
			t.Fatalf("WriteDeployment(%s): %v", n, err)
		}
		shardOpts.Metrics = obs.NewRegistry()
		dep, info, err := LoadDeployment(path, shardOpts)
		if err != nil {
			t.Fatalf("LoadDeployment(%s): %v", n, err)
		}
		if !info.Sharded || info.LocalUsers >= size {
			t.Fatalf("shard snapshot %s should hold a strict slice, got %+v", n, info)
		}
		s, err := cluster.NewShardFromDeployment(n, layout, dep)
		if err != nil {
			t.Fatalf("NewShardFromDeployment(%s): %v", n, err)
		}
		snapConns = append(snapConns, s)
	}

	figs := func(conns []cluster.Conn) []byte {
		coord, err := cluster.NewCoordinator(cluster.Options{
			Layout:  layout,
			Conns:   conns,
			Deploy:  snapOpts(33, size),
			Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("NewCoordinator: %v", err)
		}
		var providers []core.Provider
		for _, name := range []string{
			catalog.PlatformFacebookRestricted, catalog.PlatformFacebook,
			catalog.PlatformGoogle, catalog.PlatformLinkedIn,
		} {
			p, err := coord.Provider(name)
			if err != nil {
				t.Fatalf("Provider(%s): %v", name, err)
			}
			providers = append(providers, p)
		}
		return renderFigs(t, experiments.Config{Providers: providers, Metrics: obs.NewRegistry()})
	}

	want := figs(builtConns)
	got := figs(snapConns)
	if !bytes.Equal(want, got) {
		t.Fatalf("sharded fig1/fig2 renders diverge:\nbuilt:\n%s\nsnapshot:\n%s", want, got)
	}
}

// rewriteMeta parses a snapshot, applies mutate to its directory, recomputes
// the content hash, and rewrites the meta tail and prelude CRCs so the file
// is structurally valid again. Tests use it to forge semantically stale
// directories that pass every integrity check.
func rewriteMeta(t *testing.T, path string, mutate func(*fileMeta)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	metaOff := binary.LittleEndian.Uint64(data[16:24])
	var m fileMeta
	if err := json.Unmarshal(data[metaOff:], &m); err != nil {
		t.Fatalf("meta: %v", err)
	}
	mutate(&m)
	m.ContentHash = contentHash(&m)
	metaBytes, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data[:metaOff], metaBytes...)
	binary.LittleEndian.PutUint64(data[24:32], uint64(len(metaBytes)))
	binary.LittleEndian.PutUint32(data[32:36], crc32.Checksum(metaBytes, castagnoli))
	binary.LittleEndian.PutUint32(data[36:40], crc32.Checksum(data[0:36], castagnoli))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsStaleness(t *testing.T) {
	opts := snapOpts(11, 4096)
	path, _, _ := buildAndWrite(t, opts)

	load := func(o platform.DeployOptions) error {
		o.Metrics = obs.NewRegistry()
		_, _, err := LoadDeployment(path, o)
		return err
	}

	wrong := opts
	wrong.UniverseSize = 8192
	if err := load(wrong); !errors.Is(err, ErrUniverseMismatch) {
		t.Fatalf("universe mismatch: got %v", err)
	}

	wrong = opts
	wrong.ShardSpans = []population.Span{{Lo: 0, Hi: 2048}}
	if err := load(wrong); !errors.Is(err, ErrSpanMismatch) {
		t.Fatalf("span mismatch: got %v", err)
	}

	wrong = opts
	wrong.Seed = 12
	if err := load(wrong); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("seed skew: got %v", err)
	}

	wrong = opts
	wrong.NoLatentFactors = true
	if err := load(wrong); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("ablation skew: got %v", err)
	}

	// Engine knobs must NOT invalidate a snapshot: the same file serves the
	// exact-estimates ablation and metric registry changes.
	ok := opts
	ok.ExactEstimates = true
	if err := load(ok); err != nil {
		t.Fatalf("exact-estimates load should succeed, got %v", err)
	}
}

func TestLoadRejectsTamperedFile(t *testing.T) {
	opts := snapOpts(11, 4096)
	goodPath, _, _ := buildAndWrite(t, opts)
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	load := func(p string) error {
		o := opts
		o.Metrics = obs.NewRegistry()
		_, _, err := LoadDeployment(p, o)
		return err
	}

	if err := load(write("empty", nil)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty file: got %v", err)
	}
	if err := load(write("short", good[:preludeSize-1])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short prelude: got %v", err)
	}
	if err := load(write("badmagic", append([]byte("NOTASNAP"), good[8:]...))); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("bad magic: got %v", err)
	}

	// Flip the version; the prelude CRC catches it before the version check,
	// so also re-sign the prelude to reach the version error itself.
	b := append([]byte(nil), good...)
	b[8]++
	if err := load(write("vercrc", b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version flip without re-sign: got %v", err)
	}
	binary.LittleEndian.PutUint32(b[36:40], crc32.Checksum(b[0:36], castagnoli))
	if err := load(write("version", b)); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v", err)
	}

	// Truncate mid-sections: the recorded meta offset lands outside the file.
	if err := load(write("cut", good[:len(good)/2])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-file truncation: got %v", err)
	}

	// Flip one byte inside the meta JSON.
	b = append([]byte(nil), good...)
	b[len(b)-3] ^= 0x40
	if err := load(write("metaflip", b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("meta flip: got %v", err)
	}

	// Flip one byte inside the first universe section: its CRC is verified
	// on every load.
	b = append([]byte(nil), good...)
	b[pageAlign+64] ^= 0x01
	if err := load(write("uniflip", b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("universe flip: got %v", err)
	}

	// Builder-version skew, forged through a structurally valid directory.
	p := write("builder", good)
	rewriteMeta(t, p, func(m *fileMeta) { m.BuilderVersion = "adusnap-builder/0" })
	if err := load(p); !errors.Is(err, ErrVersion) {
		t.Fatalf("builder skew: got %v", err)
	}

	// Catalog-hash skew: the directory is intact and self-consistent, but
	// names a catalog the current code does not derive. This is the last
	// gate — it must fail even though every CRC passes.
	p = write("catalog", good)
	rewriteMeta(t, p, func(m *fileMeta) {
		m.CatalogHash = "0000000000000000000000000000000000000000000000000000000000000000"
	})
	if err := load(p); !errors.Is(err, ErrCatalogMismatch) {
		t.Fatalf("catalog skew: got %v", err)
	}
}

// TestVerifyFileCoversCatalogSections pins the one check loads deliberately
// skip: a flipped byte deep in a platform section passes LoadDeployment's
// structural validation (or not — either way it must never panic) but
// VerifyFile must always catch it by CRC.
func TestVerifyFileCoversCatalogSections(t *testing.T) {
	opts := snapOpts(11, 4096)
	path, _, info := buildAndWrite(t, opts)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last platform section and flip a payload byte in its middle.
	m, err := parseFile(data)
	if err != nil {
		t.Fatal(err)
	}
	last := m.Platforms[len(m.Platforms)-1]
	data[last.Off+last.Len/2] ^= 0x10
	bad := filepath.Join(t.TempDir(), "flipped.adusnap")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyFile(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyFile on flipped catalog byte: got %v", err)
	}
	if info.FileSize != int64(len(data)) {
		t.Fatalf("info size %d, file is %d", info.FileSize, len(data))
	}
}

// TestClusterRefusesCatalogSkew pins the coordinator preflight end to end:
// a shard reconstructed from a snapshot of a different seed carries a
// different catalog hash, and coordinator construction must refuse the ring.
func TestClusterRefusesCatalogSkew(t *testing.T) {
	const size = 4096
	nodes := []string{"a", "b"}
	ring, err := cluster.NewRing(nodes, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	goodOpts := snapOpts(11, size)
	skewOpts := snapOpts(99, size)

	shardFromSnap := func(n string, opts platform.DeployOptions) cluster.Conn {
		sOpts := opts
		sOpts.Metrics = obs.NewRegistry()
		sOpts.ShardSpans = layout.ShardSpans(n)
		dep, err := platform.NewDeployment(sOpts)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), n+".adusnap")
		if _, err := WriteDeployment(path, dep, sOpts); err != nil {
			t.Fatal(err)
		}
		sOpts.Metrics = obs.NewRegistry()
		loaded, _, err := LoadDeployment(path, sOpts)
		if err != nil {
			t.Fatal(err)
		}
		s, err := cluster.NewShardFromDeployment(n, layout, loaded)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	conns := []cluster.Conn{shardFromSnap("a", goodOpts), shardFromSnap("b", skewOpts)}
	_, err = cluster.NewCoordinator(cluster.Options{
		Layout:  layout,
		Conns:   conns,
		Deploy:  snapOpts(11, size),
		Metrics: obs.NewRegistry(),
	})
	if !errors.Is(err, cluster.ErrCatalogSkew) {
		t.Fatalf("mixed-seed ring: got %v, want ErrCatalogSkew", err)
	}

	// Same snapshots, coherent ring: construction succeeds.
	conns = []cluster.Conn{shardFromSnap("a", goodOpts), shardFromSnap("b", goodOpts)}
	if _, err := cluster.NewCoordinator(cluster.Options{
		Layout:  layout,
		Conns:   conns,
		Deploy:  snapOpts(11, size),
		Metrics: obs.NewRegistry(),
	}); err != nil {
		t.Fatalf("coherent snapshot ring: %v", err)
	}
}

// TestShardFromDeploymentValidatesSpans pins NewShardFromDeployment's span
// check: a snapshot of the wrong node's slice must be refused.
func TestShardFromDeploymentValidatesSpans(t *testing.T) {
	const size = 4096
	ring, err := cluster.NewRing([]string{"a", "b"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	opts := snapOpts(11, size)
	opts.ShardSpans = layout.ShardSpans("a")
	dep, err := platform.NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.NewShardFromDeployment("b", layout, dep); err == nil {
		t.Fatal("node a's slice accepted as shard b")
	}
	if _, err := cluster.NewShardFromDeployment("a", layout, dep); err != nil {
		t.Fatalf("node a's own slice refused: %v", err)
	}
}

// TestWriteDeploymentRefusesWrongOptions pins the writer's own sanity
// checks: options that disagree with the deployment being serialized.
func TestWriteDeploymentRefusesWrongOptions(t *testing.T) {
	opts := snapOpts(11, 2048)
	d, err := platform.NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.adusnap")
	bad := opts
	bad.Seed = 12
	if _, err := WriteDeployment(path, d, bad); err == nil {
		t.Fatal("wrong seed accepted")
	}
	bad = opts
	bad.UniverseSize = 4096
	if _, err := WriteDeployment(path, d, bad); err == nil {
		t.Fatal("wrong universe size accepted")
	}
	bad = opts
	bad.ShardSpans = []population.Span{{Lo: 0, Hi: 1024}}
	if _, err := WriteDeployment(path, d, bad); !errors.Is(err, ErrSpanMismatch) {
		t.Fatalf("wrong spans: got %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("refused writes must not leave a file behind")
	}
}

func TestSnapshotOverwriteIsAtomic(t *testing.T) {
	opts := snapOpts(11, 2048)
	path, d, first := buildAndWrite(t, opts)
	// Overwrite in place with the same content; the temp file must be gone
	// and the file must parse.
	second, err := WriteDeployment(path, d, opts)
	if err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if second.ContentHash != first.ContentHash {
		t.Fatalf("rewrite changed content: %s vs %s", second.ContentHash, first.ContentHash)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	if _, err := VerifyFile(path); err != nil {
		t.Fatalf("VerifyFile after overwrite: %v", err)
	}
}

func TestReadInfoErrors(t *testing.T) {
	if _, err := ReadInfo(filepath.Join(t.TempDir(), "missing.adusnap")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestSnapshotInfoString(t *testing.T) {
	opts := snapOpts(11, 2048)
	_, _, info := buildAndWrite(t, opts)
	if info.CreatedAt.IsZero() {
		t.Fatal("CreatedAt not set")
	}
	if info.FileSize <= 0 {
		t.Fatal("FileSize not set")
	}
	for _, h := range []string{info.ConfigHash, info.CatalogHash, info.ContentHash} {
		if len(h) != 64 {
			t.Fatalf("hash %q is not sha256 hex", h)
		}
	}
	if fmt.Sprintf("%.12s", info.ContentHash) == "" {
		t.Fatal("unreachable")
	}
}
