package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/audience"
	"repro/internal/obs"
	"repro/internal/population"
)

// TestValidateSpanShapeUnit walks every refusal branch of the span-shape
// validator directly: these are the shapes a forged or bit-rotted directory
// could present, and each must be named, not crashed on.
func TestValidateSpanShapeUnit(t *testing.T) {
	cases := []struct {
		name string
		m    fileMeta
		want string // substring of the error, "" for accept
	}{
		{"full ok", fileMeta{UniverseSize: 100, LocalUsers: 100}, ""},
		{"full with spans", fileMeta{UniverseSize: 100, LocalUsers: 100, ShardSpans: [][2]int{{0, 100}}}, "unsharded snapshot carries"},
		{"full short", fileMeta{UniverseSize: 100, LocalUsers: 99}, "full snapshot holds"},
		{"shard ok", fileMeta{Sharded: true, UniverseSize: 100, LocalUsers: 50, ShardSpans: [][2]int{{0, 25}, {75, 100}}}, ""},
		{"shard empty span", fileMeta{Sharded: true, UniverseSize: 100, LocalUsers: 0, ShardSpans: [][2]int{{10, 10}}}, "not ascending"},
		{"shard descending", fileMeta{Sharded: true, UniverseSize: 100, LocalUsers: 50, ShardSpans: [][2]int{{50, 75}, {0, 25}}}, "not ascending"},
		{"shard past end", fileMeta{Sharded: true, UniverseSize: 100, LocalUsers: 50, ShardSpans: [][2]int{{80, 130}}}, "not ascending"},
		{"shard wrong total", fileMeta{Sharded: true, UniverseSize: 100, LocalUsers: 60, ShardSpans: [][2]int{{0, 50}}}, "spans cover"},
	}
	for _, tc := range cases {
		err := validateSpanShape(&tc.m)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want ErrCorrupt containing %q", tc.name, err, tc.want)
		}
	}
}

// TestSameSpansUnit pins the nil-vs-empty distinction (full deployment vs
// sharded-with-no-partitions) and element-wise comparison.
func TestSameSpansUnit(t *testing.T) {
	full := []population.Span(nil)
	if err := sameSpans(full, nil); err != nil {
		t.Fatalf("nil vs nil: %v", err)
	}
	if err := sameSpans([]population.Span{}, nil); !errors.Is(err, ErrSpanMismatch) {
		t.Fatalf("empty vs nil must mismatch, got %v", err)
	}
	a := []population.Span{{Lo: 0, Hi: 10}, {Lo: 20, Hi: 30}}
	if err := sameSpans(a, a); err != nil {
		t.Fatalf("identical spans: %v", err)
	}
	if err := sameSpans(a, a[:1]); !errors.Is(err, ErrSpanMismatch) {
		t.Fatalf("length skew: got %v", err)
	}
	b := []population.Span{{Lo: 0, Hi: 10}, {Lo: 20, Hi: 31}}
	if err := sameSpans(a, b); !errors.Is(err, ErrSpanMismatch) {
		t.Fatalf("element skew: got %v", err)
	}
}

func TestPad8Align8(t *testing.T) {
	if got := pad8([]byte{1, 2, 3}); len(got) != 8 || got[0] != 1 || got[7] != 0 {
		t.Fatalf("pad8 of 3 bytes: %v", got)
	}
	eight := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if got := pad8(eight); len(got) != 8 {
		t.Fatalf("pad8 of aligned input grew to %d", len(got))
	}
	for n, want := range map[int]int{0: 0, 1: 8, 7: 8, 8: 8, 9: 16} {
		if got := align8(n); got != want {
			t.Errorf("align8(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestDecodeDimRejectsBadBlobs drives the per-option decode path directly:
// undecodable bytes and size-skewed options are both ErrCorrupt.
func TestDecodeDimRejectsBadBlobs(t *testing.T) {
	s := audience.New(64)
	s.Add(3)
	s.Add(40)
	blob := audience.EncodeCSet(nil, audience.FromSet(s))
	locs := []optionLoc{{Off: 0, Len: int64(len(blob))}}

	views, err := decodeDim(blob, locs, 64)
	if err != nil || len(views) != 1 || views[0].Count() != 2 {
		t.Fatalf("good blob: views=%v err=%v", views, err)
	}
	if _, err := decodeDim(blob, locs, 128); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("user-count skew: got %v", err)
	}
	junk := []byte("definitely not an encoded cset blob")
	if _, err := decodeDim(junk, []optionLoc{{Off: 0, Len: int64(len(junk))}}, 64); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("junk blob: got %v", err)
	}
}

// TestLoadRejectsStructuralSkew forges directories that pass every CRC but
// describe an impossible layout — duplicate or missing sections, user-count
// lies — and pins that decodeSections names each one as ErrCorrupt.
func TestLoadRejectsStructuralSkew(t *testing.T) {
	opts := snapOpts(11, 2048)
	goodPath, _, _ := buildAndWrite(t, opts)
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*fileMeta)
	}{
		{"duplicate universe", func(m *fileMeta) { m.Universes[1].Name = m.Universes[0].Name }},
		{"missing universe", func(m *fileMeta) { m.Universes[2].Name = "nosuch" }},
		{"universe user lie", func(m *fileMeta) { m.Universes[0].Users++ }},
		{"duplicate platform", func(m *fileMeta) { m.Platforms[1].Name = m.Platforms[0].Name }},
		{"missing platform", func(m *fileMeta) { m.Platforms[len(m.Platforms)-1].Name = "bogus" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "forged.adusnap")
			if err := os.WriteFile(p, good, 0o644); err != nil {
				t.Fatal(err)
			}
			rewriteMeta(t, p, tc.mutate)
			o := opts
			o.Metrics = obs.NewRegistry()
			if _, _, err := LoadDeployment(p, o); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestVerifyFileCatchesUniverseAndDirectorySkew rounds out VerifyFile's own
// checks: a flipped universe byte and a forged content hash (directory
// re-signed so both prelude CRCs pass) must each fail verification.
func TestVerifyFileCatchesUniverseAndDirectorySkew(t *testing.T) {
	opts := snapOpts(11, 2048)
	goodPath, _, _ := buildAndWrite(t, opts)
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), good...)
	flipped[pageAlign+16] ^= 0x04
	p := filepath.Join(t.TempDir(), "uniflip.adusnap")
	if err := os.WriteFile(p, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyFile(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped universe byte: got %v", err)
	}

	// Forge the stored content hash but keep the meta and prelude CRCs
	// valid — only VerifyFile's recomputation can catch this.
	forged := filepath.Join(t.TempDir(), "hash.adusnap")
	if err := os.WriteFile(forged, good, 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(forged)
	if err != nil {
		t.Fatal(err)
	}
	metaOff := binary.LittleEndian.Uint64(data[16:24])
	m, err := parseFile(data)
	if err != nil {
		t.Fatal(err)
	}
	m.ContentHash = strings.Repeat("0", 64)
	metaBytes, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data[:metaOff], metaBytes...)
	binary.LittleEndian.PutUint64(data[24:32], uint64(len(metaBytes)))
	binary.LittleEndian.PutUint32(data[32:36], crc32.Checksum(metaBytes, castagnoli))
	binary.LittleEndian.PutUint32(data[36:40], crc32.Checksum(data[0:36], castagnoli))
	if err := os.WriteFile(forged, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyFile(forged); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged content hash: got %v", err)
	}
}
