//go:build !linux && !darwin

package snapshot

import (
	"io"
	"os"
)

// mapRO falls back to reading the whole file when mmap is unavailable; the
// zero-copy view structure still works, only backed by heap instead of the
// page cache.
func mapRO(f *os.File, size int64) ([]byte, func(), error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
