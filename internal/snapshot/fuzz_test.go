package snapshot

import (
	"encoding/binary"
	"os"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
)

// FuzzSnapshotDecode throws arbitrary bytes at the full decode path —
// prelude, directory, universe sections, and view construction. The
// contract under fuzz is exactly the load path's: reject with a typed
// error, never panic, never index out of bounds. Seeded with a real
// snapshot plus the classic corruptions (truncations, flipped CRCs,
// version skew).
func FuzzSnapshotDecode(f *testing.F) {
	opts := platform.DeployOptions{Seed: 7, UniverseSize: 1000, Metrics: obs.NewRegistry()}
	d, err := platform.NewDeployment(opts)
	if err != nil {
		f.Fatalf("NewDeployment: %v", err)
	}
	path := f.TempDir() + "/seed.adusnap"
	if _, err := WriteDeployment(path, d, opts); err != nil {
		f.Fatalf("WriteDeployment: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(good)
	f.Add(good[:preludeSize])
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-7])
	f.Add([]byte{})
	f.Add([]byte("ADUSNAP1"))
	flip := func(i int, mask byte) []byte {
		b := append([]byte(nil), good...)
		b[i] ^= mask
		return b
	}
	f.Add(flip(9, 0x01))           // version skew
	f.Add(flip(17, 0xFF))          // meta offset
	f.Add(flip(33, 0x80))          // meta CRC
	f.Add(flip(37, 0x01))          // prelude CRC
	f.Add(flip(pageAlign, 0x55))   // universe payload
	f.Add(flip(len(good)-2, 0x20)) // meta tail
	// Meta offset pointing into the prelude itself.
	b := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(b[16:24], 8)
	f.Add(b)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseFile(data)
		if err != nil {
			return
		}
		// A structurally valid directory must still decode without panicking,
		// whatever the payload bytes say.
		if _, err := decodeSections(data, m); err != nil {
			return
		}
	})
}
