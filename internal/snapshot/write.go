package snapshot

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/audience"
	"repro/internal/catalog"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/targeting"
)

// configHash fingerprints the content-affecting deployment options: the
// fields that change which bits end up in a snapshot. Presentation and
// engine knobs — ExactEstimates (rounder choice), Compressed,
// NoPlanCompiler, Metrics — are deliberately excluded, so one snapshot
// serves e.g. both the rounded and the exact-estimates ablation of the same
// universe; the loader derives those from the requested options.
func configHash(opts platform.DeployOptions) string {
	o := opts.Normalized()
	h := sha256.New()
	fmt.Fprintf(h, "seed %d size %d nolatent %v uniformactivity %v sharded %v\n",
		o.Seed, o.UniverseSize, o.NoLatentFactors, o.UniformActivity, o.ShardSpans != nil)
	for _, s := range o.ShardSpans {
		fmt.Fprintf(h, "span %d %d\n", s.Lo, s.Hi)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// contentHash folds the identity and every section's CRC and size into one
// operator-visible fingerprint. It is recomputable from the directory alone,
// so reporting it from /healthz never pages catalog sections in.
func contentHash(m *fileMeta) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s %s %s %d %d %d\n",
		m.BuilderVersion, m.ConfigHash, m.CatalogHash, m.Seed, m.UniverseSize, m.LocalUsers)
	for _, u := range m.Universes {
		fmt.Fprintf(h, "u %s %d %d %d\n", u.Name, u.Users, u.Len, u.CRC)
	}
	for _, p := range m.Platforms {
		fmt.Fprintf(h, "p %s %d %d %d %d %d\n",
			p.Name, p.Len, p.CRC, len(p.Attrs), len(p.Topics), len(p.Placements))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// encodeUniverse packs a universe's per-user arrays into one section:
// u64 user count, then the cells, factors (u32 LE), tiers, and regions
// arrays, each padded to 8 bytes.
func encodeUniverse(data population.UniverseData) []byte {
	n := len(data.Cells)
	buf := make([]byte, 0, 8+align8(n)+4*n+2*align8(n))
	var w8 [8]byte
	binary.LittleEndian.PutUint64(w8[:], uint64(n))
	buf = append(buf, w8[:]...)
	for _, c := range data.Cells {
		buf = append(buf, byte(c))
	}
	buf = pad8(buf)
	for _, f := range data.Factors {
		binary.LittleEndian.PutUint32(w8[:4], f)
		buf = append(buf, w8[:4]...)
	}
	buf = pad8(buf)
	buf = pad8(append(buf, data.Tiers...))
	buf = pad8(append(buf, data.Regions...))
	return buf
}

// decodeUniverse inverts encodeUniverse, copying the arrays out of the
// section (the universe retains them for the process lifetime; per-user
// state is the one part of a snapshot that must be resident anyway).
func decodeUniverse(sec []byte) (population.UniverseData, error) {
	var zero population.UniverseData
	if len(sec) < 8 {
		return zero, fmt.Errorf("%w: %d-byte universe section", ErrCorrupt, len(sec))
	}
	n64 := binary.LittleEndian.Uint64(sec[0:8])
	if n64 > uint64(len(sec)) { // cheap overflow guard; exact length checked below
		return zero, fmt.Errorf("%w: universe section claims %d users in %d bytes", ErrCorrupt, n64, len(sec))
	}
	n := int(n64)
	want := 8 + align8(n) + align8(4*n) + 2*align8(n)
	if len(sec) != want {
		return zero, fmt.Errorf("%w: universe section is %d bytes, %d users need %d", ErrCorrupt, len(sec), n, want)
	}
	d := population.UniverseData{
		Cells:   make([]population.Cell, n),
		Factors: make([]uint32, n),
		Tiers:   make([]uint8, n),
		Regions: make([]uint8, n),
	}
	off := 8
	for i := 0; i < n; i++ {
		d.Cells[i] = population.Cell(sec[off+i])
	}
	off += align8(n)
	for i := 0; i < n; i++ {
		d.Factors[i] = binary.LittleEndian.Uint32(sec[off+4*i:])
	}
	off += align8(4 * n)
	copy(d.Tiers, sec[off:off+n])
	off += align8(n)
	copy(d.Regions, sec[off:off+n])
	return d, nil
}

func pad8(b []byte) []byte {
	for len(b)%8 != 0 {
		b = append(b, 0)
	}
	return b
}

// align8 rounds up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// sectionWriter streams one page-aligned section to the file, tracking its
// CRC and length so the directory can be assembled without buffering whole
// catalog sections in memory.
type sectionWriter struct {
	w   *bufio.Writer
	off int64 // absolute file offset of the next byte
	crc uint32
	len int64 // bytes written to the open section
}

// beginSection pads to the next page boundary and resets the running CRC.
func (sw *sectionWriter) beginSection() (off int64, err error) {
	for sw.off%pageAlign != 0 {
		if err := sw.w.WriteByte(0); err != nil {
			return 0, err
		}
		sw.off++
	}
	sw.crc = 0
	sw.len = 0
	return sw.off, nil
}

func (sw *sectionWriter) write(b []byte) error {
	if _, err := sw.w.Write(b); err != nil {
		return err
	}
	sw.crc = crc32.Update(sw.crc, castagnoli, b)
	sw.off += int64(len(b))
	sw.len += int64(len(b))
	return nil
}

// WriteDeployment serializes a deployment to path atomically (temp file +
// rename): every universe's per-user arrays and every interface's catalog
// options as compressed blobs, bound to the normalized deployment options
// and the catalog hash so LoadDeployment can refuse anything stale. opts
// must be the options d was built with; the writer cross-checks what it can
// (seed, sizes, spans) and refuses on disagreement. Works on dense,
// compressed, shard (writes only held partitions), and snapshot-backed
// deployments alike.
func WriteDeployment(path string, d *platform.Deployment, opts platform.DeployOptions) (*Info, error) {
	opts = opts.Normalized()
	fbUni := d.Facebook.Universe()
	if got := fbUni.Config().Seed; got != opts.Seed {
		return nil, fmt.Errorf("snapshot: deployment built from seed %d, options say %d", got, opts.Seed)
	}
	if got := fbUni.GlobalSize(); got != opts.UniverseSize {
		return nil, fmt.Errorf("snapshot: deployment universe is %d users, options say %d", got, opts.UniverseSize)
	}
	if err := sameSpans(fbUni.Spans(), opts.ShardSpans); err != nil {
		return nil, err
	}

	m := &fileMeta{
		BuilderVersion: BuilderVersion,
		CreatedUnix:    time.Now().Unix(),
		ConfigHash:     configHash(opts),
		CatalogHash:    platform.CatalogHash(d),
		Seed:           opts.Seed,
		UniverseSize:   opts.UniverseSize,
		LocalUsers:     fbUni.Size(),
		Sharded:        opts.ShardSpans != nil,
	}
	for _, s := range opts.ShardSpans {
		m.ShardSpans = append(m.ShardSpans, [2]int{s.Lo, s.Hi})
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	sw := &sectionWriter{w: bufio.NewWriterSize(f, 1<<20)}
	var prelude [preludeSize]byte
	if err := sw.write(prelude[:]); err != nil {
		return nil, err
	}

	// Universe sections: one per distinct universe, keyed by owner platform.
	for _, uni := range []struct {
		name string
		u    *population.Universe
	}{
		{catalog.PlatformFacebook, fbUni},
		{catalog.PlatformGoogle, d.Google.Universe()},
		{catalog.PlatformLinkedIn, d.LinkedIn.Universe()},
	} {
		off, err := sw.beginSection()
		if err != nil {
			return nil, err
		}
		if err := sw.write(encodeUniverse(uni.u.Data())); err != nil {
			return nil, err
		}
		m.Universes = append(m.Universes, universeSection{
			Name: uni.name, Users: uni.u.Size(), Off: off, Len: sw.len, CRC: sw.crc,
		})
	}

	// Catalog sections: one per interface, each option encoded transiently
	// into a reused buffer — peak memory is one blob, not one catalog.
	var blob []byte
	for _, p := range d.Interfaces() {
		off, err := sw.beginSection()
		if err != nil {
			return nil, err
		}
		sec := platformSection{Name: p.Name(), Off: off}
		writeDim := func(kind targeting.Kind, count int) ([]optionLoc, error) {
			locs := make([]optionLoc, count)
			for i := 0; i < count; i++ {
				c, err := p.OptionCSet(targeting.Ref{Kind: kind, ID: i})
				if err != nil {
					return nil, err
				}
				blob = audience.EncodeCSet(blob[:0], c)
				locs[i] = optionLoc{Off: sw.len, Len: int64(len(blob))}
				if err := sw.write(blob); err != nil {
					return nil, err
				}
			}
			return locs, nil
		}
		if sec.Attrs, err = writeDim(targeting.KindAttribute, len(p.Catalog().Attributes)); err != nil {
			return nil, err
		}
		if sec.Topics, err = writeDim(targeting.KindTopic, len(p.Catalog().Topics)); err != nil {
			return nil, err
		}
		if sec.Placements, err = writeDim(targeting.KindPlacement, len(p.Catalog().Placements)); err != nil {
			return nil, err
		}
		sec.Len, sec.CRC = sw.len, sw.crc
		m.Platforms = append(m.Platforms, sec)
	}

	// Directory tail, then the real prelude.
	m.ContentHash = contentHash(m)
	metaBytes, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	metaOff := sw.off
	if _, err := sw.w.Write(metaBytes); err != nil {
		return nil, err
	}
	if err := sw.w.Flush(); err != nil {
		return nil, err
	}
	copy(prelude[0:8], magic)
	binary.LittleEndian.PutUint32(prelude[8:12], formatVersion)
	binary.LittleEndian.PutUint64(prelude[16:24], uint64(metaOff))
	binary.LittleEndian.PutUint64(prelude[24:32], uint64(len(metaBytes)))
	binary.LittleEndian.PutUint32(prelude[32:36], crc32.Checksum(metaBytes, castagnoli))
	binary.LittleEndian.PutUint32(prelude[36:40], crc32.Checksum(prelude[0:36], castagnoli))
	if _, err := f.WriteAt(prelude[:], 0); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmp)
		return nil, err
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return infoFrom(m, path, metaOff+int64(len(metaBytes))), nil
}

// sameSpans compares two span lists element-wise, distinguishing nil (full
// deployment) from non-nil (sharded, possibly empty).
func sameSpans(a, b []population.Span) error {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return fmt.Errorf("%w: %v vs %v", ErrSpanMismatch, a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%w: span %d is [%d, %d), snapshot has [%d, %d)",
				ErrSpanMismatch, i, b[i].Lo, b[i].Hi, a[i].Lo, a[i].Hi)
		}
	}
	return nil
}
