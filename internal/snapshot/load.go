package snapshot

import (
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/audience"
	"repro/internal/catalog"
	"repro/internal/platform"
	"repro/internal/population"
)

// ReadInfo parses a snapshot's prelude and directory without constructing a
// deployment: what `adauditctl snapshot-info` and service provenance use.
func ReadInfo(path string) (*Info, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	defer closer()
	m, err := parseFile(data)
	if err != nil {
		return nil, err
	}
	return infoFrom(m, path, int64(len(data))), nil
}

// LoadDeployment reconstructs a ready-to-serve deployment from a snapshot.
// want must describe the deployment the caller would otherwise build with
// platform.NewDeployment; the load refuses — with a typed error, never a
// silent substitution — any snapshot whose universe size, shard spans,
// content-affecting options, or catalog hash disagree.
//
// The file is mmap'd and stays mapped for the life of the process: every
// catalog option is served through an audience.CSetView whose container
// payloads alias the mapped pages. Only the prelude, directory, and universe
// sections are read eagerly; catalog bytes fault in on first touch.
func LoadDeployment(path string, want platform.DeployOptions) (*platform.Deployment, *Info, error) {
	want = want.Normalized()
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, nil, err
	}
	// The mapping must outlive the returned deployment (its views alias the
	// pages), so the closer is deliberately dropped: the mapping lives until
	// process exit, like any other loaded read-only segment.
	_ = closer
	m, err := parseFile(data)
	if err != nil {
		return nil, nil, err
	}
	if m.UniverseSize != want.UniverseSize {
		return nil, nil, fmt.Errorf("%w: snapshot holds %d users, deployment wants %d",
			ErrUniverseMismatch, m.UniverseSize, want.UniverseSize)
	}
	if err := sameSpans(m.spans(), want.ShardSpans); err != nil {
		return nil, nil, err
	}
	if got := configHash(want); got != m.ConfigHash {
		return nil, nil, fmt.Errorf("%w: options hash %.12s, snapshot built from %.12s",
			ErrConfigMismatch, got, m.ConfigHash)
	}
	if got := contentHash(m); got != m.ContentHash {
		return nil, nil, fmt.Errorf("%w: content hash does not cover the directory", ErrCorrupt)
	}
	pre, err := decodeSections(data, m)
	if err != nil {
		return nil, nil, err
	}
	d, err := platform.NewDeploymentFrom(want, pre)
	if err != nil {
		return nil, nil, err
	}
	// The catalogs were re-derived by NewDeploymentFrom from want's seed and
	// current code; if they hash differently from what the snapshot's blobs
	// were built against, the views would answer for the wrong options.
	if got := platform.CatalogHash(d); got != m.CatalogHash {
		return nil, nil, fmt.Errorf("%w: current code derives %.12s, snapshot built against %.12s",
			ErrCatalogMismatch, got, m.CatalogHash)
	}
	return d, infoFrom(m, path, int64(len(data))), nil
}

// decodeSections turns a parsed snapshot into platform.Prebuilt: universe
// sections are CRC-verified and copied out (they are read in full anyway);
// catalog sections are wrapped in views without touching their payload
// bytes — DecodeCSetView's structural validation bounds every later access,
// and VerifyFile covers their CRCs offline.
func decodeSections(data []byte, m *fileMeta) (*platform.Prebuilt, error) {
	pre := &platform.Prebuilt{
		Universes: make(map[string]population.UniverseData, len(m.Universes)),
		Views:     make(map[string]*platform.OptionViews, len(m.Platforms)),
	}
	for _, u := range m.Universes {
		if _, dup := pre.Universes[u.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate universe section %q", ErrCorrupt, u.Name)
		}
		sec := data[u.Off : u.Off+u.Len]
		if got := crc32.Checksum(sec, castagnoli); got != u.CRC {
			return nil, fmt.Errorf("%w: universe %s CRC mismatch", ErrCorrupt, u.Name)
		}
		ud, err := decodeUniverse(sec)
		if err != nil {
			return nil, fmt.Errorf("universe %s: %w", u.Name, err)
		}
		if len(ud.Cells) != u.Users || u.Users != m.LocalUsers {
			return nil, fmt.Errorf("%w: universe %s holds %d users, snapshot holds %d",
				ErrCorrupt, u.Name, len(ud.Cells), m.LocalUsers)
		}
		pre.Universes[u.Name] = ud
	}
	for _, want := range []string{catalog.PlatformFacebook, catalog.PlatformGoogle, catalog.PlatformLinkedIn} {
		if _, ok := pre.Universes[want]; !ok {
			return nil, fmt.Errorf("%w: missing universe section %q", ErrCorrupt, want)
		}
	}
	for i := range m.Platforms {
		p := &m.Platforms[i]
		if _, dup := pre.Views[p.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate platform section %q", ErrCorrupt, p.Name)
		}
		sec := data[p.Off : p.Off+p.Len]
		views := &platform.OptionViews{}
		var err error
		if views.Attributes, err = decodeDim(sec, p.Attrs, m.LocalUsers); err != nil {
			return nil, fmt.Errorf("platform %s attrs: %w", p.Name, err)
		}
		if views.Topics, err = decodeDim(sec, p.Topics, m.LocalUsers); err != nil {
			return nil, fmt.Errorf("platform %s topics: %w", p.Name, err)
		}
		if views.Placements, err = decodeDim(sec, p.Placements, m.LocalUsers); err != nil {
			return nil, fmt.Errorf("platform %s placements: %w", p.Name, err)
		}
		pre.Views[p.Name] = views
	}
	for _, want := range []string{
		catalog.PlatformFacebookRestricted, catalog.PlatformFacebook,
		catalog.PlatformGoogle, catalog.PlatformLinkedIn,
	} {
		if _, ok := pre.Views[want]; !ok {
			return nil, fmt.Errorf("%w: missing platform section %q", ErrCorrupt, want)
		}
	}
	return pre, nil
}

// decodeDim builds one catalog dimension's views over a section's bytes.
func decodeDim(sec []byte, locs []optionLoc, users int) ([]*audience.CSetView, error) {
	views := make([]*audience.CSetView, len(locs))
	for i, loc := range locs {
		v, err := audience.DecodeCSetView(sec[loc.Off : loc.Off+loc.Len])
		if err != nil {
			return nil, fmt.Errorf("%w: option %d: %v", ErrCorrupt, i, err)
		}
		if v.Len() != users {
			return nil, fmt.Errorf("%w: option %d spans %d users, snapshot holds %d", ErrCorrupt, i, v.Len(), users)
		}
		views[i] = v
	}
	return views, nil
}

// VerifyFile checks every byte of a snapshot: prelude and directory (as any
// load does) plus the CRC of every section, including the catalog sections
// that loads deliberately skip. Intended for offline checks and tests.
func VerifyFile(path string) (*Info, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	defer closer()
	m, err := parseFile(data)
	if err != nil {
		return nil, err
	}
	if got := contentHash(m); got != m.ContentHash {
		return nil, fmt.Errorf("%w: content hash does not cover the directory", ErrCorrupt)
	}
	for _, u := range m.Universes {
		if got := crc32.Checksum(data[u.Off:u.Off+u.Len], castagnoli); got != u.CRC {
			return nil, fmt.Errorf("%w: universe %s CRC mismatch", ErrCorrupt, u.Name)
		}
	}
	for i := range m.Platforms {
		p := &m.Platforms[i]
		if got := crc32.Checksum(data[p.Off:p.Off+p.Len], castagnoli); got != p.CRC {
			return nil, fmt.Errorf("%w: platform %s CRC mismatch", ErrCorrupt, p.Name)
		}
	}
	if _, err := decodeSections(data, m); err != nil {
		return nil, err
	}
	return infoFrom(m, path, int64(len(data))), nil
}

// mapFile maps path read-only. On platforms without mmap support it falls
// back to reading the file into memory; either way the returned closer
// releases the resources (loads drop it on purpose — see LoadDeployment).
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		return nil, func() {}, nil
	}
	return mapRO(f, st.Size())
}
