// Package snapshot persists a fully built deployment's universe draws and
// compressed catalog to one versioned, CRC-checked, page-aligned file, and
// reconstructs a ready-to-serve deployment from it by mmapping the file and
// wrapping every catalog option in a zero-copy audience.CSetView.
//
// Building a deployment is O(universe × catalog) hash draws — minutes of CPU
// at the 2^22+ scales the benchmarks run — repeated on every platformd boot,
// shard failover, and jobs-service restart. A snapshot moves that cost to a
// single build: loading parses a small directory, reconstructs the universes
// from their persisted per-user arrays (population.FromData, no hashing),
// and serves every catalog query through views whose container payloads
// alias the mapped pages. Boot cost is O(directory), steady RSS is the
// kernel page cache (shared across shard processes on one host), and cold
// containers fault in lazily on first touch.
//
// File layout (ADUSNAP1, all integers little-endian):
//
//	prelude (64 bytes, at offset 0):
//	  [0:8)   magic "ADUSNAP1"
//	  [8:12)  u32 format version (1)
//	  [12:16) u32 reserved (0)
//	  [16:24) u64 meta offset   — the JSON directory sits at the END of
//	  [24:32) u64 meta length     the file so sections stream out first
//	  [32:36) u32 meta CRC-32C
//	  [36:40) u32 prelude CRC-32C over bytes [0:36)
//	  [40:64) zero
//	sections (each page-aligned, 4096):
//	  one universe section per platform universe: the packed per-user
//	  cells/factors/tiers/regions arrays, CRC-checked at load (they are
//	  read in full anyway);
//	  one catalog section per interface: every option's EncodeCSet blob,
//	  8-aligned, never copied at load — the section CRC is stored but
//	  verified only by VerifyFile so loading does not page the catalog in.
//	meta (JSON, at the recorded offset):
//	  builder version, creation time, config/catalog/content hashes,
//	  universe size + seed + shard spans, and per-section directories
//	  (option ID → blob offset/length within its section).
//
// Staleness is rejected, never silently served: the prelude pins format and
// CRC integrity, BuilderVersion pins the generator code, ConfigHash pins the
// content-affecting DeployOptions, UniverseSize/ShardSpans pin the ID space,
// and CatalogHash — computed over option model parameters, which are
// seed-derived — must match the catalog the *current* code derives for the
// requested options, so both seed skew and catalog-code drift fail loudly
// with typed errors.
package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/population"
)

// Format constants.
const (
	magic         = "ADUSNAP1"
	formatVersion = 1
	preludeSize   = 64
	pageAlign     = 4096

	// BuilderVersion names the generation semantics baked into this build:
	// the universe draw functions, catalog generators, and CSet encoding.
	// Loads require strict equality, so bump it whenever any of those
	// change in a way that alters bits.
	BuilderVersion = "adusnap-builder/1"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed load failures. Mismatch errors mean the file is intact but built
// for a different deployment; corruption errors mean the bytes are wrong.
var (
	ErrNotSnapshot      = errors.New("snapshot: not a snapshot file")
	ErrVersion          = errors.New("snapshot: snapshot version not supported by this build")
	ErrTruncated        = errors.New("snapshot: truncated snapshot")
	ErrCorrupt          = errors.New("snapshot: corrupt snapshot")
	ErrConfigMismatch   = errors.New("snapshot: deployment options do not match snapshot")
	ErrUniverseMismatch = errors.New("snapshot: universe size does not match snapshot")
	ErrSpanMismatch     = errors.New("snapshot: shard spans do not match snapshot")
	ErrCatalogMismatch  = errors.New("snapshot: catalog hash does not match snapshot")
)

// optionLoc locates one catalog option's encoded CSet blob within its
// platform section (offsets relative to the section start).
type optionLoc struct {
	Off int64 `json:"o"`
	Len int64 `json:"l"`
}

// universeSection locates one universe's packed per-user arrays.
type universeSection struct {
	Name  string `json:"name"`
	Users int    `json:"users"`
	Off   int64  `json:"off"`
	Len   int64  `json:"len"`
	CRC   uint32 `json:"crc"`
}

// platformSection locates one interface's catalog blobs and their directory.
type platformSection struct {
	Name       string      `json:"name"`
	Off        int64       `json:"off"`
	Len        int64       `json:"len"`
	CRC        uint32      `json:"crc"`
	Attrs      []optionLoc `json:"attrs"`
	Topics     []optionLoc `json:"topics,omitempty"`
	Placements []optionLoc `json:"placements,omitempty"`
}

// fileMeta is the JSON directory at the tail of the file.
type fileMeta struct {
	BuilderVersion string            `json:"builder_version"`
	CreatedUnix    int64             `json:"created_unix"`
	ConfigHash     string            `json:"config_hash"`
	CatalogHash    string            `json:"catalog_hash"`
	ContentHash    string            `json:"content_hash"`
	Seed           uint64            `json:"seed"`
	UniverseSize   int               `json:"universe_size"`
	LocalUsers     int               `json:"local_users"`
	Sharded        bool              `json:"sharded"`
	ShardSpans     [][2]int          `json:"shard_spans,omitempty"`
	Universes      []universeSection `json:"universes"`
	Platforms      []platformSection `json:"platforms"`
}

// spans converts the wire form back to population spans (nil when the
// snapshot holds a full, unsharded deployment).
func (m *fileMeta) spans() []population.Span {
	if !m.Sharded {
		return nil
	}
	out := make([]population.Span, len(m.ShardSpans))
	for i, s := range m.ShardSpans {
		out[i] = population.Span{Lo: s[0], Hi: s[1]}
	}
	return out
}

// Info describes a parsed snapshot: what operators see in /healthz and
// /debug/provenance, and what tests assert against.
type Info struct {
	Path         string
	FileSize     int64
	CreatedAt    time.Time
	ConfigHash   string
	CatalogHash  string
	ContentHash  string
	Seed         uint64
	UniverseSize int
	LocalUsers   int
	Sharded      bool
	Spans        []population.Span
}

// infoFrom assembles the public Info from a parsed directory.
func infoFrom(m *fileMeta, path string, size int64) *Info {
	return &Info{
		Path:         path,
		FileSize:     size,
		CreatedAt:    time.Unix(m.CreatedUnix, 0).UTC(),
		ConfigHash:   m.ConfigHash,
		CatalogHash:  m.CatalogHash,
		ContentHash:  m.ContentHash,
		Seed:         m.Seed,
		UniverseSize: m.UniverseSize,
		LocalUsers:   m.LocalUsers,
		Sharded:      m.Sharded,
		Spans:        m.spans(),
	}
}

// parseFile validates the prelude and directory of an in-memory (typically
// mmap'd) snapshot: magic, format version, both CRCs, JSON shape, builder
// version, and every section's bounds. It reads only the prelude and the
// meta tail — no section payload is touched, so parsing a cold file faults
// in a handful of pages. Corruption never panics; it surfaces as a typed
// error (FuzzSnapshotDecode drives this with arbitrary bytes).
func parseFile(data []byte) (*fileMeta, error) {
	if len(data) < preludeSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte prelude", ErrTruncated, len(data), preludeSize)
	}
	if string(data[0:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotSnapshot, data[0:8])
	}
	if got := crc32.Checksum(data[0:36], castagnoli); got != binary.LittleEndian.Uint32(data[36:40]) {
		return nil, fmt.Errorf("%w: prelude CRC mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != formatVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrVersion, v, formatVersion)
	}
	metaOff := binary.LittleEndian.Uint64(data[16:24])
	metaLen := binary.LittleEndian.Uint64(data[24:32])
	if metaOff < preludeSize || metaLen == 0 || metaOff+metaLen < metaOff || metaOff+metaLen > uint64(len(data)) {
		return nil, fmt.Errorf("%w: meta [%d, %d) outside %d-byte file", ErrTruncated, metaOff, metaOff+metaLen, len(data))
	}
	metaBytes := data[metaOff : metaOff+metaLen]
	if got := crc32.Checksum(metaBytes, castagnoli); got != binary.LittleEndian.Uint32(data[32:36]) {
		return nil, fmt.Errorf("%w: meta CRC mismatch", ErrCorrupt)
	}
	var m fileMeta
	if err := json.Unmarshal(metaBytes, &m); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrCorrupt, err)
	}
	if m.BuilderVersion != BuilderVersion {
		return nil, fmt.Errorf("%w: built by %q, this build is %q", ErrVersion, m.BuilderVersion, BuilderVersion)
	}
	if m.UniverseSize <= 0 || m.LocalUsers < 0 || m.LocalUsers > m.UniverseSize {
		return nil, fmt.Errorf("%w: universe %d with %d local users", ErrCorrupt, m.UniverseSize, m.LocalUsers)
	}
	sectionEnd := int64(preludeSize)
	checkSection := func(what string, off, length int64) error {
		if off < int64(preludeSize) || length < 0 || off%pageAlign != 0 ||
			off+length < off || uint64(off+length) > metaOff {
			return fmt.Errorf("%w: %s section [%d, %d) invalid", ErrCorrupt, what, off, off+length)
		}
		if off < sectionEnd {
			return fmt.Errorf("%w: %s section [%d, %d) overlaps a previous section", ErrCorrupt, what, off, off+length)
		}
		sectionEnd = off + length
		return nil
	}
	for i := range m.Universes {
		u := &m.Universes[i]
		if err := checkSection("universe "+u.Name, u.Off, u.Len); err != nil {
			return nil, err
		}
		if u.Users < 0 || u.Users > m.LocalUsers {
			return nil, fmt.Errorf("%w: universe %s holds %d users", ErrCorrupt, u.Name, u.Users)
		}
	}
	for i := range m.Platforms {
		p := &m.Platforms[i]
		if err := checkSection("platform "+p.Name, p.Off, p.Len); err != nil {
			return nil, err
		}
		for _, dim := range [][]optionLoc{p.Attrs, p.Topics, p.Placements} {
			for _, loc := range dim {
				if loc.Off < 0 || loc.Len <= 0 || loc.Off%8 != 0 ||
					loc.Off+loc.Len < loc.Off || loc.Off+loc.Len > p.Len {
					return nil, fmt.Errorf("%w: platform %s option blob [%d, %d) outside its %d-byte section",
						ErrCorrupt, p.Name, loc.Off, loc.Off+loc.Len, p.Len)
				}
			}
		}
	}
	if err := validateSpanShape(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// validateSpanShape sanity-checks the stored spans so later comparisons and
// FromData never see garbage shapes.
func validateSpanShape(m *fileMeta) error {
	if !m.Sharded {
		if len(m.ShardSpans) != 0 {
			return fmt.Errorf("%w: unsharded snapshot carries %d spans", ErrCorrupt, len(m.ShardSpans))
		}
		if m.LocalUsers != m.UniverseSize {
			return fmt.Errorf("%w: full snapshot holds %d of %d users", ErrCorrupt, m.LocalUsers, m.UniverseSize)
		}
		return nil
	}
	total, prev := 0, 0
	for i, s := range m.ShardSpans {
		if s[0] < prev || s[1] <= s[0] || s[1] > m.UniverseSize {
			return fmt.Errorf("%w: span %d [%d, %d) not ascending within the universe", ErrCorrupt, i, s[0], s[1])
		}
		prev = s[1]
		total += s[1] - s[0]
	}
	if total != m.LocalUsers {
		return fmt.Errorf("%w: spans cover %d users, snapshot holds %d", ErrCorrupt, total, m.LocalUsers)
	}
	return nil
}
