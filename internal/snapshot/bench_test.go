package snapshot

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// BenchmarkSnapshotLoad measures boot-to-first-query from a snapshot: parse,
// universe reconstruction, view wiring, and one measurement batch. The
// snapshot is written once in setup; every iteration re-loads it cold (the
// page cache stays warm, which is the steady-state a restarting shard sees).
func BenchmarkSnapshotLoad(b *testing.B) {
	opts := platform.DeployOptions{Seed: 11, UniverseSize: 1 << 15, Metrics: obs.NewRegistry()}
	d, err := platform.NewDeployment(opts)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.adusnap")
	if _, err := WriteDeployment(path, d, opts); err != nil {
		b.Fatal(err)
	}
	reqs := []platform.EstimateRequest{{Spec: targeting.And(targeting.Attr(0), targeting.Attr(1))}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := opts
		o.Metrics = obs.NewRegistry()
		dep, _, err := LoadDeployment(path, o)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dep.Facebook.MeasureMany(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeploymentBuild is the baseline BenchmarkSnapshotLoad displaces:
// the same deployment built from hash draws, to first query.
func BenchmarkDeploymentBuild(b *testing.B) {
	reqs := []platform.EstimateRequest{{Spec: targeting.And(targeting.Attr(0), targeting.Attr(1))}}
	for i := 0; i < b.N; i++ {
		dep, err := platform.NewDeployment(platform.DeployOptions{
			Seed: 11, UniverseSize: 1 << 15, Metrics: obs.NewRegistry(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dep.Facebook.MeasureMany(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReport is one child process's measurement, printed as a single JSON
// line the parent harness scrapes.
type benchReport struct {
	Mode         string  `json:"mode"`
	UniverseSize int     `json:"universe_size"`
	ReadyMS      float64 `json:"ready_ms"`
	FirstQueryMS float64 `json:"first_query_ms"`
	VmRSSKB      int64   `json:"vmrss_kb"`
	SnapshotMB   float64 `json:"snapshot_mb,omitempty"`
}

const benchMarker = "SNAP_BENCH_REPORT "

// vmRSSKB reads the process's resident set from /proc/self/status; 0 when
// the platform does not expose it.
func vmRSSKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "VmRSS:"); ok {
			kb, _ := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			return kb
		}
	}
	return 0
}

// benchFirstQuery is the representative first batch a just-booted server
// answers: a handful of catalog compositions on Facebook.
func benchFirstQuery(d *platform.Deployment) error {
	reqs := []platform.EstimateRequest{
		{Spec: targeting.Attr(0)},
		{Spec: targeting.And(targeting.Attr(1), targeting.Attr(2))},
		{Spec: targeting.And(targeting.Attr(3), targeting.Attr(4))},
	}
	_, err := d.Facebook.MeasureMany(reqs)
	return err
}

// TestSnapshotBenchChild is the harness's re-exec target; it only runs when
// the parent sets SNAP_BENCH_CHILD, so a fresh process pays the honest boot
// cost (heap, page cache mappings) the parent then records.
func TestSnapshotBenchChild(t *testing.T) {
	mode := os.Getenv("SNAP_BENCH_CHILD")
	if mode == "" {
		t.Skip("harness child: set SNAP_BENCH_CHILD")
	}
	size, err := strconv.Atoi(os.Getenv("SNAP_BENCH_SIZE"))
	if err != nil {
		t.Fatalf("SNAP_BENCH_SIZE: %v", err)
	}
	path := os.Getenv("SNAP_BENCH_PATH")
	opts := platform.DeployOptions{Seed: 11, UniverseSize: size, Metrics: obs.NewRegistry()}

	var d *platform.Deployment
	rep := benchReport{Mode: mode, UniverseSize: size}
	start := time.Now()
	switch mode {
	case "build":
		d, err = platform.NewDeployment(opts)
		if err != nil {
			t.Fatal(err)
		}
		// Ready-to-serve means warmed: platformd materializes every option
		// audience before taking traffic (-warm), else early queries pay the
		// materialization lazily. Snapshot loads skip this entirely (Warm is
		// a no-op on a view-backed interface).
		for _, p := range d.Interfaces() {
			p.Warm()
		}
		rep.ReadyMS = float64(time.Since(start).Microseconds()) / 1e3
		if _, err := WriteDeployment(path, d, opts); err != nil {
			t.Fatal(err)
		}
		if st, err := os.Stat(path); err == nil {
			rep.SnapshotMB = float64(st.Size()) / (1 << 20)
		}
	case "load":
		d, _, err = LoadDeployment(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		rep.ReadyMS = float64(time.Since(start).Microseconds()) / 1e3
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	qStart := time.Now()
	if err := benchFirstQuery(d); err != nil {
		t.Fatal(err)
	}
	rep.FirstQueryMS = float64(time.Since(qStart).Microseconds()) / 1e3
	rep.VmRSSKB = vmRSSKB()
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(benchMarker + string(out))
}

// runBenchChild re-execs the test binary for one honest fresh-process
// measurement and scrapes its report line.
func runBenchChild(t *testing.T, mode, path string, size int) benchReport {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestSnapshotBenchChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SNAP_BENCH_CHILD="+mode,
		"SNAP_BENCH_SIZE="+strconv.Itoa(size),
		"SNAP_BENCH_PATH="+path,
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child %s: %v\n%s", mode, err, out)
	}
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), benchMarker); ok {
			var rep benchReport
			if err := json.Unmarshal([]byte(rest), &rep); err != nil {
				t.Fatalf("child %s report: %v", mode, err)
			}
			return rep
		}
	}
	t.Fatalf("child %s produced no report:\n%s", mode, out)
	return benchReport{}
}

// TestSnapshotBench10 is the PR's acceptance harness: gated behind
// SNAP_BENCH=1 because it builds a full deployment (minutes at the default
// 2^22). It measures boot-to-first-query and RSS for a built vs a
// snapshot-loaded deployment in separate fresh processes and writes
// results/BENCH_10.json (override with SNAP_BENCH_OUT).
//
//	SNAP_BENCH=1 go test ./internal/snapshot/ -run TestSnapshotBench10 -v -timeout 2h
func TestSnapshotBench10(t *testing.T) {
	if os.Getenv("SNAP_BENCH") == "" {
		t.Skip("set SNAP_BENCH=1 to run the boot benchmark harness")
	}
	size := 1 << 22
	if s := os.Getenv("SNAP_BENCH_SIZE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("SNAP_BENCH_SIZE: %v", err)
		}
		size = v
	}
	path := filepath.Join(t.TempDir(), "bench10.adusnap")
	build := runBenchChild(t, "build", path, size)
	load := runBenchChild(t, "load", path, size)

	speedup := build.ReadyMS / load.ReadyMS
	result := map[string]any{
		"bench":       "snapshot_boot_to_first_query",
		"universe":    size,
		"catalog":     catalog.PlatformFacebook + "+" + catalog.PlatformGoogle + "+" + catalog.PlatformLinkedIn,
		"build":       build,
		"load":        load,
		"speedup":     speedup,
		"rss_ratio":   float64(load.VmRSSKB) / float64(build.VmRSSKB),
		"generated":   time.Now().UTC().Format(time.RFC3339),
		"go_max_proc": os.Getenv("GOMAXPROCS"),
	}
	out := os.Getenv("SNAP_BENCH_OUT")
	if out == "" {
		out = filepath.Join("..", "..", "results", "BENCH_10.json")
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		t.Fatal(err)
	}
	enc, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("build ready %.1fms rss %dKB; load ready %.1fms rss %dKB; speedup %.1fx",
		build.ReadyMS, build.VmRSSKB, load.ReadyMS, load.VmRSSKB, speedup)
	if speedup < 10 {
		t.Errorf("snapshot speedup %.1fx, want >= 10x", speedup)
	}
	if load.VmRSSKB > build.VmRSSKB {
		t.Errorf("snapshot RSS %dKB exceeds built RSS %dKB", load.VmRSSKB, build.VmRSSKB)
	}
}
