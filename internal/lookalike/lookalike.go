// Package lookalike implements lookalike-audience expansion (paper §2.1):
// given a seed audience (a PII-match or tracking-pixel audience), the
// platform finds the users most similar to the seed and builds a larger
// audience from them ("Lookalike Audiences" on Facebook, "similar
// audiences" on Google, "Lookalike Audiences" on LinkedIn).
//
// Facebook's restricted interface replaces lookalikes with "Special Ad
// Audiences ... adjusted to comply with the audience selection restrictions"
// (paper §2.2) — modelled here as the same expansion with the demographic
// similarity terms removed. Whether that adjustment actually prevents
// demographic skew from propagating is exactly the kind of question the
// paper's methodology can answer; the lookalike experiment in
// internal/experiments measures it.
//
// Similarity is a naive-Bayes-style score over the generative features the
// universe exposes: which latent interest factors a user holds, their
// demographic cell, and their activity tier. Seed-overrepresented features
// get positive log-likelihood-ratio weights; candidates are ranked and the
// top fraction forms the audience.
package lookalike

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/audience"
	"repro/internal/population"
)

// Mode selects the expansion flavour.
type Mode int

// Modes.
const (
	// Standard uses every feature, including demographics — the normal
	// lookalike product.
	Standard Mode = iota
	// SpecialAd drops the demographic terms, as Facebook describes Special
	// Ad Audiences for restricted campaigns.
	SpecialAd
)

// String names the mode.
func (m Mode) String() string {
	if m == SpecialAd {
		return "special-ad"
	}
	return "lookalike"
}

// Config parameterizes an expansion.
type Config struct {
	// Ratio is the output size as a fraction of the universe (Facebook
	// offers 1–10 %). Must be in (0, 0.5].
	Ratio float64
	// Mode selects standard or special-ad expansion.
	Mode Mode
	// MinSeed is the smallest usable seed audience (Facebook requires 100
	// matched users). Zero selects 20 (simulated users).
	MinSeed int
}

// Errors.
var (
	ErrSeedTooSmall = errors.New("lookalike: seed audience too small")
	ErrBadRatio     = errors.New("lookalike: ratio must be in (0, 0.5]")
)

// smoothedRatio returns log((a+eps)/(b+eps)), the additive-smoothed
// log-likelihood ratio of a feature's seed vs population prevalence.
func smoothedRatio(seedRate, popRate float64) float64 {
	const eps = 1e-3
	return math.Log((seedRate + eps) / (popRate + eps))
}

// profile holds the learned seed-vs-population weights.
type profile struct {
	factor   []float64                    // per latent factor
	cell     [population.NumCells]float64 // per demographic cell
	activity [population.ActivityTiers]float64
}

// learn fits the profile from the seed set.
func learn(uni *population.Universe, seed *audience.Set, mode Mode) profile {
	n := uni.Size()
	seedN := seed.Count()
	numFactors := uni.NumFactors()

	var seedFactor = make([]int, numFactors)
	var popFactor = make([]int, numFactors)
	var seedCell [population.NumCells]int
	var seedAct [population.ActivityTiers]int
	for i := 0; i < n; i++ {
		inSeed := seed.Contains(i)
		for f := 0; f < numFactors; f++ {
			if uni.HasFactor(i, f) {
				popFactor[f]++
				if inSeed {
					seedFactor[f]++
				}
			}
		}
		if inSeed {
			seedCell[uni.CellOfUser(i)]++
			seedAct[uni.ActivityTier(i)]++
		}
	}

	p := profile{factor: make([]float64, numFactors)}
	for f := 0; f < numFactors; f++ {
		p.factor[f] = smoothedRatio(
			float64(seedFactor[f])/float64(seedN),
			float64(popFactor[f])/float64(n),
		)
	}
	cellCounts := uni.CellCounts()
	for c := 0; c < population.NumCells; c++ {
		w := smoothedRatio(
			float64(seedCell[c])/float64(seedN),
			float64(cellCounts[c])/float64(n),
		)
		if mode == SpecialAd {
			// "Adjusted to comply": the expansion may not use demographic
			// similarity.
			w = 0
		}
		p.cell[c] = w
	}
	for t := 0; t < population.ActivityTiers; t++ {
		p.activity[t] = smoothedRatio(
			float64(seedAct[t])/float64(seedN),
			1.0/population.ActivityTiers,
		)
	}
	return p
}

// score ranks a candidate against the profile.
func (p profile) score(uni *population.Universe, i int) float64 {
	s := p.cell[uni.CellOfUser(i)] + p.activity[uni.ActivityTier(i)]
	for f := range p.factor {
		if uni.HasFactor(i, f) {
			s += p.factor[f]
		}
	}
	return s
}

// Expand builds a lookalike audience from the seed. The seed's members are
// excluded from the output, as on the real platforms. Expansion is
// deterministic: ties break by user index.
func Expand(uni *population.Universe, seed *audience.Set, cfg Config) (*audience.Set, error) {
	if cfg.Ratio <= 0 || cfg.Ratio > 0.5 {
		return nil, fmt.Errorf("%w: %v", ErrBadRatio, cfg.Ratio)
	}
	minSeed := cfg.MinSeed
	if minSeed == 0 {
		minSeed = 20
	}
	if seed.Len() != uni.Size() {
		return nil, errors.New("lookalike: seed set universe mismatch")
	}
	if seed.Count() < minSeed {
		return nil, fmt.Errorf("%w: %d members, need %d", ErrSeedTooSmall, seed.Count(), minSeed)
	}

	prof := learn(uni, seed, cfg.Mode)
	target := int(float64(uni.Size()) * cfg.Ratio)
	if target < 1 {
		target = 1
	}

	type cand struct {
		idx   int
		score float64
	}
	cands := make([]cand, 0, uni.Size()-seed.Count())
	for i := 0; i < uni.Size(); i++ {
		if seed.Contains(i) {
			continue
		}
		cands = append(cands, cand{idx: i, score: prof.score(uni, i)})
	}
	if target > len(cands) {
		target = len(cands)
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].idx < cands[b].idx
	})
	out := audience.New(uni.Size())
	for _, c := range cands[:target] {
		out.Add(c.idx)
	}
	return out, nil
}
