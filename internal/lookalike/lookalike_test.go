package lookalike

import (
	"errors"
	"math"
	"testing"

	"repro/internal/audience"
	"repro/internal/population"
)

// testUniverse builds a universe with one strongly male-skewed factor.
func testUniverse(t *testing.T) *population.Universe {
	t.Helper()
	factors := []population.FactorModel{
		{Rate: 0.10, GenderLoad: 2.0}, // male-skewed interest
		{Rate: 0.10, GenderLoad: -2.0},
		{Rate: 0.10},
	}
	u, err := population.New(population.Config{
		Seed:          77,
		Size:          40000,
		MaleShare:     0.5,
		AgeShare:      [population.NumAgeRanges]float64{0.25, 0.25, 0.25, 0.25},
		Factors:       factors,
		ActivitySigma: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// factorSeed returns the set of users holding factor f.
func factorSeed(u *population.Universe, f int) *audience.Set {
	return audience.NewFromFunc(u.Size(), func(i int) bool { return u.HasFactor(i, f) })
}

// genderRatio computes the male/female rate ratio of a set.
func genderRatio(u *population.Universe, s *audience.Set) float64 {
	m := float64(audience.CountAnd(s, u.GenderSet(population.Male))) / float64(u.GenderSet(population.Male).Count())
	f := float64(audience.CountAnd(s, u.GenderSet(population.Female))) / float64(u.GenderSet(population.Female).Count())
	return m / f
}

func TestExpandBasics(t *testing.T) {
	u := testUniverse(t)
	seed := factorSeed(u, 0)
	out, err := Expand(u, seed, Config{Ratio: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	want := int(float64(u.Size()) * 0.05)
	if got := out.Count(); got != want {
		t.Fatalf("lookalike size %d, want %d", got, want)
	}
	if audience.CountAnd(out, seed) != 0 {
		t.Fatal("lookalike must exclude seed members")
	}
}

func TestExpandDeterministic(t *testing.T) {
	u := testUniverse(t)
	seed := factorSeed(u, 0)
	a, err := Expand(u, seed, Config{Ratio: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(u, seed, Config{Ratio: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if !audience.Equal(a, b) {
		t.Fatal("expansion is not deterministic")
	}
}

func TestExpandFindsSimilarUsers(t *testing.T) {
	// A lookalike of factor-0 holders should be enriched in factor 0 far
	// beyond the population rate.
	u := testUniverse(t)
	seed := factorSeed(u, 0)
	out, err := Expand(u, seed, Config{Ratio: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	popRate := float64(seed.Count()) / float64(u.Size())
	// Lookalikes exclude seed members (the factor holders themselves), so
	// enrichment shows up through correlated features; with demographics in
	// scope the male share must rise instead.
	maleShare := float64(audience.CountAnd(out, u.GenderSet(population.Male))) / float64(out.Count())
	if maleShare < 0.6 {
		t.Fatalf("lookalike male share %.2f; seed factor is strongly male-skewed (pop rate %.2f)", maleShare, popRate)
	}
}

func TestStandardPropagatesSkewMoreThanSpecialAd(t *testing.T) {
	// The headline behaviour: a standard lookalike of a male-skewed seed is
	// strongly male-skewed; the special-ad variant (no demographic terms)
	// is less skewed but — because interests correlate with gender — not
	// neutral.
	u := testUniverse(t)
	seed := factorSeed(u, 0)
	seedRatio := genderRatio(u, seed)
	if seedRatio < 3 {
		t.Fatalf("seed ratio %v, expected strongly male-skewed", seedRatio)
	}
	std, err := Expand(u, seed, Config{Ratio: 0.05, Mode: Standard})
	if err != nil {
		t.Fatal(err)
	}
	special, err := Expand(u, seed, Config{Ratio: 0.05, Mode: SpecialAd})
	if err != nil {
		t.Fatal(err)
	}
	stdRatio := genderRatio(u, std)
	specialRatio := genderRatio(u, special)
	if stdRatio <= specialRatio {
		t.Fatalf("standard ratio %v not above special-ad ratio %v", stdRatio, specialRatio)
	}
	if stdRatio < 1.25 {
		t.Fatalf("standard lookalike ratio %v did not propagate skew", stdRatio)
	}
}

func TestSeedTooSmall(t *testing.T) {
	u := testUniverse(t)
	tiny := audience.New(u.Size())
	for i := 0; i < 5; i++ {
		tiny.Add(i)
	}
	_, err := Expand(u, tiny, Config{Ratio: 0.05})
	if !errors.Is(err, ErrSeedTooSmall) {
		t.Fatalf("want ErrSeedTooSmall, got %v", err)
	}
}

func TestBadRatio(t *testing.T) {
	u := testUniverse(t)
	seed := factorSeed(u, 0)
	for _, r := range []float64{0, -0.1, 0.9} {
		if _, err := Expand(u, seed, Config{Ratio: r}); !errors.Is(err, ErrBadRatio) {
			t.Fatalf("ratio %v: want ErrBadRatio, got %v", r, err)
		}
	}
}

func TestUniverseMismatch(t *testing.T) {
	u := testUniverse(t)
	wrong := audience.New(10)
	if _, err := Expand(u, wrong, Config{Ratio: 0.05}); err == nil {
		t.Fatal("mismatched universe accepted")
	}
}

func TestRatioScaling(t *testing.T) {
	u := testUniverse(t)
	seed := factorSeed(u, 0)
	small, err := Expand(u, seed, Config{Ratio: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Expand(u, seed, Config{Ratio: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if small.Count() >= large.Count() {
		t.Fatal("larger ratio must produce larger audience")
	}
	// The 1% audience contains the highest scorers, so it must be a subset
	// of the 10% audience.
	if audience.CountAnd(small, large) != small.Count() {
		t.Fatal("smaller expansion is not nested in the larger one")
	}
	// Skew dilutes as the ratio grows (scraping further down the ranking).
	if rs, rl := genderRatio(u, small), genderRatio(u, large); !math.IsInf(rs, 1) && rs < rl {
		t.Fatalf("1%% ratio %v below 10%% ratio %v; expansion should dilute", rs, rl)
	}
}

func TestModeString(t *testing.T) {
	if Standard.String() != "lookalike" || SpecialAd.String() != "special-ad" {
		t.Fatal("mode strings wrong")
	}
}

func BenchmarkExpand(b *testing.B) {
	factors := population.UniformFactors(8, 0.1)
	u, err := population.New(population.Config{
		Seed: 3, Size: 1 << 16, MaleShare: 0.5,
		AgeShare: [population.NumAgeRanges]float64{0.25, 0.25, 0.25, 0.25},
		Factors:  factors,
	})
	if err != nil {
		b.Fatal(err)
	}
	seed := audience.NewFromFunc(u.Size(), func(i int) bool { return u.HasFactor(i, 0) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Expand(u, seed, Config{Ratio: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}
