package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixDeterministic(t *testing.T) {
	a := Mix(1, 2, 3)
	b := Mix(1, 2, 3)
	if a != b {
		t.Fatalf("Mix not deterministic: %x vs %x", a, b)
	}
	if Mix(1, 2, 3) == Mix(3, 2, 1) {
		t.Fatalf("Mix should be order sensitive")
	}
}

func TestMixDistinctInputs(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := Mix(42, i)
		if seen[h] {
			t.Fatalf("collision at input %d", i)
		}
		seen[h] = true
	}
}

func TestUniform01Range(t *testing.T) {
	if err := quick.Check(func(h uint64) bool {
		u := Uniform01(h)
		return u >= 0 && u < 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestUniform01Mean(t *testing.T) {
	r := New(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += Uniform01(r.Uint64())
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of Uniform01 = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	if Bernoulli(0, 1, 2) {
		t.Error("Bernoulli(0) must be false")
	}
	if !Bernoulli(1, 1, 2) {
		t.Error("Bernoulli(1) must be true")
	}
	if Bernoulli(-0.5, 9) {
		t.Error("Bernoulli(negative) must be false")
	}
	if !Bernoulli(1.5, 9) {
		t.Error("Bernoulli(>1) must be true")
	}
}

func TestBernoulliRate(t *testing.T) {
	const p = 0.3
	const n = 100000
	count := 0
	for i := uint64(0); i < n; i++ {
		if Bernoulli(p, 123, i) {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli rate = %v, want ~%v", got, p)
	}
}

func TestBernoulliDeterministic(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		if Bernoulli(0.5, 7, i) != Bernoulli(0.5, 7, i) {
			t.Fatalf("Bernoulli not deterministic at %d", i)
		}
	}
}

func TestRandReproducible(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d, want ~%v", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of range", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogUniformRange(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		v := r.LogUniform(0.001, 0.2)
		if v < 0.001 || v > 0.2 {
			t.Fatalf("LogUniform out of range: %v", v)
		}
	}
}

func TestLogUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogUniform(0, 1) should panic")
		}
	}()
	New(1).LogUniform(0, 1)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(37)
	s := r.Sample(50, 10)
	if len(s) != 10 {
		t.Fatalf("Sample returned %d elements, want 10", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad sample element %d", v)
		}
		seen[v] = true
	}
}

func TestSampleKGreaterThanN(t *testing.T) {
	r := New(41)
	s := r.Sample(5, 10)
	if len(s) != 5 {
		t.Fatalf("Sample(5,10) returned %d elements, want 5", len(s))
	}
}

func TestSampleUniformCoverage(t *testing.T) {
	// Every element should be sampled roughly equally often.
	counts := make([]int, 20)
	r := New(43)
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		for _, v := range r.Sample(20, 5) {
			counts[v]++
		}
	}
	want := float64(rounds) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("element %d sampled %d times, want ~%v", i, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(47)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 10)
	for _, v := range vals {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("facebook") != HashString("facebook") {
		t.Fatal("HashString not stable")
	}
	if HashString("facebook") == HashString("linkedin") {
		t.Fatal("HashString collision on distinct inputs")
	}
	if HashString("") == HashString("a") {
		t.Fatal("HashString collision on empty vs non-empty")
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkMix(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Mix(uint64(i), 42)
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	n := 0
	for i := 0; i < b.N; i++ {
		if Bernoulli(0.1, uint64(i), 7) {
			n++
		}
	}
	_ = n
}
