// Package xrand provides the deterministic pseudo-randomness used throughout
// the reproduction. Every experiment in the repository is a pure function of
// explicit seeds, so results are bit-for-bit reproducible across runs and
// machines.
//
// Two primitives are provided: a splitmix64-based stream RNG (Rand) for
// sequential draws, and a stateless mixing hash (Mix, Uniform01) used for
// per-(entity, entity) Bernoulli draws where storing state per pair would be
// prohibitive — e.g. "is user u a member of attribute a?" is answered by
// hashing (seed, a, u) rather than by storing a bit.
package xrand

import "math"

// mix64 is the splitmix64 finalizer, a high-quality 64-bit mixing function.
// It is bijective, so distinct inputs never collide.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes an arbitrary number of 64-bit words into a single well-mixed
// 64-bit value. It is the basis for all stateless draws.
func Mix(words ...uint64) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, w := range words {
		h = mix64(h ^ w)
	}
	return h
}

// Uniform01 maps a hash value to a float64 uniformly distributed in [0, 1).
func Uniform01(h uint64) float64 {
	// Use the top 53 bits for a uniformly distributed mantissa.
	return float64(h>>11) / (1 << 53)
}

// Bernoulli reports a deterministic coin flip with probability p, derived
// from the given hash words. The same words always yield the same outcome.
func Bernoulli(p float64, words ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return Uniform01(Mix(words...)) < p
}

// Rand is a small, fast, deterministic RNG (splitmix64 stream). The zero
// value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a Rand seeded with the given seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection-free bound is overkill here; modulo
	// bias at n << 2^64 is negligible for our catalog-sized draws, but we
	// still use the unbiased widening multiply for cleanliness.
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// widening-multiply method with rejection.
func (r *Rand) boundedUint64(bound uint64) uint64 {
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	ahi, alo := a>>32, a&mask
	bhi, blo := b>>32, b&mask
	t := ahi*blo + (alo*blo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += alo * bhi
	hi = ahi*bhi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return Uniform01(r.Uint64())
}

// NormFloat64 returns a standard-normally-distributed float64 using the
// Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogUniform returns a value log-uniformly distributed in [lo, hi].
// It panics if lo <= 0 or hi < lo.
func (r *Rand) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("xrand: LogUniform requires 0 < lo <= hi")
	}
	return math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. If k >= n it returns a full permutation. It panics if k < 0.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 {
		panic("xrand: Sample called with k < 0")
	}
	if k >= n {
		return r.Perm(n)
	}
	// Partial Fisher-Yates.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// Shuffle pseudo-randomly permutes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// HashString folds a string into a 64-bit value suitable for seeding.
func HashString(s string) uint64 {
	// FNV-1a 64-bit, then mixed for avalanche.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}
