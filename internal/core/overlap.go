package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/targeting"
	"repro/internal/xrand"
)

// ErrUnsupportedByPlatform marks an analysis the platform's composition
// rules cannot express — e.g. Google provides no size statistics for the
// AND of two attribute options, so the overlap and union analyses cannot
// run there (paper §4.3 fn. 11; Table 1 omits Google).
var ErrUnsupportedByPlatform = errors.New("core: analysis not expressible on this platform")

// translateRuleError converts targeting-rule violations raised while
// intersecting compositions into ErrUnsupportedByPlatform.
func translateRuleError(err error) error {
	if errors.Is(err, targeting.ErrAndWithinFeature) || errors.Is(err, targeting.ErrTooManyClauses) {
		return fmt.Errorf("%w: %v", ErrUnsupportedByPlatform, err)
	}
	return err
}

// classCount measures how many members of the class the spec reaches: the
// spec's audience intersected with RA_s, or with RA_¬s for excluded classes.
func (a *Auditor) classCount(spec targeting.Spec, c Class) (int64, error) {
	base := c
	base.Excluded = false
	if !c.Excluded {
		v, err := a.measureScoped(withClause(spec, base.baseClause()))
		return v, translateRuleError(err)
	}
	var total int64
	for _, cl := range base.otherClauses() {
		v, err := a.measureScoped(withClause(spec, cl))
		if err != nil {
			return 0, translateRuleError(err)
		}
		total += v
	}
	return total, nil
}

// classCounts is the batched form of classCount: one slot per spec, spec
// order preserved. When the provider chain answers batches natively the
// class-conditioned sizes are measured in one batch (one tiled kernel pass
// or one wire exchange); otherwise the specs are measured serially,
// aborting on the first error exactly like repeated classCount calls.
func (a *Auditor) classCounts(specs []targeting.Spec, c Class) ([]int64, error) {
	if !batchCapable(a.p) {
		out := make([]int64, len(specs))
		for i, s := range specs {
			v, err := a.classCount(s, c)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	base := c
	base.Excluded = false
	clauses := []targeting.Clause{base.baseClause()}
	if c.Excluded {
		clauses = base.otherClauses()
	}
	per := len(clauses)
	cond := make([]targeting.Spec, 0, len(specs)*per)
	for _, s := range specs {
		for _, cl := range clauses {
			cond = append(cond, a.scoped(withClause(s, cl)))
		}
	}
	res := MeasureMany(a.p, cond)
	out := make([]int64, len(specs))
	for i := range specs {
		for j := 0; j < per; j++ {
			r := res[i*per+j]
			if r.Err != nil {
				return nil, translateRuleError(r.Err)
			}
			out[i] += r.Size
		}
	}
	return out, nil
}

// Overlap is one pairwise overlap between two skewed targeting audiences,
// conservatively measured as the intersection relative to the smaller
// audience (paper fn. 12).
type Overlap struct {
	// I and J index the input measurement slice.
	I, J int
	// Fraction is |A_i ∩ A_j ∩ class| / min(|A_i ∩ class|, |A_j ∩ class|),
	// in [0, 1] up to estimate rounding.
	Fraction float64
}

// OverlapConfig parameterizes pairwise overlap measurement.
type OverlapConfig struct {
	// MaxPairs bounds the number of measured pairs; all C(n,2) pairs are
	// measured when they fit, otherwise a uniform sample. Zero means 2,000.
	MaxPairs int
	// Seed drives pair sampling.
	Seed uint64
}

// PairwiseOverlaps measures the overlaps between the class audiences of the
// given targetings (the paper's top-100 analysis). Pairs whose smaller
// audience rounds to zero are skipped.
func (a *Auditor) PairwiseOverlaps(ms []Measurement, c Class, cfg OverlapConfig) ([]Overlap, error) {
	if cfg.MaxPairs == 0 {
		cfg.MaxPairs = 2000
	}
	n := len(ms)
	if n < 2 {
		return nil, errors.New("core: need at least two targetings for overlap")
	}
	// Class-restricted size of each audience — one batch over all inputs.
	specs := make([]targeting.Spec, n)
	for i, m := range ms {
		specs[i] = m.Spec
	}
	sizes, err := a.classCounts(specs, c)
	if err != nil {
		return nil, err
	}
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	if len(pairs) > cfg.MaxPairs {
		rng := xrand.New(xrand.Mix(cfg.Seed, uint64(n)))
		idx := rng.Sample(len(pairs), cfg.MaxPairs)
		sort.Ints(idx)
		sampled := make([]pair, 0, cfg.MaxPairs)
		for _, k := range idx {
			sampled = append(sampled, pairs[k])
		}
		pairs = sampled
	}
	// Drop the pairs whose smaller audience rounds to zero before measuring,
	// so the batched intersection set is exactly the query set the serial
	// loop would have issued.
	kept := pairs[:0]
	interSpecs := make([]targeting.Spec, 0, len(pairs))
	for _, pr := range pairs {
		small := sizes[pr.i]
		if sizes[pr.j] < small {
			small = sizes[pr.j]
		}
		if small <= 0 {
			continue
		}
		kept = append(kept, pr)
		interSpecs = append(interSpecs, targeting.And(ms[pr.i].Spec, ms[pr.j].Spec))
	}
	inters, err := a.classCounts(interSpecs, c)
	if err != nil {
		return nil, err
	}
	out := make([]Overlap, 0, len(kept))
	for k, pr := range kept {
		small := sizes[pr.i]
		if sizes[pr.j] < small {
			small = sizes[pr.j]
		}
		out = append(out, Overlap{I: pr.i, J: pr.j, Fraction: float64(inters[k]) / float64(small)})
	}
	return out, nil
}

// MedianOverlap runs PairwiseOverlaps and returns the median overlap
// fraction — the statistic of Table 1's first section.
func (a *Auditor) MedianOverlap(ms []Measurement, c Class, cfg OverlapConfig) (float64, error) {
	ovs, err := a.PairwiseOverlaps(ms, c, cfg)
	if err != nil {
		return 0, err
	}
	if len(ovs) == 0 {
		return 0, errors.New("core: no measurable overlap pairs")
	}
	fr := make([]float64, len(ovs))
	for i, o := range ovs {
		fr[i] = o.Fraction
	}
	sort.Float64s(fr)
	mid := len(fr) / 2
	if len(fr)%2 == 1 {
		return fr[mid], nil
	}
	return (fr[mid-1] + fr[mid]) / 2, nil
}

// UnionRecall is the inclusion–exclusion estimate of the class members
// reached by running ads across several targetings at once (paper §4.3,
// "Increasing recall"; Table 1 second section).
type UnionRecall struct {
	// Terms[k-1] is the inclusion–exclusion term of order k: the sum of the
	// class-restricted sizes of all k-way intersections.
	Terms []int64
	// Partials[k-1] is the union estimate truncated after order k; the
	// paper confirms these converge as higher orders are added.
	Partials []int64
	// Estimate is the final (converged or max-order) union recall, clamped
	// to be non-negative.
	Estimate int64
}

// Converged reports whether the last two partial sums agree within the
// given relative tolerance.
func (u UnionRecall) Converged(tol float64) bool {
	n := len(u.Partials)
	if n < 2 {
		return false
	}
	a, b := float64(u.Partials[n-2]), float64(u.Partials[n-1])
	if b == 0 {
		return a == 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*b
}

// EstimateUnionRecall measures the total class recall of the union of the
// given targetings by inclusion–exclusion over their class-restricted
// audiences. Facebook and LinkedIn only expose and-of-ors, not
// or-of-ands, so the union size must be assembled from intersection
// queries exactly as the paper does (fn. 13). maxOrder bounds the depth
// (0 = full). Evaluation stops early once an order's term is zero, which is
// sound because estimate rounding is monotone.
func (a *Auditor) EstimateUnionRecall(ms []Measurement, c Class, maxOrder int) (UnionRecall, error) {
	n := len(ms)
	if n == 0 {
		return UnionRecall{}, errors.New("core: no targetings for union recall")
	}
	if maxOrder <= 0 || maxOrder > n {
		maxOrder = n
	}
	var out UnionRecall
	sign := int64(1)
	var acc, maxSingle int64
	for k := 1; k <= maxOrder; k++ {
		// Collect the order's C(n,k) intersections, then measure them as one
		// batch: each inclusion–exclusion order is a single kernel pass (or
		// wire exchange) instead of a serial query per combination.
		var combSpecs []targeting.Spec
		combinations(n, k, func(idx []int) {
			parts := make([]targeting.Spec, k)
			for j, i := range idx {
				parts[j] = ms[i].Spec
			}
			combSpecs = append(combSpecs, targeting.And(parts...))
		})
		vals, err := a.classCounts(combSpecs, c)
		if err != nil {
			return out, err
		}
		var term int64
		for _, v := range vals {
			if k == 1 && v > maxSingle {
				maxSingle = v
			}
			term += v
		}
		acc += sign * term
		sign = -sign
		out.Terms = append(out.Terms, term)
		out.Partials = append(out.Partials, acc)
		if term == 0 {
			break
		}
	}
	// Truncated inclusion–exclusion alternates around the true union
	// (Bonferroni); with rounded estimates a truncation can even go
	// negative. Clamp to the certain envelope: the union is at least the
	// largest single audience and at most the first-order sum.
	est := out.Partials[len(out.Partials)-1]
	if est < maxSingle {
		est = maxSingle
	}
	if first := out.Partials[0]; est > first {
		est = first
	}
	out.Estimate = est
	return out, nil
}
