package core

import (
	"fmt"

	"repro/internal/population"
	"repro/internal/targeting"
)

// Four-fifths rule thresholds for disparate impact (paper §3): a
// representation ratio above High over-represents the sensitive population,
// below Low under-represents it.
const (
	FourFifthsLow  = 0.8
	FourFifthsHigh = 1.25
)

// OutsideFourFifths reports whether a rep ratio violates the four-fifths
// bounds.
func OutsideFourFifths(r float64) bool {
	return r < FourFifthsLow || r > FourFifthsHigh
}

// Class identifies a sensitive population: the users holding one value of a
// sensitive attribute (a gender, or an age range), or the complement of such
// a set (e.g. "not 18-24", the populations the paper's exclusion analyses
// use).
type Class struct {
	// IsAge selects the age attribute; otherwise gender.
	IsAge  bool
	Gender population.Gender
	Age    population.AgeRange
	// Excluded marks the complement population ¬s. Its representation ratio
	// is the reciprocal of the base class's, and its recall counts the users
	// outside s.
	Excluded bool
}

// GenderClass returns the class of users with gender g.
func GenderClass(g population.Gender) Class { return Class{Gender: g} }

// AgeClass returns the class of users in age range a.
func AgeClass(a population.AgeRange) Class { return Class{IsAge: true, Age: a} }

// Not returns the complement class.
func (c Class) Not() Class {
	c.Excluded = !c.Excluded
	return c
}

// String names the class as the paper's figures do ("male", "18-24",
// "not 55+").
func (c Class) String() string {
	var base string
	if c.IsAge {
		base = c.Age.String()
	} else {
		base = c.Gender.String()
	}
	if c.Excluded {
		return "not " + base
	}
	return base
}

// baseClause returns the targeting clause selecting the base value s.
func (c Class) baseClause() targeting.Clause {
	if c.IsAge {
		return targeting.Clause{{Kind: targeting.KindAge, ID: int(c.Age)}}
	}
	return targeting.Clause{{Kind: targeting.KindGender, ID: int(c.Gender)}}
}

// otherClauses returns one clause per other value of the sensitive
// attribute (the populations summed to form RA¬s in Equation 1).
func (c Class) otherClauses() []targeting.Clause {
	if !c.IsAge {
		return []targeting.Clause{{{Kind: targeting.KindGender, ID: int(c.Gender.Other())}}}
	}
	var out []targeting.Clause
	for _, a := range population.AllAgeRanges() {
		if a != c.Age {
			out = append(out, targeting.Clause{{Kind: targeting.KindAge, ID: int(a)}})
		}
	}
	return out
}

// StandardClasses returns the sensitive populations the paper reports on:
// both genders and all four age ranges.
func StandardClasses() []Class {
	out := []Class{GenderClass(population.Male), GenderClass(population.Female)}
	for _, a := range population.AllAgeRanges() {
		out = append(out, AgeClass(a))
	}
	return out
}

// Table1Classes returns the favoured populations of the paper's Table 1:
// male, female, "age not 18-24", and "age not 55+".
func Table1Classes() []Class {
	return []Class{
		GenderClass(population.Male),
		GenderClass(population.Female),
		AgeClass(population.Age18to24).Not(),
		AgeClass(population.Age55Plus).Not(),
	}
}

// withClause returns spec AND clause, without mutating spec.
func withClause(spec targeting.Spec, cl targeting.Clause) targeting.Spec {
	out := targeting.And(spec)
	out.Include = append(out.Include, append(targeting.Clause(nil), cl...))
	return out
}

// specOf returns a spec matching exactly the given clause (used to measure
// |RA_s| by targeting all users with value s).
func specOf(cl targeting.Clause) targeting.Spec {
	return targeting.Spec{Include: []targeting.Clause{append(targeting.Clause(nil), cl...)}}
}

// validateClass panics on an impossible class value; Class is constructed
// by this package's helpers so this is purely defensive.
func validateClass(c Class) error {
	if !c.IsAge && c.Gender >= population.NumGenders {
		return fmt.Errorf("core: invalid gender %d", c.Gender)
	}
	if c.IsAge && c.Age >= population.NumAgeRanges {
		return fmt.Errorf("core: invalid age range %d", c.Age)
	}
	return nil
}
