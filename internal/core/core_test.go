package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/estimate"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/stats"
	"repro/internal/targeting"
)

var (
	deployOnce sync.Once
	deployVal  *platform.Deployment
	deployErr  error
)

// testDeploy returns a shared small deployment.
func testDeploy(t testing.TB) *platform.Deployment {
	t.Helper()
	deployOnce.Do(func() {
		deployVal, deployErr = platform.NewDeployment(platform.DeployOptions{Seed: 11, UniverseSize: 30000})
	})
	if deployErr != nil {
		t.Fatal(deployErr)
	}
	return deployVal
}

func auditorFor(t testing.TB, p *platform.Interface) *Auditor {
	t.Helper()
	return NewAuditor(NewPlatformProvider(p))
}

func male() Class   { return GenderClass(population.Male) }
func female() Class { return GenderClass(population.Female) }
func young() Class  { return AgeClass(population.Age18to24) }

func TestClassStrings(t *testing.T) {
	cases := map[string]Class{
		"male":      male(),
		"female":    female(),
		"18-24":     young(),
		"not 18-24": young().Not(),
		"not 55+":   AgeClass(population.Age55Plus).Not(),
	}
	for want, c := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class.String() = %q, want %q", got, want)
		}
	}
}

func TestClassNotInvolution(t *testing.T) {
	c := young()
	if c.Not().Not() != c {
		t.Fatal("Not is not an involution")
	}
}

func TestOutsideFourFifths(t *testing.T) {
	for v, want := range map[float64]bool{
		1.0: false, 0.8: false, 1.25: false, 0.79: true, 1.26: true, 5: true, 0.1: true,
	} {
		if got := OutsideFourFifths(v); got != want {
			t.Errorf("OutsideFourFifths(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestStandardAndTable1Classes(t *testing.T) {
	if got := len(StandardClasses()); got != 6 {
		t.Fatalf("StandardClasses = %d, want 6", got)
	}
	t1 := Table1Classes()
	if len(t1) != 4 || !t1[2].Excluded || !t1[3].Excluded {
		t.Fatalf("Table1Classes malformed: %+v", t1)
	}
}

func TestRepRatioEdgeCases(t *testing.T) {
	if _, err := repRatio(10, 10, 0, 100); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := repRatio(0, 0, 100, 100); !errors.Is(err, ErrBelowFloor) {
		t.Error("both-zero should be ErrBelowFloor")
	}
	v, err := repRatio(10, 0, 100, 100)
	if err != nil || !math.IsInf(v, 1) {
		t.Errorf("out-zero = %v, %v; want +Inf", v, err)
	}
	v, err = repRatio(0, 10, 100, 100)
	if err != nil || v != 0 {
		t.Errorf("in-zero = %v, %v; want 0", v, err)
	}
	v, err = repRatio(20, 10, 100, 100)
	if err != nil || v != 2 {
		t.Errorf("repRatio = %v, %v; want 2", v, err)
	}
}

func TestAuditBasics(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.Facebook)
	m, err := a.Audit(targeting.Attr(0), male())
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalReach < a.RecallFloor {
		t.Fatalf("reach %d below floor", m.TotalReach)
	}
	if m.RepRatio <= 0 {
		t.Fatalf("rep ratio = %v", m.RepRatio)
	}
	if m.Recall != m.InClass {
		t.Fatalf("recall %d != in-class %d", m.Recall, m.InClass)
	}
	if m.Desc == "" {
		t.Fatal("empty description")
	}
}

func TestAuditReciprocal(t *testing.T) {
	// Rep ratio toward females ≈ 1 / rep ratio toward males (exactly, for
	// a binary attribute with the same rounded inputs).
	d := testDeploy(t)
	a := auditorFor(t, d.Facebook)
	spec := targeting.Attr(3)
	mm, err := a.Audit(spec, male())
	if err != nil {
		t.Fatal(err)
	}
	mf, err := a.Audit(spec, female())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mm.RepRatio*mf.RepRatio-1) > 1e-9 {
		t.Fatalf("male %v × female %v != 1", mm.RepRatio, mf.RepRatio)
	}
}

func TestAuditExcludedClass(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.Facebook)
	spec := targeting.Attr(5)
	base, err := a.Audit(spec, young())
	if err != nil {
		t.Fatal(err)
	}
	not, err := a.Audit(spec, young().Not())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.RepRatio*not.RepRatio-1) > 1e-9 {
		t.Fatalf("excluded ratio %v not reciprocal of base %v", not.RepRatio, base.RepRatio)
	}
	if not.Recall != base.OutClass {
		t.Fatalf("excluded recall %d, want out-class %d", not.Recall, base.OutClass)
	}
}

func TestAuditBelowFloor(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.Facebook)
	a.RecallFloor = 1 << 62
	_, err := a.Audit(targeting.Attr(0), male())
	if !errors.Is(err, ErrBelowFloor) {
		t.Fatalf("want ErrBelowFloor, got %v", err)
	}
}

func TestPopulationSize(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.LinkedIn)
	maleN, err := a.PopulationSize(male())
	if err != nil {
		t.Fatal(err)
	}
	femaleN, err := a.PopulationSize(female())
	if err != nil {
		t.Fatal(err)
	}
	total := float64(maleN + femaleN)
	if total < platform.LinkedInTotalUsers*0.9 || total > platform.LinkedInTotalUsers*1.1 {
		t.Fatalf("gender totals %v, want ≈%d", total, platform.LinkedInTotalUsers)
	}
	notYoung, err := a.PopulationSize(young().Not())
	if err != nil {
		t.Fatal(err)
	}
	youngN, err := a.PopulationSize(young())
	if err != nil {
		t.Fatal(err)
	}
	if notYoung <= youngN {
		t.Fatalf("not-18-24 population %d should dominate 18-24 %d on LinkedIn", notYoung, youngN)
	}
}

func TestIndividualScan(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.FacebookRestricted)
	ms, err := a.IndividualScan(targeting.KindAttribute, male())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) < 300 {
		t.Fatalf("only %d measurable individuals of 393", len(ms))
	}
	for _, m := range ms {
		if m.TotalReach < a.RecallFloor {
			t.Fatalf("%q reach %d below floor", m.Desc, m.TotalReach)
		}
	}
	// The restricted interface must still show skew in both directions
	// (paper §4.1: 90th pct 1.84, 10th pct 0.5 toward males).
	ratios := RepRatios(ms)
	p90, _ := stats.Percentile(ratios, 90)
	p10, _ := stats.Percentile(ratios, 10)
	if p90 < 1.25 {
		t.Errorf("restricted individuals P90 = %v, want > 1.25", p90)
	}
	if p10 > 0.8 {
		t.Errorf("restricted individuals P10 = %v, want < 0.8", p10)
	}
}

func TestIndividualsIncludesTopicsOnGoogle(t *testing.T) {
	d := testDeploy(t)
	g := auditorFor(t, d.Google)
	if !g.Provider().CrossFeature() {
		t.Fatal("google provider should be cross-feature")
	}
	ms, err := g.Individuals(male())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) <= g.AttrCount() {
		t.Fatalf("google Individuals returned %d, want attributes+topics", len(ms))
	}
	fb := auditorFor(t, d.Facebook)
	if fb.Provider().CrossFeature() {
		t.Fatal("facebook provider should not be cross-feature")
	}
}

func TestScanRejectsDemoKinds(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.Facebook)
	if _, err := a.IndividualScan(targeting.KindGender, male()); err == nil {
		t.Fatal("scanning gender kind should fail")
	}
}

func TestGreedyCompositionsAmplifySkew(t *testing.T) {
	// The paper's headline: Top 2-way compositions are more skewed than
	// individuals.
	d := testDeploy(t)
	a := auditorFor(t, d.FacebookRestricted)
	ind, err := a.Individuals(male())
	if err != nil {
		t.Fatal(err)
	}
	top, err := a.GreedyCompositions(ind, male(), ComposeConfig{K: 200, Direction: Top, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) < 20 {
		t.Fatalf("only %d top compositions", len(top))
	}
	indP90, _ := stats.Percentile(RepRatios(ind), 90)
	topP90, _ := stats.Percentile(RepRatios(top), 90)
	if topP90 <= indP90 {
		t.Fatalf("Top 2-way P90 %v not above individual P90 %v", topP90, indP90)
	}

	bottom, err := a.GreedyCompositions(ind, male(), ComposeConfig{K: 200, Direction: Bottom, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	indP10, _ := stats.Percentile(RepRatios(ind), 10)
	botP10, _ := stats.Percentile(RepRatios(bottom), 10)
	if botP10 >= indP10 {
		t.Fatalf("Bottom 2-way P10 %v not below individual P10 %v", botP10, indP10)
	}
}

func TestThreeWayAmplifiesFurther(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.FacebookRestricted)
	ind, err := a.Individuals(male())
	if err != nil {
		t.Fatal(err)
	}
	two, err := a.GreedyCompositions(ind, male(), ComposeConfig{K: 150, Arity: 2, Direction: Top, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	three, err := a.GreedyCompositions(ind, male(), ComposeConfig{K: 150, Arity: 3, Direction: Top, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	finiteThree := RepRatios(three)
	if len(finiteThree) < 10 {
		// At the small test universe most 3-way audiences round to zero on
		// one side; the full-size experiments use 2^18 users.
		t.Skipf("only %d finite 3-way ratios at this universe size", len(finiteThree))
	}
	p90two, _ := stats.Percentile(RepRatios(two), 90)
	p90three, _ := stats.Percentile(finiteThree, 90)
	if p90three <= p90two {
		t.Fatalf("3-way P90 %v not above 2-way P90 %v", p90three, p90two)
	}
}

func TestGreedyCrossFeature(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.Google)
	ind, err := a.Individuals(male())
	if err != nil {
		t.Fatal(err)
	}
	top, err := a.GreedyCompositions(ind, male(), ComposeConfig{K: 100, Direction: Top, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Fatal("no cross-feature compositions")
	}
	for _, m := range top {
		refs := targeting.Refs(m.Spec)
		// Each composition must be exactly attribute ∧ topic.
		if len(refs) != 2 || refs[0].Kind == refs[1].Kind {
			t.Fatalf("bad cross-feature composition %q: %v", m.Desc, refs)
		}
	}
	// 3-way is impossible on Google.
	if _, err := a.GreedyCompositions(ind, male(), ComposeConfig{K: 10, Arity: 3, Direction: Top}); !errors.Is(err, ErrCrossFeatureArity) {
		t.Fatalf("want ErrCrossFeatureArity, got %v", err)
	}
}

func TestRandomCompositions(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.LinkedIn)
	ms, err := a.RandomCompositions(male(), ComposeConfig{K: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) < 20 {
		t.Fatalf("only %d random compositions above floor", len(ms))
	}
	seen := make(map[string]bool)
	for _, m := range ms {
		key := targeting.Canonical(m.Spec)
		if seen[key] {
			t.Fatalf("duplicate random composition %q", m.Desc)
		}
		seen[key] = true
	}
}

func TestCachingReducesUpstreamCalls(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.LinkedIn)
	if _, err := a.Audit(targeting.Attr(0), male()); err != nil {
		t.Fatal(err)
	}
	calls1 := UpstreamCalls(a.Provider())
	if calls1 <= 0 {
		t.Fatalf("expected upstream calls, got %d", calls1)
	}
	// Repeating the same audit must hit only the cache.
	if _, err := a.Audit(targeting.Attr(0), male()); err != nil {
		t.Fatal(err)
	}
	if calls2 := UpstreamCalls(a.Provider()); calls2 != calls1 {
		t.Fatalf("cache miss on repeat: %d -> %d", calls1, calls2)
	}
}

func TestPairwiseOverlapsAndMedian(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.Facebook)
	ind, err := a.Individuals(female())
	if err != nil {
		t.Fatal(err)
	}
	top, err := a.GreedyCompositions(ind, female(), ComposeConfig{K: 60, Direction: Top, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) < 10 {
		t.Skipf("only %d compositions", len(top))
	}
	tops := TopOf(top, 10)
	ovs, err := a.PairwiseOverlaps(tops, female(), OverlapConfig{MaxPairs: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(ovs) == 0 {
		t.Fatal("no overlaps measured")
	}
	for _, o := range ovs {
		// Rounding can push the fraction slightly above 1.
		if o.Fraction < 0 || o.Fraction > 1.6 {
			t.Fatalf("overlap fraction %v out of range", o.Fraction)
		}
	}
	med, err := a.MedianOverlap(tops, female(), OverlapConfig{MaxPairs: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if med < 0 || med > 1.6 {
		t.Fatalf("median overlap %v out of range", med)
	}
}

func TestOverlapUnsupportedOnGoogle(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.Google)
	ind, err := a.Individuals(male())
	if err != nil {
		t.Fatal(err)
	}
	top, err := a.GreedyCompositions(ind, male(), ComposeConfig{K: 30, Direction: Top, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) < 2 {
		t.Skip("not enough compositions")
	}
	_, err = a.PairwiseOverlaps(TopOf(top, 5), male(), OverlapConfig{})
	if !errors.Is(err, ErrUnsupportedByPlatform) {
		t.Fatalf("want ErrUnsupportedByPlatform, got %v", err)
	}
}

func TestUnionRecallIncreasesOverTop1(t *testing.T) {
	// Table 1's second section: top-10 union recall well above top-1 recall.
	d := testDeploy(t)
	a := auditorFor(t, d.Facebook)
	ind, err := a.Individuals(female())
	if err != nil {
		t.Fatal(err)
	}
	top, err := a.GreedyCompositions(ind, female(), ComposeConfig{K: 120, Direction: Top, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	tops := TopOf(top, 10)
	if len(tops) < 5 {
		t.Skipf("only %d compositions", len(tops))
	}
	u, err := a.EstimateUnionRecall(tops, female(), 4)
	if err != nil {
		t.Fatal(err)
	}
	top1 := tops[0].Recall
	if u.Estimate < top1 {
		t.Fatalf("union recall %d below top-1 recall %d", u.Estimate, top1)
	}
	if len(u.Partials) == 0 {
		t.Fatal("no partial sums recorded")
	}
	// Union can never exceed the first-order sum.
	if u.Estimate > u.Partials[0] {
		t.Fatalf("union %d exceeds first-order sum %d", u.Estimate, u.Partials[0])
	}
}

func TestUnionRecallConvergence(t *testing.T) {
	u := UnionRecall{Partials: []int64{100, 80, 82, 82}}
	if !u.Converged(0.01) {
		t.Fatal("identical trailing partials should converge")
	}
	u = UnionRecall{Partials: []int64{100, 50}}
	if u.Converged(0.01) {
		t.Fatal("diverging partials should not converge")
	}
	u = UnionRecall{Partials: []int64{100}}
	if u.Converged(0.5) {
		t.Fatal("single partial cannot converge")
	}
}

func TestRemovalSweepReducesButPersists(t *testing.T) {
	// Figure 3's shape: removing skewed individuals drops composition skew,
	// yet compositions of the remainder stay skewed.
	d := testDeploy(t)
	a := auditorFor(t, d.FacebookRestricted)
	ind, err := a.Individuals(male())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := a.RemovalSweep(ind, male(), []float64{0, 10}, ComposeConfig{K: 150, Direction: Top, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].P90 >= pts[0].P90 {
		t.Errorf("P90 did not drop after removal: %v -> %v", pts[0].P90, pts[1].P90)
	}
	if pts[1].P90 < FourFifthsHigh {
		t.Errorf("P90 after 10%% removal = %v; paper finds compositions stay skewed (3.02 on FB-restricted)", pts[1].P90)
	}
	if pts[1].Remaining >= pts[0].Remaining {
		t.Error("removal did not shrink the individual pool")
	}
}

func TestRemovalSweepValidatesPercent(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.FacebookRestricted)
	if _, err := a.RemovalSweep(nil, male(), []float64{101}, ComposeConfig{}); err == nil {
		t.Fatal("percentile > 100 accepted")
	}
}

func TestConsistencyStudy(t *testing.T) {
	d := testDeploy(t)
	for _, p := range d.Interfaces() {
		a := auditorFor(t, p)
		rep, err := a.ConsistencyStudy(5, 5, 10, 42)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !rep.Consistent() {
			t.Errorf("%s: %d inconsistent targetings", p.Name(), rep.Inconsistent)
		}
		if rep.Targetings != 10 || rep.Repeats != 10 {
			t.Errorf("%s: report %+v", p.Name(), rep)
		}
	}
}

func TestGranularityStudyInfersRounding(t *testing.T) {
	d := testDeploy(t)
	want := map[string]struct {
		small, large int
		min          int64
	}{
		"facebook-restricted": {2, 2, 1000},
		"facebook":            {2, 2, 1000},
		"google":              {1, 2, 40},
		"linkedin":            {2, 2, 300},
	}
	for _, p := range d.Interfaces() {
		a := auditorFor(t, p)
		rep, err := a.GranularityStudy(3000, 7)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		w := want[p.Name()]
		if rep.MaxSigDigitsSmall > w.small {
			t.Errorf("%s: small sig digits %d, want <= %d", p.Name(), rep.MaxSigDigitsSmall, w.small)
		}
		if rep.MaxSigDigitsLarge > w.large {
			t.Errorf("%s: large sig digits %d, want <= %d", p.Name(), rep.MaxSigDigitsLarge, w.large)
		}
		// The simulated estimate granularity is one user × ScaleFactor, so
		// the exact reporting floor is only observable with unit-granularity
		// populations (covered by the estimate package's unit tests); here
		// we check nothing below the floor is ever reported.
		if rep.MinReported < w.min {
			t.Errorf("%s: min reported %d below floor %d", p.Name(), rep.MinReported, w.min)
		}
	}
}

func TestLeastSkewedPullsTowardOne(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.FacebookRestricted)
	ind, err := a.Individuals(male())
	if err != nil {
		t.Fatal(err)
	}
	r := estimate.Facebook()
	checked := 0
	for _, m := range ind {
		if math.IsInf(m.RepRatio, 0) || m.RepRatio == 0 {
			continue
		}
		ls, err := a.LeastSkewed(m, male(), r)
		if err != nil {
			continue
		}
		// Least-skewed value must be between 1 and the nominal ratio.
		if m.RepRatio >= 1 {
			if ls > m.RepRatio+1e-9 || ls < 1-1e-9 {
				t.Fatalf("%q: least-skewed %v outside [1, %v]", m.Desc, ls, m.RepRatio)
			}
		} else {
			if ls < m.RepRatio-1e-9 || ls > 1+1e-9 {
				t.Fatalf("%q: least-skewed %v outside [%v, 1]", m.Desc, ls, m.RepRatio)
			}
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d measurements checked", checked)
	}
}

func TestFilters(t *testing.T) {
	ms := []Measurement{
		{RepRatio: 0.5}, {RepRatio: 1.0}, {RepRatio: 1.3}, {RepRatio: math.Inf(1)},
	}
	toward := FilterSkewedToward(ms)
	if len(toward) != 2 { // 1.3 and +Inf
		t.Fatalf("FilterSkewedToward = %d, want 2", len(toward))
	}
	outside := FilterOutsideFourFifths(ms)
	if len(outside) != 3 { // 0.5, 1.3, +Inf
		t.Fatalf("FilterOutsideFourFifths = %d, want 3", len(outside))
	}
	ratios := RepRatios(ms)
	if len(ratios) != 3 { // drops only Inf
		t.Fatalf("RepRatios = %d, want 3", len(ratios))
	}
}

func TestTopOfAndMaxFinite(t *testing.T) {
	ms := []Measurement{
		{Desc: "a", RepRatio: 2}, {Desc: "b", RepRatio: 5}, {Desc: "c", RepRatio: 1},
	}
	top := TopOf(ms, 2)
	if top[0].Desc != "b" || top[1].Desc != "a" {
		t.Fatalf("TopOf wrong order: %v, %v", top[0].Desc, top[1].Desc)
	}
	if got := TopOf(ms, 99); len(got) != 3 {
		t.Fatalf("TopOf clamping failed: %d", len(got))
	}
	if mf := MaxFinite(ms); mf != 5 {
		t.Fatalf("MaxFinite = %v", mf)
	}
	if mf := MaxFinite(nil); !math.IsNaN(mf) {
		t.Fatalf("MaxFinite(nil) = %v, want NaN", mf)
	}
}

func TestChooseAndSeedCount(t *testing.T) {
	if choose(46, 2) != 1035 {
		t.Fatalf("C(46,2) = %d", choose(46, 2))
	}
	if choose(20, 3) != 1140 {
		t.Fatalf("C(20,3) = %d", choose(20, 3))
	}
	// The paper's parameters: 1,000 pairs need exactly 46 seeds.
	m, err := seedCount(1000, 2, 500)
	if err != nil || m != 46 {
		t.Fatalf("seedCount(1000, 2) = %d, %v; want 46", m, err)
	}
	m, err = seedCount(1000, 3, 500)
	if err != nil || m != 20 {
		t.Fatalf("seedCount(1000, 3) = %d, %v; want 20", m, err)
	}
	if _, err := seedCount(10, 3, 2); err == nil {
		t.Fatal("insufficient individuals accepted")
	}
}

func TestCombinations(t *testing.T) {
	var got [][]int
	combinations(4, 2, func(idx []int) {
		got = append(got, append([]int(nil), idx...))
	})
	if len(got) != 6 {
		t.Fatalf("C(4,2) enumeration yielded %d", len(got))
	}
}

func TestDirectionString(t *testing.T) {
	if Top.String() != "Top" || Bottom.String() != "Bottom" {
		t.Fatal("direction strings wrong")
	}
}

func TestQueryBudget(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.LinkedIn)
	if !SetQueryBudget(a.Provider(), 4) {
		t.Fatal("caching provider should accept a budget")
	}
	// Two distinct audits exceed four upstream calls; the cache alone
	// cannot satisfy them.
	_, err1 := a.Audit(targeting.Attr(30), male())
	_, err2 := a.Audit(targeting.Attr(31), male())
	if err1 == nil && err2 == nil {
		t.Fatal("budget of 4 calls should abort one of the audits")
	}
	if !errors.Is(err1, ErrQueryBudget) && !errors.Is(err2, ErrQueryBudget) {
		t.Fatalf("want ErrQueryBudget, got %v / %v", err1, err2)
	}
	// Cached measurements keep working after exhaustion.
	SetQueryBudget(a.Provider(), 0)
	if _, err := a.Audit(targeting.Attr(30), male()); err != nil {
		t.Fatalf("lifting the budget should recover: %v", err)
	}
	if SetQueryBudget(NewPlatformProvider(d.LinkedIn), 1) {
		t.Fatal("non-caching provider should reject budgets")
	}
}

func TestAuditorScope(t *testing.T) {
	d := testDeploy(t)
	scoped := auditorFor(t, d.Facebook) // default: US scope
	unscoped := auditorFor(t, d.Facebook)
	unscoped.SetScope(nil)

	usPop, err := scoped.PopulationSize(male())
	if err != nil {
		t.Fatal(err)
	}
	globalPop, err := unscoped.PopulationSize(male())
	if err != nil {
		t.Fatal(err)
	}
	if usPop >= globalPop {
		t.Fatalf("US male population %d not below global %d", usPop, globalPop)
	}
	// Scoping to a different region changes the reference audience.
	scoped.SetScope(targeting.Clause{{Kind: targeting.KindLocation, ID: int(population.RegionIndia)}})
	inPop, err := scoped.PopulationSize(male())
	if err != nil {
		t.Fatal(err)
	}
	if inPop >= usPop {
		t.Fatalf("India-scoped population %d not below US %d", inPop, usPop)
	}
}

func TestBeamCompositions(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.FacebookRestricted)
	ind, err := a.Individuals(male())
	if err != nil {
		t.Fatal(err)
	}
	beam2, err := a.BeamCompositions(ind, male(), BeamConfig{Arity: 2, Width: 30, Seeds: 30, Direction: Top})
	if err != nil {
		t.Fatal(err)
	}
	if len(beam2) == 0 {
		t.Fatal("empty beam")
	}
	for _, m := range beam2 {
		if got := len(targeting.Refs(m.Spec)); got != 2 {
			t.Fatalf("beam-2 member %q has %d options", m.Desc, got)
		}
		if m.TotalReach < a.RecallFloor {
			t.Fatalf("beam member %q below reach floor", m.Desc)
		}
	}
	// Beam results are sorted most-skewed first.
	for i := 1; i < len(beam2); i++ {
		if beam2[i].RepRatio > beam2[i-1].RepRatio {
			t.Fatal("beam not sorted by skew")
		}
	}
	// Beam-2's best should at least match the greedy top pair (both search
	// the same pair space; beam is exhaustive over seeds×seeds).
	greedy, err := a.GreedyCompositions(ind, male(), ComposeConfig{K: 200, Direction: Top, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if MaxFinite(beam2) < MaxFinite(greedy)*0.8 {
		t.Fatalf("beam best %v far below greedy best %v", MaxFinite(beam2), MaxFinite(greedy))
	}
}

func TestBeamDeepensSkew(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.FacebookRestricted)
	ind, err := a.Individuals(male())
	if err != nil {
		t.Fatal(err)
	}
	beam2, err := a.BeamCompositions(ind, male(), BeamConfig{Arity: 2, Width: 25, Seeds: 25, Direction: Top})
	if err != nil {
		t.Fatal(err)
	}
	beam3, err := a.BeamCompositions(ind, male(), BeamConfig{Arity: 3, Width: 25, Seeds: 25, Direction: Top})
	if errors.Is(err, ErrBelowFloor) {
		t.Skip("no 3-way compositions above floor at this universe size")
	}
	if err != nil {
		t.Fatal(err)
	}
	f2, f3 := RepRatios(beam2), RepRatios(beam3)
	if len(f2) < 5 || len(f3) < 5 {
		t.Skipf("too few finite ratios (%d, %d)", len(f2), len(f3))
	}
	p2, _ := stats.Percentile(f2, 50)
	p3, _ := stats.Percentile(f3, 50)
	if p3 <= p2 {
		t.Fatalf("beam-3 median %v not above beam-2 median %v", p3, p2)
	}
}

func TestBeamValidation(t *testing.T) {
	d := testDeploy(t)
	a := auditorFor(t, d.FacebookRestricted)
	if _, err := a.BeamCompositions(nil, male(), BeamConfig{Arity: 2}); err == nil {
		t.Fatal("empty individuals accepted")
	}
	if _, err := a.BeamCompositions([]Measurement{{}}, male(), BeamConfig{Arity: 1}); err == nil {
		t.Fatal("arity 1 accepted")
	}
	g := auditorFor(t, d.Google)
	ind := []Measurement{{Spec: targeting.Attr(0)}}
	if _, err := g.BeamCompositions(ind, male(), BeamConfig{Arity: 3}); !errors.Is(err, ErrCrossFeatureArity) {
		t.Fatalf("want ErrCrossFeatureArity, got %v", err)
	}
}

func TestIndividualScanConcurrent(t *testing.T) {
	d := testDeploy(t)
	serial := auditorFor(t, d.FacebookRestricted)
	parallel := auditorFor(t, d.FacebookRestricted)
	parallel.Concurrency = 8

	want, err := serial.IndividualScan(targeting.KindAttribute, male())
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.IndividualScan(targeting.KindAttribute, male())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel scan found %d options, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Desc != want[i].Desc || got[i].RepRatio != want[i].RepRatio {
			t.Fatalf("scan order/value diverges at %d: %q %v vs %q %v",
				i, got[i].Desc, got[i].RepRatio, want[i].Desc, want[i].RepRatio)
		}
	}
}
