package core

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/targeting"
)

func newCoreTestTracer(seed uint64) *trace.Tracer {
	return trace.New(trace.Options{
		SampleRate: 1,
		Seed:       seed,
		Metrics:    obs.NewRegistry(),
		Provenance: trace.NewProvenanceLog(0, nil),
	})
}

// TestTracedSerialMeasureChain walks one spec through the serial provider
// chain twice under a sampled root: the first MeasureCtx is a cache miss
// that must continue the trace into the platform layer (cache.measure →
// platform.measure, provenance from the platform), the second is a cache
// hit served without touching the platform (provenance from the cache).
// Both answers must equal the untraced twin chain's.
func TestTracedSerialMeasureChain(t *testing.T) {
	d := testDeploy(t)
	traced := NewCachingProviderWith(NewPlatformProvider(d.Facebook), obs.NewRegistry())
	plain := NewCachingProviderWith(NewPlatformProvider(d.Facebook), obs.NewRegistry())
	spec := targeting.Attr(3)

	want, err := plain.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}

	tr := newCoreTestTracer(41)
	root := tr.StartRoot("audit.serial")
	ctx := trace.NewContext(context.Background(), root)
	for i := 0; i < 2; i++ {
		got, err := MeasureCtx(ctx, traced, spec)
		if err != nil {
			t.Fatalf("traced MeasureCtx call %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("traced MeasureCtx call %d = %d, untraced = %d", i, got, want)
		}
	}
	root.End()

	id, ok := trace.ParseTraceID(root.TraceID())
	if !ok {
		t.Fatalf("root trace ID %q does not parse", root.TraceID())
	}
	dump, ok := tr.Dump(id)
	if !ok {
		t.Fatal("traced chain left no buffered trace")
	}
	spans := make(map[string]int)
	for _, s := range dump.Spans {
		spans[s.Name]++
	}
	if spans["cache.measure"] != 2 {
		t.Fatalf("cache.measure spans = %d, want 2 (miss + hit): %v", spans["cache.measure"], spans)
	}
	if spans["platform.measure"] != 1 {
		t.Fatalf("platform.measure spans = %d, want 1 (the miss only): %v", spans["platform.measure"], spans)
	}

	// Provenance: the miss is recorded by the platform that answered it, the
	// hit by the cache tier that served it — one record each, no double count.
	bySource := make(map[string]int)
	for _, r := range tr.Provenance().Records() {
		if r.TraceID != root.TraceID() {
			t.Fatalf("provenance record from foreign trace: %+v", r)
		}
		if r.Key != targeting.Canonical(spec) {
			t.Fatalf("provenance key %q, want %q", r.Key, targeting.Canonical(spec))
		}
		if r.Value != want {
			t.Fatalf("provenance value %d, want %d", r.Value, want)
		}
		bySource[r.Source]++
	}
	if bySource["platform"] != 1 || bySource["cache"] != 1 || len(bySource) != 2 {
		t.Fatalf("provenance sources = %v, want one platform + one cache record", bySource)
	}
}

// TestTracedBatchMeasureChain covers the batched door dispatch: a sampled
// context routes MeasureManyCtx through the caching provider's traced batch
// path, and the results match the untraced MeasureMany dispatch on a twin
// chain.
func TestTracedBatchMeasureChain(t *testing.T) {
	d := testDeploy(t)
	traced := NewCachingProviderWith(NewPlatformProvider(d.Facebook), obs.NewRegistry())
	plain := NewCachingProviderWith(NewPlatformProvider(d.Facebook), obs.NewRegistry())
	specs := []targeting.Spec{
		targeting.Attr(0),
		targeting.Attr(5),
		targeting.And(targeting.Attr(1), targeting.Attr(2)),
	}

	want := MeasureMany(plain, specs)

	tr := newCoreTestTracer(43)
	root := tr.StartRoot("audit.batch")
	got := MeasureManyCtx(trace.NewContext(context.Background(), root), traced, specs)
	root.End()

	if len(got) != len(want) {
		t.Fatalf("traced batch returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if (got[i].Err == nil) != (want[i].Err == nil) || got[i].Size != want[i].Size {
			t.Fatalf("slot %d: traced %+v, untraced %+v", i, got[i], want[i])
		}
	}
	if tr.Len() == 0 {
		t.Fatal("traced batch buffered no trace")
	}
}

// TestMeasureCtxUntracedFallback pins the plain-context contract for both
// serial and batched dispatch helpers: no span in the context means the
// exact untraced path, even when the provider has traced doors and a live
// default tracer is installed.
func TestMeasureCtxUntracedFallback(t *testing.T) {
	d := testDeploy(t)
	cp := NewCachingProviderWith(NewPlatformProvider(d.Facebook), obs.NewRegistry())
	tr := newCoreTestTracer(47)
	trace.SetDefault(tr)
	defer trace.SetDefault(nil)

	spec := targeting.Attr(7)
	want, err := cp.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureCtx(context.Background(), cp, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("untraced-ctx MeasureCtx = %d, want %d", got, want)
	}

	res := MeasureManyCtx(context.Background(), cp, []targeting.Spec{spec})
	if len(res) != 1 || res[0].Err != nil || res[0].Size != want {
		t.Fatalf("untraced-ctx MeasureManyCtx = %+v, want size %d", res, want)
	}
	if tr.Len() != 0 {
		t.Fatalf("plain-context calls buffered %d traces, want 0", tr.Len())
	}
	if tr.Provenance().Len() != 0 {
		t.Fatalf("plain-context calls left %d provenance records, want 0", tr.Provenance().Len())
	}
}
