package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/targeting"
)

// auditResult is one fan-out slot: the measurement or the error that
// produced it.
type auditResult struct {
	m   Measurement
	err error
}

// auditMany audits every spec against c, preserving spec order. When the
// auditor's Concurrency is above 1 the specs are fanned out over a worker
// pool; the class totals (the auditor's only lazily-written shared state)
// are primed before the fan-out so workers touch the totals cache
// read-only. Providers and the measurement cache are safe for concurrent
// use; the Auditor itself must still be driven from one goroutine.
func (a *Auditor) auditMany(specs []targeting.Spec, c Class) ([]auditResult, error) {
	if err := validateClass(c); err != nil {
		return nil, err
	}
	base := c
	base.Excluded = false
	if _, err := a.totals(base); err != nil {
		return nil, err
	}

	results := make([]auditResult, len(specs))
	total := len(specs)
	var done atomic.Int64
	finish := func() {
		if a.Progress != nil {
			a.Progress(int(done.Add(1)), total)
		}
	}
	workers := a.Concurrency
	if workers < 1 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, spec := range specs {
			results[i].m, results[i].err = a.Audit(spec, c)
			finish()
		}
		return results, nil
	}
	var wg sync.WaitGroup
	idxs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxs {
				results[i].m, results[i].err = a.Audit(specs[i], c)
				finish()
			}
		}()
	}
	for i := range specs {
		idxs <- i
	}
	close(idxs)
	wg.Wait()
	return results, nil
}

// IndividualScan audits every option of one feature kind against the class,
// returning the measurable ones (total reach at or above the floor) in
// option order. This is the paper's "Individual" targeting set (§4.1,
// §4.2). When the auditor's Concurrency is above 1, options are audited by
// a worker pool — against the in-process simulators the lock-free estimate
// path makes this scale with cores, and against remote platforms each
// measurement is an HTTP round trip (the client's rate limiter still bounds
// total load, as the paper's ethics required).
func (a *Auditor) IndividualScan(kind targeting.Kind, c Class) ([]Measurement, error) {
	var n int
	switch kind {
	case targeting.KindAttribute:
		n = len(a.attrNames)
	case targeting.KindTopic:
		n = len(a.topicNames)
	default:
		return nil, fmt.Errorf("core: cannot scan feature kind %s", kind)
	}
	specs := make([]targeting.Spec, n)
	for id := 0; id < n; id++ {
		specs[id] = targeting.Spec{Include: []targeting.Clause{{{Kind: kind, ID: id}}}}
	}
	results, err := a.auditMany(specs, c)
	if err != nil {
		return nil, err
	}
	out := make([]Measurement, 0, n)
	for id, r := range results {
		if errors.Is(r.err, ErrBelowFloor) {
			continue
		}
		if r.err != nil {
			return nil, fmt.Errorf("scanning %s %d: %w", kind, id, r.err)
		}
		out = append(out, r.m)
	}
	return out, nil
}

// Individuals audits the platform's full default option list against the
// class: attributes everywhere, plus topics on cross-feature platforms
// (Google's Individual column spans both features).
func (a *Auditor) Individuals(c Class) ([]Measurement, error) {
	ms, err := a.IndividualScan(targeting.KindAttribute, c)
	if err != nil {
		return nil, err
	}
	if a.p.CrossFeature() && len(a.topicNames) > 0 {
		ts, err := a.IndividualScan(targeting.KindTopic, c)
		if err != nil {
			return nil, err
		}
		ms = append(ms, ts...)
	}
	return ms, nil
}
