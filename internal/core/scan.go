package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs/trace"
	"repro/internal/targeting"
)

// auditResult is one fan-out slot: the measurement or the error that
// produced it.
type auditResult struct {
	m   Measurement
	err error
}

// auditMany audits every spec against c, preserving spec order. When the
// provider chain answers batches natively (an in-process kernel or a wire
// batch endpoint), the specs are measured in two batched phases; otherwise,
// when the auditor's Concurrency is above 1, they fan out over a worker
// pool. The class totals (the auditor's only lazily-written shared state)
// are primed first so the fan-out touches the totals cache read-only.
// Providers and the measurement cache are safe for concurrent use; the
// Auditor itself must still be driven from one goroutine.
func (a *Auditor) auditMany(specs []targeting.Spec, c Class) ([]auditResult, error) {
	if err := validateClass(c); err != nil {
		return nil, err
	}
	if err := a.ctxErr(); err != nil {
		return nil, err
	}
	base := c
	base.Excluded = false
	tot, err := a.totals(base)
	if err != nil {
		return nil, err
	}
	if len(specs) > 0 && batchCapable(a.p) {
		return a.auditManyBatched(specs, c, tot), nil
	}

	results := make([]auditResult, len(specs))
	total := len(specs)
	var done atomic.Int64
	// Progress deliveries are serialized under a mutex and made monotonic:
	// a worker that observes completion n but loses the race to a worker
	// holding a later count skips its delivery instead of reporting done
	// going backwards. The final done == total delivery is the largest
	// count, so it is never skipped. After cancellation no further
	// callbacks are delivered.
	var progressMu sync.Mutex
	reported := 0
	finish := func() {
		n := int(done.Add(1))
		if a.Progress == nil || a.ctxErr() != nil {
			return
		}
		progressMu.Lock()
		if n > reported {
			reported = n
			a.Progress(n, total)
		}
		progressMu.Unlock()
	}
	workers := a.Concurrency
	if workers < 1 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, spec := range specs {
			results[i].m, results[i].err = a.Audit(spec, c)
			finish()
		}
		return results, nil
	}
	var wg sync.WaitGroup
	idxs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxs {
				results[i].m, results[i].err = a.Audit(specs[i], c)
				finish()
			}
		}()
	}
	for i := range specs {
		idxs <- i
	}
	close(idxs)
	wg.Wait()
	return results, nil
}

// auditManyBatched is the batched form of the fan-out: phase one measures
// every spec's total reach in one batch, phase two measures the
// class-conditioned sizes of the specs above the floor in a second batch.
// Each slot reproduces Audit exactly — same measurements through the same
// cache, same floor cutoff, same error precedence (reach, then in-class,
// then the complement clauses in order) — so the results are bit-identical
// to the serial loop; only the number of passes over the universe changes.
func (a *Auditor) auditManyBatched(specs []targeting.Spec, c Class, tot classTotals) []auditResult {
	results := make([]auditResult, len(specs))
	base := c
	base.Excluded = false
	others := base.otherClauses()

	a.mSpecs.Add(int64(len(specs)))
	for i, spec := range specs {
		results[i].m = Measurement{Desc: a.Describe(spec), Spec: spec}
	}

	// One batched fan-out = one trace: the root covers both measurement
	// phases, and every spec in the batch carries the same trace ID.
	root := trace.Default().StartRoot("audit.measure_many")
	if root.Sampled() {
		root.Annotate("platform", a.p.Name())
		root.Annotate("class", c.String())
		root.AnnotateInt("specs", int64(len(specs)))
		tid := root.TraceID()
		for i := range results {
			results[i].m.TraceID = tid
		}
	}
	defer root.End()
	ctx := spanContext(root)

	// Cancellation takes effect between the two measurement phases: a
	// cancelled batch fails every remaining slot with the context's error
	// instead of issuing the next batched call.
	if err := a.ctxErr(); err != nil {
		for i := range results {
			results[i].err = err
		}
		return results
	}
	reachSpecs := make([]targeting.Spec, len(specs))
	for i, spec := range specs {
		reachSpecs[i] = a.scoped(spec)
	}
	reach := MeasureManyCtx(ctx, a.p, reachSpecs)

	// start[i] indexes spec i's group of 1+len(others) conditioned slots in
	// the second batch; -1 marks specs already failed or below the floor.
	per := 1 + len(others)
	start := make([]int, len(specs))
	cond := make([]targeting.Spec, 0, len(specs)*per)
	var belowFloor int64
	for i, spec := range specs {
		start[i] = -1
		if reach[i].Err != nil {
			results[i].err = reach[i].Err
			continue
		}
		results[i].m.TotalReach = reach[i].Size
		if reach[i].Size < a.RecallFloor {
			belowFloor++
			results[i].err = fmt.Errorf("%w: reach %d < %d", ErrBelowFloor, reach[i].Size, a.RecallFloor)
			continue
		}
		start[i] = len(cond)
		cond = append(cond, a.scoped(withClause(spec, base.baseClause())))
		for _, cl := range others {
			cond = append(cond, a.scoped(withClause(spec, cl)))
		}
	}
	a.mBelowFloor.Add(belowFloor)
	if err := a.ctxErr(); err != nil {
		for i := range results {
			if results[i].err == nil {
				results[i].err = err
			}
		}
		return results
	}
	condRes := MeasureManyCtx(ctx, a.p, cond)

	total := len(specs)
	for i := range specs {
		if j := start[i]; j >= 0 {
			results[i].err = finishSlot(&results[i].m, c, tot, condRes[j:j+per])
		}
		if a.Progress != nil && a.ctxErr() == nil {
			a.Progress(i+1, total)
		}
	}
	return results
}

// finishSlot folds one spec's conditioned measurements (in-class first,
// then the complement clauses in order) into the measurement.
func finishSlot(m *Measurement, c Class, tot classTotals, slots []BatchResult) error {
	if slots[0].Err != nil {
		return slots[0].Err
	}
	tIn := slots[0].Size
	var tOut int64
	for _, r := range slots[1:] {
		if r.Err != nil {
			return r.Err
		}
		tOut += r.Size
	}
	return finishMeasurement(m, c, tot, tIn, tOut)
}

// IndividualScan audits every option of one feature kind against the class,
// returning the measurable ones (total reach at or above the floor) in
// option order. This is the paper's "Individual" targeting set (§4.1,
// §4.2). When the auditor's Concurrency is above 1, options are audited by
// a worker pool — against the in-process simulators the lock-free estimate
// path makes this scale with cores, and against remote platforms each
// measurement is an HTTP round trip (the client's rate limiter still bounds
// total load, as the paper's ethics required).
func (a *Auditor) IndividualScan(kind targeting.Kind, c Class) ([]Measurement, error) {
	var n int
	switch kind {
	case targeting.KindAttribute:
		n = len(a.attrNames)
	case targeting.KindTopic:
		n = len(a.topicNames)
	default:
		return nil, fmt.Errorf("core: cannot scan feature kind %s", kind)
	}
	specs := make([]targeting.Spec, n)
	for id := 0; id < n; id++ {
		specs[id] = targeting.Spec{Include: []targeting.Clause{{{Kind: kind, ID: id}}}}
	}
	results, err := a.auditMany(specs, c)
	if err != nil {
		return nil, err
	}
	out := make([]Measurement, 0, n)
	for id, r := range results {
		if errors.Is(r.err, ErrBelowFloor) {
			continue
		}
		if r.err != nil {
			return nil, fmt.Errorf("scanning %s %d: %w", kind, id, r.err)
		}
		out = append(out, r.m)
	}
	return out, nil
}

// Individuals audits the platform's full default option list against the
// class: attributes everywhere, plus topics on cross-feature platforms
// (Google's Individual column spans both features).
func (a *Auditor) Individuals(c Class) ([]Measurement, error) {
	ms, err := a.IndividualScan(targeting.KindAttribute, c)
	if err != nil {
		return nil, err
	}
	if a.p.CrossFeature() && len(a.topicNames) > 0 {
		ts, err := a.IndividualScan(targeting.KindTopic, c)
		if err != nil {
			return nil, err
		}
		ms = append(ms, ts...)
	}
	return ms, nil
}
