package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/targeting"
)

// IndividualScan audits every option of one feature kind against the class,
// returning the measurable ones (total reach at or above the floor) in
// option order. This is the paper's "Individual" targeting set (§4.1,
// §4.2). When the auditor's Concurrency is above 1, options are audited by
// a worker pool — useful against remote platforms where each measurement is
// an HTTP round trip (the client's rate limiter still bounds total load, as
// the paper's ethics required).
func (a *Auditor) IndividualScan(kind targeting.Kind, c Class) ([]Measurement, error) {
	var n int
	switch kind {
	case targeting.KindAttribute:
		n = len(a.attrNames)
	case targeting.KindTopic:
		n = len(a.topicNames)
	default:
		return nil, fmt.Errorf("core: cannot scan feature kind %s", kind)
	}
	// The class totals are shared state cached under no lock; prime them
	// once before fanning out.
	base := c
	base.Excluded = false
	if _, err := a.totals(base); err != nil {
		return nil, err
	}

	workers := a.Concurrency
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	type slot struct {
		m   Measurement
		err error
	}
	results := make([]slot, n)
	if workers == 1 {
		for id := 0; id < n; id++ {
			spec := targeting.Spec{Include: []targeting.Clause{{{Kind: kind, ID: id}}}}
			results[id].m, results[id].err = a.Audit(spec, c)
		}
	} else {
		var wg sync.WaitGroup
		ids := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for id := range ids {
					spec := targeting.Spec{Include: []targeting.Clause{{{Kind: kind, ID: id}}}}
					results[id].m, results[id].err = a.Audit(spec, c)
				}
			}()
		}
		for id := 0; id < n; id++ {
			ids <- id
		}
		close(ids)
		wg.Wait()
	}

	out := make([]Measurement, 0, n)
	for id := 0; id < n; id++ {
		if errors.Is(results[id].err, ErrBelowFloor) {
			continue
		}
		if results[id].err != nil {
			return nil, fmt.Errorf("scanning %s %d: %w", kind, id, results[id].err)
		}
		out = append(out, results[id].m)
	}
	return out, nil
}

// Individuals audits the platform's full default option list against the
// class: attributes everywhere, plus topics on cross-feature platforms
// (Google's Individual column spans both features).
func (a *Auditor) Individuals(c Class) ([]Measurement, error) {
	ms, err := a.IndividualScan(targeting.KindAttribute, c)
	if err != nil {
		return nil, err
	}
	if a.p.CrossFeature() && len(a.topicNames) > 0 {
		ts, err := a.IndividualScan(targeting.KindTopic, c)
		if err != nil {
			return nil, err
		}
		ms = append(ms, ts...)
	}
	return ms, nil
}
