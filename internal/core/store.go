package core

import "repro/internal/obs"

// MeasurementStore is a durable archive of size-estimate measurements,
// keyed by platform name and canonical spec form. internal/store.Store
// satisfies it; the audit layer depends only on this interface so the
// storage format stays swappable and core stays dependency-free.
//
// The store is the audit's crash-safe memory across process restarts: the
// paper's methodology caps upstream API calls (§5, Ethics), and a campaign
// that dies mid-scan must not re-pay its query budget for answers it
// already holds. A Get hit is treated exactly like an in-memory cache hit —
// served without an upstream call and without charging the query budget.
type MeasurementStore interface {
	// GetMeasurement returns the persisted size for a platform-qualified
	// canonical spec, if present.
	GetMeasurement(platform, canonicalSpec string) (int64, bool)
	// PutMeasurement durably records a measurement. It should not return
	// until the record is at least queued for the store's sync policy;
	// errors are reported but must not invalidate the measurement itself.
	PutMeasurement(platform, canonicalSpec string, size int64) error
}

// NewStoredProvider wraps p with the standard measurement cache backed by a
// durable store (see NewStoredProviderWith); metrics land in the
// process-wide registry.
func NewStoredProvider(p Provider, st MeasurementStore) Provider {
	return NewStoredProviderWith(p, st, nil)
}

// NewStoredProviderWith returns a Provider whose measurement path has three
// tiers: the in-memory cache (free), the durable store (a disk hit fills
// the memory tier and charges no query budget), and the upstream platform
// (budget-charged; successful answers are appended to the store before the
// next restart can need them). A nil st degrades to the plain caching
// provider; if p is already a caching provider the store is attached in
// place, preserving its cache contents and query budget.
func NewStoredProviderWith(p Provider, st MeasurementStore, reg *obs.Registry) Provider {
	if reg == nil {
		reg = obs.Default()
	}
	cp, ok := p.(*cachingProvider)
	if !ok {
		cp = NewCachingProviderWith(p, reg).(*cachingProvider)
	}
	if st == nil {
		return cp
	}
	lbl := obs.L("platform", cp.Provider.Name())
	cp.mu.Lock()
	cp.store = st
	cp.mStoreHits = reg.Counter("audit_store_hits_total", lbl)
	cp.mStoreMisses = reg.Counter("audit_store_misses_total", lbl)
	cp.mStoreErrors = reg.Counter("audit_store_append_errors_total", lbl)
	cp.mu.Unlock()
	return cp
}

// StoreOf returns the durable store behind a provider, if it has one.
func StoreOf(p Provider) (MeasurementStore, bool) {
	cp, ok := p.(*cachingProvider)
	if !ok || cp.store == nil {
		return nil, false
	}
	return cp.store, true
}
