package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/targeting"
)

// TestBudgetShrunkBelowCallsMade: lowering the budget under the calls
// already made refuses every new key immediately, while cached keys keep
// being served — an auditor can always re-read what they already paid for.
func TestBudgetShrunkBelowCallsMade(t *testing.T) {
	sp := &slowProvider{attrs: []string{"a", "b", "c", "d"}}
	cp := NewCachingProviderWith(sp, obs.NewRegistry())
	for i := 0; i < 3; i++ {
		if _, err := cp.Measure(targeting.Attr(i)); err != nil {
			t.Fatalf("warm-up call %d: %v", i, err)
		}
	}
	if !SetQueryBudget(cp, 2) {
		t.Fatal("SetQueryBudget rejected a caching provider")
	}
	if _, err := cp.Measure(targeting.Attr(3)); !errors.Is(err, ErrQueryBudget) {
		t.Fatalf("new key with calls > budget: err = %v, want ErrQueryBudget", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cp.Measure(targeting.Attr(i)); err != nil {
			t.Errorf("cached key %d after budget shrink: %v", i, err)
		}
	}
	stats, ok := StatsOf(cp)
	if !ok {
		t.Fatal("StatsOf rejected a caching provider")
	}
	if stats.Refused != 1 || stats.Hits != 3 || stats.Misses != 3 {
		t.Errorf("stats = %+v, want 3 hits / 3 misses / 1 refused", stats)
	}
}

// TestBudgetNeverOvershootsUnderConcurrency: a burst of distinct misses far
// wider than the budget yields exactly budget upstream calls; everyone else
// is refused, not queued.
func TestBudgetNeverOvershootsUnderConcurrency(t *testing.T) {
	sp := &slowProvider{attrs: []string{"a"}}
	cp := NewCachingProviderWith(sp, obs.NewRegistry())
	const budget = 8
	SetQueryBudget(cp, budget)

	var wg sync.WaitGroup
	var refused, succeeded atomic.Int64
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := cp.Measure(targeting.Attr(i))
			switch {
			case err == nil:
				succeeded.Add(1)
			case errors.Is(err, ErrQueryBudget):
				refused.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := sp.calls.Load(); got != budget {
		t.Errorf("upstream calls = %d, want exactly %d", got, budget)
	}
	if succeeded.Load() != budget || refused.Load() != 24-budget {
		t.Errorf("succeeded=%d refused=%d, want %d/%d",
			succeeded.Load(), refused.Load(), budget, 24-budget)
	}
	if got := UpstreamCalls(cp); got != budget {
		t.Errorf("UpstreamCalls = %d, want %d", got, budget)
	}
}

// TestRefundOnErrorUnderConcurrency: failed upstream calls are refunded even
// when many goroutines race distinct failing keys, so the budget only ever
// pays for answers actually received.
func TestRefundOnErrorUnderConcurrency(t *testing.T) {
	boom := errors.New("boom")
	sp := &slowProvider{attrs: []string{"a"}, fail: func(spec targeting.Spec) error {
		// Odd attribute ids always fail upstream.
		refs := targeting.Refs(spec)
		if len(refs) == 1 && refs[0].ID%2 == 1 {
			return boom
		}
		return nil
	}}
	reg := obs.NewRegistry()
	cp := NewCachingProviderWith(sp, reg)

	const keys = 16 // 8 even (succeed), 8 odd (fail)
	var wg sync.WaitGroup
	var failures atomic.Int64
	for round := 0; round < 2; round++ {
		for i := 0; i < keys; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := cp.Measure(targeting.Attr(i)); err != nil {
					if !errors.Is(err, boom) {
						t.Errorf("unexpected error: %v", err)
					}
					failures.Add(1)
				}
			}(i)
		}
	}
	wg.Wait()
	// Only the 8 even keys leave a charge behind; every odd-key attempt was
	// refunded on failure.
	if got := UpstreamCalls(cp); got != keys/2 {
		t.Errorf("UpstreamCalls = %d, want %d (failures refunded)", got, keys/2)
	}
	if failures.Load() == 0 {
		t.Error("no failing calls observed; test exercised nothing")
	}
	// Refunded keys are retryable: flip the provider to succeed and re-ask.
	sp.fail = nil
	if _, err := cp.Measure(targeting.Attr(1)); err != nil {
		t.Errorf("retry of refunded key: %v", err)
	}
	if got := UpstreamCalls(cp); got != keys/2+1 {
		t.Errorf("UpstreamCalls after retry = %d, want %d", got, keys/2+1)
	}
}

// TestNonCachingProviderIntrospection: the budget and stats helpers answer
// honestly for providers without a cache wrapper.
func TestNonCachingProviderIntrospection(t *testing.T) {
	sp := &slowProvider{attrs: []string{"a"}}
	if SetQueryBudget(sp, 10) {
		t.Error("SetQueryBudget accepted a non-caching provider")
	}
	if got := UpstreamCalls(sp); got != -1 {
		t.Errorf("UpstreamCalls(non-caching) = %d, want -1", got)
	}
	if _, ok := StatsOf(sp); ok {
		t.Error("StatsOf accepted a non-caching provider")
	}
}

// TestCacheStatsHitRate pins the hit-rate arithmetic, including the idle
// zero case.
func TestCacheStatsHitRate(t *testing.T) {
	if got := (CacheStats{}).HitRate(); got != 0 {
		t.Errorf("idle HitRate = %v, want 0", got)
	}
	s := CacheStats{Hits: 6, Misses: 2, Collapsed: 2, Refused: 5}
	if got := s.HitRate(); got != 0.8 {
		t.Errorf("HitRate = %v, want 0.8 (refused excluded)", got)
	}
}
