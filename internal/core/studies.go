package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/estimate"
	"repro/internal/population"
	"repro/internal/stats"
	"repro/internal/targeting"
	"repro/internal/xrand"
)

// ConsistencyReport summarizes the estimate-consistency study (§3): the
// paper issued 100 back-to-back repeated calls for 20 random targeting
// options and 20 random compositions per platform and found the returned
// estimates consistent.
type ConsistencyReport struct {
	// Targetings is the number of distinct targetings probed.
	Targetings int
	// Repeats is the number of repeated calls per targeting.
	Repeats int
	// Inconsistent counts targetings whose repeated calls disagreed.
	Inconsistent int
}

// Consistent reports whether every probed targeting returned stable
// estimates.
func (r ConsistencyReport) Consistent() bool { return r.Inconsistent == 0 }

// ConsistencyStudy re-issues repeated estimate calls against the *uncached*
// provider, mirroring the paper's §3 study. It probes nOptions random
// individual options plus nComps random compositions, repeats times each.
func (a *Auditor) ConsistencyStudy(nOptions, nComps, repeats int, seed uint64) (ConsistencyReport, error) {
	if nOptions <= 0 || repeats <= 1 {
		return ConsistencyReport{}, errors.New("core: consistency study needs options and >1 repeats")
	}
	rng := xrand.New(xrand.Mix(seed, xrand.HashString(a.p.Name()), 0xc0))
	var specs []targeting.Spec
	for _, id := range rng.Sample(len(a.attrNames), nOptions) {
		specs = append(specs, targeting.Attr(id))
	}
	for i := 0; i < nComps; i++ {
		if a.p.CrossFeature() && len(a.topicNames) > 0 {
			specs = append(specs, targeting.And(
				targeting.Attr(rng.Intn(len(a.attrNames))),
				targeting.Topic(rng.Intn(len(a.topicNames))),
			))
		} else {
			ids := rng.Sample(len(a.attrNames), 2)
			specs = append(specs, targeting.And(targeting.Attr(ids[0]), targeting.Attr(ids[1])))
		}
	}
	rep := ConsistencyReport{Targetings: len(specs), Repeats: repeats}
	for _, s := range specs {
		s = a.scoped(s)
		first, err := a.raw.Measure(s)
		if err != nil {
			return rep, err
		}
		for i := 1; i < repeats; i++ {
			v, err := a.raw.Measure(s)
			if err != nil {
				return rep, err
			}
			if v != first {
				rep.Inconsistent++
				break
			}
		}
	}
	return rep, nil
}

// GranularityReport summarizes the estimate-granularity study (§3): the
// significant-digit structure and minimum floor inferred from a large
// number of distinct estimate calls.
type GranularityReport struct {
	// Samples is the number of estimates collected.
	Samples int
	// MaxSigDigitsSmall is the most significant digits seen among non-zero
	// estimates below 100,000.
	MaxSigDigitsSmall int
	// MaxSigDigitsLarge is the most significant digits seen at or above
	// 100,000.
	MaxSigDigitsLarge int
	// MinReported is the smallest non-zero estimate observed — the
	// platform's reporting floor (Facebook 1,000; Google 40; LinkedIn 300).
	MinReported int64
}

// GranularityStudy collects up to target distinct estimates by sweeping
// individual options, demographic conditionings, and random compositions
// (the paper combined over 80,000 distinct calls per platform), then infers
// the platforms' rounding granularity.
func (a *Auditor) GranularityStudy(target int, seed uint64) (GranularityReport, error) {
	if target <= 0 {
		return GranularityReport{}, errors.New("core: granularity study needs a positive target")
	}
	rng := xrand.New(xrand.Mix(seed, xrand.HashString(a.p.Name()), 0x9a))
	var values []int64
	add := func(spec targeting.Spec) error {
		v, err := a.measureScoped(spec)
		if err != nil {
			return err
		}
		values = append(values, v)
		return nil
	}
	demoClauses := []targeting.Clause{nil}
	for g := 0; g < population.NumGenders; g++ {
		demoClauses = append(demoClauses, targeting.Clause{{Kind: targeting.KindGender, ID: g}})
	}
	for r := 0; r < population.NumAgeRanges; r++ {
		demoClauses = append(demoClauses, targeting.Clause{{Kind: targeting.KindAge, ID: r}})
	}
	// Pass 1: every option × every demographic conditioning.
	for id := 0; id < len(a.attrNames) && len(values) < target; id++ {
		for _, cl := range demoClauses {
			spec := targeting.Attr(id)
			if cl != nil {
				spec = withClause(spec, cl)
			}
			if err := add(spec); err != nil {
				return GranularityReport{}, err
			}
			if len(values) >= target {
				break
			}
		}
	}
	for id := 0; id < len(a.topicNames) && len(values) < target; id++ {
		if err := add(targeting.Topic(id)); err != nil {
			return GranularityReport{}, err
		}
	}
	// Pass 2: random compositions until the target is met.
	for len(values) < target {
		var spec targeting.Spec
		if a.p.CrossFeature() && len(a.topicNames) > 0 {
			spec = targeting.And(
				targeting.Attr(rng.Intn(len(a.attrNames))),
				targeting.Topic(rng.Intn(len(a.topicNames))),
			)
		} else {
			ids := rng.Sample(len(a.attrNames), 2)
			spec = targeting.And(targeting.Attr(ids[0]), targeting.Attr(ids[1]))
		}
		cl := demoClauses[rng.Intn(len(demoClauses))]
		if cl != nil {
			spec = withClause(spec, cl)
		}
		if err := add(spec); err != nil {
			return GranularityReport{}, err
		}
	}

	rep := GranularityReport{Samples: len(values), MinReported: stats.MinNonZero(values)}
	var small, large []int64
	for _, v := range values {
		if v <= 0 {
			continue
		}
		if v < 100_000 {
			small = append(small, v)
		} else {
			large = append(large, v)
		}
	}
	rep.MaxSigDigitsSmall = stats.MaxSigDigits(small)
	rep.MaxSigDigitsLarge = stats.MaxSigDigits(large)
	return rep, nil
}

// LeastSkewed recomputes a measurement's representation ratio at the least
// skewed values consistent with the platform's rounding intervals (§3:
// "even allowing for the representation ratios to take their least skewed
// values (subject to the rounding ranges), we find very similar degrees of
// skew"). r is the platform's rounding scheme.
func (a *Auditor) LeastSkewed(m Measurement, c Class, r estimate.Rounder) (float64, error) {
	base := c
	base.Excluded = false
	tot, err := a.totals(base)
	if err != nil {
		return 0, err
	}
	inLo, inHi := r.Interval(m.InClass)
	outLo, outHi := r.Interval(m.OutClass)
	ratioAt := func(tIn, tOut int64) float64 {
		v, err := repRatio(tIn, tOut, tot.in, tot.out)
		if err != nil {
			return math.NaN()
		}
		return v
	}
	nominal := ratioAt(m.InClass, m.OutClass)
	if math.IsNaN(nominal) {
		return 0, fmt.Errorf("%w: unmeasurable at nominal estimates", ErrBelowFloor)
	}
	var least float64
	if nominal >= 1 {
		least = ratioAt(inLo, outHi) // pull toward 1 from above
		if !math.IsNaN(least) && least < 1 {
			least = 1
		}
	} else {
		least = ratioAt(inHi, outLo) // pull toward 1 from below
		if !math.IsNaN(least) && least > 1 {
			least = 1
		}
	}
	if math.IsNaN(least) || math.IsInf(least, 0) {
		return nominal, nil
	}
	if c.Excluded {
		if least == 0 {
			return math.Inf(1), nil
		}
		return 1 / least, nil
	}
	return least, nil
}
