package core

import (
	"context"

	"repro/internal/obs/trace"
	"repro/internal/targeting"
)

// ContextMeasurer is the optional trace-context extension of Provider:
// measure one spec with a context that may carry a trace span, so the
// provider can record child spans and propagate the trace downstream
// (in-process to the platform kernels, or over the wire via the
// X-Adaudit-Trace header). Implementations must be bit-identical to
// Measure; the context adds observability, never behavior.
type ContextMeasurer interface {
	MeasureCtx(ctx context.Context, spec targeting.Spec) (int64, error)
}

// ContextBatchMeasurer is the batched form of ContextMeasurer.
type ContextBatchMeasurer interface {
	MeasureManyCtx(ctx context.Context, specs []targeting.Spec) []BatchResult
}

// ContextKeyedBatchMeasurer is the keyed+traced refinement: canonical keys
// and the trace context ride down together.
type ContextKeyedBatchMeasurer interface {
	MeasureManyKeyedCtx(ctx context.Context, specs []targeting.Spec, keys []string) []BatchResult
}

// MeasureCtx measures spec through p, upgrading to the provider's traced
// door only when ctx actually carries a span — untraced callers take
// exactly the Provider.Measure path.
func MeasureCtx(ctx context.Context, p Provider, spec targeting.Spec) (int64, error) {
	if trace.FromContext(ctx) != nil {
		if cm, ok := p.(ContextMeasurer); ok {
			return cm.MeasureCtx(ctx, spec)
		}
	}
	return p.Measure(spec)
}

// MeasureManyCtx is MeasureMany with a trace context: one traced batched
// call when the provider supports it and ctx carries a span, otherwise the
// untraced MeasureMany dispatch.
func MeasureManyCtx(ctx context.Context, p Provider, specs []targeting.Spec) []BatchResult {
	if trace.FromContext(ctx) != nil {
		if cbm, ok := p.(ContextBatchMeasurer); ok {
			return cbm.MeasureManyCtx(ctx, specs)
		}
	}
	return MeasureMany(p, specs)
}

// spanContext rebuilds a context carrying span for downstream traced calls
// (nil span returns a plain background context).
func spanContext(span *trace.Span) context.Context {
	return trace.NewContext(context.Background(), span)
}

// measureUpstream sends one serial miss upstream, through the provider's
// traced door when a span is live.
func measureUpstream(span *trace.Span, p Provider, spec targeting.Spec) (int64, error) {
	if span != nil {
		if cm, ok := p.(ContextMeasurer); ok {
			return cm.MeasureCtx(spanContext(span), spec)
		}
	}
	return p.Measure(spec)
}
