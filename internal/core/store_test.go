package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/targeting"
)

// openStore opens a store in a fresh temp dir (or an existing one) with an
// isolated metrics registry.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestStoredProviderDiskHitSkipsUpstreamAndBudget: a second process (fresh
// provider, same store directory) re-measuring persisted specs must reach
// upstream zero times and charge zero budget — the acceptance criterion for
// resumable audits.
func TestStoredProviderDiskHitSkipsUpstreamAndBudget(t *testing.T) {
	dir := t.TempDir()
	specs := []targeting.Spec{targeting.Attr(0), targeting.Attr(1), targeting.And(targeting.Attr(0), targeting.Attr(1))}

	// First run: everything misses the store and goes upstream.
	st1 := openStore(t, dir)
	sp1 := &slowProvider{attrs: []string{"a", "b"}}
	cp1 := NewStoredProviderWith(sp1, st1, obs.NewRegistry())
	want := make([]int64, len(specs))
	for i, spec := range specs {
		v, err := cp1.Measure(spec)
		if err != nil {
			t.Fatalf("first run Measure: %v", err)
		}
		want[i] = v
	}
	if got := sp1.calls.Load(); got != int64(len(specs)) {
		t.Fatalf("first run upstream calls = %d, want %d", got, len(specs))
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second run: a new provider over the same directory with a budget of
	// one upstream call. All three disk hits must leave that budget
	// untouched.
	st2 := openStore(t, dir)
	sp2 := &slowProvider{attrs: []string{"a", "b"}}
	cp2 := NewStoredProviderWith(sp2, st2, obs.NewRegistry())
	SetQueryBudget(cp2, 1)
	for i, spec := range specs {
		v, err := cp2.Measure(spec)
		if err != nil {
			t.Fatalf("resumed Measure: %v", err)
		}
		if v != want[i] {
			t.Errorf("resumed value %d = %d, want %d", i, v, want[i])
		}
	}
	if got := sp2.calls.Load(); got != 0 {
		t.Errorf("resumed upstream calls = %d, want 0", got)
	}
	stats, ok := StatsOf(cp2)
	if !ok {
		t.Fatal("StatsOf rejected stored provider")
	}
	if stats.StoreHits != int64(len(specs)) || stats.Misses != 0 || stats.Refused != 0 {
		t.Errorf("stats = %+v, want %d store hits, 0 misses, 0 refused", stats, len(specs))
	}
	if stats.HitRate() != 1 {
		t.Errorf("HitRate = %v, want 1 (store hits count as hits)", stats.HitRate())
	}
	// The budget still has its one charge: an unpersisted spec spends it,
	// and the next unpersisted spec is refused.
	if _, err := cp2.Measure(targeting.AnyAttr(0, 1)); err != nil {
		t.Fatalf("first unpersisted spec: %v", err)
	}
	if sp2.calls.Load() != 1 {
		t.Errorf("upstream calls after unpersisted spec = %d, want 1", sp2.calls.Load())
	}
	if _, err := cp2.Measure(targeting.Excluding(targeting.Attr(0), targeting.Attr(1))); !errors.Is(err, ErrQueryBudget) {
		t.Errorf("second unpersisted spec: err = %v, want ErrQueryBudget", err)
	}
}

// TestLogicallyEqualSpecsOneUpstreamOneRecord is the canonicalization
// regression test: every spelling of the same formula — reordered AND
// clauses, reordered refs inside an OR, duplicated refs, duplicated
// clauses — must share one in-memory cache key and one store record.
func TestLogicallyEqualSpecsOneUpstreamOneRecord(t *testing.T) {
	a := targeting.Ref{Kind: targeting.KindAttribute, ID: 0}
	b := targeting.Ref{Kind: targeting.KindAttribute, ID: 1}
	variants := []targeting.Spec{
		{Include: []targeting.Clause{{a}, {b}}},      // a ∧ b
		{Include: []targeting.Clause{{b}, {a}}},      // b ∧ a
		{Include: []targeting.Clause{{a}, {b}, {a}}}, // a ∧ b ∧ a
		{Include: []targeting.Clause{{a}, {a}, {b}}}, // a ∧ a ∧ b
		{Include: []targeting.Clause{{b}, {a}, {b}}}, // duplicates of both
	}
	for i, v := range variants[1:] {
		if targeting.Canonical(v) != targeting.Canonical(variants[0]) {
			t.Fatalf("variant %d canonicalizes to %q, want %q", i+1, targeting.Canonical(v), targeting.Canonical(variants[0]))
		}
	}

	st := openStore(t, t.TempDir())
	sp := &slowProvider{attrs: []string{"a", "b"}}
	cp := NewStoredProviderWith(sp, st, obs.NewRegistry())
	first, err := cp.Measure(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range variants[1:] {
		got, err := cp.Measure(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i+1, err)
		}
		if got != first {
			t.Errorf("variant %d = %d, want %d", i+1, got, first)
		}
	}
	if calls := sp.calls.Load(); calls != 1 {
		t.Errorf("upstream calls = %d, want 1 (all variants share one cache key)", calls)
	}
	if n := st.Len(); n != 1 {
		t.Errorf("store records = %d, want 1 (all variants share one store key)", n)
	}
	// And an OR-clause with duplicated refs shares the deduplicated key.
	dupOr := targeting.Spec{Include: []targeting.Clause{{a, b, a}}}
	if _, err := cp.Measure(targeting.AnyAttr(0, 1)); err != nil {
		t.Fatal(err)
	}
	callsBefore := sp.calls.Load()
	if _, err := cp.Measure(dupOr); err != nil {
		t.Fatal(err)
	}
	if sp.calls.Load() != callsBefore {
		t.Error("duplicated OR ref caused a second upstream call")
	}
}

// TestResumeAfterKillBitIdentical is the resumability property test: an
// audit killed at an arbitrary point (simulated by a query budget that
// aborts mid-scan, without closing the store — exactly what SIGKILL leaves
// behind given per-append fsync) and then resumed over the same store
// produces bit-identical measurements to an uninterrupted run, and the two
// runs' combined upstream calls equal the uninterrupted run's alone.
func TestResumeAfterKillBitIdentical(t *testing.T) {
	d := testDeploy(t)
	iface := d.Interfaces()[0]

	// Reference: one uninterrupted, storeless run.
	ref := NewAuditorWith(NewPlatformProvider(iface), obs.NewRegistry())
	ref.Concurrency = 4
	want, err := ref.Individuals(male())
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	total := UpstreamCalls(ref.Provider())
	if total <= 0 {
		t.Fatalf("uninterrupted upstream calls = %d", total)
	}

	// Kill points: budgets that abort the scan at different depths.
	for _, budget := range []int64{1, 4, total / 3, total - 1} {
		dir := t.TempDir()

		killed, err := store.Open(dir, store.Options{Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		ap := NewStoredProviderWith(NewPlatformProvider(iface), killed, obs.NewRegistry())
		SetQueryBudget(ap, budget)
		a := NewAuditorWith(ap, obs.NewRegistry())
		a.Concurrency = 4
		if _, err := a.Individuals(male()); !errors.Is(err, ErrQueryBudget) {
			t.Fatalf("budget %d: err = %v, want ErrQueryBudget", budget, err)
		}
		paid := UpstreamCalls(ap)
		// SIGKILL: the store is abandoned, not closed. Every successful
		// upstream answer was fsynced by its Put, so nothing is lost.

		resumed, err := store.Open(dir, store.Options{Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("budget %d: reopening store: %v", budget, err)
		}
		if got := int64(resumed.Len()); got != paid {
			t.Errorf("budget %d: store holds %d records, want %d (every paid call persisted)", budget, got, paid)
		}
		rp := NewStoredProviderWith(NewPlatformProvider(iface), resumed, obs.NewRegistry())
		ra := NewAuditorWith(rp, obs.NewRegistry())
		ra.Concurrency = 4
		got, err := ra.Individuals(male())
		if err != nil {
			t.Fatalf("budget %d: resumed run: %v", budget, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("budget %d: resumed results differ from uninterrupted run", budget)
		}
		if re := UpstreamCalls(rp); paid+re != total {
			t.Errorf("budget %d: killed run paid %d, resume paid %d, want combined %d",
				budget, paid, re, total)
		}
		killed.Close()
		resumed.Close()
	}
}

// TestStoreOf reports store attachment.
func TestStoreOf(t *testing.T) {
	sp := &slowProvider{attrs: []string{"a"}}
	if _, ok := StoreOf(sp); ok {
		t.Error("StoreOf on a raw provider")
	}
	cp := NewCachingProviderWith(sp, obs.NewRegistry())
	if _, ok := StoreOf(cp); ok {
		t.Error("StoreOf on a storeless caching provider")
	}
	st := openStore(t, t.TempDir())
	spp := NewStoredProviderWith(cp, st, obs.NewRegistry())
	if got, ok := StoreOf(spp); !ok || got != MeasurementStore(st) {
		t.Error("StoreOf lost the attached store")
	}
	// nil store degrades to plain caching.
	plain := NewStoredProviderWith(&slowProvider{attrs: []string{"a"}}, nil, obs.NewRegistry())
	if _, ok := StoreOf(plain); ok {
		t.Error("nil store reported as attached")
	}
	if _, ok := plain.(*cachingProvider); !ok {
		t.Error("nil-store provider is not a caching provider")
	}
}
