package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/targeting"
	"repro/internal/xrand"
)

// Direction selects which end of the skew distribution a greedy discovery
// targets.
type Direction int

// Directions.
const (
	// Top discovers compositions most skewed toward the class.
	Top Direction = iota
	// Bottom discovers compositions most skewed away from the class.
	Bottom
)

// String names the direction as the paper's figure labels do.
func (d Direction) String() string {
	if d == Bottom {
		return "Bottom"
	}
	return "Top"
}

// ComposeConfig parameterizes composition discovery.
type ComposeConfig struct {
	// K is the number of compositions to discover (paper: 1,000).
	K int
	// Arity is the number of options ANDed together (2 or 3).
	Arity int
	// Direction picks the skew end for greedy discovery (ignored by
	// RandomCompositions).
	Direction Direction
	// Seed drives sampling.
	Seed uint64
}

// withDefaults fills zero fields with the paper's parameters.
func (cfg ComposeConfig) withDefaults() ComposeConfig {
	if cfg.K == 0 {
		cfg.K = 1000
	}
	if cfg.Arity == 0 {
		cfg.Arity = 2
	}
	return cfg
}

// ErrCrossFeatureArity marks an unsupported request: on cross-feature
// platforms only pairwise composition is possible (Google offers exactly two
// AND-able features with size statistics).
var ErrCrossFeatureArity = errors.New("core: cross-feature platforms only support 2-way composition")

// sortBySkew orders measurements by representation ratio: descending for
// Top, ascending for Bottom. Infinite ratios land at the skewed end. Ties
// break by description for determinism.
func sortBySkew(ms []Measurement, dir Direction) []Measurement {
	out := append([]Measurement(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].RepRatio, out[j].RepRatio
		if ri != rj {
			if dir == Top {
				return ri > rj
			}
			return ri < rj
		}
		return out[i].Desc < out[j].Desc
	})
	return out
}

// choose returns C(n, k) without overflow for the small arguments used here.
func choose(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
	}
	return c
}

// seedCount returns the smallest m such that C(m, arity) >= k — the paper's
// "46 most skewed individual attributes, resulting in 1,035 pairs" rule.
func seedCount(k, arity, available int) (int, error) {
	for m := arity; m <= available; m++ {
		if choose(m, arity) >= k {
			return m, nil
		}
	}
	if choose(available, arity) > 0 {
		return available, nil
	}
	return 0, fmt.Errorf("core: only %d individuals available for %d-way composition", available, arity)
}

// combinations invokes fn with every k-combination of [0, n).
func combinations(n, k int, fn func(idx []int)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(idx)
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// auditSpecs measures the given specs, keeping those at or above the floor.
// Specs fan out over the auditor's worker pool (see auditMany), which makes
// the composition-audit loop — thousands of Measure calls per figure —
// scale with cores.
func (a *Auditor) auditSpecs(specs []targeting.Spec, c Class) ([]Measurement, error) {
	results, err := a.auditMany(specs, c)
	if err != nil {
		return nil, err
	}
	out := make([]Measurement, 0, len(specs))
	for _, r := range results {
		if errors.Is(r.err, ErrBelowFloor) {
			continue
		}
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.m)
	}
	return out, nil
}

// sampleSpecs draws up to k specs uniformly without replacement, in
// deterministic order.
func sampleSpecs(specs []targeting.Spec, k int, seed uint64) []targeting.Spec {
	if len(specs) <= k {
		return specs
	}
	rng := xrand.New(xrand.Mix(seed, uint64(len(specs)), uint64(k)))
	idx := rng.Sample(len(specs), k)
	sort.Ints(idx)
	out := make([]targeting.Spec, 0, k)
	for _, i := range idx {
		out = append(out, specs[i])
	}
	return out
}

// GreedyCompositions implements the paper's discovery method (§3,
// "Discovering the most skewed compositions"): greedily combine the most
// skewed individual targetings. individuals must already be audited against
// c (e.g. via Individuals). On same-feature platforms it composes the top m
// individuals with C(m, arity) >= K; on cross-feature platforms it pairs the
// top attributes with the top topics such that their product reaches K. The
// resulting candidate set is sampled down to K and audited; compositions
// below the reach floor are dropped, as in the paper.
func (a *Auditor) GreedyCompositions(individuals []Measurement, c Class, cfg ComposeConfig) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	if cfg.Arity < 2 {
		return nil, fmt.Errorf("core: composition arity must be >= 2, got %d", cfg.Arity)
	}
	if a.p.CrossFeature() {
		if cfg.Arity != 2 {
			return nil, ErrCrossFeatureArity
		}
		return a.greedyCrossFeature(individuals, c, cfg)
	}
	ranked := sortBySkew(individuals, cfg.Direction)
	m, err := seedCount(cfg.K, cfg.Arity, len(ranked))
	if err != nil {
		return nil, err
	}
	seeds := ranked[:m]
	var specs []targeting.Spec
	combinations(m, cfg.Arity, func(idx []int) {
		parts := make([]targeting.Spec, cfg.Arity)
		for j, i := range idx {
			parts[j] = seeds[i].Spec
		}
		specs = append(specs, targeting.And(parts...))
	})
	return a.auditSpecs(sampleSpecs(specs, cfg.K, cfg.Seed), c)
}

// greedyCrossFeature builds attribute × topic pairs (Google; paper fn. 9:
// "the number of skewed individual options from each feature necessary to
// obtain 1,000 skewed compositions ... has to be computed in each case").
func (a *Auditor) greedyCrossFeature(individuals []Measurement, c Class, cfg ComposeConfig) ([]Measurement, error) {
	var attrs, topics []Measurement
	for _, m := range individuals {
		refs := targeting.Refs(m.Spec)
		if len(refs) != 1 {
			return nil, fmt.Errorf("core: individual measurement %q is not a single option", m.Desc)
		}
		switch refs[0].Kind {
		case targeting.KindAttribute:
			attrs = append(attrs, m)
		case targeting.KindTopic:
			topics = append(topics, m)
		default:
			return nil, fmt.Errorf("core: individual measurement %q has kind %s", m.Desc, refs[0].Kind)
		}
	}
	if len(attrs) == 0 || len(topics) == 0 {
		return nil, errors.New("core: cross-feature composition needs both attribute and topic individuals")
	}
	ra := sortBySkew(attrs, cfg.Direction)
	rt := sortBySkew(topics, cfg.Direction)
	// Grow both seed sets in lockstep until their product covers K.
	na, nt := 1, 1
	for na*nt < cfg.K && (na < len(ra) || nt < len(rt)) {
		if na <= nt && na < len(ra) {
			na++
		} else if nt < len(rt) {
			nt++
		} else if na < len(ra) {
			na++
		}
	}
	var specs []targeting.Spec
	for i := 0; i < na; i++ {
		for j := 0; j < nt; j++ {
			specs = append(specs, targeting.And(ra[i].Spec, rt[j].Spec))
		}
	}
	return a.auditSpecs(sampleSpecs(specs, cfg.K, cfg.Seed), c)
}

// RandomCompositions audits K uniformly random compositions — the paper's
// "Random 2-way" set, modelling what an honest advertiser combining options
// might do. Same-feature platforms pair distinct attributes; cross-feature
// platforms pair an attribute with a topic.
func (a *Auditor) RandomCompositions(c Class, cfg ComposeConfig) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	rng := xrand.New(xrand.Mix(cfg.Seed, xrand.HashString(a.p.Name()), uint64(cfg.Arity)))
	seen := make(map[string]bool)
	var specs []targeting.Spec
	// Draw more candidates than K to absorb duplicates; audit filters reach.
	for attempts := 0; len(specs) < cfg.K && attempts < cfg.K*20; attempts++ {
		var spec targeting.Spec
		if a.p.CrossFeature() {
			if cfg.Arity != 2 {
				return nil, ErrCrossFeatureArity
			}
			if len(a.attrNames) == 0 || len(a.topicNames) == 0 {
				return nil, errors.New("core: random cross-feature composition needs attributes and topics")
			}
			spec = targeting.And(
				targeting.Attr(rng.Intn(len(a.attrNames))),
				targeting.Topic(rng.Intn(len(a.topicNames))),
			)
		} else {
			if len(a.attrNames) < cfg.Arity {
				return nil, errors.New("core: not enough attributes for random composition")
			}
			ids := rng.Sample(len(a.attrNames), cfg.Arity)
			parts := make([]targeting.Spec, cfg.Arity)
			for j, id := range ids {
				parts[j] = targeting.Attr(id)
			}
			spec = targeting.And(parts...)
		}
		key := targeting.Canonical(spec)
		if seen[key] {
			continue
		}
		seen[key] = true
		specs = append(specs, spec)
	}
	return a.auditSpecs(specs, c)
}

// TopOf returns the n most skewed measurements toward the class (descending
// rep ratio). Used for the top-100 overlap and top-10 union analyses.
func TopOf(ms []Measurement, n int) []Measurement {
	ranked := sortBySkew(ms, Top)
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}

// MaxFinite returns the largest finite rep ratio in the set, or NaN if none.
func MaxFinite(ms []Measurement) float64 {
	out := math.NaN()
	for _, m := range ms {
		if math.IsInf(m.RepRatio, 0) {
			continue
		}
		if math.IsNaN(out) || m.RepRatio > out {
			out = m.RepRatio
		}
	}
	return out
}
