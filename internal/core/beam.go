package core

import (
	"errors"
	"fmt"

	"repro/internal/targeting"
)

// BeamConfig parameterizes beam-search composition discovery.
type BeamConfig struct {
	// Arity is the target composition depth (>= 2).
	Arity int
	// Width is the beam width: how many partial compositions survive each
	// level. Zero selects 50.
	Width int
	// Seeds is how many top-ranked individuals serve as extension
	// candidates at each level. Zero selects 46 (the paper's pairwise seed
	// count).
	Seeds int
	// Direction picks the skew end to chase.
	Direction Direction
}

// withDefaults fills zero fields.
func (cfg BeamConfig) withDefaults() BeamConfig {
	if cfg.Width == 0 {
		cfg.Width = 50
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = 46
	}
	return cfg
}

// BeamCompositions discovers k-way skewed compositions by beam search — an
// extension of the paper's greedy method. The paper's discovery composes
// the top-m individuals combinatorially, which explodes for arity ≥ 3
// (C(46,3) = 15,180 candidate triples); beam search instead keeps the Width
// most skewed partial compositions at each level and extends each with the
// top Seeds individuals, costing O(Arity × Width × Seeds) measurements.
// The paper anticipates exactly this escalation: "higher degrees of
// targeting compositions could potentially again enable highly skewed ad
// targeting" (Appendix A).
//
// individuals must be audited against c. On cross-feature platforms only
// arity 2 is expressible, as with the greedy method.
func (a *Auditor) BeamCompositions(individuals []Measurement, c Class, cfg BeamConfig) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	if cfg.Arity < 2 {
		return nil, fmt.Errorf("core: beam arity must be >= 2, got %d", cfg.Arity)
	}
	if a.p.CrossFeature() {
		if cfg.Arity != 2 {
			return nil, ErrCrossFeatureArity
		}
		// With exactly two AND-able features the beam degenerates to the
		// greedy pairwise product; reuse it.
		return a.GreedyCompositions(individuals, c, ComposeConfig{
			K: cfg.Width * cfg.Seeds, Direction: cfg.Direction,
		})
	}
	if len(individuals) == 0 {
		return nil, errors.New("core: beam search needs audited individuals")
	}

	ranked := sortBySkew(individuals, cfg.Direction)
	nSeeds := cfg.Seeds
	if nSeeds > len(ranked) {
		nSeeds = len(ranked)
	}
	seeds := ranked[:nSeeds]

	beam := ranked
	if len(beam) > cfg.Width {
		beam = beam[:cfg.Width]
	}
	for level := 2; level <= cfg.Arity; level++ {
		// Collect the level's deduplicated extension candidates first, then
		// audit them as one batch: the whole frontier is measured in a few
		// tiled passes (or one worker-pool fan-out) instead of one serial
		// Audit per candidate.
		seen := make(map[string]bool)
		var cands []targeting.Spec
		for _, partial := range beam {
			partialIDs := make(map[string]bool)
			for _, r := range targeting.Refs(partial.Spec) {
				partialIDs[r.String()] = true
			}
			for _, s := range seeds {
				refs := targeting.Refs(s.Spec)
				if len(refs) != 1 || partialIDs[refs[0].String()] {
					continue // already contains this option
				}
				spec := targeting.And(partial.Spec, s.Spec)
				key := targeting.Canonical(spec)
				if seen[key] {
					continue
				}
				seen[key] = true
				cands = append(cands, spec)
			}
		}
		results, err := a.auditMany(cands, c)
		if err != nil {
			return nil, fmt.Errorf("beam level %d: %w", level, err)
		}
		var next []Measurement
		for _, r := range results {
			if errors.Is(r.err, ErrBelowFloor) {
				continue
			}
			if r.err != nil {
				return nil, fmt.Errorf("beam level %d: %w", level, r.err)
			}
			next = append(next, r.m)
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("%w: no level-%d compositions above the reach floor", ErrBelowFloor, level)
		}
		next = sortBySkew(next, cfg.Direction)
		if len(next) > cfg.Width {
			next = next[:cfg.Width]
		}
		beam = next
	}
	return beam, nil
}
