package core

import (
	"fmt"

	"repro/internal/stats"
)

// RemovalPoint is one point of the removal sweep (paper Figures 3 and 6):
// after removing the most skewed individual targetings up to a percentile,
// how skewed do the greedily discovered compositions remain?
type RemovalPoint struct {
	// PercentRemoved is the percentile of individual targetings removed
	// (0, 2, 4, ... in the paper).
	PercentRemoved float64
	// Remaining is the number of individual targetings left.
	Remaining int
	// P90 is the 90th-percentile rep ratio of the Top compositions (for
	// Direction Top) or the 10th-percentile of the Bottom compositions (for
	// Direction Bottom) built from the remaining individuals.
	P90 float64
	// Max is the most extreme finite composition rep ratio at this point
	// (maximum for Top, minimum for Bottom).
	Max float64
	// Compositions is the number of measurable compositions discovered.
	Compositions int
}

// RemovalSweep removes the most skewed individual targetings in the given
// percentile steps and re-discovers the most skewed compositions from what
// remains. individuals must be audited against c. Direction Top removes the
// individuals most skewed toward the class and tracks the Top compositions'
// 90th percentile; Bottom removes those most skewed away and tracks the
// Bottom compositions' 10th percentile.
func (a *Auditor) RemovalSweep(individuals []Measurement, c Class, percentSteps []float64, cfg ComposeConfig) ([]RemovalPoint, error) {
	cfg = cfg.withDefaults()
	ranked := sortBySkew(individuals, cfg.Direction) // most skewed first
	out := make([]RemovalPoint, 0, len(percentSteps))
	for _, pct := range percentSteps {
		if pct < 0 || pct >= 100 {
			return nil, fmt.Errorf("core: removal percentile %v out of [0, 100)", pct)
		}
		drop := int(float64(len(ranked)) * pct / 100)
		remaining := ranked[drop:]
		comps, err := a.GreedyCompositions(remaining, c, cfg)
		if err != nil {
			return nil, fmt.Errorf("removal sweep at %v%%: %w", pct, err)
		}
		pt := RemovalPoint{
			PercentRemoved: pct,
			Remaining:      len(remaining),
			Compositions:   len(comps),
		}
		ratios := RepRatios(comps)
		if len(ratios) > 0 {
			if cfg.Direction == Top {
				p90, err := stats.Percentile(ratios, 90)
				if err != nil {
					return nil, err
				}
				pt.P90 = p90
				mx, _, err := maxMin(ratios)
				if err != nil {
					return nil, err
				}
				pt.Max = mx
			} else {
				p10, err := stats.Percentile(ratios, 10)
				if err != nil {
					return nil, err
				}
				pt.P90 = p10
				_, mn, err := maxMin(ratios)
				if err != nil {
					return nil, err
				}
				pt.Max = mn
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// maxMin returns the maximum and minimum of xs.
func maxMin(xs []float64) (mx, mn float64, err error) {
	mn, mx, err = stats.MinMax(xs)
	return mx, mn, err
}
