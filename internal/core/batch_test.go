package core

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// serialOnly hides a provider's BatchMeasurer implementation, forcing every
// fan-out above it down the serial worker-pool path. Used to compare the
// batched and serial auditor paths over the same platform.
type serialOnly struct{ p Provider }

func (s serialOnly) Name() string                               { return s.p.Name() }
func (s serialOnly) AttributeNames() []string                   { return s.p.AttributeNames() }
func (s serialOnly) TopicNames() []string                       { return s.p.TopicNames() }
func (s serialOnly) CrossFeature() bool                         { return s.p.CrossFeature() }
func (s serialOnly) Measure(spec targeting.Spec) (int64, error) { return s.p.Measure(spec) }

func TestBatchCapable(t *testing.T) {
	d := testDeploy(t)
	pp := NewPlatformProvider(d.Facebook)
	if !batchCapable(pp) {
		t.Error("platform provider should be batch-capable")
	}
	if !batchCapable(NewCachingProviderWith(pp, obs.NewRegistry())) {
		t.Error("caching provider over a kernel should be batch-capable")
	}
	if batchCapable(serialOnly{pp}) {
		t.Error("serialOnly wrapper must not be batch-capable")
	}
	if batchCapable(NewCachingProviderWith(serialOnly{pp}, obs.NewRegistry())) {
		t.Error("caching provider over a serial provider must not be batch-capable")
	}
	if batchCapable(&slowProvider{attrs: []string{"a"}}) {
		t.Error("test fake must not be batch-capable")
	}
}

// TestMeasureManyFallbackSerial: the package-level helper must serve plain
// providers with serial calls in slot order.
func TestMeasureManyFallbackSerial(t *testing.T) {
	sp := &slowProvider{attrs: []string{"a", "b"}}
	specs := []targeting.Spec{targeting.Attr(0), targeting.Attr(1), targeting.Attr(0)}
	res := MeasureMany(sp, specs)
	if len(res) != 3 {
		t.Fatalf("got %d slots, want 3", len(res))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
	}
	if got := sp.calls.Load(); got != 3 {
		t.Errorf("upstream calls = %d, want 3 (no dedup without a cache)", got)
	}
}

// TestMeasureManyBudgetChargesOnlyUniqueMisses is the budget acceptance
// criterion: a batch with K slots answerable from cache charges the budget
// for at most batch−K upstream queries, and in-batch duplicates of one key
// are charged once.
func TestMeasureManyBudgetChargesOnlyUniqueMisses(t *testing.T) {
	sp := &slowProvider{attrs: []string{"a", "b", "c", "d", "e", "f"}}
	cp := NewCachingProviderWith(sp, obs.NewRegistry())

	// Warm two keys serially: K = 2 cached slots.
	for i := 0; i < 2; i++ {
		if _, err := cp.Measure(targeting.Attr(i)); err != nil {
			t.Fatal(err)
		}
	}
	SetQueryBudget(cp, 4) // 2 spent, 2 remaining

	// Batch of 8 slots: 2 cached, 2 duplicate pairs (2 unique misses),
	// then 2 more distinct misses that must be refused — the 2 remaining
	// budget calls are consumed by the first 2 unique misses.
	specs := []targeting.Spec{
		targeting.Attr(0), // cached
		targeting.Attr(2), // miss (charged)
		targeting.Attr(1), // cached
		targeting.Attr(3), // miss (charged)
		targeting.Attr(2), // duplicate of slot 1 — free
		targeting.Attr(3), // duplicate of slot 3 — free
		targeting.Attr(4), // over budget — refused
		targeting.Attr(5), // over budget — refused
	}
	res := cp.(*cachingProvider).MeasureMany(specs)
	for _, i := range []int{0, 1, 2, 3, 4, 5} {
		if res[i].Err != nil {
			t.Errorf("slot %d: unexpected error %v", i, res[i].Err)
		}
	}
	for _, i := range []int{6, 7} {
		if !errors.Is(res[i].Err, ErrQueryBudget) {
			t.Errorf("slot %d: err = %v, want ErrQueryBudget", i, res[i].Err)
		}
	}
	if res[1].Size != res[4].Size || res[3].Size != res[5].Size {
		t.Error("duplicate slots disagree with their claims")
	}
	if got := sp.calls.Load(); got != 4 {
		t.Errorf("upstream calls = %d, want 4 (2 warm + 2 batch misses)", got)
	}
	if got := UpstreamCalls(cp); got != 4 {
		t.Errorf("UpstreamCalls = %d, want 4", got)
	}
	stats, _ := StatsOf(cp)
	if stats.Hits != 2 || stats.Collapsed != 2 || stats.Refused != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 collapsed / 2 refused", stats)
	}
}

// TestMeasureManyStoreHitsAreBudgetFree: a second process re-batching
// persisted specs pays zero upstream budget for the stored slots.
func TestMeasureManyStoreHitsAreBudgetFree(t *testing.T) {
	dir := t.TempDir()
	specs := []targeting.Spec{targeting.Attr(0), targeting.Attr(1), targeting.Attr(2)}

	st1 := openStore(t, dir)
	sp1 := &slowProvider{attrs: []string{"a", "b", "c", "d"}}
	cp1 := NewStoredProviderWith(sp1, st1, obs.NewRegistry())
	first := cp1.(*cachingProvider).MeasureMany(specs)
	for i, r := range first {
		if r.Err != nil {
			t.Fatalf("first run slot %d: %v", i, r.Err)
		}
	}
	if got := sp1.calls.Load(); got != 3 {
		t.Fatalf("first run upstream calls = %d, want 3", got)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second process: 3 stored slots + 1 genuinely new one, budget 1. The
	// stored slots must not touch the budget; the new slot consumes it.
	st2 := openStore(t, dir)
	sp2 := &slowProvider{attrs: []string{"a", "b", "c", "d"}}
	cp2 := NewStoredProviderWith(sp2, st2, obs.NewRegistry())
	SetQueryBudget(cp2, 1)
	batch := append(append([]targeting.Spec{}, specs...), targeting.Attr(3))
	res := cp2.(*cachingProvider).MeasureMany(batch)
	for i := range specs {
		if res[i].Err != nil {
			t.Errorf("stored slot %d: %v", i, res[i].Err)
		}
		if res[i].Size != first[i].Size {
			t.Errorf("stored slot %d: size %d, want %d", i, res[i].Size, first[i].Size)
		}
	}
	if res[3].Err != nil {
		t.Errorf("new slot: %v", res[3].Err)
	}
	if got := sp2.calls.Load(); got != 1 {
		t.Errorf("second run upstream calls = %d, want 1 (stored slots are free)", got)
	}
}

// TestMeasureManyRefundsFailedSlots: failed upstream slots surface their
// error, stay uncached, and refund their budget charge.
func TestMeasureManyRefundsFailedSlots(t *testing.T) {
	boom := errors.New("boom")
	sp := &slowProvider{attrs: []string{"a", "b", "c", "d"}, fail: func(spec targeting.Spec) error {
		refs := targeting.Refs(spec)
		if len(refs) == 1 && refs[0].ID%2 == 1 {
			return boom
		}
		return nil
	}}
	cp := NewCachingProviderWith(sp, obs.NewRegistry())
	specs := []targeting.Spec{targeting.Attr(0), targeting.Attr(1), targeting.Attr(2), targeting.Attr(3)}
	for round := 0; round < 2; round++ {
		res := cp.(*cachingProvider).MeasureMany(specs)
		for i, r := range res {
			if i%2 == 1 {
				if !errors.Is(r.Err, boom) {
					t.Fatalf("round %d slot %d: err = %v, want boom", round, i, r.Err)
				}
				if r.Size != 0 {
					t.Fatalf("round %d slot %d: failed slot has size %d", round, i, r.Size)
				}
			} else if r.Err != nil {
				t.Fatalf("round %d slot %d: %v", round, i, r.Err)
			}
		}
	}
	// Round 1: 4 calls (2 fail, refunded). Round 2: even keys cached, odd
	// keys retried (and refunded again) — 6 upstream calls, 2 charged.
	if got := sp.calls.Load(); got != 6 {
		t.Errorf("upstream calls = %d, want 6", got)
	}
	if got := UpstreamCalls(cp); got != 2 {
		t.Errorf("UpstreamCalls = %d, want 2 (failures refunded)", got)
	}
}

// TestMeasureManySingleflightAcrossBatches: concurrent batches over the
// same key set still produce exactly one upstream call per unique key —
// whichever batch claims a key first serves the rest.
func TestMeasureManySingleflightAcrossBatches(t *testing.T) {
	sp := &slowProvider{attrs: []string{"a", "b", "c", "d", "e", "f", "g", "h"}}
	cp := NewCachingProviderWith(sp, obs.NewRegistry()).(*cachingProvider)
	specs := make([]targeting.Spec, 8)
	for i := range specs {
		specs[i] = targeting.Attr(i)
	}
	var wg sync.WaitGroup
	results := make([][]BatchResult, 6)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines batch in reverse order to force
			// cross-batch wait interleavings.
			batch := specs
			if g%2 == 1 {
				batch = make([]targeting.Spec, len(specs))
				for i, s := range specs {
					batch[len(specs)-1-i] = s
				}
			}
			results[g] = cp.MeasureMany(batch)
		}(g)
	}
	wg.Wait()
	for g, res := range results {
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("goroutine %d slot %d: %v", g, i, r.Err)
			}
			j := i
			if g%2 == 1 {
				j = len(specs) - 1 - i
			}
			if r.Size != results[0][j].Size {
				t.Fatalf("goroutine %d slot %d: size %d, want %d", g, i, r.Size, results[0][j].Size)
			}
		}
	}
	if got := sp.calls.Load(); got != int64(len(specs)) {
		t.Errorf("upstream calls = %d, want %d (one per unique key)", got, len(specs))
	}
}

// sameMeasurements compares two measurement slices field by field.
func sameMeasurements(t *testing.T, label string, got, want []Measurement) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d measurements, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s[%d]:\n  batched: %+v\n  serial:  %+v", label, i, got[i], want[i])
		}
	}
}

// TestBatchedAuditorMatchesSerial is the end-to-end equivalence property:
// every fan-out workload — individual scans, greedy composition, beam
// search, overlap and union analyses — must produce identical results
// through the batched path and the serial worker-pool path.
func TestBatchedAuditorMatchesSerial(t *testing.T) {
	d := testDeploy(t)
	for _, iface := range []*platform.Interface{d.Facebook, d.Google} {
		pp := NewPlatformProvider(iface)
		batched := NewAuditorWith(pp, obs.NewRegistry())
		serial := NewAuditorWith(serialOnly{pp}, obs.NewRegistry())
		serial.Concurrency = 4
		for _, c := range []Class{male(), female(), young().Not()} {
			bi, err := batched.Individuals(c)
			if err != nil {
				t.Fatalf("%s/%s batched Individuals: %v", iface.Name(), c, err)
			}
			si, err := serial.Individuals(c)
			if err != nil {
				t.Fatalf("%s/%s serial Individuals: %v", iface.Name(), c, err)
			}
			sameMeasurements(t, iface.Name()+"/"+c.String()+"/individuals", bi, si)

			bg, berr := batched.GreedyCompositions(bi, c, ComposeConfig{K: 20})
			sg, serr := serial.GreedyCompositions(si, c, ComposeConfig{K: 20})
			if (berr == nil) != (serr == nil) {
				t.Fatalf("%s/%s greedy: batched err=%v, serial err=%v", iface.Name(), c, berr, serr)
			}
			if berr == nil {
				sameMeasurements(t, iface.Name()+"/"+c.String()+"/greedy", bg, sg)
			}

			if berr == nil && len(bg) >= 2 {
				top := bg
				if len(top) > 6 {
					top = top[:6]
				}
				bo, berr := batched.MedianOverlap(top, c, OverlapConfig{MaxPairs: 10, Seed: 3})
				so, serr := serial.MedianOverlap(top, c, OverlapConfig{MaxPairs: 10, Seed: 3})
				if (berr == nil) != (serr == nil) || (berr == nil && bo != so) {
					t.Fatalf("%s/%s overlap: batched (%v, %v), serial (%v, %v)",
						iface.Name(), c, bo, berr, so, serr)
				}
				bu, berr := batched.EstimateUnionRecall(top[:2], c, 0)
				su, serr := serial.EstimateUnionRecall(top[:2], c, 0)
				if (berr == nil) != (serr == nil) || (berr == nil && !reflect.DeepEqual(bu, su)) {
					t.Fatalf("%s/%s union: batched (%+v, %v), serial (%+v, %v)",
						iface.Name(), c, bu, berr, su, serr)
				}
			}
		}
	}
}

// TestBatchedBeamMatchesSerial compares beam search (the deepest fan-out)
// between the two paths on a non-cross-feature platform.
func TestBatchedBeamMatchesSerial(t *testing.T) {
	d := testDeploy(t)
	pp := NewPlatformProvider(d.Facebook)
	batched := NewAuditorWith(pp, obs.NewRegistry())
	serial := NewAuditorWith(serialOnly{pp}, obs.NewRegistry())
	c := female()
	bi, err := batched.Individuals(c)
	if err != nil {
		t.Fatal(err)
	}
	si, err := serial.Individuals(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BeamConfig{Arity: 3, Width: 8, Seeds: 10}
	bb, berr := batched.BeamCompositions(bi, c, cfg)
	sb, serr := serial.BeamCompositions(si, c, cfg)
	if (berr == nil) != (serr == nil) {
		t.Fatalf("beam: batched err=%v, serial err=%v", berr, serr)
	}
	if berr == nil {
		sameMeasurements(t, "beam", bb, sb)
	}
}
