package core

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/targeting"
)

// The auditor's metadata accessors and the measurement-set extractors are
// part of the figures pipeline's contract; pin them against a real
// deployment interface.
func TestAuditorAccessorsAndExtractors(t *testing.T) {
	d, err := platform.NewDeployment(platform.DeployOptions{Seed: 11, UniverseSize: 4000})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAuditor(NewPlatformProvider(d.Facebook))
	if a.PlatformName() != d.Facebook.Name() {
		t.Fatalf("PlatformName = %q, want %q", a.PlatformName(), d.Facebook.Name())
	}
	if a.AttrCount() != len(d.Facebook.Catalog().Attributes) {
		t.Fatalf("AttrCount = %d", a.AttrCount())
	}
	if a.TopicCount() != len(d.Facebook.Catalog().Topics) {
		t.Fatalf("TopicCount = %d", a.TopicCount())
	}

	ms := []Measurement{{Recall: 3}, {Recall: 7}}
	rs := Recalls(ms)
	if len(rs) != 2 || rs[0] != 3 || rs[1] != 7 {
		t.Fatalf("Recalls = %v", rs)
	}
}

// NewStoredProvider (the registry-defaulting wrapper) and the untraced
// batch doors on the platform provider share one contract with their
// explicit-argument siblings: identical answers.
func TestDefaultedWrappersMatchExplicit(t *testing.T) {
	d, err := platform.NewDeployment(platform.DeployOptions{Seed: 11, UniverseSize: 4000})
	if err != nil {
		t.Fatal(err)
	}
	pp := NewPlatformProvider(d.Facebook)
	spec := targeting.Attr(0)
	want, err := pp.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}

	bm, ok := pp.(BatchMeasurer)
	if !ok {
		t.Fatal("platform provider does not implement BatchMeasurer")
	}
	out := bm.MeasureMany([]targeting.Spec{spec})
	if len(out) != 1 || out[0].Err != nil || out[0].Size != want {
		t.Fatalf("MeasureMany = %+v, want size %d", out, want)
	}

	st := openStore(t, t.TempDir())
	sp := NewStoredProvider(pp, st)
	got, err := sp.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stored provider measured %d, want %d", got, want)
	}
}
