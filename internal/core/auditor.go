package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/population"
	"repro/internal/targeting"
)

// DefaultRecallFloor is the paper's niche-targeting cutoff: targetings with
// a total reach below 10,000 are excluded everywhere (§3).
const DefaultRecallFloor = 10_000

// ErrBelowFloor marks a targeting whose audience is too small to measure a
// meaningful representation ratio (both the in-class and out-of-class
// estimates rounded to zero, or reach below the floor).
var ErrBelowFloor = errors.New("core: targeting below measurement floor")

// Measurement is one audited targeting: its spec, a human-readable
// description, and the metrics of Equation 1.
type Measurement struct {
	// Desc describes the targeting, e.g. "Electrical engineering ∧ Cars".
	Desc string
	// Spec is the measured targeting expression.
	Spec targeting.Spec
	// RepRatio is the representation ratio toward the audited class
	// (Equation 1); math.Inf(1) when the out-of-class estimate rounds to 0.
	RepRatio float64
	// Recall is |TA ∩ RA_s| — how many members of the sensitive population
	// the targeting reaches (for excluded classes, the complement count).
	Recall int64
	// TotalReach is |TA| at platform scale.
	TotalReach int64
	// InClass and OutClass are the rounded estimates of |TA ∩ RA_s| and
	// |TA ∩ RA_¬s| for the base (non-excluded) class, retained so rounding
	// bounds can be re-analysed (§3, "Understanding size estimates").
	InClass, OutClass int64
	// TraceID links the measurement to its recorded distributed trace
	// (/debug/traces, adauditctl -trace) when the process tracer sampled
	// it; empty otherwise. Provenance records carry the same ID, so a
	// reported number is attributable to the exact spans — cache tier,
	// compiled plan, shard set — that produced it.
	TraceID string `json:",omitempty"`
}

// Auditor runs the paper's measurements against one platform Provider.
type Auditor struct {
	p Provider
	// raw is the uncached provider, used where the methodology must
	// genuinely re-issue calls (the consistency study).
	raw Provider
	// RecallFloor is the minimum total reach for a targeting to be
	// considered (platform-scale).
	RecallFloor int64
	// Concurrency is the worker count IndividualScan fans measurements out
	// over (<=1 = serial). The measurement cache and providers are safe for
	// concurrent use; the Auditor itself must still be driven from one
	// goroutine.
	Concurrency int
	// Progress, when set, receives live audit progress during fan-out
	// scans: the number of specs completed so far and the batch total.
	// Deliveries are serialized and monotonic — done never decreases
	// within a batch, and the final done == total call is always the last
	// — but under the concurrent audit pool a callback may coalesce
	// several completions into one delivery. The callback must be fast
	// (it sits on the audit path) and may be invoked from worker
	// goroutines. No callbacks are delivered after Ctx is cancelled and
	// the in-flight fan-out has returned.
	Progress func(done, total int)
	// Ctx, when non-nil, cancels audit campaigns: once the context is
	// done, Audit and the fan-out scans fail fast with the context's
	// error instead of issuing further measurements, and progress
	// callbacks stop. Cancellation takes effect between specs on the
	// serial and pooled paths and between measurement phases on the
	// batched path.
	Ctx context.Context

	attrNames  []string
	topicNames []string

	mSpecs      *obs.Counter // audit_specs_total: specs audited
	mBelowFloor *obs.Counter // audit_below_floor_total: under the recall floor

	// scope is ANDed into every measurement: the paper's methodology
	// targets all U.S. users as the reference audience RA (§3), expressed
	// through the platforms' location targeting. Nil disables scoping.
	scope targeting.Clause

	classTotals map[Class]classTotals
}

// classTotals caches |RA_s| and |RA_¬s| per class.
type classTotals struct {
	in, out int64
}

// NewAuditor returns an auditor over p with the paper's default floor. The
// provider is wrapped with a measurement cache if it is not already one;
// audit metrics land in the process-wide obs registry.
func NewAuditor(p Provider) *Auditor {
	return NewAuditorWith(p, nil)
}

// NewAuditorWith is NewAuditor reporting into reg (nil selects
// obs.Default()); a cache wrapper created here reports into the same
// registry.
func NewAuditorWith(p Provider, reg *obs.Registry) *Auditor {
	if reg == nil {
		reg = obs.Default()
	}
	raw := p
	if cp, ok := p.(*cachingProvider); ok {
		raw = cp.Provider
	} else {
		p = NewCachingProviderWith(p, reg)
	}
	lbl := obs.L("platform", p.Name())
	return &Auditor{
		p:           p,
		raw:         raw,
		RecallFloor: DefaultRecallFloor,
		attrNames:   p.AttributeNames(),
		topicNames:  p.TopicNames(),
		scope:       targeting.Clause{{Kind: targeting.KindLocation, ID: int(population.RegionUS)}},
		classTotals: make(map[Class]classTotals),
		mSpecs:      reg.Counter("audit_specs_total", lbl),
		mBelowFloor: reg.Counter("audit_below_floor_total", lbl),
	}
}

// ctxErr reports the auditor's cancellation state (nil without a Ctx).
func (a *Auditor) ctxErr() error {
	if a.Ctx == nil {
		return nil
	}
	return a.Ctx.Err()
}

// SetScope replaces the location scope ANDed into every measurement
// (nil = measure the platform's whole user base).
func (a *Auditor) SetScope(cl targeting.Clause) {
	a.scope = append(targeting.Clause(nil), cl...)
	if len(a.scope) == 0 {
		a.scope = nil
	}
	// Totals depend on the scope; drop the cache.
	a.classTotals = make(map[Class]classTotals)
}

// scoped returns spec AND the auditor's location scope.
func (a *Auditor) scoped(spec targeting.Spec) targeting.Spec {
	if a.scope == nil {
		return spec
	}
	return withClause(spec, a.scope)
}

// measureScoped is the auditor's sole measurement path: every size the
// methodology consumes is restricted to the scope population.
func (a *Auditor) measureScoped(spec targeting.Spec) (int64, error) {
	return a.measureScopedSpan(nil, spec)
}

// measureScopedSpan is measureScoped under an optional trace span: with a
// live span the measurement flows through the provider chain's traced
// doors (cache outcome, platform kernel, cluster fan-out spans); without
// one it is the plain Measure call.
func (a *Auditor) measureScopedSpan(span *trace.Span, spec targeting.Spec) (int64, error) {
	if span == nil {
		return a.p.Measure(a.scoped(spec))
	}
	return MeasureCtx(spanContext(span), a.p, a.scoped(spec))
}

// Provider returns the underlying (cache-wrapped) provider.
func (a *Auditor) Provider() Provider { return a.p }

// PlatformName returns the audited platform interface's name.
func (a *Auditor) PlatformName() string { return a.p.Name() }

// AttrCount returns the number of attribute options.
func (a *Auditor) AttrCount() int { return len(a.attrNames) }

// TopicCount returns the number of topic options.
func (a *Auditor) TopicCount() int { return len(a.topicNames) }

// RefName returns the display name of a targeting ref.
func (a *Auditor) RefName(r targeting.Ref) string {
	switch r.Kind {
	case targeting.KindAttribute:
		if r.ID >= 0 && r.ID < len(a.attrNames) {
			return a.attrNames[r.ID]
		}
	case targeting.KindTopic:
		if r.ID >= 0 && r.ID < len(a.topicNames) {
			return a.topicNames[r.ID]
		}
	}
	return r.String()
}

// Describe renders a spec as the conjunction of its option names.
func (a *Auditor) Describe(spec targeting.Spec) string {
	refs := targeting.Refs(spec)
	parts := make([]string, 0, len(refs))
	for _, r := range refs {
		if r.Kind == targeting.KindAttribute || r.Kind == targeting.KindTopic {
			parts = append(parts, a.RefName(r))
		}
	}
	return strings.Join(parts, " ∧ ")
}

// totals measures (and caches) |RA_s| and |RA_¬s| for the class.
func (a *Auditor) totals(c Class) (classTotals, error) {
	return a.totalsSpan(nil, c)
}

// totalsSpan is totals with the measurements attributed to span's trace.
func (a *Auditor) totalsSpan(span *trace.Span, c Class) (classTotals, error) {
	key := c
	key.Excluded = false
	if t, ok := a.classTotals[key]; ok {
		return t, nil
	}
	in, err := a.measureScopedSpan(span, specOf(key.baseClause()))
	if err != nil {
		return classTotals{}, fmt.Errorf("measuring |RA_s| for %s: %w", key, err)
	}
	var out int64
	for _, cl := range key.otherClauses() {
		v, err := a.measureScopedSpan(span, specOf(cl))
		if err != nil {
			return classTotals{}, fmt.Errorf("measuring |RA_v| for %s: %w", key, err)
		}
		out += v
	}
	t := classTotals{in: in, out: out}
	a.classTotals[key] = t
	return t, nil
}

// PopulationSize returns |RA_s| for the class — the denominator the paper's
// Figure 5 reports as the total size of each sensitive population.
func (a *Auditor) PopulationSize(c Class) (int64, error) {
	t, err := a.totals(c)
	if err != nil {
		return 0, err
	}
	if c.Excluded {
		return t.out, nil
	}
	return t.in, nil
}

// Audit measures one targeting against one class: total reach, recall, and
// the representation ratio of Equation 1. It returns ErrBelowFloor for
// targetings whose total reach is under the floor (wrapped so callers can
// errors.Is it).
func (a *Auditor) Audit(spec targeting.Spec, c Class) (Measurement, error) {
	if err := validateClass(c); err != nil {
		return Measurement{}, err
	}
	if err := a.ctxErr(); err != nil {
		return Measurement{}, err
	}
	a.mSpecs.Inc()
	m := Measurement{Desc: a.Describe(spec), Spec: spec}

	// One audited spec = one trace: the root span covers every size query
	// (reach, class totals, conditioned sizes) the measurement consumes.
	// With tracing disabled StartRoot returns nil and every traced branch
	// below is a pointer check.
	root := trace.Default().StartRoot("audit.measure")
	if root.Sampled() {
		root.Annotate("platform", a.p.Name())
		root.Annotate("spec", m.Desc)
		root.Annotate("class", c.String())
		m.TraceID = root.TraceID()
	}
	var auditErr error
	defer func() {
		root.SetError(auditErr)
		root.End()
	}()

	reach, err := a.measureScopedSpan(root, spec)
	if err != nil {
		auditErr = err
		return m, err
	}
	m.TotalReach = reach
	if reach < a.RecallFloor {
		a.mBelowFloor.Inc()
		auditErr = fmt.Errorf("%w: reach %d < %d", ErrBelowFloor, reach, a.RecallFloor)
		return m, auditErr
	}

	base := c
	base.Excluded = false
	tot, err := a.totalsSpan(root, base)
	if err != nil {
		auditErr = err
		return m, err
	}
	tIn, err := a.measureScopedSpan(root, withClause(spec, base.baseClause()))
	if err != nil {
		auditErr = err
		return m, err
	}
	var tOut int64
	for _, cl := range base.otherClauses() {
		v, err := a.measureScopedSpan(root, withClause(spec, cl))
		if err != nil {
			auditErr = err
			return m, err
		}
		tOut += v
	}

	if err := finishMeasurement(&m, c, tot, tIn, tOut); err != nil {
		auditErr = err
		return m, err
	}
	return m, nil
}

// finishMeasurement fills the Equation 1 fields of a measurement from the
// measured class-conditioned sizes — shared by the serial Audit path and
// the batched fan-out so both compute identical ratios and recalls.
func finishMeasurement(m *Measurement, c Class, tot classTotals, tIn, tOut int64) error {
	m.InClass, m.OutClass = tIn, tOut
	ratio, err := repRatio(tIn, tOut, tot.in, tot.out)
	if err != nil {
		return err
	}
	if c.Excluded {
		// Ratio toward the complement population is the reciprocal; recall
		// counts users outside the base class.
		if ratio == 0 {
			ratio = math.Inf(1)
		} else {
			ratio = 1 / ratio
		}
		m.Recall = tOut
	} else {
		m.Recall = tIn
	}
	m.RepRatio = ratio
	return nil
}

// repRatio evaluates Equation 1 from rounded estimates. When the
// out-of-class audience rounds to zero the ratio is +Inf; when the in-class
// audience rounds to zero it is 0; when both do, the targeting is
// unmeasurable.
func repRatio(tIn, tOut, rIn, rOut int64) (float64, error) {
	if rIn <= 0 || rOut <= 0 {
		return 0, fmt.Errorf("core: empty sensitive population (|RA_s|=%d, |RA_¬s|=%d)", rIn, rOut)
	}
	switch {
	case tIn <= 0 && tOut <= 0:
		return 0, fmt.Errorf("%w: both class audiences round to zero", ErrBelowFloor)
	case tOut <= 0:
		return math.Inf(1), nil
	case tIn <= 0:
		return 0, nil
	}
	num := float64(tIn) / float64(rIn)
	den := float64(tOut) / float64(rOut)
	return num / den, nil
}

// RepRatios extracts the finite representation ratios of a measurement set
// (the values the paper's box plots summarize; infinities are dropped).
func RepRatios(ms []Measurement) []float64 {
	out := make([]float64, 0, len(ms))
	for _, m := range ms {
		if !math.IsInf(m.RepRatio, 0) && m.RepRatio > 0 {
			out = append(out, m.RepRatio)
		}
	}
	return out
}

// Recalls extracts the recalls of a measurement set.
func Recalls(ms []Measurement) []float64 {
	out := make([]float64, 0, len(ms))
	for _, m := range ms {
		out = append(out, float64(m.Recall))
	}
	return out
}

// FilterSkewedToward returns the measurements whose rep ratio exceeds the
// four-fifths upper bound (skewed toward the audited class) — the subsets
// whose recall distributions Figure 5 plots.
func FilterSkewedToward(ms []Measurement) []Measurement {
	var out []Measurement
	for _, m := range ms {
		if m.RepRatio > FourFifthsHigh {
			out = append(out, m)
		}
	}
	return out
}

// FilterOutsideFourFifths returns the measurements violating the
// four-fifths rule in either direction.
func FilterOutsideFourFifths(ms []Measurement) []Measurement {
	var out []Measurement
	for _, m := range ms {
		if OutsideFourFifths(m.RepRatio) {
			out = append(out, m)
		}
	}
	return out
}
