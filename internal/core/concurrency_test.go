package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/targeting"
)

// slowProvider is a Provider stub whose Measure sleeps briefly and records
// how many upstream calls (and how many at once) it observed.
type slowProvider struct {
	attrs      []string
	calls      atomic.Int64
	inFlight   atomic.Int64
	maxInFight atomic.Int64
	fail       func(spec targeting.Spec) error
}

func (sp *slowProvider) Name() string             { return "slow" }
func (sp *slowProvider) AttributeNames() []string { return sp.attrs }
func (sp *slowProvider) TopicNames() []string     { return nil }
func (sp *slowProvider) CrossFeature() bool       { return false }

func (sp *slowProvider) Measure(spec targeting.Spec) (int64, error) {
	cur := sp.inFlight.Add(1)
	defer sp.inFlight.Add(-1)
	for {
		old := sp.maxInFight.Load()
		if cur <= old || sp.maxInFight.CompareAndSwap(old, cur) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	sp.calls.Add(1)
	if sp.fail != nil {
		if err := sp.fail(spec); err != nil {
			return 0, err
		}
	}
	return 1_000_000 + int64(100*len(targeting.Refs(spec))), nil
}

// TestCachingProviderSingleflight asserts that concurrent misses on the
// same canonical key collapse into one upstream call serving every waiter.
func TestCachingProviderSingleflight(t *testing.T) {
	sp := &slowProvider{attrs: []string{"a", "b"}}
	cp := NewCachingProvider(sp)
	spec := targeting.Attr(0)
	const waiters = 32
	var wg sync.WaitGroup
	results := make([]int64, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cp.Measure(spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("waiter %d got %d, waiter 0 got %d", i, results[i], results[0])
		}
	}
	if got := sp.calls.Load(); got != 1 {
		t.Fatalf("upstream calls = %d, want 1 (thundering herd)", got)
	}
	if got := UpstreamCalls(cp); got != 1 {
		t.Fatalf("UpstreamCalls = %d, want 1", got)
	}
}

// TestCachingProviderBudgetCountsUniqueMisses asserts the budget charges
// one call per unique key regardless of how many goroutines race the miss,
// and that a genuinely new key beyond the budget is refused.
func TestCachingProviderBudgetCountsUniqueMisses(t *testing.T) {
	sp := &slowProvider{attrs: []string{"a", "b", "c"}}
	cp := NewCachingProvider(sp)
	if !SetQueryBudget(cp, 2) {
		t.Fatal("SetQueryBudget rejected a caching provider")
	}
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cp.Measure(targeting.Attr(i % 2)); err != nil {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d waiters failed under a budget of 2 with 2 unique keys", failed.Load())
	}
	if got := sp.calls.Load(); got != 2 {
		t.Fatalf("upstream calls = %d, want 2", got)
	}
	if _, err := cp.Measure(targeting.Attr(2)); !errors.Is(err, ErrQueryBudget) {
		t.Fatalf("third unique key: err = %v, want ErrQueryBudget", err)
	}
}

// TestCachingProviderErrorNotCached asserts a failed upstream call is
// shared with concurrent waiters but neither cached nor charged, so a
// retry reaches upstream again.
func TestCachingProviderErrorNotCached(t *testing.T) {
	boom := errors.New("boom")
	var failOnce atomic.Bool
	failOnce.Store(true)
	sp := &slowProvider{attrs: []string{"a"}, fail: func(targeting.Spec) error {
		if failOnce.Swap(false) {
			return boom
		}
		return nil
	}}
	cp := NewCachingProvider(sp)
	if _, err := cp.Measure(targeting.Attr(0)); !errors.Is(err, boom) {
		t.Fatalf("first call: err = %v, want boom", err)
	}
	if got := UpstreamCalls(cp); got != 0 {
		t.Fatalf("UpstreamCalls after failure = %d, want 0 (refunded)", got)
	}
	if _, err := cp.Measure(targeting.Attr(0)); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if got := UpstreamCalls(cp); got != 1 {
		t.Fatalf("UpstreamCalls after retry = %d, want 1", got)
	}
}

// TestParallelScanMatchesSerial asserts a concurrent IndividualScan and
// concurrent GreedyCompositions produce exactly the serial results on a
// shared simulated interface.
func TestParallelScanMatchesSerial(t *testing.T) {
	d, err := platform.NewDeployment(platform.DeployOptions{Seed: 31, UniverseSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	male := GenderClass(population.Male)

	serialA := NewAuditor(NewPlatformProvider(d.FacebookRestricted))
	serialInd, err := serialA.Individuals(male)
	if err != nil {
		t.Fatal(err)
	}
	serialTop, err := serialA.GreedyCompositions(serialInd, male, ComposeConfig{K: 60, Direction: Top, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	parA := NewAuditor(NewPlatformProvider(d.FacebookRestricted))
	parA.Concurrency = 8
	parInd, err := parA.Individuals(male)
	if err != nil {
		t.Fatal(err)
	}
	parTop, err := parA.GreedyCompositions(parInd, male, ComposeConfig{K: 60, Direction: Top, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	assertSameMeasurements := func(label string, a, b []Measurement) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: serial found %d measurements, parallel %d", label, len(a), len(b))
		}
		for i := range a {
			if a[i].Desc != b[i].Desc || a[i].RepRatio != b[i].RepRatio ||
				a[i].Recall != b[i].Recall || a[i].TotalReach != b[i].TotalReach {
				t.Fatalf("%s: measurement %d differs:\nserial   %+v\nparallel %+v", label, i, a[i], b[i])
			}
		}
	}
	assertSameMeasurements("individuals", serialInd, parInd)
	assertSameMeasurements("top 2-way", serialTop, parTop)
}

// TestConcurrentAuditorsSharedInterface drives several auditors (each its
// own goroutine, as the Auditor contract requires) against one shared
// platform interface under -race.
func TestConcurrentAuditorsSharedInterface(t *testing.T) {
	d, err := platform.NewDeployment(platform.DeployOptions{Seed: 31, UniverseSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	male := GenderClass(population.Male)
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := NewAuditor(NewPlatformProvider(d.Facebook))
			a.Concurrency = 4
			if _, err := a.Individuals(male); err != nil {
				errCh <- fmt.Errorf("concurrent scan: %w", err)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
