// Package core implements the paper's audit methodology — the primary
// contribution of the reproduction. Given only the measurement channel the
// live platforms give an auditor (targeting spec in, rounded audience-size
// estimate out), it computes representation ratios and recalls (§3),
// scans individual targeting options (§4.2), discovers skewed targeting
// compositions greedily (§3, §4.1, §4.3), measures overlap between skewed
// audiences and estimates union recall by inclusion–exclusion (§4.3,
// Table 1), sweeps the removal of skewed individual options (Fig. 3/6), and
// reproduces the estimate consistency and granularity studies (§3).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// Provider is the audit's only view of an ad platform: the option lists the
// paper scraped from the targeting UI, plus the size-estimate call it
// automated. Implementations exist for in-process simulators (this package)
// and for remote platforms over HTTP (internal/adapi).
type Provider interface {
	// Name identifies the platform interface.
	Name() string
	// AttributeNames lists the display names of the default attribute list.
	AttributeNames() []string
	// TopicNames lists topic options (empty off Google).
	TopicNames() []string
	// Measure returns the platform's rounded, platform-scale audience-size
	// estimate for the spec, under the auditor's measurement rules.
	Measure(spec targeting.Spec) (int64, error)
	// CrossFeature reports whether AND-composition must span the attribute
	// and topic features (Google) rather than pair attributes (the rest).
	CrossFeature() bool
}

// platformProvider adapts an in-process simulated interface.
type platformProvider struct {
	p *platform.Interface
}

// NewPlatformProvider returns a Provider backed by an in-process simulated
// interface. Measurements use the interface's auditor-facing rules, exactly
// as the paper measured Facebook's restricted interface through the normal
// interface's equivalent options.
func NewPlatformProvider(p *platform.Interface) Provider {
	return &platformProvider{p: p}
}

func (pp *platformProvider) Name() string { return pp.p.Name() }

func (pp *platformProvider) AttributeNames() []string {
	attrs := pp.p.Catalog().Attributes
	out := make([]string, len(attrs))
	for i := range attrs {
		out[i] = attrs[i].Name
	}
	return out
}

func (pp *platformProvider) TopicNames() []string {
	topics := pp.p.Catalog().Topics
	out := make([]string, len(topics))
	for i := range topics {
		out[i] = topics[i].Name
	}
	return out
}

func (pp *platformProvider) Measure(spec targeting.Spec) (int64, error) {
	return pp.p.Measure(platform.EstimateRequest{Spec: spec})
}

// MeasureCtx implements ContextMeasurer through the platform's traced
// serial door.
func (pp *platformProvider) MeasureCtx(ctx context.Context, spec targeting.Spec) (int64, error) {
	return pp.p.MeasureCtx(ctx, platform.EstimateRequest{Spec: spec})
}

func (pp *platformProvider) CrossFeature() bool {
	return !pp.p.Rules().AndWithinFeature
}

// ErrQueryBudget marks an audit aborted for exceeding its upstream query
// budget (the paper's ethics discussion: "we also minimized the load placed
// on the ad platforms by limiting both the count and rate of API queries").
var ErrQueryBudget = errors.New("core: upstream query budget exhausted")

// cachingProvider memoizes Measure by canonical spec and enforces an
// optional upstream query budget. The greedy discovery and the overlap
// analyses re-measure many identical specs; the paper likewise limited its
// query load by avoiding redundant calls. Concurrent misses on the same key
// collapse into one upstream call (singleflight): the first caller claims
// the key and measures, later callers wait on the in-flight result, and the
// budget counts unique misses rather than racing callers.
type cachingProvider struct {
	Provider
	mu       sync.Mutex
	sizes    map[string]int64
	inflight map[string]*inflightCall
	calls    int64
	budget   int64 // 0 = unlimited

	// store, when set (NewStoredProvider), is the durable second cache
	// tier: disk hits are free of budget, upstream answers are appended.
	store MeasurementStore

	// Cache observability, resolved once per provider (labeled by the
	// platform name) so the lookup path pays one atomic add per outcome.
	mHits        *obs.Counter   // served from the size cache
	mMisses      *obs.Counter   // claimed the key and went upstream
	mCollapsed   *obs.Counter   // waited on another caller's in-flight miss
	mRefused     *obs.Counter   // refused: query budget exhausted
	mUpstream    *obs.Histogram // upstream Measure latency (misses only)
	mStoreHits   *obs.Counter   // served from the durable store
	mStoreMisses *obs.Counter   // absent from the store, went upstream
	mStoreErrors *obs.Counter   // store appends that failed (measurement kept)
}

// inflightCall is one upstream measurement in progress; done closes once v
// and err are set.
type inflightCall struct {
	done chan struct{}
	v    int64
	err  error
}

// NewCachingProvider wraps p with a measurement cache whose hit/miss/
// budget counters land in the process-wide obs registry; use
// NewCachingProviderWith to direct them elsewhere.
func NewCachingProvider(p Provider) Provider {
	return NewCachingProviderWith(p, obs.Default())
}

// NewCachingProviderWith wraps p with a measurement cache reporting into
// reg (nil selects obs.Default()).
func NewCachingProviderWith(p Provider, reg *obs.Registry) Provider {
	if reg == nil {
		reg = obs.Default()
	}
	lbl := obs.L("platform", p.Name())
	return &cachingProvider{
		Provider:   p,
		sizes:      make(map[string]int64),
		inflight:   make(map[string]*inflightCall),
		mHits:      reg.Counter("audit_cache_hits_total", lbl),
		mMisses:    reg.Counter("audit_cache_misses_total", lbl),
		mCollapsed: reg.Counter("audit_cache_collapsed_total", lbl),
		mRefused:   reg.Counter("audit_budget_refused_total", lbl),
		mUpstream:  reg.Histogram("audit_upstream_seconds", lbl),
	}
}

func (cp *cachingProvider) Measure(spec targeting.Spec) (int64, error) {
	return cp.measure(nil, spec)
}

// MeasureCtx implements ContextMeasurer: serial Measure with the caller's
// trace span recording which tier answered (cache/store/inflight/budget)
// and the trace continuing into the upstream provider on misses.
func (cp *cachingProvider) MeasureCtx(ctx context.Context, spec targeting.Spec) (int64, error) {
	return cp.measure(trace.FromContext(ctx), spec)
}

// provDone ends a cache-layer span and emits its provenance record —
// only for outcomes the cache itself served (hit/store/inflight/refused);
// misses are recorded by the upstream layer that actually measured, so
// one trace shows the full provenance chain without double-counting.
func (cp *cachingProvider) provDone(span *trace.Span, key, source string, v int64, err error) {
	if span == nil {
		return
	}
	span.Annotate("outcome", source)
	span.SetError(err)
	if err == nil && source != "miss" {
		if plog := span.ProvenanceLog(); plog != nil {
			plog.Add(trace.Provenance{
				Platform: cp.Provider.Name(),
				Key:      key,
				Source:   source,
				TraceID:  span.TraceID(),
				Value:    v,
			})
		}
	}
	span.End()
}

func (cp *cachingProvider) measure(parent *trace.Span, spec targeting.Spec) (int64, error) {
	span := trace.ChildOf(parent, "cache.measure")
	key := targeting.Canonical(spec)
	cp.mu.Lock()
	if v, ok := cp.sizes[key]; ok {
		cp.mu.Unlock()
		cp.mHits.Inc()
		cp.provDone(span, key, "cache", v, nil)
		return v, nil
	}
	if c, ok := cp.inflight[key]; ok {
		cp.mu.Unlock()
		cp.mCollapsed.Inc()
		<-c.done
		cp.provDone(span, key, "inflight", c.v, c.err)
		return c.v, c.err
	}
	if cp.store != nil {
		// Disk tier: an answer a previous run already paid for. It fills
		// the memory tier and charges no query budget — the paper's §5
		// budget counts load placed on the platform, and a disk hit
		// places none. The lookup is an in-memory index read, so holding
		// the lock keeps racing callers collapsed onto one store probe.
		if v, ok := cp.store.GetMeasurement(cp.Provider.Name(), key); ok {
			cp.sizes[key] = v
			cp.mu.Unlock()
			cp.mStoreHits.Inc()
			cp.provDone(span, key, "store", v, nil)
			return v, nil
		}
	}
	if cp.budget > 0 && cp.calls >= cp.budget {
		cp.mu.Unlock()
		cp.mRefused.Inc()
		err := fmt.Errorf("%w: %d calls made", ErrQueryBudget, cp.budget)
		cp.provDone(span, key, "refused", 0, err)
		return 0, err
	}
	// Claim the key and charge the budget before releasing the lock so a
	// burst of distinct misses cannot collectively overshoot the cap.
	cp.calls++
	c := &inflightCall{done: make(chan struct{})}
	cp.inflight[key] = c
	cp.mu.Unlock()
	cp.mMisses.Inc()
	if cp.store != nil {
		cp.mStoreMisses.Inc()
	}

	start := time.Now()
	v, err := measureUpstream(span, cp.Provider, spec)
	d := time.Since(start)
	cp.mUpstream.ObserveWithExemplar(d, span.TraceID())

	if err == nil && cp.store != nil {
		// Persist before publishing: once another caller can read the
		// answer from memory, a crash must not be able to lose it — the
		// resumed run would otherwise re-pay budget for a spec this run
		// already reported on. Append failures (disk full, torn device)
		// are counted but do not fail the measurement; the audit degrades
		// to in-memory caching.
		if serr := cp.store.PutMeasurement(cp.Provider.Name(), key, v); serr != nil {
			cp.mStoreErrors.Inc()
		}
	}

	cp.mu.Lock()
	if err == nil {
		cp.sizes[key] = v
	} else {
		// Refund failed calls: they consumed no upstream answer, and the
		// pre-singleflight behaviour likewise counted successes only.
		cp.calls--
		v = 0
	}
	delete(cp.inflight, key)
	cp.mu.Unlock()
	c.v, c.err = v, err
	close(c.done)
	cp.provDone(span, key, "miss", v, err)
	return v, err
}

// SetQueryBudget caps the number of cache-missing upstream calls a provider
// may make (0 = unlimited); further misses return ErrQueryBudget. It
// reports whether the provider supports budgets (caching providers do).
func SetQueryBudget(p Provider, budget int64) bool {
	cp, ok := p.(*cachingProvider)
	if !ok {
		return false
	}
	cp.mu.Lock()
	cp.budget = budget
	cp.mu.Unlock()
	return true
}

// UpstreamCalls reports how many misses reached the underlying provider, if
// the provider is a caching wrapper; otherwise it returns -1.
func UpstreamCalls(p Provider) int64 {
	cp, ok := p.(*cachingProvider)
	if !ok {
		return -1
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.calls
}

// CacheStats is a point-in-time view of one caching provider's traffic —
// the numbers an auditor steers their query budget by (the paper limited
// "both the count and rate of API queries", §5).
type CacheStats struct {
	// Hits counts measurements served from the size cache.
	Hits int64
	// Misses counts measurements that went upstream.
	Misses int64
	// Collapsed counts callers that waited on another caller's identical
	// in-flight miss (singleflight).
	Collapsed int64
	// Refused counts measurements rejected by the query budget.
	Refused int64
	// StoreHits counts measurements served from the durable store — the
	// queries a resumed audit did not re-pay (0 when no store is
	// attached).
	StoreHits int64
	// StoreMisses counts store lookups that fell through to upstream.
	StoreMisses int64
	// StoreErrors counts store appends that failed; the measurements were
	// kept but will not survive a restart.
	StoreErrors int64
	// Upstream summarizes upstream Measure latency over the misses.
	Upstream obs.HistogramSnapshot
}

// HitRate returns the fraction of lookups served without an upstream call
// (memory hits, store hits, and collapsed waits over all admitted
// lookups); 0 when idle.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.StoreHits + s.Misses + s.Collapsed
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.StoreHits+s.Collapsed) / float64(total)
}

// StatsOf reports a caching provider's cache statistics. The second result
// is false when p is not a caching wrapper.
func StatsOf(p Provider) (CacheStats, bool) {
	cp, ok := p.(*cachingProvider)
	if !ok {
		return CacheStats{}, false
	}
	st := CacheStats{
		Hits:      cp.mHits.Value(),
		Misses:    cp.mMisses.Value(),
		Collapsed: cp.mCollapsed.Value(),
		Refused:   cp.mRefused.Value(),
		Upstream:  cp.mUpstream.Snapshot(),
	}
	if cp.store != nil {
		st.StoreHits = cp.mStoreHits.Value()
		st.StoreMisses = cp.mStoreMisses.Value()
		st.StoreErrors = cp.mStoreErrors.Value()
	}
	return st, true
}
