package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// BatchResult is one slot of a batched measurement: the size or the error
// the equivalent serial Measure call would have returned.
type BatchResult struct {
	Size int64
	Err  error
}

// BatchMeasurer is the optional batch extension of Provider: answer many
// measurement queries in one call. Implementations must be slot-for-slot
// equivalent to serial Measure — same sizes, same errors — differing only
// in evaluation cost. The in-process platform provider lowers a batch into
// the tiled counting kernel; the caching provider partitions it into
// cache/store hits and unique upstream misses; the adapi client ships it
// as one HTTP exchange.
type BatchMeasurer interface {
	MeasureMany(specs []targeting.Spec) []BatchResult
}

// KeyedBatchMeasurer is the optional keyed refinement of BatchMeasurer:
// the caller passes each spec's canonical form (targeting.Canonical)
// alongside it. The caching provider already computes those keys to
// partition a batch, and the platform's batched doors use the same keys for
// their compiled-plan cache — passing them down means the measurement cache
// and the plan cache share one canonicalization pass per spec. keys[i] must
// be the canonical form of specs[i].
type KeyedBatchMeasurer interface {
	MeasureManyKeyed(specs []targeting.Spec, keys []string) []BatchResult
}

// MeasureMany measures every spec through p: one batched call when p
// implements BatchMeasurer, otherwise serial Measure calls in spec order.
// Either way the returned slice has one slot per spec.
func MeasureMany(p Provider, specs []targeting.Spec) []BatchResult {
	if bm, ok := p.(BatchMeasurer); ok {
		return bm.MeasureMany(specs)
	}
	out := make([]BatchResult, len(specs))
	for i, s := range specs {
		out[i].Size, out[i].Err = p.Measure(s)
	}
	return out
}

// batchCapable reports whether p's provider chain bottoms out in a native
// BatchMeasurer. The caching wrapper always implements the interface (it
// can fall back to serial upstream calls), so the walk looks through it at
// the wrapped provider: fan-outs switch to the batched path only when
// batching actually reaches a kernel or a wire exchange, and plain serial
// providers (including single-threaded test fakes) keep the worker-pool
// path and its call pattern.
func batchCapable(p Provider) bool {
	for {
		cp, ok := p.(*cachingProvider)
		if !ok {
			_, ok := p.(BatchMeasurer)
			return ok
		}
		p = cp.Provider
	}
}

// MeasureMany implements BatchMeasurer for the in-process simulators via
// the platform's tiled batch door.
func (pp *platformProvider) MeasureMany(specs []targeting.Spec) []BatchResult {
	return pp.measureMany(nil, specs, nil)
}

// MeasureManyKeyed implements KeyedBatchMeasurer: the canonical keys ride
// down as plan-cache keys so the platform skips re-canonicalizing specs the
// measurement cache already hashed.
func (pp *platformProvider) MeasureManyKeyed(specs []targeting.Spec, keys []string) []BatchResult {
	return pp.measureMany(nil, specs, keys)
}

// MeasureManyCtx implements ContextBatchMeasurer.
func (pp *platformProvider) MeasureManyCtx(ctx context.Context, specs []targeting.Spec) []BatchResult {
	return pp.measureMany(ctx, specs, nil)
}

// MeasureManyKeyedCtx implements ContextKeyedBatchMeasurer.
func (pp *platformProvider) MeasureManyKeyedCtx(ctx context.Context, specs []targeting.Spec, keys []string) []BatchResult {
	return pp.measureMany(ctx, specs, keys)
}

func (pp *platformProvider) measureMany(ctx context.Context, specs []targeting.Spec, keys []string) []BatchResult {
	reqs := make([]platform.EstimateRequest, len(specs))
	for i, s := range specs {
		reqs[i].Spec = s
		if keys != nil {
			reqs[i].CacheKey = keys[i]
		}
	}
	var ests []platform.Estimate
	var err error
	if ctx != nil {
		ests, err = pp.p.MeasureManyCtx(ctx, reqs)
	} else {
		ests, err = pp.p.MeasureMany(reqs)
	}
	out := make([]BatchResult, len(specs))
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	for i, e := range ests {
		out[i] = BatchResult{Size: e.Size, Err: e.Err}
	}
	return out
}

// MeasureMany implements BatchMeasurer for the caching provider. Under one
// lock acquisition the batch is partitioned exactly as serial Measure
// would treat each spec in slot order: memory hits, waits on another
// caller's in-flight miss, duplicates of a key this batch already claimed,
// store hits (filling the memory tier, budget-free), budget refusals, and
// claimed misses. Only the unique misses are charged against the budget
// and sent upstream — as one batch when the wrapped provider is itself a
// BatchMeasurer, serially in claim order otherwise — then persisted before
// being published, with failed slots refunded, exactly like the serial
// path.
func (cp *cachingProvider) MeasureMany(specs []targeting.Spec) []BatchResult {
	return cp.measureMany(nil, specs)
}

// MeasureManyCtx implements ContextBatchMeasurer: the batched partition
// with the caller's trace span recording per-tier tallies and the trace
// context riding the upstream batch.
func (cp *cachingProvider) MeasureManyCtx(ctx context.Context, specs []targeting.Spec) []BatchResult {
	return cp.measureMany(trace.FromContext(ctx), specs)
}

func (cp *cachingProvider) measureMany(parent *trace.Span, specs []targeting.Spec) []BatchResult {
	out := make([]BatchResult, len(specs))
	if len(specs) == 0 {
		return out
	}
	span := trace.ChildOf(parent, "cache.measure_many")
	type claim struct {
		slot int
		key  string
		call *inflightCall
	}
	type wait struct {
		slot int
		call *inflightCall
	}
	type dup struct {
		slot, of int // slot copies the result of claim index `of`
	}
	var claims []claim
	var waits []wait
	var dups []dup
	claimIdx := make(map[string]int)
	var hits, collapsed, refused, storeHits int64

	// Provenance for the slots the cache itself serves (memory/store hits);
	// claimed misses are recorded by the upstream layer that measures them,
	// and collapsed slots by the trace that owns the in-flight call.
	plog := span.ProvenanceLog()
	var prov []trace.Provenance

	cp.mu.Lock()
	for i, spec := range specs {
		key := targeting.Canonical(spec)
		if v, ok := cp.sizes[key]; ok {
			out[i].Size = v
			hits++
			if plog != nil {
				prov = append(prov, trace.Provenance{Key: key, Source: "cache", Value: v})
			}
			continue
		}
		if ci, ok := claimIdx[key]; ok {
			// A duplicate within this batch: the claim's upstream answer
			// serves this slot too, like a second caller collapsing onto an
			// in-flight miss.
			dups = append(dups, dup{slot: i, of: ci})
			collapsed++
			continue
		}
		if c, ok := cp.inflight[key]; ok {
			waits = append(waits, wait{slot: i, call: c})
			collapsed++
			continue
		}
		if cp.store != nil {
			if v, ok := cp.store.GetMeasurement(cp.Provider.Name(), key); ok {
				cp.sizes[key] = v
				out[i].Size = v
				storeHits++
				if plog != nil {
					prov = append(prov, trace.Provenance{Key: key, Source: "store", Value: v})
				}
				continue
			}
		}
		if cp.budget > 0 && cp.calls >= cp.budget {
			out[i].Err = fmt.Errorf("%w: %d calls made", ErrQueryBudget, cp.budget)
			refused++
			continue
		}
		cp.calls++
		c := &inflightCall{done: make(chan struct{})}
		cp.inflight[key] = c
		claimIdx[key] = len(claims)
		claims = append(claims, claim{slot: i, key: key, call: c})
	}
	cp.mu.Unlock()

	cp.mHits.Add(hits)
	cp.mCollapsed.Add(collapsed)
	cp.mRefused.Add(refused)
	cp.mMisses.Add(int64(len(claims)))
	if cp.store != nil {
		cp.mStoreHits.Add(storeHits)
		cp.mStoreMisses.Add(int64(len(claims)))
	}
	if span != nil {
		defer span.End()
		span.AnnotateInt("specs", int64(len(specs)))
		span.AnnotateInt("hits", hits)
		span.AnnotateInt("store_hits", storeHits)
		span.AnnotateInt("collapsed", collapsed)
		span.AnnotateInt("refused", refused)
		span.AnnotateInt("misses", int64(len(claims)))
		if plog != nil {
			tid := span.TraceID()
			name := cp.Provider.Name()
			for i := range prov {
				prov[i].Platform = name
				prov[i].TraceID = tid
				plog.Add(prov[i])
			}
		}
	}

	if len(claims) > 0 {
		missSpecs := make([]targeting.Spec, len(claims))
		missKeys := make([]string, len(claims))
		for k, cl := range claims {
			missSpecs[k] = specs[cl.slot]
			missKeys[k] = cl.key
		}
		start := time.Now()
		var res []BatchResult
		if km, ok := cp.Provider.(ContextKeyedBatchMeasurer); ok && span != nil {
			// Traced + keyed: the canonical keys and the trace context ride
			// down together.
			res = km.MeasureManyKeyedCtx(spanContext(span), missSpecs, missKeys)
		} else if km, ok := cp.Provider.(KeyedBatchMeasurer); ok {
			// The canonical keys this partition pass computed double as the
			// downstream plan-cache keys.
			res = km.MeasureManyKeyed(missSpecs, missKeys)
		} else if cbm, ok := cp.Provider.(ContextBatchMeasurer); ok && span != nil {
			res = cbm.MeasureManyCtx(spanContext(span), missSpecs)
		} else if bm, ok := cp.Provider.(BatchMeasurer); ok {
			res = bm.MeasureMany(missSpecs)
		} else {
			// Serial fallback in claim order: providers without a batch door
			// (remote fakes, plain wrappers) see the identical call sequence
			// a serial fan-out would have produced.
			res = make([]BatchResult, len(claims))
			for k, s := range missSpecs {
				res[k].Size, res[k].Err = measureUpstream(span, cp.Provider, s)
			}
		}
		// One observation per upstream exchange (the batch is the unit of
		// upstream latency, as one HTTP round trip serves the whole batch).
		cp.mUpstream.ObserveWithExemplar(time.Since(start), span.TraceID())

		if cp.store != nil {
			// Persist before publishing, as in the serial path: once a
			// result is readable from memory a crash must not lose it.
			for k, cl := range claims {
				if res[k].Err != nil {
					continue
				}
				if serr := cp.store.PutMeasurement(cp.Provider.Name(), cl.key, res[k].Size); serr != nil {
					cp.mStoreErrors.Inc()
				}
			}
		}

		cp.mu.Lock()
		for k, cl := range claims {
			if res[k].Err == nil {
				cp.sizes[cl.key] = res[k].Size
			} else {
				// Refund failed calls, matching serial accounting.
				cp.calls--
				res[k].Size = 0
			}
			delete(cp.inflight, cl.key)
		}
		cp.mu.Unlock()
		for k, cl := range claims {
			cl.call.v, cl.call.err = res[k].Size, res[k].Err
			close(cl.call.done)
			out[cl.slot] = BatchResult{Size: res[k].Size, Err: res[k].Err}
		}
	}

	for _, d := range dups {
		out[d.slot] = out[claims[d.of].slot]
	}
	for _, w := range waits {
		<-w.call.done
		out[w.slot] = BatchResult{Size: w.call.v, Err: w.call.err}
	}
	return out
}
