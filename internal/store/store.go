package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// File names inside a store directory.
const (
	walName  = "wal.log"
	snapName = "snapshot.idx"
	tmpName  = "snapshot.tmp"
)

// Options configures a store.
type Options struct {
	// SyncEvery is how many appends may accumulate before the WAL is
	// fsynced (1 = every append is durable before Put returns, the
	// default). Larger values trade the tail of a crash for throughput;
	// an audit that resumes only from the last fsynced record should keep
	// this small relative to its query budget.
	SyncEvery int
	// CompactEvery triggers snapshot compaction once the WAL holds this
	// many records (0 selects 8192; negative disables automatic
	// compaction — Compact may still be called explicitly).
	CompactEvery int
	// ReadOnly opens the store for lookups only; Put returns an error and
	// recovery does not truncate a torn WAL tail.
	ReadOnly bool
	// Metrics receives the store's instruments; nil selects the
	// process-wide obs.Default() registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 8192
	}
	return o
}

// Stats is a point-in-time view of one store.
type Stats struct {
	// Records is the number of distinct keys resident (snapshot + WAL).
	Records int
	// WALRecords is the number of records in the current WAL tail.
	WALRecords int
	// Appends counts records appended this session.
	Appends int64
	// Compactions counts snapshot compactions this session.
	Compactions int64
	// RecoveredTruncated counts bytes dropped from a torn WAL tail at open.
	RecoveredTruncated int64
	// RecoveredSkipped counts CRC-mismatched records skipped at open.
	RecoveredSkipped int64
	// BytesOnDisk is the snapshot + WAL size after the last append or
	// compaction.
	BytesOnDisk int64
}

// Store is a durable map from measurement keys to platform-scale audience
// sizes: an in-memory index over an append-only WAL plus an immutable
// snapshot. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu         sync.Mutex
	mem        map[Key]int64
	wal        *os.File
	walRecords int // records in the WAL file (including unflushed)
	unsynced   int // appends since the last fsync
	buf        []byte
	stats      Stats
	closed     bool
	appendErr  error // first WAL write error; store degrades to read-only

	mAppends     *obs.Counter
	mCompactions *obs.Counter
	mAppendLat   *obs.Histogram
	gRecords     *obs.Gauge
	gBytes       *obs.Gauge
}

// Open opens (creating if needed) the store rooted at dir. Recovery loads
// the snapshot, replays the WAL over it, truncates a torn tail, and skips
// CRC-mismatched records; neither crash artifact is an error.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:          dir,
		opts:         opts,
		mem:          make(map[Key]int64),
		mAppends:     reg.Counter("store_appends_total"),
		mCompactions: reg.Counter("store_compactions_total"),
		mAppendLat:   reg.Histogram("store_wal_append_seconds"),
		gRecords:     reg.Gauge("store_records"),
		gBytes:       reg.Gauge("store_bytes_on_disk"),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.recoverWAL(); err != nil {
		return nil, err
	}
	if !opts.ReadOnly {
		if err := s.openWAL(); err != nil {
			return nil, err
		}
	}
	s.publishSizes()
	return s, nil
}

// recoverWAL replays the WAL into memory, counting and repairing crash
// artifacts: a short final record is truncated (unless read-only) and
// records with bad CRCs are skipped on fixed-size boundaries.
func (s *Store) recoverWAL() error {
	path := filepath.Join(s.dir, walName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading WAL: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	if len(data) < headerSize {
		// The process died while writing the very first header: nothing
		// was acknowledged, so an empty WAL is the correct recovery.
		s.stats.RecoveredTruncated = int64(len(data))
		if !s.opts.ReadOnly {
			if err := os.Truncate(path, 0); err != nil {
				return fmt.Errorf("store: truncating torn WAL header: %w", err)
			}
		}
		return nil
	}
	if err := checkHeader(data, walMagic, "WAL"); err != nil {
		return err
	}
	body := data[headerSize:]
	goodEnd := 0 // offset past the last decodable record
	for off := 0; off < len(body); off += recordSize {
		rec, err := decodeRecord(body[off:])
		switch {
		case errors.Is(err, ErrShortRecord):
			// Torn tail: the process died mid-append. Everything after
			// the last whole record is noise.
			s.stats.RecoveredTruncated = int64(len(body) - off)
			off = len(body)
		case errors.Is(err, ErrBadCRC):
			// Latent corruption: skip this record but keep replaying — a
			// single bad sector must not cost the rest of the archive.
			s.stats.RecoveredSkipped++
			goodEnd = off + recordSize
		case err == nil:
			s.mem[rec.Key] = rec.Value
			s.walRecords++
			goodEnd = off + recordSize
		default:
			return err
		}
	}
	if s.stats.RecoveredTruncated > 0 && !s.opts.ReadOnly {
		if err := os.Truncate(path, int64(headerSize+goodEnd)); err != nil {
			return fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	return nil
}

// openWAL opens the WAL for appending, writing the header on first use.
func (s *Store) openWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() == 0 {
		if _, err := f.Write(encodeHeader(walMagic)); err != nil {
			f.Close()
			return fmt.Errorf("store: writing WAL header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	} else if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	s.wal = f
	return nil
}

// Get returns the stored size for key.
func (s *Store) Get(key Key) (int64, bool) {
	s.mu.Lock()
	v, ok := s.mem[key]
	s.mu.Unlock()
	return v, ok
}

// Len returns the number of distinct keys resident.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Put durably records key → size: the record is appended to the WAL and,
// per Options.SyncEvery, fsynced before Put returns. Re-putting an existing
// key with the same value is a no-op (measurements are immutable facts); a
// changed value overwrites, last-writer-wins on replay.
func (s *Store) Put(key Key, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: put on closed store")
	}
	if s.opts.ReadOnly {
		return fmt.Errorf("store: put on read-only store")
	}
	if s.appendErr != nil {
		return s.appendErr
	}
	if v, ok := s.mem[key]; ok && v == size {
		return nil
	}
	start := time.Now()
	s.buf = appendRecord(s.buf[:0], Record{Key: key, Value: size})
	if _, err := s.wal.Write(s.buf); err != nil {
		// A failed append leaves an undefined tail on disk; degrade to
		// read-only rather than risk interleaving further records. The
		// torn tail is repaired by recovery on the next open.
		s.appendErr = fmt.Errorf("store: WAL append: %w", err)
		return s.appendErr
	}
	s.unsynced++
	if s.unsynced >= s.opts.SyncEvery {
		if err := s.wal.Sync(); err != nil {
			s.appendErr = fmt.Errorf("store: WAL fsync: %w", err)
			return s.appendErr
		}
		s.unsynced = 0
	}
	s.mAppendLat.Observe(time.Since(start))
	s.mem[key] = size
	s.walRecords++
	s.stats.Appends++
	s.mAppends.Inc()
	s.publishSizes()
	if s.opts.CompactEvery > 0 && s.walRecords >= s.opts.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

// Sync forces any buffered appends to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil || s.unsynced == 0 {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	s.unsynced = 0
	return nil
}

// Compact folds the WAL into a fresh immutable snapshot and truncates the
// log, bounding replay work at the next open.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return fmt.Errorf("store: compact on read-only store")
	}
	return s.compactLocked()
}

// Stats returns a point-in-time view of the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = len(s.mem)
	st.WALRecords = s.walRecords
	st.BytesOnDisk = s.bytesOnDiskLocked()
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close syncs and closes the WAL. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	var err error
	if s.unsynced > 0 && s.appendErr == nil {
		err = s.wal.Sync()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// bytesOnDiskLocked sizes the snapshot and WAL files.
func (s *Store) bytesOnDiskLocked() int64 {
	var total int64
	for _, name := range []string{walName, snapName} {
		if st, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
			total += st.Size()
		}
	}
	return total
}

// publishSizes refreshes the size gauges (callers hold mu).
func (s *Store) publishSizes() {
	s.gRecords.Set(float64(len(s.mem)))
	s.gBytes.Set(float64(s.bytesOnDiskLocked()))
}
