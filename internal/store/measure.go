package store

// GetMeasurement looks up the persisted size for a platform-qualified
// canonical spec. Together with PutMeasurement it satisfies
// core.MeasurementStore, letting the audit's caching provider treat the
// store as a second, durable cache tier: a disk hit costs no query budget.
func (s *Store) GetMeasurement(platform, canonicalSpec string) (int64, bool) {
	return s.Get(KeyOf(platform, canonicalSpec))
}

// PutMeasurement durably records a platform-qualified measurement.
func (s *Store) PutMeasurement(platform, canonicalSpec string, size int64) error {
	return s.Put(KeyOf(platform, canonicalSpec), size)
}
