// Package store is the audit's durable memory: a dependency-free,
// crash-safe, content-addressed archive of size-estimate measurements.
//
// The paper's methodology is budget-bound — §5's ethics discussion limits
// "both the count and rate of API queries" — so every answer an auditor has
// already paid for is worth keeping. The store persists each measurement as
// one fixed-size, CRC-checked record in an append-only write-ahead log,
// keyed by a platform-qualified hash of the targeting spec's canonical form
// (stable across process restarts and across logically-equivalent spec
// reorderings). Periodic compaction folds the log into an immutable, sorted
// snapshot so cold starts load one index file instead of replaying history.
//
// Recovery never loses acknowledged data and never fails on the expected
// crash artifacts: a torn final record (the process died mid-append) is
// truncated away, and a record whose CRC does not match (a latent media
// fault) is skipped without abandoning the rest of the log.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Key is the content address of one measurement: the first 16 bytes of
// SHA-256 over the platform-qualified canonical spec (see KeyOf). Hashing is
// deliberately independent of Go's runtime map hash so keys are stable
// across processes, restarts, and builds.
type Key [16]byte

// KeyOf derives the store key for a measurement: the platform interface
// name qualifies the spec's canonical form, so identical specs on different
// platforms never collide, and logically-equal specs (clause or ref
// reorderings, duplicated options) collapse to one key because
// targeting.Canonical already normalizes them.
func KeyOf(platform, canonicalSpec string) Key {
	h := sha256.New()
	// Length-prefix the platform so no choice of names can move bytes
	// across the platform/spec boundary and collide two identities.
	var n [binary.MaxVarintLen64]byte
	h.Write(n[:binary.PutUvarint(n[:], uint64(len(platform)))])
	h.Write([]byte(platform))
	h.Write([]byte(canonicalSpec))
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// String renders the key as hex, for logs and debugging.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// File layout constants. Both the WAL and the snapshot start with a 16-byte
// header: an 8-byte magic, a 4-byte little-endian format version, and 4
// reserved bytes. WAL records are fixed-size so recovery can resynchronize
// on record boundaries after a CRC mismatch.
const (
	headerSize = 16
	formatV1   = 1

	// recordSize is one WAL record: key (16) + value (8) + reserved (4) +
	// CRC-32C (4) over the first 28 bytes.
	recordSize = 32
	recordBody = recordSize - 4
)

var (
	walMagic  = [8]byte{'A', 'D', 'S', 'T', 'W', 'A', 'L', '1'}
	snapMagic = [8]byte{'A', 'D', 'S', 'T', 'S', 'N', 'P', '1'}

	// castagnoli is the CRC-32C polynomial (hardware-accelerated on amd64
	// and arm64), the same checksum family journaling filesystems use.
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Record decode errors.
var (
	// ErrShortRecord marks a torn tail: fewer bytes than one record remain.
	ErrShortRecord = errors.New("store: short record (torn tail)")
	// ErrBadCRC marks a record whose checksum does not match its body.
	ErrBadCRC = errors.New("store: record CRC mismatch")
)

// Record is one measurement in the log.
type Record struct {
	Key   Key
	Value int64
}

// appendRecord encodes r onto buf and returns the extended slice.
func appendRecord(buf []byte, r Record) []byte {
	var b [recordSize]byte
	copy(b[:16], r.Key[:])
	binary.LittleEndian.PutUint64(b[16:24], uint64(r.Value))
	// b[24:28] reserved, zero.
	binary.LittleEndian.PutUint32(b[28:32], crc32.Checksum(b[:recordBody], castagnoli))
	return append(buf, b[:]...)
}

// decodeRecord decodes one record from the front of b. It returns
// ErrShortRecord when fewer than recordSize bytes remain (a torn tail) and
// ErrBadCRC when the checksum does not cover the body.
func decodeRecord(b []byte) (Record, error) {
	if len(b) < recordSize {
		return Record{}, ErrShortRecord
	}
	want := binary.LittleEndian.Uint32(b[28:32])
	if crc32.Checksum(b[:recordBody], castagnoli) != want {
		return Record{}, ErrBadCRC
	}
	var r Record
	copy(r.Key[:], b[:16])
	r.Value = int64(binary.LittleEndian.Uint64(b[16:24]))
	return r, nil
}

// encodeHeader renders a 16-byte file header.
func encodeHeader(magic [8]byte) []byte {
	b := make([]byte, headerSize)
	copy(b[:8], magic[:])
	binary.LittleEndian.PutUint32(b[8:12], formatV1)
	return b
}

// checkHeader validates a file header against the expected magic.
func checkHeader(b []byte, magic [8]byte, what string) error {
	if len(b) < headerSize {
		return fmt.Errorf("store: %s header truncated (%d bytes)", what, len(b))
	}
	if [8]byte(b[:8]) != magic {
		return fmt.Errorf("store: %s has wrong magic %q", what, b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != formatV1 {
		return fmt.Errorf("store: %s format version %d not supported", what, v)
	}
	return nil
}
