package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot layout: header (16 bytes, snapMagic) + count (8 bytes LE) +
// count entries of key (16) + value (8), sorted by key, + CRC-32C (4 bytes)
// over everything after the header. The file is written to a temp name,
// fsynced, and renamed into place, so a snapshot is either whole or absent
// — compaction can crash at any instant without losing the previous
// snapshot or the WAL it was folding in.
const snapEntrySize = 24

// loadSnapshot loads the immutable index into memory, if present.
func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	if err := checkHeader(data, snapMagic, "snapshot"); err != nil {
		return err
	}
	body := data[headerSize:]
	if len(body) < 8+4 {
		return fmt.Errorf("store: snapshot truncated (%d bytes)", len(data))
	}
	sum := binary.LittleEndian.Uint32(body[len(body)-4:])
	body = body[:len(body)-4]
	if crc32.Checksum(body, castagnoli) != sum {
		// Unlike the WAL — where one bad record is skippable — the
		// snapshot is written atomically, so a checksum failure means the
		// medium lost data that the WAL no longer holds. Fail loudly
		// rather than silently resurrecting an incomplete archive.
		return fmt.Errorf("store: snapshot CRC mismatch")
	}
	n := binary.LittleEndian.Uint64(body[:8])
	entries := body[8:]
	if uint64(len(entries)) != n*snapEntrySize {
		return fmt.Errorf("store: snapshot count %d disagrees with %d entry bytes", n, len(entries))
	}
	for off := 0; off < len(entries); off += snapEntrySize {
		var k Key
		copy(k[:], entries[off:off+16])
		s.mem[k] = int64(binary.LittleEndian.Uint64(entries[off+16 : off+24]))
	}
	return nil
}

// compactLocked writes the current memory image as a new snapshot and
// truncates the WAL. Callers hold s.mu.
func (s *Store) compactLocked() error {
	if s.appendErr != nil {
		return s.appendErr
	}
	// Durability first: every record being folded in must be on disk
	// before the WAL that holds it is truncated.
	if s.wal != nil && s.unsynced > 0 {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: pre-compaction fsync: %w", err)
		}
		s.unsynced = 0
	}

	keys := make([]Key, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return string(keys[i][:]) < string(keys[j][:])
	})
	body := make([]byte, 8, 8+len(keys)*snapEntrySize+4)
	binary.LittleEndian.PutUint64(body[:8], uint64(len(keys)))
	var e [snapEntrySize]byte
	for _, k := range keys {
		copy(e[:16], k[:])
		binary.LittleEndian.PutUint64(e[16:24], uint64(s.mem[k]))
		body = append(body, e[:]...)
	}
	body = binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, castagnoli))

	tmp := filepath.Join(s.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(encodeHeader(snapMagic)); err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}

	// The snapshot now holds everything; restart the WAL from its header.
	if s.wal != nil {
		if err := s.wal.Truncate(headerSize); err != nil {
			return fmt.Errorf("store: truncating WAL after compaction: %w", err)
		}
		if _, err := s.wal.Seek(headerSize, 0); err != nil {
			return err
		}
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}
	s.walRecords = 0
	s.stats.Compactions++
	s.mCompactions.Inc()
	s.publishSizes()
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: dir fsync: %w", err)
	}
	return nil
}
