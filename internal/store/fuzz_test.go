package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRecordDecode drives arbitrary bytes through the WAL record decoder:
// it must never panic, must classify every input as a valid record, a torn
// tail, or a CRC mismatch, and must round-trip every record it accepts.
func FuzzRecordDecode(f *testing.F) {
	// Seed corpus: a valid record, boundary-length torn tails, a bit-flipped
	// record, and all-zero/all-ones blocks.
	valid := appendRecord(nil, Record{Key: KeyOf("facebook", "(attribute:1)"), Value: 123456})
	f.Add(valid)
	f.Add(valid[:recordSize-1])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, recordSize))
	f.Add(bytes.Repeat([]byte{0xFF}, recordSize+7))
	flipped := append([]byte(nil), valid...)
	flipped[3] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord(data)
		switch {
		case errors.Is(err, ErrShortRecord):
			if len(data) >= recordSize {
				t.Fatalf("ErrShortRecord on %d bytes (record size %d)", len(data), recordSize)
			}
		case errors.Is(err, ErrBadCRC):
			if len(data) < recordSize {
				t.Fatalf("ErrBadCRC on a short input (%d bytes)", len(data))
			}
		case err == nil:
			if len(data) < recordSize {
				t.Fatalf("decoded a record from %d bytes", len(data))
			}
			// Accepted records must re-encode to the bytes that produced
			// them (up to the reserved field, which encode zeroes).
			re := appendRecord(nil, rec)
			if !bytes.Equal(re[:24], data[:24]) {
				t.Fatalf("round-trip mismatch:\n in %x\nout %x", data[:recordSize], re)
			}
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
