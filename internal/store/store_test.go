package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// open is a test helper that opens a store with its own registry.
func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	want := map[string]int64{
		"(attribute:1)":                10_000,
		"(attribute:1)&(attribute:2)":  4_300,
		"(attribute:2)!-(attribute:3)": 120,
	}
	for spec, size := range want {
		if err := s.PutMeasurement("facebook", spec, size); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Same spec on another platform must be a distinct key.
	if err := s.PutMeasurement("google", "(attribute:1)", 77); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := open(t, dir, Options{})
	defer s2.Close()
	for spec, size := range want {
		got, ok := s2.GetMeasurement("facebook", spec)
		if !ok || got != size {
			t.Errorf("after reopen, %q = (%d, %v), want (%d, true)", spec, got, ok, size)
		}
	}
	if got, ok := s2.GetMeasurement("google", "(attribute:1)"); !ok || got != 77 {
		t.Errorf("google key = (%d, %v), want (77, true)", got, ok)
	}
	if _, ok := s2.GetMeasurement("linkedin", "(attribute:1)"); ok {
		t.Error("unwritten platform key unexpectedly present")
	}
	if n := s2.Len(); n != 4 {
		t.Errorf("Len = %d, want 4", n)
	}
}

func TestKeyOfPlatformQualified(t *testing.T) {
	if KeyOf("facebook", "(attribute:1)") == KeyOf("google", "(attribute:1)") {
		t.Error("same spec on different platforms collided")
	}
	if KeyOf("a", "b\x00c") == KeyOf("a\x00b", "c") {
		// The separator byte must not allow platform/spec boundary
		// ambiguity to produce equal digests for distinct identities.
		t.Error("platform/spec boundary ambiguity")
	}
	if KeyOf("facebook", "x") != KeyOf("facebook", "x") {
		t.Error("KeyOf not deterministic")
	}
}

func TestRePutSameValueIsNoOp(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	defer s.Close()
	k := KeyOf("p", "spec")
	for i := 0; i < 5; i++ {
		if err := s.Put(k, 42); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if st := s.Stats(); st.Appends != 1 || st.WALRecords != 1 {
		t.Errorf("appends=%d wal=%d, want 1/1 (idempotent re-put)", st.Appends, st.WALRecords)
	}
	// A changed value is last-writer-wins.
	if err := s.Put(k, 43); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, _ := s.Get(k); v != 43 {
		t.Errorf("after overwrite, Get = %d, want 43", v)
	}
}

func TestAutomaticCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{CompactEvery: 10})
	for i := 0; i < 25; i++ {
		if err := s.Put(KeyOf("p", string(rune('a'+i))), int64(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st := s.Stats()
	if st.Compactions != 2 {
		t.Errorf("compactions = %d, want 2 (25 puts / every 10)", st.Compactions)
	}
	if st.WALRecords >= 10 {
		t.Errorf("WAL holds %d records after compaction, want < 10", st.WALRecords)
	}
	if st.Records != 25 {
		t.Errorf("records = %d, want 25", st.Records)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := open(t, dir, Options{})
	defer s2.Close()
	for i := 0; i < 25; i++ {
		if v, ok := s2.Get(KeyOf("p", string(rune('a'+i)))); !ok || v != int64(i) {
			t.Fatalf("after compacted reopen, key %d = (%d, %v)", i, v, ok)
		}
	}
}

func TestExplicitCompactionShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{CompactEvery: -1})
	for i := 0; i < 100; i++ {
		if err := s.Put(KeyOf("p", string(rune(i))), int64(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	walPath := filepath.Join(dir, walName)
	before, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() || after.Size() != headerSize {
		t.Errorf("WAL %d bytes after compaction (was %d), want header-only %d", after.Size(), before.Size(), headerSize)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Errorf("snapshot missing after compaction: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.PutMeasurement("p", "spec", 9); err != nil {
		t.Fatal(err)
	}
	s.Close()

	ro := open(t, dir, Options{ReadOnly: true})
	defer ro.Close()
	if v, ok := ro.GetMeasurement("p", "spec"); !ok || v != 9 {
		t.Errorf("read-only Get = (%d, %v), want (9, true)", v, ok)
	}
	if err := ro.Put(KeyOf("p", "other"), 1); err == nil {
		t.Error("Put on read-only store succeeded")
	}
	if err := ro.Compact(); err == nil {
		t.Error("Compact on read-only store succeeded")
	}
}

func TestSyncEveryBatches(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SyncEvery: 100})
	for i := 0; i < 10; i++ {
		if err := s.Put(KeyOf("p", string(rune(i))), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	defer s2.Close()
	if n := s2.Len(); n != 10 {
		t.Errorf("after batched sync + reopen, Len = %d, want 10", n)
	}
}

func TestClosedStoreRejectsPut(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	s.Close()
	if err := s.Put(KeyOf("p", "x"), 1); err == nil {
		t.Error("Put on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestStatsBytesOnDisk(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Put(KeyOf("p", "x"), 1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BytesOnDisk != headerSize+recordSize {
		t.Errorf("BytesOnDisk = %d, want %d", st.BytesOnDisk, headerSize+recordSize)
	}
}
