package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// walPath returns the store's WAL file path.
func walPath(dir string) string { return filepath.Join(dir, walName) }

// seedStore writes n records and closes the store, returning the expected
// contents.
func seedStore(t *testing.T, dir string, n int) map[Key]int64 {
	t.Helper()
	s := open(t, dir, Options{CompactEvery: -1})
	want := make(map[Key]int64, n)
	for i := 0; i < n; i++ {
		k := KeyOf("p", string(rune('A'+i)))
		if err := s.Put(k, int64(i*1000)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[k] = int64(i * 1000)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return want
}

func TestRecoveryTornTailTruncated(t *testing.T) {
	for _, torn := range []int{1, recordSize / 2, recordSize - 1} {
		dir := t.TempDir()
		want := seedStore(t, dir, 5)

		// Simulate a crash mid-append: a partial record at the tail.
		f, err := os.OpenFile(walPath(dir), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(bytes.Repeat([]byte{0xEE}, torn)); err != nil {
			t.Fatal(err)
		}
		f.Close()

		s := open(t, dir, Options{})
		if st := s.Stats(); st.RecoveredTruncated != int64(torn) {
			t.Errorf("torn=%d: RecoveredTruncated = %d", torn, st.RecoveredTruncated)
		}
		for k, v := range want {
			if got, ok := s.Get(k); !ok || got != v {
				t.Errorf("torn=%d: lost record %s", torn, k)
			}
		}
		// The tail must be gone from disk so new appends start clean.
		st, err := os.Stat(walPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(headerSize + 5*recordSize); st.Size() != want {
			t.Errorf("torn=%d: WAL is %d bytes after recovery, want %d", torn, st.Size(), want)
		}
		// And the store must accept and persist new writes.
		if err := s.Put(KeyOf("p", "fresh"), 7); err != nil {
			t.Fatalf("torn=%d: post-recovery Put: %v", torn, err)
		}
		s.Close()
		s2 := open(t, dir, Options{})
		if v, ok := s2.Get(KeyOf("p", "fresh")); !ok || v != 7 {
			t.Errorf("torn=%d: post-recovery record lost: (%d, %v)", torn, v, ok)
		}
		s2.Close()
	}
}

func TestRecoveryTornHeaderTruncated(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath(dir), []byte("ADSTW"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	defer s.Close()
	if st := s.Stats(); st.RecoveredTruncated != 5 || st.Records != 0 {
		t.Errorf("torn header: stats = %+v", st)
	}
	if err := s.Put(KeyOf("p", "x"), 1); err != nil {
		t.Fatalf("Put after torn-header recovery: %v", err)
	}
}

func TestRecoveryCRCMismatchSkipsRecord(t *testing.T) {
	dir := t.TempDir()
	want := seedStore(t, dir, 5)

	// Flip a byte in the middle record's value field.
	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	corruptOff := headerSize + 2*recordSize + 17
	data[corruptOff] ^= 0xFF
	if err := os.WriteFile(walPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	corruptKey := KeyOf("p", string(rune('A'+2)))

	s := open(t, dir, Options{})
	defer s.Close()
	if st := s.Stats(); st.RecoveredSkipped != 1 {
		t.Errorf("RecoveredSkipped = %d, want 1", st.RecoveredSkipped)
	}
	for k, v := range want {
		got, ok := s.Get(k)
		if k == corruptKey {
			if ok {
				t.Errorf("corrupted record %s resurrected with value %d", k, got)
			}
			continue
		}
		if !ok || got != v {
			t.Errorf("record %s after corrupt neighbour = (%d, %v), want (%d, true)", k, got, ok, v)
		}
	}
}

func TestRecoveryWrongMagicFails(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 1)
	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	copy(data[:8], "NOTASTOR")
	if err := os.WriteFile(walPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Metrics: obs.NewRegistry()}); err == nil {
		t.Error("Open succeeded on a WAL with foreign magic")
	}
}

func TestSnapshotPlusWALReplayEquivalence(t *testing.T) {
	// The same write sequence must produce identical contents whether it
	// lives purely in the WAL, purely in a snapshot, or split across a
	// snapshot and a WAL tail.
	writes := func(s *Store) {
		for i := 0; i < 40; i++ {
			if err := s.Put(KeyOf("p", string(rune(i))), int64(i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		// Overwrites land after the snapshot boundary in the split case.
		for i := 0; i < 10; i++ {
			if err := s.Put(KeyOf("p", string(rune(i))), int64(1000+i)); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
	}

	dirs := map[string]Options{
		"wal-only":    {CompactEvery: -1},
		"snapshotted": {CompactEvery: -1}, // explicit Compact after writes
		"split-mid":   {CompactEvery: 25}, // auto-compacts mid-sequence
	}
	contents := make(map[string]map[Key]int64)
	for name, opts := range dirs {
		dir := t.TempDir()
		s := open(t, dir, opts)
		writes(s)
		if name == "snapshotted" {
			if err := s.Compact(); err != nil {
				t.Fatalf("%s: Compact: %v", name, err)
			}
		}
		s.Close()

		re := open(t, dir, Options{})
		got := make(map[Key]int64, re.Len())
		for i := 0; i < 40; i++ {
			k := KeyOf("p", string(rune(i)))
			if v, ok := re.Get(k); ok {
				got[k] = v
			}
		}
		re.Close()
		contents[name] = got
	}
	base := contents["wal-only"]
	if len(base) != 40 {
		t.Fatalf("wal-only holds %d records, want 40", len(base))
	}
	for name, got := range contents {
		if len(got) != len(base) {
			t.Errorf("%s holds %d records, want %d", name, len(got), len(base))
		}
		for k, v := range base {
			if got[k] != v {
				t.Errorf("%s: key %s = %d, want %d", name, k, got[k], v)
			}
		}
	}
}

func TestSnapshotCRCMismatchFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Put(KeyOf("p", "x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+8+3] ^= 0x10 // corrupt an entry byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Metrics: obs.NewRegistry()}); err == nil {
		t.Error("Open succeeded on a corrupt snapshot")
	}
}

func TestCrashBetweenSnapshotAndTruncateIsIdempotent(t *testing.T) {
	// If the process dies after installing a snapshot but before the WAL
	// truncate lands, recovery replays the WAL over the snapshot; the
	// records are identical, so the replay must be a harmless no-op.
	dir := t.TempDir()
	s := open(t, dir, Options{CompactEvery: -1})
	for i := 0; i < 8; i++ {
		if err := s.Put(KeyOf("p", string(rune(i))), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Build the snapshot out-of-band while leaving the WAL untouched,
	// reproducing the crash window.
	tmp := open(t, dir, Options{CompactEvery: -1})
	wal, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.Compact(); err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	if err := os.WriteFile(walPath(dir), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	re := open(t, dir, Options{})
	defer re.Close()
	if n := re.Len(); n != 8 {
		t.Errorf("after snapshot+stale-WAL recovery, Len = %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if v, ok := re.Get(KeyOf("p", string(rune(i)))); !ok || v != int64(i) {
			t.Errorf("key %d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
}
