package pixel

import (
	"errors"
	"testing"

	"repro/internal/audience"
	"repro/internal/population"
)

func testUniverse(t *testing.T) *population.Universe {
	t.Helper()
	u, err := population.New(population.Config{
		Seed:      5,
		Size:      30000,
		MaleShare: 0.5,
		AgeShare:  [population.NumAgeRanges]float64{0.25, 0.25, 0.25, 0.25},
		Factors:   population.UniformFactors(4, 0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func carSite() Site {
	return Site{
		Domain: "sportscars.example",
		Visitors: population.AttrModel{
			ID:         9001,
			BaseLogit:  population.Logit(0.05),
			GenderLoad: 1.5,
			Factor:     0,
		},
	}
}

func TestAddSite(t *testing.T) {
	tr := NewTracker(testUniverse(t))
	id, err := tr.AddSite(carSite())
	if err != nil || id != 0 {
		t.Fatalf("AddSite = %d, %v", id, err)
	}
	if _, err := tr.AddSite(carSite()); err == nil {
		t.Fatal("duplicate domain accepted")
	}
	if _, err := tr.AddSite(Site{}); err == nil {
		t.Fatal("empty domain accepted")
	}
	if tr.Sites() != 1 {
		t.Fatalf("Sites = %d", tr.Sites())
	}
	if _, err := tr.Site(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Site(5); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("want ErrUnknownSite, got %v", err)
	}
}

func TestFunnelNesting(t *testing.T) {
	tr := NewTracker(testUniverse(t))
	id, _ := tr.AddSite(carSite())
	views, err := tr.Audience(id, EventPageView, MaxWindowDays)
	if err != nil {
		t.Fatal(err)
	}
	carts, err := tr.Audience(id, EventAddToCart, MaxWindowDays)
	if err != nil {
		t.Fatal(err)
	}
	buys, err := tr.Audience(id, EventPurchase, MaxWindowDays)
	if err != nil {
		t.Fatal(err)
	}
	if views.Count() == 0 {
		t.Fatal("no visitors")
	}
	// Strict funnel: purchase ⊂ cart ⊂ view.
	if audience.CountAnd(carts, views) != carts.Count() {
		t.Fatal("cart audience not nested in views")
	}
	if audience.CountAnd(buys, carts) != buys.Count() {
		t.Fatal("purchase audience not nested in carts")
	}
	if !(buys.Count() < carts.Count() && carts.Count() < views.Count()) {
		t.Fatalf("funnel not shrinking: %d/%d/%d", views.Count(), carts.Count(), buys.Count())
	}
	// Rough funnel rates.
	cartRate := float64(carts.Count()) / float64(views.Count())
	if cartRate < 0.25 || cartRate > 0.35 {
		t.Errorf("cart rate %.2f, want ~0.30", cartRate)
	}
}

func TestWindowSubsampling(t *testing.T) {
	tr := NewTracker(testUniverse(t))
	id, _ := tr.AddSite(carSite())
	full, _ := tr.Audience(id, EventPageView, MaxWindowDays)
	month, err := tr.Audience(id, EventPageView, 30)
	if err != nil {
		t.Fatal(err)
	}
	// 30-day window ≈ 1/6 of the 180-day audience, nested within it.
	if audience.CountAnd(month, full) != month.Count() {
		t.Fatal("window audience not nested in full audience")
	}
	frac := float64(month.Count()) / float64(full.Count())
	if frac < 0.12 || frac > 0.22 {
		t.Errorf("30-day fraction %.3f, want ~0.167", frac)
	}
}

func TestWindowValidation(t *testing.T) {
	tr := NewTracker(testUniverse(t))
	id, _ := tr.AddSite(carSite())
	for _, w := range []int{0, -1, 181} {
		if _, err := tr.Audience(id, EventPageView, w); !errors.Is(err, ErrBadWindow) {
			t.Fatalf("window %d: want ErrBadWindow, got %v", w, err)
		}
	}
	if _, err := tr.Audience(9, EventPageView, 30); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("want ErrUnknownSite, got %v", err)
	}
	if _, err := tr.Audience(id, Event(9), 30); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("want ErrUnknownEvent, got %v", err)
	}
}

func TestDeterministic(t *testing.T) {
	u := testUniverse(t)
	a := NewTracker(u)
	b := NewTracker(u)
	idA, _ := a.AddSite(carSite())
	idB, _ := b.AddSite(carSite())
	setA, _ := a.Audience(idA, EventPurchase, 60)
	setB, _ := b.Audience(idB, EventPurchase, 60)
	if !audience.Equal(setA, setB) {
		t.Fatal("trackers diverge")
	}
}

func TestVisitorSkewPropagates(t *testing.T) {
	// A male-skewed site produces male-skewed pixel audiences at every
	// funnel depth — retargeting inherits the site's demographic skew.
	u := testUniverse(t)
	tr := NewTracker(u)
	id, _ := tr.AddSite(carSite())
	for _, e := range []Event{EventPageView, EventAddToCart, EventPurchase} {
		set, err := tr.Audience(id, e, MaxWindowDays)
		if err != nil {
			t.Fatal(err)
		}
		m := float64(audience.CountAnd(set, u.GenderSet(population.Male)))
		f := float64(audience.CountAnd(set, u.GenderSet(population.Female)))
		if f == 0 {
			continue
		}
		if ratio := m / f; ratio < 2 {
			t.Errorf("%s audience ratio %.2f, want male-skewed", e, ratio)
		}
	}
}

func TestEventStrings(t *testing.T) {
	if EventPageView.String() != "page-view" || EventPurchase.String() != "purchase" {
		t.Fatal("event strings wrong")
	}
}

func TestReturnedSetIsACopy(t *testing.T) {
	tr := NewTracker(testUniverse(t))
	id, _ := tr.AddSite(carSite())
	a, _ := tr.Audience(id, EventPageView, MaxWindowDays)
	before := a.Count()
	a.Clear()
	b, _ := tr.Audience(id, EventPageView, MaxWindowDays)
	if b.Count() != before {
		t.Fatal("mutating a returned audience corrupted the tracker cache")
	}
}
