// Package pixel implements activity-based targeting (paper §2.1): an
// advertiser places a tracking pixel from the ad platform on their website,
// the platform logs visitors' actions, and the advertiser targets audiences
// like "everyone who added to cart in the last 30 days" ("website custom
// audiences" on Facebook, "remarketing" on Google, "website retargeting" on
// LinkedIn). The paper notes these remain available even on Facebook's
// restricted interface (§2.2) — another composition surface.
//
// A simulated Site attracts visitors according to an interest model (the
// same generative family as catalog attributes: demographic loadings plus a
// latent factor), and visitors funnel through deepening event stages.
// Audiences are deterministic in (universe, site, event, window).
package pixel

import (
	"errors"
	"fmt"

	"repro/internal/audience"
	"repro/internal/population"
	"repro/internal/xrand"
)

// Event is a pixel event stage; deeper stages are strict subsets of
// shallower ones (the classic funnel).
type Event int

// Funnel stages.
const (
	// EventPageView fires for every visitor.
	EventPageView Event = iota
	// EventAddToCart fires for a fraction of viewers.
	EventAddToCart
	// EventPurchase fires for a fraction of cart adders.
	EventPurchase
	numEvents
)

// String names the event.
func (e Event) String() string {
	switch e {
	case EventPageView:
		return "page-view"
	case EventAddToCart:
		return "add-to-cart"
	case EventPurchase:
		return "purchase"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Funnel pass-through rates per stage beyond page view.
var funnelRates = map[Event]float64{
	EventAddToCart: 0.30,
	EventPurchase:  0.35, // of cart adders
}

// Site is an advertiser website carrying the platform's tracking pixel.
type Site struct {
	// Domain names the site (unique per tracker).
	Domain string
	// Visitors models who visits: the same generative family as catalog
	// attributes (base rate, demographic loadings, latent factor).
	Visitors population.AttrModel
}

// MaxWindowDays is the longest retention window the platforms offer.
const MaxWindowDays = 180

// Tracker is one platform's pixel-event store over its universe.
type Tracker struct {
	uni   *population.Universe
	sites []Site

	// cache[siteID][event] holds materialized audiences for the full
	// window; shorter windows subsample deterministically.
	cache map[int]map[Event]*audience.Set
}

// Errors.
var (
	ErrUnknownSite  = errors.New("pixel: unknown site")
	ErrUnknownEvent = errors.New("pixel: unknown event")
	ErrBadWindow    = errors.New("pixel: window must be in [1, 180] days")
)

// NewTracker returns an empty tracker over the universe.
func NewTracker(uni *population.Universe) *Tracker {
	return &Tracker{uni: uni, cache: make(map[int]map[Event]*audience.Set)}
}

// AddSite registers a site and returns its id.
func (t *Tracker) AddSite(s Site) (int, error) {
	if s.Domain == "" {
		return 0, errors.New("pixel: empty site domain")
	}
	for _, existing := range t.sites {
		if existing.Domain == s.Domain {
			return 0, fmt.Errorf("pixel: site %q already registered", s.Domain)
		}
	}
	t.sites = append(t.sites, s)
	return len(t.sites) - 1, nil
}

// Sites returns the registered site count.
func (t *Tracker) Sites() int { return len(t.sites) }

// Site returns site metadata by id.
func (t *Tracker) Site(id int) (Site, error) {
	if id < 0 || id >= len(t.sites) {
		return Site{}, fmt.Errorf("%w: %d", ErrUnknownSite, id)
	}
	return t.sites[id], nil
}

// fullAudience returns (and caches) the full-window audience of one event.
func (t *Tracker) fullAudience(siteID int, e Event) (*audience.Set, error) {
	if siteID < 0 || siteID >= len(t.sites) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSite, siteID)
	}
	if e < 0 || e >= numEvents {
		return nil, fmt.Errorf("%w: %d", ErrUnknownEvent, e)
	}
	byEvent, ok := t.cache[siteID]
	if !ok {
		byEvent = make(map[Event]*audience.Set)
		t.cache[siteID] = byEvent
	}
	if set, ok := byEvent[e]; ok {
		return set, nil
	}
	site := t.sites[siteID]
	var set *audience.Set
	if e == EventPageView {
		set = t.uni.Materialize(site.Visitors)
	} else {
		parent, err := t.fullAudience(siteID, e-1)
		if err != nil {
			return nil, err
		}
		rate := funnelRates[e]
		salt := xrand.HashString(site.Domain) ^ uint64(e)
		set = audience.New(t.uni.Size())
		parent.ForEach(func(i int) {
			if xrand.Bernoulli(rate, salt, uint64(i)) {
				set.Add(i)
			}
		})
	}
	byEvent[e] = set
	return set, nil
}

// Audience returns the users who performed the event on the site within the
// last windowDays days. Shorter windows deterministically subsample the
// full-window audience in proportion to the window (a memoryless visit
// process).
func (t *Tracker) Audience(siteID int, e Event, windowDays int) (*audience.Set, error) {
	if windowDays < 1 || windowDays > MaxWindowDays {
		return nil, fmt.Errorf("%w: %d", ErrBadWindow, windowDays)
	}
	full, err := t.fullAudience(siteID, e)
	if err != nil {
		return nil, err
	}
	if windowDays == MaxWindowDays {
		return full.Clone(), nil
	}
	keep := float64(windowDays) / MaxWindowDays
	salt := xrand.HashString(t.sites[siteID].Domain) ^ (uint64(e) << 8) ^ 0x57
	out := audience.New(t.uni.Size())
	full.ForEach(func(i int) {
		if xrand.Bernoulli(keep, salt, uint64(i)) {
			out.Add(i)
		}
	})
	return out, nil
}
