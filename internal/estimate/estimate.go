// Package estimate models how ad platforms round the audience-size
// estimates they report to advertisers.
//
// The paper's granularity study (§3, "Understanding size estimates") found:
//
//   - Facebook: two significant digits, minimum returned value 1,000
//     (0 below the minimum);
//   - Google: one significant digit up to 100,000 and two significant digits
//     thereafter, minimum 40;
//   - LinkedIn: two significant digits, minimum 300.
//
// The audit methodology only ever observes rounded values, so the same
// models sit inside the platform simulators and inside the re-analysis that
// bounds how much rounding could distort a representation ratio
// (Interval recovers the exact-size range consistent with a reported value).
package estimate

import "fmt"

// Rounder converts an exact audience size into the estimate a platform
// reports.
type Rounder interface {
	// Round returns the reported estimate for an exact size.
	Round(exact int64) int64
	// Interval returns the inclusive range [lo, hi] of exact sizes that
	// would produce the given reported estimate. It is the inverse image of
	// Round and is used to compute least-skewed rep ratios under rounding.
	Interval(reported int64) (lo, hi int64)
	// Name identifies the rounding scheme.
	Name() string
}

// pow10 returns 10^k for k >= 0.
func pow10(k int) int64 {
	p := int64(1)
	for i := 0; i < k; i++ {
		p *= 10
	}
	return p
}

// digits returns the number of decimal digits of v > 0.
func digits(v int64) int {
	d := 0
	for v > 0 {
		d++
		v /= 10
	}
	return d
}

// roundSig rounds v > 0 to s significant digits (round half away from zero).
func roundSig(v int64, s int) int64 {
	d := digits(v)
	if d <= s {
		return v
	}
	p := pow10(d - s)
	return (v + p/2) / p * p
}

// SigDigitRounder rounds to a fixed number of significant digits with a
// minimum reporting floor: exact sizes below Min report as 0. Facebook
// (Sig=2, Min=1000) and LinkedIn (Sig=2, Min=300) use this shape.
type SigDigitRounder struct {
	// Scheme is the name reported by Name.
	Scheme string
	// Sig is the number of significant digits retained.
	Sig int
	// Min is the smallest reportable estimate; exact sizes whose rounded
	// value falls below Min report as 0.
	Min int64
}

// Round implements Rounder.
func (r SigDigitRounder) Round(exact int64) int64 {
	if exact <= 0 {
		return 0
	}
	v := roundSig(exact, r.Sig)
	if v < r.Min {
		return 0
	}
	return v
}

// Interval implements Rounder.
func (r SigDigitRounder) Interval(reported int64) (lo, hi int64) {
	if reported <= 0 {
		// Any exact size that rounds below Min.
		hi = r.Min - 1
		// Find the largest exact value that still rounds below Min: search
		// upward from Min-1 while Round stays 0. Rounding can push values
		// up, so walk down instead: the boundary is where roundSig >= Min.
		for hi > 0 && r.Round(hi) != 0 {
			hi--
		}
		return 0, hi
	}
	lo, hi = sigInterval(reported, r.Sig)
	if lo < 1 {
		lo = 1
	}
	return lo, hi
}

// sigInterval returns the exact-size range rounding to reported under
// round-half-away-from-zero significant-digit rounding.
func sigInterval(reported int64, sig int) (lo, hi int64) {
	d := digits(reported)
	if d <= sig {
		return reported, reported
	}
	p := pow10(d - sig)
	lo = reported - p/2
	// At a decade boundary (reported = 10^(d-1)) the values just below have
	// one fewer digit and are rounded with a ten-times-finer step, so the
	// lower edge of the pre-image is tighter.
	if digits(lo) < d {
		lo = reported - p/10/2
	}
	hi = reported + p/2 - 1
	return lo, hi
}

// Name implements Rounder.
func (r SigDigitRounder) Name() string {
	return fmt.Sprintf("%s(sig=%d,min=%d)", r.Scheme, r.Sig, r.Min)
}

// GoogleRounder implements Google's tiered scheme: one significant digit for
// values whose rounded magnitude is at most Knee (100,000), two significant
// digits above, with a minimum floor (40).
type GoogleRounder struct {
	// Knee is the boundary below which one significant digit is used.
	Knee int64
	// Min is the smallest reportable estimate.
	Min int64
}

// NewGoogleRounder returns the rounder with the paper's parameters.
func NewGoogleRounder() GoogleRounder {
	return GoogleRounder{Knee: 100_000, Min: 40}
}

// Round implements Rounder.
func (g GoogleRounder) Round(exact int64) int64 {
	if exact <= 0 {
		return 0
	}
	var v int64
	if exact <= g.Knee {
		v = roundSig(exact, 1)
	} else {
		v = roundSig(exact, 2)
	}
	if v < g.Min {
		return 0
	}
	return v
}

// Interval implements Rounder.
func (g GoogleRounder) Interval(reported int64) (lo, hi int64) {
	if reported <= 0 {
		hi = g.Min - 1
		for hi > 0 && g.Round(hi) != 0 {
			hi--
		}
		return 0, hi
	}
	if reported <= g.Knee {
		// Exact sizes at or below the knee round with one significant digit;
		// sizes above the knee round with two but can still land on a
		// reported value <= Knee (e.g. 104,999 -> 100,000). The pre-image is
		// the union of both regions, which is contiguous when both are
		// non-empty.
		lo, hi = sigInterval(reported, 1)
		if hi > g.Knee {
			hi = g.Knee
		}
		lo2, hi2 := sigInterval(reported, 2)
		if hi2 > g.Knee {
			if lo2 <= g.Knee+1 {
				hi = hi2
			}
		}
	} else {
		lo, hi = sigInterval(reported, 2)
	}
	if lo < 1 {
		lo = 1
	}
	return lo, hi
}

// Name implements Rounder.
func (g GoogleRounder) Name() string {
	return fmt.Sprintf("google(knee=%d,min=%d)", g.Knee, g.Min)
}

// Exact is a pass-through rounder used by ablation experiments to measure
// what the audit would see with unrounded statistics.
type Exact struct{}

// Round implements Rounder.
func (Exact) Round(exact int64) int64 {
	if exact < 0 {
		return 0
	}
	return exact
}

// Interval implements Rounder.
func (Exact) Interval(reported int64) (lo, hi int64) { return reported, reported }

// Name implements Rounder.
func (Exact) Name() string { return "exact" }

// Facebook returns the rounder the paper inferred for Facebook's interfaces.
func Facebook() Rounder {
	return SigDigitRounder{Scheme: "facebook", Sig: 2, Min: 1000}
}

// LinkedIn returns the rounder the paper inferred for LinkedIn.
func LinkedIn() Rounder {
	return SigDigitRounder{Scheme: "linkedin", Sig: 2, Min: 300}
}

// Google returns the rounder the paper inferred for Google.
func Google() Rounder {
	return NewGoogleRounder()
}
