package estimate

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestFacebookRounding(t *testing.T) {
	fb := Facebook()
	cases := []struct{ in, want int64 }{
		{0, 0},
		{-5, 0},
		{999, 0}, // rounds to 1000? 999→1000 at 2 sig... see below
		{432, 0}, // 430 < 1000 → 0
		{1000, 1000},
		{1049, 1000},
		{1050, 1100}, // half rounds away from zero
		{123456, 120000},
		{125000, 130000},
		{98, 0},
		{5_200_000, 5_200_000},
		{5_234_567, 5_200_000},
	}
	for _, c := range cases {
		if c.in == 999 {
			// 999 has 3 digits → rounds to 1000 which is >= min → reported.
			if got := fb.Round(c.in); got != 1000 {
				t.Errorf("facebook Round(999) = %d, want 1000", got)
			}
			continue
		}
		if got := fb.Round(c.in); got != c.want {
			t.Errorf("facebook Round(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLinkedInRounding(t *testing.T) {
	li := LinkedIn()
	cases := []struct{ in, want int64 }{
		{0, 0}, {200, 0}, {299, 300}, {300, 300}, {304, 300}, {305, 310},
		{46_123, 46_000}, {560_449, 560_000},
	}
	for _, c := range cases {
		if got := li.Round(c.in); got != c.want {
			t.Errorf("linkedin Round(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestGoogleRounding(t *testing.T) {
	g := Google()
	cases := []struct{ in, want int64 }{
		// Values just below the floor still round up onto it (like FB's
		// 999 -> 1000); only values rounding strictly below 40 report 0.
		{0, 0}, {34, 0}, {39, 40}, {40, 40}, {44, 40}, {45, 50},
		{94_999, 90_000}, {95_000, 100_000},
		{100_000, 100_000},
		{100_001, 100_000}, // above knee: 2 sig digits
		{104_999, 100_000},
		{105_000, 110_000},
		{1_700_000, 1_700_000},
		{1_684_321, 1_700_000},
		{170_499, 170_000},
	}
	for _, c := range cases {
		if got := g.Round(c.in); got != c.want {
			t.Errorf("google Round(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestExactRounder(t *testing.T) {
	e := Exact{}
	if e.Round(12345) != 12345 || e.Round(-1) != 0 {
		t.Fatal("Exact rounder wrong")
	}
	lo, hi := e.Interval(77)
	if lo != 77 || hi != 77 {
		t.Fatal("Exact interval wrong")
	}
}

func TestRoundIdempotent(t *testing.T) {
	// Property: rounding a rounded value changes nothing.
	for _, r := range []Rounder{Facebook(), LinkedIn(), Google(), Exact{}} {
		r := r
		if err := quick.Check(func(raw uint32) bool {
			v := int64(raw)
			return r.Round(r.Round(v)) == r.Round(v)
		}, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestRoundMonotone(t *testing.T) {
	// Property: Round is monotone nondecreasing.
	for _, r := range []Rounder{Facebook(), LinkedIn(), Google()} {
		r := r
		if err := quick.Check(func(a, b uint32) bool {
			x, y := int64(a), int64(b)
			if x > y {
				x, y = y, x
			}
			return r.Round(x) <= r.Round(y)
		}, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestIntervalContainsPreimage(t *testing.T) {
	// Property: for any exact v, v lies within Interval(Round(v)).
	rng := xrand.New(99)
	for _, r := range []Rounder{Facebook(), LinkedIn(), Google()} {
		for i := 0; i < 5000; i++ {
			v := int64(rng.Intn(10_000_000))
			rep := r.Round(v)
			lo, hi := r.Interval(rep)
			if v < lo || v > hi {
				t.Fatalf("%s: exact %d outside interval [%d, %d] of reported %d",
					r.Name(), v, lo, hi, rep)
			}
		}
	}
}

func TestIntervalRoundsBack(t *testing.T) {
	// Property: every value in Interval(rep) rounds to rep (check endpoints).
	rng := xrand.New(7)
	for _, r := range []Rounder{Facebook(), LinkedIn(), Google()} {
		for i := 0; i < 2000; i++ {
			v := int64(rng.Intn(50_000_000))
			rep := r.Round(v)
			lo, hi := r.Interval(rep)
			if got := r.Round(lo); got != rep {
				t.Fatalf("%s: Round(lo=%d) = %d, want %d", r.Name(), lo, got, rep)
			}
			if got := r.Round(hi); got != rep {
				t.Fatalf("%s: Round(hi=%d) = %d, want %d", r.Name(), hi, got, rep)
			}
		}
	}
}

func TestReportedSigDigits(t *testing.T) {
	// The rounded outputs must exhibit exactly the granularity the paper
	// reports: Facebook/LinkedIn ≤ 2 sig digits; Google ≤ 1 below 100k and
	// ≤ 2 above.
	rng := xrand.New(11)
	var fbOut, liOut, gLow, gHigh []int64
	fb, li, g := Facebook(), LinkedIn(), Google()
	for i := 0; i < 20000; i++ {
		v := int64(rng.Intn(100_000_000))
		fbOut = append(fbOut, fb.Round(v))
		liOut = append(liOut, li.Round(v))
		gv := g.Round(v)
		if gv > 0 && gv <= 100_000 {
			gLow = append(gLow, gv)
		} else if gv > 100_000 {
			gHigh = append(gHigh, gv)
		}
	}
	if d := stats.MaxSigDigits(fbOut); d > 2 {
		t.Errorf("facebook outputs have %d sig digits, want <= 2", d)
	}
	if d := stats.MaxSigDigits(liOut); d > 2 {
		t.Errorf("linkedin outputs have %d sig digits, want <= 2", d)
	}
	if d := stats.MaxSigDigits(gLow); d > 1 {
		t.Errorf("google low outputs have %d sig digits, want <= 1", d)
	}
	if d := stats.MaxSigDigits(gHigh); d > 2 {
		t.Errorf("google high outputs have %d sig digits, want <= 2", d)
	}
}

func TestMinimumFloors(t *testing.T) {
	// The paper: minimum returned values 1,000 (FB), 40 (Google), 300 (LI).
	rng := xrand.New(13)
	mins := map[string]struct {
		r    Rounder
		want int64
	}{
		"facebook": {Facebook(), 1000},
		"google":   {Google(), 40},
		"linkedin": {LinkedIn(), 300},
	}
	for name, m := range mins {
		var outs []int64
		for i := 0; i < 50000; i++ {
			outs = append(outs, m.r.Round(int64(rng.Intn(5000))))
		}
		if got := stats.MinNonZero(outs); got != m.want {
			t.Errorf("%s min reported = %d, want %d", name, got, m.want)
		}
	}
}

func TestZeroInterval(t *testing.T) {
	for _, r := range []Rounder{Facebook(), LinkedIn(), Google()} {
		lo, hi := r.Interval(0)
		if lo != 0 {
			t.Errorf("%s: Interval(0) lo = %d, want 0", r.Name(), lo)
		}
		if r.Round(hi) != 0 {
			t.Errorf("%s: Interval(0) hi = %d does not round to 0", r.Name(), hi)
		}
		if r.Round(hi+1) == 0 {
			t.Errorf("%s: Interval(0) hi = %d is not maximal", r.Name(), hi)
		}
	}
}

func TestNames(t *testing.T) {
	for _, r := range []Rounder{Facebook(), LinkedIn(), Google(), Exact{}} {
		if r.Name() == "" {
			t.Error("empty rounder name")
		}
	}
}

func BenchmarkGoogleRound(b *testing.B) {
	g := Google()
	for i := 0; i < b.N; i++ {
		g.Round(int64(i) * 977)
	}
}
