package adapi

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/platform"
	"repro/internal/targeting"
	"repro/internal/xrand"
)

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	var out []Codec
	for _, name := range []string{
		catalog.PlatformFacebook,
		catalog.PlatformFacebookRestricted,
		catalog.PlatformGoogle,
		catalog.PlatformLinkedIn,
	} {
		c, err := CodecFor(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

func TestCodecForUnknown(t *testing.T) {
	if _, err := CodecFor("myspace"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestCodecPlatformNames(t *testing.T) {
	for _, c := range allCodecs(t) {
		if c.Platform() == "" {
			t.Error("empty codec platform name")
		}
	}
}

// canonicalRoundTrip checks that a spec survives encode → decode up to
// canonical equality.
func canonicalRoundTrip(t *testing.T, c Codec, req platform.EstimateRequest) {
	t.Helper()
	body, err := c.EncodeRequest(req)
	if err != nil {
		t.Fatalf("%s: encode: %v", c.Platform(), err)
	}
	got, err := c.DecodeRequest(body)
	if err != nil {
		t.Fatalf("%s: decode: %v\nbody: %s", c.Platform(), err, body)
	}
	if targeting.Canonical(got.Spec) != targeting.Canonical(req.Spec) {
		t.Fatalf("%s: spec round trip changed:\n in: %s\nout: %s\nbody: %s",
			c.Platform(), targeting.Canonical(req.Spec), targeting.Canonical(got.Spec), body)
	}
	if got.Objective != req.Objective {
		t.Fatalf("%s: objective round trip: %q -> %q", c.Platform(), req.Objective, got.Objective)
	}
}

func TestRoundTripSimpleSpecs(t *testing.T) {
	specs := []targeting.Spec{
		targeting.Attr(3),
		targeting.And(targeting.Attr(1), targeting.Attr(2)),
		targeting.AnyAttr(4, 5, 6),
		targeting.WithGender(targeting.Attr(1), 0),
		targeting.WithAge(targeting.Attr(1), 0, 2),
		targeting.WithAge(targeting.WithGender(targeting.AnyAttr(7, 8), 1), 3),
		targeting.Excluding(targeting.Attr(1), targeting.AnyAttr(2, 3)),
	}
	for _, c := range allCodecs(t) {
		for _, s := range specs {
			canonicalRoundTrip(t, c, platform.EstimateRequest{Spec: s})
		}
	}
}

func TestRoundTripGoogleTopics(t *testing.T) {
	c, err := CodecFor(catalog.PlatformGoogle)
	if err != nil {
		t.Fatal(err)
	}
	canonicalRoundTrip(t, c, platform.EstimateRequest{
		Spec: targeting.And(targeting.Attr(10), targeting.Topic(20)),
	})
	canonicalRoundTrip(t, c, platform.EstimateRequest{
		Spec:                 targeting.Excluding(targeting.Topic(1), targeting.Topic(2)),
		FrequencyCapPerMonth: 3,
	})
}

func TestGoogleFrequencyCapRoundTrip(t *testing.T) {
	c, _ := CodecFor(catalog.PlatformGoogle)
	body, err := c.EncodeRequest(platform.EstimateRequest{
		Spec:                 targeting.Attr(1),
		FrequencyCapPerMonth: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrequencyCapPerMonth != 7 {
		t.Fatalf("cap round trip = %d", got.FrequencyCapPerMonth)
	}
}

func TestObjectiveRoundTrip(t *testing.T) {
	cases := map[string][]platform.Objective{
		catalog.PlatformFacebook: {platform.ObjectiveReach, platform.ObjectiveTraffic},
		catalog.PlatformGoogle:   {platform.ObjectiveBrandAwarenessReach, platform.ObjectiveTraffic},
		catalog.PlatformLinkedIn: {platform.ObjectiveBrandAwareness, platform.ObjectiveTraffic},
	}
	for name, objs := range cases {
		c, _ := CodecFor(name)
		for _, o := range objs {
			canonicalRoundTrip(t, c, platform.EstimateRequest{Spec: targeting.Attr(1), Objective: o})
		}
		// Unsupported objective is an encoder error.
		if _, err := c.EncodeRequest(platform.EstimateRequest{Spec: targeting.Attr(1), Objective: "dance"}); !errors.Is(err, platform.ErrUnknownObjective) {
			t.Errorf("%s: want ErrUnknownObjective, got %v", name, err)
		}
	}
}

func TestEncodeRejectsMixedClause(t *testing.T) {
	mixed := targeting.Spec{Include: []targeting.Clause{{
		{Kind: targeting.KindAttribute, ID: 1},
		{Kind: targeting.KindGender, ID: 0},
	}}}
	for _, c := range allCodecs(t) {
		if _, err := c.EncodeRequest(platform.EstimateRequest{Spec: mixed}); !errors.Is(err, targeting.ErrMixedClause) {
			t.Errorf("%s: want ErrMixedClause, got %v", c.Platform(), err)
		}
	}
}

func TestEncodeRejectsEmptyClause(t *testing.T) {
	empty := targeting.Spec{Include: []targeting.Clause{{}}}
	for _, c := range allCodecs(t) {
		if _, err := c.EncodeRequest(platform.EstimateRequest{Spec: empty}); !errors.Is(err, targeting.ErrEmptyClause) {
			t.Errorf("%s: want ErrEmptyClause, got %v", c.Platform(), err)
		}
	}
}

func TestFacebookRejectsTopics(t *testing.T) {
	c, _ := CodecFor(catalog.PlatformFacebook)
	if _, err := c.EncodeRequest(platform.EstimateRequest{Spec: targeting.Topic(1)}); !errors.Is(err, targeting.ErrKindForbidden) {
		t.Fatalf("want ErrKindForbidden, got %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, c := range allCodecs(t) {
		for _, v := range []int64{0, 40, 300, 1000, 46_000, 5_200_000, 2_400_000_000} {
			body, err := c.EncodeResponse(v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.DecodeResponse(body)
			if err != nil {
				t.Fatalf("%s: decode response: %v", c.Platform(), err)
			}
			if got != v {
				t.Fatalf("%s: response round trip %d -> %d", c.Platform(), v, got)
			}
		}
	}
}

func TestGoogleWireIsObfuscated(t *testing.T) {
	// The Google dialect must not leak readable field names: all object
	// keys are numeric strings, and the estimate travels as a string.
	c, _ := CodecFor(catalog.PlatformGoogle)
	body, err := c.EncodeRequest(platform.EstimateRequest{
		Spec:                 targeting.WithGender(targeting.And(targeting.Attr(5), targeting.Topic(9)), 1),
		FrequencyCapPerMonth: 1,
		Objective:            platform.ObjectiveBrandAwarenessReach,
	})
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(body, &generic); err != nil {
		t.Fatal(err)
	}
	assertNumericKeys(t, generic)
	for _, word := range []string{"targeting", "attribute", "topic", "gender", "age", "spec"} {
		if strings.Contains(strings.ToLower(string(body)), word) {
			t.Fatalf("google wire leaks %q: %s", word, body)
		}
	}
	resp, _ := c.EncodeResponse(123_000)
	var rGeneric map[string]any
	if err := json.Unmarshal(resp, &rGeneric); err != nil {
		t.Fatal(err)
	}
	assertNumericKeys(t, rGeneric)
	if !strings.Contains(string(resp), `"123000"`) {
		t.Fatalf("google estimate should travel as a string: %s", resp)
	}
}

// assertNumericKeys walks a decoded JSON tree checking every object key is
// a decimal number.
func assertNumericKeys(t *testing.T, v any) {
	t.Helper()
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			for _, r := range k {
				if r < '0' || r > '9' {
					t.Fatalf("non-numeric key %q", k)
				}
			}
			assertNumericKeys(t, sub)
		}
	case []any:
		for _, sub := range x {
			assertNumericKeys(t, sub)
		}
	}
}

func TestFacebookWireShape(t *testing.T) {
	// Spot-check the Facebook dialect against its documented field names.
	c, _ := CodecFor(catalog.PlatformFacebook)
	body, err := c.EncodeRequest(platform.EstimateRequest{
		Spec:      targeting.WithGender(targeting.And(targeting.Attr(3), targeting.AnyAttr(4, 5)), 0),
		Objective: platform.ObjectiveReach,
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	ts, ok := m["targeting_spec"].(map[string]any)
	if !ok {
		t.Fatalf("no targeting_spec: %s", body)
	}
	flex, ok := ts["flexible_spec"].([]any)
	if !ok || len(flex) != 2 {
		t.Fatalf("flexible_spec wrong: %s", body)
	}
	genders, ok := ts["genders"].([]any)
	if !ok || len(genders) != 1 || genders[0].(float64) != 1 {
		t.Fatalf("genders wrong (male must encode as 1): %s", body)
	}
	if m["optimization_goal"] != "REACH" {
		t.Fatalf("optimization_goal wrong: %s", body)
	}
}

func TestLinkedInWireShape(t *testing.T) {
	// LinkedIn demographics ride as ordinary facets in the and-of-ors tree.
	c, _ := CodecFor(catalog.PlatformLinkedIn)
	body, err := c.EncodeRequest(platform.EstimateRequest{
		Spec: targeting.WithAge(targeting.Attr(7), 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	for _, want := range []string{`"and"`, `"or"`, "urn:li:attribute:7", "urn:li:ageRange:(55,2147483647)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("linkedin wire missing %q: %s", want, s)
		}
	}
}

func TestRandomSpecRoundTripProperty(t *testing.T) {
	// Property: any rule-shaped random spec survives the round trip on the
	// platform whose dialect can express it.
	fb, _ := CodecFor(catalog.PlatformFacebook)
	g, _ := CodecFor(catalog.PlatformGoogle)
	li, _ := CodecFor(catalog.PlatformLinkedIn)
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		nClauses := 1 + rng.Intn(4)
		var spec targeting.Spec
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			var cl targeting.Clause
			for j := 0; j < width; j++ {
				cl = append(cl, targeting.Ref{Kind: targeting.KindAttribute, ID: rng.Intn(200)})
			}
			spec.Include = append(spec.Include, cl)
		}
		req := platform.EstimateRequest{Spec: spec}
		for _, c := range []Codec{fb, li} {
			body, err := c.EncodeRequest(req)
			if err != nil {
				return false
			}
			got, err := c.DecodeRequest(body)
			if err != nil || targeting.Canonical(got.Spec) != targeting.Canonical(spec) {
				return false
			}
		}
		// Google expresses the same shape (validation happens server-side).
		body, err := g.EncodeRequest(req)
		if err != nil {
			return false
		}
		got, err := g.DecodeRequest(body)
		return err == nil && targeting.Canonical(got.Spec) == targeting.Canonical(spec)
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAgeRangeFromBoundsUnknown(t *testing.T) {
	if _, err := ageRangeFromBounds(19, 23); err == nil {
		t.Fatal("unknown bounds accepted")
	}
}

func TestErrorCodeMapping(t *testing.T) {
	for _, e := range codeByError {
		code := errorCode(e.err)
		if code == codeInternal {
			t.Errorf("error %v classified as internal", e.err)
			continue
		}
		back := errorFromCode(code, "x")
		if !errors.Is(back, e.err) {
			t.Errorf("round trip lost error identity for %v (code %s)", e.err, code)
		}
	}
	if errorCode(errors.New("boom")) != codeInternal {
		t.Error("unknown errors must classify as internal")
	}
}

func TestSplitClauses(t *testing.T) {
	spec := targeting.WithGender(targeting.And(targeting.Attr(1), targeting.Topic(2)), 0)
	byKind, err := splitClauses(spec.Include)
	if err != nil {
		t.Fatal(err)
	}
	want := map[targeting.Kind]int{
		targeting.KindAttribute: 1,
		targeting.KindTopic:     1,
		targeting.KindGender:    1,
	}
	got := map[targeting.Kind]int{}
	for k, cls := range byKind {
		got[k] = len(cls)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splitClauses = %v, want %v", got, want)
	}
}

func TestLocationRoundTrip(t *testing.T) {
	// The auditor's US scope must survive every dialect: FB geo_locations,
	// Google's obfuscated geo groups, LinkedIn's locations facet.
	spec := targeting.WithLocation(targeting.Attr(3), 0, 2) // US or GB
	for _, c := range allCodecs(t) {
		canonicalRoundTrip(t, c, platform.EstimateRequest{Spec: spec})
	}
	// Unknown region ids are encoder errors on the dialects that carry
	// country-code strings; Google's numeric dialect passes ids through and
	// the server rejects them at validation.
	bad := targeting.WithLocation(targeting.Attr(3), 99)
	for _, c := range allCodecs(t) {
		if c.Platform() == catalog.PlatformGoogle {
			continue
		}
		if _, err := c.EncodeRequest(platform.EstimateRequest{Spec: bad}); err == nil {
			t.Errorf("%s: unknown region accepted", c.Platform())
		}
	}
}

func TestRegionCodes(t *testing.T) {
	for id := 0; id < len(regionCodes); id++ {
		code, err := regionCode(id)
		if err != nil {
			t.Fatal(err)
		}
		back, err := regionFromCode(code)
		if err != nil || back != id {
			t.Fatalf("region %d -> %q -> %d (%v)", id, code, back, err)
		}
	}
	if _, err := regionFromCode("ZZ"); err == nil {
		t.Fatal("unknown code accepted")
	}
}

func TestGooglePlacementRoundTrip(t *testing.T) {
	c, _ := CodecFor(catalog.PlatformGoogle)
	canonicalRoundTrip(t, c, platform.EstimateRequest{
		Spec: targeting.And(targeting.Placement(3), targeting.Attr(1)),
	})
}

func TestWireGolden(t *testing.T) {
	// Golden wire bodies: these are the protocol. Changing them silently
	// would break interoperability between old servers and new clients, so
	// any intentional change must update this test.
	req := platform.EstimateRequest{
		Spec: targeting.WithLocation(
			targeting.WithGender(targeting.And(targeting.AnyAttr(1, 2), targeting.Attr(3)), 0), 0),
	}
	golden := map[string]string{
		catalog.PlatformFacebook: `{"targeting_spec":{"flexible_spec":[{"interests":[{"id":1},{"id":2}]},{"interests":[{"id":3}]}],"genders":[1],"geo_locations":{"countries":["US"]}}}`,
		catalog.PlatformGoogle:   `{"1":{"2":{"3":[[1,2],[3]],"6":[1],"8":[[0]]}}}`,
		catalog.PlatformLinkedIn: `{"include":{"and":[{"or":{"urn:li:adTargetingFacet:attributes":["urn:li:attribute:1","urn:li:attribute:2"]}},{"or":{"urn:li:adTargetingFacet:attributes":["urn:li:attribute:3"]}},{"or":{"urn:li:adTargetingFacet:genders":["urn:li:gender:MALE"]}},{"or":{"urn:li:adTargetingFacet:locations":["urn:li:geo:US"]}}]}}`,
	}
	for name, want := range golden {
		c, err := CodecFor(name)
		if err != nil {
			t.Fatal(err)
		}
		body, err := c.EncodeRequest(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := strings.TrimSpace(string(body)); got != want {
			t.Errorf("%s wire body changed:\n got: %s\nwant: %s", name, got, want)
		}
	}
}
