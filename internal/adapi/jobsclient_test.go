package adapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/platform"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// jobsService mounts a real job service on an adapi server, the way
// platformd -jobs does, and returns a client against it.
func jobsService(t *testing.T) (*JobsClient, *jobs.Manager) {
	t.Helper()
	factory := func(ctx context.Context, spec jobs.Spec) ([]core.Provider, error) {
		d, err := platform.NewDeployment(platform.DeployOptions{
			Seed:         spec.Seed,
			UniverseSize: spec.Universe,
		})
		if err != nil {
			return nil, err
		}
		ifaces := d.Interfaces()
		out := make([]core.Provider, 0, len(ifaces))
		for _, p := range ifaces {
			out = append(out, core.NewPlatformProvider(p))
		}
		return out, nil
	}
	mgr, err := jobs.Open(jobs.Options{
		Dir: t.TempDir(), Workers: 1, Factory: factory, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := startServer(t, ServerOptions{Jobs: mgr.Handler(), JobStats: mgr.Stats})
	t.Cleanup(func() { mgr.Close() })
	return NewJobsClient(ts.URL, nil), mgr
}

// One job through the whole control plane: submit over HTTP, stream events,
// fetch the terminal snapshot, list, cancel-as-no-op.
func TestJobsClientRoundTrip(t *testing.T) {
	jc, _ := jobsService(t)
	ctx := context.Background()

	j, err := jc.Submit(ctx, jobs.Spec{
		Experiments: []string{"fig1"}, K: 5, Seed: 3, Universe: 2000, Tenant: "rt",
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.Tenant != "rt" {
		t.Fatalf("submitted job = %+v", j)
	}

	var events []jobs.Event
	fin, err := jc.Watch(ctx, j.ID, func(ev jobs.Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != jobs.StateDone {
		t.Fatalf("job finished %s (error %q), want done", fin.State, fin.Error)
	}
	if len(fin.Result["fig1"]) == 0 {
		t.Fatal("terminal snapshot carries no fig1 result")
	}
	if len(events) == 0 || !events[len(events)-1].State.Terminal() {
		t.Fatalf("watch events did not end terminally: %+v", events)
	}

	got, err := jc.Get(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateDone {
		t.Fatalf("GET after watch: state %s", got.State)
	}
	all, err := jc.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != j.ID {
		t.Fatalf("list = %+v", all)
	}
	// Terminal cancel is a no-op, not an error.
	if err := jc.Cancel(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
}

// Client errors surface the server's error envelope, code included.
func TestJobsClientErrors(t *testing.T) {
	jc, _ := jobsService(t)
	ctx := context.Background()

	_, err := jc.Get(ctx, "j99999999")
	if err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Fatalf("unknown job error = %v, want the not_found envelope", err)
	}
	if _, err := jc.Submit(ctx, jobs.Spec{Experiments: []string{"nope"}}); err == nil {
		t.Fatal("invalid spec accepted over HTTP")
	}
}

// /healthz grows a jobs block when the service is mounted; without it the
// block is absent entirely.
func TestHealthzJobsBlock(t *testing.T) {
	readHealth := func(t *testing.T, ts *httptest.Server) healthResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h healthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	plain, _ := startServer(t, ServerOptions{})
	if h := readHealth(t, plain); h.Jobs != nil {
		t.Fatalf("healthz advertises jobs without the service: %+v", h.Jobs)
	}

	blockCh := make(chan struct{})
	t.Cleanup(func() { close(blockCh) })
	factory := func(ctx context.Context, spec jobs.Spec) ([]core.Provider, error) {
		select {
		case <-blockCh:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	mgr, err := jobs.Open(jobs.Options{
		Dir: t.TempDir(), Workers: 1, Factory: factory, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	ts, _ := startServer(t, ServerOptions{Jobs: mgr.Handler(), JobStats: mgr.Stats})

	h := readHealth(t, ts)
	if h.Jobs == nil || !h.Jobs.Enabled {
		t.Fatalf("healthz jobs block missing with service mounted: %+v", h.Jobs)
	}
	if h.Jobs.Queued != 0 || h.Jobs.Running != 0 {
		t.Fatalf("idle service reports queued=%d running=%d", h.Jobs.Queued, h.Jobs.Running)
	}

	// One job occupying the single worker, one behind it in the queue.
	if _, err := mgr.Submit(jobs.Spec{Experiments: []string{"fig1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(jobs.Spec{Experiments: []string{"fig1"}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		h := readHealth(t, ts)
		return h.Jobs != nil && h.Jobs.Running == 1 && h.Jobs.Queued == 1
	})
}
