package adapi

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// Codec translates between targeting specs and one platform's wire dialect.
// The servers and clients share codecs, so a spec surviving an encode/decode
// round trip is a tested invariant.
type Codec interface {
	// Platform returns the interface name the codec speaks for.
	Platform() string
	// EncodeRequest renders an estimate request in the platform dialect.
	EncodeRequest(req platform.EstimateRequest) ([]byte, error)
	// DecodeRequest parses a request body.
	DecodeRequest(body []byte) (platform.EstimateRequest, error)
	// EncodeResponse renders a size estimate.
	EncodeResponse(size int64) ([]byte, error)
	// DecodeResponse parses a size estimate from a response body.
	DecodeResponse(body []byte) (int64, error)
}

// CodecFor returns the codec for a platform interface name.
func CodecFor(name string) (Codec, error) {
	switch name {
	case catalog.PlatformFacebook, catalog.PlatformFacebookRestricted:
		return facebookCodec{platform: name}, nil
	case catalog.PlatformGoogle:
		return googleCodec{}, nil
	case catalog.PlatformLinkedIn:
		return linkedInCodec{}, nil
	default:
		return nil, fmt.Errorf("adapi: no codec for platform %q", name)
	}
}

// ageBounds maps the common age ranges to (min, max) years; max 0 means
// unbounded (55+).
var ageBounds = [][2]int{
	{18, 24},
	{25, 34},
	{35, 54},
	{55, 0},
}

// ageRangeFromBounds recovers the age-range index from (min, max).
func ageRangeFromBounds(min, max int) (int, error) {
	for i, b := range ageBounds {
		if b[0] == min && b[1] == max {
			return i, nil
		}
	}
	return 0, fmt.Errorf("adapi: unknown age bounds [%d, %d]", min, max)
}

// splitClauses groups a spec side's clauses by feature kind, preserving
// clause structure. The wire dialects physically cannot express empty or
// kind-mixed clauses (true of the real platforms' formats), so those are
// encoder errors.
func splitClauses(clauses []targeting.Clause) (map[targeting.Kind][]targeting.Clause, error) {
	out := make(map[targeting.Kind][]targeting.Clause)
	for _, cl := range clauses {
		if len(cl) == 0 {
			return nil, targeting.ErrEmptyClause
		}
		k := cl[0].Kind
		for _, r := range cl {
			if r.Kind != k {
				return nil, targeting.ErrMixedClause
			}
		}
		out[k] = append(out[k], cl)
	}
	return out, nil
}

// clauseIDs extracts the option IDs of a single-kind clause.
func clauseIDs(cl targeting.Clause) []int {
	ids := make([]int, len(cl))
	for i, r := range cl {
		ids[i] = r.ID
	}
	return ids
}

// regionCodes maps population.Region ids to country codes on the wire.
var regionCodes = []string{"US", "CA", "GB", "IN", "BR", "XX"}

// regionCode renders a region id as its wire country code.
func regionCode(id int) (string, error) {
	if id < 0 || id >= len(regionCodes) {
		return "", fmt.Errorf("%w: location %d", targeting.ErrInvalidDemoValue, id)
	}
	return regionCodes[id], nil
}

// regionFromCode parses a wire country code.
func regionFromCode(code string) (int, error) {
	for i, c := range regionCodes {
		if c == code {
			return i, nil
		}
	}
	return 0, fmt.Errorf("adapi: unknown country code %q", code)
}

// clauseOf builds a clause of one kind from option IDs.
func clauseOf(kind targeting.Kind, ids []int) targeting.Clause {
	cl := make(targeting.Clause, len(ids))
	for i, id := range ids {
		cl[i] = targeting.Ref{Kind: kind, ID: id}
	}
	return cl
}
