package adapi

import (
	"encoding/json"
	"fmt"

	"repro/internal/platform"
	"repro/internal/targeting"
)

// facebookCodec speaks the Marketing-API-style delivery_estimate dialect
// used by both Facebook interfaces: OR-groups of interests under
// flexible_spec, a merged exclusions group, genders as 1 (male) / 2
// (female), and age ranges as min/max bounds.
type facebookCodec struct {
	platform string
}

// fbInterest is one option inside a flexible_spec group.
type fbInterest struct {
	ID int `json:"id"`
}

// fbFlexGroup is one OR-group.
type fbFlexGroup struct {
	Interests []fbInterest `json:"interests,omitempty"`
}

// fbAgeRange is a min/max age bound; Max 0 encodes "no upper bound".
type fbAgeRange struct {
	Min int `json:"min"`
	Max int `json:"max,omitempty"`
}

// fbCustomAudience references a previously created custom audience.
type fbCustomAudience struct {
	ID int `json:"id"`
}

// fbGeoLocations is the location-targeting block.
type fbGeoLocations struct {
	Countries []string `json:"countries"`
}

// fbTargetingSpec is the targeting_spec body.
type fbTargetingSpec struct {
	FlexibleSpec    []fbFlexGroup        `json:"flexible_spec,omitempty"`
	Exclusions      *fbFlexGroup         `json:"exclusions,omitempty"`
	Genders         []int                `json:"genders,omitempty"`
	AgeRanges       []fbAgeRange         `json:"age_ranges,omitempty"`
	CustomAudiences [][]fbCustomAudience `json:"custom_audiences,omitempty"`
	GeoLocations    *fbGeoLocations      `json:"geo_locations,omitempty"`
}

// fbRequest is the estimate request envelope.
type fbRequest struct {
	TargetingSpec    fbTargetingSpec `json:"targeting_spec"`
	OptimizationGoal string          `json:"optimization_goal,omitempty"`
}

// fbResponse is the estimate response envelope.
type fbResponse struct {
	Data []struct {
		EstimateMAU int64 `json:"estimate_mau"`
	} `json:"data"`
}

func (c facebookCodec) Platform() string { return c.platform }

// goalNames maps objectives to Facebook optimization goals.
var goalNames = map[platform.Objective]string{
	platform.ObjectiveReach:   "REACH",
	platform.ObjectiveTraffic: "LINK_CLICKS",
}

// EncodeRequest implements Codec.
func (c facebookCodec) EncodeRequest(req platform.EstimateRequest) ([]byte, error) {
	byKind, err := splitClauses(req.Spec.Include)
	if err != nil {
		return nil, err
	}
	if len(byKind[targeting.KindTopic]) > 0 {
		return nil, fmt.Errorf("%w: facebook has no topic feature", targeting.ErrKindForbidden)
	}
	var ts fbTargetingSpec
	for _, cl := range byKind[targeting.KindCustomAudience] {
		group := make([]fbCustomAudience, 0, len(cl))
		for _, id := range clauseIDs(cl) {
			group = append(group, fbCustomAudience{ID: id})
		}
		ts.CustomAudiences = append(ts.CustomAudiences, group)
	}
	for _, cl := range byKind[targeting.KindAttribute] {
		group := fbFlexGroup{}
		for _, id := range clauseIDs(cl) {
			group.Interests = append(group.Interests, fbInterest{ID: id})
		}
		ts.FlexibleSpec = append(ts.FlexibleSpec, group)
	}
	// Facebook genders are 1-based (1=male, 2=female).
	for _, cl := range byKind[targeting.KindGender] {
		for _, id := range clauseIDs(cl) {
			ts.Genders = append(ts.Genders, id+1)
		}
	}
	for _, cl := range byKind[targeting.KindAge] {
		for _, id := range clauseIDs(cl) {
			if id < 0 || id >= len(ageBounds) {
				return nil, fmt.Errorf("%w: age range %d", targeting.ErrInvalidDemoValue, id)
			}
			b := ageBounds[id]
			ts.AgeRanges = append(ts.AgeRanges, fbAgeRange{Min: b[0], Max: b[1]})
		}
	}
	for _, cl := range byKind[targeting.KindLocation] {
		geo := &fbGeoLocations{}
		for _, id := range clauseIDs(cl) {
			code, err := regionCode(id)
			if err != nil {
				return nil, err
			}
			geo.Countries = append(geo.Countries, code)
		}
		if ts.GeoLocations != nil {
			return nil, fmt.Errorf("%w: facebook supports one location block", targeting.ErrTooManyClauses)
		}
		ts.GeoLocations = geo
	}
	// All exclusion clauses merge into one OR-group: ¬(A∨B) ∧ ¬(C) ≡
	// ¬(A∨B∨C). Only attribute exclusions are expressible.
	if len(req.Spec.Exclude) > 0 {
		exByKind, err := splitClauses(req.Spec.Exclude)
		if err != nil {
			return nil, err
		}
		for k := range exByKind {
			if k != targeting.KindAttribute {
				return nil, fmt.Errorf("%w: facebook exclusions accept attributes only", targeting.ErrKindForbidden)
			}
		}
		ex := &fbFlexGroup{}
		for _, cl := range exByKind[targeting.KindAttribute] {
			for _, id := range clauseIDs(cl) {
				ex.Interests = append(ex.Interests, fbInterest{ID: id})
			}
		}
		ts.Exclusions = ex
	}
	goal := goalNames[req.Objective]
	if req.Objective == "" {
		goal = ""
	} else if goal == "" {
		return nil, fmt.Errorf("%w: %q", platform.ErrUnknownObjective, req.Objective)
	}
	return json.Marshal(fbRequest{TargetingSpec: ts, OptimizationGoal: goal})
}

// DecodeRequest implements Codec.
func (c facebookCodec) DecodeRequest(body []byte) (platform.EstimateRequest, error) {
	var req fbRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return platform.EstimateRequest{}, fmt.Errorf("adapi: malformed facebook request: %w", err)
	}
	var spec targeting.Spec
	for _, g := range req.TargetingSpec.FlexibleSpec {
		var cl targeting.Clause
		for _, it := range g.Interests {
			cl = append(cl, targeting.Ref{Kind: targeting.KindAttribute, ID: it.ID})
		}
		spec.Include = append(spec.Include, cl)
	}
	if gs := req.TargetingSpec.Genders; len(gs) > 0 {
		var cl targeting.Clause
		for _, g := range gs {
			cl = append(cl, targeting.Ref{Kind: targeting.KindGender, ID: g - 1})
		}
		spec.Include = append(spec.Include, cl)
	}
	if ars := req.TargetingSpec.AgeRanges; len(ars) > 0 {
		var cl targeting.Clause
		for _, ar := range ars {
			id, err := ageRangeFromBounds(ar.Min, ar.Max)
			if err != nil {
				return platform.EstimateRequest{}, err
			}
			cl = append(cl, targeting.Ref{Kind: targeting.KindAge, ID: id})
		}
		spec.Include = append(spec.Include, cl)
	}
	if geo := req.TargetingSpec.GeoLocations; geo != nil {
		var cl targeting.Clause
		for _, code := range geo.Countries {
			id, err := regionFromCode(code)
			if err != nil {
				return platform.EstimateRequest{}, err
			}
			cl = append(cl, targeting.Ref{Kind: targeting.KindLocation, ID: id})
		}
		spec.Include = append(spec.Include, cl)
	}
	for _, group := range req.TargetingSpec.CustomAudiences {
		var cl targeting.Clause
		for _, ca := range group {
			cl = append(cl, targeting.Ref{Kind: targeting.KindCustomAudience, ID: ca.ID})
		}
		spec.Include = append(spec.Include, cl)
	}
	if ex := req.TargetingSpec.Exclusions; ex != nil {
		var cl targeting.Clause
		for _, it := range ex.Interests {
			cl = append(cl, targeting.Ref{Kind: targeting.KindAttribute, ID: it.ID})
		}
		spec.Exclude = append(spec.Exclude, cl)
	}
	out := platform.EstimateRequest{Spec: spec}
	switch req.OptimizationGoal {
	case "":
	case "REACH":
		out.Objective = platform.ObjectiveReach
	case "LINK_CLICKS":
		out.Objective = platform.ObjectiveTraffic
	default:
		return platform.EstimateRequest{}, fmt.Errorf("%w: %q", platform.ErrUnknownObjective, req.OptimizationGoal)
	}
	return out, nil
}

// EncodeResponse implements Codec.
func (c facebookCodec) EncodeResponse(size int64) ([]byte, error) {
	var resp fbResponse
	resp.Data = append(resp.Data, struct {
		EstimateMAU int64 `json:"estimate_mau"`
	}{EstimateMAU: size})
	return json.Marshal(resp)
}

// DecodeResponse implements Codec.
func (c facebookCodec) DecodeResponse(body []byte) (int64, error) {
	var resp fbResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return 0, fmt.Errorf("adapi: malformed facebook response: %w", err)
	}
	if len(resp.Data) != 1 {
		return 0, fmt.Errorf("adapi: facebook response has %d data entries", len(resp.Data))
	}
	return resp.Data[0].EstimateMAU, nil
}
