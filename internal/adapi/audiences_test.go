package adapi

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/pii"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/targeting"
)

// remoteClient spins up a server and client for one interface.
func remoteClient(t *testing.T, name string) (*Client, *platform.Deployment) {
	t.Helper()
	ts, d := startServer(t, ServerOptions{})
	c, err := NewClient(context.Background(), ts.URL, name, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

// hashedUpload builds an upload of the first n users of an interface.
func hashedUpload(p *platform.Interface, n int) []pii.HashedRecord {
	dir := p.Directory()
	var recs []pii.Record
	for i := 0; i < n; i++ {
		recs = append(recs, dir.RecordOf(i))
	}
	return pii.HashAll(recs)
}

func TestPIIAudienceOverHTTP(t *testing.T) {
	c, d := remoteClient(t, catalog.PlatformLinkedIn)
	ctx := context.Background()
	info, err := c.CreatePIIAudience(ctx, "crm", hashedUpload(d.LinkedIn, 80))
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != platform.AudiencePII || info.Matched != 80 {
		t.Fatalf("info = %+v", info)
	}
	// The audience is measurable through the LinkedIn dialect.
	size, err := c.Measure(targeting.CustomAudience(info.ID))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := d.LinkedIn.Measure(platform.EstimateRequest{Spec: targeting.CustomAudience(info.ID)})
	if err != nil {
		t.Fatal(err)
	}
	if size != direct {
		t.Fatalf("remote %d != direct %d", size, direct)
	}
	// Listing round trip.
	list, err := c.ListAudiences(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "crm" {
		t.Fatalf("list = %+v", list)
	}
}

func TestPIIAudienceTooSmallOverHTTP(t *testing.T) {
	c, d := remoteClient(t, catalog.PlatformGoogle)
	_, err := c.CreatePIIAudience(context.Background(), "tiny", hashedUpload(d.Google, 2))
	if err == nil || !strings.Contains(err.Error(), "audience_too_small") {
		t.Fatalf("want audience_too_small error, got %v", err)
	}
}

func TestLookalikeOverHTTP(t *testing.T) {
	c, d := remoteClient(t, catalog.PlatformFacebook)
	ctx := context.Background()
	seed, err := c.CreatePIIAudience(ctx, "seed", hashedUpload(d.Facebook, 100))
	if err != nil {
		t.Fatal(err)
	}
	look, err := c.CreateLookalike(ctx, "expansion", seed.ID, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if look.Kind != platform.AudienceLookalike || look.SourceID != seed.ID {
		t.Fatalf("lookalike info = %+v", look)
	}
	if _, err := c.CreateLookalike(ctx, "bad", 999, 0.05); err == nil ||
		!strings.Contains(err.Error(), "unknown_audience") {
		t.Fatalf("want unknown_audience, got %v", err)
	}
}

func TestSpecialAdAudienceOverHTTP(t *testing.T) {
	c, d := remoteClient(t, catalog.PlatformFacebookRestricted)
	ctx := context.Background()
	seed, err := c.CreatePIIAudience(ctx, "seed", hashedUpload(d.FacebookRestricted, 100))
	if err != nil {
		t.Fatal(err)
	}
	look, err := c.CreateLookalike(ctx, "expansion", seed.ID, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if look.Kind != platform.AudienceSpecialAd {
		t.Fatalf("restricted interface produced %s, want special-ad", look.Kind)
	}
}

func TestPixelAudienceOverHTTP(t *testing.T) {
	c, _ := remoteClient(t, catalog.PlatformGoogle)
	ctx := context.Background()
	siteID, err := c.RegisterSite(ctx, "cars.example", 0.06, 1.2,
		[population.NumAgeRanges]float64{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.CreatePixelAudience(ctx, "cart-30d", siteID, "add-to-cart", 30)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != platform.AudiencePixel || info.Matched == 0 {
		t.Fatalf("info = %+v", info)
	}
	// Invalid event name.
	if _, err := c.CreatePixelAudience(ctx, "x", siteID, "teleport", 30); err == nil ||
		!strings.Contains(err.Error(), "bad_pixel_request") {
		t.Fatalf("want bad_pixel_request, got %v", err)
	}
	// Unknown site 404s.
	if _, err := c.CreatePixelAudience(ctx, "x", 99, "page-view", 30); err == nil ||
		!strings.Contains(err.Error(), "unknown_site") {
		t.Fatalf("want unknown_site, got %v", err)
	}
	// Duplicate site registration fails.
	if _, err := c.RegisterSite(ctx, "cars.example", 0.06, 1.2,
		[population.NumAgeRanges]float64{}, 0); err == nil {
		t.Fatal("duplicate site accepted")
	}
	// Bad base rate rejected.
	if _, err := c.RegisterSite(ctx, "other.example", 0, 0,
		[population.NumAgeRanges]float64{}, 0); err == nil {
		t.Fatal("zero base rate accepted")
	}
}

func TestCustomAudienceDialects(t *testing.T) {
	// Custom audience refs must survive every platform's wire dialect.
	for _, name := range []string{
		catalog.PlatformFacebook, catalog.PlatformGoogle, catalog.PlatformLinkedIn,
	} {
		c, err := CodecFor(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := targeting.And(targeting.CustomAudience(3), targeting.Attr(1))
		canonicalRoundTrip(t, c, platform.EstimateRequest{Spec: spec})
	}
}

func TestAudiencesMethodNotAllowed(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/facebook/audiences", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

func TestAudienceMalformedBody(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	resp, err := http.Post(ts.URL+"/facebook/audiences", "application/json", strings.NewReader("{oops"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
