package adapi

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/platform"
	"repro/internal/snapshot"
)

// errorEnvelope is the common error body shared by all endpoints.
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// optionsResponse is the body of GET /{platform}/options — the option lists
// an auditor would otherwise scrape out of the targeting UI.
type optionsResponse struct {
	Platform     string   `json:"platform"`
	Attributes   []string `json:"attributes"`
	Topics       []string `json:"topics,omitempty"`
	CrossFeature bool     `json:"cross_feature"`
}

// ServerOptions configures the API server.
type ServerOptions struct {
	// RateLimit is the admitted queries per second per interface
	// (0 disables throttling).
	RateLimit float64
	// Burst is the rate-limit burst capacity.
	Burst float64
	// MaxBodyBytes bounds request bodies; 0 selects 1 MiB.
	MaxBodyBytes int64
	// Logf logs one line per request; nil disables logging.
	Logf func(format string, args ...any)
	// Metrics receives per-interface request metrics and backs the
	// /metrics endpoint; nil selects the process-wide obs.Default()
	// registry.
	Metrics *obs.Registry
	// Pprof mounts net/http/pprof profiling handlers under /debug/pprof/.
	Pprof bool
	// Store, when set, backs every interface's auditor door (/measure) with
	// a durable server-side cache: answers already persisted are served
	// without querying the platform and survive restarts. The advertiser
	// door is never cached. See internal/store for the on-disk format.
	Store MeasurementStore
	// Shard, when set, mounts the cluster door (POST /cluster/count-batch):
	// the raw-count endpoint a coordinator scatters batches to. Set by
	// platformd in shard mode.
	Shard ShardBackend
	// Tracer continues distributed traces arriving in the X-Adaudit-Trace
	// header and backs the /debug/traces and /debug/provenance endpoints;
	// nil selects the process-wide trace.Default() (which may itself be nil
	// — tracing disabled — in which case headers are ignored at the cost of
	// one header lookup per request).
	Tracer *trace.Tracer
	// Jobs, when set, mounts the async audit-job service (internal/jobs)
	// under /jobs: submission, polling, cancellation, and event streams.
	// Set by platformd in -jobs mode.
	Jobs http.Handler
	// JobStats, when set alongside Jobs, feeds the /healthz jobs block
	// (queue depth and in-flight jobs).
	JobStats func() (queued, running int)
	// Snapshot, when set, identifies the on-disk snapshot the served
	// deployment was reconstructed from (internal/snapshot.LoadDeployment).
	// /healthz and /debug/provenance echo its content hash and build time,
	// so an operator — or a coordinator's preflight — can pin exactly which
	// catalog bytes a node serves. Set by platformd in -snapshot mode.
	Snapshot *snapshot.Info
}

// tracer resolves the serving tracer at request time, so a default tracer
// installed after server construction is still picked up.
func (s *ServerOptions) tracer() *trace.Tracer {
	if s.Tracer != nil {
		return s.Tracer
	}
	return trace.Default()
}

// Server exposes a Deployment's interfaces over HTTP, each in its own JSON
// dialect.
type Server struct {
	mux  *http.ServeMux
	opts ServerOptions
	// catalogHash fingerprints the served deployment's catalogs
	// (platform.CatalogHash), computed once at construction and echoed from
	// /healthz so any client — including a remote coordinator's catalog-skew
	// preflight — can verify this node serves the expected options.
	catalogHash string
}

// ifaceHandler serves one platform interface.
type ifaceHandler struct {
	p       *platform.Interface
	codec   Codec
	limiter *Limiter
	opts    *ServerOptions
	reg     *obs.Registry
	m429    *obs.Counter // adapi_server_429_total: throttled requests

	// Server-side measurement cache (nil without ServerOptions.Store).
	store        MeasurementStore
	mStoreHits   *obs.Counter // adapi_server_store_hits_total
	mStoreErrors *obs.Counter // adapi_server_store_errors_total
}

// doorMetrics is one endpoint's pre-resolved instruments, bound at route
// registration so the serving path performs no registry lookups.
type doorMetrics struct {
	total   *obs.Counter   // adapi_server_requests_total{interface,door}
	latency *obs.Histogram // adapi_server_request_seconds{interface,door}
}

// doorMetrics resolves the instruments for one interface endpoint.
func (h *ifaceHandler) doorMetrics(door string) doorMetrics {
	iface := obs.L("interface", h.p.Name())
	d := obs.L("door", door)
	return doorMetrics{
		total:   h.reg.Counter("adapi_server_requests_total", iface, d),
		latency: h.reg.Histogram("adapi_server_request_seconds", iface, d),
	}
}

// NewServer builds the HTTP API for all interfaces of a deployment.
//
// Routes (per interface name, e.g. "facebook-restricted"):
//
//	GET  /{name}/options        → option lists
//	POST /{name}/estimate       → advertiser-door size estimate
//	POST /{name}/measure        → auditor-door size estimate
//	POST /{name}/measure-batch  → auditor-door batch (one exchange, many specs)
//	GET  /healthz               → liveness
func NewServer(d *platform.Deployment, opts ServerOptions) (*Server, error) {
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.Default()
	}
	s := &Server{mux: http.NewServeMux(), opts: opts, catalogHash: platform.CatalogHash(d)}
	for _, p := range d.Interfaces() {
		codec, err := CodecFor(p.Name())
		if err != nil {
			return nil, err
		}
		h := &ifaceHandler{
			p:     p,
			codec: codec,
			opts:  &s.opts,
			reg:   opts.Metrics,
			m429:  opts.Metrics.Counter("adapi_server_429_total", obs.L("interface", p.Name())),
		}
		if opts.RateLimit > 0 {
			h.limiter = NewLimiter(opts.RateLimit, opts.Burst)
		}
		if opts.Store != nil {
			iface := obs.L("interface", p.Name())
			h.store = opts.Store
			h.mStoreHits = opts.Metrics.Counter("adapi_server_store_hits_total", iface)
			h.mStoreErrors = opts.Metrics.Counter("adapi_server_store_errors_total", iface)
		}
		prefix := "/" + p.Name()
		s.mux.Handle(prefix+"/options", h.wrap(h.handleOptions, http.MethodGet, "options"))
		s.mux.Handle(prefix+"/estimate", h.wrap(h.handleEstimate, http.MethodPost, "estimate"))
		s.mux.Handle(prefix+"/measure", h.wrap(h.handleMeasure, http.MethodPost, "measure"))
		s.mux.Handle(prefix+"/measure-batch", h.wrap(h.handleMeasureBatch, http.MethodPost, "measure-batch"))
		s.registerAudienceRoutes(h)
	}
	if opts.Shard != nil {
		s.registerClusterRoutes(opts.Shard)
	}
	if opts.Jobs != nil {
		s.mux.Handle("/jobs", opts.Jobs)
		s.mux.Handle("/jobs/", opts.Jobs)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		s.opts.tracer().Handler().ServeHTTP(w, r)
	})
	s.mux.HandleFunc("/debug/provenance", func(w http.ResponseWriter, r *http.Request) {
		// Every provenance listing carries the serving catalog's identity, so
		// a recorded measurement can be tied back to the exact snapshot (or
		// built deployment) that produced it even after the node restarts.
		w.Header().Set("X-Adaudit-Catalog-Hash", s.catalogHash)
		if info := s.opts.Snapshot; info != nil {
			w.Header().Set("X-Adaudit-Snapshot-Hash", info.ContentHash)
			w.Header().Set("X-Adaudit-Snapshot-Built-At", info.CreatedAt.UTC().Format(time.RFC3339))
		}
		s.opts.tracer().Provenance().Handler().ServeHTTP(w, r)
	})
	s.mux.Handle("/metrics", opts.Metrics.Handler())
	if opts.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// shardHealth is the optional readiness surface of a ShardBackend:
// *cluster.Shard implements it, and the health endpoint echoes it so an
// operator (or a coordinator's preflight) can verify every node of a
// cluster agrees on the layout before a single count is scattered.
type shardHealth interface {
	Held() []uint32
	RingHash() uint64
}

// healthResponse is the body of GET /healthz. The shard fields appear only
// in shard mode: RingHash fingerprints the layout every node must share
// (ring nodes, vnodes, replicas, universe, partition size), so two shards
// disagreeing on it is a misconfigured cluster even when both report ok.
type healthResponse struct {
	Status     string `json:"status"`
	Shard      string `json:"shard,omitempty"`
	RingHash   string `json:"ring_hash,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
	Tracing    bool   `json:"tracing"`
	// CatalogHash fingerprints the catalogs this node serves; a remote
	// coordinator's preflight (cluster.CatalogHasher) compares it against
	// its own before scattering a single count.
	CatalogHash string `json:"catalog_hash"`
	// Snapshot appears when the deployment was loaded from a snapshot
	// rather than built: the snapshot's content hash and build time.
	Snapshot *snapshotHealth `json:"snapshot,omitempty"`
	// Jobs appears when the async audit-job service is mounted: whether it
	// is enabled plus its live queue depth and in-flight job count.
	Jobs *jobsHealth `json:"jobs,omitempty"`
}

// snapshotHealth is the /healthz block identifying the loaded snapshot.
type snapshotHealth struct {
	ContentHash string `json:"content_hash"`
	BuiltAt     string `json:"built_at"`
}

// jobsHealth is the /healthz block describing the job service.
type jobsHealth struct {
	Enabled bool `json:"enabled"`
	Queued  int  `json:"queued"`
	Running int  `json:"running"`
}

// handleHealthz serves readiness: liveness for a plain server, plus the
// shard's identity, layout fingerprint, and held-partition count in shard
// mode.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok", Tracing: s.opts.tracer().Enabled(), CatalogHash: s.catalogHash}
	if info := s.opts.Snapshot; info != nil {
		resp.Snapshot = &snapshotHealth{
			ContentHash: info.ContentHash,
			BuiltAt:     info.CreatedAt.UTC().Format(time.RFC3339),
		}
	}
	if s.opts.Jobs != nil {
		jh := &jobsHealth{Enabled: true}
		if s.opts.JobStats != nil {
			jh.Queued, jh.Running = s.opts.JobStats()
		}
		resp.Jobs = jh
	}
	if s.opts.Shard != nil {
		resp.Shard = s.opts.Shard.ID()
		if sh, ok := s.opts.Shard.(shardHealth); ok {
			resp.RingHash = fmt.Sprintf("%016x", sh.RingHash())
			resp.Partitions = len(sh.Held())
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("adapi: writing healthz response: %v", err)
	}
}

// logf logs if configured.
func (s *ServerOptions) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// writeError emits the shared error envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	var env errorEnvelope
	env.Error.Code = code
	env.Error.Message = message
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(env); err != nil {
		log.Printf("adapi: writing error response: %v", err)
	}
}

// wrap applies method checking, rate limiting, tracing, metrics, and
// logging to a handler. door labels the endpoint's request counter and
// latency histogram. A valid X-Adaudit-Trace header continues the caller's
// distributed trace: the request runs under a remote-continued span carried
// in its context, and the door's latency observation links to the trace via
// an exemplar.
func (h *ifaceHandler) wrap(fn func(http.ResponseWriter, *http.Request), method, door string) http.Handler {
	m := h.doorMetrics(door)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed", r.Method))
			return
		}
		m.total.Inc()
		if !h.limiter.Allow() {
			h.m429.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, codeRateLimited, "slow down")
			return
		}
		h.opts.logf("adapi: %s %s", r.Method, r.URL.Path)
		r, span := continueTrace(h.opts, r, "adapi.server."+door)
		if span != nil {
			span.Annotate("interface", h.p.Name())
			defer span.End()
		}
		start := time.Now()
		fn(w, r)
		m.latency.ObserveWithExemplar(time.Since(start), exemplarID(span))
	})
}

// continueTrace resumes the trace a request's X-Adaudit-Trace header names,
// returning the request rebound to a context carrying the remote-continued
// span. Requests without a valid header (or with tracing disabled) pass
// through untouched — the server never starts traces of its own, so an
// untraced client costs the server one header lookup.
func continueTrace(opts *ServerOptions, r *http.Request, name string) (*http.Request, *trace.Span) {
	hv := r.Header.Get(trace.HeaderName)
	if hv == "" {
		return r, nil
	}
	tr := opts.tracer()
	if !tr.Enabled() {
		return r, nil
	}
	sc, err := trace.ParseHeader(hv)
	if err != nil {
		return r, nil
	}
	span := tr.StartRemote(sc, name)
	if span == nil {
		return r, nil
	}
	return r.WithContext(trace.NewContext(r.Context(), span)), span
}

// exemplarID is the trace ID a latency observation should link to: only
// sampled spans, since an exemplar pointing at an unrecorded trace is a
// dead link.
func exemplarID(span *trace.Span) string {
	if span.Sampled() {
		return span.TraceID()
	}
	return ""
}

// handleOptions serves the option lists.
func (h *ifaceHandler) handleOptions(w http.ResponseWriter, r *http.Request) {
	cat := h.p.Catalog()
	resp := optionsResponse{
		Platform:     h.p.Name(),
		Attributes:   make([]string, len(cat.Attributes)),
		CrossFeature: !h.p.Rules().AndWithinFeature,
	}
	for i := range cat.Attributes {
		resp.Attributes[i] = cat.Attributes[i].Name
	}
	if len(cat.Topics) > 0 {
		resp.Topics = make([]string, len(cat.Topics))
		for i := range cat.Topics {
			resp.Topics[i] = cat.Topics[i].Name
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("adapi: writing options response: %v", err)
	}
}

// handleEstimate serves the advertiser door, through the platform's traced
// door when the request continues a distributed trace.
func (h *ifaceHandler) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if ctx := r.Context(); trace.FromContext(ctx) != nil {
		h.serveSize(w, r, func(req platform.EstimateRequest) (int64, error) {
			return h.p.EstimateCtx(ctx, req)
		})
		return
	}
	h.serveSize(w, r, h.p.Estimate)
}

// handleMeasure serves the auditor door, from the durable cache when one is
// configured, and through the platform's traced door when the request
// continues a distributed trace.
func (h *ifaceHandler) handleMeasure(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	traced := trace.FromContext(ctx) != nil
	switch {
	case h.store != nil && traced:
		h.serveSize(w, r, func(req platform.EstimateRequest) (int64, error) {
			return h.storedMeasureCtx(ctx, req)
		})
	case h.store != nil:
		h.serveSize(w, r, h.storedMeasure)
	case traced:
		h.serveSize(w, r, func(req platform.EstimateRequest) (int64, error) {
			return h.p.MeasureCtx(ctx, req)
		})
	default:
		h.serveSize(w, r, h.p.Measure)
	}
}

// serveSize decodes the dialect request, queries the platform, and encodes
// the dialect response.
func (h *ifaceHandler) serveSize(w http.ResponseWriter, r *http.Request, query func(platform.EstimateRequest) (int64, error)) {
	body, err := io.ReadAll(io.LimitReader(r.Body, h.opts.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeMalformedRequest, "reading body: "+err.Error())
		return
	}
	if int64(len(body)) > h.opts.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, codeMalformedRequest, "body too large")
		return
	}
	req, err := h.codec.DecodeRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorCodeOrMalformed(err), err.Error())
		return
	}
	size, err := query(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorCode(err), err.Error())
		return
	}
	resp, err := h.codec.EncodeResponse(size)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(resp); err != nil {
		log.Printf("adapi: writing response: %v", err)
	}
}

// errorCodeOrMalformed classifies decode errors, defaulting to malformed
// rather than internal.
func errorCodeOrMalformed(err error) string {
	if code := errorCode(err); code != codeInternal {
		return code
	}
	if strings.Contains(err.Error(), "malformed") {
		return codeMalformedRequest
	}
	return codeMalformedRequest
}
