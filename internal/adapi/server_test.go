package adapi

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/targeting"
)

var (
	srvOnce   sync.Once
	srvDeploy *platform.Deployment
	srvErr    error
)

func serverDeploy(t *testing.T) *platform.Deployment {
	t.Helper()
	srvOnce.Do(func() {
		srvDeploy, srvErr = platform.NewDeployment(platform.DeployOptions{Seed: 21, UniverseSize: 15000})
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvDeploy
}

func startServer(t *testing.T, opts ServerOptions) (*httptest.Server, *platform.Deployment) {
	t.Helper()
	d := serverDeploy(t)
	srv, err := NewServer(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, d
}

func TestHealthz(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestOptionsEndpoint(t *testing.T) {
	ts, d := startServer(t, ServerOptions{})
	for _, p := range d.Interfaces() {
		resp, err := http.Get(ts.URL + "/" + p.Name() + "/options")
		if err != nil {
			t.Fatal(err)
		}
		var opts optionsResponse
		if err := json.NewDecoder(resp.Body).Decode(&opts); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if opts.Platform != p.Name() {
			t.Errorf("options platform %q, want %q", opts.Platform, p.Name())
		}
		if len(opts.Attributes) != len(p.Catalog().Attributes) {
			t.Errorf("%s: options returned %d attributes, want %d",
				p.Name(), len(opts.Attributes), len(p.Catalog().Attributes))
		}
		if (p.Name() == catalog.PlatformGoogle) != (len(opts.Topics) > 0) {
			t.Errorf("%s: topics presence wrong", p.Name())
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	resp, err := http.Get(ts.URL + "/facebook/estimate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

func TestEstimateOverHTTPMatchesDirect(t *testing.T) {
	ts, d := startServer(t, ServerOptions{})
	ctx := context.Background()
	for _, p := range d.Interfaces() {
		c, err := NewClient(ctx, ts.URL, p.Name(), ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 10; id++ {
			spec := targeting.Attr(id)
			remote, err := c.Measure(spec)
			if err != nil {
				t.Fatalf("%s: remote measure: %v", p.Name(), err)
			}
			direct, err := p.Measure(platform.EstimateRequest{Spec: spec})
			if err != nil {
				t.Fatal(err)
			}
			if remote != direct {
				t.Fatalf("%s attr %d: remote %d != direct %d", p.Name(), id, remote, direct)
			}
		}
	}
}

func TestAdvertiserDoorValidatesOverHTTP(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, catalog.PlatformFacebookRestricted, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The restricted advertiser door must reject demographics...
	_, err = c.Estimate(ctx, platform.EstimateRequest{
		Spec: targeting.WithGender(targeting.Attr(0), int(population.Male)),
	})
	if !errors.Is(err, targeting.ErrDemoForbidden) {
		t.Fatalf("want ErrDemoForbidden over the wire, got %v", err)
	}
	// ...while the measure door accepts them.
	if _, err := c.Measure(targeting.WithGender(targeting.Attr(0), int(population.Male))); err != nil {
		t.Fatalf("measure door rejected demographics: %v", err)
	}
}

func TestGoogleRuleErrorsSurviveWire(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, catalog.PlatformGoogle, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Measure(targeting.And(targeting.Attr(0), targeting.Attr(1)))
	if !errors.Is(err, targeting.ErrAndWithinFeature) {
		t.Fatalf("want ErrAndWithinFeature over the wire, got %v", err)
	}
}

func TestMalformedBody(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	resp, err := http.Post(ts.URL+"/facebook/estimate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != codeMalformedRequest {
		t.Fatalf("code %q, want %q", env.Error.Code, codeMalformedRequest)
	}
}

func TestBodyTooLarge(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{MaxBodyBytes: 64})
	big := `{"targeting_spec":{"flexible_spec":[{"interests":[` +
		strings.Repeat(`{"id":1},`, 100) + `{"id":2}]}]}}`
	resp, err := http.Post(ts.URL+"/facebook/estimate", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestServerRateLimitAndClientRetry(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{RateLimit: 200, Burst: 2})
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, catalog.PlatformLinkedIn, ClientOptions{
		MaxRetries: 6,
		RetryBase:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Burst of queries: the server throttles but the client's retries must
	// land every one of them.
	for i := 0; i < 25; i++ {
		if _, err := c.Measure(targeting.Attr(i % 20)); err != nil {
			t.Fatalf("query %d failed despite retries: %v", i, err)
		}
	}
}

func TestClientRateLimiterPacesRequests(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, catalog.PlatformLinkedIn, ClientOptions{
		RateLimit: 100, // 10ms per request after burst
		Burst:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.Measure(targeting.Attr(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 4 post-burst requests at 100 qps ≥ ~40ms.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("5 rate-limited requests finished in %v; limiter not pacing", elapsed)
	}
}

func TestClientContextCancellation(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, catalog.PlatformFacebook, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.MeasureContext(cancelled, targeting.Attr(0)); err == nil {
		t.Fatal("cancelled context should fail")
	}
}

func TestClientUnknownInterface(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{})
	if _, err := NewClient(context.Background(), ts.URL, "myspace", ClientOptions{}); err == nil {
		t.Fatal("unknown interface accepted")
	}
}

func TestClientRetriesExhaust(t *testing.T) {
	// A server that always 500s must exhaust retries and fail.
	var calls int
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/options") {
			_ = json.NewEncoder(w).Encode(optionsResponse{Platform: catalog.PlatformLinkedIn, Attributes: []string{"a"}})
			return
		}
		calls++
		w.WriteHeader(500)
	}))
	defer failing.Close()
	c, err := NewClient(context.Background(), failing.URL, catalog.PlatformLinkedIn, ClientOptions{
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Measure(targeting.Attr(0)); err == nil {
		t.Fatal("expected failure after retries")
	}
	if calls != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", calls)
	}
}

func TestFullAuditOverHTTP(t *testing.T) {
	// End-to-end: the core methodology driving a remote platform through
	// the wire dialects, exactly as the paper's Python scraper drove the
	// live APIs.
	if testing.Short() {
		t.Skip("short mode")
	}
	ts, d := startServer(t, ServerOptions{})
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, catalog.PlatformFacebookRestricted, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	remote := core.NewAuditor(c)
	local := core.NewAuditor(core.NewPlatformProvider(d.FacebookRestricted))

	maleClass := core.GenderClass(population.Male)
	rInd, err := remote.Individuals(maleClass)
	if err != nil {
		t.Fatal(err)
	}
	lInd, err := local.Individuals(maleClass)
	if err != nil {
		t.Fatal(err)
	}
	if len(rInd) != len(lInd) {
		t.Fatalf("remote found %d individuals, local %d", len(rInd), len(lInd))
	}
	for i := range rInd {
		if rInd[i].RepRatio != lInd[i].RepRatio {
			t.Fatalf("individual %d: remote ratio %v != local %v", i, rInd[i].RepRatio, lInd[i].RepRatio)
		}
	}
	rTop, err := remote.GreedyCompositions(rInd, maleClass, core.ComposeConfig{K: 50, Direction: core.Top, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lTop, err := local.GreedyCompositions(lInd, maleClass, core.ComposeConfig{K: 50, Direction: core.Top, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rTop) != len(lTop) {
		t.Fatalf("remote %d top compositions, local %d", len(rTop), len(lTop))
	}
	for i := range rTop {
		if rTop[i].RepRatio != lTop[i].RepRatio || rTop[i].Recall != lTop[i].Recall {
			t.Fatalf("composition %d differs over the wire", i)
		}
	}
}

func TestLimiterAllow(t *testing.T) {
	l := NewLimiter(10, 2)
	now := time.Unix(0, 0)
	l.setClock(func() time.Time { return now })
	if !l.Allow() || !l.Allow() {
		t.Fatal("burst of 2 should admit 2")
	}
	if l.Allow() {
		t.Fatal("third immediate request should be denied")
	}
	now = now.Add(100 * time.Millisecond) // one token refilled
	if !l.Allow() {
		t.Fatal("token should have refilled")
	}
	if l.Allow() {
		t.Fatal("no second token yet")
	}
}

func TestLimiterNil(t *testing.T) {
	var l *Limiter
	if !l.Allow() {
		t.Fatal("nil limiter must admit")
	}
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestLimiterWaitCancel(t *testing.T) {
	l := NewLimiter(0.001, 1)
	l.Allow() // drain
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.Wait(ctx); err == nil {
		t.Fatal("wait should fail on cancelled context")
	}
}

func TestLimiterPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate should panic")
		}
	}()
	NewLimiter(0, 1)
}
