package adapi

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/store"
	"repro/internal/targeting"
)

func TestMeasureStoreKeyQualifiers(t *testing.T) {
	spec := targeting.And(targeting.Attr(1), targeting.Attr(2))
	base := measureStoreKey(platform.EstimateRequest{Spec: spec})
	// The default frequency cap spells two ways.
	if got := measureStoreKey(platform.EstimateRequest{Spec: spec, FrequencyCapPerMonth: 1}); got != base {
		t.Errorf("cap 0 and cap 1 keys differ: %q vs %q", got, base)
	}
	// Non-spec parameters that change the answer must change the key.
	if got := measureStoreKey(platform.EstimateRequest{Spec: spec, Objective: platform.ObjectiveTraffic}); got == base {
		t.Error("objective did not qualify the key")
	}
	if got := measureStoreKey(platform.EstimateRequest{Spec: spec, FrequencyCapPerMonth: 5}); got == base {
		t.Error("frequency cap did not qualify the key")
	}
	// Reordered spellings of the spec share the key.
	swapped := targeting.And(targeting.Attr(2), targeting.Attr(1))
	if got := measureStoreKey(platform.EstimateRequest{Spec: swapped}); got != base {
		t.Errorf("reordered spec changed the key: %q vs %q", got, base)
	}
}

// TestServerStoreServesAcrossRestart: measurements served by a store-backed
// server survive into a second server over the same directory, which
// answers them without querying the platform at all.
func TestServerStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	const iface = "facebook"
	specs := []targeting.Spec{targeting.Attr(0), targeting.Attr(1), targeting.And(targeting.Attr(0), targeting.Attr(1))}

	st1, err := store.Open(dir, store.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts1, d := startServer(t, ServerOptions{Store: st1, Metrics: obs.NewRegistry()})
	var p *platform.Interface
	for _, cand := range d.Interfaces() {
		if cand.Name() == iface {
			p = cand
		}
	}
	c1, err := NewClient(ctx, ts1.URL, iface, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, len(specs))
	for i, spec := range specs {
		if want[i], err = c1.Measure(spec); err != nil {
			t.Fatalf("first server measure: %v", err)
		}
	}
	if n := st1.Len(); n != len(specs) {
		t.Fatalf("store holds %d records after first run, want %d", n, len(specs))
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	reg := obs.NewRegistry()
	ts2, _ := startServer(t, ServerOptions{Store: st2, Metrics: reg})
	c2, err := NewClient(ctx, ts2.URL, iface, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := p.QueryCount()
	for i, spec := range specs {
		got, err := c2.Measure(spec)
		if err != nil {
			t.Fatalf("restarted server measure: %v", err)
		}
		if got != want[i] {
			t.Errorf("spec %d: restarted server answered %d, want %d", i, got, want[i])
		}
	}
	if delta := p.QueryCount() - before; delta != 0 {
		t.Errorf("restarted server placed %d queries on the platform, want 0", delta)
	}
	if hits := reg.CounterValue("adapi_server_store_hits_total", obs.L("interface", iface)); hits != int64(len(specs)) {
		t.Errorf("adapi_server_store_hits_total = %d, want %d", hits, len(specs))
	}
}

// TestAdvertiserDoorNotCached: only the auditor door reads and writes the
// store; advertiser estimates always reach the platform.
func TestAdvertiserDoorNotCached(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts, _ := startServer(t, ServerOptions{Store: st, Metrics: obs.NewRegistry()})
	c, err := NewClient(context.Background(), ts.URL, "facebook", ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Estimate(context.Background(), platform.EstimateRequest{Spec: targeting.Attr(3)}); err != nil {
			t.Fatalf("estimate %d: %v", i, err)
		}
	}
	if n := st.Len(); n != 0 {
		t.Errorf("advertiser door wrote %d store records, want 0", n)
	}
}
