package adapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/platform"
	"repro/internal/store"
	"repro/internal/targeting"
)

// TestStoredMeasureTraceProvenance pins the store-tier provenance story on
// the traced auditor door: the first traced measure misses the store and
// is answered (and recorded) by the platform, the second is served from
// disk — "store"-sourced provenance, platform counters flat, and the
// server span annotated store=hit.
func TestStoredMeasureTraceProvenance(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srvTracer := newTestTracer(53)
	ts, _ := startServer(t, ServerOptions{Store: st, Metrics: obs.NewRegistry(), Tracer: srvTracer})

	cliTracer := newTestTracer(59)
	c, err := NewClient(context.Background(), ts.URL, "facebook", ClientOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	measure := func(name string) (int64, string) {
		root := cliTracer.StartRoot(name)
		defer root.End()
		v, err := c.MeasureCtx(trace.NewContext(context.Background(), root), targeting.Attr(4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v, root.TraceID()
	}
	v1, tid1 := measure("audit.miss")
	v2, tid2 := measure("audit.hit")
	if v1 != v2 {
		t.Fatalf("store-served measure %d differs from platform answer %d", v2, v1)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records, want 1", st.Len())
	}

	sources := make(map[string]string) // source → trace ID
	for _, r := range srvTracer.Provenance().Records() {
		if r.Platform != "facebook" || r.Value != v1 {
			t.Fatalf("malformed stored-door provenance %+v", r)
		}
		sources[r.Source] = r.TraceID
	}
	if sources["platform"] != tid1 || sources["store"] != tid2 || len(sources) != 2 {
		t.Fatalf("provenance sources %v, want platform→%s and store→%s", sources, tid1, tid2)
	}

	// The hit's server span carries the store=hit annotation.
	id, ok := trace.ParseTraceID(tid2)
	if !ok {
		t.Fatalf("trace ID %q does not parse", tid2)
	}
	sd, ok := srvTracer.Dump(id)
	if !ok {
		t.Fatal("server did not continue the hit's trace")
	}
	annotated := false
	for _, s := range sd.Spans {
		for _, a := range s.Annotations {
			if a.Key == "store" && a.Value == "hit" {
				annotated = true
			}
		}
	}
	if !annotated {
		t.Fatal("store hit left no store=hit annotation on the server span")
	}
}

// newTestTracer builds a deterministic always-sample tracer with isolated
// metrics and provenance.
func newTestTracer(seed uint64) *trace.Tracer {
	return trace.New(trace.Options{
		SampleRate: 1,
		Seed:       seed,
		Metrics:    obs.NewRegistry(),
		Provenance: trace.NewProvenanceLog(0, nil),
	})
}

// spanNames flattens a dump for containment checks.
func spanNames(d trace.TraceDump) map[string]int {
	out := make(map[string]int, len(d.Spans))
	for _, s := range d.Spans {
		out[s.Name]++
	}
	return out
}

// TestTracePropagationClientServer drives one traced measurement through
// the real client→server HTTP path and checks the trace spans both
// processes' tracers: the client records its exchange span, the server
// continues the same trace ID from the X-Adaudit-Trace header, and both
// sides leave provenance and a metrics exemplar pointing at the trace.
func TestTracePropagationClientServer(t *testing.T) {
	srvTracer := newTestTracer(31)
	ts, _ := startServer(t, ServerOptions{Metrics: obs.NewRegistry(), Tracer: srvTracer})

	cliTracer := newTestTracer(37)
	reg := obs.NewRegistry()
	c, err := NewClient(context.Background(), ts.URL, "facebook", ClientOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	root := cliTracer.StartRoot("audit.test")
	ctx := trace.NewContext(context.Background(), root)
	v, err := c.MeasureCtx(ctx, targeting.Attr(0))
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("measured size %d, want > 0", v)
	}

	id, ok := trace.ParseTraceID(root.TraceID())
	if !ok {
		t.Fatalf("root trace ID %q does not parse", root.TraceID())
	}

	// Client side: the exchange span is buffered under the root's trace.
	cd, ok := cliTracer.Dump(id)
	if !ok {
		t.Fatal("client tracer did not buffer the trace")
	}
	if n := spanNames(cd)["adapi.client"]; n != 1 {
		t.Fatalf("client exchange spans: %d, want 1", n)
	}

	// Server side: same trace ID, continued from the header — the server
	// never saw the root span, only its wire context.
	sd, ok := srvTracer.Dump(id)
	if !ok {
		t.Fatal("server tracer did not continue the client's trace")
	}
	names := spanNames(sd)
	if names["adapi.server.measure"] != 1 {
		t.Fatalf("server spans %v, want one adapi.server.measure", names)
	}

	// Provenance: the client records the remote exchange, the server records
	// the platform measurement — both linked to the same trace.
	var remote, plat int
	for _, r := range cliTracer.Provenance().Records() {
		if r.Source == "remote" && r.TraceID == root.TraceID() {
			remote++
			if r.Endpoint != ts.URL {
				t.Fatalf("remote provenance endpoint %q, want %q", r.Endpoint, ts.URL)
			}
			if r.Value != v {
				t.Fatalf("remote provenance value %d, want %d", r.Value, v)
			}
		}
	}
	for _, r := range srvTracer.Provenance().Records() {
		if r.Source == "platform" && r.TraceID == root.TraceID() {
			plat++
		}
	}
	if remote != 1 || plat != 1 {
		t.Fatalf("provenance records remote=%d platform=%d, want 1 each", remote, plat)
	}

	// Exemplar: the client's request-latency series links back to the trace.
	found := false
	for _, s := range reg.Gather() {
		if s.Name == "adapi_client_request_seconds" && s.Label("platform") == "facebook" {
			found = true
			if s.Hist.Exemplar == nil || s.Hist.Exemplar.TraceID != root.TraceID() {
				t.Fatalf("request-latency exemplar %+v, want trace %s", s.Hist.Exemplar, root.TraceID())
			}
		}
	}
	if !found {
		t.Fatal("adapi_client_request_seconds series not found")
	}
}

// TestTraceBatchPropagation is the batch-door variant: one traced
// MeasureManyCtx must reach the server as a single continued trace through
// /measure-batch, with per-slot remote provenance client-side.
func TestTraceBatchPropagation(t *testing.T) {
	srvTracer := newTestTracer(41)
	ts, _ := startServer(t, ServerOptions{Metrics: obs.NewRegistry(), Tracer: srvTracer})

	cliTracer := newTestTracer(43)
	c, err := NewClient(context.Background(), ts.URL, "linkedin", ClientOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	specs := []targeting.Spec{
		targeting.Attr(0),
		targeting.Attr(1),
		targeting.And(targeting.Attr(0), targeting.Attr(2)),
	}
	root := cliTracer.StartRoot("audit.batch")
	ctx := trace.NewContext(context.Background(), root)
	res := c.MeasureManyCtx(ctx, specs)
	root.End()
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
	}

	id, _ := trace.ParseTraceID(root.TraceID())
	cd, ok := cliTracer.Dump(id)
	if !ok {
		t.Fatal("client tracer did not buffer the batch trace")
	}
	if n := spanNames(cd)["adapi.client_batch"]; n != 1 {
		t.Fatalf("client batch spans: %d, want 1", n)
	}
	sd, ok := srvTracer.Dump(id)
	if !ok {
		t.Fatal("server tracer did not continue the batch trace")
	}
	if n := spanNames(sd)["adapi.server.measure-batch"]; n != 1 {
		t.Fatalf("server batch spans: %d, want 1", n)
	}
	remote := 0
	for _, r := range cliTracer.Provenance().Records() {
		if r.Source == "remote" && r.TraceID == root.TraceID() {
			remote++
		}
	}
	if remote != len(specs) {
		t.Fatalf("remote provenance records: %d, want one per slot (%d)", remote, len(specs))
	}
}

// TestServerTraceContinuationPolicy pins the server-side cost and sampling
// policy: no header → no span; an unsampled header (flags 00) → no span
// (the client decided once for the whole tree); a sampled header → exactly
// one continued trace.
func TestServerTraceContinuationPolicy(t *testing.T) {
	srvTracer := newTestTracer(47)
	ts, _ := startServer(t, ServerOptions{Metrics: obs.NewRegistry(), Tracer: srvTracer})

	get := func(header string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/facebook/options", nil)
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set(trace.HeaderName, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("options status %d", resp.StatusCode)
		}
	}

	get("") // untraced
	if n := srvTracer.Len(); n != 0 {
		t.Fatalf("untraced request buffered %d traces", n)
	}
	get("00-00000000000000000000000000000abc-00000000000000ef-00") // unsampled
	if n := srvTracer.Len(); n != 0 {
		t.Fatalf("unsampled request buffered %d traces", n)
	}
	get("00-00000000000000000000000000000abc-00000000000000ef-01") // sampled
	if n := srvTracer.Len(); n != 1 {
		t.Fatalf("sampled request buffered %d traces, want 1", n)
	}
	id, _ := trace.ParseTraceID("00000000000000000000000000000abc")
	d, ok := srvTracer.Dump(id)
	if !ok {
		t.Fatal("continued trace not retrievable by the remote trace ID")
	}
	if n := spanNames(d)["adapi.server.options"]; n != 1 {
		t.Fatalf("continued spans %v, want one adapi.server.options", spanNames(d))
	}
}

// TestDebugTraceEndpoints checks the /debug/traces and /debug/provenance
// routes serve the tracer handed to the server — including the one-trace
// dump by ID — and degrade to empty listings with tracing disabled.
func TestDebugTraceEndpoints(t *testing.T) {
	srvTracer := newTestTracer(53)
	ts, _ := startServer(t, ServerOptions{Metrics: obs.NewRegistry(), Tracer: srvTracer})

	span := srvTracer.StartRoot("local.work")
	span.Annotate("k", "v")
	span.End()

	var listing struct {
		Traces []trace.TraceSummary `json:"traces"`
	}
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Traces) != 1 || listing.Traces[0].Root != "local.work" {
		t.Fatalf("trace listing %+v, want one local.work trace", listing.Traces)
	}

	var dump trace.TraceDump
	resp, err = http.Get(ts.URL + "/debug/traces?trace=" + listing.Traces[0].TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dump.Spans) != 1 || dump.Spans[0].Name != "local.work" {
		t.Fatalf("trace dump %+v, want the local.work span", dump)
	}

	resp, err = http.Get(ts.URL + "/debug/provenance")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("provenance status %d", resp.StatusCode)
	}

	// Tracing disabled: both endpoints still answer (empty listings).
	tsOff, _ := startServer(t, ServerOptions{Metrics: obs.NewRegistry()})
	for _, path := range []string{"/debug/traces", "/debug/provenance"} {
		resp, err := http.Get(tsOff.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s with tracing off: status %d", path, resp.StatusCode)
		}
	}
}

// TestHealthzShardEcho checks the shard-mode readiness surface: /healthz
// must echo the shard's identity, the layout fingerprint every node has to
// agree on, and its held-partition count — and a plain server must omit all
// three.
func TestHealthzShardEcho(t *testing.T) {
	const size = 15000
	opts := platform.DeployOptions{Seed: 21, UniverseSize: size, Metrics: obs.NewRegistry()}
	ring, err := cluster.NewRing([]string{"s0", "s1", "s2"}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1024)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := cluster.NewShard("s1", layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := startShardServer(t, shard)

	var h healthResponse
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Fatalf("healthz status %q", h.Status)
	}
	if h.Shard != "s1" {
		t.Fatalf("healthz shard %q, want s1", h.Shard)
	}
	if want := fmt.Sprintf("%016x", layout.Fingerprint()); h.RingHash != want {
		t.Fatalf("healthz ring_hash %q, want %q", h.RingHash, want)
	}
	if h.Partitions != len(shard.Held()) {
		t.Fatalf("healthz partitions %d, want %d", h.Partitions, len(shard.Held()))
	}
	if h.Tracing {
		t.Fatal("healthz reports tracing enabled on an untraced server")
	}

	// Plain (non-shard) server: liveness only, no shard fields, and the
	// tracing flag flips with a tracer installed.
	tsPlain, _ := startServer(t, ServerOptions{Metrics: obs.NewRegistry(), Tracer: newTestTracer(59)})
	var plain healthResponse
	resp, err = http.Get(tsPlain.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if plain.Status != "ok" || plain.Shard != "" || plain.RingHash != "" || plain.Partitions != 0 {
		t.Fatalf("plain healthz %+v, want bare ok", plain)
	}
	if !plain.Tracing {
		t.Fatal("healthz does not report tracing enabled")
	}
}

// TestClusterDoorTracePropagation runs a traced scatter-gather over real
// HTTP shards, each with its own tracer, and checks every shard's server
// continued the coordinator's trace — the full fig1 path in miniature.
func TestClusterDoorTracePropagation(t *testing.T) {
	const size = 15000
	opts := platform.DeployOptions{Seed: 21, UniverseSize: size, Metrics: obs.NewRegistry()}
	nodes := []string{"s0", "s1", "s2"}
	ring, err := cluster.NewRing(nodes, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1024)
	if err != nil {
		t.Fatal(err)
	}
	shardTracers := make(map[string]*trace.Tracer, len(nodes))
	conns := make([]cluster.Conn, 0, len(nodes))
	for i, n := range nodes {
		s, err := cluster.NewShard(n, layout, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr := newTestTracer(uint64(61 + i))
		shardTracers[n] = tr
		srv, err := NewServer(s.Deployment(), ServerOptions{Metrics: obs.NewRegistry(), Shard: s, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		hts := newTestHTTPServer(t, srv)
		conns = append(conns, NewShardConn(n, hts.URL, nil))
	}
	coord, err := cluster.NewCoordinator(cluster.Options{
		Layout:  layout,
		Conns:   conns,
		Deploy:  opts,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	coordTracer := newTestTracer(67)
	root := coordTracer.StartRoot("audit.cluster")
	ctx := trace.NewContext(context.Background(), root)
	reqs := []platform.EstimateRequest{
		{Spec: targeting.Attr(0)},
		{Spec: targeting.And(targeting.Attr(1), targeting.Attr(2))},
	}
	got, err := coord.MeasureManyCtx(ctx, "facebook", reqs)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("slot %d: %v", i, got[i].Err)
		}
	}

	id, _ := trace.ParseTraceID(root.TraceID())
	for _, n := range nodes {
		d, ok := shardTracers[n].Dump(id)
		if !ok {
			t.Fatalf("shard %s did not continue the coordinator's trace", n)
		}
		if spanNames(d)["shard.count_batch"] < 1 {
			t.Fatalf("shard %s trace has no count_batch span: %v", n, spanNames(d))
		}
	}
	cd, ok := coordTracer.Dump(id)
	if !ok {
		t.Fatal("coordinator tracer did not buffer the trace")
	}
	names := spanNames(cd)
	if names["cluster.size_many"] != 1 || names["cluster.shard"] < len(nodes) {
		t.Fatalf("coordinator spans %v, want size_many plus one per shard", names)
	}
}

// newTestHTTPServer wraps an adapi server in an httptest server with
// cleanup (startShardServer builds its own Server; this variant takes one
// preconfigured, e.g. with a tracer).
func newTestHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}
