package adapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/targeting"
)

func TestRetryAfter(t *testing.T) {
	tests := []struct {
		name   string
		header string
		set    bool
		want   time.Duration
	}{
		{"missing header", "", false, 0},
		{"empty value", "", true, 0},
		{"non-numeric", "soon", true, 0},
		{"zero", "0", true, 0},
		{"negative", "-3", true, 0},
		{"integer seconds", "2", true, 2 * time.Second},
		{"fractional seconds", "1.5", true, 1500 * time.Millisecond},
		{"large value", "300", true, 300 * time.Second},
		{"NaN", "NaN", true, 0},
		{"trailing junk still scans prefix", "2 seconds", true, 2 * time.Second},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp := &http.Response{Header: http.Header{}}
			if tt.set {
				resp.Header.Set("Retry-After", tt.header)
			}
			if got := retryAfter(resp); got != tt.want {
				t.Errorf("retryAfter(%q) = %v, want %v", tt.header, got, tt.want)
			}
		})
	}
}

// throttleScript serves the facebook dialect, returning scripted 429s on the
// measure door before finally succeeding.
type throttleScript struct {
	deny       atomic.Int64 // remaining 429s to serve
	retryAfter string       // Retry-After header for the first 429 only
	served     atomic.Int64 // total measure attempts observed
}

func (s *throttleScript) handler(t *testing.T) http.Handler {
	codec, err := CodecFor(catalog.PlatformFacebook)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/facebook/options", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(optionsResponse{
			Platform:   catalog.PlatformFacebook,
			Attributes: []string{"a0", "a1"},
		})
	})
	mux.HandleFunc("/facebook/measure", func(w http.ResponseWriter, r *http.Request) {
		n := s.served.Add(1)
		if s.deny.Add(-1) >= 0 {
			if n == 1 && s.retryAfter != "" {
				w.Header().Set("Retry-After", s.retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"throttled","message":"slow down"}}`)
			return
		}
		body, err := codec.EncodeResponse(1000)
		if err != nil {
			t.Errorf("encoding response: %v", err)
		}
		w.Write(body)
	})
	return mux
}

// fakeSleepClient builds a client whose retry sleeps are recorded rather
// than waited out, so the backoff schedule is assertable in microseconds.
func fakeSleepClient(t *testing.T, url string, reg *obs.Registry) (*Client, *[]time.Duration) {
	t.Helper()
	c, err := NewClient(context.Background(), url, catalog.PlatformFacebook, ClientOptions{
		MaxRetries: 3,
		RetryBase:  50 * time.Millisecond,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	slept := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
	return c, slept
}

func TestClientBackoffDoubles(t *testing.T) {
	script := &throttleScript{}
	script.deny.Store(3)
	ts := httptest.NewServer(script.handler(t))
	defer ts.Close()

	reg := obs.NewRegistry()
	c, slept := fakeSleepClient(t, ts.URL, reg)
	v, err := c.Measure(targeting.Attr(0))
	if err != nil {
		t.Fatalf("measure after retries: %v", err)
	}
	if v != 1000 {
		t.Fatalf("measure = %d, want 1000", v)
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Errorf("sleep %d = %v, want %v (schedule %v)", i, (*slept)[i], d, *slept)
		}
	}
	lbl := obs.L("platform", catalog.PlatformFacebook)
	if got := reg.CounterValue("adapi_client_429_total", lbl); got != 3 {
		t.Errorf("429 counter = %d, want 3", got)
	}
	if got := reg.CounterValue("adapi_client_retries_total", lbl); got != 3 {
		t.Errorf("retries counter = %d, want 3", got)
	}
}

func TestClientHonorsRetryAfterOverBackoff(t *testing.T) {
	script := &throttleScript{retryAfter: "1"}
	script.deny.Store(2)
	ts := httptest.NewServer(script.handler(t))
	defer ts.Close()

	reg := obs.NewRegistry()
	c, slept := fakeSleepClient(t, ts.URL, reg)
	if _, err := c.Measure(targeting.Attr(0)); err != nil {
		t.Fatalf("measure after retries: %v", err)
	}
	// First wait is lifted from 50ms to the header's 1s; doubling then
	// proceeds from the raised value.
	want := []time.Duration{time.Second, 2 * time.Second}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	lbl := obs.L("platform", catalog.PlatformFacebook)
	if got := reg.CounterValue("adapi_client_retry_after_total", lbl); got != 1 {
		t.Errorf("retry-after counter = %d, want 1", got)
	}
}

func TestClientGivesUpAfterMaxRetries(t *testing.T) {
	script := &throttleScript{}
	script.deny.Store(1 << 30)
	ts := httptest.NewServer(script.handler(t))
	defer ts.Close()

	reg := obs.NewRegistry()
	c, slept := fakeSleepClient(t, ts.URL, reg)
	_, err := c.Measure(targeting.Attr(0))
	if err == nil || !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	// MaxRetries=3 means 4 attempts and 3 waits between them.
	if len(*slept) != 3 {
		t.Fatalf("slept %v, want 3 waits", *slept)
	}
	if got := script.served.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want 4", got)
	}
}

func TestClientSleepCancellation(t *testing.T) {
	script := &throttleScript{}
	script.deny.Store(1 << 30)
	ts := httptest.NewServer(script.handler(t))
	defer ts.Close()

	c, err := NewClient(context.Background(), ts.URL, catalog.PlatformFacebook, ClientOptions{
		MaxRetries: 3,
		RetryBase:  time.Millisecond,
		Metrics:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.MeasureContext(ctx, targeting.Attr(0)); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
