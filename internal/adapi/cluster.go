package adapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/platform"
)

// The cluster door is shard-to-coordinator plumbing, not a public platform
// dialect: requests and responses are plain JSON over the internal types,
// and raw counts cross the wire unscaled — scaling and rounding happen
// exactly once, at the coordinator (the merge-then-round invariant).

// codePartitionNotHeld is the wire code for cluster.ErrPartitionNotHeld:
// the coordinator's signal to re-address a partition through the ring.
const codePartitionNotHeld = "partition_not_held"

// ShardBackend is what the cluster door serves: one shard's raw-count
// batch evaluator. *cluster.Shard is the canonical implementation.
type ShardBackend interface {
	ID() string
	CountBatch(ctx context.Context, iface string, door platform.Door, parts []uint32, reqs []platform.EstimateRequest) ([]platform.RawCount, error)
}

var _ ShardBackend = (*cluster.Shard)(nil)

// countBatchRequest is the body of POST /cluster/count-batch.
type countBatchRequest struct {
	Interface  string                     `json:"interface"`
	Door       string                     `json:"door"`
	Partitions []uint32                   `json:"partitions"`
	Requests   []platform.EstimateRequest `json:"requests"`
}

// countSlot is one request's raw count, or its typed per-slot error.
type countSlot struct {
	Count int64 `json:"count"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// countBatchResponse echoes the serving shard's ID so a miswired conn is a
// hard error instead of a silently wrong partial sum.
type countBatchResponse struct {
	Shard   string      `json:"shard"`
	Results []countSlot `json:"results"`
}

// clusterErrorCode classifies a CountBatch call-level error.
func clusterErrorCode(err error) string {
	if errors.Is(err, cluster.ErrPartitionNotHeld) {
		return codePartitionNotHeld
	}
	return errorCode(err)
}

// registerClusterRoutes mounts the shard door when the server fronts a
// shard.
func (s *Server) registerClusterRoutes(backend ShardBackend) {
	iface := obs.L("interface", "cluster")
	door := obs.L("door", "count-batch")
	total := s.opts.Metrics.Counter("adapi_server_requests_total", iface, door)
	latency := s.opts.Metrics.Histogram("adapi_server_request_seconds", iface, door)
	s.mux.HandleFunc("/cluster/count-batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed", r.Method))
			return
		}
		total.Inc()
		var span *trace.Span
		start := time.Now()
		defer func() { latency.ObserveWithExemplar(time.Since(start), exemplarID(span)) }()

		body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, codeMalformedRequest, "reading body: "+err.Error())
			return
		}
		if int64(len(body)) > s.opts.MaxBodyBytes {
			writeError(w, http.StatusRequestEntityTooLarge, codeMalformedRequest, "body too large")
			return
		}
		var req countBatchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, codeMalformedRequest, "malformed count-batch request: "+err.Error())
			return
		}
		d, err := platform.ParseDoor(req.Door)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeMalformedRequest, err.Error())
			return
		}
		// The shard door continues the coordinator's trace: one span per
		// count-batch, tagged with the serving shard and the work shipped.
		r, span = continueTrace(&s.opts, r, "shard.count_batch")
		if span != nil {
			span.Annotate("shard", backend.ID())
			span.Annotate("interface", req.Interface)
			span.AnnotateInt("partitions", int64(len(req.Partitions)))
			span.AnnotateInt("specs", int64(len(req.Requests)))
			defer span.End()
		}
		res, err := backend.CountBatch(r.Context(), req.Interface, d, req.Partitions, req.Requests)
		span.SetError(err)
		if err != nil {
			writeError(w, http.StatusBadRequest, clusterErrorCode(err), err.Error())
			return
		}
		resp := countBatchResponse{Shard: backend.ID(), Results: make([]countSlot, len(res))}
		for i, rc := range res {
			if rc.Err != nil {
				resp.Results[i] = countSlot{Error: &struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				}{Code: errorCode(rc.Err), Message: rc.Err.Error()}}
				continue
			}
			resp.Results[i].Count = rc.Count
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			log.Printf("adapi: writing count-batch response: %v", err)
		}
	})
}

// ShardConn is the coordinator's HTTP connection to one remote shard. It
// implements cluster.Conn, so a multi-process cluster swaps in for the
// in-process one without the coordinator noticing.
type ShardConn struct {
	id   string
	base string
	hc   *http.Client
}

var (
	_ cluster.Conn          = (*ShardConn)(nil)
	_ cluster.CatalogHasher = (*ShardConn)(nil)
)

// NewShardConn connects shard id at baseURL (e.g. "http://host:8080").
// httpClient nil selects a default client; per-call deadlines come from the
// coordinator's context.
func NewShardConn(id, baseURL string, httpClient *http.Client) *ShardConn {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &ShardConn{id: id, base: baseURL, hc: httpClient}
}

// ID returns the shard's ring node name.
func (c *ShardConn) ID() string { return c.id }

// CatalogHash fetches the remote shard's catalog fingerprint from its
// health endpoint, implementing cluster.CatalogHasher so the coordinator's
// boot preflight covers multi-process rings: a shard that loaded a stale
// snapshot reports a divergent hash and the coordinator refuses to start.
// The fetch error is the shard being unreachable mid-boot — the preflight
// tolerates that and the first scattered batch fails over instead.
func (c *ShardConn) CatalogHash() (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("adapi: shard %s: %w", c.id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("adapi: shard %s: healthz HTTP %d", c.id, resp.StatusCode)
	}
	var health struct {
		CatalogHash string `json:"catalog_hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return "", fmt.Errorf("adapi: shard %s: malformed healthz: %w", c.id, err)
	}
	if health.CatalogHash == "" {
		return "", fmt.Errorf("adapi: shard %s reports no catalog hash", c.id)
	}
	return health.CatalogHash, nil
}

// CountBatch ships the batch to the remote shard door and decodes the raw
// counts. Any transport or server-level failure is returned as a call
// error, which the coordinator treats as a shard failure and fails over.
func (c *ShardConn) CountBatch(ctx context.Context, iface string, door platform.Door, parts []uint32, reqs []platform.EstimateRequest) ([]platform.RawCount, error) {
	body, err := json.Marshal(countBatchRequest{
		Interface:  iface,
		Door:       door.String(),
		Partitions: parts,
		Requests:   reqs,
	})
	if err != nil {
		return nil, fmt.Errorf("adapi: encoding count-batch: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/cluster/count-batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if hv := trace.FromContext(ctx).Context().Format(); hv != "" {
		httpReq.Header.Set(trace.HeaderName, hv)
	}
	httpResp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("adapi: shard %s: %w", c.id, err)
	}
	defer httpResp.Body.Close()
	respBody, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, fmt.Errorf("adapi: shard %s: reading response: %w", c.id, err)
	}
	if httpResp.StatusCode != http.StatusOK {
		var env errorEnvelope
		if json.Unmarshal(respBody, &env) == nil && env.Error.Code != "" {
			if env.Error.Code == codePartitionNotHeld {
				return nil, fmt.Errorf("adapi: shard %s: %w: %s", c.id, cluster.ErrPartitionNotHeld, env.Error.Message)
			}
			return nil, errorFromCode(env.Error.Code, env.Error.Message)
		}
		return nil, fmt.Errorf("adapi: shard %s: HTTP %d", c.id, httpResp.StatusCode)
	}
	var resp countBatchResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return nil, fmt.Errorf("adapi: shard %s: malformed count-batch response: %w", c.id, err)
	}
	if resp.Shard != c.id {
		return nil, fmt.Errorf("adapi: conn for shard %s reached shard %s — check the ring addresses", c.id, resp.Shard)
	}
	if len(resp.Results) != len(reqs) {
		return nil, fmt.Errorf("adapi: shard %s returned %d slots for %d requests", c.id, len(resp.Results), len(reqs))
	}
	out := make([]platform.RawCount, len(reqs))
	for i, slot := range resp.Results {
		if slot.Error != nil {
			out[i].Err = errorFromCode(slot.Error.Code, slot.Error.Message)
			continue
		}
		out[i].Count = slot.Count
	}
	return out, nil
}
