package adapi

import (
	"context"
	"strconv"

	"repro/internal/obs/trace"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// MeasurementStore is the durable archive the server can back its auditor
// door with. It is structurally identical to core.MeasurementStore (and
// satisfied by internal/store.Store) but declared here so adapi depends on
// neither package: the server only needs Get/Put against a platform-
// qualified canonical key.
type MeasurementStore interface {
	GetMeasurement(platform, canonicalKey string) (int64, bool)
	PutMeasurement(platform, canonicalKey string, size int64) error
}

// measureStoreKey derives the store key for one auditor-door request. The
// spec collapses to its canonical form — every spelling of the same formula
// shares a record — and the non-spec estimate parameters are appended as
// NUL-separated qualifiers, since the platforms' answers depend on them.
// The qualifiers also keep server-door keys disjoint from the bare
// canonical-spec keys an auditing client writes, so a server and a client
// pointed at the same directory can never read each other's records. The
// frequency cap normalizes 0 to its documented default of 1.
func measureStoreKey(req platform.EstimateRequest) string {
	cap := req.FrequencyCapPerMonth
	if cap == 0 {
		cap = 1
	}
	return targeting.Canonical(req.Spec) +
		"\x00obj=" + string(req.Objective) +
		"\x00cap=" + strconv.Itoa(cap)
}

// storedMeasure is the auditor door's measurement path when a store is
// configured: persisted answers are served without touching the platform
// (its query counters stay flat), fresh answers are appended before they
// are returned. Append failures degrade the door to uncached serving and
// are counted, never surfaced to the client — the measurement itself is
// still good.
func (h *ifaceHandler) storedMeasure(req platform.EstimateRequest) (int64, error) {
	key := measureStoreKey(req)
	if v, ok := h.store.GetMeasurement(h.p.Name(), key); ok {
		h.mStoreHits.Inc()
		return v, nil
	}
	v, err := h.p.Measure(req)
	if err != nil {
		return v, err
	}
	if serr := h.store.PutMeasurement(h.p.Name(), key, v); serr != nil {
		h.mStoreErrors.Inc()
		h.opts.logf("adapi: %s: store append failed: %v", h.p.Name(), serr)
	}
	return v, nil
}

// storedMeasureCtx is storedMeasure under a distributed trace: store-tier
// hits annotate the server span and record "store"-sourced provenance (the
// platform was never queried), misses go through the platform's traced
// door, which records its own span and provenance.
func (h *ifaceHandler) storedMeasureCtx(ctx context.Context, req platform.EstimateRequest) (int64, error) {
	key := measureStoreKey(req)
	if v, ok := h.store.GetMeasurement(h.p.Name(), key); ok {
		h.mStoreHits.Inc()
		span := trace.FromContext(ctx)
		span.Annotate("store", "hit")
		if plog := span.ProvenanceLog(); plog != nil {
			plog.Add(trace.Provenance{
				Platform: h.p.Name(),
				Key:      key,
				Source:   "store",
				TraceID:  span.TraceID(),
				Value:    v,
			})
		}
		return v, nil
	}
	v, err := h.p.MeasureCtx(ctx, req)
	if err != nil {
		return v, err
	}
	if serr := h.store.PutMeasurement(h.p.Name(), key, v); serr != nil {
		h.mStoreErrors.Inc()
		h.opts.logf("adapi: %s: store append failed: %v", h.p.Name(), serr)
	}
	return v, nil
}
