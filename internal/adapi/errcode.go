// Package adapi is the network layer of the reproduction: HTTP servers that
// expose each simulated platform's audience-size estimate API in that
// platform's own JSON dialect, and clients that automate those APIs the way
// the paper's scraper did (§3, "Automating size queries").
//
// Facebook's and LinkedIn's dialects are straightforward JSON; Google's
// request and response bodies are obfuscated JSON keyed by opaque numeric
// strings. The Google client embeds the key mapping the paper reports
// recovering "by manually varying the targeting options systematically".
package adapi

import (
	"errors"
	"fmt"

	"repro/internal/platform"
	"repro/internal/targeting"
)

// Error codes carried in API error bodies so typed validation errors survive
// the HTTP round trip: the audit methodology needs errors.Is to keep working
// against a remote platform (e.g. detecting that Google cannot AND two
// attributes).
const (
	codeEmptySpec        = "empty_spec"
	codeEmptyClause      = "empty_clause"
	codeMixedClause      = "mixed_clause"
	codeExcludeForbidden = "exclude_forbidden"
	codeKindForbidden    = "kind_forbidden"
	codeDemoForbidden    = "demo_forbidden"
	codeAndWithinFeature = "and_within_feature"
	codeTooManyClauses   = "too_many_clauses"
	codeUnknownOption    = "unknown_option"
	codeDuplicateRef     = "duplicate_ref"
	codeInvalidDemoValue = "invalid_demo_value"
	codeUnknownObjective = "unknown_objective"
	codeBadFrequencyCap  = "bad_frequency_cap"
	codeMalformedRequest = "malformed_request"
	codeInternal         = "internal"
	codeRateLimited      = "rate_limited"
	codeUnknownPlatform  = "unknown_platform"
	codeMethodNotAllowed = "method_not_allowed"
)

// sentinelByCode maps wire codes back to the typed errors the audit uses.
var sentinelByCode = map[string]error{
	codeEmptySpec:        targeting.ErrEmptySpec,
	codeEmptyClause:      targeting.ErrEmptyClause,
	codeMixedClause:      targeting.ErrMixedClause,
	codeExcludeForbidden: targeting.ErrExcludeForbidden,
	codeKindForbidden:    targeting.ErrKindForbidden,
	codeDemoForbidden:    targeting.ErrDemoForbidden,
	codeAndWithinFeature: targeting.ErrAndWithinFeature,
	codeTooManyClauses:   targeting.ErrTooManyClauses,
	codeUnknownOption:    targeting.ErrUnknownOption,
	codeDuplicateRef:     targeting.ErrDuplicateRef,
	codeInvalidDemoValue: targeting.ErrInvalidDemoValue,
	codeUnknownObjective: platform.ErrUnknownObjective,
	codeBadFrequencyCap:  platform.ErrBadFrequencyCap,
}

// codeByError pairs typed errors with their wire codes, checked in order.
var codeByError = []struct {
	err  error
	code string
}{
	{targeting.ErrEmptySpec, codeEmptySpec},
	{targeting.ErrEmptyClause, codeEmptyClause},
	{targeting.ErrMixedClause, codeMixedClause},
	{targeting.ErrExcludeForbidden, codeExcludeForbidden},
	{targeting.ErrDemoForbidden, codeDemoForbidden},
	{targeting.ErrAndWithinFeature, codeAndWithinFeature},
	{targeting.ErrTooManyClauses, codeTooManyClauses},
	{targeting.ErrUnknownOption, codeUnknownOption},
	{targeting.ErrDuplicateRef, codeDuplicateRef},
	{targeting.ErrInvalidDemoValue, codeInvalidDemoValue},
	{targeting.ErrKindForbidden, codeKindForbidden},
	{platform.ErrUnknownObjective, codeUnknownObjective},
	{platform.ErrBadFrequencyCap, codeBadFrequencyCap},
}

// errorCode classifies an error into a wire code.
func errorCode(err error) string {
	for _, e := range codeByError {
		if errors.Is(err, e.err) {
			return e.code
		}
	}
	return codeInternal
}

// errorFromCode reconstructs a typed error from a wire code and message.
func errorFromCode(code, message string) error {
	if sentinel, ok := sentinelByCode[code]; ok {
		return fmt.Errorf("adapi: remote rejected request: %w (%s)", sentinel, message)
	}
	return fmt.Errorf("adapi: remote error %s: %s", code, message)
}
