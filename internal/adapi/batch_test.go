package adapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/store"
	"repro/internal/targeting"
)

// batchSpecs builds a mixed batch against an interface: valid singles and
// pairs, a duplicate, an unknown option, and an empty spec.
func batchSpecs(nAttr int) []targeting.Spec {
	return []targeting.Spec{
		targeting.Attr(0),
		targeting.And(targeting.Attr(1), targeting.Attr(2)),
		targeting.Attr(0), // duplicate of slot 0
		targeting.Attr(nAttr + 5),
		targeting.Attr(3),
		{},
	}
}

// TestMeasureBatchMatchesSerial: for every dialect, one measure-batch
// exchange must return slot for slot what serial /measure calls return —
// sizes and typed errors both.
func TestMeasureBatchMatchesSerial(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{Metrics: obs.NewRegistry()})
	ctx := context.Background()
	for _, name := range []string{catalog.PlatformFacebook, catalog.PlatformFacebookRestricted, catalog.PlatformGoogle, catalog.PlatformLinkedIn} {
		c, err := NewClient(ctx, ts.URL, name, ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		specs := batchSpecs(len(c.AttributeNames()))
		got := c.MeasureMany(specs)
		if len(got) != len(specs) {
			t.Fatalf("%s: %d slots for %d specs", name, len(got), len(specs))
		}
		for i, spec := range specs {
			size, serr := c.Measure(spec)
			if (got[i].Err == nil) != (serr == nil) {
				t.Fatalf("%s slot %d: batch err=%v, serial err=%v", name, i, got[i].Err, serr)
			}
			if serr != nil {
				if got[i].Err.Error() != serr.Error() {
					t.Fatalf("%s slot %d: batch err %q, serial err %q", name, i, got[i].Err, serr)
				}
				continue
			}
			if got[i].Size != size {
				t.Fatalf("%s slot %d: batch size %d, serial %d", name, i, got[i].Size, size)
			}
		}
	}
}

// TestMeasureBatchOneExchange: the whole batch costs one request on the
// measure-batch door and zero on the serial measure door.
func TestMeasureBatchOneExchange(t *testing.T) {
	reg := obs.NewRegistry()
	ts, _ := startServer(t, ServerOptions{Metrics: reg})
	c, err := NewClient(context.Background(), ts.URL, catalog.PlatformFacebook, ClientOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	specs := batchSpecs(len(c.AttributeNames()))
	for _, r := range c.MeasureMany(specs) {
		_ = r
	}
	iface := obs.L("interface", catalog.PlatformFacebook)
	if n := reg.CounterValue("adapi_server_requests_total", iface, obs.L("door", "measure-batch")); n != 1 {
		t.Errorf("measure-batch requests = %d, want 1", n)
	}
	if n := reg.CounterValue("adapi_server_requests_total", iface, obs.L("door", "measure")); n != 0 {
		t.Errorf("measure requests = %d, want 0 (no serial fallback)", n)
	}
}

// TestMeasureBatchStoreTier: a store-backed server answers a repeated batch
// entirely from disk — the platform sees no queries the second time.
func TestMeasureBatchStoreTier(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	ts, d := startServer(t, ServerOptions{Store: st, Metrics: reg})
	var p *platform.Interface
	for _, cand := range d.Interfaces() {
		if cand.Name() == catalog.PlatformFacebook {
			p = cand
		}
	}
	c, err := NewClient(context.Background(), ts.URL, catalog.PlatformFacebook, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []targeting.Spec{targeting.Attr(0), targeting.Attr(1), targeting.And(targeting.Attr(0), targeting.Attr(1))}
	first := c.MeasureMany(specs)
	for i, r := range first {
		if r.Err != nil {
			t.Fatalf("first batch slot %d: %v", i, r.Err)
		}
	}
	if n := st.Len(); n != len(specs) {
		t.Fatalf("store holds %d records, want %d", n, len(specs))
	}
	before := p.QueryCount()
	second := c.MeasureMany(specs)
	for i, r := range second {
		if r.Err != nil || r.Size != first[i].Size {
			t.Errorf("second batch slot %d: (%d, %v), want (%d, nil)", i, r.Size, r.Err, first[i].Size)
		}
	}
	if delta := p.QueryCount() - before; delta != 0 {
		t.Errorf("second batch placed %d queries on the platform, want 0", delta)
	}
	if hits := reg.CounterValue("adapi_server_store_hits_total", obs.L("interface", catalog.PlatformFacebook)); hits != int64(len(specs)) {
		t.Errorf("store hits = %d, want %d", hits, len(specs))
	}
}

// TestMeasureBatchFallsBackOnOldServer: against a server without the batch
// endpoint the client silently degrades to serial measure exchanges.
func TestMeasureBatchFallsBackOnOldServer(t *testing.T) {
	codec, err := CodecFor(catalog.PlatformFacebook)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/facebook/options", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(optionsResponse{
			Platform:   catalog.PlatformFacebook,
			Attributes: []string{"a0", "a1"},
		})
	})
	var serialCalls int
	mux.HandleFunc("/facebook/measure", func(w http.ResponseWriter, r *http.Request) {
		serialCalls++
		body, err := codec.EncodeResponse(int64(1000 * serialCalls))
		if err != nil {
			t.Error(err)
			return
		}
		w.Write(body)
	})
	mux.HandleFunc("/facebook/measure-batch", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"unknown_route","message":"no such endpoint"}}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, err := NewClient(context.Background(), ts.URL, catalog.PlatformFacebook, ClientOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	specs := []targeting.Spec{targeting.Attr(0), targeting.Attr(1)}
	res := c.MeasureMany(specs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
		if want := int64(1000 * (i + 1)); r.Size != want {
			t.Errorf("slot %d: size %d, want %d", i, r.Size, want)
		}
	}
	if serialCalls != len(specs) {
		t.Errorf("serial fallback calls = %d, want %d", serialCalls, len(specs))
	}
}

// TestMeasureBatchMalformedEnvelope: a non-envelope body is rejected whole.
func TestMeasureBatchMalformedEnvelope(t *testing.T) {
	ts, _ := startServer(t, ServerOptions{Metrics: obs.NewRegistry()})
	resp, err := http.Post(ts.URL+"/facebook/measure-batch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
