package adapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// startShardServer mounts one cluster shard behind a full adapi server, the
// way platformd -shard-id runs it.
func startShardServer(t *testing.T, s *cluster.Shard) *httptest.Server {
	t.Helper()
	srv, err := NewServer(s.Deployment(), ServerOptions{Metrics: obs.NewRegistry(), Shard: s})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestClusterDoorEndToEnd runs a 3-shard cluster over real HTTP — each
// shard behind its own adapi server, the coordinator wired through
// ShardConn — and checks scatter-gather MeasureMany is bit-identical to
// the single-node deployment.
func TestClusterDoorEndToEnd(t *testing.T) {
	const size = 15000
	opts := platform.DeployOptions{Seed: 21, UniverseSize: size, Metrics: obs.NewRegistry()}
	single := serverDeploy(t)

	nodes := []string{"s0", "s1", "s2"}
	ring, err := cluster.NewRing(nodes, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1024)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]cluster.Conn, 0, len(nodes))
	for _, n := range nodes {
		s, err := cluster.NewShard(n, layout, opts)
		if err != nil {
			t.Fatal(err)
		}
		ts := startShardServer(t, s)
		conns = append(conns, NewShardConn(n, ts.URL, nil))
	}
	coord, err := cluster.NewCoordinator(cluster.Options{
		Layout:  layout,
		Conns:   conns,
		Deploy:  opts,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range single.Interfaces() {
		specs := batchSpecs(len(p.Catalog().Attributes))
		reqs := make([]platform.EstimateRequest, len(specs))
		for i := range specs {
			reqs[i] = platform.EstimateRequest{Spec: specs[i]}
		}
		got, err := coord.MeasureMany(p.Name(), reqs)
		if err != nil {
			t.Fatalf("%s: cluster over HTTP: %v", p.Name(), err)
		}
		want, err := p.MeasureMany(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("%s slot %d: cluster err=%v, single err=%v", p.Name(), i, got[i].Err, want[i].Err)
			}
			if want[i].Err == nil && got[i].Size != want[i].Size {
				t.Fatalf("%s slot %d: cluster size %d, single %d", p.Name(), i, got[i].Size, want[i].Size)
			}
		}
	}
}

// TestClusterDoorFailover kills one shard's HTTP server mid-cluster: the
// coordinator must fail its partitions over to the replica servers and
// still match the single node.
func TestClusterDoorFailover(t *testing.T) {
	const size = 15000
	opts := platform.DeployOptions{Seed: 21, UniverseSize: size, Metrics: obs.NewRegistry()}
	single := serverDeploy(t)

	nodes := []string{"s0", "s1", "s2"}
	ring, err := cluster.NewRing(nodes, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1024)
	if err != nil {
		t.Fatal(err)
	}
	servers := make(map[string]*httptest.Server, len(nodes))
	conns := make([]cluster.Conn, 0, len(nodes))
	for _, n := range nodes {
		s, err := cluster.NewShard(n, layout, opts)
		if err != nil {
			t.Fatal(err)
		}
		ts := startShardServer(t, s)
		servers[n] = ts
		conns = append(conns, NewShardConn(n, ts.URL, nil))
	}
	coord, err := cluster.NewCoordinator(cluster.Options{
		Layout:  layout,
		Conns:   conns,
		Deploy:  opts,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	servers["s1"].Close() // connection refused from here on

	p := single.Facebook
	reqs := []platform.EstimateRequest{
		{Spec: targeting.Attr(0)},
		{Spec: targeting.And(targeting.Attr(1), targeting.Attr(2))},
	}
	got, err := coord.MeasureMany(p.Name(), reqs)
	if err != nil {
		t.Fatalf("failover over HTTP: %v", err)
	}
	want, err := p.MeasureMany(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("slot %d: unexpected errs %v / %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Size != want[i].Size {
			t.Fatalf("slot %d: failover size %d, single %d", i, got[i].Size, want[i].Size)
		}
	}
}

// TestClusterDoorPartitionNotHeld checks the typed error survives the HTTP
// round trip: the coordinator's failover logic matches it with errors.Is.
func TestClusterDoorPartitionNotHeld(t *testing.T) {
	const size = 15000
	opts := platform.DeployOptions{Seed: 21, UniverseSize: size, Metrics: obs.NewRegistry()}
	nodes := []string{"s0", "s1", "s2"}
	ring, err := cluster.NewRing(nodes, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1024)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cluster.NewShard("s0", layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	var foreign uint32
	found := false
	for p := 0; p < layout.NumPartitions(); p++ {
		if layout.Primary(uint32(p)) != "s0" {
			foreign, found = uint32(p), true
			break
		}
	}
	if !found {
		t.Skip("s0 owns everything")
	}
	ts := startShardServer(t, s)
	conn := NewShardConn("s0", ts.URL, nil)
	_, err = conn.CountBatch(context.Background(), catalog.PlatformFacebook, platform.DoorMeasure,
		[]uint32{foreign}, []platform.EstimateRequest{{Spec: targeting.Attr(0)}})
	if !errors.Is(err, cluster.ErrPartitionNotHeld) {
		t.Fatalf("foreign partition over HTTP: got %v, want ErrPartitionNotHeld", err)
	}
}

// TestShardConnRejectsMiswiredShard: a conn that reaches the wrong shard
// must fail loudly instead of merging the wrong partial counts.
func TestShardConnRejectsMiswiredShard(t *testing.T) {
	const size = 15000
	opts := platform.DeployOptions{Seed: 21, UniverseSize: size, Metrics: obs.NewRegistry()}
	ring, err := cluster.NewRing([]string{"s0", "s1"}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1024)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := cluster.NewShard("s0", layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := startShardServer(t, s0)
	conn := NewShardConn("s1", ts.URL, nil) // claims s1, reaches s0
	_, err = conn.CountBatch(context.Background(), catalog.PlatformFacebook, platform.DoorMeasure,
		layout.PrimaryPartitions("s0")[:1], []platform.EstimateRequest{{Spec: targeting.Attr(0)}})
	if err == nil || !strings.Contains(err.Error(), "reached shard") {
		t.Fatalf("miswired conn: got %v, want shard mismatch error", err)
	}
}

// TestBatchSlotErrorNamesCanonicalKey is the regression test for the batch
// client's malformed-slot error: it must identify the failing slot by the
// spec's canonical key, not a bare batch index.
func TestBatchSlotErrorNamesCanonicalKey(t *testing.T) {
	codec, err := CodecFor(catalog.PlatformFacebook)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/facebook/options", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(optionsResponse{
			Platform:   catalog.PlatformFacebook,
			Attributes: []string{"a0", "a1", "a2"},
		})
	})
	mux.HandleFunc("/facebook/measure-batch", func(w http.ResponseWriter, r *http.Request) {
		good, err := codec.EncodeResponse(4200)
		if err != nil {
			t.Error(err)
			return
		}
		// Slot 0 decodes; slot 1's body is valid JSON but not a valid
		// dialect response, so DecodeResponse fails client-side.
		resp := batchResponse{Results: []batchSlot{
			{Body: good},
			{Body: json.RawMessage(`{"nonsense":true}`)},
		}}
		json.NewEncoder(w).Encode(resp)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, err := NewClient(context.Background(), ts.URL, catalog.PlatformFacebook, ClientOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	specs := []targeting.Spec{
		targeting.Attr(0),
		targeting.And(targeting.Attr(1), targeting.Attr(2)),
	}
	res := c.MeasureMany(specs)
	if res[0].Err != nil {
		t.Fatalf("slot 0 should decode: %v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Fatal("slot 1 should fail to decode")
	}
	key := targeting.Canonical(specs[1])
	if !strings.Contains(res[1].Err.Error(), key) {
		t.Fatalf("malformed-slot error %q does not name canonical key %q", res[1].Err, key)
	}
	if strings.Contains(res[1].Err.Error(), fmt.Sprintf("slot %d:", 1)) {
		t.Fatalf("malformed-slot error %q still uses the batch index", res[1].Err)
	}
}
