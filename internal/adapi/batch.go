package adapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// batchRequest is the envelope of POST /{platform}/measure-batch: an ordered
// list of auditor-door request bodies, each in the platform's own dialect —
// the same bytes POST /measure accepts, shipped together so one HTTP
// exchange (and one rate-limit token) answers the whole batch.
type batchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// batchSlot is one slot of the batch response: the dialect response body for
// a slot that succeeded, or the endpoint's usual error envelope content for
// one that failed. Exactly one of the two fields is set.
type batchSlot struct {
	Body  json.RawMessage `json:"body,omitempty"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// batchResponse is the envelope of a measure-batch response, slot-for-slot
// parallel to the request list.
type batchResponse struct {
	Results []batchSlot `json:"results"`
}

// slotError fills a response slot with a wire-coded error.
func slotError(code, message string) batchSlot {
	var s batchSlot
	s.Error = &struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}{Code: code, Message: message}
	return s
}

// handleMeasureBatch serves the auditor door's batch endpoint. Each slot is
// decoded, measured, and encoded exactly as POST /measure would treat it —
// store tier included — but the decodable slots reach the platform as one
// MeasureMany call, so the in-process simulators answer them with single
// tiled passes over the universe.
func (h *ifaceHandler) handleMeasureBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, h.opts.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeMalformedRequest, "reading body: "+err.Error())
		return
	}
	if int64(len(body)) > h.opts.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, codeMalformedRequest, "body too large")
		return
	}
	var env batchRequest
	if err := json.Unmarshal(body, &env); err != nil {
		writeError(w, http.StatusBadRequest, codeMalformedRequest, "malformed batch envelope: "+err.Error())
		return
	}

	results := make([]batchSlot, len(env.Requests))
	// The platform batch door: traced when the request continues a
	// distributed trace, so the kernel and plan-compile spans join it.
	measureMany := h.p.MeasureMany
	if ctx := r.Context(); trace.FromContext(ctx) != nil {
		measureMany = func(reqs []platform.EstimateRequest) ([]platform.Estimate, error) {
			return h.p.MeasureManyCtx(ctx, reqs)
		}
	}
	// Decode every slot first; only the well-formed ones go to the platform.
	reqs := make([]platform.EstimateRequest, 0, len(env.Requests))
	slots := make([]int, 0, len(env.Requests))
	for i, raw := range env.Requests {
		req, err := h.codec.DecodeRequest(raw)
		if err != nil {
			results[i] = slotError(errorCodeOrMalformed(err), err.Error())
			continue
		}
		reqs = append(reqs, req)
		slots = append(slots, i)
	}

	sizes := make([]platform.Estimate, len(reqs))
	if h.store != nil {
		// Store tier: persisted slots are answered without touching the
		// platform; only the misses form the platform batch.
		missIdx := make([]int, 0, len(reqs))
		miss := make([]platform.EstimateRequest, 0, len(reqs))
		for k, req := range reqs {
			if v, ok := h.store.GetMeasurement(h.p.Name(), measureStoreKey(req)); ok {
				h.mStoreHits.Inc()
				sizes[k] = platform.Estimate{Size: v}
				continue
			}
			missIdx = append(missIdx, k)
			miss = append(miss, req)
		}
		missSizes, err := measureMany(miss)
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
			return
		}
		for j, k := range missIdx {
			sizes[k] = missSizes[j]
			if missSizes[j].Err != nil {
				continue
			}
			if serr := h.store.PutMeasurement(h.p.Name(), measureStoreKey(miss[j]), missSizes[j].Size); serr != nil {
				h.mStoreErrors.Inc()
				h.opts.logf("adapi: %s: store append failed: %v", h.p.Name(), serr)
			}
		}
	} else {
		ests, err := measureMany(reqs)
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
			return
		}
		copy(sizes, ests)
	}

	for k, i := range slots {
		if serr := sizes[k].Err; serr != nil {
			results[i] = slotError(errorCode(serr), serr.Error())
			continue
		}
		respBody, err := h.codec.EncodeResponse(sizes[k].Size)
		if err != nil {
			results[i] = slotError(codeInternal, err.Error())
			continue
		}
		results[i] = batchSlot{Body: respBody}
	}

	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(batchResponse{Results: results}); err != nil {
		log.Printf("adapi: writing batch response: %v", err)
	}
}

// Client implements core.BatchMeasurer: batches ship as one HTTP exchange.
var _ core.BatchMeasurer = (*Client)(nil)

// MeasureMany implements core.BatchMeasurer over the wire: the specs are
// encoded in the platform's dialect and shipped as one POST /measure-batch
// exchange, costing one rate-limit token and one round trip for the whole
// batch. Each slot carries the size or the typed error the equivalent
// serial Measure call would have produced. Against a server predating the
// batch endpoint the call transparently degrades to serial Measure calls.
func (c *Client) MeasureMany(specs []targeting.Spec) []core.BatchResult {
	return c.MeasureManyContext(context.Background(), specs)
}

// MeasureManyCtx implements core.ContextBatchMeasurer.
func (c *Client) MeasureManyCtx(ctx context.Context, specs []targeting.Spec) []core.BatchResult {
	return c.MeasureManyContext(ctx, specs)
}

// MeasureManyContext is MeasureMany with caller-controlled cancellation.
// A trace span riding the context records the exchange as one child span
// (the batch is one wire exchange) and propagates the trace to the server.
func (c *Client) MeasureManyContext(ctx context.Context, specs []targeting.Spec) []core.BatchResult {
	out := make([]core.BatchResult, len(specs))
	if len(specs) == 0 {
		return out
	}
	span := trace.ChildOf(trace.FromContext(ctx), "adapi.client_batch")
	if span != nil {
		defer span.End()
		span.Annotate("endpoint", c.base)
		span.AnnotateInt("specs", int64(len(specs)))
		ctx = trace.NewContext(ctx, span)
	}
	env := batchRequest{Requests: make([]json.RawMessage, len(specs))}
	for i, spec := range specs {
		body, err := c.codec.EncodeRequest(platform.EstimateRequest{Spec: spec})
		if err != nil {
			// Encoding failures are per-spec and would fail serially too;
			// ship a placeholder the server will reject so slots stay aligned.
			return c.measureManySerial(ctx, specs)
		}
		env.Requests[i] = body
	}
	reqBody, err := json.Marshal(env)
	if err != nil {
		return c.measureManySerial(ctx, specs)
	}
	respBody, err := c.do(ctx, http.MethodPost, c.base+"/"+c.name+"/measure-batch", reqBody)
	if err != nil {
		// The exchange itself failed — a server without the endpoint, an
		// oversized envelope, a network fault. Degrade to the serial door.
		return c.measureManySerial(ctx, specs)
	}
	var resp batchResponse
	if err := json.Unmarshal(respBody, &resp); err != nil || len(resp.Results) != len(specs) {
		return c.measureManySerial(ctx, specs)
	}
	for i, slot := range resp.Results {
		if slot.Error != nil {
			out[i].Err = errorFromCode(slot.Error.Code, slot.Error.Message)
			continue
		}
		out[i].Size, out[i].Err = c.codec.DecodeResponse(slot.Body)
		if out[i].Err != nil {
			// Identify the slot by its spec's canonical key: batch indices
			// mean nothing to a caller that deduplicated or reordered specs,
			// while the canonical key names the exact query that failed.
			out[i].Err = fmt.Errorf("adapi: malformed batch slot %s: %w", targeting.Canonical(specs[i]), out[i].Err)
		}
	}
	if plog := span.ProvenanceLog(); plog != nil {
		tid := span.TraceID()
		for i := range out {
			if out[i].Err != nil {
				continue
			}
			plog.Add(trace.Provenance{
				Platform: c.name,
				Key:      targeting.Canonical(specs[i]),
				Source:   "remote",
				Endpoint: c.base,
				TraceID:  tid,
				Value:    out[i].Size,
			})
		}
	}
	return out
}

// measureManySerial is the batch call's fallback: one serial exchange per
// spec, exactly the pre-batch behaviour. The context's span (the batch span
// when the caller was traced) parents the per-spec client spans, so a trace
// shows the degradation: one client_batch span fanning into serial
// exchanges. Per-spec provenance is emitted by size().
func (c *Client) measureManySerial(ctx context.Context, specs []targeting.Spec) []core.BatchResult {
	trace.FromContext(ctx).Annotate("path", "serial")
	out := make([]core.BatchResult, len(specs))
	for i, spec := range specs {
		out[i].Size, out[i].Err = c.MeasureContext(ctx, spec)
	}
	return out
}
