package adapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/snapshot"
)

// snapshotLoadedServer builds a small deployment, round-trips it through an
// on-disk snapshot, and mounts the loaded deployment behind an adapi server
// carrying the snapshot's identity — platformd's -snapshot posture.
func snapshotLoadedServer(t *testing.T, seed uint64) (*httptest.Server, *snapshot.Info) {
	t.Helper()
	opts := platform.DeployOptions{Seed: seed, UniverseSize: 1 << 11, Metrics: obs.NewRegistry()}
	built, err := platform.NewDeployment(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "identity.adusnap")
	if _, err := snapshot.WriteDeployment(path, built, opts); err != nil {
		t.Fatal(err)
	}
	d, info, err := snapshot.LoadDeployment(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(d, ServerOptions{Metrics: obs.NewRegistry(), Snapshot: info})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, info
}

// TestHealthzReportsSnapshotIdentity: a node serving a snapshot-loaded
// deployment must expose the catalog hash and the snapshot's content hash
// and build time from /healthz; a node serving a built deployment exposes
// the catalog hash alone.
func TestHealthzReportsSnapshotIdentity(t *testing.T) {
	ts, info := snapshotLoadedServer(t, 41)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.CatalogHash != info.CatalogHash {
		t.Fatalf("healthz catalog_hash %q, snapshot says %q", health.CatalogHash, info.CatalogHash)
	}
	if health.Snapshot == nil {
		t.Fatal("healthz omits the snapshot block on a snapshot-loaded node")
	}
	if health.Snapshot.ContentHash != info.ContentHash {
		t.Fatalf("healthz snapshot content_hash %q, want %q", health.Snapshot.ContentHash, info.ContentHash)
	}
	if built, err := time.Parse(time.RFC3339, health.Snapshot.BuiltAt); err != nil {
		t.Fatalf("healthz snapshot built_at %q: %v", health.Snapshot.BuiltAt, err)
	} else if !built.Equal(info.CreatedAt.Truncate(time.Second)) {
		t.Fatalf("healthz snapshot built_at %v, want %v", built, info.CreatedAt)
	}

	// Built (non-snapshot) server: catalog hash present, snapshot absent.
	plain, _ := startServer(t, ServerOptions{Metrics: obs.NewRegistry()})
	resp2, err := http.Get(plain.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var health2 healthResponse
	if err := json.NewDecoder(resp2.Body).Decode(&health2); err != nil {
		t.Fatal(err)
	}
	if health2.CatalogHash == "" {
		t.Fatal("healthz omits catalog_hash on a built node")
	}
	if health2.Snapshot != nil {
		t.Fatal("healthz reports a snapshot on a built node")
	}
}

// TestProvenanceCarriesSnapshotIdentity: /debug/provenance responses are
// stamped with the serving catalog and snapshot identity, so archived
// provenance listings stay attributable to exact catalog bytes.
func TestProvenanceCarriesSnapshotIdentity(t *testing.T) {
	ts, info := snapshotLoadedServer(t, 43)
	resp, err := http.Get(ts.URL + "/debug/provenance")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Adaudit-Catalog-Hash"); got != info.CatalogHash {
		t.Fatalf("provenance catalog hash header %q, want %q", got, info.CatalogHash)
	}
	if got := resp.Header.Get("X-Adaudit-Snapshot-Hash"); got != info.ContentHash {
		t.Fatalf("provenance snapshot hash header %q, want %q", got, info.ContentHash)
	}
	if _, err := time.Parse(time.RFC3339, resp.Header.Get("X-Adaudit-Snapshot-Built-At")); err != nil {
		t.Fatalf("provenance built-at header: %v", err)
	}
}

// TestShardConnCatalogHash pins the remote preflight leg: a ShardConn
// fetches the shard's catalog hash over /healthz, and unreachable or
// hashless servers fail the fetch rather than returning an empty hash.
func TestShardConnCatalogHash(t *testing.T) {
	const size = 15000
	opts := platform.DeployOptions{Seed: 21, UniverseSize: size, Metrics: obs.NewRegistry()}
	ring, err := cluster.NewRing([]string{"s0"}, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1024)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := cluster.NewShard("s0", layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := startShardServer(t, s0)
	conn := NewShardConn("s0", ts.URL, nil)
	got, err := conn.CatalogHash()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := s0.CatalogHash()
	if got != want {
		t.Fatalf("remote catalog hash %q, in-process shard says %q", got, want)
	}

	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer empty.Close()
	if _, err := NewShardConn("s0", empty.URL, nil).CatalogHash(); err == nil {
		t.Fatal("hashless healthz accepted")
	}
	down := httptest.NewServer(nil)
	down.Close()
	if _, err := NewShardConn("s0", down.URL, nil).CatalogHash(); err == nil {
		t.Fatal("unreachable shard returned a hash")
	}
}

// TestRemoteClusterRefusesCatalogSkew runs the coordinator preflight over
// real HTTP: two shards started from different seeds serve divergent
// catalogs, and NewCoordinator must refuse the ring with ErrCatalogSkew
// before any count is scattered.
func TestRemoteClusterRefusesCatalogSkew(t *testing.T) {
	const size = 15000
	nodes := []string{"s0", "s1"}
	ring, err := cluster.NewRing(nodes, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, 1024)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[string]uint64{"s0": 21, "s1": 9999} // s1 serves the wrong catalog
	conns := make([]cluster.Conn, 0, len(nodes))
	for _, n := range nodes {
		s, err := cluster.NewShard(n, layout, platform.DeployOptions{
			Seed: seeds[n], UniverseSize: size, Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, NewShardConn(n, startShardServer(t, s).URL, nil))
	}
	_, err = cluster.NewCoordinator(cluster.Options{
		Layout:  layout,
		Conns:   conns,
		Deploy:  platform.DeployOptions{Seed: 21, UniverseSize: size, Metrics: obs.NewRegistry()},
		Metrics: obs.NewRegistry(),
	})
	if !errors.Is(err, cluster.ErrCatalogSkew) {
		t.Fatalf("skewed remote ring: got %v, want ErrCatalogSkew", err)
	}
}
