package adapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/pii"
	"repro/internal/pixel"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/xrand"
)

// Audience-management wire types. Unlike the size-estimate endpoints, which
// speak each platform's scraped dialect, audience management uses one
// common JSON shape: the paper never reverse-engineered these endpoints, so
// fidelity matters less than coverage of the feature (§2.1).

// createPIIAudienceRequest is the body of POST /{name}/audiences.
type createPIIAudienceRequest struct {
	Name    string             `json:"name"`
	Records []pii.HashedRecord `json:"records"`
}

// createLookalikeRequest is the body of POST /{name}/audiences/lookalike.
type createLookalikeRequest struct {
	Name     string  `json:"name"`
	SourceID int     `json:"source_id"`
	Ratio    float64 `json:"ratio"`
}

// registerSiteRequest is the body of POST /{name}/pixel/sites: an
// advertiser installing the platform's tracking pixel on their site. The
// visitor-model parameters stand in for the organic traffic the live
// platforms would observe.
type registerSiteRequest struct {
	Domain     string                           `json:"domain"`
	BaseRate   float64                          `json:"base_rate"`
	GenderLoad float64                          `json:"gender_load"`
	AgeLoad    [population.NumAgeRanges]float64 `json:"age_load"`
	Factor     int                              `json:"factor"`
}

// registerSiteResponse returns the registered site id.
type registerSiteResponse struct {
	SiteID int `json:"site_id"`
}

// createPixelAudienceRequest is the body of POST /{name}/audiences/pixel.
type createPixelAudienceRequest struct {
	Name       string `json:"name"`
	SiteID     int    `json:"site_id"`
	Event      string `json:"event"`
	WindowDays int    `json:"window_days"`
}

// eventFromString parses a pixel event name.
func eventFromString(s string) (pixel.Event, error) {
	switch s {
	case "page-view":
		return pixel.EventPageView, nil
	case "add-to-cart":
		return pixel.EventAddToCart, nil
	case "purchase":
		return pixel.EventPurchase, nil
	default:
		return 0, fmt.Errorf("%w: %q", pixel.ErrUnknownEvent, s)
	}
}

// registerAudienceRoutes adds the audience-management endpoints for one
// interface handler.
func (s *Server) registerAudienceRoutes(h *ifaceHandler) {
	prefix := "/" + h.p.Name()
	s.mux.Handle(prefix+"/audiences", h.methodSwitch("audiences", map[string]func(http.ResponseWriter, *http.Request){
		http.MethodGet:  h.handleListAudiences,
		http.MethodPost: h.handleCreatePIIAudience,
	}))
	s.mux.Handle(prefix+"/audiences/lookalike", h.wrap(h.handleCreateLookalike, http.MethodPost, "audiences_lookalike"))
	s.mux.Handle(prefix+"/audiences/pixel", h.wrap(h.handleCreatePixelAudience, http.MethodPost, "audiences_pixel"))
	s.mux.Handle(prefix+"/pixel/sites", h.wrap(h.handleRegisterSite, http.MethodPost, "pixel_sites"))
}

// methodSwitch is wrap for endpoints with several methods.
func (h *ifaceHandler) methodSwitch(door string, routes map[string]func(http.ResponseWriter, *http.Request)) http.Handler {
	m := h.doorMetrics(door)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fn, ok := routes[r.Method]
		if !ok {
			writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed", r.Method))
			return
		}
		m.total.Inc()
		if !h.limiter.Allow() {
			h.m429.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, codeRateLimited, "slow down")
			return
		}
		h.opts.logf("adapi: %s %s", r.Method, r.URL.Path)
		start := time.Now()
		fn(w, r)
		m.latency.Observe(time.Since(start))
	})
}

// decodeJSONBody parses a bounded JSON request body.
func (h *ifaceHandler) decodeJSONBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, codeMalformedRequest, err.Error())
		return false
	}
	return true
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for an error status; nothing more to do.
		return
	}
}

// audienceErrStatus classifies audience-management errors.
func audienceErrStatus(err error) (int, string) {
	switch {
	case errors.Is(err, platform.ErrAudienceTooSmall):
		return http.StatusBadRequest, "audience_too_small"
	case errors.Is(err, platform.ErrUnknownAudience):
		return http.StatusNotFound, "unknown_audience"
	case errors.Is(err, platform.ErrLookalikeOfLookalike):
		return http.StatusBadRequest, "lookalike_of_lookalike"
	case errors.Is(err, pixel.ErrUnknownSite):
		return http.StatusNotFound, "unknown_site"
	case errors.Is(err, pixel.ErrUnknownEvent), errors.Is(err, pixel.ErrBadWindow):
		return http.StatusBadRequest, "bad_pixel_request"
	default:
		return http.StatusBadRequest, codeMalformedRequest
	}
}

func (h *ifaceHandler) handleListAudiences(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.p.CustomAudiences())
}

func (h *ifaceHandler) handleCreatePIIAudience(w http.ResponseWriter, r *http.Request) {
	var req createPIIAudienceRequest
	if !h.decodeJSONBody(w, r, &req) {
		return
	}
	info, err := h.p.CreatePIIAudience(req.Name, req.Records)
	if err != nil {
		status, code := audienceErrStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, info)
}

func (h *ifaceHandler) handleCreateLookalike(w http.ResponseWriter, r *http.Request) {
	var req createLookalikeRequest
	if !h.decodeJSONBody(w, r, &req) {
		return
	}
	info, err := h.p.CreateLookalike(req.Name, req.SourceID, req.Ratio)
	if err != nil {
		status, code := audienceErrStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, info)
}

func (h *ifaceHandler) handleRegisterSite(w http.ResponseWriter, r *http.Request) {
	var req registerSiteRequest
	if !h.decodeJSONBody(w, r, &req) {
		return
	}
	if req.BaseRate <= 0 || req.BaseRate >= 1 {
		writeError(w, http.StatusBadRequest, codeMalformedRequest, "base_rate must be in (0, 1)")
		return
	}
	model := population.AttrModel{
		ID:         0, // derived below from the domain for stable audiences
		BaseLogit:  population.Logit(req.BaseRate),
		GenderLoad: req.GenderLoad,
		AgeLoad:    req.AgeLoad,
		Factor:     req.Factor,
	}
	model.ID = siteModelID(h.p.Name(), req.Domain)
	id, err := h.p.Tracker().AddSite(pixel.Site{Domain: req.Domain, Visitors: model})
	if err != nil {
		writeError(w, http.StatusBadRequest, codeMalformedRequest, err.Error())
		return
	}
	writeJSON(w, registerSiteResponse{SiteID: id})
}

func (h *ifaceHandler) handleCreatePixelAudience(w http.ResponseWriter, r *http.Request) {
	var req createPixelAudienceRequest
	if !h.decodeJSONBody(w, r, &req) {
		return
	}
	event, err := eventFromString(req.Event)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_pixel_request", err.Error())
		return
	}
	info, err := h.p.CreatePixelAudience(req.Name, req.SiteID, event, req.WindowDays)
	if err != nil {
		status, code := audienceErrStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, info)
}

// siteModelID derives a stable attribute-model id for a registered site so
// its visitor audience is deterministic across restarts.
func siteModelID(platformName, domain string) uint64 {
	return xrand.HashString("pixel/" + platformName + "/" + domain)
}

// --- client side ---

// postJSON issues one JSON management call and decodes the response.
func (c *Client) postJSON(ctx context.Context, path string, reqBody, respBody any) error {
	raw, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	out, err := c.do(ctx, http.MethodPost, c.base+"/"+c.name+path, raw)
	if err != nil {
		return err
	}
	return json.Unmarshal(out, respBody)
}

// CreatePIIAudience uploads hashed PII records and returns the created
// custom audience's metadata.
func (c *Client) CreatePIIAudience(ctx context.Context, name string, records []pii.HashedRecord) (platform.CustomAudienceInfo, error) {
	var info platform.CustomAudienceInfo
	err := c.postJSON(ctx, "/audiences", createPIIAudienceRequest{Name: name, Records: records}, &info)
	return info, err
}

// CreateLookalike expands a stored audience remotely.
func (c *Client) CreateLookalike(ctx context.Context, name string, sourceID int, ratio float64) (platform.CustomAudienceInfo, error) {
	var info platform.CustomAudienceInfo
	err := c.postJSON(ctx, "/audiences/lookalike", createLookalikeRequest{
		Name: name, SourceID: sourceID, Ratio: ratio,
	}, &info)
	return info, err
}

// RegisterSite installs a tracking pixel on a simulated site and returns
// its id.
func (c *Client) RegisterSite(ctx context.Context, domain string, baseRate, genderLoad float64, ageLoad [population.NumAgeRanges]float64, factor int) (int, error) {
	var resp registerSiteResponse
	err := c.postJSON(ctx, "/pixel/sites", registerSiteRequest{
		Domain: domain, BaseRate: baseRate, GenderLoad: genderLoad,
		AgeLoad: ageLoad, Factor: factor,
	}, &resp)
	return resp.SiteID, err
}

// CreatePixelAudience builds a website-activity audience remotely.
func (c *Client) CreatePixelAudience(ctx context.Context, name string, siteID int, event string, windowDays int) (platform.CustomAudienceInfo, error) {
	var info platform.CustomAudienceInfo
	err := c.postJSON(ctx, "/audiences/pixel", createPixelAudienceRequest{
		Name: name, SiteID: siteID, Event: event, WindowDays: windowDays,
	}, &info)
	return info, err
}

// ListAudiences fetches the stored audiences' metadata.
func (c *Client) ListAudiences(ctx context.Context) ([]platform.CustomAudienceInfo, error) {
	out, err := c.do(ctx, http.MethodGet, c.base+"/"+c.name+"/audiences", nil)
	if err != nil {
		return nil, err
	}
	var infos []platform.CustomAudienceInfo
	if err := json.Unmarshal(out, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}
