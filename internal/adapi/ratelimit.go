package adapi

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter. The paper's crawler deliberately
// limited both the count and the rate of its API queries (§5, Ethics); the
// client uses a Limiter for the same purpose, and the server uses one to
// emulate platform-side throttling (429 responses).
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens added per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewLimiter returns a limiter admitting rate requests per second with the
// given burst capacity. A nil Limiter admits everything.
func NewLimiter(rate, burst float64) *Limiter {
	if rate <= 0 {
		panic("adapi: limiter rate must be positive")
	}
	if burst < 1 {
		burst = 1
	}
	l := &Limiter{rate: rate, burst: burst, tokens: burst, now: time.Now}
	l.last = l.now()
	return l
}

// setClock injects a fake clock for tests.
func (l *Limiter) setClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
	l.last = now()
}

// refill adds tokens for elapsed time. Callers hold l.mu.
func (l *Limiter) refill() {
	t := l.now()
	elapsed := t.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = t
	}
}

// Allow reports whether a request may proceed now, consuming a token if so.
func (l *Limiter) Allow() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill()
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// reserve consumes a token, returning how long the caller must wait before
// honouring it.
func (l *Limiter) reserve() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill()
	l.tokens--
	if l.tokens >= 0 {
		return 0
	}
	return time.Duration(-l.tokens / l.rate * float64(time.Second))
}

// ErrLimiterNil is returned by Wait on a nil limiter context cancellation.
var errWaitCancelled = errors.New("adapi: rate-limit wait cancelled")

// Wait blocks until a token is available or the context is done.
func (l *Limiter) Wait(ctx context.Context) error {
	if l == nil {
		return nil
	}
	d := l.reserve()
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return errors.Join(errWaitCancelled, ctx.Err())
	}
}
