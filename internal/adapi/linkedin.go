package adapi

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// linkedInCodec speaks the audienceCounts dialect: an and-of-ors targeting
// criteria tree whose facets are URN-keyed lists. Gender and age are
// ordinary facets (LinkedIn has no separate demographic dimension — paper §3
// footnote 4), which is exactly how Class conditioning reaches the wire.
type linkedInCodec struct{}

// LinkedIn facet URNs.
const (
	liFacetAttribute = "urn:li:adTargetingFacet:attributes"
	liFacetGender    = "urn:li:adTargetingFacet:genders"
	liFacetAge       = "urn:li:adTargetingFacet:ageRanges"
	liFacetAudience  = "urn:li:adTargetingFacet:audienceMatchingSegments"
	liFacetLocation  = "urn:li:adTargetingFacet:locations"
)

// liOrTerm is one or-term: facet URN → member URN list.
type liOrTerm struct {
	Or map[string][]string `json:"or"`
}

// liCriteria is the and-of-ors tree.
type liCriteria struct {
	And []liOrTerm `json:"and,omitempty"`
}

// liRequest is the audienceCounts request body.
type liRequest struct {
	Include   *liCriteria `json:"include,omitempty"`
	Exclude   *liCriteria `json:"exclude,omitempty"`
	Objective string      `json:"objectiveType,omitempty"`
}

// liResponse is the audienceCounts response body.
type liResponse struct {
	Elements []struct {
		Total int64 `json:"total"`
	} `json:"elements"`
}

func (linkedInCodec) Platform() string { return catalog.PlatformLinkedIn }

// liGenderURNs maps gender IDs to member URNs.
var liGenderURNs = []string{"urn:li:gender:MALE", "urn:li:gender:FEMALE"}

// liAgeURNs maps age-range IDs to member URNs.
var liAgeURNs = []string{
	"urn:li:ageRange:(18,24)",
	"urn:li:ageRange:(25,34)",
	"urn:li:ageRange:(35,54)",
	"urn:li:ageRange:(55,2147483647)",
}

// liObjectives maps objectives to LinkedIn objective types.
var liObjectives = map[platform.Objective]string{
	platform.ObjectiveBrandAwareness: "BRAND_AWARENESS",
	platform.ObjectiveTraffic:        "WEBSITE_VISIT",
}

// refToURN renders a ref as (facet, member URN).
func refToURN(r targeting.Ref) (facet, urn string, err error) {
	switch r.Kind {
	case targeting.KindAttribute:
		return liFacetAttribute, fmt.Sprintf("urn:li:attribute:%d", r.ID), nil
	case targeting.KindGender:
		if r.ID < 0 || r.ID >= len(liGenderURNs) {
			return "", "", fmt.Errorf("%w: gender %d", targeting.ErrInvalidDemoValue, r.ID)
		}
		return liFacetGender, liGenderURNs[r.ID], nil
	case targeting.KindAge:
		if r.ID < 0 || r.ID >= len(liAgeURNs) {
			return "", "", fmt.Errorf("%w: age %d", targeting.ErrInvalidDemoValue, r.ID)
		}
		return liFacetAge, liAgeURNs[r.ID], nil
	case targeting.KindCustomAudience:
		return liFacetAudience, fmt.Sprintf("urn:li:matchedAudience:%d", r.ID), nil
	case targeting.KindLocation:
		code, err := regionCode(r.ID)
		if err != nil {
			return "", "", err
		}
		return liFacetLocation, "urn:li:geo:" + code, nil
	default:
		return "", "", fmt.Errorf("%w: %s", targeting.ErrKindForbidden, r)
	}
}

// urnToRef parses a member URN under a facet back into a ref.
func urnToRef(facet, urn string) (targeting.Ref, error) {
	switch facet {
	case liFacetAudience:
		const aPrefix = "urn:li:matchedAudience:"
		if !strings.HasPrefix(urn, aPrefix) {
			return targeting.Ref{}, fmt.Errorf("adapi: bad audience urn %q", urn)
		}
		id, err := strconv.Atoi(urn[len(aPrefix):])
		if err != nil {
			return targeting.Ref{}, fmt.Errorf("adapi: bad audience urn %q: %w", urn, err)
		}
		return targeting.Ref{Kind: targeting.KindCustomAudience, ID: id}, nil
	case liFacetLocation:
		const gPrefix = "urn:li:geo:"
		if !strings.HasPrefix(urn, gPrefix) {
			return targeting.Ref{}, fmt.Errorf("adapi: bad geo urn %q", urn)
		}
		id, err := regionFromCode(urn[len(gPrefix):])
		if err != nil {
			return targeting.Ref{}, err
		}
		return targeting.Ref{Kind: targeting.KindLocation, ID: id}, nil
	case liFacetAttribute:
		const prefix = "urn:li:attribute:"
		if !strings.HasPrefix(urn, prefix) {
			return targeting.Ref{}, fmt.Errorf("adapi: bad attribute urn %q", urn)
		}
		id, err := strconv.Atoi(urn[len(prefix):])
		if err != nil {
			return targeting.Ref{}, fmt.Errorf("adapi: bad attribute urn %q: %w", urn, err)
		}
		return targeting.Ref{Kind: targeting.KindAttribute, ID: id}, nil
	case liFacetGender:
		for i, u := range liGenderURNs {
			if u == urn {
				return targeting.Ref{Kind: targeting.KindGender, ID: i}, nil
			}
		}
	case liFacetAge:
		for i, u := range liAgeURNs {
			if u == urn {
				return targeting.Ref{Kind: targeting.KindAge, ID: i}, nil
			}
		}
	}
	return targeting.Ref{}, fmt.Errorf("adapi: unknown urn %q under facet %q", urn, facet)
}

// encodeCriteria renders clauses as an and-of-ors tree.
func encodeCriteria(clauses []targeting.Clause) (*liCriteria, error) {
	if len(clauses) == 0 {
		return nil, nil
	}
	out := &liCriteria{}
	for _, cl := range clauses {
		if len(cl) == 0 {
			return nil, targeting.ErrEmptyClause
		}
		term := liOrTerm{Or: make(map[string][]string)}
		kind := cl[0].Kind
		for _, r := range cl {
			if r.Kind != kind {
				return nil, targeting.ErrMixedClause
			}
			facet, urn, err := refToURN(r)
			if err != nil {
				return nil, err
			}
			term.Or[facet] = append(term.Or[facet], urn)
		}
		out.And = append(out.And, term)
	}
	return out, nil
}

// decodeCriteria parses an and-of-ors tree into clauses.
func decodeCriteria(c *liCriteria) ([]targeting.Clause, error) {
	if c == nil {
		return nil, nil
	}
	var out []targeting.Clause
	for _, term := range c.And {
		var cl targeting.Clause
		for facet, urns := range term.Or {
			for _, urn := range urns {
				r, err := urnToRef(facet, urn)
				if err != nil {
					return nil, err
				}
				cl = append(cl, r)
			}
		}
		out = append(out, cl)
	}
	return out, nil
}

// EncodeRequest implements Codec.
func (linkedInCodec) EncodeRequest(req platform.EstimateRequest) ([]byte, error) {
	inc, err := encodeCriteria(req.Spec.Include)
	if err != nil {
		return nil, err
	}
	exc, err := encodeCriteria(req.Spec.Exclude)
	if err != nil {
		return nil, err
	}
	obj := ""
	if req.Objective != "" {
		var ok bool
		obj, ok = liObjectives[req.Objective]
		if !ok {
			return nil, fmt.Errorf("%w: %q", platform.ErrUnknownObjective, req.Objective)
		}
	}
	return json.Marshal(liRequest{Include: inc, Exclude: exc, Objective: obj})
}

// DecodeRequest implements Codec.
func (linkedInCodec) DecodeRequest(body []byte) (platform.EstimateRequest, error) {
	var req liRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return platform.EstimateRequest{}, fmt.Errorf("adapi: malformed linkedin request: %w", err)
	}
	inc, err := decodeCriteria(req.Include)
	if err != nil {
		return platform.EstimateRequest{}, err
	}
	exc, err := decodeCriteria(req.Exclude)
	if err != nil {
		return platform.EstimateRequest{}, err
	}
	out := platform.EstimateRequest{Spec: targeting.Spec{Include: inc, Exclude: exc}}
	switch req.Objective {
	case "":
	case "BRAND_AWARENESS":
		out.Objective = platform.ObjectiveBrandAwareness
	case "WEBSITE_VISIT":
		out.Objective = platform.ObjectiveTraffic
	default:
		return platform.EstimateRequest{}, fmt.Errorf("%w: %q", platform.ErrUnknownObjective, req.Objective)
	}
	return out, nil
}

// EncodeResponse implements Codec.
func (linkedInCodec) EncodeResponse(size int64) ([]byte, error) {
	var resp liResponse
	resp.Elements = append(resp.Elements, struct {
		Total int64 `json:"total"`
	}{Total: size})
	return json.Marshal(resp)
}

// DecodeResponse implements Codec.
func (linkedInCodec) DecodeResponse(body []byte) (int64, error) {
	var resp liResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return 0, fmt.Errorf("adapi: malformed linkedin response: %w", err)
	}
	if len(resp.Elements) != 1 {
		return 0, fmt.Errorf("adapi: linkedin response has %d elements", len(resp.Elements))
	}
	return resp.Elements[0].Total, nil
}
