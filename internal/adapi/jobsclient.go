package adapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/jobs"
)

// JobsClient drives a platformd's async audit-job service (the /jobs API
// mounted in -jobs mode): submit a spec, poll or stream its progress, fetch
// results, cancel. It is deliberately transport-thin — retries and rate
// limiting belong to the measurement path, not the control plane.
type JobsClient struct {
	base string
	hc   *http.Client
}

// NewJobsClient connects to the job service at baseURL (the same address
// as the measurement API). A nil client selects one without a timeout:
// Watch holds a streaming response open for the job's whole runtime, so
// per-request deadlines must come from the context instead.
func NewJobsClient(baseURL string, hc *http.Client) *JobsClient {
	if hc == nil {
		hc = &http.Client{}
	}
	return &JobsClient{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// do issues one control-plane request and decodes the error envelope on
// non-2xx statuses.
func (c *JobsClient) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return nil, decodeErrorEnvelope(resp.StatusCode, data)
	}
	return resp, nil
}

// decode reads and closes a JSON response body.
func decodeJobsBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit enqueues one audit job and returns its queued snapshot (with the
// service-assigned ID).
func (c *JobsClient) Submit(ctx context.Context, spec jobs.Spec) (jobs.Job, error) {
	resp, err := c.do(ctx, http.MethodPost, "/jobs", spec)
	if err != nil {
		return jobs.Job{}, err
	}
	var j jobs.Job
	if err := decodeJobsBody(resp, &j); err != nil {
		return jobs.Job{}, fmt.Errorf("adapi: decoding job: %w", err)
	}
	return j, nil
}

// Get fetches one job's snapshot: state, per-phase results, live progress.
func (c *JobsClient) Get(ctx context.Context, id string) (jobs.Job, error) {
	resp, err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil)
	if err != nil {
		return jobs.Job{}, err
	}
	var j jobs.Job
	if err := decodeJobsBody(resp, &j); err != nil {
		return jobs.Job{}, fmt.Errorf("adapi: decoding job: %w", err)
	}
	return j, nil
}

// List fetches every job the service knows, in submission order.
func (c *JobsClient) List(ctx context.Context) ([]jobs.Job, error) {
	resp, err := c.do(ctx, http.MethodGet, "/jobs", nil)
	if err != nil {
		return nil, err
	}
	var js []jobs.Job
	if err := decodeJobsBody(resp, &js); err != nil {
		return nil, fmt.Errorf("adapi: decoding job list: %w", err)
	}
	return js, nil
}

// Cancel requests cancellation; cancelling a terminal job is a no-op.
func (c *JobsClient) Cancel(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Watch streams a job's NDJSON events, invoking fn per event (nil fn just
// waits), until the job goes terminal, the stream ends, or ctx is
// cancelled. It returns the job's final snapshot. Progress ticks are
// advisory — a slow network drops them, never the terminal state.
func (c *JobsClient) Watch(ctx context.Context, id string, fn func(jobs.Event)) (jobs.Job, error) {
	resp, err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/events", nil)
	if err != nil {
		return jobs.Job{}, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			resp.Body.Close()
			return jobs.Job{}, fmt.Errorf("adapi: decoding job event: %w", err)
		}
		if fn != nil {
			fn(ev)
		}
		if ev.Type == jobs.EventState && ev.State.Terminal() {
			break
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return jobs.Job{}, fmt.Errorf("adapi: job event stream: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return jobs.Job{}, err
	}
	return c.Get(ctx, id)
}
