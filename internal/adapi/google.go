package adapi

import (
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/catalog"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// googleCodec speaks the obfuscated reach-estimate dialect: bodies are JSON
// keyed by opaque numeric strings and the estimate itself travels as a
// decimal string. The field meanings below are the mapping an auditor
// recovers by varying one targeting option at a time and diffing requests
// (paper §3: "by manually varying the targeting options systematically, we
// find a mapping between the targeting options and particular keys and
// values in the obfuscated json"):
//
//	"1"        campaign envelope
//	"1"."2"    targeting
//	"1"."2"."3"  attribute OR-groups (lists of option ids)
//	"1"."2"."4"  topic OR-groups
//	"1"."2"."6"  genders (1 = male, 2 = female)
//	"1"."2"."7"  age brackets as [min, max] pairs (max 0 = unbounded)
//	"1"."2"."9"  exclusions {"3": attr groups, "4": topic groups}
//	"1"."2"."8"  geo criterion groups (region ids)
//	"1"."2"."12" managed-placement groups (publisher-site ids)
//	"1"."2"."11" custom-audience (customer-match) groups
//	"1"."5"    per-user monthly frequency cap
//	"1"."10"   campaign objective enum (1 = display reach, 2 = traffic)
//
// Response: {"1": {"2": "<estimate as decimal string>"}}.
type googleCodec struct{}

type gExclude struct {
	Attrs  [][]int `json:"3,omitempty"`
	Topics [][]int `json:"4,omitempty"`
}

type gTargeting struct {
	Attrs      [][]int   `json:"3,omitempty"`
	Topics     [][]int   `json:"4,omitempty"`
	Genders    []int     `json:"6,omitempty"`
	Ages       [][2]int  `json:"7,omitempty"`
	Exclude    *gExclude `json:"9,omitempty"`
	Audiences  [][]int   `json:"11,omitempty"` // customer-match lists
	Locations  [][]int   `json:"8,omitempty"`  // geo criterion groups
	Placements [][]int   `json:"12,omitempty"` // managed placements
}

type gCampaign struct {
	Targeting gTargeting `json:"2"`
	FreqCap   int        `json:"5,omitempty"`
	Objective int        `json:"10,omitempty"`
}

type gRequest struct {
	Campaign gCampaign `json:"1"`
}

type gResult struct {
	Estimate string `json:"2"`
}

type gResponse struct {
	Result gResult `json:"1"`
}

func (googleCodec) Platform() string { return catalog.PlatformGoogle }

// Google objective enum values.
const (
	gObjectiveDisplayReach = 1
	gObjectiveTraffic      = 2
)

// EncodeRequest implements Codec.
func (googleCodec) EncodeRequest(req platform.EstimateRequest) ([]byte, error) {
	byKind, err := splitClauses(req.Spec.Include)
	if err != nil {
		return nil, err
	}
	var t gTargeting
	for _, cl := range byKind[targeting.KindAttribute] {
		t.Attrs = append(t.Attrs, clauseIDs(cl))
	}
	for _, cl := range byKind[targeting.KindTopic] {
		t.Topics = append(t.Topics, clauseIDs(cl))
	}
	for _, cl := range byKind[targeting.KindCustomAudience] {
		t.Audiences = append(t.Audiences, clauseIDs(cl))
	}
	for _, cl := range byKind[targeting.KindLocation] {
		t.Locations = append(t.Locations, clauseIDs(cl))
	}
	for _, cl := range byKind[targeting.KindPlacement] {
		t.Placements = append(t.Placements, clauseIDs(cl))
	}
	for _, cl := range byKind[targeting.KindGender] {
		for _, id := range clauseIDs(cl) {
			t.Genders = append(t.Genders, id+1)
		}
	}
	for _, cl := range byKind[targeting.KindAge] {
		for _, id := range clauseIDs(cl) {
			if id < 0 || id >= len(ageBounds) {
				return nil, fmt.Errorf("%w: age range %d", targeting.ErrInvalidDemoValue, id)
			}
			t.Ages = append(t.Ages, [2]int{ageBounds[id][0], ageBounds[id][1]})
		}
	}
	if len(req.Spec.Exclude) > 0 {
		exByKind, err := splitClauses(req.Spec.Exclude)
		if err != nil {
			return nil, err
		}
		ex := &gExclude{}
		for k, cls := range exByKind {
			switch k {
			case targeting.KindAttribute:
				for _, cl := range cls {
					ex.Attrs = append(ex.Attrs, clauseIDs(cl))
				}
			case targeting.KindTopic:
				for _, cl := range cls {
					ex.Topics = append(ex.Topics, clauseIDs(cl))
				}
			default:
				return nil, fmt.Errorf("%w: google exclusions accept attributes and topics only", targeting.ErrKindForbidden)
			}
		}
		t.Exclude = ex
	}
	c := gCampaign{Targeting: t, FreqCap: req.FrequencyCapPerMonth}
	switch req.Objective {
	case "":
	case platform.ObjectiveBrandAwarenessReach:
		c.Objective = gObjectiveDisplayReach
	case platform.ObjectiveTraffic:
		c.Objective = gObjectiveTraffic
	default:
		return nil, fmt.Errorf("%w: %q", platform.ErrUnknownObjective, req.Objective)
	}
	return json.Marshal(gRequest{Campaign: c})
}

// DecodeRequest implements Codec.
func (googleCodec) DecodeRequest(body []byte) (platform.EstimateRequest, error) {
	var req gRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return platform.EstimateRequest{}, fmt.Errorf("adapi: malformed google request: %w", err)
	}
	t := req.Campaign.Targeting
	var spec targeting.Spec
	for _, ids := range t.Attrs {
		spec.Include = append(spec.Include, clauseOf(targeting.KindAttribute, ids))
	}
	for _, ids := range t.Topics {
		spec.Include = append(spec.Include, clauseOf(targeting.KindTopic, ids))
	}
	for _, ids := range t.Audiences {
		spec.Include = append(spec.Include, clauseOf(targeting.KindCustomAudience, ids))
	}
	for _, ids := range t.Locations {
		spec.Include = append(spec.Include, clauseOf(targeting.KindLocation, ids))
	}
	for _, ids := range t.Placements {
		spec.Include = append(spec.Include, clauseOf(targeting.KindPlacement, ids))
	}
	if len(t.Genders) > 0 {
		var cl targeting.Clause
		for _, g := range t.Genders {
			cl = append(cl, targeting.Ref{Kind: targeting.KindGender, ID: g - 1})
		}
		spec.Include = append(spec.Include, cl)
	}
	if len(t.Ages) > 0 {
		var cl targeting.Clause
		for _, a := range t.Ages {
			id, err := ageRangeFromBounds(a[0], a[1])
			if err != nil {
				return platform.EstimateRequest{}, err
			}
			cl = append(cl, targeting.Ref{Kind: targeting.KindAge, ID: id})
		}
		spec.Include = append(spec.Include, cl)
	}
	if ex := t.Exclude; ex != nil {
		for _, ids := range ex.Attrs {
			spec.Exclude = append(spec.Exclude, clauseOf(targeting.KindAttribute, ids))
		}
		for _, ids := range ex.Topics {
			spec.Exclude = append(spec.Exclude, clauseOf(targeting.KindTopic, ids))
		}
	}
	out := platform.EstimateRequest{Spec: spec, FrequencyCapPerMonth: req.Campaign.FreqCap}
	switch req.Campaign.Objective {
	case 0:
	case gObjectiveDisplayReach:
		out.Objective = platform.ObjectiveBrandAwarenessReach
	case gObjectiveTraffic:
		out.Objective = platform.ObjectiveTraffic
	default:
		return platform.EstimateRequest{}, fmt.Errorf("%w: enum %d", platform.ErrUnknownObjective, req.Campaign.Objective)
	}
	return out, nil
}

// EncodeResponse implements Codec.
func (googleCodec) EncodeResponse(size int64) ([]byte, error) {
	return json.Marshal(gResponse{Result: gResult{Estimate: strconv.FormatInt(size, 10)}})
}

// DecodeResponse implements Codec.
func (googleCodec) DecodeResponse(body []byte) (int64, error) {
	var resp gResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return 0, fmt.Errorf("adapi: malformed google response: %w", err)
	}
	v, err := strconv.ParseInt(resp.Result.Estimate, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("adapi: google estimate %q is not a number: %w", resp.Result.Estimate, err)
	}
	return v, nil
}
