package adapi

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/platform"
)

// ClusterSpec describes a sharded deployment to audit from outside: the
// shard map plus the layout parameters every node was started with. Every
// consumer of a "-cluster name=url,..." flag (adauditctl, the job service)
// resolves it through NewClusterCoordinator so the parsing and the
// layout-agreement rules live in one place.
type ClusterSpec struct {
	// Shards is the comma-separated name=url shard map, e.g.
	// "a=http://h1:8700,b=http://h2:8700".
	Shards string
	// Replicas is the replica owners per partition beyond the primary.
	Replicas int
	// PartitionSize is the users per ring partition (0 = default).
	PartitionSize int
	// Universe is the global simulated users per platform.
	Universe int
	// Seed is the deployment seed every shard was started with.
	Seed uint64
}

// NewClusterCoordinator parses the shard map and assembles the
// scatter-gather coordinator. Every shard must have been started with the
// same ring node list, seed, universe, and partition size, or the
// merge-then-round invariant (and the counts) would silently break.
func NewClusterCoordinator(spec ClusterSpec) (*cluster.Coordinator, error) {
	var nodes []string
	urls := make(map[string]string)
	for _, part := range strings.Split(spec.Shards, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("adapi: cluster entry %q is not name=url", part)
		}
		if _, dup := urls[name]; dup {
			return nil, fmt.Errorf("adapi: cluster names shard %q twice", name)
		}
		nodes = append(nodes, name)
		urls[name] = url
	}
	ring, err := cluster.NewRing(nodes, 0, spec.Replicas)
	if err != nil {
		return nil, err
	}
	layout, err := cluster.NewLayout(ring, spec.Universe, spec.PartitionSize)
	if err != nil {
		return nil, err
	}
	conns := make([]cluster.Conn, 0, len(nodes))
	for _, n := range nodes {
		conns = append(conns, NewShardConn(n, urls[n], nil))
	}
	return cluster.NewCoordinator(cluster.Options{
		Layout: layout,
		Conns:  conns,
		Deploy: platform.DeployOptions{Seed: spec.Seed, UniverseSize: spec.Universe},
	})
}
