package adapi

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/targeting"
)

func TestNewClusterCoordinatorErrors(t *testing.T) {
	base := ClusterSpec{Universe: 6000, Seed: 5}
	for name, shards := range map[string]string{
		"missing equals": "a=http://h1,borken",
		"empty name":     "=http://h1",
		"empty url":      "a=",
		"duplicate name": "a=http://h1,a=http://h2",
		"no shards":      " , ",
	} {
		spec := base
		spec.Shards = shards
		if _, err := NewClusterCoordinator(spec); err == nil {
			t.Errorf("%s (%q): accepted", name, shards)
		}
	}
	// Layout errors propagate too: a universe below one partition.
	if _, err := NewClusterCoordinator(ClusterSpec{
		Shards: "a=http://h1", Universe: -1, Seed: 5,
	}); err == nil {
		t.Error("negative universe accepted")
	}
}

// The one shared resolver of "-cluster name=url,...": a coordinator built
// from the flag string must measure bit-identically to a single-node
// deployment of the same sizing.
func TestNewClusterCoordinatorEndToEnd(t *testing.T) {
	const (
		size     = 6000
		partSize = 1024
		seed     = 5
	)
	nodes := []string{"a", "b"}
	ring, err := cluster.NewRing(nodes, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := cluster.NewLayout(ring, size, partSize)
	if err != nil {
		t.Fatal(err)
	}
	dopts := platform.DeployOptions{Seed: seed, UniverseSize: size, Metrics: obs.NewRegistry()}
	entries := make([]string, 0, len(nodes))
	for _, n := range nodes {
		s, err := cluster.NewShard(n, layout, dopts)
		if err != nil {
			t.Fatal(err)
		}
		ts := startShardServer(t, s)
		entries = append(entries, n+"="+ts.URL)
	}

	coord, err := NewClusterCoordinator(ClusterSpec{
		Shards:        strings.Join(entries, ","),
		Replicas:      1,
		PartitionSize: partSize,
		Universe:      size,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	single, err := platform.NewDeployment(dopts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := single.ByName(catalog.PlatformLinkedIn)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := coord.Provider(catalog.PlatformLinkedIn)
	if err != nil {
		t.Fatal(err)
	}
	spec := targeting.Attr(0)
	got, err := prov.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Measure(platform.EstimateRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cluster measured %d, single node %d", got, want)
	}
}
