package adapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// ClientOptions configures an API client.
type ClientOptions struct {
	// HTTPClient is the transport; nil selects a client with a 30 s timeout.
	HTTPClient *http.Client
	// RateLimit is the client-side query rate in queries per second
	// (0 disables — the paper's crawler always rate-limited itself).
	RateLimit float64
	// Burst is the rate-limit burst capacity.
	Burst float64
	// MaxRetries bounds retries on 429 and 5xx responses. Zero selects 4.
	MaxRetries int
	// RetryBase is the initial backoff; zero selects 50 ms. Backoff doubles
	// per attempt and honours Retry-After when present.
	RetryBase time.Duration
	// Metrics receives the client's request metrics; nil selects the
	// process-wide obs.Default() registry.
	Metrics *obs.Registry
}

// Client automates one platform interface's estimate API, implementing
// core.Provider so the audit methodology runs unchanged over the network.
type Client struct {
	base    string
	name    string
	codec   Codec
	hc      *http.Client
	limiter *Limiter
	opts    ClientOptions

	attrs        []string
	topics       []string
	crossFeature bool

	// sleep blocks between retry attempts; tests inject a fake clock here
	// to assert the backoff schedule without waiting it out.
	sleep func(ctx context.Context, d time.Duration) error

	mRequests   *obs.Histogram // adapi_client_request_seconds: one HTTP attempt
	mRetries    *obs.Counter   // adapi_client_retries_total: re-issued attempts
	m429        *obs.Counter   // adapi_client_429_total: throttled responses
	m5xx        *obs.Counter   // adapi_client_5xx_total: upstream failures
	mRetryAfter *obs.Counter   // adapi_client_retry_after_total: honored headers
	mBackoff    *obs.Histogram // adapi_client_backoff_seconds: waits between attempts
}

// NewClient connects to an adapi server at baseURL (e.g.
// "http://127.0.0.1:8700") and prepares a provider for the named interface.
// The option lists are fetched eagerly, mirroring the paper's initial crawl
// of the targeting UI's default lists.
func NewClient(ctx context.Context, baseURL, name string, opts ClientOptions) (*Client, error) {
	codec, err := CodecFor(name)
	if err != nil {
		return nil, err
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 4
	}
	if opts.RetryBase == 0 {
		opts.RetryBase = 50 * time.Millisecond
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	lbl := obs.L("platform", name)
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		name:        name,
		codec:       codec,
		hc:          opts.HTTPClient,
		opts:        opts,
		sleep:       sleepContext,
		mRequests:   reg.Histogram("adapi_client_request_seconds", lbl),
		mRetries:    reg.Counter("adapi_client_retries_total", lbl),
		m429:        reg.Counter("adapi_client_429_total", lbl),
		m5xx:        reg.Counter("adapi_client_5xx_total", lbl),
		mRetryAfter: reg.Counter("adapi_client_retry_after_total", lbl),
		mBackoff:    reg.Histogram("adapi_client_backoff_seconds", lbl),
	}
	if opts.RateLimit > 0 {
		c.limiter = NewLimiter(opts.RateLimit, opts.Burst)
	}
	if err := c.fetchOptions(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// fetchOptions loads the interface's option lists.
func (c *Client) fetchOptions(ctx context.Context) error {
	body, err := c.do(ctx, http.MethodGet, c.base+"/"+c.name+"/options", nil)
	if err != nil {
		return fmt.Errorf("fetching options: %w", err)
	}
	var resp optionsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return fmt.Errorf("adapi: malformed options response: %w", err)
	}
	if resp.Platform != c.name {
		return fmt.Errorf("adapi: options for %q, want %q", resp.Platform, c.name)
	}
	c.attrs = resp.Attributes
	c.topics = resp.Topics
	c.crossFeature = resp.CrossFeature
	return nil
}

// Name implements core.Provider.
func (c *Client) Name() string { return c.name }

// AttributeNames implements core.Provider.
func (c *Client) AttributeNames() []string { return c.attrs }

// TopicNames implements core.Provider.
func (c *Client) TopicNames() []string { return c.topics }

// CrossFeature implements core.Provider.
func (c *Client) CrossFeature() bool { return c.crossFeature }

// Measure implements core.Provider: one auditor-door size query.
func (c *Client) Measure(spec targeting.Spec) (int64, error) {
	return c.MeasureContext(context.Background(), spec)
}

// MeasureContext is Measure with caller-controlled cancellation. When the
// context carries a trace span the exchange is recorded as a child span and
// the trace rides the X-Adaudit-Trace header to the server, which continues
// it — one trace spans both processes.
func (c *Client) MeasureContext(ctx context.Context, spec targeting.Spec) (int64, error) {
	return c.size(ctx, "/measure", platform.EstimateRequest{Spec: spec})
}

// MeasureCtx implements core.ContextMeasurer.
func (c *Client) MeasureCtx(ctx context.Context, spec targeting.Spec) (int64, error) {
	return c.MeasureContext(ctx, spec)
}

// Estimate queries the advertiser door, validating the spec as an
// advertiser submission.
func (c *Client) Estimate(ctx context.Context, req platform.EstimateRequest) (int64, error) {
	return c.size(ctx, "/estimate", req)
}

// size issues one dialect-encoded size query.
func (c *Client) size(ctx context.Context, door string, req platform.EstimateRequest) (int64, error) {
	span := trace.ChildOf(trace.FromContext(ctx), "adapi.client")
	if span != nil {
		defer span.End()
		span.Annotate("endpoint", c.base)
		span.Annotate("door", door)
		ctx = trace.NewContext(ctx, span)
	}
	body, err := c.codec.EncodeRequest(req)
	if err != nil {
		span.SetError(err)
		return 0, err
	}
	respBody, err := c.do(ctx, http.MethodPost, c.base+"/"+c.name+door, body)
	if err != nil {
		span.SetError(err)
		return 0, err
	}
	v, err := c.codec.DecodeResponse(respBody)
	span.SetError(err)
	if err == nil {
		if plog := span.ProvenanceLog(); plog != nil {
			plog.Add(trace.Provenance{
				Platform: c.name,
				Key:      targeting.Canonical(req.Spec),
				Source:   "remote",
				Endpoint: c.base,
				TraceID:  span.TraceID(),
				Value:    v,
			})
		}
	}
	return v, err
}

// do performs one HTTP exchange with rate limiting and bounded retries on
// 429/5xx. A trace span riding the context is propagated to the server in
// the X-Adaudit-Trace header, and each attempt's latency observation carries
// the trace ID as an exemplar.
func (c *Client) do(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	span := trace.FromContext(ctx)
	header := span.Context().Format()
	exID := "" // exemplars link only to traces the buffer actually records
	if span.Sampled() {
		exID = span.TraceID()
	}
	backoff := c.opts.RetryBase
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.mRetries.Inc()
			span.AnnotateInt("retries", int64(attempt))
		}
		if err := c.limiter.Wait(ctx); err != nil {
			return nil, err
		}
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, reader)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if header != "" {
			req.Header.Set(trace.HeaderName, header)
		}
		start := time.Now()
		resp, err := c.hc.Do(req)
		if err != nil {
			c.mRequests.ObserveWithExemplar(time.Since(start), exID)
			lastErr = err
		} else {
			respBody, readErr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			resp.Body.Close()
			c.mRequests.ObserveWithExemplar(time.Since(start), exID)
			if readErr != nil {
				lastErr = readErr
			} else {
				switch {
				case resp.StatusCode == http.StatusOK:
					return respBody, nil
				case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
					if resp.StatusCode == http.StatusTooManyRequests {
						c.m429.Inc()
					} else {
						c.m5xx.Inc()
					}
					lastErr = fmt.Errorf("adapi: server returned %d", resp.StatusCode)
					if d := retryAfter(resp); d > 0 {
						c.mRetryAfter.Inc()
						if d > backoff {
							backoff = d
						}
					}
				default:
					return nil, decodeErrorEnvelope(resp.StatusCode, respBody)
				}
			}
		}
		if attempt == c.opts.MaxRetries {
			break
		}
		c.mBackoff.Observe(backoff)
		if err := c.sleep(ctx, backoff); err != nil {
			return nil, err
		}
		backoff *= 2
	}
	return nil, fmt.Errorf("adapi: giving up after %d attempts: %w", c.opts.MaxRetries+1, lastErr)
}

// sleepContext blocks for d or until the context is done.
func sleepContext(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfter parses a Retry-After header as seconds.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	var secs float64
	if _, err := fmt.Sscanf(v, "%f", &secs); err != nil || secs <= 0 || math.IsNaN(secs) {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

// decodeErrorEnvelope reconstructs a typed error from an error body.
func decodeErrorEnvelope(status int, body []byte) error {
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		return fmt.Errorf("adapi: server returned %d: %s", status, string(body))
	}
	return errorFromCode(env.Error.Code, env.Error.Message)
}
