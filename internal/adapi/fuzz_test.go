package adapi

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// Fuzzing the decoders: whatever bytes arrive on the wire, DecodeRequest
// and DecodeResponse must return an error or a value — never panic — and a
// successfully decoded request must survive re-encode → re-decode
// unchanged (decode is a retraction of encode).

// seedBodies provides representative valid and broken bodies per dialect.
func seedBodies(t interface{ Helper() }, name string) [][]byte {
	c, err := CodecFor(name)
	if err != nil {
		panic(err)
	}
	var seeds [][]byte
	for _, req := range []platform.EstimateRequest{
		{Spec: targeting.Attr(1)},
		{Spec: targeting.And(targeting.AnyAttr(1, 2), targeting.Attr(3))},
		{Spec: targeting.WithAge(targeting.WithGender(targeting.Attr(0), 1), 0, 3)},
		{Spec: targeting.Excluding(targeting.Attr(5), targeting.AnyAttr(6, 7))},
		{Spec: targeting.And(targeting.CustomAudience(2), targeting.Attr(9))},
		// Deep AND compositions and broad exclusions drive audiences toward
		// the reporting floors (Facebook 1,000 / LinkedIn 300), where the
		// rounding and floor paths in the codecs and platforms diverge most.
		{Spec: targeting.And(targeting.Attr(0), targeting.Attr(1), targeting.Attr(2), targeting.Attr(3), targeting.Attr(4))},
		{Spec: targeting.WithGender(targeting.Excluding(targeting.Attr(0), targeting.AnyAttr(1, 2, 3, 4, 5)), 0)},
		{Spec: targeting.WithAge(targeting.And(targeting.Attr(7), targeting.Attr(8)), 3)},
	} {
		if body, err := c.EncodeRequest(req); err == nil {
			seeds = append(seeds, body)
		}
	}
	seeds = append(seeds,
		[]byte("{}"),
		[]byte("[]"),
		[]byte("{\"targeting_spec\":null}"),
		[]byte("{\"1\":{\"2\":{\"3\":[[1,2]],\"7\":[[19,22]]}}}"),
		[]byte("not json at all"),
		[]byte("{\"include\":{\"and\":[{\"or\":{\"bogus\":[\"urn:li:attribute:x\"]}}]}}"),
	)
	return seeds
}

// fuzzDecode drives one codec's request decoder.
func fuzzDecode(f *testing.F, name string) {
	for _, s := range seedBodies(f, name) {
		f.Add(s)
	}
	codec, err := CodecFor(name)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := codec.DecodeRequest(body)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		// Round-trip stability: re-encode and re-decode must preserve the
		// canonical spec. Encoding may legitimately reject specs the wire
		// cannot express (e.g. decoded demographic values out of range).
		body2, err := codec.EncodeRequest(req)
		if err != nil {
			return
		}
		req2, err := codec.DecodeRequest(body2)
		if err != nil {
			t.Fatalf("re-decode failed: %v\nbody: %s", err, body2)
		}
		if targeting.Canonical(req.Spec) != targeting.Canonical(req2.Spec) {
			t.Fatalf("round trip changed spec:\n in: %s\nout: %s",
				targeting.Canonical(req.Spec), targeting.Canonical(req2.Spec))
		}
	})
}

func FuzzFacebookDecodeRequest(f *testing.F) { fuzzDecode(f, catalog.PlatformFacebook) }
func FuzzGoogleDecodeRequest(f *testing.F)   { fuzzDecode(f, catalog.PlatformGoogle) }
func FuzzLinkedInDecodeRequest(f *testing.F) { fuzzDecode(f, catalog.PlatformLinkedIn) }

func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte(`{"data":[{"estimate_mau":1000}]}`))
	f.Add([]byte(`{"1":{"2":"46000"}}`))
	f.Add([]byte(`{"elements":[{"total":300}]}`))
	f.Add([]byte(`garbage`))
	codecs := []string{catalog.PlatformFacebook, catalog.PlatformGoogle, catalog.PlatformLinkedIn}
	// Boundary estimates: just under / at the Facebook (1,000) and LinkedIn
	// (300) reporting floors, zero (a floored audience), the 2-significant-
	// digit rounding edges, and values a dialect may render in shorthand.
	for _, v := range []int64{0, 40, 299, 300, 999, 1000, 1049, 1050, 100000, 104999, 1 << 31} {
		for _, name := range codecs {
			c, err := CodecFor(name)
			if err != nil {
				f.Fatal(err)
			}
			if body, err := c.EncodeResponse(v); err == nil {
				f.Add(body)
			}
		}
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, name := range codecs {
			c, err := CodecFor(name)
			if err != nil {
				t.Fatal(err)
			}
			// Must not panic; error or value both fine.
			if v, err := c.DecodeResponse(body); err == nil {
				// A decoded estimate must re-encode and decode to itself.
				body2, err := c.EncodeResponse(v)
				if err != nil {
					t.Fatalf("%s: re-encode failed: %v", name, err)
				}
				v2, err := c.DecodeResponse(body2)
				if err != nil || v2 != v {
					t.Fatalf("%s: response round trip %d -> %d (%v)", name, v, v2, err)
				}
			}
		}
	})
}
