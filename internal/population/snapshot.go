package population

import (
	"fmt"

	"repro/internal/audience"
)

// UniverseData is the raw per-user state a built universe carries: exactly
// the arrays buildRange draws, nothing derivable from Config. A snapshot
// (internal/snapshot) persists these arrays so a later boot can reconstruct
// the universe with FromData — one linear pass over the arrays, zero hash
// draws — instead of re-running the full generative build.
//
// The slices are shared with the universe they came from; treat them as
// read-only.
type UniverseData struct {
	Cells   []Cell   // per-user demographic cell
	Factors []uint32 // per-user latent-factor bitmask
	Tiers   []uint8  // per-user activity tier
	Regions []uint8  // per-user region
}

// Data exposes the universe's per-user arrays for snapshotting. The slices
// alias the universe's own storage; callers must not modify them.
func (u *Universe) Data() UniverseData {
	return UniverseData{Cells: u.cells, Factors: u.factors, Tiers: u.tiers, Regions: u.regions}
}

// FromData reconstructs the universe build(cfg, spans, …) would produce,
// taking the per-user draws from data instead of re-hashing them. The
// resulting universe is indistinguishable from a built one — same config
// defaults, same derived factor-rate tables, same demographic bitsets
// (rebuilt from the cell/region arrays in one pass) — so Materialize and
// every accessor behave identically. data must describe exactly the users
// the spans select, in local index order; pass nil spans for a full
// universe. The arrays are retained, not copied.
func FromData(cfg Config, spans []Span, data UniverseData) (*Universe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validateSpans(cfg.Size, spans); err != nil {
		return nil, err
	}
	if cfg.ScaleFactor == 0 {
		cfg.ScaleFactor = 1
	}
	if cfg.USShare == 0 {
		cfg.USShare = 1
	}
	localSize := cfg.Size
	if spans != nil {
		localSize = 0
		for _, s := range spans {
			localSize += s.Len()
		}
	}
	if len(data.Cells) != localSize || len(data.Factors) != localSize ||
		len(data.Tiers) != localSize || len(data.Regions) != localSize {
		return nil, fmt.Errorf("population: data arrays hold %d/%d/%d/%d users, spans select %d",
			len(data.Cells), len(data.Factors), len(data.Tiers), len(data.Regions), localSize)
	}
	factorLimit := uint32(0)
	if n := len(cfg.Factors); n > 0 {
		factorLimit = ^uint32(0) >> uint(32-n)
	}
	for i := 0; i < localSize; i++ {
		if data.Cells[i] >= NumCells {
			return nil, fmt.Errorf("population: user %d cell %d out of range", i, data.Cells[i])
		}
		if data.Tiers[i] >= ActivityTiers {
			return nil, fmt.Errorf("population: user %d activity tier %d out of range", i, data.Tiers[i])
		}
		if data.Regions[i] >= NumRegions {
			return nil, fmt.Errorf("population: user %d region %d out of range", i, data.Regions[i])
		}
		if data.Factors[i]&^factorLimit != 0 {
			return nil, fmt.Errorf("population: user %d factor mask %#x exceeds %d configured factors", i, data.Factors[i], len(cfg.Factors))
		}
	}

	var held []Span
	if spans != nil {
		held = make([]Span, len(spans))
		copy(held, spans)
	}
	u := &Universe{
		cfg:       cfg,
		localSize: localSize,
		spans:     held,
		cells:     data.Cells,
		factors:   data.Factors,
		tiers:     data.Tiers,
		regions:   data.Regions,
	}
	u.factorRate = make([][NumCells]float64, len(cfg.Factors))
	for f, fm := range cfg.Factors {
		for c := 0; c < NumCells; c++ {
			u.factorRate[f][c] = fm.RateIn(Cell(c))
		}
	}
	u.all = audience.New(localSize)
	u.all.Fill()
	for g := 0; g < NumGenders; g++ {
		u.byGender[g] = audience.New(localSize)
	}
	for a := 0; a < NumAgeRanges; a++ {
		u.byAge[a] = audience.New(localSize)
	}
	for c := 0; c < NumCells; c++ {
		u.byCell[c] = audience.New(localSize)
	}
	for r := 0; r < NumRegions; r++ {
		u.byRegion[r] = audience.New(localSize)
	}
	for i := 0; i < localSize; i++ {
		cell := data.Cells[i]
		u.byGender[cell.Gender()].Add(i)
		u.byAge[cell.Age()].Add(i)
		u.byCell[cell].Add(i)
		u.byRegion[data.Regions[i]].Add(i)
	}
	return u, nil
}
