package population

import (
	"testing"

	"repro/internal/audience"
)

func shardTestConfig(size int) Config {
	return Config{
		Seed:        99,
		Size:        size,
		ScaleFactor: 37.5,
		MaleShare:   0.52,
		AgeShare:    [NumAgeRanges]float64{0.25, 0.32, 0.28, 0.15},
		Factors: []FactorModel{
			{Rate: 0.12, GenderLoad: 0.8},
			{Rate: 0.05, AgeLoad: [NumAgeRanges]float64{0.5, 0.2, -0.2, -0.5}},
			{Rate: 0.3},
		},
		USShare:       0.7,
		ActivitySigma: 0.9,
	}
}

// setsEqual compares two dense bitsets bit for bit.
func setsEqual(a, b *audience.Set) bool {
	if a.Len() != b.Len() || a.Count() != b.Count() {
		return false
	}
	return audience.CountAnd(a, b) == a.Count()
}

// sliceOf extracts the dense bitset restricted to the given global spans,
// reindexed to the shard-local space (spans concatenated in order).
func sliceOf(full *audience.Set, spans []Span) *audience.Set {
	n := 0
	for _, s := range spans {
		n += s.Len()
	}
	out := audience.New(n)
	llo := 0
	for _, s := range spans {
		for g := s.Lo; g < s.Hi; g++ {
			if full.Contains(g) {
				out.Add(llo + (g - s.Lo))
			}
		}
		llo += s.Len()
	}
	return out
}

// TestNewShardMatchesFullSlice pins the bit-identity contract: a shard
// universe over any valid span set holds exactly the same users — same
// demographics, factors, tiers, regions, and attribute memberships — as the
// corresponding slice of the full universe.
func TestNewShardMatchesFullSlice(t *testing.T) {
	const size = 1 << 13
	cfg := shardTestConfig(size)
	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		spans []Span
	}{
		{"prefix", []Span{{0, 1 << 12}}},
		{"middle", []Span{{1 << 11, 3 << 11}}},
		{"suffix-to-size", []Span{{3 << 11, size}}},
		{"two-spans", []Span{{0, 640}, {1 << 12, 1<<12 + 1024}}},
		{"three-spans", []Span{{64, 128}, {4096, 4224}, {size - 64, size}}},
		{"full-as-span", []Span{{0, size}}},
	}
	attrs := []AttrModel{
		{ID: 7, BaseLogit: Logit(0.2), GenderLoad: 1.2, Factor: 0, FactorBoost: 1.5},
		{ID: 8, BaseLogit: Logit(0.05), AgeLoad: [NumAgeRanges]float64{0.4, 0, -0.4, -0.8}, Factor: -1},
		{ID: 9, BaseLogit: Logit(0.5), Factor: 2, FactorBoost: -1},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			shard, err := NewShard(cfg, tc.spans)
			if err != nil {
				t.Fatal(err)
			}
			wantSize := 0
			for _, s := range tc.spans {
				wantSize += s.Len()
			}
			if shard.Size() != wantSize {
				t.Fatalf("Size() = %d, want %d", shard.Size(), wantSize)
			}
			if shard.GlobalSize() != size {
				t.Fatalf("GlobalSize() = %d, want %d", shard.GlobalSize(), size)
			}

			// Per-user draws, walked via the local→global index map.
			llo := 0
			for _, s := range tc.spans {
				for g := s.Lo; g < s.Hi; g++ {
					i := llo + (g - s.Lo)
					if shard.CellOfUser(i) != full.CellOfUser(g) {
						t.Fatalf("user %d (global %d): cell %v, want %v", i, g, shard.CellOfUser(i), full.CellOfUser(g))
					}
					if shard.ActivityTier(i) != full.ActivityTier(g) {
						t.Fatalf("user %d (global %d): tier mismatch", i, g)
					}
					if shard.RegionOfUser(i) != full.RegionOfUser(g) {
						t.Fatalf("user %d (global %d): region mismatch", i, g)
					}
					for f := range cfg.Factors {
						if shard.HasFactor(i, f) != full.HasFactor(g, f) {
							t.Fatalf("user %d (global %d): factor %d mismatch", i, g, f)
						}
					}
				}
				llo += s.Len()
			}

			// Demographic bitsets are the sliced full-universe bitsets.
			for g := 0; g < NumGenders; g++ {
				if !setsEqual(shard.GenderSet(Gender(g)), sliceOf(full.GenderSet(Gender(g)), tc.spans)) {
					t.Fatalf("gender %v set mismatch", Gender(g))
				}
			}
			for a := 0; a < NumAgeRanges; a++ {
				if !setsEqual(shard.AgeSet(AgeRange(a)), sliceOf(full.AgeSet(AgeRange(a)), tc.spans)) {
					t.Fatalf("age %v set mismatch", AgeRange(a))
				}
			}
			for c := 0; c < NumCells; c++ {
				if !setsEqual(shard.CellSet(Cell(c)), sliceOf(full.CellSet(Cell(c)), tc.spans)) {
					t.Fatalf("cell %d set mismatch", c)
				}
			}
			for r := 0; r < NumRegions; r++ {
				if !setsEqual(shard.RegionSet(Region(r)), sliceOf(full.RegionSet(Region(r)), tc.spans)) {
					t.Fatalf("region %v set mismatch", Region(r))
				}
			}

			// Materialized attributes slice identically, for any worker count.
			for _, m := range attrs {
				want := sliceOf(full.Materialize(m), tc.spans)
				for _, workers := range []int{1, 3, 8} {
					if got := shard.materializeWithWorkers(m, workers); !setsEqual(got, want) {
						t.Fatalf("attr %d (workers=%d): materialized set mismatch", m.ID, workers)
					}
				}
			}
		})
	}
}

// TestNewShardCountsAdditive pins the scatter-gather foundation: raw counts
// over a disjoint span partition of the ID space sum to the full-universe
// count.
func TestNewShardCountsAdditive(t *testing.T) {
	const size = 1 << 13
	cfg := shardTestConfig(size)
	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := AttrModel{ID: 21, BaseLogit: Logit(0.15), GenderLoad: -0.9, Factor: 1, FactorBoost: 2}
	want := full.Materialize(m).Count()

	partitions := [][]Span{
		{{0, size}},
		{{0, size / 2}, {size / 2, size}},
		{{0, 1 << 11}, {1 << 11, 5 << 10}, {5 << 10, size}},
	}
	for _, parts := range partitions {
		got := 0
		for _, span := range parts {
			shard, err := NewShard(cfg, []Span{span})
			if err != nil {
				t.Fatal(err)
			}
			got += shard.Materialize(m).Count()
		}
		if got != want {
			t.Fatalf("partition %v: summed count %d, want %d", parts, got, want)
		}
	}
}

// TestNewShardMetadataUniverse pins the coordinator's zero-user mode.
func TestNewShardMetadataUniverse(t *testing.T) {
	cfg := shardTestConfig(1 << 12)
	u, err := NewShard(cfg, []Span{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 0 {
		t.Fatalf("Size() = %d, want 0", u.Size())
	}
	if u.GlobalSize() != 1<<12 {
		t.Fatalf("GlobalSize() = %d, want %d", u.GlobalSize(), 1<<12)
	}
	if u.ScaleFactor() != cfg.ScaleFactor {
		t.Fatalf("ScaleFactor() = %v, want %v", u.ScaleFactor(), cfg.ScaleFactor)
	}
	if got := u.Materialize(AttrModel{ID: 1, BaseLogit: 2}).Count(); got != 0 {
		t.Fatalf("metadata universe materialized %d users, want 0", got)
	}
}

// TestNewShardRejectsInvalidSpans pins the span invariants.
func TestNewShardRejectsInvalidSpans(t *testing.T) {
	cfg := shardTestConfig(1 << 12)
	bad := [][]Span{
		{{-64, 0}},            // negative
		{{0, 0}},              // empty span
		{{128, 64}},           // inverted
		{{0, 1<<12 + 64}},     // past the end
		{{0, 128}, {64, 256}}, // overlapping
		{{128, 256}, {0, 64}}, // out of order
		{{32, 96}},            // unaligned Lo
		{{0, 100}},            // unaligned Hi (not at size)
	}
	for _, spans := range bad {
		if _, err := NewShard(cfg, spans); err == nil {
			t.Fatalf("NewShard(%v) accepted invalid spans", spans)
		}
	}
	// The final span may end at an unaligned cfg.Size.
	odd := cfg
	odd.Size = 1<<12 + 17
	if _, err := NewShard(odd, []Span{{1 << 11, odd.Size}}); err != nil {
		t.Fatalf("NewShard rejected size-clamped final span: %v", err)
	}
}
