// Package population synthesizes the user universe behind a simulated ad
// platform.
//
// The paper measured live platforms whose user databases are inaccessible;
// per the substitution rule we generate a population whose statistical
// structure produces the same phenomena the paper measures:
//
//   - Every user has a gender and an age range (the sensitive attributes the
//     paper studies) drawn from configurable platform-specific marginals.
//   - Every user holds a sparse set of latent interest factors. Factors model
//     the correlation between related attributes ("owns a sports car" and
//     "interested in engines") beyond what demographics explain, which is
//     what makes distinct skewed compositions overlap (paper Table 1).
//   - Attribute membership is a Bernoulli draw whose log-odds are
//     base rate + gender loading + age loading + factor boost. Conditional on
//     the demographic cell and factor, memberships are independent, so an
//     AND of two skewed attributes multiplies the conditional rates — the
//     composition-amplifies-skew effect at the heart of the paper.
//
// All draws are stateless hashes of (seed, entity ids), so membership needs
// no storage until a bitset is materialized, and the same universe is
// reproduced exactly from its Config.
package population

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/audience"
	"repro/internal/xrand"
)

// Gender is a user's gender. The paper (and the 2020-era platforms it
// audits) treat gender as binary for targeting purposes.
type Gender uint8

// Gender values.
const (
	Male Gender = iota
	Female
	NumGenders = 2
)

// String returns the display name of the gender.
func (g Gender) String() string {
	switch g {
	case Male:
		return "male"
	case Female:
		return "female"
	default:
		return fmt.Sprintf("Gender(%d)", uint8(g))
	}
}

// Other returns the opposite gender.
func (g Gender) Other() Gender {
	if g == Male {
		return Female
	}
	return Male
}

// AgeRange is one of the four age buckets common to all three platforms
// (paper §3 footnote 3).
type AgeRange uint8

// Age ranges.
const (
	Age18to24 AgeRange = iota
	Age25to34
	Age35to54
	Age55Plus
	NumAgeRanges = 4
)

// String returns the display name of the age range.
func (a AgeRange) String() string {
	switch a {
	case Age18to24:
		return "18-24"
	case Age25to34:
		return "25-34"
	case Age35to54:
		return "35-54"
	case Age55Plus:
		return "55+"
	default:
		return fmt.Sprintf("AgeRange(%d)", uint8(a))
	}
}

// AllAgeRanges lists the age ranges in order.
func AllAgeRanges() []AgeRange {
	return []AgeRange{Age18to24, Age25to34, Age35to54, Age55Plus}
}

// Cell is a demographic cell: one (gender, age range) combination. There are
// NumCells of them.
type Cell uint8

// NumCells is the number of demographic cells.
const NumCells = NumGenders * NumAgeRanges

// CellOf returns the cell for a gender and age range.
func CellOf(g Gender, a AgeRange) Cell {
	return Cell(uint8(g)*NumAgeRanges + uint8(a))
}

// Gender returns the gender component of the cell.
func (c Cell) Gender() Gender { return Gender(uint8(c) / NumAgeRanges) }

// Age returns the age-range component of the cell.
func (c Cell) Age() AgeRange { return AgeRange(uint8(c) % NumAgeRanges) }

// Region is a user's coarse location. The paper's methodology scopes every
// measurement to U.S.-based users via location targeting (§3: "we assume RA
// is the set of all U.S.-based users"); platforms also serve users
// elsewhere, so the universe carries a region dimension.
type Region uint8

// Regions.
const (
	RegionUS Region = iota
	RegionCanada
	RegionUK
	RegionIndia
	RegionBrazil
	RegionOther
	NumRegions = 6
)

// String names the region as targeting UIs do.
func (r Region) String() string {
	switch r {
	case RegionUS:
		return "US"
	case RegionCanada:
		return "CA"
	case RegionUK:
		return "GB"
	case RegionIndia:
		return "IN"
	case RegionBrazil:
		return "BR"
	case RegionOther:
		return "other"
	default:
		return fmt.Sprintf("Region(%d)", uint8(r))
	}
}

// MaxFactors is the maximum number of latent interest factors; factor
// membership is packed into a uint32 per user.
const MaxFactors = 32

// FactorModel describes one latent interest factor. A factor may itself be
// demographically skewed (men more likely to hold a "motorsports" factor),
// which is what lets a composition of two attributes on the same factor be
// *more* skewed than the product of their individual skews — the
// amplification visible in the paper's Tables 2–3 examples.
type FactorModel struct {
	// Rate is the baseline probability a user holds the factor.
	Rate float64
	// GenderLoad shifts the log-odds of holding the factor by ±GenderLoad/2
	// (positive = male-skewed), like AttrModel.GenderLoad.
	GenderLoad float64
	// AgeLoad shifts the log-odds per age range.
	AgeLoad [NumAgeRanges]float64
}

// RateIn returns the probability a user in cell c holds the factor.
func (f FactorModel) RateIn(c Cell) float64 {
	if f.Rate <= 0 {
		return 0
	}
	if f.Rate >= 1 {
		return 1
	}
	x := Logit(f.Rate) + f.AgeLoad[c.Age()]
	if c.Gender() == Male {
		x += f.GenderLoad / 2
	} else {
		x -= f.GenderLoad / 2
	}
	return sigmoid(x)
}

// Config describes a synthetic universe.
type Config struct {
	// Seed determines every random draw in the universe.
	Seed uint64
	// Size is the number of simulated users.
	Size int
	// ScaleFactor converts simulated counts to platform-scale counts for
	// reporting (e.g. a 2^18-user simulation of a 120M-user platform has
	// ScaleFactor ≈ 458). Metrics that are ratios are unaffected.
	ScaleFactor float64
	// MaleShare is the fraction of users that are male.
	MaleShare float64
	// AgeShare is the distribution over age ranges; it must sum to ~1.
	AgeShare [NumAgeRanges]float64
	// Factors are the latent interest factors (≤ MaxFactors).
	Factors []FactorModel
	// USShare is the fraction of users located in the US; the remainder is
	// split across the other regions in fixed proportions. Zero selects 1
	// (an all-US universe).
	USShare float64
	// ActivitySigma spreads a per-user activity offset (log-odds added to
	// every attribute membership) across ActivityTiers quantile tiers of a
	// normal with this standard deviation. Heavy-tailed activity makes
	// highly active users belong to many attributes at once, which is what
	// gives distinct AND-compositions substantial audience overlap (paper
	// Table 1: ≈22 % median pairwise overlap on Facebook's restricted
	// interface vs ≈0 % on LinkedIn). Zero disables the offset.
	ActivitySigma float64
}

// ActivityTiers is the number of discrete activity levels users are
// assigned to; offsets are the tier midpoint quantiles of
// N(0, ActivitySigma²).
const ActivityTiers = 8

// activityQuantiles are Φ⁻¹((t+0.5)/8) for t = 0..7: the standard-normal
// midpoint quantiles of eight equiprobable tiers.
var activityQuantiles = [ActivityTiers]float64{
	-1.5341, -0.8871, -0.4888, -0.1573, 0.1573, 0.4888, 0.8871, 1.5341,
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if c.Size <= 0 {
		return errors.New("population: Size must be positive")
	}
	if c.MaleShare < 0 || c.MaleShare > 1 {
		return errors.New("population: MaleShare must be in [0, 1]")
	}
	var sum float64
	for _, s := range c.AgeShare {
		if s < 0 {
			return errors.New("population: AgeShare entries must be non-negative")
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("population: AgeShare sums to %v, want 1", sum)
	}
	if len(c.Factors) > MaxFactors {
		return fmt.Errorf("population: at most %d factors", MaxFactors)
	}
	for i, f := range c.Factors {
		if f.Rate < 0 || f.Rate > 1 {
			return fmt.Errorf("population: factor %d rate must be in [0, 1]", i)
		}
	}
	if c.ScaleFactor < 0 {
		return errors.New("population: ScaleFactor must be non-negative")
	}
	if c.ActivitySigma < 0 {
		return errors.New("population: ActivitySigma must be non-negative")
	}
	if c.USShare < 0 || c.USShare > 1 {
		return errors.New("population: USShare must be in [0, 1]")
	}
	return nil
}

// nonUSWeights splits the non-US share across the other regions.
var nonUSWeights = [NumRegions]float64{
	RegionCanada: 0.15, RegionUK: 0.15, RegionIndia: 0.30,
	RegionBrazil: 0.15, RegionOther: 0.25,
}

// UniformFactors returns n identical demographically-neutral factors with
// the given rate — a convenience for tests and ablations.
func UniformFactors(n int, rate float64) []FactorModel {
	fs := make([]FactorModel, n)
	for i := range fs {
		fs[i] = FactorModel{Rate: rate}
	}
	return fs
}

// AttrModel is the generative model of one targeting attribute: who is
// likely to hold it. Catalogs (internal/catalog) assign these.
type AttrModel struct {
	// ID uniquely identifies the attribute within the universe's draws.
	ID uint64
	// BaseLogit is the log-odds of membership for a baseline user.
	BaseLogit float64
	// GenderLoad shifts log-odds by +GenderLoad/2 for males and
	// -GenderLoad/2 for females (positive = male-skewed).
	GenderLoad float64
	// AgeLoad shifts log-odds per age range.
	AgeLoad [NumAgeRanges]float64
	// Factor is the index of the latent factor the attribute loads on, or -1.
	Factor int
	// FactorBoost is added to log-odds for users holding Factor.
	FactorBoost float64
}

// sigmoid is the standard logistic function.
func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// Logit returns log(p/(1-p)); the inverse of sigmoid.
func Logit(p float64) float64 {
	return math.Log(p / (1 - p))
}

// Rate returns the membership probability of the attribute for a user in the
// given cell with the given factor-held flag.
func (m AttrModel) Rate(c Cell, hasFactor bool) float64 {
	x := m.BaseLogit + m.AgeLoad[c.Age()]
	if c.Gender() == Male {
		x += m.GenderLoad / 2
	} else {
		x -= m.GenderLoad / 2
	}
	if hasFactor && m.Factor >= 0 {
		x += m.FactorBoost
	}
	return sigmoid(x)
}

// Span is one contiguous range of global user indices, inclusive of Lo and
// exclusive of Hi. Shard universes (NewShard) are described by ascending,
// non-overlapping spans of the global ID space.
type Span struct {
	Lo, Hi int
}

// Len returns the number of users the span covers.
func (s Span) Len() int { return s.Hi - s.Lo }

// Universe is a materialized synthetic user population — either the full
// configured ID space (New) or a shard holding only a set of spans of it
// (NewShard). All per-user draws hash global IDs, so a shard's users are
// bit-identical to the same users in the full universe.
type Universe struct {
	cfg        Config
	localSize  int                 // users materialized in this process
	spans      []Span              // nil = the full [0, cfg.Size) space
	cells      []Cell              // per-user demographic cell
	factors    []uint32            // per-user factor bitmask
	tiers      []uint8             // per-user activity tier
	regions    []uint8             // per-user region
	factorRate [][NumCells]float64 // per-(factor, cell) membership rate

	all      *audience.Set
	byGender [NumGenders]*audience.Set
	byAge    [NumAgeRanges]*audience.Set
	byCell   [NumCells]*audience.Set
	byRegion [NumRegions]*audience.Set
}

// draw domains, kept distinct so user demographics, factors, and attribute
// memberships use independent hash streams.
const (
	domainDemo     = 0x11
	domainFactor   = 0x22
	domainAttr     = 0x33
	domainActivity = 0x44
	domainRegion   = 0x55
)

// shardMinUsers is the smallest universe worth fanning out across workers;
// below it goroutine overhead exceeds the per-user hash work.
const shardMinUsers = 1 << 12

// forEachShard splits the user-index range [0, n) across up to workers
// goroutines and calls fn(lo, hi) for each shard. Shard boundaries are
// multiples of 64, so shards cover disjoint bitset words: workers may write
// shared audience sets without synchronization, and the combined output is
// bit-identical to a single fn(0, n) pass because every draw is a stateless
// hash of (seed, ids). Small ranges and workers <= 1 run inline.
func forEachShard(n, workers int, fn func(lo, hi int)) {
	if maxShards := (n + 63) / 64; workers > maxShards {
		workers = maxShards
	}
	if workers <= 1 || n < shardMinUsers {
		fn(0, n)
		return
	}
	per := (n/workers + 63) &^ 63
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// New builds a universe from the config. Building is O(Size × NumFactors),
// sharded across GOMAXPROCS workers, and done once; attribute bitsets are
// materialized later on demand. The result is bit-identical regardless of
// worker count.
func New(cfg Config) (*Universe, error) {
	return newWithWorkers(cfg, runtime.GOMAXPROCS(0))
}

// newWithWorkers is New with an explicit worker count (property tests
// compare sharded output against the workers=1 path).
func newWithWorkers(cfg Config, workers int) (*Universe, error) {
	return build(cfg, nil, workers)
}

// NewShard builds the sub-universe holding only the given spans of the
// global ID space. The result has Size() equal to the total span length,
// with local indices assigned in span order, while every random draw hashes
// the user's global ID — so each user a shard holds is bit-identical to
// that user in the full universe, and counts over disjoint spans sum to the
// full-universe count. Spans must be ascending and non-overlapping, with
// 64-aligned bounds (the final span may end at cfg.Size) so shard-local
// bitset words never straddle a span. An empty span list yields a zero-user
// metadata universe: the cluster coordinator uses one to validate and scale
// queries without materializing anybody.
func NewShard(cfg Config, spans []Span) (*Universe, error) {
	if err := validateSpans(cfg.Size, spans); err != nil {
		return nil, err
	}
	// Copy: the universe retains the slice beyond the call.
	held := make([]Span, len(spans))
	copy(held, spans)
	return build(cfg, held, runtime.GOMAXPROCS(0))
}

// validateSpans checks the shard-span invariants NewShard documents.
func validateSpans(size int, spans []Span) error {
	prev := 0
	for i, s := range spans {
		if s.Lo < prev || s.Hi <= s.Lo || s.Hi > size {
			return fmt.Errorf("population: span %d [%d, %d) not ascending within [0, %d)", i, s.Lo, s.Hi, size)
		}
		if s.Lo%64 != 0 || (s.Hi%64 != 0 && s.Hi != size) {
			return fmt.Errorf("population: span %d [%d, %d) not 64-aligned", i, s.Lo, s.Hi)
		}
		prev = s.Hi
	}
	return nil
}

// build constructs a universe over the given spans (nil = the full space).
func build(cfg Config, spans []Span, workers int) (*Universe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ScaleFactor == 0 {
		cfg.ScaleFactor = 1
	}
	if cfg.USShare == 0 {
		cfg.USShare = 1
	}
	localSize := cfg.Size
	if spans != nil {
		localSize = 0
		for _, s := range spans {
			localSize += s.Len()
		}
	}
	u := &Universe{
		cfg:       cfg,
		localSize: localSize,
		spans:     spans,
		cells:     make([]Cell, localSize),
		factors:   make([]uint32, localSize),
		tiers:     make([]uint8, localSize),
		regions:   make([]uint8, localSize),
	}
	u.all = audience.New(localSize)
	u.all.Fill()
	for g := 0; g < NumGenders; g++ {
		u.byGender[g] = audience.New(localSize)
	}
	for a := 0; a < NumAgeRanges; a++ {
		u.byAge[a] = audience.New(localSize)
	}
	for c := 0; c < NumCells; c++ {
		u.byCell[c] = audience.New(localSize)
	}
	for r := 0; r < NumRegions; r++ {
		u.byRegion[r] = audience.New(localSize)
	}

	// Cumulative region distribution: US first, then the fixed non-US mix.
	var regionCum [NumRegions]float64
	regionCum[RegionUS] = cfg.USShare
	acc0 := cfg.USShare
	for r := 1; r < NumRegions; r++ {
		acc0 += (1 - cfg.USShare) * nonUSWeights[r]
		regionCum[r] = acc0
	}

	// Cumulative age distribution for the inverse-CDF draw.
	var ageCum [NumAgeRanges]float64
	acc := 0.0
	for i, s := range cfg.AgeShare {
		acc += s
		ageCum[i] = acc
	}

	// Precompute per-(factor, cell) membership rates so the per-user loop
	// is a table lookup.
	u.factorRate = make([][NumCells]float64, len(cfg.Factors))
	for f, fm := range cfg.Factors {
		for c := 0; c < NumCells; c++ {
			u.factorRate[f][c] = fm.RateIn(Cell(c))
		}
	}

	u.forEachSpan(workers, func(lo, hi, gOff int) {
		u.buildRange(lo, hi, gOff, ageCum, regionCum)
	})
	return u, nil
}

// forEachSpan fans fn out over the universe's local index space, span by
// span, passing each worker range the span's local-to-global offset. Span
// bounds are 64-aligned (validateSpans), so worker ranges within a span stay
// word-disjoint in the local bitsets.
func (u *Universe) forEachSpan(workers int, fn func(lo, hi, gOff int)) {
	if u.spans == nil {
		forEachShard(u.localSize, workers, func(lo, hi int) { fn(lo, hi, 0) })
		return
	}
	llo := 0
	for _, s := range u.spans {
		gOff := s.Lo - llo
		base := llo
		forEachShard(s.Len(), workers, func(lo, hi int) { fn(base+lo, base+hi, gOff) })
		llo += s.Len()
	}
}

// buildRange draws users with local indices [lo, hi): demographic cell,
// factor mask, activity tier, and region. Draw hashes use the global ID
// (local index + gOff), so every draw is a stateless hash of (seed, global
// ids) and the range decomposition — worker count or shard spans — has no
// effect on any user's draw; per-user slices are index-disjoint across
// shards and the shared bitsets are written through 64-aligned shard
// boundaries (see forEachShard).
func (u *Universe) buildRange(lo, hi, gOff int, ageCum [NumAgeRanges]float64, regionCum [NumRegions]float64) {
	cfg := u.cfg
	for i := lo; i < hi; i++ {
		g64 := uint64(i + gOff)
		hg := xrand.Mix(cfg.Seed, domainDemo, g64, 0)
		ha := xrand.Mix(cfg.Seed, domainDemo, g64, 1)
		g := Female
		if xrand.Uniform01(hg) < cfg.MaleShare {
			g = Male
		}
		ua := xrand.Uniform01(ha)
		age := Age55Plus
		for r := 0; r < NumAgeRanges; r++ {
			if ua < ageCum[r] {
				age = AgeRange(r)
				break
			}
		}
		cell := CellOf(g, age)
		u.cells[i] = cell
		u.byGender[g].Add(i)
		u.byAge[age].Add(i)
		u.byCell[cell].Add(i)

		var mask uint32
		for f := range cfg.Factors {
			if xrand.Bernoulli(u.factorRate[f][cell], cfg.Seed, domainFactor, uint64(f), g64) {
				mask |= 1 << uint(f)
			}
		}
		u.factors[i] = mask
		u.tiers[i] = uint8(xrand.Mix(cfg.Seed, domainActivity, g64) % ActivityTiers)

		ur := xrand.Uniform01(xrand.Mix(cfg.Seed, domainRegion, g64))
		region := RegionOther
		for r := 0; r < NumRegions; r++ {
			if ur < regionCum[r] {
				region = Region(r)
				break
			}
		}
		u.regions[i] = uint8(region)
		u.byRegion[region].Add(i)
	}
}

// Config returns the universe's configuration.
func (u *Universe) Config() Config { return u.cfg }

// Size returns the number of users materialized in this process: the full
// configured size for New universes, the total span length for shards.
func (u *Universe) Size() int { return u.localSize }

// GlobalSize returns the configured size of the whole ID space, regardless
// of how much of it this universe holds.
func (u *Universe) GlobalSize() int { return u.cfg.Size }

// Spans returns the global-ID spans this universe holds (shared; do not
// modify), or nil for a full universe.
func (u *Universe) Spans() []Span { return u.spans }

// ScaleFactor returns the simulated-to-platform count multiplier.
func (u *Universe) ScaleFactor() float64 { return u.cfg.ScaleFactor }

// All returns the set of all users. The returned set is shared; callers must
// not modify it.
func (u *Universe) All() *audience.Set { return u.all }

// GenderSet returns the set of users with the given gender (shared; do not
// modify).
func (u *Universe) GenderSet(g Gender) *audience.Set { return u.byGender[g] }

// AgeSet returns the set of users in the given age range (shared; do not
// modify).
func (u *Universe) AgeSet(a AgeRange) *audience.Set { return u.byAge[a] }

// CellSet returns the set of users in the given demographic cell (shared; do
// not modify).
func (u *Universe) CellSet(c Cell) *audience.Set { return u.byCell[c] }

// CellOfUser returns the demographic cell of user i.
func (u *Universe) CellOfUser(i int) Cell { return u.cells[i] }

// NumFactors returns the number of latent factors in the universe.
func (u *Universe) NumFactors() int { return len(u.cfg.Factors) }

// HasFactor reports whether user i holds latent factor f.
func (u *Universe) HasFactor(i, f int) bool {
	return f >= 0 && f < len(u.cfg.Factors) && u.factors[i]&(1<<uint(f)) != 0
}

// FactorRateIn returns the probability a user in cell c holds factor f.
func (u *Universe) FactorRateIn(f int, c Cell) float64 {
	if f < 0 || f >= len(u.cfg.Factors) {
		return 0
	}
	return u.factorRate[f][c]
}

// Materialize builds the membership bitset of an attribute, sharding the
// per-user draws across GOMAXPROCS workers. The draw for each user is a
// deterministic hash, so repeated calls return equal sets regardless of the
// worker count.
func (u *Universe) Materialize(m AttrModel) *audience.Set {
	return u.materializeWithWorkers(m, runtime.GOMAXPROCS(0))
}

// materializeWithWorkers is Materialize with an explicit worker count
// (property tests compare sharded output against the workers=1 path).
func (u *Universe) materializeWithWorkers(m AttrModel, workers int) *audience.Set {
	// Membership probability depends only on (cell, hasFactor, activity
	// tier); precompute the thresholds in hash space so the per-user work
	// is one hash and one compare.
	const mantissa = 1 << 53
	var thresh [NumCells][2][ActivityTiers]uint64
	for c := 0; c < NumCells; c++ {
		for t := 0; t < ActivityTiers; t++ {
			off := u.cfg.ActivitySigma * activityQuantiles[t]
			thresh[c][0][t] = uint64(u.rateAt(m, Cell(c), false, off) * mantissa)
			thresh[c][1][t] = uint64(u.rateAt(m, Cell(c), true, off) * mantissa)
		}
	}
	factorBit := uint32(0)
	if m.Factor >= 0 && m.Factor < len(u.cfg.Factors) {
		factorBit = 1 << uint(m.Factor)
	}
	set := audience.New(u.localSize)
	u.forEachSpan(workers, func(lo, hi, gOff int) {
		for i := lo; i < hi; i++ {
			h := xrand.Mix(u.cfg.Seed, domainAttr, m.ID, uint64(i+gOff))
			fi := 0
			if u.factors[i]&factorBit != 0 {
				fi = 1
			}
			if h>>11 < thresh[u.cells[i]][fi][u.tiers[i]] {
				set.Add(i)
			}
		}
	})
	return set
}

// rateAt is AttrModel.Rate with an extra log-odds activity offset.
func (u *Universe) rateAt(m AttrModel, c Cell, hasFactor bool, activityOffset float64) float64 {
	x := m.BaseLogit + m.AgeLoad[c.Age()] + activityOffset
	if c.Gender() == Male {
		x += m.GenderLoad / 2
	} else {
		x -= m.GenderLoad / 2
	}
	if hasFactor && m.Factor >= 0 {
		x += m.FactorBoost
	}
	return sigmoid(x)
}

// ActivityTier returns the activity tier of user i.
func (u *Universe) ActivityTier(i int) int { return int(u.tiers[i]) }

// RegionSet returns the set of users in the given region (shared; do not
// modify).
func (u *Universe) RegionSet(r Region) *audience.Set { return u.byRegion[r] }

// RegionOfUser returns the region of user i.
func (u *Universe) RegionOfUser(i int) Region { return Region(u.regions[i]) }

// ExpectedCount returns the analytically expected audience size of the
// attribute under the generative model (used by tests and the ablation
// benches to validate materialization).
func (u *Universe) ExpectedCount(m AttrModel) float64 {
	var total float64
	for c := 0; c < NumCells; c++ {
		n := float64(u.byCell[c].Count())
		pf := u.FactorRateIn(m.Factor, Cell(c))
		var mean float64
		for t := 0; t < ActivityTiers; t++ {
			off := u.cfg.ActivitySigma * activityQuantiles[t]
			mean += pf*u.rateAt(m, Cell(c), true, off) + (1-pf)*u.rateAt(m, Cell(c), false, off)
		}
		total += n * mean / ActivityTiers
	}
	return total
}

// CellCounts returns the number of users in each demographic cell.
func (u *Universe) CellCounts() [NumCells]int {
	var out [NumCells]int
	for c := 0; c < NumCells; c++ {
		out[c] = u.byCell[c].Count()
	}
	return out
}
