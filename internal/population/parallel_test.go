package population

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/audience"
)

// shardConfig builds a config with every generative feature enabled so the
// sharding equality checks cover all draw domains.
func shardConfig(seed uint64, size int) Config {
	return Config{
		Seed:      seed,
		Size:      size,
		MaleShare: 0.47,
		AgeShare:  [NumAgeRanges]float64{0.2, 0.3, 0.3, 0.2},
		Factors: []FactorModel{
			{Rate: 0.2, GenderLoad: 1.1},
			{Rate: 0.05, AgeLoad: [NumAgeRanges]float64{0.5, 0.2, -0.2, -0.5}},
			{Rate: 0.5},
		},
		USShare:       0.8,
		ActivitySigma: 1.3,
	}
}

// TestForEachShardCoversRange asserts the shard decomposition covers [0, n)
// exactly once with 64-aligned interior boundaries.
func TestForEachShardCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 4096, 4097, 12345} {
		for _, workers := range []int{1, 2, 3, 4, 7, 64} {
			var mu sync.Mutex
			seen := make([]bool, n)
			forEachShard(n, workers, func(lo, hi int) {
				if lo%64 != 0 {
					t.Errorf("n=%d workers=%d: shard start %d not 64-aligned", n, workers, lo)
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					if seen[i] {
						t.Fatalf("n=%d workers=%d: index %d covered twice", n, workers, i)
					}
					seen[i] = true
				}
				mu.Unlock()
			})
			for i, ok := range seen {
				if !ok {
					t.Fatalf("n=%d workers=%d: index %d never covered", n, workers, i)
				}
			}
		}
	}
}

// TestNewShardedBitExact is the sharding property test: universes built with
// any worker count must be bit-identical to the serial build, across seeds
// and sizes including ones not divisible by the shard count or by 64.
func TestNewShardedBitExact(t *testing.T) {
	sizes := []int{1000, 4096, 4097, 5000, 8192 + 13, 12345}
	for _, seed := range []uint64{1, 42, 20201027} {
		for _, size := range sizes {
			cfg := shardConfig(seed, size)
			serial, err := newWithWorkers(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 4, 7} {
				sharded, err := newWithWorkers(cfg, workers)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("seed=%d size=%d workers=%d", seed, size, workers)
				for i := 0; i < size; i++ {
					if serial.cells[i] != sharded.cells[i] ||
						serial.factors[i] != sharded.factors[i] ||
						serial.tiers[i] != sharded.tiers[i] ||
						serial.regions[i] != sharded.regions[i] {
						t.Fatalf("%s: per-user state diverges at user %d", label, i)
					}
				}
				pairs := []struct {
					name string
					a, b *audience.Set
				}{
					{"all", serial.all, sharded.all},
					{"male", serial.byGender[Male], sharded.byGender[Male]},
					{"female", serial.byGender[Female], sharded.byGender[Female]},
				}
				for a := 0; a < NumAgeRanges; a++ {
					pairs = append(pairs, struct {
						name string
						a, b *audience.Set
					}{fmt.Sprintf("age%d", a), serial.byAge[a], sharded.byAge[a]})
				}
				for c := 0; c < NumCells; c++ {
					pairs = append(pairs, struct {
						name string
						a, b *audience.Set
					}{fmt.Sprintf("cell%d", c), serial.byCell[c], sharded.byCell[c]})
				}
				for r := 0; r < NumRegions; r++ {
					pairs = append(pairs, struct {
						name string
						a, b *audience.Set
					}{fmt.Sprintf("region%d", r), serial.byRegion[r], sharded.byRegion[r]})
				}
				for _, p := range pairs {
					if !audience.Equal(p.a, p.b) {
						t.Fatalf("%s: bitset %s differs from serial build", label, p.name)
					}
				}
			}
		}
	}
}

// TestMaterializeShardedBitExact asserts sharded materialization matches the
// serial path for skewed, factor-loaded attributes across sizes and seeds.
func TestMaterializeShardedBitExact(t *testing.T) {
	models := []AttrModel{
		{ID: 1, BaseLogit: -2.0, GenderLoad: 1.4, Factor: 0, FactorBoost: 2.0},
		{ID: 2, BaseLogit: -1.0, AgeLoad: [NumAgeRanges]float64{0.8, 0.2, -0.3, -0.9}, Factor: -1},
		{ID: 3, BaseLogit: -4.5, Factor: 2, FactorBoost: 3.0},
	}
	for _, seed := range []uint64{7, 99} {
		for _, size := range []int{1000, 4097, 8192 + 13} {
			u, err := New(shardConfig(seed, size))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range models {
				serial := u.materializeWithWorkers(m, 1)
				for _, workers := range []int{2, 3, 5} {
					sharded := u.materializeWithWorkers(m, workers)
					if !audience.Equal(serial, sharded) {
						t.Fatalf("seed=%d size=%d workers=%d attr=%d: sharded materialization differs",
							seed, size, workers, m.ID)
					}
				}
				if !audience.Equal(serial, u.Materialize(m)) {
					t.Fatalf("seed=%d size=%d attr=%d: Materialize differs from serial", seed, size, m.ID)
				}
			}
		}
	}
}
