package population

import (
	"reflect"
	"testing"

	"repro/internal/audience"
)

// snapCfg is a universe config exercising every dimension FromData must
// reconstruct: skewed demographics, multiple loaded factors, activity
// spread, and a non-US region mix.
func snapCfg(size int) Config {
	return Config{
		Seed:          77,
		Size:          size,
		MaleShare:     0.46,
		AgeShare:      [NumAgeRanges]float64{0.16, 0.27, 0.33, 0.24},
		ActivitySigma: 1.7,
		USShare:       0.85,
		Factors: []FactorModel{
			{Rate: 0.2, GenderLoad: 1.1},
			{Rate: 0.05, AgeLoad: [NumAgeRanges]float64{0.5, 0.2, -0.2, -0.5}},
			{Rate: 0.4},
		},
	}
}

// snapModels are attribute models whose materialization must be
// bit-identical on a rebuilt universe.
var snapModels = []AttrModel{
	{ID: 1, BaseLogit: -2.5, GenderLoad: 1.4, Factor: 0, FactorBoost: 2.0},
	{ID: 2, BaseLogit: -4.0, AgeLoad: [NumAgeRanges]float64{1.0, 0.3, -0.3, -1.0}, Factor: 1, FactorBoost: 3.0},
	{ID: 3, BaseLogit: -1.0, Factor: -1},
}

// requireSameUniverse asserts every observable of two universes matches:
// config, sizes, demographic bitsets, per-user accessors, and materialized
// attribute sets.
func requireSameUniverse(t *testing.T, want, got *Universe) {
	t.Helper()
	if !reflect.DeepEqual(got.Config(), want.Config()) {
		t.Fatalf("Config = %+v, want %+v", got.Config(), want.Config())
	}
	if got.Size() != want.Size() || got.GlobalSize() != want.GlobalSize() {
		t.Fatalf("Size/GlobalSize = %d/%d, want %d/%d", got.Size(), got.GlobalSize(), want.Size(), want.GlobalSize())
	}
	if !audience.Equal(got.All(), want.All()) {
		t.Fatal("All() differs")
	}
	for g := 0; g < NumGenders; g++ {
		if !audience.Equal(got.GenderSet(Gender(g)), want.GenderSet(Gender(g))) {
			t.Fatalf("GenderSet(%d) differs", g)
		}
	}
	for a := 0; a < NumAgeRanges; a++ {
		if !audience.Equal(got.AgeSet(AgeRange(a)), want.AgeSet(AgeRange(a))) {
			t.Fatalf("AgeSet(%d) differs", a)
		}
	}
	for c := 0; c < NumCells; c++ {
		if !audience.Equal(got.CellSet(Cell(c)), want.CellSet(Cell(c))) {
			t.Fatalf("CellSet(%d) differs", c)
		}
		for f := 0; f < want.NumFactors(); f++ {
			if got.FactorRateIn(f, Cell(c)) != want.FactorRateIn(f, Cell(c)) {
				t.Fatalf("FactorRateIn(%d, %d) differs", f, c)
			}
		}
	}
	for r := 0; r < NumRegions; r++ {
		if !audience.Equal(got.RegionSet(Region(r)), want.RegionSet(Region(r))) {
			t.Fatalf("RegionSet(%d) differs", r)
		}
	}
	step := want.Size()/97 + 1
	for i := 0; i < want.Size(); i += step {
		if got.CellOfUser(i) != want.CellOfUser(i) ||
			got.ActivityTier(i) != want.ActivityTier(i) ||
			got.RegionOfUser(i) != want.RegionOfUser(i) {
			t.Fatalf("user %d per-user state differs", i)
		}
		for f := 0; f < want.NumFactors(); f++ {
			if got.HasFactor(i, f) != want.HasFactor(i, f) {
				t.Fatalf("user %d HasFactor(%d) differs", i, f)
			}
		}
	}
	for _, m := range snapModels {
		if !audience.Equal(got.Materialize(m), want.Materialize(m)) {
			t.Fatalf("Materialize(%d) differs", m.ID)
		}
	}
}

func TestFromDataRebuildsFullUniverse(t *testing.T) {
	built, err := New(snapCfg(10_000))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := FromData(built.Config(), nil, built.Data())
	if err != nil {
		t.Fatal(err)
	}
	requireSameUniverse(t, built, loaded)
}

func TestFromDataRebuildsShard(t *testing.T) {
	cfg := snapCfg(8192)
	spans := []Span{{Lo: 64, Hi: 2048}, {Lo: 4096, Hi: 8192}}
	built, err := NewShard(cfg, spans)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := FromData(built.Config(), spans, built.Data())
	if err != nil {
		t.Fatal(err)
	}
	requireSameUniverse(t, built, loaded)
	if got := loaded.Spans(); len(got) != len(spans) || got[0] != spans[0] || got[1] != spans[1] {
		t.Fatalf("Spans = %v, want %v", got, spans)
	}
}

func TestFromDataAppliesConfigDefaults(t *testing.T) {
	// build() maps ScaleFactor 0 → 1 and USShare 0 → 1; FromData must do the
	// same so a round trip through the raw config is stable.
	cfg := Config{Seed: 5, Size: 1000, MaleShare: 0.5,
		AgeShare: [NumAgeRanges]float64{0.25, 0.25, 0.25, 0.25}}
	built, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := FromData(cfg, nil, built.Data())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Config(), built.Config()) {
		t.Fatalf("defaults not applied: %+v vs %+v", loaded.Config(), built.Config())
	}
}

func TestFromDataRejects(t *testing.T) {
	cfg := snapCfg(1024)
	built, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := built.Data()
	corrupt := func(edit func(d *UniverseData)) UniverseData {
		d := UniverseData{
			Cells:   append([]Cell(nil), good.Cells...),
			Factors: append([]uint32(nil), good.Factors...),
			Tiers:   append([]uint8(nil), good.Tiers...),
			Regions: append([]uint8(nil), good.Regions...),
		}
		edit(&d)
		return d
	}
	cases := map[string]struct {
		cfg   Config
		spans []Span
		data  UniverseData
	}{
		"bad config":       {Config{Size: -1}, nil, good},
		"bad spans":        {cfg, []Span{{Lo: 3, Hi: 100}}, good},
		"short arrays":     {cfg, nil, UniverseData{Cells: good.Cells[:10], Factors: good.Factors, Tiers: good.Tiers, Regions: good.Regions}},
		"span/data length": {cfg, []Span{{Lo: 0, Hi: 512}}, good},
		"cell range":       {cfg, nil, corrupt(func(d *UniverseData) { d.Cells[7] = NumCells })},
		"tier range":       {cfg, nil, corrupt(func(d *UniverseData) { d.Tiers[7] = ActivityTiers })},
		"region range":     {cfg, nil, corrupt(func(d *UniverseData) { d.Regions[7] = NumRegions })},
		"factor mask":      {cfg, nil, corrupt(func(d *UniverseData) { d.Factors[7] = 1 << 30 })},
	}
	for name, tc := range cases {
		if _, err := FromData(tc.cfg, tc.spans, tc.data); err == nil {
			t.Fatalf("%s: FromData accepted corrupt input", name)
		}
	}
}
