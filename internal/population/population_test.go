package population

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/audience"
)

func testConfig() Config {
	return Config{
		Seed:        42,
		Size:        40000,
		MaleShare:   0.5,
		AgeShare:    [NumAgeRanges]float64{0.2, 0.3, 0.3, 0.2},
		Factors:     UniformFactors(8, 0.1),
		ScaleFactor: 100,
	}
}

func mustNew(t *testing.T, cfg Config) *Universe {
	t.Helper()
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestConfigValidate(t *testing.T) {
	ok := testConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Size = 0 },
		func(c *Config) { c.MaleShare = -0.1 },
		func(c *Config) { c.MaleShare = 1.1 },
		func(c *Config) { c.AgeShare = [NumAgeRanges]float64{0.5, 0.5, 0.5, 0.5} },
		func(c *Config) { c.AgeShare = [NumAgeRanges]float64{-0.2, 0.6, 0.3, 0.3} },
		func(c *Config) { c.Factors = UniformFactors(MaxFactors+1, 0.1) },
		func(c *Config) { c.Factors = []FactorModel{{Rate: 2}} },
		func(c *Config) { c.Factors = []FactorModel{{Rate: -0.1}} },
		func(c *Config) { c.ScaleFactor = -1 },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCellRoundTrip(t *testing.T) {
	for g := Gender(0); g < NumGenders; g++ {
		for a := AgeRange(0); a < NumAgeRanges; a++ {
			c := CellOf(g, a)
			if c.Gender() != g || c.Age() != a {
				t.Fatalf("cell round trip failed for (%v, %v)", g, a)
			}
		}
	}
}

func TestGenderStrings(t *testing.T) {
	if Male.String() != "male" || Female.String() != "female" {
		t.Fatal("gender strings wrong")
	}
	if Male.Other() != Female || Female.Other() != Male {
		t.Fatal("Other() wrong")
	}
}

func TestAgeStrings(t *testing.T) {
	want := []string{"18-24", "25-34", "35-54", "55+"}
	for i, a := range AllAgeRanges() {
		if a.String() != want[i] {
			t.Fatalf("age %d string = %q, want %q", i, a.String(), want[i])
		}
	}
}

func TestDemographicMarginals(t *testing.T) {
	cfg := testConfig()
	u := mustNew(t, cfg)
	maleFrac := float64(u.GenderSet(Male).Count()) / float64(cfg.Size)
	if math.Abs(maleFrac-cfg.MaleShare) > 0.01 {
		t.Errorf("male fraction = %v, want ~%v", maleFrac, cfg.MaleShare)
	}
	for i, a := range AllAgeRanges() {
		frac := float64(u.AgeSet(a).Count()) / float64(cfg.Size)
		if math.Abs(frac-cfg.AgeShare[i]) > 0.015 {
			t.Errorf("age %v fraction = %v, want ~%v", a, frac, cfg.AgeShare[i])
		}
	}
}

func TestPartitions(t *testing.T) {
	u := mustNew(t, testConfig())
	// Gender sets partition the universe.
	if audience.CountAnd(u.GenderSet(Male), u.GenderSet(Female)) != 0 {
		t.Fatal("gender sets overlap")
	}
	if u.GenderSet(Male).Count()+u.GenderSet(Female).Count() != u.Size() {
		t.Fatal("gender sets do not cover universe")
	}
	// Age sets partition the universe.
	total := 0
	for _, a := range AllAgeRanges() {
		total += u.AgeSet(a).Count()
	}
	if total != u.Size() {
		t.Fatalf("age sets cover %d of %d users", total, u.Size())
	}
	// Cells refine both.
	for c := Cell(0); c < NumCells; c++ {
		want := audience.CountAnd(u.GenderSet(c.Gender()), u.AgeSet(c.Age()))
		if got := u.CellSet(c).Count(); got != want {
			t.Fatalf("cell %d count = %d, want %d", c, got, want)
		}
	}
}

func TestReproducible(t *testing.T) {
	cfg := testConfig()
	cfg.Size = 5000
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	if !audience.Equal(a.GenderSet(Male), b.GenderSet(Male)) {
		t.Fatal("same seed produced different gender sets")
	}
	m := AttrModel{ID: 7, BaseLogit: Logit(0.05), GenderLoad: 1.0}
	if !audience.Equal(a.Materialize(m), b.Materialize(m)) {
		t.Fatal("same seed produced different attribute sets")
	}
}

func TestSeedsDiffer(t *testing.T) {
	cfg := testConfig()
	cfg.Size = 5000
	a := mustNew(t, cfg)
	cfg.Seed = 43
	b := mustNew(t, cfg)
	if audience.Equal(a.GenderSet(Male), b.GenderSet(Male)) {
		t.Fatal("different seeds produced identical gender sets")
	}
}

func TestAttrBaseRate(t *testing.T) {
	u := mustNew(t, testConfig())
	m := AttrModel{ID: 1, BaseLogit: Logit(0.10), Factor: -1}
	set := u.Materialize(m)
	frac := float64(set.Count()) / float64(u.Size())
	if math.Abs(frac-0.10) > 0.01 {
		t.Fatalf("attribute rate = %v, want ~0.10", frac)
	}
}

func TestAttrGenderSkew(t *testing.T) {
	u := mustNew(t, testConfig())
	m := AttrModel{ID: 2, BaseLogit: Logit(0.05), GenderLoad: 2.0, Factor: -1}
	set := u.Materialize(m)
	maleRate := float64(audience.CountAnd(set, u.GenderSet(Male))) / float64(u.GenderSet(Male).Count())
	femaleRate := float64(audience.CountAnd(set, u.GenderSet(Female))) / float64(u.GenderSet(Female).Count())
	ratio := maleRate / femaleRate
	// Odds-ratio of e^2 ≈ 7.4 at low base rate gives a rate ratio around
	// e^2 as well (rare-event approximation); accept a generous band.
	if ratio < 4 || ratio > 12 {
		t.Fatalf("gender rate ratio = %v, want male-skewed ~7", ratio)
	}
}

func TestAttrAgeSkew(t *testing.T) {
	u := mustNew(t, testConfig())
	m := AttrModel{ID: 3, BaseLogit: Logit(0.05), Factor: -1}
	m.AgeLoad[Age18to24] = 1.5
	set := u.Materialize(m)
	youngRate := float64(audience.CountAnd(set, u.AgeSet(Age18to24))) / float64(u.AgeSet(Age18to24).Count())
	oldRate := float64(audience.CountAnd(set, u.AgeSet(Age55Plus))) / float64(u.AgeSet(Age55Plus).Count())
	if youngRate <= oldRate*2 {
		t.Fatalf("young rate %v not clearly above old rate %v", youngRate, oldRate)
	}
}

func TestFactorCorrelation(t *testing.T) {
	// Two attributes on the same factor should co-occur more than two
	// attributes on different factors, given equal marginals.
	u := mustNew(t, testConfig())
	base := Logit(0.05)
	a1 := u.Materialize(AttrModel{ID: 10, BaseLogit: base, Factor: 0, FactorBoost: 2.5})
	a2 := u.Materialize(AttrModel{ID: 11, BaseLogit: base, Factor: 0, FactorBoost: 2.5})
	b2 := u.Materialize(AttrModel{ID: 12, BaseLogit: base, Factor: 1, FactorBoost: 2.5})
	sameFactor := audience.CountAnd(a1, a2)
	diffFactor := audience.CountAnd(a1, b2)
	if sameFactor <= diffFactor {
		t.Fatalf("same-factor overlap %d not above cross-factor overlap %d", sameFactor, diffFactor)
	}
}

func TestCompositionAmplifiesSkew(t *testing.T) {
	// The core phenomenon: AND of two male-skewed attributes is more
	// male-skewed than either attribute alone.
	cfg := testConfig()
	cfg.Size = 120000
	u := mustNew(t, cfg)
	m1 := AttrModel{ID: 20, BaseLogit: Logit(0.08), GenderLoad: 1.2, Factor: -1}
	m2 := AttrModel{ID: 21, BaseLogit: Logit(0.08), GenderLoad: 1.2, Factor: -1}
	s1, s2 := u.Materialize(m1), u.Materialize(m2)
	both := audience.And(s1, s2)

	ratio := func(s *audience.Set) float64 {
		m := float64(audience.CountAnd(s, u.GenderSet(Male))) / float64(u.GenderSet(Male).Count())
		f := float64(audience.CountAnd(s, u.GenderSet(Female))) / float64(u.GenderSet(Female).Count())
		return m / f
	}
	r1, r2, rBoth := ratio(s1), ratio(s2), ratio(both)
	if rBoth <= r1 || rBoth <= r2 {
		t.Fatalf("composition ratio %v not above individual ratios %v, %v", rBoth, r1, r2)
	}
	// Under conditional independence the composed ratio is close to the
	// product of the individual rate ratios within gender; allow slack.
	if rBoth < r1*r2*0.5 {
		t.Fatalf("composition ratio %v far below multiplicative expectation %v", rBoth, r1*r2)
	}
}

func TestExpectedCountMatchesMaterialized(t *testing.T) {
	u := mustNew(t, testConfig())
	models := []AttrModel{
		{ID: 30, BaseLogit: Logit(0.02), Factor: -1},
		{ID: 31, BaseLogit: Logit(0.10), GenderLoad: 1.5, Factor: -1},
		{ID: 32, BaseLogit: Logit(0.05), Factor: 2, FactorBoost: 2.0},
	}
	for _, m := range models {
		got := float64(u.Materialize(m).Count())
		want := u.ExpectedCount(m)
		// Binomial standard deviation bound with wide margin.
		if math.Abs(got-want) > 5*math.Sqrt(want)+50 {
			t.Errorf("attr %d count = %v, expected %v", m.ID, got, want)
		}
	}
}

func TestRateMonotoneInLoad(t *testing.T) {
	// Property: male rate increases with GenderLoad, female rate decreases.
	if err := quick.Check(func(rawLoad uint8) bool {
		load := float64(rawLoad) / 64 // up to 4
		m := AttrModel{BaseLogit: Logit(0.05), GenderLoad: load, Factor: -1}
		m0 := AttrModel{BaseLogit: Logit(0.05), GenderLoad: 0, Factor: -1}
		cM := CellOf(Male, Age25to34)
		cF := CellOf(Female, Age25to34)
		return m.Rate(cM, false) >= m0.Rate(cM, false) &&
			m.Rate(cF, false) <= m0.Rate(cF, false)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHasFactorBounds(t *testing.T) {
	u := mustNew(t, testConfig())
	if u.HasFactor(0, -1) || u.HasFactor(0, MaxFactors+5) {
		t.Fatal("out-of-range factor queries must be false")
	}
}

func TestCellCounts(t *testing.T) {
	u := mustNew(t, testConfig())
	counts := u.CellCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != u.Size() {
		t.Fatalf("cell counts sum to %d, want %d", total, u.Size())
	}
}

func TestScaleFactorDefault(t *testing.T) {
	cfg := testConfig()
	cfg.ScaleFactor = 0
	u := mustNew(t, cfg)
	if u.ScaleFactor() != 1 {
		t.Fatalf("ScaleFactor default = %v, want 1", u.ScaleFactor())
	}
}

func BenchmarkMaterialize(b *testing.B) {
	cfg := testConfig()
	cfg.Size = 1 << 18
	u, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := AttrModel{ID: 99, BaseLogit: Logit(0.05), GenderLoad: 1, Factor: 3, FactorBoost: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Materialize(m)
	}
}

func BenchmarkNewUniverse(b *testing.B) {
	cfg := testConfig()
	cfg.Size = 1 << 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
