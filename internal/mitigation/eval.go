package mitigation

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/xrand"
)

// EvalConfig sizes a detector evaluation: a simulated advertiser workload
// with a known ground truth of honest and discriminatory accounts.
type EvalConfig struct {
	// HonestAdvertisers run ordinary campaigns: individual options and
	// random compositions (which, per §4.3, are *sometimes inadvertently
	// skewed* — the detector must tolerate that).
	HonestAdvertisers int
	// DiscriminatoryAdvertisers consistently run greedily discovered skewed
	// compositions toward the target class.
	DiscriminatoryAdvertisers int
	// CampaignsPerAdvertiser is the campaign count per account. Zero
	// selects 6.
	CampaignsPerAdvertiser int
	// PoolK bounds the discovery workload. Zero selects 150.
	PoolK int
	// Seed drives workload sampling.
	Seed uint64
	// Detector tunes the detector under test.
	Detector DetectorConfig
}

// withDefaults fills zero fields.
func (c EvalConfig) withDefaults() EvalConfig {
	if c.HonestAdvertisers == 0 {
		c.HonestAdvertisers = 20
	}
	if c.DiscriminatoryAdvertisers == 0 {
		c.DiscriminatoryAdvertisers = 10
	}
	if c.CampaignsPerAdvertiser == 0 {
		c.CampaignsPerAdvertiser = 6
	}
	if c.PoolK == 0 {
		c.PoolK = 150
	}
	return c
}

// EvalReport summarizes how well outcome-based detection separates
// discriminatory advertisers from honest ones.
type EvalReport struct {
	// AUC is the probability a discriminatory advertiser outscores an
	// honest one.
	AUC float64
	// TruePositives / FalseNegatives split the discriminatory accounts by
	// whether they were flagged; FalsePositives counts flagged honest
	// accounts.
	TruePositives  int
	FalseNegatives int
	FalsePositives int
	// HonestMeanScore and DiscrimMeanScore are the mean detector scores of
	// each group.
	HonestMeanScore  float64
	DiscrimMeanScore float64
}

// TPR returns the true-positive rate.
func (r EvalReport) TPR() float64 {
	total := r.TruePositives + r.FalseNegatives
	if total == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(total)
}

// auditOutcome measures one campaign's outcome ratios over the monitored
// classes, via the same cached auditor the experiments use.
func auditOutcome(a *core.Auditor, spec core.Measurement, classes []core.Class) map[string]float64 {
	out := make(map[string]float64, len(classes))
	for _, c := range classes {
		m, err := a.Audit(spec.Spec, c)
		if err != nil {
			continue // below floor for this class — no evidence either way
		}
		out[c.String()] = m.RepRatio
	}
	return out
}

// Evaluate runs the simulated advertiser workload against the detector and
// reports separation quality. target is the class the discriminatory
// advertisers skew toward.
func Evaluate(a *core.Auditor, target core.Class, cfg EvalConfig) (EvalReport, error) {
	cfg = cfg.withDefaults()
	rng := xrand.New(xrand.Mix(cfg.Seed, xrand.HashString(a.PlatformName()), 0xAD))

	// Campaign pools.
	ind, err := a.Individuals(target)
	if err != nil {
		return EvalReport{}, fmt.Errorf("mitigation eval: %w", err)
	}
	skewedPool, err := a.GreedyCompositions(ind, target, core.ComposeConfig{
		K: cfg.PoolK, Direction: core.Top, Seed: cfg.Seed,
	})
	if err != nil {
		return EvalReport{}, fmt.Errorf("mitigation eval: %w", err)
	}
	randomPool, err := a.RandomCompositions(target, core.ComposeConfig{
		K: cfg.PoolK, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return EvalReport{}, fmt.Errorf("mitigation eval: %w", err)
	}
	honestPool := append(append([]core.Measurement{}, ind...), randomPool...)
	if len(skewedPool) == 0 || len(honestPool) == 0 {
		return EvalReport{}, errors.New("mitigation eval: empty campaign pools")
	}

	classes := core.StandardClasses()
	det := NewDetector(cfg.Detector)

	run := func(advertiser string, pool []core.Measurement) error {
		for k := 0; k < cfg.CampaignsPerAdvertiser; k++ {
			campaign := pool[rng.Intn(len(pool))]
			ratios := auditOutcome(a, campaign, classes)
			if len(ratios) == 0 {
				continue
			}
			if err := det.Observe(CampaignOutcome{Advertiser: advertiser, Ratios: ratios}); err != nil {
				return err
			}
		}
		return nil
	}

	var honestNames, badNames []string
	for i := 0; i < cfg.HonestAdvertisers; i++ {
		name := fmt.Sprintf("honest-%02d", i)
		honestNames = append(honestNames, name)
		if err := run(name, honestPool); err != nil {
			return EvalReport{}, err
		}
	}
	for i := 0; i < cfg.DiscriminatoryAdvertisers; i++ {
		name := fmt.Sprintf("discrim-%02d", i)
		badNames = append(badNames, name)
		if err := run(name, skewedPool); err != nil {
			return EvalReport{}, err
		}
	}

	// Flag by population-relative anomaly unless the caller pinned a fixed
	// threshold: honest baselines differ enormously across platforms (on
	// LinkedIn even honest targetings commonly violate four-fifths).
	var flaggedList []string
	if cfg.Detector.FlagScore > 0 {
		flaggedList = det.Flagged()
	} else {
		flaggedList = det.FlaggedAdaptive(3)
	}
	flagged := make(map[string]bool)
	for _, adv := range flaggedList {
		flagged[adv] = true
	}
	var rep EvalReport
	var honestScores, badScores []float64
	for _, name := range honestNames {
		s := det.Score(name)
		honestScores = append(honestScores, s)
		rep.HonestMeanScore += s
		if flagged[name] {
			rep.FalsePositives++
		}
	}
	for _, name := range badNames {
		s := det.Score(name)
		badScores = append(badScores, s)
		rep.DiscrimMeanScore += s
		if flagged[name] {
			rep.TruePositives++
		} else {
			rep.FalseNegatives++
		}
	}
	rep.HonestMeanScore /= math.Max(1, float64(len(honestNames)))
	rep.DiscrimMeanScore /= math.Max(1, float64(len(badNames)))
	auc, err := AUC(badScores, honestScores)
	if err != nil {
		return rep, err
	}
	rep.AUC = auc
	return rep, nil
}
