package mitigation

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/targeting"
)

func gateAuditor(t *testing.T) *core.Auditor {
	t.Helper()
	d, err := platform.NewDeployment(platform.DeployOptions{Seed: 23, UniverseSize: 25000})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewAuditor(core.NewPlatformProvider(d.FacebookRestricted))
}

func TestGateValidation(t *testing.T) {
	g := &CompositionGate{}
	if _, err := g.Check(targeting.Attr(0)); err == nil {
		t.Fatal("empty gate accepted")
	}
}

func TestGateBlocksKnownSkewedComposition(t *testing.T) {
	a := gateAuditor(t)
	gate := &CompositionGate{Auditor: a, Classes: core.StandardClasses()}

	// The paper's own example pair is heavily male-skewed and must be
	// rejected; its outcome ratio must be surfaced in the reason.
	names := a.Provider().AttributeNames()
	find := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		t.Fatalf("missing %q", name)
		return -1
	}
	spec := targeting.And(
		targeting.Attr(find("Interests — Mechanical engineering")),
		targeting.Attr(find("Interests — Automobile repair shop")),
	)
	d, err := gate.Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed {
		t.Fatalf("gate allowed a composition with worst ratio %.2f toward %s", d.WorstRatio, d.WorstClass)
	}
	if d.WorstClass == "" || d.Reason == "" {
		t.Fatalf("decision lacks diagnostics: %+v", d)
	}
}

func TestGateAllowsBalancedComposition(t *testing.T) {
	a := gateAuditor(t)
	gate := &CompositionGate{Auditor: a, Classes: core.StandardClasses(), RatioHigh: 3}
	// A wide OR of many options is demographically balanced.
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = i
	}
	d, err := gate.Check(targeting.AnyAttr(ids...))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed {
		t.Fatalf("gate rejected a broad audience: %s", d.Reason)
	}
}

func TestGateUnmeasurable(t *testing.T) {
	a := gateAuditor(t)
	a.RecallFloor = 1 << 62
	gate := &CompositionGate{Auditor: a, Classes: core.StandardClasses()}
	if _, err := gate.Check(targeting.Attr(0)); !errors.Is(err, ErrUnmeasurable) {
		t.Fatalf("want ErrUnmeasurable, got %v", err)
	}
}

func TestEvaluateGate(t *testing.T) {
	a := gateAuditor(t)
	rep, err := EvaluateGate(a, core.GenderClass(population.Male), 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkewedTotal == 0 || rep.HonestTotal == 0 {
		t.Fatalf("empty evaluation: %+v", rep)
	}
	// The whole point of outcome-based gating: every greedily discovered
	// skewed composition is caught.
	if rep.BlockRate() < 0.99 {
		t.Errorf("gate blocked only %.0f%% of skewed compositions", rep.BlockRate()*100)
	}
	// Collateral exists (honest compositions are often inadvertently
	// skewed — §4.3) but must be well below the skewed block rate.
	if rep.CollateralRate() >= rep.BlockRate() {
		t.Errorf("collateral rate %.2f not below block rate %.2f",
			rep.CollateralRate(), rep.BlockRate())
	}
}

func TestGateRatesEmpty(t *testing.T) {
	var rep GateEvalReport
	if rep.BlockRate() != 0 || rep.CollateralRate() != 0 {
		t.Fatal("empty report rates should be 0")
	}
}
