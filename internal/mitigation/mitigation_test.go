package mitigation

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/population"
)

func TestCampaignSkewScoring(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	cases := []struct {
		ratios map[string]float64
		want   float64
	}{
		{map[string]float64{"male": 1.0}, 0},                                  // parity
		{map[string]float64{"male": 1.25}, 0},                                 // at the bound
		{map[string]float64{"male": 1.25 * math.E}, 1},                        // e beyond the bound
		{map[string]float64{"male": 1 / (1.25 * math.E)}, 1},                  // symmetric under-representation
		{map[string]float64{"male": 1.0, "18-24": 2.5}, math.Log(2.5 / 1.25)}, // worst class wins
		{map[string]float64{"male": math.Inf(1)}, 3 * math.Log(1.25)},         // capped infinity: 4b - b
	}
	for i, c := range cases {
		got, err := d.campaignSkew(c.ratios)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: skew = %v, want %v", i, got, c.want)
		}
	}
	if _, err := d.campaignSkew(nil); err == nil {
		t.Error("empty ratios accepted")
	}
}

func TestObserveAndScore(t *testing.T) {
	d := NewDetector(DetectorConfig{MinCampaigns: 2, FlagScore: 0.3})
	obs := func(adv string, r float64) {
		if err := d.Observe(CampaignOutcome{Advertiser: adv, Ratios: map[string]float64{"male": r}}); err != nil {
			t.Fatal(err)
		}
	}
	// Honest: one mildly skewed campaign among neutral ones.
	obs("honest", 1.0)
	obs("honest", 1.5)
	obs("honest", 0.9)
	// Discriminatory: consistently skewed.
	obs("bad", 4.0)
	obs("bad", 5.0)
	obs("bad", 3.5)
	if hs, bs := d.Score("honest"), d.Score("bad"); hs >= bs {
		t.Fatalf("honest score %v not below bad score %v", hs, bs)
	}
	flagged := d.Flagged()
	if len(flagged) != 1 || flagged[0] != "bad" {
		t.Fatalf("flagged = %v", flagged)
	}
	if d.Campaigns("bad") != 3 || d.Campaigns("nobody") != 0 {
		t.Fatal("campaign counts wrong")
	}
	if d.Score("nobody") != 0 {
		t.Fatal("unknown advertiser should score 0")
	}
}

func TestMinCampaignsGate(t *testing.T) {
	d := NewDetector(DetectorConfig{MinCampaigns: 5, FlagScore: 0.1})
	for i := 0; i < 4; i++ {
		if err := d.Observe(CampaignOutcome{Advertiser: "bad", Ratios: map[string]float64{"male": 10}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Flagged(); len(got) != 0 {
		t.Fatalf("flagged %v with insufficient evidence", got)
	}
}

func TestObserveValidation(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	if err := d.Observe(CampaignOutcome{Advertiser: "", Ratios: map[string]float64{"male": 1}}); err == nil {
		t.Error("empty advertiser accepted")
	}
	if err := d.Observe(CampaignOutcome{Advertiser: "a"}); err == nil {
		t.Error("empty ratios accepted")
	}
}

func TestConcurrentObserve(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = d.Observe(CampaignOutcome{Advertiser: "a", Ratios: map[string]float64{"male": 2}})
			}
		}()
	}
	wg.Wait()
	if got := d.Campaigns("a"); got != 400 {
		t.Fatalf("campaigns = %d, want 400", got)
	}
}

func TestFlaggedAdaptive(t *testing.T) {
	d := NewDetector(DetectorConfig{MinCampaigns: 1})
	obs := func(adv string, r float64) {
		if err := d.Observe(CampaignOutcome{Advertiser: adv, Ratios: map[string]float64{"male": r}}); err != nil {
			t.Fatal(err)
		}
	}
	// A baseline of mildly skewed honest advertisers and one extreme
	// outlier: adaptive flagging must pick exactly the outlier even though
	// the honest baseline itself violates four-fifths.
	for i := 0; i < 12; i++ {
		obs(fmt.Sprintf("honest-%d", i), 1.5+0.05*float64(i%3))
	}
	obs("outlier", 30)
	obs("outlier", 25)
	got := d.FlaggedAdaptive(3)
	if len(got) != 1 || got[0] != "outlier" {
		t.Fatalf("FlaggedAdaptive = %v, want [outlier]", got)
	}
}

func TestFlaggedAdaptiveDegenerate(t *testing.T) {
	d := NewDetector(DetectorConfig{MinCampaigns: 1})
	for i := 0; i < 5; i++ {
		if err := d.Observe(CampaignOutcome{
			Advertiser: fmt.Sprintf("a-%d", i),
			Ratios:     map[string]float64{"male": 1.0},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.FlaggedAdaptive(3); len(got) != 0 {
		t.Fatalf("identical advertisers flagged: %v", got)
	}
	empty := NewDetector(DetectorConfig{})
	if got := empty.FlaggedAdaptive(3); got != nil {
		t.Fatalf("empty detector flagged: %v", got)
	}
}

func TestAUC(t *testing.T) {
	auc, err := AUC([]float64{3, 4}, []float64{1, 2})
	if err != nil || auc != 1 {
		t.Fatalf("perfect separation AUC = %v, %v", auc, err)
	}
	auc, err = AUC([]float64{1, 2}, []float64{3, 4})
	if err != nil || auc != 0 {
		t.Fatalf("inverted AUC = %v", auc)
	}
	auc, err = AUC([]float64{1, 1}, []float64{1, 1})
	if err != nil || auc != 0.5 {
		t.Fatalf("tied AUC = %v", auc)
	}
	if _, err := AUC(nil, []float64{1}); err == nil {
		t.Error("empty positives accepted")
	}
}

func TestEvaluateSeparatesAdvertisers(t *testing.T) {
	// End-to-end §5 evaluation: outcome-based detection must cleanly
	// separate consistently-skewed advertisers from honest ones on the
	// simulated restricted interface.
	d, err := platform.NewDeployment(platform.DeployOptions{Seed: 17, UniverseSize: 25000})
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAuditor(core.NewPlatformProvider(d.FacebookRestricted))
	rep, err := Evaluate(a, core.GenderClass(population.Male), EvalConfig{
		HonestAdvertisers:         12,
		DiscriminatoryAdvertisers: 8,
		CampaignsPerAdvertiser:    5,
		PoolK:                     80,
		Seed:                      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AUC < 0.9 {
		t.Errorf("AUC = %v, want >= 0.9 (outcome scores should separate cleanly)", rep.AUC)
	}
	if rep.DiscrimMeanScore <= rep.HonestMeanScore {
		t.Errorf("discriminatory mean %v not above honest mean %v",
			rep.DiscrimMeanScore, rep.HonestMeanScore)
	}
	if rep.TPR() < 0.75 {
		t.Errorf("TPR = %v, want >= 0.75", rep.TPR())
	}
	if rep.FalsePositives > 3 {
		t.Errorf("%d honest advertisers flagged", rep.FalsePositives)
	}
}
