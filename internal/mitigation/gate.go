package mitigation

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/targeting"
)

// CompositionGate is the platform-side mitigation §5 argues for: before a
// campaign in a protected category runs, the platform audits the *outcome*
// of the advertiser's full composition (not its individual options) and
// rejects it when the audience is skewed beyond bounds for any monitored
// class. This is the structural alternative to removing skewed individual
// options, which Figures 3/6 show cannot work.
type CompositionGate struct {
	// Auditor measures outcomes; it sees exactly what the platform sees.
	Auditor *core.Auditor
	// Classes are the monitored sensitive populations.
	Classes []core.Class
	// RatioHigh bounds over-representation; the mirror bound 1/RatioHigh
	// bounds under-representation. Zero selects the four-fifths 1.25.
	RatioHigh float64
	// MinReach skips gating for audiences too small to measure. Zero
	// selects the auditor's recall floor.
	MinReach int64
}

// GateDecision is the gate's verdict on one campaign spec.
type GateDecision struct {
	// Allowed reports whether the campaign may run.
	Allowed bool
	// Reason explains a rejection (empty when allowed).
	Reason string
	// WorstClass is the class with the most skewed outcome.
	WorstClass string
	// WorstRatio is that class's representation ratio.
	WorstRatio float64
}

// ErrUnmeasurable marks a spec whose outcome could not be measured at all.
var ErrUnmeasurable = errors.New("mitigation: campaign outcome unmeasurable")

// Check audits the spec's outcome against every monitored class.
func (g *CompositionGate) Check(spec targeting.Spec) (GateDecision, error) {
	if g.Auditor == nil || len(g.Classes) == 0 {
		return GateDecision{}, errors.New("mitigation: gate needs an auditor and classes")
	}
	high := g.RatioHigh
	if high == 0 {
		high = 1.25
	}
	low := 1 / high

	measured := 0
	worst := GateDecision{Allowed: true, WorstRatio: 1}
	worstDist := 0.0
	for _, c := range g.Classes {
		m, err := g.Auditor.Audit(spec, c)
		if errors.Is(err, core.ErrBelowFloor) {
			continue // too small for this class pairing; others may measure
		}
		if err != nil {
			return GateDecision{}, err
		}
		measured++
		var dist float64
		switch {
		case math.IsInf(m.RepRatio, 0):
			dist = math.Inf(1)
		case m.RepRatio <= 0:
			continue
		default:
			dist = math.Abs(math.Log(m.RepRatio))
		}
		if dist > worstDist {
			worstDist = dist
			worst.WorstClass = c.String()
			worst.WorstRatio = m.RepRatio
		}
	}
	if measured == 0 {
		return GateDecision{}, ErrUnmeasurable
	}
	if worst.WorstRatio > high || worst.WorstRatio < low || math.IsInf(worst.WorstRatio, 0) {
		worst.Allowed = false
		worst.Reason = fmt.Sprintf("outcome skewed toward %q (ratio %.2f outside [%.2f, %.2f])",
			worst.WorstClass, worst.WorstRatio, low, high)
	}
	return worst, nil
}

// GateEvalReport summarizes a gate evaluation over discovered compositions.
type GateEvalReport struct {
	// SkewedBlocked / SkewedTotal: how many of the greedily discovered
	// skewed compositions the gate rejects (want: all).
	SkewedBlocked, SkewedTotal int
	// HonestBlocked / HonestTotal: collateral damage on random honest
	// compositions — some of which are legitimately skewed (§4.3's
	// inadvertent-discrimination finding), so this is not expected to be 0.
	HonestBlocked, HonestTotal int
}

// BlockRate returns the fraction of skewed compositions blocked.
func (r GateEvalReport) BlockRate() float64 {
	if r.SkewedTotal == 0 {
		return 0
	}
	return float64(r.SkewedBlocked) / float64(r.SkewedTotal)
}

// CollateralRate returns the fraction of honest compositions blocked.
func (r GateEvalReport) CollateralRate() float64 {
	if r.HonestTotal == 0 {
		return 0
	}
	return float64(r.HonestBlocked) / float64(r.HonestTotal)
}

// EvaluateGate runs the gate over the Top 2-way discovered compositions
// (which it must block) and an equal-sized random-composition workload
// (measuring collateral).
//
// The gate bound is set at ratio 2.0 rather than the four-fifths 1.25: at
// four-fifths strictness across six monitored classes essentially *every*
// composition fails for some class — the paper's §4.3 inadvertent-
// discrimination finding restated as policy — so a deployable gate must
// tolerate moderate skew and reject the extreme tail.
func EvaluateGate(a *core.Auditor, target core.Class, k int, seed uint64) (GateEvalReport, error) {
	if k <= 0 {
		k = 100
	}
	gate := &CompositionGate{Auditor: a, Classes: core.StandardClasses(), RatioHigh: 2.0}
	ind, err := a.Individuals(target)
	if err != nil {
		return GateEvalReport{}, err
	}
	skewed, err := a.GreedyCompositions(ind, target, core.ComposeConfig{K: k, Direction: core.Top, Seed: seed})
	if err != nil {
		return GateEvalReport{}, err
	}
	honest, err := a.RandomCompositions(target, core.ComposeConfig{K: k, Seed: seed + 1})
	if err != nil {
		return GateEvalReport{}, err
	}
	var rep GateEvalReport
	for _, m := range skewed {
		d, err := gate.Check(m.Spec)
		if err != nil {
			continue
		}
		rep.SkewedTotal++
		if !d.Allowed {
			rep.SkewedBlocked++
		}
	}
	for _, m := range honest {
		d, err := gate.Check(m.Spec)
		if err != nil {
			continue
		}
		rep.HonestTotal++
		if !d.Allowed {
			rep.HonestBlocked++
		}
	}
	return rep, nil
}
