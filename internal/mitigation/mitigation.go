// Package mitigation implements the defense the paper proposes in its
// concluding discussion (§5): because removing skewed individual targeting
// options cannot fix composition, "ad platforms could potentially use
// anomaly detection based on the outcome of ad targeting to detect
// advertisers who consistently target skewed audiences. Any flagged
// advertisers could then be subject to further review."
//
// The Detector therefore scores the *outcome* of each campaign — the
// representation ratios of the audience the advertiser actually composed,
// measured with the same Equation-1 machinery the audit uses — never the
// targeting spec itself. An advertiser accumulates excess-skew evidence
// across campaigns and is flagged once the evidence is consistent, exactly
// the "consistently target skewed audiences" trigger the paper sketches.
package mitigation

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// DetectorConfig tunes the outcome-based detector.
type DetectorConfig struct {
	// RatioHigh is the over-representation threshold; skew is measured as
	// log-ratio excess beyond it. Zero selects the four-fifths bound 1.25.
	RatioHigh float64
	// MinCampaigns is the evidence floor before an advertiser can be
	// flagged ("consistently" needs repetition). Zero selects 3.
	MinCampaigns int
	// FlagScore is the mean excess-skew score at which an advertiser is
	// flagged. Zero selects 0.5 (≈ a consistent ratio of 1.25·e^0.5 ≈ 2.1).
	FlagScore float64
}

// withDefaults fills zero fields.
func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.RatioHigh == 0 {
		c.RatioHigh = 1.25
	}
	if c.MinCampaigns == 0 {
		c.MinCampaigns = 3
	}
	if c.FlagScore == 0 {
		c.FlagScore = 0.5
	}
	return c
}

// CampaignOutcome is the audited outcome of one campaign: the audience's
// representation ratios toward each monitored sensitive class.
type CampaignOutcome struct {
	// Advertiser identifies the account.
	Advertiser string
	// Ratios maps class name → representation ratio of the composed
	// audience (Equation 1). Infinite ratios are admissible: a one-sided
	// audience is maximal evidence.
	Ratios map[string]float64
}

// advertiserState accumulates evidence.
type advertiserState struct {
	campaigns int
	totalSkew float64
}

// Detector is the streaming outcome monitor.
type Detector struct {
	cfg DetectorConfig

	mu    sync.Mutex
	state map[string]*advertiserState
}

// NewDetector returns a detector with the given config.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults(), state: make(map[string]*advertiserState)}
}

// ErrNoRatios marks an outcome carrying no measurable ratios.
var ErrNoRatios = errors.New("mitigation: campaign outcome has no ratios")

// campaignSkew converts one campaign's ratios into an excess-skew score:
// the worst class's |log ratio| beyond the threshold band. A campaign
// within the four-fifths band for every class scores zero.
func (d *Detector) campaignSkew(ratios map[string]float64) (float64, error) {
	if len(ratios) == 0 {
		return 0, ErrNoRatios
	}
	bound := math.Log(d.cfg.RatioHigh)
	worst := 0.0
	for _, r := range ratios {
		var mag float64
		switch {
		case math.IsInf(r, 0):
			// One side of the audience rounded to zero: cap the evidence
			// rather than poisoning the mean with an infinity.
			mag = 4 * bound
		case r <= 0:
			continue
		default:
			mag = math.Abs(math.Log(r))
		}
		if excess := mag - bound; excess > worst {
			worst = excess
		}
	}
	return worst, nil
}

// Observe ingests one campaign outcome.
func (d *Detector) Observe(o CampaignOutcome) error {
	if o.Advertiser == "" {
		return errors.New("mitigation: empty advertiser id")
	}
	skew, err := d.campaignSkew(o.Ratios)
	if err != nil {
		return fmt.Errorf("advertiser %s: %w", o.Advertiser, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.state[o.Advertiser]
	if !ok {
		st = &advertiserState{}
		d.state[o.Advertiser] = st
	}
	st.campaigns++
	st.totalSkew += skew
	return nil
}

// Score returns an advertiser's mean excess skew across observed campaigns
// (0 for unknown advertisers).
func (d *Detector) Score(advertiser string) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.state[advertiser]
	if !ok || st.campaigns == 0 {
		return 0
	}
	return st.totalSkew / float64(st.campaigns)
}

// Campaigns returns how many outcomes an advertiser has accumulated.
func (d *Detector) Campaigns(advertiser string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.state[advertiser]
	if !ok {
		return 0
	}
	return st.campaigns
}

// Flagged returns the advertisers whose mean excess skew exceeds the flag
// score with at least MinCampaigns of evidence, sorted by descending score.
func (d *Detector) Flagged() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	type scored struct {
		adv   string
		score float64
	}
	var out []scored
	for adv, st := range d.state {
		if st.campaigns < d.cfg.MinCampaigns {
			continue
		}
		if s := st.totalSkew / float64(st.campaigns); s > d.cfg.FlagScore {
			out = append(out, scored{adv, s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].adv < out[j].adv
	})
	names := make([]string, len(out))
	for i, s := range out {
		names[i] = s.adv
	}
	return names
}

// scoresWithEvidence snapshots the scores of advertisers meeting the
// evidence floor.
func (d *Detector) scoresWithEvidence() map[string]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]float64)
	for adv, st := range d.state {
		if st.campaigns >= d.cfg.MinCampaigns {
			out[adv] = st.totalSkew / float64(st.campaigns)
		}
	}
	return out
}

// median returns the median of xs (xs is consumed).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// FlaggedAdaptive flags advertisers whose score is anomalous *relative to
// the advertiser population*: above median + k·MAD of all sufficiently
// observed advertisers. A fixed threshold cannot work across platforms
// because on some interfaces even honest targetings skew (the paper's §4.3
// point about inadvertent discrimination); what identifies an abuser is
// being an outlier against the platform's own baseline. Results are sorted
// by descending score.
func (d *Detector) FlaggedAdaptive(k float64) []string {
	scores := d.scoresWithEvidence()
	if len(scores) == 0 {
		return nil
	}
	all := make([]float64, 0, len(scores))
	for _, s := range scores {
		all = append(all, s)
	}
	med := median(append([]float64(nil), all...))
	dev := make([]float64, 0, len(all))
	for _, s := range all {
		dev = append(dev, math.Abs(s-med))
	}
	mad := median(dev)
	// Guard degenerate distributions (everyone identical): fall back to a
	// small absolute margin.
	spread := 1.4826 * mad // normal-consistent MAD scaling
	if spread < 0.05 {
		spread = 0.05
	}
	threshold := med + k*spread
	type scored struct {
		adv   string
		score float64
	}
	var out []scored
	for adv, s := range scores {
		if s > threshold {
			out = append(out, scored{adv, s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].adv < out[j].adv
	})
	names := make([]string, len(out))
	for i, s := range out {
		names[i] = s.adv
	}
	return names
}

// AUC computes the area under the ROC curve for separating positives from
// negatives by score (ties split evenly). It is the probability a random
// positive outscores a random negative — the headline quality metric of the
// detector evaluation.
func AUC(positives, negatives []float64) (float64, error) {
	if len(positives) == 0 || len(negatives) == 0 {
		return 0, errors.New("mitigation: AUC needs both positives and negatives")
	}
	wins := 0.0
	for _, p := range positives {
		for _, n := range negatives {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(positives)*len(negatives)), nil
}
