package cluster

import (
	"context"
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/platform"
)

// newTestTracer builds a deterministic always-sample tracer with its own
// metrics registry and provenance log, isolated from other tests.
func newTestTracer(seed uint64) *trace.Tracer {
	return trace.New(trace.Options{
		SampleRate: 1,
		Seed:       seed,
		Metrics:    obs.NewRegistry(),
		Provenance: trace.NewProvenanceLog(0, nil),
	})
}

// dumpTrace fetches the buffered trace a span belongs to, failing the test
// when it was never recorded.
func dumpTrace(t *testing.T, tr *trace.Tracer, span *trace.Span) trace.TraceDump {
	t.Helper()
	id, ok := trace.ParseTraceID(span.TraceID())
	if !ok {
		t.Fatalf("span trace ID %q does not parse", span.TraceID())
	}
	d, ok := tr.Dump(id)
	if !ok {
		t.Fatalf("trace %s not in buffer", span.TraceID())
	}
	return d
}

// hasAnnotation reports whether the annotation list carries k=v.
func hasAnnotation(as []trace.Annotation, k, v string) bool {
	for _, a := range as {
		if a.Key == k && a.Value == v {
			return true
		}
	}
	return false
}

// countSpans counts dump spans with the given name carrying every k=v pair
// in kv.
func countSpans(d trace.TraceDump, name string, kv ...string) int {
	n := 0
outer:
	for _, s := range d.Spans {
		if s.Name != name {
			continue
		}
		for i := 0; i+1 < len(kv); i += 2 {
			if !hasAnnotation(s.Annotations, kv[i], kv[i+1]) {
				continue outer
			}
		}
		n++
	}
	return n
}

// TestTracedFailoverBitIdentical is satellite coverage for tracing under the
// failure-injection battery: a traced scatter-gather with a dead shard must
// (a) stay bit-identical to the untraced single-node answer — tracing
// observes the scatter, never steers it — and (b) leave a trace that tells
// the failover story: per-attempt shard spans with outcome ok/failover,
// a round-1 reassignment, and provenance records naming the surviving
// shards and the extra round.
func TestTracedFailoverBitIdentical(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	single, err := platform.NewDeployment(platform.DeployOptions{
		Seed: eqSeed, UniverseSize: eqUniverse, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, flaky := buildFlakyCluster(t, 3, 1, opts, 0)
	flaky["shard-01"].down.Store(true)

	p := single.Facebook
	reqs := clusterBatch(p, 4242, 24)
	want, err := p.MeasureMany(reqs)
	if err != nil {
		t.Fatal(err)
	}

	tr := newTestTracer(11)
	root := tr.StartRoot("test.traced_failover")
	ctx := trace.NewContext(context.Background(), root)
	got, err := coord.MeasureManyCtx(ctx, p.Name(), reqs)
	root.End()
	if err != nil {
		t.Fatalf("failover with a live replica should succeed: %v", err)
	}
	for i := range reqs {
		matchSlot(t, "traced failover", i, got[i], want[i])
	}

	d := dumpTrace(t, tr, root)
	if n := countSpans(d, "cluster.size_many", "failover_rounds", "1"); n != 1 {
		t.Fatalf("size_many spans with failover_rounds=1: %d, want 1", n)
	}
	if n := countSpans(d, "cluster.shard", "shard", "shard-01", "outcome", "failover"); n != 1 {
		t.Fatalf("failover spans for the dead shard: %d, want 1", n)
	}
	if n := countSpans(d, "cluster.shard", "round", "1", "outcome", "ok"); n < 1 {
		t.Fatal("no successful round-1 reassignment span recorded")
	}
	if n := countSpans(d, "cluster.shard", "outcome", "ok"); n < 3 {
		t.Fatalf("ok shard-attempt spans: %d, want >= 3 (two primaries + reassignment)", n)
	}
	for _, s := range d.Spans {
		if s.Name == "cluster.shard" && hasAnnotation(s.Annotations, "outcome", "failover") && s.Err == "" {
			t.Fatal("failover attempt span carries no error")
		}
	}

	recs := tr.Provenance().Records()
	okSlots := 0
	for i := range want {
		if want[i].Err == nil {
			okSlots++
		}
	}
	if len(recs) != okSlots {
		t.Fatalf("provenance records: %d, want one per successful slot (%d)", len(recs), okSlots)
	}
	for _, r := range recs {
		if r.Source != "cluster" {
			t.Fatalf("provenance source %q, want cluster", r.Source)
		}
		if r.FailoverRounds != 1 {
			t.Fatalf("provenance failover_rounds %d, want 1", r.FailoverRounds)
		}
		if len(r.Shards) != 2 || r.Shards[0] != "shard-00" || r.Shards[1] != "shard-02" {
			t.Fatalf("provenance shards %v, want [shard-00 shard-02]", r.Shards)
		}
		if r.TraceID != root.TraceID() {
			t.Fatalf("provenance trace %q, want %q", r.TraceID, root.TraceID())
		}
		if r.Key == "" || r.PlanHash == "" {
			t.Fatalf("provenance record missing key (%q) or plan hash (%q)", r.Key, r.PlanHash)
		}
	}
}

// TestTracedRetryRecorded pins the retry story in the trace: a transient
// failure absorbed by the same-shard retry budget must surface as an
// attempt-0 span with outcome=retry followed by an attempt-1 ok span, with
// zero failover rounds — and the counts still match the single node.
func TestTracedRetryRecorded(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	single, err := platform.NewDeployment(platform.DeployOptions{
		Seed: eqSeed, UniverseSize: eqUniverse, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, flaky := buildFlakyCluster(t, 2, 1, opts, 1)
	flaky["shard-00"].failFirst.Store(1)

	p := single.LinkedIn
	reqs := clusterBatch(p, 909, 8)
	want, err := p.MeasureMany(reqs)
	if err != nil {
		t.Fatal(err)
	}

	tr := newTestTracer(13)
	root := tr.StartRoot("test.traced_retry")
	ctx := trace.NewContext(context.Background(), root)
	got, err := coord.MeasureManyCtx(ctx, p.Name(), reqs)
	root.End()
	if err != nil {
		t.Fatalf("retry budget should have absorbed the transient failure: %v", err)
	}
	for i := range reqs {
		matchSlot(t, "traced retry", i, got[i], want[i])
	}

	d := dumpTrace(t, tr, root)
	if n := countSpans(d, "cluster.shard", "shard", "shard-00", "attempt", "0", "outcome", "retry"); n != 1 {
		t.Fatalf("retry spans for shard-00 attempt 0: %d, want 1", n)
	}
	if n := countSpans(d, "cluster.shard", "shard", "shard-00", "attempt", "1", "outcome", "ok"); n != 1 {
		t.Fatalf("ok spans for shard-00 attempt 1: %d, want 1", n)
	}
	if n := countSpans(d, "cluster.size_many", "failover_rounds", "0"); n != 1 {
		t.Fatal("retry escalated to a failover round")
	}
}

// TestTracedPartialProvenance checks the refusal path leaves evidence: a
// partial result (dead shard, no replicas) must error the size_many span
// and emit exactly one Partial provenance record — which shards did answer,
// and that the value was withheld, not under-counted.
func TestTracedPartialProvenance(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	coord, flaky := buildFlakyCluster(t, 3, 0, opts, 0)
	flaky["shard-02"].down.Store(true)

	p, err := coord.Metadata().ByName("facebook")
	if err != nil {
		t.Fatal(err)
	}
	reqs := clusterBatch(p, 777, 4)

	tr := newTestTracer(17)
	root := tr.StartRoot("test.traced_partial")
	ctx := trace.NewContext(context.Background(), root)
	_, err = coord.MeasureManyCtx(ctx, "facebook", reqs)
	root.End()
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("dead shard without replicas: got %v, want ErrPartial", err)
	}

	d := dumpTrace(t, tr, root)
	errored := false
	for _, s := range d.Spans {
		if s.Name == "cluster.size_many" && s.Err != "" {
			errored = true
		}
	}
	if !errored {
		t.Fatal("partial result left no errored size_many span")
	}

	recs := tr.Provenance().Records()
	if len(recs) != 1 {
		t.Fatalf("partial batch provenance records: %d, want 1", len(recs))
	}
	r := recs[0]
	if !r.Partial {
		t.Fatal("provenance record not marked partial")
	}
	if r.Value != 0 {
		t.Fatalf("withheld result carries a value: %d", r.Value)
	}
	if len(r.Shards) != 2 {
		t.Fatalf("partial provenance shards %v, want the two survivors", r.Shards)
	}
	if r.TraceID != root.TraceID() {
		t.Fatalf("partial provenance trace %q, want %q", r.TraceID, root.TraceID())
	}
}

// TestUntracedScatterRecordsNothing is the cost-discipline check: without a
// span in the context the scatter-gather must not touch the tracer at all —
// no spans, no provenance — while returning the same answer.
func TestUntracedScatterRecordsNothing(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	coord, _ := buildFlakyCluster(t, 3, 1, opts, 0)
	tr := newTestTracer(19)
	trace.SetDefault(tr)
	defer trace.SetDefault(nil)

	p, err := coord.Metadata().ByName("google")
	if err != nil {
		t.Fatal(err)
	}
	reqs := clusterBatch(p, 313, 8)
	if _, err := coord.MeasureManyCtx(context.Background(), "google", reqs); err != nil {
		t.Fatal(err)
	}
	if n := tr.Len(); n != 0 {
		t.Fatalf("untraced scatter buffered %d traces", n)
	}
	if n := tr.Provenance().Len(); n != 0 {
		t.Fatalf("untraced scatter left %d provenance records", n)
	}
}
