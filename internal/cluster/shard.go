package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/platform"
)

// ErrPartitionNotHeld marks a count request addressed to a shard for a
// partition it neither owns nor replicates — the coordinator's signal to
// re-address the partition through the ring's owner list.
var ErrPartitionNotHeld = errors.New("cluster: partition not held by shard")

// Shard is one node's slice of the deployment: a platform.Deployment built
// over exactly the partitions the ring assigns the node (primary plus
// replicas), answering raw-count batches over any subset of them. Shard
// implements Conn, so an in-process cluster wires coordinators straight to
// shards; platformd wraps one behind the adapi transport for the real
// multi-process topology.
type Shard struct {
	id       string
	dep      *platform.Deployment
	held     []uint32
	local    map[uint32]platform.IndexRange
	ringHash uint64
}

// NewShard materializes node id's slice of the deployment described by
// opts. The layout decides which global-ID spans the node holds; opts'
// UniverseSize is overridden by the layout's (they describe the same
// space). With opts.Compressed set the shard retains catalog audiences
// compressed-only — the memory posture that fits a 2^24-user shard.
func NewShard(id string, layout *Layout, opts platform.DeployOptions) (*Shard, error) {
	found := false
	for _, n := range layout.Ring().Nodes() {
		if n == id {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: shard %q not in ring", id)
	}
	opts.UniverseSize = layout.UniverseSize()
	opts.ShardSpans = layout.ShardSpans(id)
	dep, err := platform.NewDeployment(opts)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %s deployment: %w", id, err)
	}
	return NewShardFromDeployment(id, layout, dep)
}

// NewShardFromDeployment wraps an already-constructed deployment — typically
// one reconstructed from a snapshot (internal/snapshot.LoadDeployment) — as
// node id's shard. The deployment must span exactly the global-ID ranges the
// layout assigns the node; a snapshot written for a different ring or node
// is refused here before it can serve a single count.
func NewShardFromDeployment(id string, layout *Layout, dep *platform.Deployment) (*Shard, error) {
	found := false
	for _, n := range layout.Ring().Nodes() {
		if n == id {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: shard %q not in ring", id)
	}
	uni := dep.Facebook.Universe()
	if got, want := uni.GlobalSize(), layout.UniverseSize(); got != want {
		return nil, fmt.Errorf("cluster: shard %s deployment spans a %d-user universe, layout has %d", id, got, want)
	}
	want := layout.ShardSpans(id)
	got := uni.Spans()
	if len(got) != len(want) {
		return nil, fmt.Errorf("cluster: shard %s deployment holds %d spans, layout assigns %d", id, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return nil, fmt.Errorf("cluster: shard %s span %d is [%d, %d), layout assigns [%d, %d)",
				id, i, got[i].Lo, got[i].Hi, want[i].Lo, want[i].Hi)
		}
	}
	held := layout.HeldPartitions(id)
	return &Shard{
		id:       id,
		dep:      dep,
		held:     held,
		local:    layout.localRanges(held),
		ringHash: layout.Fingerprint(),
	}, nil
}

// CatalogHash fingerprints the shard's catalogs (platform.CatalogHash): the
// coordinator's preflight compares it against its own metadata deployment so
// a shard loaded from a stale snapshot can never contribute counts for the
// wrong options. The error is always nil in-process; the signature matches
// CatalogHasher, whose remote implementations can fail to fetch.
func (s *Shard) CatalogHash() (string, error) { return platform.CatalogHash(s.dep), nil }

// ID returns the shard's node name.
func (s *Shard) ID() string { return s.id }

// RingHash returns the fingerprint of the layout the shard was built from
// (Layout.Fingerprint), echoed from the health endpoint so layout agreement
// across a cluster is checkable before any count is scattered.
func (s *Shard) RingHash() uint64 { return s.ringHash }

// Deployment returns the shard's platform deployment (its local slice of
// every universe).
func (s *Shard) Deployment() *platform.Deployment { return s.dep }

// Held returns the partitions the shard materializes, ascending (shared; do
// not modify).
func (s *Shard) Held() []uint32 { return s.held }

// CountBatch evaluates the batch on interface iface under the given door
// and returns each spec's raw matched-user count restricted to the listed
// partitions. Scaling and rounding are deliberately absent: they are the
// coordinator's merge-then-round job. Partitions must be held by this
// shard; an unknown one fails the whole call with ErrPartitionNotHeld so
// the coordinator can re-address it.
func (s *Shard) CountBatch(ctx context.Context, iface string, door platform.Door, parts []uint32, reqs []platform.EstimateRequest) ([]platform.RawCount, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := s.dep.ByName(iface)
	if err != nil {
		return nil, err
	}
	ranges := make([]platform.IndexRange, 0, len(parts))
	for _, part := range parts {
		r, ok := s.local[part]
		if !ok {
			return nil, fmt.Errorf("%w: shard %s, partition %d", ErrPartitionNotHeld, s.id, part)
		}
		ranges = append(ranges, r)
	}
	// Ascending ranges let the full-cover fast path in RawCountMany trigger
	// when the batch asks for everything the shard holds.
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Lo < ranges[j].Lo })
	return p.RawCountMany(door, reqs, ranges), nil
}
