package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
)

// flakyConn wraps a shard and fails on demand: while `down` is set every
// CountBatch errors, and `failFirst` makes only the first n calls fail (the
// retry-path probe). Safe for concurrent use, as the Conn contract demands.
type flakyConn struct {
	*Shard
	down      atomic.Bool
	failFirst atomic.Int64
	calls     atomic.Int64
}

func (f *flakyConn) CountBatch(ctx context.Context, iface string, door platform.Door, parts []uint32, reqs []platform.EstimateRequest) ([]platform.RawCount, error) {
	n := f.calls.Add(1)
	if f.down.Load() {
		return nil, fmt.Errorf("flaky: shard %s is down", f.ID())
	}
	if n <= f.failFirst.Load() {
		return nil, fmt.Errorf("flaky: shard %s transient failure %d", f.ID(), n)
	}
	return f.Shard.CountBatch(ctx, iface, door, parts, reqs)
}

// buildFlakyCluster is buildCluster with every conn wrapped in a flakyConn.
func buildFlakyCluster(t testing.TB, n, replicas int, opts platform.DeployOptions, retries int) (*Coordinator, map[string]*flakyConn) {
	t.Helper()
	ring, err := NewRing(clusterNodes(n), 0, replicas)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(ring, opts.UniverseSize, eqPartition)
	if err != nil {
		t.Fatal(err)
	}
	flaky := make(map[string]*flakyConn, n)
	conns := make([]Conn, 0, n)
	for _, node := range ring.Nodes() {
		s, err := NewShard(node, layout, opts)
		if err != nil {
			t.Fatalf("NewShard(%s): %v", node, err)
		}
		fc := &flakyConn{Shard: s}
		flaky[node] = fc
		conns = append(conns, fc)
	}
	coord, err := NewCoordinator(Options{
		Layout:  layout,
		Conns:   conns,
		Deploy:  opts,
		Retries: retries,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord, flaky
}

// TestFailoverBitIdentical is the failure-injection battery: concurrent
// coordinator batches while one shard dies mid-run. With one replica every
// partition still has a live owner, so every batch must succeed via
// failover AND stay bit-identical to the single-node answer — a failed-over
// count that merely "looks plausible" is exactly the bug class this test
// exists to catch. Run under -race in CI.
func TestFailoverBitIdentical(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	single, err := platform.NewDeployment(platform.DeployOptions{
		Seed: eqSeed, UniverseSize: eqUniverse, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, flaky := buildFlakyCluster(t, 3, 1, opts, 0)

	p := single.Facebook
	reqs := clusterBatch(p, 9001, 32)
	want, err := p.MeasureMany(reqs)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	var kicked sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if w == 0 && round == rounds/2 {
					// Kill one shard mid-run, once, while batches are in
					// flight on every other worker.
					kicked.Do(func() { flaky["shard-01"].down.Store(true) })
				}
				got, err := coord.MeasureMany(p.Name(), reqs)
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %w", w, round, err)
					return
				}
				for i := range reqs {
					if (got[i].Err == nil) != (want[i].Err == nil) {
						errs <- fmt.Errorf("worker %d round %d slot %d: err mismatch %v vs %v", w, round, i, got[i].Err, want[i].Err)
						return
					}
					if got[i].Err == nil && got[i].Size != want[i].Size {
						errs <- fmt.Errorf("worker %d round %d slot %d: size %d, want %d", w, round, i, got[i].Size, want[i].Size)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if !flaky["shard-01"].down.Load() {
		t.Fatal("test bug: shard was never killed")
	}
}

// TestRetrySameShard checks the per-shard retry budget: a transient
// failure followed by success must be absorbed by retries without any
// failover, and the answer stays bit-identical.
func TestRetrySameShard(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	single, err := platform.NewDeployment(platform.DeployOptions{
		Seed: eqSeed, UniverseSize: eqUniverse, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, flaky := buildFlakyCluster(t, 2, 1, opts, 1)
	flaky["shard-00"].failFirst.Store(1)

	p := single.LinkedIn
	reqs := clusterBatch(p, 555, 8)
	want, err := p.MeasureMany(reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.MeasureMany(p.Name(), reqs)
	if err != nil {
		t.Fatalf("retry should have absorbed the transient failure: %v", err)
	}
	for i := range reqs {
		matchSlot(t, "retry", i, got[i], want[i])
	}
}

// TestPartialError checks graceful degradation: with zero replicas a dead
// shard's partitions have nowhere to go, so the coordinator must refuse
// with ErrPartial naming the unserved partitions rather than return an
// under-count.
func TestPartialError(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	coord, flaky := buildFlakyCluster(t, 3, 0, opts, 0)
	flaky["shard-02"].down.Store(true)

	p, err := coord.Metadata().ByName("facebook")
	if err != nil {
		t.Fatal(err)
	}
	reqs := clusterBatch(p, 777, 4)
	_, err = coord.MeasureMany("facebook", reqs)
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("dead shard with no replicas: got %v, want ErrPartial", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PartialError", err)
	}
	if msg := pe.Error(); !strings.Contains(msg, "unserved") {
		t.Fatalf("partial error message %q does not say so", msg)
	}
	if pe.Unwrap() == nil {
		t.Fatal("partial error hides its cause")
	}
	wantParts := coord.Layout().PrimaryPartitions("shard-02")
	if len(pe.Partitions) != len(wantParts) {
		t.Fatalf("partial error lists %d partitions, want %d", len(pe.Partitions), len(wantParts))
	}
	for i := range wantParts {
		if pe.Partitions[i] != wantParts[i] {
			t.Fatalf("partial partitions %v, want %v", pe.Partitions, wantParts)
		}
	}

	// Recovery: bring the shard back and the same coordinator must answer.
	flaky["shard-02"].down.Store(false)
	if _, err := coord.MeasureMany("facebook", reqs); err != nil {
		t.Fatalf("recovered shard: %v", err)
	}
}

// TestFailoverCascade kills two of four shards with two replicas: every
// partition still has at least one live owner two hops down the ring, so
// multi-round failover must converge and stay bit-identical.
func TestFailoverCascade(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	single, err := platform.NewDeployment(platform.DeployOptions{
		Seed: eqSeed, UniverseSize: eqUniverse, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, flaky := buildFlakyCluster(t, 4, 2, opts, 0)
	flaky["shard-00"].down.Store(true)
	flaky["shard-03"].down.Store(true)

	p := single.Google
	reqs := clusterBatch(p, 31337, 16)
	want, err := p.MeasureMany(reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.MeasureMany(p.Name(), reqs)
	if err != nil {
		t.Fatalf("two dead shards with two replicas should still converge: %v", err)
	}
	for i := range reqs {
		matchSlot(t, "cascade", i, got[i], want[i])
	}
}
