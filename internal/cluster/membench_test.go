package cluster

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// TestMemoryFootprint is the harness behind results/BENCH_7.json: it builds
// either one shard of an N-shard cluster or a single-node deployment, warms
// it, serves a query battery, and reports the process RSS. Building a 2^24
// universe is far too heavy for CI, so the test is disabled unless CLUSTER_MEM
// selects a mode. Each mode must run in its own process (RSS is a process-wide
// high-water measure):
//
//	CLUSTER_MEM=shard:s0:4:16777216 go test -run TestMemoryFootprint -v ./internal/cluster
//	CLUSTER_MEM=single:4194304      go test -run TestMemoryFootprint -v ./internal/cluster
//
// Shard mode uses replicas=0 so each of the N shards materializes exactly
// universe/N users per platform; with 2^24 over 4 shards that is the same
// 2^22 local users the single-node mode holds, which makes the two RSS
// numbers directly comparable: the difference is the catalog posture
// (compressed-only CSets on shards vs dense audiences on the single node).
func TestMemoryFootprint(t *testing.T) {
	mode := os.Getenv("CLUSTER_MEM")
	if mode == "" {
		t.Skip("set CLUSTER_MEM=shard:<id>:<n>:<universe> or CLUSTER_MEM=single:<universe>")
	}
	parts := strings.Split(mode, ":")
	start := time.Now()
	var (
		dep     *platform.Deployment
		shard   *Shard
		shards  int
		localN  int
		kindTag string
	)
	switch parts[0] {
	case "shard":
		if len(parts) != 4 {
			t.Fatalf("CLUSTER_MEM=%q, want shard:<id>:<n>:<universe>", mode)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			t.Fatal(err)
		}
		universe, err := strconv.Atoi(parts[3])
		if err != nil {
			t.Fatal(err)
		}
		ring, err := NewRing(clusterNodes(n), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := NewLayout(ring, universe, 0)
		if err != nil {
			t.Fatal(err)
		}
		shard, err = NewShard(parts[1], layout, platform.DeployOptions{
			Seed: eqSeed, UniverseSize: universe, Compressed: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		dep = shard.Deployment()
		shards = n
		for _, p := range shard.Held() {
			localN += layout.Span(p).Len()
		}
		kindTag = parts[1]
	case "single":
		if len(parts) != 2 {
			t.Fatalf("CLUSTER_MEM=%q, want single:<universe>", mode)
		}
		universe, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatal(err)
		}
		dep, err = platform.NewDeployment(platform.DeployOptions{Seed: eqSeed, UniverseSize: universe})
		if err != nil {
			t.Fatal(err)
		}
		shards = 1
		localN = universe
		kindTag = "single"
	default:
		t.Fatalf("CLUSTER_MEM=%q, want shard:... or single:...", mode)
	}
	buildSecs := time.Since(start).Seconds()

	start = time.Now()
	for _, p := range dep.Interfaces() {
		p.Warm()
	}
	warmSecs := time.Since(start).Seconds()

	// Serve the same battery both modes answer in production: a mix of
	// single-attribute, conjunctive, and exclusion specs per interface.
	start = time.Now()
	served := 0
	for _, p := range dep.Interfaces() {
		reqs := make([]platform.EstimateRequest, 0, 24)
		for i := 0; i < 8; i++ {
			reqs = append(reqs,
				platform.EstimateRequest{Spec: targeting.Attr(i)},
				platform.EstimateRequest{Spec: targeting.And(targeting.Attr(i), targeting.Attr(i+8))},
				platform.EstimateRequest{Spec: targeting.Excluding(targeting.Attr(i), targeting.Attr(i+16))},
			)
		}
		if shard != nil {
			res, err := shard.CountBatch(context.Background(), p.Name(), platform.DoorMeasure, shard.Held(), reqs)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			served += len(res)
		} else {
			res, err := p.MeasureMany(reqs)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			served += len(res)
		}
	}
	querySecs := time.Since(start).Seconds()

	// Return freed spans to the OS before sampling: the compressed warm-up
	// materializes dense sets transiently, and without a scavenge their
	// MADV_FREE pages would still count in VmRSS. VmHWM keeps the honest
	// peak.
	debug.FreeOSMemory()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rssKB, hwmKB := procRSS(t)
	t.Logf("CLUSTER_MEM result: mode=%s shards=%d local_users_per_platform=%d "+
		"vm_rss_mb=%.1f vm_hwm_mb=%.1f heap_inuse_mb=%.1f build_s=%.2f warm_s=%.2f query_s=%.3f served=%d",
		kindTag, shards, localN,
		float64(rssKB)/1024, float64(hwmKB)/1024, float64(ms.HeapInuse)/(1<<20),
		buildSecs, warmSecs, querySecs, served)
	if _, err := dep.ByName(catalog.PlatformFacebook); err != nil {
		t.Fatal(err)
	}
}

// procRSS reads VmRSS and VmHWM (peak RSS) in KiB from /proc/self/status.
func procRSS(t *testing.T) (rss, hwm int64) {
	t.Helper()
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Skipf("no /proc/self/status: %v", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		var dst *int64
		switch {
		case strings.HasPrefix(line, "VmRSS:"):
			dst = &rss
		case strings.HasPrefix(line, "VmHWM:"):
			dst = &hwm
		default:
			continue
		}
		if _, err := fmt.Sscanf(strings.TrimSpace(strings.TrimSuffix(strings.SplitN(line, ":", 2)[1], "kB")), "%d", dst); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
	}
	return rss, hwm
}
