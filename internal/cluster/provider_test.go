package cluster

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/targeting"
)

// The coordinator's core.Provider adapter must answer the traced and
// untraced single/batch doors identically, and every shard must echo the
// layout fingerprint the coordinator was built from.
func TestClusterProviderContextDoors(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Metrics:      obs.NewRegistry(),
	}
	coord, shards := buildCluster(t, []string{"a", "b"}, 1, opts, 4096)
	prov, err := coord.Provider("facebook")
	if err != nil {
		t.Fatal(err)
	}

	spec := targeting.Attr(1)
	want, err := prov.Measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	cm, ok := prov.(core.ContextMeasurer)
	if !ok {
		t.Fatal("cluster provider does not implement core.ContextMeasurer")
	}
	got, err := cm.MeasureCtx(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("MeasureCtx = %d, Measure = %d", got, want)
	}
	bm, ok := prov.(core.BatchMeasurer)
	if !ok {
		t.Fatal("cluster provider does not implement core.BatchMeasurer")
	}
	batch := bm.MeasureMany([]targeting.Spec{spec})
	if len(batch) != 1 || batch[0].Err != nil || batch[0].Size != want {
		t.Fatalf("MeasureMany = %+v, want size %d", batch, want)
	}

	fp := shards[0].RingHash()
	for _, s := range shards[1:] {
		if s.RingHash() != fp {
			t.Fatalf("shard %s ring hash %x differs from %x", s.ID(), s.RingHash(), fp)
		}
	}
}
