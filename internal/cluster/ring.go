// Package cluster partitions the simulated user universe across N platformd
// shards behind a consistent-hash coordinator, the multi-node frontier of
// the reproduction (ROADMAP: audits on 2^24–2^27 real users instead of one
// process extrapolating via ScaleFactor).
//
// The design leans entirely on one property of the population layer: every
// per-user draw is a stateless hash of (seed, global user ID). A shard that
// materializes only the ID spans it owns is therefore bit-identical to that
// slice of the full universe, raw matched-user counts over disjoint spans
// are additive, and a coordinator that sums shard counts and applies the
// platform's scaling and rounding exactly once reproduces the single-node
// answer bit for bit — an invariant the equivalence battery in this package
// pins for every shard count it runs.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// Hash domains, kept distinct so ring-point placement and key lookup use
// independent streams of the shared mixer.
const (
	ringPointDomain = 0x72696e67 // "ring"
	ringKeyDomain   = 0x6b6579   // "key"
)

// DefaultVnodes is the virtual-node count per shard: enough points that the
// largest/smallest primary-load ratio stays small without making ring
// construction or the fuzz corpus slow.
const DefaultVnodes = 64

// Ring is a consistent hash ring over named shard nodes. Each node projects
// vnodes points onto the 64-bit hash circle; a key is owned by the node of
// the first point clockwise of the key's hash, and replicated on the next
// replicas distinct nodes. Rings are immutable and deterministic: the same
// node set (in any order) builds the same ring, and adding or removing a
// node only moves the keys on the arcs its points owned — the property the
// FuzzRingAssignment harness checks.
type Ring struct {
	vnodes   int
	replicas int
	nodes    []string // sorted, unique
	hashes   []uint64 // point hashes, ascending
	owner    []int32  // node index per point
}

// NewRing builds a ring. vnodes <= 0 selects DefaultVnodes; replicas is the
// number of additional owners per key and must leave at least one distinct
// node available (replicas <= len(nodes)-1).
func NewRing(nodes []string, vnodes, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	if replicas < 0 || replicas > len(nodes)-1 {
		return nil, fmt.Errorf("cluster: replicas must be in [0, %d], got %d", len(nodes)-1, replicas)
	}
	sorted := make([]string, len(nodes))
	copy(sorted, nodes)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, errors.New("cluster: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
	}
	r := &Ring{
		vnodes:   vnodes,
		replicas: replicas,
		nodes:    sorted,
		hashes:   make([]uint64, 0, len(sorted)*vnodes),
		owner:    make([]int32, 0, len(sorted)*vnodes),
	}
	type point struct {
		h    uint64
		node int32
	}
	points := make([]point, 0, len(sorted)*vnodes)
	for ni, n := range sorted {
		base := xrand.HashString(n)
		for v := 0; v < vnodes; v++ {
			points = append(points, point{xrand.Mix(ringPointDomain, base, uint64(v)), int32(ni)})
		}
	}
	// Tie-break equal hashes by node index so construction is independent of
	// input order even in the (astronomically unlikely) collision case.
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		return points[i].node < points[j].node
	})
	for _, pt := range points {
		r.hashes = append(r.hashes, pt.h)
		r.owner = append(r.owner, pt.node)
	}
	return r, nil
}

// Nodes returns the ring's node names, sorted (shared; do not modify).
func (r *Ring) Nodes() []string { return r.nodes }

// Vnodes returns the virtual-node count per node.
func (r *Ring) Vnodes() int { return r.vnodes }

// Replicas returns the number of additional owners per key.
func (r *Ring) Replicas() int { return r.replicas }

// successor returns the index of the first ring point at or clockwise of h.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= h })
	if i == len(r.hashes) {
		return 0
	}
	return i
}

// ownersFrom walks clockwise from the key's successor collecting the first
// `want` distinct nodes.
func (r *Ring) ownersFrom(key uint64, want int) []int32 {
	start := r.successor(xrand.Mix(ringKeyDomain, key))
	out := make([]int32, 0, want)
	var seen uint64 // bitmask over node indices; rings are small
	seenBig := map[int32]bool(nil)
	for i := 0; i < len(r.hashes) && len(out) < want; i++ {
		n := r.owner[(start+i)%len(r.hashes)]
		if n < 64 {
			if seen&(1<<uint(n)) != 0 {
				continue
			}
			seen |= 1 << uint(n)
		} else {
			if seenBig == nil {
				seenBig = make(map[int32]bool)
			}
			if seenBig[n] {
				continue
			}
			seenBig[n] = true
		}
		out = append(out, n)
	}
	return out
}

// Primary returns the node that owns the key.
func (r *Ring) Primary(key uint64) string {
	return r.nodes[r.ownersFrom(key, 1)[0]]
}

// Owners returns the key's owner set — the primary followed by its replicas
// on distinct nodes. The slice is freshly allocated.
func (r *Ring) Owners(key uint64) []string {
	idx := r.ownersFrom(key, 1+r.replicas)
	out := make([]string, len(idx))
	for i, n := range idx {
		out[i] = r.nodes[n]
	}
	return out
}
