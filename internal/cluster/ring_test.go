package cluster

import (
	"fmt"
	"testing"
)

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 4, 0); err == nil {
		t.Fatal("empty node list should fail")
	}
	if _, err := NewRing([]string{"a", "a"}, 4, 0); err == nil {
		t.Fatal("duplicate node should fail")
	}
	if _, err := NewRing([]string{"a", ""}, 4, 0); err == nil {
		t.Fatal("empty node name should fail")
	}
	if _, err := NewRing([]string{"a", "b"}, 4, 2); err == nil {
		t.Fatal("replicas > len(nodes)-1 should fail")
	}
	if _, err := NewRing([]string{"a", "b"}, 4, -1); err == nil {
		t.Fatal("negative replicas should fail")
	}
}

// TestRingOrderIndependent pins deterministic construction: the same node
// set in any input order builds the same assignment.
func TestRingOrderIndependent(t *testing.T) {
	a, err := NewRing([]string{"alpha", "beta", "gamma", "delta"}, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"delta", "gamma", "alpha", "beta"}, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 4096; key++ {
		oa, ob := a.Owners(key), b.Owners(key)
		if len(oa) != len(ob) {
			t.Fatalf("key %d: owner counts differ", key)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("key %d owner %d: %q vs %q", key, i, oa[i], ob[i])
			}
		}
	}
}

// TestRingOwnersDistinct checks the owner-set contract: primary first,
// 1+replicas entries, all distinct.
func TestRingOwnersDistinct(t *testing.T) {
	r, err := NewRing(clusterNodes(7), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Vnodes() != DefaultVnodes {
		t.Fatalf("vnodes %d, want default %d", r.Vnodes(), DefaultVnodes)
	}
	if r.Replicas() != 2 {
		t.Fatalf("replicas %d, want 2", r.Replicas())
	}
	for key := uint64(0); key < 4096; key++ {
		owners := r.Owners(key)
		if len(owners) != 3 {
			t.Fatalf("key %d: %d owners, want 3", key, len(owners))
		}
		if owners[0] != r.Primary(key) {
			t.Fatalf("key %d: owners[0]=%q, Primary=%q", key, owners[0], r.Primary(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %d: duplicate owner %q in %v", key, o, owners)
			}
			seen[o] = true
		}
	}
}

// TestRingBalance sanity-checks vnode spreading: with 64 vnodes each of 4
// nodes should own a non-trivial share of a 4096-key space.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(clusterNodes(4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]int{}
	const keys = 4096
	for key := uint64(0); key < keys; key++ {
		load[r.Primary(key)]++
	}
	for _, n := range r.Nodes() {
		if load[n] < keys/16 {
			t.Fatalf("node %s owns only %d/%d keys — ring badly unbalanced", n, load[n], keys)
		}
	}
}

// TestLayoutPartitionsCoverUniverse checks the layout invariants the
// coordinator and shards lean on: primary partitions partition the ID
// space, spans tile it exactly, and localRanges concatenate held spans.
func TestLayoutPartitionsCoverUniverse(t *testing.T) {
	ring, err := NewRing(clusterNodes(5), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	const size = 1<<16 + 1<<10 // deliberately not a partition multiple
	layout, err := NewLayout(ring, size, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if layout.PartitionSize() != 1<<12 {
		t.Fatalf("partition size %d, want %d", layout.PartitionSize(), 1<<12)
	}

	owned := make(map[uint32]string)
	for _, n := range ring.Nodes() {
		for _, p := range layout.PrimaryPartitions(n) {
			if prev, dup := owned[p]; dup {
				t.Fatalf("partition %d owned by both %s and %s", p, prev, n)
			}
			owned[p] = n
		}
	}
	if len(owned) != layout.NumPartitions() {
		t.Fatalf("%d partitions owned, want %d", len(owned), layout.NumPartitions())
	}

	covered := 0
	for p := 0; p < layout.NumPartitions(); p++ {
		s := layout.Span(uint32(p))
		if s.Lo != covered {
			t.Fatalf("partition %d starts at %d, want %d", p, s.Lo, covered)
		}
		covered = s.Hi
	}
	if covered != size {
		t.Fatalf("partitions cover %d, want %d", covered, size)
	}

	for _, n := range ring.Nodes() {
		held := layout.HeldPartitions(n)
		spans := layout.ShardSpans(n)
		total := 0
		for _, s := range spans {
			total += s.Len()
		}
		local := layout.localRanges(held)
		sum := 0
		for _, p := range held {
			r := local[p]
			if r.Lo != sum {
				t.Fatalf("node %s partition %d: local Lo %d, want %d", n, p, r.Lo, sum)
			}
			if r.Hi-r.Lo != layout.Span(p).Len() {
				t.Fatalf("node %s partition %d: local len %d, want %d", n, p, r.Hi-r.Lo, layout.Span(p).Len())
			}
			sum = r.Hi
		}
		if sum != total {
			t.Fatalf("node %s: local ranges cover %d, spans cover %d", n, sum, total)
		}
	}
}

func TestLayoutRejectsBadInput(t *testing.T) {
	ring, err := NewRing([]string{"a"}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLayout(nil, 1<<12, 0); err == nil {
		t.Fatal("nil ring should fail")
	}
	if _, err := NewLayout(ring, 0, 0); err == nil {
		t.Fatal("zero universe should fail")
	}
	if _, err := NewLayout(ring, 1<<12, 100); err == nil {
		t.Fatal("unaligned partition size should fail")
	}
}

// FuzzRingAssignment fuzzes the ring's ownership invariants: every key has
// exactly one primary; owner sets are distinct with the primary first and
// never contain the primary among the replicas; and removing a non-owner
// node never moves the key (stability under membership change — only keys
// on the removed node's arcs may move). The seed corpus pins the 2^16±1
// chunk boundaries, matching FuzzPlanExecEquivalence's corpus so partition
// keys at CSet container edges are always exercised.
func FuzzRingAssignment(f *testing.F) {
	f.Add(uint64(1<<16-1), uint8(4), uint8(1))
	f.Add(uint64(1<<16), uint8(4), uint8(1))
	f.Add(uint64(1<<16+1), uint8(4), uint8(1))
	f.Add(uint64(0), uint8(2), uint8(0))
	f.Add(uint64(1<<24), uint8(16), uint8(2))
	f.Add(uint64(^uint64(0)), uint8(7), uint8(3))

	f.Fuzz(func(t *testing.T, key uint64, nNodes, nReplicas uint8) {
		n := int(nNodes)%16 + 2 // 2..17 nodes
		replicas := int(nReplicas) % n
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%03d", i)
		}
		r, err := NewRing(nodes, 8, replicas)
		if err != nil {
			t.Fatalf("NewRing(%d nodes, %d replicas): %v", n, replicas, err)
		}

		owners := r.Owners(key)
		if len(owners) != 1+replicas {
			t.Fatalf("key %d: %d owners, want %d", key, len(owners), 1+replicas)
		}
		primary := r.Primary(key)
		if owners[0] != primary {
			t.Fatalf("key %d: owners[0]=%q != Primary()=%q", key, owners[0], primary)
		}
		seen := map[string]bool{}
		for i, o := range owners {
			if seen[o] {
				t.Fatalf("key %d: duplicate owner %q", key, o)
			}
			seen[o] = true
			if i > 0 && o == primary {
				t.Fatalf("key %d: replica set contains primary %q", key, primary)
			}
		}

		// Primary is a pure function of (node set, key).
		if again := r.Primary(key); again != primary {
			t.Fatalf("key %d: primary unstable: %q then %q", key, primary, again)
		}

		// Remove one node that is NOT an owner of this key: the whole owner
		// set must be unchanged (consistent hashing moves only the removed
		// node's arcs). Skip when every node owns the key.
		if replicas+1 < n {
			victim := ""
			for _, cand := range nodes {
				if !seen[cand] {
					victim = cand
					break
				}
			}
			smaller := make([]string, 0, n-1)
			for _, nd := range nodes {
				if nd != victim {
					smaller = append(smaller, nd)
				}
			}
			rep2 := replicas
			if rep2 > len(smaller)-1 {
				rep2 = len(smaller) - 1
			}
			r2, err := NewRing(smaller, 8, rep2)
			if err != nil {
				t.Fatalf("shrunken ring: %v", err)
			}
			if got := r2.Primary(key); got != primary {
				t.Fatalf("key %d: removing non-owner %q moved primary %q -> %q", key, victim, primary, got)
			}
			o2 := r2.Owners(key)
			for i := 0; i < len(o2) && i < len(owners); i++ {
				if o2[i] != owners[i] {
					t.Fatalf("key %d: removing non-owner %q changed owner[%d] %q -> %q", key, victim, i, owners[i], o2[i])
				}
			}
		}

		// Hash-domain sanity: key lookup uses the key domain, so two distinct
		// keys colliding on primary is fine, but the mapping must be stable
		// across an identically-built ring.
		r3, err := NewRing(nodes, 8, replicas)
		if err != nil {
			t.Fatal(err)
		}
		if r3.Primary(key) != primary {
			t.Fatalf("key %d: identically built ring disagrees on primary", key)
		}
	})
}
