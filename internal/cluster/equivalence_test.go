package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/targeting"
	"repro/internal/xrand"
)

// Equivalence battery settings: a universe small enough to rebuild per
// shard count, partitions small enough that 16 shards all hold something.
const (
	eqUniverse  = 1 << 16
	eqPartition = 1 << 12
	eqSeed      = 7_2020
)

// clusterNodes names n shards.
func clusterNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%02d", i)
	}
	return out
}

// buildCluster assembles an in-process cluster: ring, layout, one Shard per
// node, and a coordinator wired straight to the shards.
func buildCluster(t testing.TB, nodes []string, replicas int, opts platform.DeployOptions, partitionSize int) (*Coordinator, []*Shard) {
	t.Helper()
	ring, err := NewRing(nodes, 0, replicas)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	layout, err := NewLayout(ring, opts.UniverseSize, partitionSize)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	shards := make([]*Shard, 0, len(nodes))
	conns := make([]Conn, 0, len(nodes))
	for _, n := range nodes {
		s, err := NewShard(n, layout, opts)
		if err != nil {
			t.Fatalf("NewShard(%s): %v", n, err)
		}
		shards = append(shards, s)
		conns = append(conns, s)
	}
	coord, err := NewCoordinator(Options{
		Layout:  layout,
		Conns:   conns,
		Deploy:  opts,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return coord, shards
}

// clusterBatch builds a mixed batch against p: every spec shape the doors
// accept or reject — plain attributes, ANDs, OR clauses, demographic
// conditioning (the conditioned chain-fusion path), exclusions, topics,
// unknown ids, empty specs — across objectives and frequency caps. It
// mirrors the platform package's batch generator so the cluster battery
// covers the same surface the single-node battery pins.
func clusterBatch(p *platform.Interface, seed uint64, n int) []platform.EstimateRequest {
	rng := xrand.New(xrand.Mix(seed, 99))
	nAttr := len(p.Catalog().Attributes)
	nTopic := len(p.Catalog().Topics)
	objectives := []platform.Objective{
		"", platform.ObjectiveReach, platform.ObjectiveBrandAwarenessReach,
		platform.ObjectiveBrandAwareness, platform.ObjectiveTraffic, "bogus",
	}
	caps := []int{0, 0, 0, 1, 3, 30, 31, -2}
	reqs := make([]platform.EstimateRequest, n)
	for i := range reqs {
		var spec targeting.Spec
		switch rng.Intn(9) {
		case 0: // single attribute
			spec = targeting.Attr(rng.Intn(nAttr))
		case 1: // AND of two attributes (chain fusion on the compiled path)
			spec = targeting.And(targeting.Attr(rng.Intn(nAttr)), targeting.Attr(rng.Intn(nAttr)))
		case 2: // attribute ∧ topic (the only AND Google accepts)
			if nTopic > 0 {
				spec = targeting.And(targeting.Attr(rng.Intn(nAttr)), targeting.Topic(rng.Intn(nTopic)))
			} else {
				spec = targeting.Attr(rng.Intn(nAttr))
			}
		case 3: // OR clause of two attributes
			spec = targeting.Spec{Include: []targeting.Clause{{
				{Kind: targeting.KindAttribute, ID: rng.Intn(nAttr)},
				{Kind: targeting.KindAttribute, ID: rng.Intn(nAttr)},
			}}}
		case 4: // attribute conditioned on a demographic (reach-style audit query)
			spec = targeting.And(targeting.Attr(rng.Intn(nAttr)))
			spec.Include = append(spec.Include, targeting.Clause{{Kind: targeting.KindGender, ID: rng.Intn(2)}})
		case 5: // attribute conditioned on gender ∧ age ∧ location (the full audit chain)
			spec = targeting.And(targeting.Attr(rng.Intn(nAttr)))
			spec.Include = append(spec.Include,
				targeting.Clause{{Kind: targeting.KindGender, ID: rng.Intn(2)}},
				targeting.Clause{{Kind: targeting.KindAge, ID: rng.Intn(4)}},
				targeting.Clause{{Kind: targeting.KindLocation, ID: 0}},
			)
		case 6: // attribute minus an attribute (exclusions are rule-gated)
			spec = targeting.Attr(rng.Intn(nAttr))
			spec.Exclude = []targeting.Clause{{{Kind: targeting.KindAttribute, ID: rng.Intn(nAttr)}}}
		case 7: // unknown option id
			spec = targeting.Attr(nAttr + rng.Intn(10))
		default: // empty spec
			spec = targeting.Spec{}
		}
		reqs[i] = platform.EstimateRequest{
			Spec:                 spec,
			Objective:            objectives[rng.Intn(len(objectives))],
			FrequencyCapPerMonth: caps[rng.Intn(len(caps))],
		}
	}
	return reqs
}

// matchSlot asserts one scatter-gather slot equals the single-node outcome
// bit for bit: same size, or an error with the same message.
func matchSlot(t *testing.T, ctxt string, i int, got platform.Estimate, want platform.Estimate) {
	t.Helper()
	if (got.Err == nil) != (want.Err == nil) {
		t.Fatalf("%s slot %d: cluster err=%v, single-node err=%v", ctxt, i, got.Err, want.Err)
	}
	if want.Err != nil {
		if got.Err.Error() != want.Err.Error() {
			t.Fatalf("%s slot %d: cluster err %q, single-node err %q", ctxt, i, got.Err, want.Err)
		}
		return
	}
	if got.Size != want.Size {
		t.Fatalf("%s slot %d: cluster size %d, single-node size %d", ctxt, i, got.Size, want.Size)
	}
}

// TestClusterEquivalence is the battery the tentpole hangs from: for shard
// counts N ∈ {1, 2, 3, 7, 16}, scatter-gather MeasureMany and EstimateMany
// over every interface must be bit-identical (post-rounding) to the
// single-node deployment on the same seeded universe — sizes and error
// messages both. The single node runs the compiled-plan path, the shards
// run the compressed-only shard path, so agreement pins the whole stack:
// span-restricted population build, CSet evaluation kernels, raw-count
// additivity, and the coordinator's merge-then-round order.
func TestClusterEquivalence(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	single, err := platform.NewDeployment(platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Metrics:      obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("single-node deployment: %v", err)
	}

	for _, n := range []int{1, 2, 3, 7, 16} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			t.Parallel()
			replicas := 1
			if n == 1 {
				replicas = 0
			}
			coord, _ := buildCluster(t, clusterNodes(n), replicas, opts, eqPartition)
			for _, p := range single.Interfaces() {
				reqs := clusterBatch(p, uint64(3000+n), 48)

				got, err := coord.MeasureMany(p.Name(), reqs)
				if err != nil {
					t.Fatalf("%s: cluster MeasureMany: %v", p.Name(), err)
				}
				want, err := p.MeasureMany(reqs)
				if err != nil {
					t.Fatalf("%s: single MeasureMany: %v", p.Name(), err)
				}
				for i := range reqs {
					matchSlot(t, p.Name()+"/measure", i, got[i], want[i])
				}

				got, err = coord.EstimateMany(p.Name(), reqs)
				if err != nil {
					t.Fatalf("%s: cluster EstimateMany: %v", p.Name(), err)
				}
				want, err = p.EstimateMany(reqs)
				if err != nil {
					t.Fatalf("%s: single EstimateMany: %v", p.Name(), err)
				}
				for i := range reqs {
					matchSlot(t, p.Name()+"/estimate", i, got[i], want[i])
				}
			}
		})
	}
}

// TestClusterEquivalenceLargeUniverse is the acceptance-scale variant of
// the battery: 3 shards over a seeded 2^20 universe, scatter-gather
// MeasureMany bit-identical to the single node. One shard count and a
// tighter batch keep it tractable where the N-sweep above stays at 2^16.
func TestClusterEquivalenceLargeUniverse(t *testing.T) {
	if testing.Short() {
		t.Skip("2^20 universe build in -short mode")
	}
	const size = 1 << 20
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: size,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	single, err := platform.NewDeployment(platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: size,
		Metrics:      obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("single-node deployment: %v", err)
	}
	coord, _ := buildCluster(t, clusterNodes(3), 1, opts, 1<<16)
	for _, p := range single.Interfaces() {
		reqs := clusterBatch(p, 2020, 24)
		got, err := coord.MeasureMany(p.Name(), reqs)
		if err != nil {
			t.Fatalf("%s: cluster MeasureMany: %v", p.Name(), err)
		}
		want, err := p.MeasureMany(reqs)
		if err != nil {
			t.Fatalf("%s: single MeasureMany: %v", p.Name(), err)
		}
		for i := range reqs {
			matchSlot(t, p.Name()+"/measure", i, got[i], want[i])
		}
	}
}

// TestClusterSerialDoors pins the single-request doors (Measure/Estimate)
// against the single-node serial path on a 3-shard cluster, including the
// error cases.
func TestClusterSerialDoors(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	single, err := platform.NewDeployment(platform.DeployOptions{
		Seed: eqSeed, UniverseSize: eqUniverse, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("single-node deployment: %v", err)
	}
	coord, _ := buildCluster(t, clusterNodes(3), 1, opts, eqPartition)

	for _, p := range single.Interfaces() {
		for i, req := range clusterBatch(p, 4242, 24) {
			gotSize, gotErr := coord.Measure(p.Name(), req)
			wantSize, wantErr := p.Measure(req)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s req %d: cluster Measure err=%v, single err=%v", p.Name(), i, gotErr, wantErr)
			}
			if wantErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("%s req %d: cluster Measure err %q, single err %q", p.Name(), i, gotErr, wantErr)
				}
				continue
			}
			if gotSize != wantSize {
				t.Fatalf("%s req %d: cluster Measure %d, single %d", p.Name(), i, gotSize, wantSize)
			}

			gotSize, gotErr = coord.Estimate(p.Name(), req)
			wantSize, wantErr = p.Estimate(req)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s req %d: cluster Estimate err=%v, single err=%v", p.Name(), i, gotErr, wantErr)
			}
			if wantErr == nil && gotSize != wantSize {
				t.Fatalf("%s req %d: cluster Estimate %d, single %d", p.Name(), i, gotSize, wantSize)
			}
		}
	}
}

// TestClusterProvider checks the core.Provider adapter: names, catalog
// views, and batched measurement all flow through the scatter path and
// match the single node.
func TestClusterProvider(t *testing.T) {
	opts := platform.DeployOptions{
		Seed:         eqSeed,
		UniverseSize: eqUniverse,
		Compressed:   true,
		Metrics:      obs.NewRegistry(),
	}
	single, err := platform.NewDeployment(platform.DeployOptions{
		Seed: eqSeed, UniverseSize: eqUniverse, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("single-node deployment: %v", err)
	}
	coord, _ := buildCluster(t, clusterNodes(2), 1, opts, eqPartition)

	p := single.Facebook
	prov, err := coord.Provider(p.Name())
	if err != nil {
		t.Fatalf("Provider: %v", err)
	}
	if prov.Name() != p.Name() {
		t.Fatalf("provider name %q, want %q", prov.Name(), p.Name())
	}
	if got, want := len(prov.AttributeNames()), len(p.Catalog().Attributes); got != want {
		t.Fatalf("provider has %d attributes, want %d", got, want)
	}
	if got, want := len(prov.TopicNames()), len(p.Catalog().Topics); got != want {
		t.Fatalf("provider has %d topics, want %d", got, want)
	}
	if got, want := prov.CrossFeature(), !p.Rules().AndWithinFeature; got != want {
		t.Fatalf("provider CrossFeature %v, want %v", got, want)
	}
	if got, err := prov.Measure(targeting.Attr(0)); err != nil {
		t.Fatalf("provider Measure: %v", err)
	} else if want, _ := p.Measure(platform.EstimateRequest{Spec: targeting.Attr(0)}); got != want {
		t.Fatalf("provider Measure %d, single %d", got, want)
	}
	specs := []targeting.Spec{
		targeting.Attr(0),
		targeting.And(targeting.Attr(1), targeting.Attr(2)),
		targeting.Attr(len(p.Catalog().Attributes) + 5), // unknown
	}
	bm, ok := prov.(core.BatchMeasurer)
	if !ok {
		t.Fatal("cluster provider should implement core.BatchMeasurer")
	}
	res := bm.MeasureMany(specs)
	for i, spec := range specs {
		wantSize, wantErr := p.Measure(platform.EstimateRequest{Spec: spec})
		if (res[i].Err == nil) != (wantErr == nil) {
			t.Fatalf("spec %d: provider err=%v, single err=%v", i, res[i].Err, wantErr)
		}
		if wantErr == nil && res[i].Size != wantSize {
			t.Fatalf("spec %d: provider size %d, single %d", i, res[i].Size, wantSize)
		}
	}
	if _, err := coord.Provider("nope"); err == nil {
		t.Fatal("Provider(nope) should fail")
	}
}

// TestCoordinatorValidation exercises the constructor's error paths.
func TestCoordinatorValidation(t *testing.T) {
	ring, err := NewRing([]string{"a", "b"}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(ring, 1<<12, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(Options{}); err == nil {
		t.Fatal("nil layout should fail")
	}
	if _, err := NewCoordinator(Options{Layout: layout}); err == nil {
		t.Fatal("missing conns should fail")
	}
	opts := platform.DeployOptions{Seed: 1, UniverseSize: 1 << 12, Metrics: obs.NewRegistry()}
	sa, err := NewShard("a", layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(Options{Layout: layout, Conns: []Conn{sa, sa}, Deploy: opts}); err == nil {
		t.Fatal("duplicate conns should fail")
	}
	if _, err := NewShard("zz", layout, opts); err == nil {
		t.Fatal("shard not in ring should fail")
	}
}

// TestShardRejectsForeignPartition pins the ErrPartitionNotHeld contract
// the coordinator's failover leans on.
func TestShardRejectsForeignPartition(t *testing.T) {
	ring, err := NewRing(clusterNodes(3), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(ring, 1<<14, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	opts := platform.DeployOptions{Seed: 3, UniverseSize: 1 << 14, Metrics: obs.NewRegistry()}
	s, err := NewShard("shard-00", layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Deployment() == nil {
		t.Fatal("shard has no deployment")
	}
	if got, want := s.Held(), layout.HeldPartitions("shard-00"); len(got) != len(want) {
		t.Fatalf("shard holds %d partitions, layout says %d", len(got), len(want))
	}
	var foreign uint32
	found := false
	for p := 0; p < layout.NumPartitions(); p++ {
		if layout.Primary(uint32(p)) != "shard-00" {
			foreign, found = uint32(p), true
			break
		}
	}
	if !found {
		t.Skip("shard-00 owns everything at this size")
	}
	req := []platform.EstimateRequest{{Spec: targeting.Attr(0)}}
	if _, err := s.CountBatch(context.Background(), catalog.PlatformFacebook, platform.DoorMeasure, []uint32{foreign}, req); !errors.Is(err, ErrPartitionNotHeld) {
		t.Fatalf("foreign partition: got %v, want ErrPartitionNotHeld", err)
	}
}
