package cluster

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/platform"
	"repro/internal/population"
)

// DefaultPartitionSize is the user-ID range assigned as one unit: one CSet
// chunk (2^16 users), so a partition boundary is always a container
// boundary and a chunk never straddles shards.
const DefaultPartitionSize = 1 << 16

// Layout maps the global user-ID space onto a ring: the space is cut into
// fixed-size partitions (the consistent-hash keys), each owned by a primary
// shard and replicated on the ring's replica successors. All three platform
// universes of a deployment share one layout — they are the same ID space.
type Layout struct {
	ring          *Ring
	universeSize  int
	partitionSize int
	numParts      int
}

// NewLayout builds a layout. partitionSize <= 0 selects
// DefaultPartitionSize; it must be a multiple of 64 (bitset words must not
// straddle partitions — the shard spans it produces feed
// population.NewShard, which enforces the same alignment).
func NewLayout(ring *Ring, universeSize, partitionSize int) (*Layout, error) {
	if ring == nil {
		return nil, fmt.Errorf("cluster: layout needs a ring")
	}
	if universeSize <= 0 {
		return nil, fmt.Errorf("cluster: universe size must be positive, got %d", universeSize)
	}
	if partitionSize <= 0 {
		partitionSize = DefaultPartitionSize
	}
	if partitionSize%64 != 0 {
		return nil, fmt.Errorf("cluster: partition size %d not a multiple of 64", partitionSize)
	}
	return &Layout{
		ring:          ring,
		universeSize:  universeSize,
		partitionSize: partitionSize,
		numParts:      (universeSize + partitionSize - 1) / partitionSize,
	}, nil
}

// Ring returns the layout's ring.
func (l *Layout) Ring() *Ring { return l.ring }

// Fingerprint hashes everything two nodes must agree on to form a correct
// cluster — the ring's node set, vnode and replica counts, the universe
// size, and the partition size — into one comparable value. Shards echo it
// from /healthz, so a node started with a mistyped -ring or -universe is
// caught by comparing fingerprints instead of by a silently wrong count.
func (l *Layout) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, n := range l.ring.Nodes() {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	for _, v := range []int{l.ring.Vnodes(), l.ring.Replicas(), l.universeSize, l.partitionSize} {
		h.Write([]byte(strconv.Itoa(v)))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// UniverseSize returns the global ID-space size.
func (l *Layout) UniverseSize() int { return l.universeSize }

// PartitionSize returns the partition width in users.
func (l *Layout) PartitionSize() int { return l.partitionSize }

// NumPartitions returns the partition count (the last may be short).
func (l *Layout) NumPartitions() int { return l.numParts }

// Span returns the global-ID span of partition p.
func (l *Layout) Span(p uint32) population.Span {
	lo := int(p) * l.partitionSize
	hi := lo + l.partitionSize
	if hi > l.universeSize {
		hi = l.universeSize
	}
	return population.Span{Lo: lo, Hi: hi}
}

// Primary returns the shard that owns partition p.
func (l *Layout) Primary(p uint32) string { return l.ring.Primary(uint64(p)) }

// Owners returns partition p's owner set, primary first.
func (l *Layout) Owners(p uint32) []string { return l.ring.Owners(uint64(p)) }

// PrimaryPartitions returns the partitions node owns as primary, ascending.
func (l *Layout) PrimaryPartitions(node string) []uint32 {
	var out []uint32
	for p := 0; p < l.numParts; p++ {
		if l.Primary(uint32(p)) == node {
			out = append(out, uint32(p))
		}
	}
	return out
}

// HeldPartitions returns every partition node must materialize — the ones
// it owns as primary or holds as a replica — ascending.
func (l *Layout) HeldPartitions(node string) []uint32 {
	var out []uint32
	for p := 0; p < l.numParts; p++ {
		for _, o := range l.Owners(uint32(p)) {
			if o == node {
				out = append(out, uint32(p))
				break
			}
		}
	}
	return out
}

// ShardSpans merges node's held partitions into the ascending span list its
// shard deployment materializes (population.NewShard input).
func (l *Layout) ShardSpans(node string) []population.Span {
	held := l.HeldPartitions(node)
	spans := make([]population.Span, 0, len(held))
	for _, p := range held {
		s := l.Span(p)
		if n := len(spans); n > 0 && spans[n-1].Hi == s.Lo {
			spans[n-1].Hi = s.Hi
			continue
		}
		spans = append(spans, s)
	}
	return spans
}

// localRanges maps held partitions (ascending) to the local index ranges of
// a shard that materialized exactly those partitions in order.
func (l *Layout) localRanges(held []uint32) map[uint32]platform.IndexRange {
	local := make(map[uint32]platform.IndexRange, len(held))
	lo := 0
	for _, p := range held {
		n := l.Span(p).Len()
		local[p] = platform.IndexRange{Lo: lo, Hi: lo + n}
		lo += n
	}
	return local
}
