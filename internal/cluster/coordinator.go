package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/targeting"
)

// Conn is one shard as the coordinator sees it. In-process clusters pass
// *Shard directly; multi-process clusters pass an adapi-backed conn that
// ships the same call over HTTP. A Conn must be safe for concurrent use.
type Conn interface {
	// ID returns the shard's ring node name.
	ID() string
	// CountBatch returns the batch's raw matched-user counts over the
	// listed partitions, mirroring Shard.CountBatch.
	CountBatch(ctx context.Context, iface string, door platform.Door, parts []uint32, reqs []platform.EstimateRequest) ([]platform.RawCount, error)
}

// CatalogHasher is the optional Conn extension the coordinator's preflight
// uses: a conn that can report its shard's catalog hash (Shard implements it
// directly; the adapi conn reads it from the shard's health endpoint).
type CatalogHasher interface {
	CatalogHash() (string, error)
}

// ErrPartial marks a scatter-gather result that could not cover the whole
// universe: some partitions had no reachable owner. Callers match it with
// errors.Is.
var ErrPartial = errors.New("cluster: partial result")

// ErrCatalogSkew marks a ring whose shards do not all serve the coordinator's
// catalog — e.g. one node loaded a snapshot built from a different seed or an
// older catalog generator. Mixed rings are refused at construction: summing
// raw counts across divergent catalogs would silently answer for the wrong
// options.
var ErrCatalogSkew = errors.New("cluster: shard catalog differs from coordinator")

// PartialError reports the partitions no live shard could serve after
// replica failover, with the last shard failure as the cause. Results are
// withheld rather than under-counted: a partial sum scaled and rounded
// would be silently wrong, the one outcome the equivalence battery exists
// to prevent.
type PartialError struct {
	// Partitions lists the unserved global partitions, ascending.
	Partitions []uint32
	// Cause is the last underlying shard failure.
	Cause error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("cluster: %d partitions unserved after failover (first %d): %v",
		len(e.Partitions), e.Partitions[0], e.Cause)
}

func (e *PartialError) Is(target error) bool { return target == ErrPartial }

func (e *PartialError) Unwrap() error { return e.Cause }

// DefaultShardTimeout bounds one shard attempt.
const DefaultShardTimeout = 15 * time.Second

// Options assembles a Coordinator.
type Options struct {
	// Layout is the cluster's partition map; required.
	Layout *Layout
	// Conns are the shard connections, one per ring node; required to
	// cover every node.
	Conns []Conn
	// Deploy carries the deployment parameters the shards were built with
	// (seed, ablation knobs, ...). The coordinator builds a zero-user
	// metadata deployment from it — catalogs, rules, rounders, and
	// objectives with nobody in them — so validation and scaling are
	// decided once, coordinator-side, exactly as a single node would.
	// UniverseSize and ShardSpans are overridden.
	Deploy platform.DeployOptions
	// Timeout bounds each shard attempt; 0 selects DefaultShardTimeout,
	// negative disables the deadline.
	Timeout time.Duration
	// Retries is how many times a failed shard call is retried on the same
	// shard before its partitions fail over to replicas.
	Retries int
	// Metrics receives the coordinator's per-shard counters; nil selects
	// obs.Default().
	Metrics *obs.Registry
}

// shardMetrics are the coordinator-side counters for one shard, labeled
// shard=<id> so the scatter path's health is visible per node.
type shardMetrics struct {
	requests   *obs.Counter   // cluster_shard_requests_total
	failures   *obs.Counter   // cluster_shard_failures_total
	reassigned *obs.Counter   // cluster_partitions_reassigned_total (moved OFF this shard)
	latency    *obs.Histogram // cluster_shard_seconds
}

// Coordinator fans batches out to shards, sums raw counts, and applies
// scaling and rounding once. It is safe for concurrent use: all state is
// immutable after construction and per-call bookkeeping is local.
type Coordinator struct {
	layout  *Layout
	conns   map[string]Conn
	meta    *platform.Deployment
	timeout time.Duration
	retries int

	mBatches   *obs.Counter
	mFailovers *obs.Counter
	mPartial   *obs.Counter
	mBatchSize *obs.Histogram
	perShard   map[string]*shardMetrics
}

// NewCoordinator builds a coordinator over the given shard connections.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.Layout == nil {
		return nil, errors.New("cluster: coordinator needs a layout")
	}
	conns := make(map[string]Conn, len(opts.Conns))
	for _, cn := range opts.Conns {
		if _, dup := conns[cn.ID()]; dup {
			return nil, fmt.Errorf("cluster: duplicate conn for shard %q", cn.ID())
		}
		conns[cn.ID()] = cn
	}
	for _, n := range opts.Layout.Ring().Nodes() {
		if _, ok := conns[n]; !ok {
			return nil, fmt.Errorf("cluster: no conn for ring node %q", n)
		}
	}
	dopts := opts.Deploy
	dopts.UniverseSize = opts.Layout.UniverseSize()
	dopts.ShardSpans = []population.Span{} // non-nil, empty: zero users
	meta, err := platform.NewDeployment(dopts)
	if err != nil {
		return nil, fmt.Errorf("cluster: metadata deployment: %w", err)
	}
	// Preflight: every conn that can report a catalog hash must match the
	// metadata deployment's. Fetch failures are tolerated (a remote shard may
	// be mid-boot; the scatter path will retry it), but a *divergent* answer
	// is a configuration error no retry fixes, so it refuses construction.
	wantHash := platform.CatalogHash(meta)
	for id, cn := range conns {
		h, ok := cn.(CatalogHasher)
		if !ok {
			continue
		}
		got, err := h.CatalogHash()
		if err != nil {
			continue
		}
		if got != wantHash {
			return nil, fmt.Errorf("%w: shard %s serves catalog %.12s, coordinator derives %.12s",
				ErrCatalogSkew, id, got, wantHash)
		}
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultShardTimeout
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	c := &Coordinator{
		layout:     opts.Layout,
		conns:      conns,
		meta:       meta,
		timeout:    timeout,
		retries:    opts.Retries,
		mBatches:   reg.Counter("cluster_batches_total"),
		mFailovers: reg.Counter("cluster_failovers_total"),
		mPartial:   reg.Counter("cluster_partial_results_total"),
		mBatchSize: reg.Histogram("cluster_batch_size_specs"),
		perShard:   make(map[string]*shardMetrics, len(conns)),
	}
	for id := range conns {
		lbl := obs.L("shard", id)
		c.perShard[id] = &shardMetrics{
			requests:   reg.Counter("cluster_shard_requests_total", lbl),
			failures:   reg.Counter("cluster_shard_failures_total", lbl),
			reassigned: reg.Counter("cluster_partitions_reassigned_total", lbl),
			latency:    reg.Histogram("cluster_shard_seconds", lbl),
		}
	}
	return c, nil
}

// Layout returns the cluster's partition map.
func (c *Coordinator) Layout() *Layout { return c.layout }

// Metadata returns the coordinator's zero-user deployment: the cluster's
// catalogs, rules, and rounders without its users.
func (c *Coordinator) Metadata() *platform.Deployment { return c.meta }

// MeasureMany answers a batch through the auditor door, bit-identically to
// a single-node Interface.MeasureMany over the full universe. A non-nil
// error is a cluster failure (ErrPartial after failover exhausted); per-
// request failures stay in their slots, as on a single node.
func (c *Coordinator) MeasureMany(iface string, reqs []platform.EstimateRequest) ([]platform.Estimate, error) {
	return c.sizeMany(context.Background(), iface, platform.DoorMeasure, reqs)
}

// MeasureManyCtx is MeasureMany under a trace context: the scatter-gather
// records one span per shard attempt (shard ID, failover round, outcome)
// and the trace rides the X-Adaudit-Trace header to every remote shard
// door. Tracing never alters the counts — traced and untraced batches are
// bit-identical.
func (c *Coordinator) MeasureManyCtx(ctx context.Context, iface string, reqs []platform.EstimateRequest) ([]platform.Estimate, error) {
	return c.sizeMany(ctx, iface, platform.DoorMeasure, reqs)
}

// EstimateMany is MeasureMany through the advertiser door.
func (c *Coordinator) EstimateMany(iface string, reqs []platform.EstimateRequest) ([]platform.Estimate, error) {
	return c.sizeMany(context.Background(), iface, platform.DoorEstimate, reqs)
}

// Measure answers one auditor-door query.
func (c *Coordinator) Measure(iface string, req platform.EstimateRequest) (int64, error) {
	return c.one(iface, platform.DoorMeasure, req)
}

// Estimate answers one advertiser-door query.
func (c *Coordinator) Estimate(iface string, req platform.EstimateRequest) (int64, error) {
	return c.one(iface, platform.DoorEstimate, req)
}

func (c *Coordinator) one(iface string, door platform.Door, req platform.EstimateRequest) (int64, error) {
	out, err := c.sizeMany(context.Background(), iface, door, []platform.EstimateRequest{req})
	if err != nil {
		return 0, err
	}
	if out[0].Err != nil {
		return 0, out[0].Err
	}
	return out[0].Size, nil
}

// sizeMany is the scatter-gather core: validate and resolve scaling factors
// once on the metadata interface (the same checks, in the same order, as
// the single-node batch path), fan the param-valid slots out to the
// shards, sum raw counts per slot, and scale-and-round each sum exactly
// once.
func (c *Coordinator) sizeMany(ctx context.Context, iface string, door platform.Door, reqs []platform.EstimateRequest) ([]platform.Estimate, error) {
	p, err := c.meta.ByName(iface)
	if err != nil {
		return nil, err
	}
	out := make([]platform.Estimate, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	span := trace.ChildOf(trace.FromContext(ctx), "cluster.size_many")
	if span != nil {
		defer span.End()
		span.Annotate("interface", iface)
		span.Annotate("door", door.String())
		span.AnnotateInt("specs", int64(len(reqs)))
	}
	c.mBatches.Inc()
	c.mBatchSize.Observe(time.Duration(len(reqs)))

	eligible := make([]float64, len(reqs))
	impressions := make([]float64, len(reqs))
	valid := make([]int, 0, len(reqs))
	for i := range reqs {
		e, f, err := p.QueryParams(door, reqs[i])
		if err != nil {
			out[i].Err = err
			continue
		}
		eligible[i], impressions[i] = e, f
		valid = append(valid, i)
	}
	if len(valid) == 0 {
		return out, nil
	}
	sub := make([]platform.EstimateRequest, len(valid))
	for k, i := range valid {
		sub[k] = reqs[i]
	}

	counts, slotErrs, stats, err := c.scatterGather(span, iface, door, sub)
	if span != nil {
		span.AnnotateInt("failover_rounds", int64(stats.rounds))
		span.AnnotateInt("shards", int64(len(stats.shards)))
	}
	if err != nil {
		span.SetError(err)
		// A withheld partial batch still leaves provenance: which shards
		// answered, how many failover rounds ran, and that the result was
		// refused rather than under-counted.
		if plog := span.ProvenanceLog(); plog != nil {
			plog.Add(trace.Provenance{
				Platform:       iface,
				Source:         "cluster",
				Shards:         stats.shards,
				FailoverRounds: stats.rounds,
				Partial:        true,
				TraceID:        span.TraceID(),
			})
		}
		return out, err
	}
	plog := span.ProvenanceLog()
	for k, i := range valid {
		if slotErrs[k] != nil {
			out[i].Err = slotErrs[k]
			continue
		}
		out[i].Size = p.ScaleAndRound(counts[k], eligible[i], impressions[i])
		if plog != nil {
			key := reqs[i].CacheKey
			if key == "" {
				key = targeting.Canonical(reqs[i].Spec)
			}
			plog.Add(trace.Provenance{
				Platform:       iface,
				Key:            key,
				Source:         "cluster",
				PlanHash:       trace.PlanHash(iface, door.String(), key),
				Shards:         stats.shards,
				FailoverRounds: stats.rounds,
				TraceID:        span.TraceID(),
				Value:          out[i].Size,
			})
		}
	}
	return out, nil
}

// scatterStats summarizes one scatter-gather for the batch's provenance:
// which shards contributed counts (sorted) and how many failover rounds ran
// beyond the primary scatter.
type scatterStats struct {
	shards []string
	rounds int
}

// scatterGather collects each slot's raw count summed over every partition,
// failing partitions over to ring replicas when their shard dies. Per-slot
// errors (spec shapes the shards reject) are deterministic across shards,
// so the first one reported wins and the slot's counts are discarded. A
// non-nil span records one child span per shard attempt; tracing observes
// the scatter but never steers it.
func (c *Coordinator) scatterGather(span *trace.Span, iface string, door platform.Door, reqs []platform.EstimateRequest) ([]int64, []error, scatterStats, error) {
	counts := make([]int64, len(reqs))
	slotErrs := make([]error, len(reqs))
	var stats scatterStats

	// Round 0: every partition goes to its primary.
	pending := make(map[string][]uint32)
	for _, id := range c.layout.Ring().Nodes() {
		if parts := c.layout.PrimaryPartitions(id); len(parts) > 0 {
			pending[id] = parts
		}
	}
	dead := make(map[string]bool)
	served := make(map[string]bool)
	var missing []uint32
	var lastErr error

	type shardResult struct {
		id    string
		parts []uint32
		res   []platform.RawCount
		err   error
	}
	round := 0
	for len(pending) > 0 {
		results := make(chan shardResult, len(pending))
		for id, parts := range pending {
			go func(id string, parts []uint32) {
				res, err := c.callShard(span, round, c.conns[id], iface, door, parts, reqs)
				results <- shardResult{id: id, parts: parts, res: res, err: err}
			}(id, parts)
		}
		next := make(map[string][]uint32)
		for range pending {
			r := <-results
			if r.err == nil {
				served[r.id] = true
				for k := range reqs {
					if r.res[k].Err != nil {
						if slotErrs[k] == nil {
							slotErrs[k] = r.res[k].Err
						}
						continue
					}
					counts[k] += r.res[k].Count
				}
				continue
			}
			// Shard failed: mark it dead and re-address each of its
			// partitions to the first live replica owner.
			lastErr = r.err
			dead[r.id] = true
			c.perShard[r.id].reassigned.Add(int64(len(r.parts)))
			c.mFailovers.Inc()
			for _, part := range r.parts {
				reassigned := false
				for _, owner := range c.layout.Owners(part) {
					if owner == r.id || dead[owner] {
						continue
					}
					next[owner] = append(next[owner], part)
					reassigned = true
					break
				}
				if !reassigned {
					missing = append(missing, part)
				}
			}
		}
		for id := range next {
			sort.Slice(next[id], func(i, j int) bool { return next[id][i] < next[id][j] })
		}
		pending = next
		round++
	}
	stats.rounds = round - 1
	stats.shards = make([]string, 0, len(served))
	for id := range served {
		stats.shards = append(stats.shards, id)
	}
	sort.Strings(stats.shards)
	if len(missing) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		c.mPartial.Inc()
		return nil, nil, stats, &PartialError{Partitions: missing, Cause: lastErr}
	}
	return counts, slotErrs, stats, nil
}

// callShard runs one CountBatch with the per-attempt timeout, retrying on
// the same shard before the caller fails its partitions over. Each attempt
// records its own child span — shard ID, failover round, attempt number,
// and outcome (ok, retry, or failover) — and carries the trace context into
// the conn, so a remote shard door continues the same trace.
func (c *Coordinator) callShard(parent *trace.Span, round int, conn Conn, iface string, door platform.Door, parts []uint32, reqs []platform.EstimateRequest) ([]platform.RawCount, error) {
	m := c.perShard[conn.ID()]
	var err error
	for attempt := 0; attempt <= c.retries; attempt++ {
		m.requests.Inc()
		sp := trace.ChildOf(parent, "cluster.shard")
		exID := ""
		if sp != nil {
			sp.Annotate("shard", conn.ID())
			sp.AnnotateInt("round", int64(round))
			sp.AnnotateInt("attempt", int64(attempt))
			sp.AnnotateInt("partitions", int64(len(parts)))
			exID = sp.TraceID()
		}
		start := time.Now()
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if c.timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
		}
		if sp != nil {
			ctx = trace.NewContext(ctx, sp)
		}
		var res []platform.RawCount
		res, err = conn.CountBatch(ctx, iface, door, parts, reqs)
		cancel()
		m.latency.ObserveWithExemplar(time.Since(start), exID)
		if err == nil {
			if len(res) != len(reqs) {
				err = fmt.Errorf("cluster: shard %s returned %d slots for %d requests", conn.ID(), len(res), len(reqs))
			} else {
				if sp != nil {
					sp.Annotate("outcome", "ok")
					sp.End()
				}
				return res, nil
			}
		}
		if sp != nil {
			outcome := "failover"
			if attempt < c.retries {
				outcome = "retry"
			}
			sp.Annotate("outcome", outcome)
			sp.SetError(err)
			sp.End()
		}
		m.failures.Inc()
	}
	return nil, err
}

// clusterProvider adapts one interface of the cluster to core.Provider (and
// its batch extension), so the audit runners drive a sharded deployment
// exactly as they drive a single process.
type clusterProvider struct {
	c     *Coordinator
	iface string
	p     *platform.Interface // metadata interface: catalogs and rules
}

// Provider returns a core.Provider measuring through the cluster's
// auditor door.
func (c *Coordinator) Provider(iface string) (core.Provider, error) {
	p, err := c.meta.ByName(iface)
	if err != nil {
		return nil, err
	}
	return &clusterProvider{c: c, iface: iface, p: p}, nil
}

func (cp *clusterProvider) Name() string { return cp.iface }

func (cp *clusterProvider) AttributeNames() []string {
	attrs := cp.p.Catalog().Attributes
	out := make([]string, len(attrs))
	for i := range attrs {
		out[i] = attrs[i].Name
	}
	return out
}

func (cp *clusterProvider) TopicNames() []string {
	topics := cp.p.Catalog().Topics
	out := make([]string, len(topics))
	for i := range topics {
		out[i] = topics[i].Name
	}
	return out
}

func (cp *clusterProvider) CrossFeature() bool {
	return !cp.p.Rules().AndWithinFeature
}

func (cp *clusterProvider) Measure(spec targeting.Spec) (int64, error) {
	return cp.c.Measure(cp.iface, platform.EstimateRequest{Spec: spec})
}

// MeasureCtx implements core.ContextMeasurer: one traced single-spec
// scatter-gather.
func (cp *clusterProvider) MeasureCtx(ctx context.Context, spec targeting.Spec) (int64, error) {
	out := cp.MeasureManyCtx(ctx, []targeting.Spec{spec})
	return out[0].Size, out[0].Err
}

// MeasureMany implements core.BatchMeasurer: one scatter-gather per batch.
// A cluster-level failure (partial result) fails every slot — a partial
// count must never be mistaken for a small audience.
func (cp *clusterProvider) MeasureMany(specs []targeting.Spec) []core.BatchResult {
	return cp.measureMany(context.Background(), specs)
}

// MeasureManyCtx implements core.ContextBatchMeasurer: the scatter-gather
// under the caller's trace context.
func (cp *clusterProvider) MeasureManyCtx(ctx context.Context, specs []targeting.Spec) []core.BatchResult {
	return cp.measureMany(ctx, specs)
}

func (cp *clusterProvider) measureMany(ctx context.Context, specs []targeting.Spec) []core.BatchResult {
	reqs := make([]platform.EstimateRequest, len(specs))
	for i := range specs {
		reqs[i] = platform.EstimateRequest{Spec: specs[i]}
	}
	out := make([]core.BatchResult, len(specs))
	est, err := cp.c.MeasureManyCtx(ctx, cp.iface, reqs)
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	for i := range est {
		out[i] = core.BatchResult{Size: est[i].Size, Err: est[i].Err}
	}
	return out
}
