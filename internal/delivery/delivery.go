// Package delivery simulates the ad-delivery stage that sits after
// targeting. The paper deliberately scopes it out but flags it as a further
// skew source: "while we measure the skew in audiences arising from
// targeting, the operation of the ad platform's ad delivery system might
// introduce additional skews [4]" (§3, Limitations; [4] is Ali et al.,
// "Discrimination through Optimization").
//
// The simulation is a per-impression second-price auction: each impression
// opportunity belongs to one user; campaigns whose *targeted audience*
// contains the user and whose budget is unspent compete with an effective
// bid of bid × predicted engagement. Because predicted engagement is
// demographically structured (the platform's relevance model knows which
// users tend to engage with which ad categories), a campaign with a
// perfectly neutral targeted audience can still deliver to a skewed one —
// the phenomenon Ali et al. measured on the live platform, reproduced here
// on the simulated substrate so the audit's targeting-level findings can be
// compared against delivery-level outcomes.
package delivery

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/audience"
	"repro/internal/population"
	"repro/internal/xrand"
)

// Campaign is one advertiser's ad under delivery.
type Campaign struct {
	// Name identifies the campaign in outcomes.
	Name string
	// Audience is the targeted audience (from platform.Interface.Audience
	// or any set over the same universe).
	Audience *audience.Set
	// Bid is the advertiser's bid per impression (arbitrary currency).
	Bid float64
	// BudgetImpressions caps the campaign's deliveries (0 = unlimited).
	BudgetImpressions int
	// Relevance is the platform's engagement model for this ad: the
	// probability a user engages, in the same generative family as
	// targeting attributes (demographic loadings + latent factor). This is
	// the delivery-side source of skew.
	Relevance population.AttrModel
}

// Config drives one delivery simulation.
type Config struct {
	// Seed drives auction randomness (pacing tie-breaks).
	Seed uint64
	// OpportunitiesPerUser is how many impression opportunities each user
	// generates (weighted by activity tier). Zero selects 2.
	OpportunitiesPerUser int
	// BidJitterSigma is the log-scale spread of per-opportunity effective
	// bids, modelling pacing and bid adjustments — without it the
	// deterministic auction is winner-take-all per user signature. Zero
	// selects 0.35; negative disables jitter.
	BidJitterSigma float64
}

// Outcome reports one campaign's deliveries.
type Outcome struct {
	Name string
	// Impressions delivered in total and per gender/age.
	Impressions int
	ByGender    [population.NumGenders]int
	ByAge       [population.NumAgeRanges]int
	// Spend is the total second-price cost.
	Spend float64
}

// DeliveryRatio returns the delivered-impression representation ratio
// toward a gender: (impressions to g / users of g) over (impressions to ¬g
// / users of ¬g) — the delivery analogue of Equation 1.
func (o Outcome) DeliveryRatio(uni *population.Universe, g population.Gender) float64 {
	in := float64(o.ByGender[g]) / float64(uni.GenderSet(g).Count())
	out := float64(o.ByGender[g.Other()]) / float64(uni.GenderSet(g.Other()).Count())
	if out == 0 {
		if in == 0 {
			return 1
		}
		return 0 // caller should treat as unbounded; avoided by ample budgets
	}
	return in / out
}

// Engine runs auctions over a universe.
type Engine struct {
	uni *population.Universe
	cfg Config
}

// NewEngine returns a delivery engine.
func NewEngine(uni *population.Universe, cfg Config) *Engine {
	if cfg.OpportunitiesPerUser == 0 {
		cfg.OpportunitiesPerUser = 2
	}
	if cfg.BidJitterSigma == 0 {
		cfg.BidJitterSigma = 0.35
	}
	if cfg.BidJitterSigma < 0 {
		cfg.BidJitterSigma = 0
	}
	return &Engine{uni: uni, cfg: cfg}
}

// Errors.
var (
	ErrNoCampaigns = errors.New("delivery: no campaigns")
	ErrBadCampaign = errors.New("delivery: invalid campaign")
)

// Run delivers all impression opportunities and returns per-campaign
// outcomes in input order. Deterministic in (universe, config, campaigns).
func (e *Engine) Run(campaigns []Campaign) ([]Outcome, error) {
	if len(campaigns) == 0 {
		return nil, ErrNoCampaigns
	}
	for i, c := range campaigns {
		if c.Name == "" || c.Audience == nil || c.Bid <= 0 {
			return nil, fmt.Errorf("%w: campaign %d needs a name, audience, and positive bid", ErrBadCampaign, i)
		}
		if c.Audience.Len() != e.uni.Size() {
			return nil, fmt.Errorf("%w: campaign %q audience universe mismatch", ErrBadCampaign, c.Name)
		}
	}

	// Precompute each campaign's engagement rate per (cell, factor) —
	// the same 16-entry table trick the population uses.
	type rateTable [population.NumCells][2]float64
	rates := make([]rateTable, len(campaigns))
	for i, c := range campaigns {
		for cell := 0; cell < population.NumCells; cell++ {
			rates[i][cell][0] = c.Relevance.Rate(population.Cell(cell), false)
			rates[i][cell][1] = c.Relevance.Rate(population.Cell(cell), true)
		}
	}

	outs := make([]Outcome, len(campaigns))
	for i := range campaigns {
		outs[i].Name = campaigns[i].Name
	}
	budgetLeft := make([]int, len(campaigns))
	for i, c := range campaigns {
		budgetLeft[i] = c.BudgetImpressions
		if budgetLeft[i] == 0 {
			budgetLeft[i] = -1 // unlimited
		}
	}

	// Users with higher activity tiers browse more, generating more
	// opportunities — the same heavy tail the targeting side models.
	n := e.uni.Size()
	for u := 0; u < n; u++ {
		opps := e.cfg.OpportunitiesPerUser
		if e.uni.ActivityTier(u) >= population.ActivityTiers/2 {
			opps++
		}
		cell := int(e.uni.CellOfUser(u))
		for o := 0; o < opps; o++ {
			// Auction: effective bid = bid × predicted engagement.
			best, second := -1, -1
			var bestScore, secondScore float64
			for ci := range campaigns {
				if budgetLeft[ci] == 0 || !campaigns[ci].Audience.Contains(u) {
					continue
				}
				fi := 0
				if f := campaigns[ci].Relevance.Factor; f >= 0 && e.uni.HasFactor(u, f) {
					fi = 1
				}
				score := campaigns[ci].Bid * rates[ci][cell][fi]
				// Deterministic per-opportunity jitter: pacing and bid
				// adjustments spread effective bids log-normally (and break
				// ties without bias when disabled).
				score *= bidJitter(e.cfg.BidJitterSigma, e.cfg.Seed, uint64(u), uint64(o), uint64(ci))
				if score > bestScore {
					second, secondScore = best, bestScore
					best, bestScore = ci, score
				} else if score > secondScore {
					second, secondScore = ci, score
				}
			}
			if best < 0 {
				continue // no eligible campaign
			}
			price := secondScore
			if second < 0 {
				price = 0 // reserve-free floor when uncontested
			}
			outs[best].Impressions++
			outs[best].ByGender[e.uni.CellOfUser(u).Gender()]++
			outs[best].ByAge[e.uni.CellOfUser(u).Age()]++
			outs[best].Spend += price
			if budgetLeft[best] > 0 {
				budgetLeft[best]--
			}
		}
	}
	return outs, nil
}

// bidJitter returns exp(sigma·z) for an approximately standard-normal z
// derived deterministically from the hash words (Irwin–Hall with six
// uniforms). With sigma 0 it degenerates to a bias-free tie-break.
func bidJitter(sigma float64, words ...uint64) float64 {
	if sigma == 0 {
		return 1 + 1e-9*xrand.Uniform01(xrand.Mix(words...))
	}
	var sum float64
	for i := uint64(0); i < 6; i++ {
		sum += xrand.Uniform01(xrand.Mix(append(words, i)...))
	}
	z := (sum - 3) / 0.7071 // Irwin–Hall(6): mean 3, std ≈ 0.7071
	return math.Exp(sigma * z)
}

// SkewSummary compares targeting-level and delivery-level gender ratios for
// each campaign — the study the paper defers to Ali et al.
type SkewSummary struct {
	Name string
	// TargetedRatio is the targeted audience's rep ratio toward males
	// (audience-level, exact).
	TargetedRatio float64
	// DeliveredRatio is the delivered impressions' ratio toward males.
	DeliveredRatio float64
}

// Summarize computes the targeting-vs-delivery comparison for a run.
func (e *Engine) Summarize(campaigns []Campaign, outs []Outcome) ([]SkewSummary, error) {
	if len(campaigns) != len(outs) {
		return nil, errors.New("delivery: campaigns and outcomes mismatched")
	}
	males := e.uni.GenderSet(population.Male)
	females := e.uni.GenderSet(population.Female)
	sums := make([]SkewSummary, len(campaigns))
	for i, c := range campaigns {
		mIn := float64(audience.CountAnd(c.Audience, males)) / float64(males.Count())
		fIn := float64(audience.CountAnd(c.Audience, females)) / float64(females.Count())
		s := SkewSummary{Name: c.Name, DeliveredRatio: outs[i].DeliveryRatio(e.uni, population.Male)}
		if fIn > 0 {
			s.TargetedRatio = mIn / fIn
		}
		sums[i] = s
	}
	sort.Slice(sums, func(a, b int) bool { return sums[a].Name < sums[b].Name })
	return sums, nil
}
