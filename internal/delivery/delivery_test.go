package delivery

import (
	"errors"
	"math"
	"testing"

	"repro/internal/audience"
	"repro/internal/population"
)

// testUniverse builds a universe with a male-skewed factor 0.
func testUniverse(t *testing.T) *population.Universe {
	t.Helper()
	u, err := population.New(population.Config{
		Seed:      31,
		Size:      30000,
		MaleShare: 0.5,
		AgeShare:  [population.NumAgeRanges]float64{0.25, 0.25, 0.25, 0.25},
		Factors: []population.FactorModel{
			{Rate: 0.12, GenderLoad: 1.8},
			{Rate: 0.12, GenderLoad: -1.8},
		},
		ActivitySigma: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// everyone returns the full-universe audience.
func everyone(u *population.Universe) *audience.Set {
	s := audience.New(u.Size())
	s.Fill()
	return s
}

// neutralRelevance engages everyone equally.
func neutralRelevance(id uint64) population.AttrModel {
	return population.AttrModel{ID: id, BaseLogit: population.Logit(0.02), Factor: -1}
}

// maleRelevance engages men and factor-0 holders more.
func maleRelevance(id uint64) population.AttrModel {
	return population.AttrModel{
		ID: id, BaseLogit: population.Logit(0.02),
		GenderLoad: 1.5, Factor: 0, FactorBoost: 1.0,
	}
}

func TestRunValidation(t *testing.T) {
	u := testUniverse(t)
	e := NewEngine(u, Config{Seed: 1})
	if _, err := e.Run(nil); !errors.Is(err, ErrNoCampaigns) {
		t.Fatalf("want ErrNoCampaigns, got %v", err)
	}
	bad := []Campaign{
		{Name: "", Audience: everyone(u), Bid: 1},
		{Name: "x", Audience: nil, Bid: 1},
		{Name: "x", Audience: everyone(u), Bid: 0},
		{Name: "x", Audience: audience.New(5), Bid: 1},
	}
	for i, c := range bad {
		if _, err := e.Run([]Campaign{c}); !errors.Is(err, ErrBadCampaign) {
			t.Errorf("bad campaign %d accepted: %v", i, err)
		}
	}
}

func TestAllOpportunitiesDelivered(t *testing.T) {
	u := testUniverse(t)
	e := NewEngine(u, Config{Seed: 1, OpportunitiesPerUser: 2})
	outs, err := e.Run([]Campaign{
		{Name: "solo", Audience: everyone(u), Bid: 1, Relevance: neutralRelevance(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each user generates 2 opportunities, +1 for the upper activity half.
	min, max := 2*u.Size(), 3*u.Size()
	if outs[0].Impressions < min || outs[0].Impressions > max {
		t.Fatalf("impressions %d outside [%d, %d]", outs[0].Impressions, min, max)
	}
	// Uncontested auctions cost nothing (no reserve).
	if outs[0].Spend != 0 {
		t.Fatalf("solo campaign spent %v", outs[0].Spend)
	}
	// Gender tallies sum to total.
	if outs[0].ByGender[0]+outs[0].ByGender[1] != outs[0].Impressions {
		t.Fatal("gender tallies do not sum to impressions")
	}
}

func TestDeterministic(t *testing.T) {
	u := testUniverse(t)
	camps := []Campaign{
		{Name: "a", Audience: everyone(u), Bid: 1, Relevance: maleRelevance(1)},
		{Name: "b", Audience: everyone(u), Bid: 1, Relevance: neutralRelevance(2)},
	}
	e := NewEngine(u, Config{Seed: 9})
	o1, err := e.Run(camps)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := e.Run(camps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d differs across identical runs", i)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	u := testUniverse(t)
	e := NewEngine(u, Config{Seed: 3})
	outs, err := e.Run([]Campaign{
		{Name: "capped", Audience: everyone(u), Bid: 10, BudgetImpressions: 500, Relevance: neutralRelevance(1)},
		{Name: "rest", Audience: everyone(u), Bid: 1, Relevance: neutralRelevance(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Impressions != 500 {
		t.Fatalf("capped campaign delivered %d, want 500", outs[0].Impressions)
	}
	if outs[1].Impressions == 0 {
		t.Fatal("backfill campaign delivered nothing")
	}
}

func TestSecondPriceBounded(t *testing.T) {
	u := testUniverse(t)
	e := NewEngine(u, Config{Seed: 5, BidJitterSigma: -1})
	outs, err := e.Run([]Campaign{
		{Name: "hi", Audience: everyone(u), Bid: 10, Relevance: neutralRelevance(1)},
		{Name: "lo", Audience: everyone(u), Bid: 1, Relevance: neutralRelevance(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The high bidder wins everything and pays the runner-up's effective
	// bid, which is below its own.
	if outs[1].Impressions != 0 {
		t.Fatalf("low bidder won %d impressions", outs[1].Impressions)
	}
	perImpr := outs[0].Spend / float64(outs[0].Impressions)
	ownEffective := 10 * 0.02 // bid × neutral engagement
	if perImpr <= 0 || perImpr >= ownEffective {
		t.Fatalf("per-impression price %v outside (0, %v)", perImpr, ownEffective)
	}
}

func TestNeutralTargetingSkewedDelivery(t *testing.T) {
	// The Ali-et-al. phenomenon the paper cites: two campaigns target the
	// *same neutral audience*; the one whose ad category engages men more
	// is delivered predominantly to men.
	u := testUniverse(t)
	e := NewEngine(u, Config{Seed: 7})
	camps := []Campaign{
		{Name: "cars-ad", Audience: everyone(u), Bid: 1, Relevance: maleRelevance(1)},
		{Name: "generic-ad", Audience: everyone(u), Bid: 1, Relevance: neutralRelevance(2)},
	}
	outs, err := e.Run(camps)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := e.Summarize(camps, outs)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SkewSummary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	cars := byName["cars-ad"]
	if math.Abs(cars.TargetedRatio-1) > 0.05 {
		t.Fatalf("targeted ratio %v should be neutral", cars.TargetedRatio)
	}
	if cars.DeliveredRatio < 1.25 {
		t.Fatalf("delivered ratio %v should violate four-fifths despite neutral targeting", cars.DeliveredRatio)
	}
	// And the generic ad absorbs the complement (skews female).
	generic := byName["generic-ad"]
	if generic.DeliveredRatio >= 1 {
		t.Fatalf("generic ad delivered ratio %v, want female-leaning complement", generic.DeliveredRatio)
	}
}

func TestDeliveryAmplifiesTargetingSkew(t *testing.T) {
	// Delivery skew stacks on targeting skew: a male-targeted audience with
	// a male-engaging ad delivers even more male-heavy.
	u := testUniverse(t)
	males := audience.NewFromFunc(u.Size(), func(i int) bool {
		return u.HasFactor(i, 0) // male-skewed factor audience
	})
	e := NewEngine(u, Config{Seed: 11})
	camps := []Campaign{
		{Name: "targeted", Audience: males, Bid: 1, Relevance: maleRelevance(1)},
		{Name: "filler", Audience: everyone(u), Bid: 0.2, Relevance: neutralRelevance(2)},
	}
	outs, err := e.Run(camps)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := e.Summarize(camps, outs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if s.Name != "targeted" {
			continue
		}
		if s.TargetedRatio < 1.25 {
			t.Fatalf("targeted ratio %v should already be skewed", s.TargetedRatio)
		}
		if s.DeliveredRatio < s.TargetedRatio {
			t.Fatalf("delivered ratio %v below targeted %v; delivery should add skew",
				s.DeliveredRatio, s.TargetedRatio)
		}
	}
}

func TestSummarizeMismatch(t *testing.T) {
	u := testUniverse(t)
	e := NewEngine(u, Config{})
	if _, err := e.Summarize([]Campaign{{Name: "a"}}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func BenchmarkDeliveryRun(b *testing.B) {
	u, err := population.New(population.Config{
		Seed: 3, Size: 1 << 15, MaleShare: 0.5,
		AgeShare: [population.NumAgeRanges]float64{0.25, 0.25, 0.25, 0.25},
		Factors:  population.UniformFactors(4, 0.1),
	})
	if err != nil {
		b.Fatal(err)
	}
	all := audience.New(u.Size())
	all.Fill()
	camps := []Campaign{
		{Name: "a", Audience: all, Bid: 1, Relevance: population.AttrModel{ID: 1, BaseLogit: population.Logit(0.02), GenderLoad: 1, Factor: 0}},
		{Name: "b", Audience: all, Bid: 1, Relevance: population.AttrModel{ID: 2, BaseLogit: population.Logit(0.02), Factor: -1}},
		{Name: "c", Audience: all, Bid: 0.8, Relevance: population.AttrModel{ID: 3, BaseLogit: population.Logit(0.02), GenderLoad: -1, Factor: 1}},
	}
	e := NewEngine(u, Config{Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(camps); err != nil {
			b.Fatal(err)
		}
	}
}
