// Package pii implements PII-based targeting (paper §2.1): advertisers
// upload personally identifying information — email addresses, phone
// numbers — which the platform normalizes, hashes, and matches against its
// user database to build a custom audience ("Customer Match" on Google,
// "Custom Audiences from a customer list" on Facebook, "Contact Targeting"
// on LinkedIn).
//
// The simulated platforms give every user deterministic synthetic PII via a
// Directory, so an advertiser-side Record list and the platform-side match
// exercise the real pipeline: normalize → SHA-256 → match.
package pii

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/xrand"
)

// Record is raw customer PII as an advertiser's CRM would hold it.
type Record struct {
	Email string
	Phone string
}

// HashedRecord is the privacy-preserving form uploaded to a platform:
// lowercase hex SHA-256 digests of the normalized fields. Empty fields hash
// to the empty string.
type HashedRecord struct {
	EmailHash string `json:"email_hash,omitempty"`
	PhoneHash string `json:"phone_hash,omitempty"`
}

// NormalizeEmail canonicalizes an email address the way the platforms
// document: trim whitespace, lowercase, and drop a "+tag" suffix in the
// local part.
func NormalizeEmail(email string) string {
	e := strings.ToLower(strings.TrimSpace(email))
	at := strings.LastIndexByte(e, '@')
	if at <= 0 {
		return e
	}
	local, domain := e[:at], e[at+1:]
	if plus := strings.IndexByte(local, '+'); plus >= 0 {
		local = local[:plus]
	}
	return local + "@" + domain
}

// NormalizePhone canonicalizes a phone number: digits only, with a leading
// "1" country code stripped from 11-digit North American numbers.
func NormalizePhone(phone string) string {
	var b strings.Builder
	for _, r := range phone {
		if r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	digits := b.String()
	if len(digits) == 11 && digits[0] == '1' {
		digits = digits[1:]
	}
	return digits
}

// hashField returns the hex SHA-256 of a normalized non-empty field.
func hashField(normalized string) string {
	if normalized == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(normalized))
	return hex.EncodeToString(sum[:])
}

// Hash normalizes and hashes the record.
func (r Record) Hash() HashedRecord {
	return HashedRecord{
		EmailHash: hashField(NormalizeEmail(r.Email)),
		PhoneHash: hashField(NormalizePhone(r.Phone)),
	}
}

// HashAll hashes a batch of records.
func HashAll(records []Record) []HashedRecord {
	out := make([]HashedRecord, len(records))
	for i, r := range records {
		out[i] = r.Hash()
	}
	return out
}

// Name pools for synthetic PII.
var (
	firstNames = []string{
		"alex", "sam", "jordan", "taylor", "casey", "riley", "morgan",
		"jamie", "avery", "quinn", "dana", "lee", "pat", "chris", "robin",
		"maria", "john", "wei", "aisha", "carlos", "nina", "omar", "lena",
		"ivan", "sofia", "ken", "priya", "hugo", "emma", "noah",
	}
	lastNames = []string{
		"smith", "johnson", "lee", "patel", "garcia", "kim", "nguyen",
		"chen", "brown", "davis", "martin", "lopez", "wilson", "anders",
		"clark", "lewis", "walker", "hall", "young", "king", "wright",
		"scott", "green", "baker", "adams", "nelson", "hill", "campbell",
	}
	domains = []string{
		"example.com", "mail.example.org", "inbox.example.net",
		"post.example.io", "webmail.example.co",
	}
)

// Directory assigns deterministic synthetic PII to every user of a
// simulated universe and matches uploaded hashes back to user indices — the
// platform side of PII targeting.
type Directory struct {
	seed uint64
	size int

	once    sync.Once
	byEmail map[string]int // email hash → user index
	byPhone map[string]int // phone hash → user index
}

// NewDirectory returns the PII directory for a universe of the given seed
// and size. Directories built from the same (seed, size) are identical, so
// interfaces sharing a universe share PII.
func NewDirectory(seed uint64, size int) *Directory {
	return &Directory{seed: seed, size: size}
}

// Size returns the number of users with PII.
func (d *Directory) Size() int { return d.size }

// Email returns user i's synthetic email address.
func (d *Directory) Email(i int) string {
	h := xrand.Mix(d.seed, 0xE1, uint64(i))
	first := firstNames[h%uint64(len(firstNames))]
	last := lastNames[(h>>8)%uint64(len(lastNames))]
	domain := domains[(h>>16)%uint64(len(domains))]
	// The user index keeps addresses unique without harming realism.
	return fmt.Sprintf("%s.%s%d@%s", first, last, i, domain)
}

// Phone returns user i's synthetic phone number (E.164-ish, deterministic,
// unique via the index).
func (d *Directory) Phone(i int) string {
	h := xrand.Mix(d.seed, 0xE2, uint64(i))
	area := 200 + h%800 // valid-looking area code
	return fmt.Sprintf("+1%03d555%04d", area, i%10000)
}

// RecordOf returns user i's full PII record.
func (d *Directory) RecordOf(i int) Record {
	return Record{Email: d.Email(i), Phone: d.Phone(i)}
}

// OutsiderRecord returns PII that belongs to no simulated user (for
// match-rate tests: real customer lists contain non-users).
func (d *Directory) OutsiderRecord(j int) Record {
	return Record{
		Email: fmt.Sprintf("outsider%d@nowhere.example", j),
		Phone: fmt.Sprintf("+1999555%04d", j%10000),
	}
}

// index builds the hash → user maps once.
func (d *Directory) index() {
	d.once.Do(func() {
		d.byEmail = make(map[string]int, d.size)
		d.byPhone = make(map[string]int, d.size)
		for i := 0; i < d.size; i++ {
			rec := d.RecordOf(i).Hash()
			d.byEmail[rec.EmailHash] = i
			d.byPhone[rec.PhoneHash] = i
		}
	})
}

// Match resolves a hashed record to a user index, or -1 when no user
// matches. Email wins over phone when both are present, as the platforms'
// matchers prioritize stronger identifiers.
func (d *Directory) Match(h HashedRecord) int {
	d.index()
	if h.EmailHash != "" {
		if i, ok := d.byEmail[h.EmailHash]; ok {
			return i
		}
	}
	if h.PhoneHash != "" {
		if i, ok := d.byPhone[h.PhoneHash]; ok {
			return i
		}
	}
	return -1
}

// MatchAll resolves a batch, returning the matched user indices
// (deduplicated, in upload order) and the match count.
func (d *Directory) MatchAll(hs []HashedRecord) []int {
	seen := make(map[int]bool, len(hs))
	out := make([]int, 0, len(hs))
	for _, h := range hs {
		if i := d.Match(h); i >= 0 && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}
