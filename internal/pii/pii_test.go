package pii

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeEmail(t *testing.T) {
	cases := map[string]string{
		"  Alice@Example.COM ":  "alice@example.com",
		"bob+promo@example.com": "bob@example.com",
		"carol.d+x+y@mail.org":  "carol.d@mail.org",
		"noat":                  "noat",
		"@lead.com":             "@lead.com",
		"PLAIN@X.Y":             "plain@x.y",
	}
	for in, want := range cases {
		if got := NormalizeEmail(in); got != want {
			t.Errorf("NormalizeEmail(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizePhone(t *testing.T) {
	cases := map[string]string{
		"+1 (617) 555-0101": "6175550101",
		"617-555-0101":      "6175550101",
		"16175550101":       "6175550101",
		"0101":              "0101",
		"abc":               "",
	}
	for in, want := range cases {
		if got := NormalizePhone(in); got != want {
			t.Errorf("NormalizePhone(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHashEquivalentForms(t *testing.T) {
	a := Record{Email: "Alice+news@Example.com", Phone: "+1 (617) 555-0101"}.Hash()
	b := Record{Email: "alice@example.com", Phone: "617 555 0101"}.Hash()
	if a.EmailHash != b.EmailHash {
		t.Error("equivalent emails hash differently")
	}
	if a.PhoneHash != b.PhoneHash {
		t.Error("equivalent phones hash differently")
	}
	if a.EmailHash == a.PhoneHash {
		t.Error("email and phone hashes collide")
	}
	if len(a.EmailHash) != 64 || !isHex(a.EmailHash) {
		t.Errorf("hash %q is not hex SHA-256", a.EmailHash)
	}
}

func isHex(s string) bool {
	for _, r := range s {
		if !strings.ContainsRune("0123456789abcdef", r) {
			return false
		}
	}
	return true
}

func TestHashEmptyFields(t *testing.T) {
	h := Record{}.Hash()
	if h.EmailHash != "" || h.PhoneHash != "" {
		t.Error("empty fields must hash to empty strings")
	}
}

func TestDirectoryDeterministic(t *testing.T) {
	a := NewDirectory(7, 1000)
	b := NewDirectory(7, 1000)
	for i := 0; i < 100; i++ {
		if a.Email(i) != b.Email(i) || a.Phone(i) != b.Phone(i) {
			t.Fatalf("directories diverge at user %d", i)
		}
	}
	c := NewDirectory(8, 1000)
	if a.Email(0) == c.Email(0) {
		t.Error("different seeds should differ")
	}
}

func TestDirectoryUniqueEmails(t *testing.T) {
	d := NewDirectory(7, 5000)
	seen := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		e := d.Email(i)
		if seen[e] {
			t.Fatalf("duplicate email %q", e)
		}
		seen[e] = true
		if !strings.Contains(e, "@") {
			t.Fatalf("malformed email %q", e)
		}
	}
}

func TestMatchRoundTrip(t *testing.T) {
	d := NewDirectory(9, 2000)
	for i := 0; i < 200; i++ {
		h := d.RecordOf(i).Hash()
		if got := d.Match(h); got != i {
			t.Fatalf("Match(RecordOf(%d)) = %d", i, got)
		}
	}
}

func TestMatchEmailOnly(t *testing.T) {
	d := NewDirectory(9, 500)
	h := Record{Email: d.Email(42)}.Hash()
	if got := d.Match(h); got != 42 {
		t.Fatalf("email-only match = %d, want 42", got)
	}
	h = Record{Phone: d.Phone(43)}.Hash()
	if got := d.Match(h); got != 43 {
		t.Fatalf("phone-only match = %d, want 43", got)
	}
}

func TestMatchOutsider(t *testing.T) {
	d := NewDirectory(9, 500)
	if got := d.Match(d.OutsiderRecord(1).Hash()); got != -1 {
		t.Fatalf("outsider matched to %d", got)
	}
	if got := d.Match(HashedRecord{}); got != -1 {
		t.Fatalf("empty record matched to %d", got)
	}
}

func TestMatchAllDedupAndRate(t *testing.T) {
	d := NewDirectory(11, 1000)
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, d.RecordOf(i))
	}
	recs = append(recs, d.RecordOf(0))       // duplicate
	recs = append(recs, d.OutsiderRecord(0)) // non-user
	matched := d.MatchAll(HashAll(recs))
	if len(matched) != 50 {
		t.Fatalf("matched %d, want 50 (dedup + outsider drop)", len(matched))
	}
	for i, u := range matched {
		if u != i {
			t.Fatalf("match order broken at %d: %d", i, u)
		}
	}
}

func TestNormalizeEmailIdempotent(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		once := NormalizeEmail(s)
		return NormalizeEmail(once) == once
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalizePhoneIdempotent(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		once := NormalizePhone(s)
		return NormalizePhone(once) == once
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatch(b *testing.B) {
	d := NewDirectory(3, 100000)
	h := d.RecordOf(5).Hash()
	d.Match(h) // build index outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Match(h)
	}
}
