// Package targeting models advertiser targeting expressions and the
// per-platform rules constraining how they may be composed.
//
// A Spec is a boolean formula in the shape every studied platform supports:
// a logical AND of OR-clauses over targeting options, optionally minus a set
// of excluded clauses ("and of or-terms", paper §2.1 footnote 2). Platforms
// differ in which features exist, whether exclusion is allowed (Facebook's
// restricted interface forbids it), whether demographics are a separate
// dimension (Facebook, Google) or ordinary attributes combined via AND of
// ORs (LinkedIn, paper §3 footnote 4), and whether options within one
// feature may be ANDed (Google only ORs attributes within a feature, so
// AND-composition there spans features, e.g. attribute ∧ topic).
package targeting

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Kind identifies a targeting feature family.
type Kind uint8

// Feature kinds.
const (
	// KindAttribute is a default-list user attribute (interests, industries,
	// behaviours) — the feature the paper crawls on every platform.
	KindAttribute Kind = iota
	// KindTopic is Google's webpage-topic placement targeting.
	KindTopic
	// KindGender targets a gender value.
	KindGender
	// KindAge targets an age-range value.
	KindAge
	// KindCustomAudience targets a previously created audience: a PII-match
	// (customer list) audience, a tracking-pixel (website activity)
	// audience, or a lookalike/special-ad audience expanded from either
	// (paper §2.1: PII-based, activity-based, and lookalike targeting).
	KindCustomAudience
	// KindLocation targets users by region; the paper's methodology scopes
	// every audience to U.S.-based users this way (§3).
	KindLocation
	// KindPlacement targets where the ad appears: specific publisher
	// websites/apps in the platform's network (paper §2.1, Google "managed
	// placements"). The reached audience is the placement's visitors.
	KindPlacement
	numKinds
)

// String returns the feature kind's name.
func (k Kind) String() string {
	switch k {
	case KindAttribute:
		return "attribute"
	case KindTopic:
		return "topic"
	case KindGender:
		return "gender"
	case KindAge:
		return "age"
	case KindCustomAudience:
		return "custom-audience"
	case KindLocation:
		return "location"
	case KindPlacement:
		return "placement"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Ref names one targeting option: a feature kind plus the option's index
// within that feature (for KindAttribute/KindTopic, an index into the
// platform catalog; for KindGender/KindAge, the demographic enum value).
type Ref struct {
	Kind Kind `json:"kind"`
	ID   int  `json:"id"`
}

// String formats the ref as kind:id.
func (r Ref) String() string { return fmt.Sprintf("%s:%d", r.Kind, r.ID) }

// Clause is a logical OR of refs. A user matches the clause if they match
// any ref in it.
type Clause []Ref

// Spec is a full targeting expression: (AND over Include clauses) AND NOT
// (OR over Exclude clauses). A user is in the audience if they match every
// include clause and no exclude clause.
type Spec struct {
	Include []Clause `json:"include"`
	Exclude []Clause `json:"exclude,omitempty"`
}

// Validation errors.
var (
	ErrEmptySpec         = errors.New("targeting: spec has no include clauses")
	ErrEmptyClause       = errors.New("targeting: empty clause")
	ErrMixedClause       = errors.New("targeting: clause mixes feature kinds")
	ErrExcludeForbidden  = errors.New("targeting: exclusion targeting not allowed on this interface")
	ErrKindForbidden     = errors.New("targeting: feature kind not offered by this interface")
	ErrDemoForbidden     = errors.New("targeting: demographic targeting not allowed on this interface")
	ErrAndWithinFeature  = errors.New("targeting: interface cannot AND options within one feature")
	ErrTooManyClauses    = errors.New("targeting: too many clauses")
	ErrUnknownOption     = errors.New("targeting: unknown targeting option")
	ErrDuplicateRef      = errors.New("targeting: duplicate option within clause")
	ErrInvalidDemoValue  = errors.New("targeting: invalid demographic value")
	ErrDemoNotAttributes = errors.New("targeting: demographics on this interface are separate dimensions, not attributes")
)

// Rules is a platform interface's composition policy.
type Rules struct {
	// Interface is the human-readable interface name (for error text).
	Interface string
	// Kinds lists the feature kinds the interface offers.
	Kinds []Kind
	// AllowExclude reports whether exclusion targeting is permitted.
	// Facebook's restricted interface sets this false (paper §2.2).
	AllowExclude bool
	// AllowDemographics reports whether gender/age may appear at all.
	// Facebook's restricted interface sets this false.
	AllowDemographics bool
	// DemographicsAsAttributes marks LinkedIn-style interfaces where gender
	// and age are ordinary detailed-targeting attributes combined by AND of
	// ORs rather than a separate campaign dimension.
	DemographicsAsAttributes bool
	// AndWithinFeature reports whether two clauses of the same feature kind
	// may be ANDed. Google's size-reporting surface only ORs options within
	// a feature, so AND-composition must span features (paper §3 footnote 8).
	AndWithinFeature bool
	// MaxClauses bounds the number of include clauses (0 = unlimited).
	MaxClauses int
	// OptionCount returns the number of options for a kind (catalog sizes),
	// used to bounds-check refs. Nil disables the check.
	OptionCount func(Kind) int
}

// allows reports whether kind k is offered.
func (r Rules) allows(k Kind) bool {
	for _, kk := range r.Kinds {
		if kk == k {
			return true
		}
	}
	return false
}

// Validate checks a spec against the interface's rules. It returns the first
// violation found, wrapped with the interface name.
func (r Rules) Validate(s Spec) error {
	if err := r.validate(s); err != nil {
		return fmt.Errorf("%s: %w", r.Interface, err)
	}
	return nil
}

func (r Rules) validate(s Spec) error {
	if len(s.Include) == 0 {
		return ErrEmptySpec
	}
	if len(s.Exclude) > 0 && !r.AllowExclude {
		return ErrExcludeForbidden
	}
	if r.MaxClauses > 0 && len(s.Include) > r.MaxClauses {
		return fmt.Errorf("%w: %d include clauses, limit %d", ErrTooManyClauses, len(s.Include), r.MaxClauses)
	}
	// Validation sits on the hot measurement path: kinds are counted in a
	// small array and duplicates found by scanning, so a valid spec checks
	// without allocating.
	var kindSeen [numKinds]int
	for _, group := range [][]Clause{s.Include, s.Exclude} {
		for _, cl := range group {
			k, err := r.validateClause(cl)
			if err != nil {
				return err
			}
			kindSeen[k]++
		}
	}
	if !r.AndWithinFeature {
		for k, n := range kindSeen {
			if n > 1 && (Kind(k) == KindAttribute || Kind(k) == KindTopic || Kind(k) == KindPlacement) {
				return fmt.Errorf("%w: %d %s clauses", ErrAndWithinFeature, n, Kind(k))
			}
		}
	}
	return nil
}

// validateClause checks one clause and returns its (homogeneous) kind.
func (r Rules) validateClause(cl Clause) (Kind, error) {
	if len(cl) == 0 {
		return 0, ErrEmptyClause
	}
	k := cl[0].Kind
	for i, ref := range cl {
		if ref.Kind != k {
			return 0, ErrMixedClause
		}
		for _, prev := range cl[:i] {
			if prev == ref {
				return 0, fmt.Errorf("%w: %s", ErrDuplicateRef, ref)
			}
		}
		if err := r.validateRef(ref); err != nil {
			return 0, err
		}
	}
	return k, nil
}

func (r Rules) validateRef(ref Ref) error {
	if ref.Kind >= numKinds {
		return fmt.Errorf("%w: %s", ErrKindForbidden, ref)
	}
	isDemo := ref.Kind == KindGender || ref.Kind == KindAge
	if isDemo && !r.AllowDemographics {
		return fmt.Errorf("%w: %s", ErrDemoForbidden, ref)
	}
	if !r.allows(ref.Kind) {
		return fmt.Errorf("%w: %s", ErrKindForbidden, ref)
	}
	if ref.ID < 0 {
		return fmt.Errorf("%w: %s", ErrUnknownOption, ref)
	}
	if r.OptionCount != nil {
		if n := r.OptionCount(ref.Kind); ref.ID >= n {
			return fmt.Errorf("%w: %s (have %d options)", ErrUnknownOption, ref, n)
		}
	}
	return nil
}

// --- constructors and combinators ---

// Attr returns a single-attribute spec.
func Attr(id int) Spec {
	return Spec{Include: []Clause{{{Kind: KindAttribute, ID: id}}}}
}

// Topic returns a single-topic spec.
func Topic(id int) Spec {
	return Spec{Include: []Clause{{{Kind: KindTopic, ID: id}}}}
}

// Placement returns a single-placement spec.
func Placement(id int) Spec {
	return Spec{Include: []Clause{{{Kind: KindPlacement, ID: id}}}}
}

// CustomAudience returns a spec targeting one custom audience by id.
func CustomAudience(id int) Spec {
	return Spec{Include: []Clause{{{Kind: KindCustomAudience, ID: id}}}}
}

// AnyAttr returns a spec matching users holding any of the given attributes
// (a single OR clause).
func AnyAttr(ids ...int) Spec {
	cl := make(Clause, len(ids))
	for i, id := range ids {
		cl[i] = Ref{Kind: KindAttribute, ID: id}
	}
	return Spec{Include: []Clause{cl}}
}

// And returns the conjunction of specs: all include clauses concatenated,
// all exclude clauses concatenated. This is how the paper composes
// targetings (logical AND of individual targetings).
func And(specs ...Spec) Spec {
	var out Spec
	for _, s := range specs {
		out.Include = append(out.Include, cloneClauses(s.Include)...)
		out.Exclude = append(out.Exclude, cloneClauses(s.Exclude)...)
	}
	return out
}

// WithLocation returns s AND (region ∈ regions), a single OR clause.
func WithLocation(s Spec, regions ...int) Spec {
	out := clone(s)
	cl := make(Clause, len(regions))
	for i, r := range regions {
		cl[i] = Ref{Kind: KindLocation, ID: r}
	}
	out.Include = append(out.Include, cl)
	return out
}

// WithGender returns s AND (gender = g).
func WithGender(s Spec, g int) Spec {
	out := clone(s)
	out.Include = append(out.Include, Clause{{Kind: KindGender, ID: g}})
	return out
}

// WithAge returns s AND (age ∈ ages), a single OR clause over age ranges.
func WithAge(s Spec, ages ...int) Spec {
	out := clone(s)
	cl := make(Clause, len(ages))
	for i, a := range ages {
		cl[i] = Ref{Kind: KindAge, ID: a}
	}
	out.Include = append(out.Include, cl)
	return out
}

// Excluding returns s AND NOT other's include clauses.
func Excluding(s Spec, other Spec) Spec {
	out := clone(s)
	out.Exclude = append(out.Exclude, cloneClauses(other.Include)...)
	return out
}

func clone(s Spec) Spec {
	return Spec{Include: cloneClauses(s.Include), Exclude: cloneClauses(s.Exclude)}
}

func cloneClauses(cs []Clause) []Clause {
	if cs == nil {
		return nil
	}
	out := make([]Clause, len(cs))
	for i, c := range cs {
		out[i] = append(Clause(nil), c...)
	}
	return out
}

// Canonical returns a canonical string form of the spec: clauses sorted,
// refs within clauses sorted, and duplicates collapsed at both levels —
// a repeated ref inside a clause (x ∨ x ≡ x) and a repeated clause inside
// the spec (c ∧ c ≡ c, and likewise for the excluded disjunction) denote
// the same audience. Two specs denoting the same formula therefore have
// the same canonical form, which the audit layer uses for dedup and
// caching and the durable store hashes into its content address; a spec
// that differs only by clause order, ref order, or duplication must never
// cost a second upstream query or a second store record.
func Canonical(s Spec) string {
	cs := canonPool.Get().(*canonScratch)
	defer canonPool.Put(cs)
	cs.arena = cs.arena[:0]
	cs.spans = cs.spans[:0]
	incEnd := cs.lowerPart(s.Include)
	excEnd := incEnd
	if len(s.Exclude) > 0 {
		excEnd = cs.lowerPart(s.Exclude)
	}

	total := 0
	for _, sp := range cs.spans {
		total += sp.end - sp.start
	}
	if incEnd > 1 {
		total += incEnd - 1 // '&' between include clauses
	}
	if n := excEnd - incEnd; n > 0 {
		total += len("!-") + n - 1
	}

	var b strings.Builder
	b.Grow(total)
	for i := 0; i < incEnd; i++ {
		if i > 0 {
			b.WriteByte('&')
		}
		b.Write(cs.arena[cs.spans[i].start:cs.spans[i].end])
	}
	if excEnd > incEnd {
		b.WriteString("!-")
		for i := incEnd; i < excEnd; i++ {
			if i > incEnd {
				b.WriteByte('&')
			}
			b.Write(cs.arena[cs.spans[i].start:cs.spans[i].end])
		}
	}
	return b.String()
}

// canonScratch holds the reusable buffers one Canonical call needs: a byte
// arena the clause strings are rendered into once, the span list addressing
// them, and a ref scratch for per-clause sorting. Pooled so a hot audit loop
// canonicalizing thousands of specs allocates only each call's result
// string.
type canonScratch struct {
	arena []byte
	spans []canonSpan
	refs  []Ref
}

// canonSpan addresses one rendered clause inside the arena.
type canonSpan struct{ start, end int }

var canonPool = sync.Pool{New: func() any { return new(canonScratch) }}

// lowerPart renders one clause list (include or exclude) into the arena:
// each clause's refs sorted and deduplicated, then the clauses themselves
// sorted byte-wise and deduplicated — identical text and order to sorting
// the formatted strings. Returns the new length of cs.spans.
func (cs *canonScratch) lowerPart(clauses []Clause) int {
	base := len(cs.spans)
	for _, c := range clauses {
		cs.refs = append(cs.refs[:0], c...)
		// Insertion sort: clauses hold a handful of refs, and unlike
		// sort.Slice this allocates nothing.
		for i := 1; i < len(cs.refs); i++ {
			for j := i; j > 0 && refCompare(cs.refs[j], cs.refs[j-1]) < 0; j-- {
				cs.refs[j], cs.refs[j-1] = cs.refs[j-1], cs.refs[j]
			}
		}
		start := len(cs.arena)
		cs.arena = append(cs.arena, '(')
		wrote := false
		for j, r := range cs.refs {
			if j > 0 && r == cs.refs[j-1] {
				continue
			}
			if wrote {
				cs.arena = append(cs.arena, '|')
			}
			cs.arena = appendRef(cs.arena, r)
			wrote = true
		}
		cs.arena = append(cs.arena, ')')
		cs.spans = append(cs.spans, canonSpan{start, len(cs.arena)})
	}
	part := cs.spans[base:]
	for i := 1; i < len(part); i++ {
		for j := i; j > 0 && bytes.Compare(cs.arena[part[j].start:part[j].end], cs.arena[part[j-1].start:part[j-1].end]) < 0; j-- {
			part[j], part[j-1] = part[j-1], part[j]
		}
	}
	kept := base
	for i, sp := range part {
		if i > 0 {
			prev := cs.spans[kept-1]
			if bytes.Equal(cs.arena[sp.start:sp.end], cs.arena[prev.start:prev.end]) {
				continue
			}
		}
		cs.spans[kept] = sp
		kept++
	}
	cs.spans = cs.spans[:kept]
	return kept
}

// appendRef renders r exactly as Ref.String does, without fmt.
func appendRef(b []byte, r Ref) []byte {
	b = append(b, kindName(r.Kind)...)
	b = append(b, ':')
	return strconv.AppendInt(b, int64(r.ID), 10)
}

// kindNames mirrors Kind.String for the valid kinds, indexable without a
// switch on the canonicalization hot path.
var kindNames = [numKinds]string{
	KindAttribute:      "attribute",
	KindTopic:          "topic",
	KindGender:         "gender",
	KindAge:            "age",
	KindCustomAudience: "custom-audience",
	KindLocation:       "location",
	KindPlacement:      "placement",
}

func kindName(k Kind) string {
	if k < numKinds {
		return kindNames[k]
	}
	return k.String()
}

// refCompare orders refs exactly as sort.Strings orders their formatted
// forms. Kind names are compared directly (no valid name is a prefix of
// another, and the fmt fallback names embed their distinct numbers), and
// equal kinds compare their IDs' decimal renderings byte-wise — "10" sorts
// before "9", matching the string sort the rendered arena would produce.
func refCompare(a, b Ref) int {
	if a.Kind != b.Kind {
		return strings.Compare(kindName(a.Kind), kindName(b.Kind))
	}
	var ba, bb [20]byte
	return bytes.Compare(strconv.AppendInt(ba[:0], int64(a.ID), 10), strconv.AppendInt(bb[:0], int64(b.ID), 10))
}

// AttrIDs returns the IDs of all attribute refs in the include clauses, in
// order of appearance. Useful for describing compositions of attributes.
func AttrIDs(s Spec) []int {
	var out []int
	for _, cl := range s.Include {
		for _, r := range cl {
			if r.Kind == KindAttribute {
				out = append(out, r.ID)
			}
		}
	}
	return out
}

// Refs returns every ref in the include clauses in order of appearance.
func Refs(s Spec) []Ref {
	var out []Ref
	for _, cl := range s.Include {
		out = append(out, cl...)
	}
	return out
}
